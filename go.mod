module modtx

go 1.24
