// Modelcheck: using the axiomatic checker and the exhaustive enumerator
// directly — build an execution with the event builder, check it under
// several model configurations, then enumerate a litmus program's
// outcomes under the programmer and implementation models.
package main

import (
	"fmt"

	"modtx/internal/core"
	"modtx/internal/event"
	"modtx/internal/exec"
	"modtx/internal/prog"
)

func main() {
	// 1. Hand-build Example 2.2 (the reversed privatization of the paper)
	// and check it: inconsistent under the programmer model (Atomww),
	// consistent under the implementation model.
	b := event.NewBuilder("x", "y")
	t1 := b.Thread()
	t1.Begin("a")
	t1.R("y", 0)
	wx2 := t1.W("x", 2)
	t1.Commit()
	t2 := b.Thread()
	t2.Begin("b")
	t2.W("y", 1)
	t2.Commit()
	wx1 := t2.W("x", 1)
	b.WWOrder("x", wx1, wx2)
	x := b.MustBuild()

	fmt.Println("Example 2.2 execution:")
	fmt.Print(event.Pretty(x))
	for _, cfg := range []core.Config{core.Programmer, core.Implementation, core.TSO} {
		fmt.Printf("  %-16s → %v\n", cfg.Name, core.Check(x, cfg))
	}

	// 2. Enumerate the privatization program's outcomes under both models.
	src := `
name: privatization
locs: x y
thread t1:
  atomic a {
    r := y
    if !r { x := 1 }
  }
thread t2:
  atomic b { y := 1 }
  x := 2
`
	p, err := prog.Parse(src)
	if err != nil {
		panic(err)
	}
	for _, cfg := range []core.Config{core.Programmer, core.Implementation} {
		outs, err := exec.Outcomes(p, cfg)
		if err != nil {
			panic(err)
		}
		fmt.Printf("\nprivatization outcomes under %s:\n", cfg.Name)
		for k := range outs {
			fmt.Println("  " + k)
		}
	}
	fmt.Println("\nnote: final x=1 appears only under the implementation model —")
	fmt.Println("exactly the §5 gap that quiescence fences close.")
}
