// Publication (§1 of the paper): a thread initializes data with plain
// writes and publishes it with a transaction; readers that observe the
// flag transactionally must see the data. Publication rides on a direct
// transactional dependency, so it is safe on all engines without fences
// (§5: "the underlying transactional machinery provides order between
// transactions that have a direct dependency").
package main

import (
	"fmt"
	"sync"

	"modtx/internal/stm"
)

func main() {
	for _, engine := range stm.Engines() {
		s := stm.New(stm.WithEngine(engine))
		const rounds = 5000
		violations := 0
		for i := 0; i < rounds; i++ {
			data := s.NewVar("data", 0)
			flag := s.NewVar("flag", 0)
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				data.Store(42) // plain initialization
				_ = s.Atomically(func(tx *stm.Tx) error {
					tx.Write(flag, 1) // transactional publish
					return nil
				})
			}()
			var sawFlag, sawData int64
			go func() {
				defer wg.Done()
				_ = s.Atomically(func(tx *stm.Tx) error {
					sawFlag = tx.Read(flag)
					return nil
				})
				sawData = data.Load() // plain read of published data
			}()
			wg.Wait()
			if sawFlag == 1 && sawData == 0 {
				violations++
			}
		}
		fmt.Printf("%-12s %d rounds, %d publication violations (model forbids any)\n",
			engine, rounds, violations)
	}
}
