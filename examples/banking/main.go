// Banking: a transfer workload exercising the STM under contention, with a
// mixed-mode auditor that privatizes the books with a quiescence fence
// before reading them plainly (the §5 discipline in a realistic shape).
package main

import (
	"fmt"
	"math/rand"
	"sync"

	"modtx/internal/stm"
)

const (
	accounts  = 32
	initialEa = 1000
	transfers = 4000
	workers   = 8
)

func main() {
	s := stm.New(stm.WithEngine(stm.Lazy))
	book := make([]*stm.Var, accounts)
	for i := range book {
		book[i] = s.NewVar(fmt.Sprintf("acct%d", i), initialEa)
	}
	closed := s.NewVar("closed", 0)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < transfers; i++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					continue
				}
				amount := int64(rng.Intn(50) + 1)
				_ = s.Atomically(func(tx *stm.Tx) error {
					if tx.Read(closed) == 1 {
						return stm.ErrAbort // books are closed
					}
					bal := tx.Read(book[from])
					if bal < amount {
						return stm.ErrAbort
					}
					tx.Write(book[from], bal-amount)
					tx.Write(book[to], tx.Read(book[to])+amount)
					return nil
				})
			}
		}(int64(w))
	}

	// Transactional audits run concurrently and must always see a
	// consistent total.
	auditFail := 0
	for a := 0; a < 50; a++ {
		var total int64
		_ = s.Atomically(func(tx *stm.Tx) error {
			total = 0
			for _, acct := range book {
				total += tx.Read(acct)
			}
			return nil
		})
		if total != accounts*initialEa {
			auditFail++
		}
	}
	wg.Wait()

	// Mixed-mode final audit: privatize by closing the books in a
	// transaction, quiesce, then read plainly.
	_ = s.Atomically(func(tx *stm.Tx) error {
		tx.Write(closed, 1)
		return nil
	})
	s.Quiesce(book...)
	var total int64
	for _, acct := range book {
		total += acct.Load() // plain reads: safe after the fence
	}

	fmt.Printf("engine=%v workers=%d transfers=%d\n", s.Engine(), workers, workers*transfers)
	fmt.Printf("concurrent audits failed: %d (want 0)\n", auditFail)
	fmt.Printf("final total: %d (want %d)\n", total, accounts*initialEa)
	fmt.Println(s)
}
