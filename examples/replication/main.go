// Replication walkthrough and measurement: a durable primary ships its
// WAL over loopback TCP to a read replica, and the program measures the
// two numbers the EXPERIMENTS.md replication section reports:
//
//   - catch-up throughput: a replica attaching to a primary that
//     already holds N committed records, timed from dial to Ready;
//   - steady-state replica lag: with the stream live, the delay from a
//     primary commit to the moment the replica's watermark covers it,
//     sampled per write (p50 / p99 / max).
//
// Run with: go run ./examples/replication
package main

import (
	"context"
	"fmt"
	"net"
	"os"
	"sort"
	"time"

	"modtx/internal/cluster"
	"modtx/internal/kv"
	"modtx/internal/wal"
)

const (
	shards   = 8
	preload  = 50_000 // records committed before the replica attaches
	liveOps  = 5_000  // lag samples once the stream is live
	crossPct = 10     // every 10th live write is a cross-shard TXN
)

func main() {
	dir, err := os.MkdirTemp("", "mtx-repl-example")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	// The primary: a durable store (WALNone keeps the example fast; the
	// stream ships identical bytes at every level) plus a streamer.
	primary, err := kv.Open(kv.WithShards(shards), kv.WithMetrics(false),
		kv.WithDurability(dir, wal.None))
	if err != nil {
		panic(err)
	}
	defer primary.Close()
	for i := 0; i < preload; i++ {
		if err := primary.Set(fmt.Sprintf("key-%06d", i), []byte("preloaded value")); err != nil {
			panic(err)
		}
	}

	st, err := cluster.NewStreamer(primary)
	if err != nil {
		panic(err)
	}
	defer st.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go st.Serve(ln)

	// The replica: an in-memory store of the same shard count, fed by
	// the reconnecting client.
	replica, err := kv.NewReplica(kv.WithShards(shards), kv.WithMetrics(false))
	if err != nil {
		panic(err)
	}
	defer replica.Store().Close()
	client := &cluster.Client{Addr: ln.Addr().String(), Replica: replica}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go client.Run(ctx)

	// Catch-up: how long until the replica covers the preloaded history.
	start := time.Now()
	for !replica.Ready() {
		time.Sleep(100 * time.Microsecond)
	}
	catchup := time.Since(start)
	fmt.Printf("catch-up: %d records over %d shards in %v (%.0f records/s)\n",
		preload, shards, catchup.Round(time.Millisecond),
		float64(preload)/catchup.Seconds())

	// Steady-state lag: per committed write, the time until the owning
	// shard's replica watermark reaches the commit. Cross-shard TXNs ride
	// along so the marker path is in the measured mix.
	lags := make([]time.Duration, 0, liveOps)
	for i := 0; i < liveOps; i++ {
		key := fmt.Sprintf("live-%06d", i)
		t0 := time.Now()
		if i%crossPct == 0 {
			keys := []string{fmt.Sprintf("acct-a-%d", i), fmt.Sprintf("acct-b-%d", i)}
			if err := primary.Update(keys, func(tx *kv.Txn) error {
				tx.Add(keys[0], -1)
				tx.Add(keys[1], 1)
				return nil
			}); err != nil {
				panic(err)
			}
			key = keys[0]
		} else if err := primary.Set(key, []byte("live value")); err != nil {
			panic(err)
		}
		shard := primary.ShardOf(key)
		seqs, _, err := primary.ReplPositions()
		if err != nil {
			panic(err)
		}
		seq := seqs[shard]
		for replica.Watermark(shard) < seq {
			time.Sleep(20 * time.Microsecond)
		}
		lags = append(lags, time.Since(t0))
	}
	sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
	fmt.Printf("replica lag over %d live writes (%d%% cross-shard): p50 %v  p99 %v  max %v\n",
		liveOps, 100/crossPct,
		lags[len(lags)/2].Round(time.Microsecond),
		lags[len(lags)*99/100].Round(time.Microsecond),
		lags[len(lags)-1].Round(time.Microsecond))

	rs := replica.Stats()
	fmt.Printf("replica: %d records applied, %d cross-shard txns applied atomically, %d pending\n",
		rs.Applied, rs.XApplied, rs.Pending)
}
