// Example kvstore: the sharded transactional key-value store — cross-shard
// transactions, the lock-free mixed-mode fast path, and the §5
// privatization/publication idioms at the store level.
package main

import (
	"fmt"

	"modtx/internal/kv"
	"modtx/internal/stm"
)

func main() {
	// 8 shards, each backed by its own TL2-style lazy STM instance.
	store := kv.New(kv.Options{Shards: 8, Engine: stm.Lazy})

	// Single-key operations are per-shard transactions.
	_ = store.Set("alice", 100)
	_ = store.Set("bob", 100)

	// Cross-key updates run as ONE transaction two-phased across the
	// shards touched: no consistent reader can see the money in flight.
	err := store.Update([]string{"alice", "bob"}, func(t *kv.Txn) error {
		t.Add("alice", -30)
		t.Add("bob", +30)
		return nil
	})
	fmt.Println("transfer err:", err)

	// MGet is a consistent cross-shard snapshot.
	snap, _ := store.MGet("alice", "bob")
	fmt.Printf("snapshot: alice=%d bob=%d (sum %d)\n",
		snap["alice"], snap["bob"], snap["alice"]+snap["bob"])

	// FastGet is the plain (non-transactional) mixed-mode read: lock-free,
	// but — per the paper's implementation model — allowed to miss a
	// logically-committed-but-unwritten value on the lazy engine.
	v, _ := store.FastGet("alice")
	fmt.Println("fast read alice:", v)

	// Privatization: fence the owning shards, then use plain access on the
	// returned handles without racing transactional writeback (§5).
	vars := store.Privatize("alice")
	vars[0].Store(vars[0].Load() + 1) // plain read-modify-write, now safe
	fmt.Println("after privatized bump:", vars[0].Load())

	// Publication: plain writes become visible to transactional readers
	// through a sentinel transaction per shard — safe by construction.
	_ = store.Publish(map[string]int64{"carol": 500})
	c, _, _ := store.Get("carol")
	fmt.Println("published carol:", c)

	fmt.Println(store.Stats())
}
