// Example kvstore: the sharded transactional key-value store — byte
// values on the typed core, int64 counters on the zero-cost
// specialization, cross-shard transactions, the lock-free mixed-mode fast
// path, and the §5 privatization/publication idioms at the store level.
package main

import (
	"fmt"

	"modtx/internal/kv"
	"modtx/internal/stm"
)

func main() {
	// 8 shards, each backed by its own STM instance on the tl2 snapshot
	// engine — invisible reads make the read-only paths (Get, MGet, View)
	// lock-free. Any registered engine works: stm.ParseEngine("eager"), …
	store := kv.New(kv.WithShards(8), kv.WithEngine(stm.TL2))

	// Values are arbitrary byte strings end-to-end.
	_ = store.Set("user:alice", []byte(`{"name":"Alice","plan":"pro"}`))
	_ = store.Set("user:bob", []byte(`{"name":"Bob","plan":"free"}`))

	// Counters ride the int64 specialization: no boxing on the hot path.
	_, _ = store.CounterAdd("balance:alice", 100)
	_, _ = store.CounterAdd("balance:bob", 100)

	// Cross-key updates run as ONE transaction two-phased across the
	// shards touched: no consistent reader can see the money in flight.
	err := store.Update([]string{"balance:alice", "balance:bob"}, func(t *kv.Txn) error {
		t.Add("balance:alice", -30)
		t.Add("balance:bob", +30)
		return nil
	})
	fmt.Println("transfer err:", err)

	// MGet is a consistent cross-shard snapshot; counters read as decimal.
	snap, _ := store.MGet("balance:alice", "balance:bob", "user:alice")
	fmt.Printf("snapshot: alice=%s bob=%s profile=%s\n",
		snap["balance:alice"], snap["balance:bob"], snap["user:alice"])

	// View is the general read-only transaction: a multi-key snapshot
	// consistent across shards that never takes write locks (and, on tl2,
	// keeps no read set when the footprint is one shard).
	var totalBalance int64
	_ = store.View([]string{"balance:alice", "balance:bob"}, func(v *kv.ViewTxn) error {
		a, _ := v.Counter("balance:alice")
		b, _ := v.Counter("balance:bob")
		totalBalance = a + b
		return nil
	})
	fmt.Println("conserved total:", totalBalance)

	// FastGet is the plain (non-transactional) mixed-mode read: lock-free,
	// but — per the paper's implementation model — allowed to miss a
	// logically-committed-but-unwritten value on the lazy engine.
	v, _ := store.FastGet("user:alice")
	fmt.Println("fast read alice:", string(v))
	bal, _ := store.FastCounterGet("balance:alice")
	fmt.Println("fast counter read alice:", bal)

	// Privatization: fence the owning shards, then use plain access on the
	// returned typed handles without racing transactional writeback (§5).
	vars, err := store.Privatize("user:alice")
	if err != nil {
		panic(err)
	}
	doc := vars[0].Load()
	vars[0].Store(append(append([]byte(nil), doc...), " //audited"...))
	fmt.Println("after privatized edit:", string(vars[0].Load()))

	// Publication: plain writes become visible to transactional readers
	// through a sentinel transaction per shard — safe by construction.
	_ = store.Publish(map[string][]byte{"user:carol": []byte(`{"name":"Carol"}`)})
	c, _, _ := store.Get("user:carol")
	fmt.Println("published carol:", string(c))

	// Delete tombstones the key transactionally, then sweeps it from the
	// table; the freed key can come back with a different kind.
	existed, _ := store.Delete("user:bob")
	_, stillThere := store.FastGet("user:bob")
	fmt.Printf("deleted bob: %v (visible after: %v)\n", existed, stillThere)

	fmt.Println(store.Stats())
}
