// Privatization (§1, Example 2.1, §5 of the paper): a thread uses a
// transaction to take ownership of data, then operates on it with cheap
// plain accesses. On an STM realizing the implementation model this is
// only safe with a quiescence fence; this example demonstrates both the
// forced anomaly and the fence that removes it.
package main

import (
	"fmt"
	"sync/atomic"

	"modtx/internal/stm"
)

func run(fenced bool) int64 {
	s := stm.New(stm.WithEngine(stm.Lazy))
	x := s.NewVar("x", 0)
	y := s.NewVar("y", 0) // y=1 means "x is privatized"

	// Widen the delayed-writeback window deterministically.
	inWindow := make(chan struct{})
	resume := make(chan struct{})
	var armed atomic.Bool
	armed.Store(true)
	s.WritebackDelay = func() {
		if armed.CompareAndSwap(true, false) {
			close(inWindow)
			<-resume
		}
	}

	done := make(chan struct{})
	go func() { // the "other" thread, still transacting on x
		defer close(done)
		_ = s.Atomically(func(tx *stm.Tx) error {
			if tx.Read(y) == 0 {
				tx.Write(x, 1)
			}
			return nil
		})
	}()
	<-inWindow

	// The privatizing thread: once its transaction commits, it believes x
	// is private and uses a plain write.
	_ = s.Atomically(func(tx *stm.Tx) error {
		tx.Write(y, 1)
		return nil
	})
	if fenced {
		go func() { close(resume) }()
		s.Quiesce(x) // wait for in-flight transactions on x
	}
	x.Store(2) // plain access to "private" data
	if !fenced {
		close(resume)
	}
	<-done
	return x.Load()
}

func main() {
	fmt.Println("privatization on the lazy (TL2-style) engine:")
	got := run(false)
	fmt.Printf("  without fence: final x = %d (stale transactional writeback clobbered the plain write!)\n", got)
	got = run(true)
	fmt.Printf("  with Quiesce:  final x = %d (the model's forbidden outcome is gone)\n", got)
}
