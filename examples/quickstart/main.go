// Quickstart: transactional variables, Atomically, retries and aborts on
// the modtx STM.
package main

import (
	"fmt"
	"sync"

	"modtx/internal/stm"
)

func main() {
	// Create an STM instance with the TL2-style lazy engine.
	s := stm.New(stm.WithEngine(stm.Lazy))

	// Transactional variables hold int64 values.
	balance := s.NewVar("balance", 100)
	audit := s.NewVar("audit", 0)

	// A transaction reads and writes atomically; conflicting transactions
	// retry automatically.
	err := s.Atomically(func(tx *stm.Tx) error {
		b := tx.Read(balance)
		tx.Write(balance, b+50)
		tx.Write(audit, tx.Read(audit)+1)
		return nil
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("after deposit: balance=%d audit=%d\n", balance.Load(), audit.Load())

	// Read-only transactions have a dedicated API that never takes write
	// locks; on the tl2 snapshot engine it also keeps no read set.
	var b, a int64
	_ = s.AtomicallyRead(func(r *stm.ReadTx) error {
		b, a = r.Read(balance), r.Read(audit)
		return nil
	})
	fmt.Printf("read-only snapshot: balance=%d audit=%d\n", b, a)

	// Returning stm.ErrAbort rolls the transaction back.
	err = s.Atomically(func(tx *stm.Tx) error {
		tx.Write(balance, 0)
		return stm.ErrAbort
	})
	fmt.Printf("abort returned %v; balance still %d\n", err, balance.Load())

	// Transactions from many goroutines serialize per the model: the
	// counter increments exactly once per call.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				_ = s.Atomically(func(tx *stm.Tx) error {
					tx.Write(audit, tx.Read(audit)+1)
					return nil
				})
			}
		}()
	}
	wg.Wait()
	fmt.Printf("final audit=%d (want 8001), stats: %v\n", audit.Load(), s)
}
