// Package opt implements the §5 program transformations and a soundness
// harness: a transformation P ⇛ Q is valid when it introduces no new
// behaviour, i.e. every outcome of Q is an outcome of P under the model.
// Validity is decided by exhaustive enumeration (internal/exec).
//
// The §5 results target the implementation model; the harness also probes
// the programmer model, where the paper shows some reorderings fail (the
// (‡) example).
package opt

import (
	"fmt"
	"sort"

	"modtx/internal/core"
	"modtx/internal/exec"
	"modtx/internal/prog"
)

// Report is the result of a soundness check.
type Report struct {
	Transform string
	Model     string
	Sound     bool
	// NewBehaviours lists outcome keys of the transformed program that the
	// original cannot produce (empty iff Sound).
	NewBehaviours []string
}

func (r Report) String() string {
	if r.Sound {
		return fmt.Sprintf("%-22s %-14s sound", r.Transform, r.Model)
	}
	return fmt.Sprintf("%-22s %-14s UNSOUND (%d new behaviours, e.g. %s)",
		r.Transform, r.Model, len(r.NewBehaviours), r.NewBehaviours[0])
}

// Sound checks behaviour inclusion outcomes(q) ⊆ outcomes(p) under cfg.
func Sound(name string, p, q *prog.Program, cfg core.Config) (Report, error) {
	po, err := exec.Outcomes(p, cfg)
	if err != nil {
		return Report{}, fmt.Errorf("opt: enumerating %s: %w", p.Name, err)
	}
	qo, err := exec.Outcomes(q, cfg)
	if err != nil {
		return Report{}, fmt.Errorf("opt: enumerating %s: %w", q.Name, err)
	}
	rep := Report{Transform: name, Model: cfg.Name, Sound: true}
	for key := range qo {
		if _, ok := po[key]; !ok {
			rep.Sound = false
			rep.NewBehaviours = append(rep.NewBehaviours, key)
		}
	}
	sort.Strings(rep.NewBehaviours)
	return rep, nil
}

// ReplaceThread returns a copy of p with thread ti's body replaced.
func ReplaceThread(p *prog.Program, ti int, body []prog.Stmt) *prog.Program {
	q := &prog.Program{
		Name:        p.Name + "'",
		Locs:        append([]string(nil), p.Locs...),
		ExtraValues: append([]int(nil), p.ExtraValues...),
		Universe:    append([]int(nil), p.Universe...),
	}
	for i, th := range p.Threads {
		nb := th.Body
		if i == ti {
			nb = body
		}
		q.Threads = append(q.Threads, prog.Thread{Name: th.Name, Body: nb})
	}
	return q
}

// FuseAdjacent implements atomic{P}; atomic{Q} ⇛ atomic{P;Q} on the first
// adjacent transaction pair of the statement list.
func FuseAdjacent(body []prog.Stmt) ([]prog.Stmt, bool) {
	for i := 0; i+1 < len(body); i++ {
		a, okA := body[i].(prog.Atomic)
		b, okB := body[i+1].(prog.Atomic)
		if okA && okB {
			fused := prog.Atomic{Name: a.Name + "+" + b.Name,
				Body: append(append([]prog.Stmt(nil), a.Body...), b.Body...)}
			out := append([]prog.Stmt(nil), body[:i]...)
			out = append(out, fused)
			out = append(out, body[i+2:]...)
			return out, true
		}
	}
	return body, false
}

// SplitFirst implements the (invalid in general) converse of fusion:
// atomic{P;Q} ⇛ atomic{P}; atomic{Q}, splitting the first transaction with
// at least two statements after its first statement.
func SplitFirst(body []prog.Stmt) ([]prog.Stmt, bool) {
	for i, s := range body {
		a, ok := s.(prog.Atomic)
		if !ok || len(a.Body) < 2 {
			continue
		}
		first := prog.Atomic{Name: a.Name + ".1", Body: a.Body[:1]}
		rest := prog.Atomic{Name: a.Name + ".2", Body: a.Body[1:]}
		out := append([]prog.Stmt(nil), body[:i]...)
		out = append(out, first, rest)
		out = append(out, body[i+1:]...)
		return out, true
	}
	return body, false
}

// RoachMotel implements P; atomic{R}; Q ⇛ atomic{P;R;Q}: the first
// transaction absorbs its immediate plain neighbours.
func RoachMotel(body []prog.Stmt) ([]prog.Stmt, bool) {
	for i, s := range body {
		a, ok := s.(prog.Atomic)
		if !ok {
			continue
		}
		lo, hi := i, i+1
		var pre, post []prog.Stmt
		if i > 0 && isPlainAccess(body[i-1]) {
			pre = []prog.Stmt{body[i-1]}
			lo = i - 1
		}
		if i+1 < len(body) && isPlainAccess(body[i+1]) {
			post = []prog.Stmt{body[i+1]}
			hi = i + 2
		}
		if pre == nil && post == nil {
			continue
		}
		grown := prog.Atomic{Name: a.Name + "*",
			Body: append(append(append([]prog.Stmt(nil), pre...), a.Body...), post...)}
		out := append([]prog.Stmt(nil), body[:lo]...)
		out = append(out, grown)
		out = append(out, body[hi:]...)
		return out, true
	}
	return body, false
}

// Extrude implements the (invalid in general) converse of roach motel:
// atomic{R;P} ⇛ atomic{R}; P, hoisting the last statement of the first
// multi-statement transaction out. The hoisted access becomes plain, which
// can introduce new racy behaviours.
func Extrude(body []prog.Stmt) ([]prog.Stmt, bool) {
	for i, s := range body {
		a, ok := s.(prog.Atomic)
		if !ok || len(a.Body) < 2 || !isPlainAccess(a.Body[len(a.Body)-1]) {
			continue
		}
		rest := prog.Atomic{Name: a.Name + "-", Body: a.Body[:len(a.Body)-1]}
		out := append([]prog.Stmt(nil), body[:i]...)
		out = append(out, rest, a.Body[len(a.Body)-1])
		out = append(out, body[i+1:]...)
		return out, true
	}
	return body, false
}

// ElideEmpty implements P; atomic{}; Q ⇛ P; Q.
func ElideEmpty(body []prog.Stmt) ([]prog.Stmt, bool) {
	for i, s := range body {
		if a, ok := s.(prog.Atomic); ok && len(a.Body) == 0 {
			out := append([]prog.Stmt(nil), body[:i]...)
			out = append(out, body[i+1:]...)
			return out, true
		}
	}
	return body, false
}

// InsertEmpty is the converse of ElideEmpty (also valid): it inserts an
// empty transaction at the given position.
func InsertEmpty(body []prog.Stmt, at int, name string) []prog.Stmt {
	out := append([]prog.Stmt(nil), body[:at]...)
	out = append(out, prog.Atomic{Name: name})
	return append(out, body[at:]...)
}

// SwapAdjacent swaps statements i and i+1 of the body.
func SwapAdjacent(body []prog.Stmt, i int) ([]prog.Stmt, bool) {
	if i < 0 || i+1 >= len(body) {
		return body, false
	}
	out := append([]prog.Stmt(nil), body...)
	out[i], out[i+1] = out[i+1], out[i]
	return out, true
}

func isPlainAccess(s prog.Stmt) bool {
	switch s.(type) {
	case prog.Read, prog.Write, prog.Let:
		return true
	}
	return false
}
