package opt

import (
	"testing"

	"modtx/internal/core"
	"modtx/internal/prog"
)

func w(loc string, v int) prog.Stmt { return prog.Write{Loc: prog.At(loc), Val: prog.Const(v)} }
func r(reg, loc string) prog.Stmt   { return prog.Read{RegName: reg, Loc: prog.At(loc)} }
func atomic(name string, ss ...prog.Stmt) prog.Stmt {
	return prog.Atomic{Name: name, Body: ss}
}

func mkProg(name string, locs []string, bodies ...[]prog.Stmt) *prog.Program {
	p := &prog.Program{Name: name, Locs: locs}
	for i, b := range bodies {
		p.Threads = append(p.Threads, prog.Thread{Name: tname(i), Body: b})
	}
	return p
}

func checkSound(t *testing.T, name string, p, q *prog.Program, cfg core.Config, want bool) {
	t.Helper()
	rep, err := Sound(name, p, q, cfg)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if rep.Sound != want {
		t.Errorf("%s under %s: sound=%v, want %v (%v)", name, cfg.Name, rep.Sound, want, rep.NewBehaviours)
	}
}

// O1a: R;W → W;R reordering (load-buffering direction) is invalid in both
// models: Causality includes lwr.
func TestReadWriteReorderInvalid(t *testing.T) {
	orig := mkProg("rw-orig", []string{"x", "y"},
		[]prog.Stmt{r("r", "x"), w("y", 1)},
		[]prog.Stmt{r("q", "y"), w("x", 1)},
	)
	body, ok := SwapAdjacent(orig.Threads[0].Body, 0)
	if !ok {
		t.Fatal("swap failed")
	}
	trans := ReplaceThread(orig, 0, body)
	checkSound(t, "R;W→W;R", orig, trans, core.Programmer, false)
	checkSound(t, "R;W→W;R", orig, trans, core.Implementation, false)
}

// O1b: W;R → R;W reordering after a transaction fails in the programmer
// model due to HBww (the (‡) example) but is valid in the implementation
// model, which drops HBww.
func TestWriteReadReorderDagger(t *testing.T) {
	t2 := []prog.Stmt{
		atomic("b", w("y", 1)),
		w("x", 2),
		r("q", "z"),
	}
	orig := mkProg("dagger", []string{"x", "y", "z"},
		[]prog.Stmt{
			w("z", 1),
			atomic("a",
				r("r", "y"),
				prog.If{Cond: prog.Not{E: prog.Reg("r")}, Then: []prog.Stmt{w("x", 1)}},
			),
		},
		t2,
	)
	body, ok := SwapAdjacent(t2, 1) // x:=2 ; q:=z  →  q:=z ; x:=2
	if !ok {
		t.Fatal("swap failed")
	}
	trans := ReplaceThread(orig, 1, body)
	checkSound(t, "W;R→R;W (‡)", orig, trans, core.Programmer, false)
	checkSound(t, "W;R→R;W (‡)", orig, trans, core.Implementation, true)
}

// O2: P; atomic{Q} → atomic{Q}; P for write-only plain P and read-only Q
// with no conflicts (§5) is sound in the implementation model.
func TestReadOnlyTxSwap(t *testing.T) {
	t1orig := []prog.Stmt{w("x", 1), atomic("a", r("r", "y"))}
	t1trans := []prog.Stmt{atomic("a", r("r", "y")), w("x", 1)}
	obs := []prog.Stmt{atomic("b", w("y", 1)), r("q", "x")}
	orig := mkProg("roswap", []string{"x", "y"}, t1orig, obs)
	trans := ReplaceThread(orig, 0, t1trans)
	checkSound(t, "P;atomic{RO}→atomic{RO};P", orig, trans, core.Implementation, true)
}

// O3: roach motel P; atomic{R}; Q ⇛ atomic{P;R;Q} is sound; the converse
// extrusion is not (the hoisted access becomes racy).
func TestRoachMotelAndExtrusion(t *testing.T) {
	t1 := []prog.Stmt{w("x", 1), atomic("a", w("y", 1)), r("q", "z")}
	obs := []prog.Stmt{
		atomic("o", r("r1", "y"), r("r2", "x")),
		w("z", 1),
	}
	orig := mkProg("roach", []string{"x", "y", "z"}, t1, obs)
	grown, ok := RoachMotel(t1)
	if !ok {
		t.Fatal("roach motel not applicable")
	}
	trans := ReplaceThread(orig, 0, grown)
	checkSound(t, "roach motel", orig, trans, core.Implementation, true)
	checkSound(t, "roach motel", orig, trans, core.Programmer, true)

	// Extrusion: atomic{x:=1; y:=1} ⇛ atomic{x:=1}; y:=1 lets a
	// transactional observer see y=1 without x=1.
	t1x := []prog.Stmt{atomic("a", w("x", 1), w("y", 1))}
	obsx := []prog.Stmt{atomic("o", r("r1", "y"), r("r2", "x"))}
	origx := mkProg("extrude", []string{"x", "y"}, t1x, obsx)
	hoisted, ok := Extrude(t1x)
	if !ok {
		t.Fatal("extrude not applicable")
	}
	transx := ReplaceThread(origx, 0, hoisted)
	checkSound(t, "extrusion", origx, transx, core.Programmer, false)
}

// O4: fusing adjacent transactions is sound; splitting is not.
func TestFusionAndSplit(t *testing.T) {
	t1 := []prog.Stmt{atomic("a", w("x", 1)), atomic("b", w("y", 1))}
	obs := []prog.Stmt{atomic("o", r("r1", "x"), w("y", 5))}
	orig := mkProg("fusion", []string{"x", "y"}, t1, obs)
	fused, ok := FuseAdjacent(t1)
	if !ok {
		t.Fatal("fusion not applicable")
	}
	trans := ReplaceThread(orig, 0, fused)
	checkSound(t, "fusion", orig, trans, core.Implementation, true)
	checkSound(t, "fusion", orig, trans, core.Programmer, true)

	// Splitting the fused transaction admits the observer between the
	// halves: a new behaviour.
	fusedProg := trans
	split, ok := SplitFirst(fused)
	if !ok {
		t.Fatal("split not applicable")
	}
	splitProg := ReplaceThread(fusedProg, 0, split)
	checkSound(t, "split", fusedProg, splitProg, core.Programmer, false)
	checkSound(t, "split", fusedProg, splitProg, core.Implementation, false)
}

// O5: empty transactions can be elided and inserted freely.
func TestEmptyTransactionElision(t *testing.T) {
	t1 := []prog.Stmt{w("x", 1), prog.Atomic{Name: "e"}, r("q", "y")}
	obs := []prog.Stmt{atomic("b", w("y", 1)), r("p", "x")}
	orig := mkProg("elide", []string{"x", "y"}, t1, obs)
	elided, ok := ElideEmpty(t1)
	if !ok {
		t.Fatal("elision not applicable")
	}
	trans := ReplaceThread(orig, 0, elided)
	checkSound(t, "elide empty tx", orig, trans, core.Programmer, true)
	checkSound(t, "elide empty tx", orig, trans, core.Implementation, true)

	// Insertion (the converse) is sound too.
	inserted := InsertEmpty(elided, 1, "e2")
	trans2 := ReplaceThread(orig, 0, inserted)
	checkSound(t, "insert empty tx", trans, trans2, core.Programmer, true)
}

// Independent plain accesses commute (LDRF peephole reorderings).
func TestIndependentReorders(t *testing.T) {
	t1 := []prog.Stmt{w("x", 1), w("y", 1)}
	obs := []prog.Stmt{r("r1", "y"), r("r2", "x")}
	orig := mkProg("ww-swap", []string{"x", "y"}, t1, obs)
	body, _ := SwapAdjacent(t1, 0)
	trans := ReplaceThread(orig, 0, body)
	checkSound(t, "independent W;W swap", orig, trans, core.Programmer, true)
	checkSound(t, "independent W;W swap", orig, trans, core.Implementation, true)

	// Independent reads commute as well.
	t2 := []prog.Stmt{r("r1", "x"), r("r2", "y")}
	wrs := []prog.Stmt{w("x", 1), w("y", 1)}
	orig2 := mkProg("rr-swap", []string{"x", "y"}, t2, wrs)
	body2, _ := SwapAdjacent(t2, 0)
	trans2 := ReplaceThread(orig2, 0, body2)
	checkSound(t, "independent R;R swap", orig2, trans2, core.Programmer, true)
}

func TestTransformHelpers(t *testing.T) {
	if _, ok := FuseAdjacent([]prog.Stmt{w("x", 1)}); ok {
		t.Error("fusion applied without adjacent transactions")
	}
	if _, ok := ElideEmpty([]prog.Stmt{atomic("a", w("x", 1))}); ok {
		t.Error("elision applied to non-empty transaction")
	}
	if _, ok := SwapAdjacent([]prog.Stmt{w("x", 1)}, 0); ok {
		t.Error("swap applied at end of body")
	}
	if _, ok := Extrude([]prog.Stmt{atomic("a", w("x", 1))}); ok {
		t.Error("extrude applied to singleton transaction")
	}
	if _, ok := RoachMotel([]prog.Stmt{atomic("a", w("x", 1))}); ok {
		t.Error("roach motel applied without plain neighbours")
	}
	if _, ok := SplitFirst([]prog.Stmt{atomic("a", w("x", 1))}); ok {
		t.Error("split applied to singleton transaction")
	}
}

// StandardReports runs the full §5 suite; shared with cmd/mtx-opt.
func TestStandardReports(t *testing.T) {
	reps, err := StandardReports()
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) < 10 {
		t.Fatalf("expected a full report set, got %d", len(reps))
	}
	for _, rep := range reps {
		if rep.Sound != rep.Expected {
			t.Errorf("%s under %s: sound=%v, expected %v", rep.Transform, rep.Model, rep.Sound, rep.Expected)
		}
	}
}
