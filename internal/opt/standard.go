package opt

import (
	"modtx/internal/core"
	"modtx/internal/prog"
)

// ExpectedReport pairs a soundness report with the paper's verdict.
type ExpectedReport struct {
	Report
	Expected bool
}

func tname(i int) string { return string(rune('a'+i)) + "thread" }

// StandardReports runs the full §5 transformation suite (experiments
// O1–O5 of DESIGN.md) and returns each report with its expected verdict.
// Used by the tests, cmd/mtx-opt and the benchmark harness.
func StandardReports() ([]ExpectedReport, error) {
	var out []ExpectedReport
	add := func(name string, p, q *prog.Program, cfg core.Config, expected bool) error {
		rep, err := Sound(name, p, q, cfg)
		if err != nil {
			return err
		}
		out = append(out, ExpectedReport{Report: rep, Expected: expected})
		return nil
	}

	wr := func(loc string, v int) prog.Stmt { return prog.Write{Loc: prog.At(loc), Val: prog.Const(v)} }
	rd := func(reg, loc string) prog.Stmt { return prog.Read{RegName: reg, Loc: prog.At(loc)} }
	at := func(name string, ss ...prog.Stmt) prog.Stmt { return prog.Atomic{Name: name, Body: ss} }
	mk := func(name string, locs []string, bodies ...[]prog.Stmt) *prog.Program {
		p := &prog.Program{Name: name, Locs: locs}
		for i, b := range bodies {
			p.Threads = append(p.Threads, prog.Thread{Name: tname(i), Body: b})
		}
		return p
	}

	// O1a: R;W → W;R (forbidden load buffering appears).
	lb := mk("rw-orig", []string{"x", "y"},
		[]prog.Stmt{rd("r", "x"), wr("y", 1)},
		[]prog.Stmt{rd("q", "y"), wr("x", 1)})
	lbBody, _ := SwapAdjacent(lb.Threads[0].Body, 0)
	lbT := ReplaceThread(lb, 0, lbBody)
	if err := add("R;W → W;R", lb, lbT, core.Programmer, false); err != nil {
		return nil, err
	}
	if err := add("R;W → W;R", lb, lbT, core.Implementation, false); err != nil {
		return nil, err
	}

	// O1b: W;R → R;W after a transaction — the (‡) example.
	daggerT2 := []prog.Stmt{at("b", wr("y", 1)), wr("x", 2), rd("q", "z")}
	dagger := mk("dagger", []string{"x", "y", "z"},
		[]prog.Stmt{
			wr("z", 1),
			at("a", rd("r", "y"),
				prog.If{Cond: prog.Not{E: prog.Reg("r")}, Then: []prog.Stmt{wr("x", 1)}}),
		},
		daggerT2)
	dagBody, _ := SwapAdjacent(daggerT2, 1)
	dagT := ReplaceThread(dagger, 1, dagBody)
	if err := add("W;R → R;W (‡)", dagger, dagT, core.Programmer, false); err != nil {
		return nil, err
	}
	if err := add("W;R → R;W (‡)", dagger, dagT, core.Implementation, true); err != nil {
		return nil, err
	}

	// O2: write-only plain before read-only transaction.
	ro := mk("roswap", []string{"x", "y"},
		[]prog.Stmt{wr("x", 1), at("a", rd("r", "y"))},
		[]prog.Stmt{at("b", wr("y", 1)), rd("q", "x")})
	roT := ReplaceThread(ro, 0, []prog.Stmt{at("a", rd("r", "y")), wr("x", 1)})
	if err := add("P;atomic{RO} → atomic{RO};P", ro, roT, core.Implementation, true); err != nil {
		return nil, err
	}

	// O3: roach motel and extrusion.
	roachT1 := []prog.Stmt{wr("x", 1), at("a", wr("y", 1)), rd("q", "z")}
	roach := mk("roach", []string{"x", "y", "z"},
		roachT1,
		[]prog.Stmt{at("o", rd("r1", "y"), rd("r2", "x")), wr("z", 1)})
	grown, _ := RoachMotel(roachT1)
	roachT := ReplaceThread(roach, 0, grown)
	if err := add("roach motel", roach, roachT, core.Implementation, true); err != nil {
		return nil, err
	}
	if err := add("roach motel", roach, roachT, core.Programmer, true); err != nil {
		return nil, err
	}

	extr1 := []prog.Stmt{at("a", wr("x", 1), wr("y", 1))}
	extr := mk("extrude", []string{"x", "y"},
		extr1,
		[]prog.Stmt{at("o", rd("r1", "y"), rd("r2", "x"))})
	hoisted, _ := Extrude(extr1)
	extrT := ReplaceThread(extr, 0, hoisted)
	if err := add("extrusion (converse)", extr, extrT, core.Programmer, false); err != nil {
		return nil, err
	}

	// O4: fusion and split.
	fuse1 := []prog.Stmt{at("a", wr("x", 1)), at("b", wr("y", 1))}
	fuse := mk("fusion", []string{"x", "y"},
		fuse1,
		[]prog.Stmt{at("o", rd("r1", "x"), wr("y", 5))})
	fused, _ := FuseAdjacent(fuse1)
	fuseT := ReplaceThread(fuse, 0, fused)
	if err := add("fusion", fuse, fuseT, core.Implementation, true); err != nil {
		return nil, err
	}
	if err := add("fusion", fuse, fuseT, core.Programmer, true); err != nil {
		return nil, err
	}
	split, _ := SplitFirst(fused)
	splitT := ReplaceThread(fuseT, 0, split)
	if err := add("split (converse)", fuseT, splitT, core.Programmer, false); err != nil {
		return nil, err
	}

	// O5: elide and insert empty transactions.
	el1 := []prog.Stmt{wr("x", 1), prog.Atomic{Name: "e"}, rd("q", "y")}
	el := mk("elide", []string{"x", "y"},
		el1,
		[]prog.Stmt{at("b", wr("y", 1)), rd("p", "x")})
	elided, _ := ElideEmpty(el1)
	elT := ReplaceThread(el, 0, elided)
	if err := add("elide empty tx", el, elT, core.Programmer, true); err != nil {
		return nil, err
	}
	if err := add("insert empty tx", elT, el, core.Programmer, true); err != nil {
		return nil, err
	}

	// LDRF peephole: independent plain writes commute.
	ww1 := []prog.Stmt{wr("x", 1), wr("y", 1)}
	ww := mk("ww-swap", []string{"x", "y"},
		ww1,
		[]prog.Stmt{rd("r1", "y"), rd("r2", "x")})
	wwBody, _ := SwapAdjacent(ww1, 0)
	wwT := ReplaceThread(ww, 0, wwBody)
	if err := add("independent W;W swap", ww, wwT, core.Programmer, true); err != nil {
		return nil, err
	}

	return out, nil
}
