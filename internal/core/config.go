// Package core implements the memory model of "Modular Transactions:
// Bounding Mixed Races in Space and Time" (PPoPP 2019): derived and lifted
// relations (§2), the happens-before order with its design-space of
// extensions (§2, Example 2.3), the consistency axioms (Causality,
// Coherence, Observation, Atom), quiescence-fence ordering (§5), and the
// L-race definitions (§4, §5).
package core

// HBVariant identifies one of the six happens-before extension rules of
// Example 2.3. The unprimed rules order a transactional action before a
// later plain action; the primed rules order an earlier plain action before
// a transactional action.
type HBVariant uint8

const (
	// HBww: a hb→ c if c is plain, a lww→ c and a crw→ b hb→ c.
	// This is the rule of the programmer model (§2); it validates
	// privatization (Example 2.1).
	HBww HBVariant = iota
	// HBrw: a hb→ c if c is plain, a lrw→ c and a crw→ b hb→ c.
	HBrw
	// HBwr: a hb→ c if c is plain, a lwr→ c and a crw→ b hb→ c.
	HBwr
	// HBwwP (HB′ww): a hb→ c if a is plain, a lww→ c and a hb→ b crw→ c.
	HBwwP
	// HBrwP (HB′rw): a hb→ c if a is plain, a lrw→ c and a hb→ b crw→ c.
	HBrwP
	// HBwrP (HB′wr): a hb→ c if a is plain, a lwr→ c and a hb→ b crw→ c.
	HBwrP
)

func (v HBVariant) String() string {
	switch v {
	case HBww:
		return "HBww"
	case HBrw:
		return "HBrw"
	case HBwr:
		return "HBwr"
	case HBwwP:
		return "HB'ww"
	case HBrwP:
		return "HB'rw"
	case HBwrP:
		return "HB'wr"
	}
	return "HB?"
}

// Atom identifies one of the antidependency axioms accompanying the HB
// variants (Example 2.3). The lwr-based variants need no axiom
// (Causality suffices).
type Atom uint8

const (
	// AtomWW: (crw→ ; hb→ ; lww→) is irreflexive. Required by the
	// programmer model (forbids Example 2.2).
	AtomWW Atom = iota
	// AtomRW: (crw→ ; hb→ ; lrw→) is irreflexive.
	AtomRW
	// AtomWWP (Atom′ww): (hb→ ; crw→ ; lww→) is irreflexive.
	AtomWWP
	// AtomRWP (Atom′rw): (hb→ ; crw→ ; lrw→) is irreflexive.
	// Imposes publication by antidependence (Example 3.1).
	AtomRWP
)

func (a Atom) String() string {
	switch a {
	case AtomWW:
		return "Atomww"
	case AtomRW:
		return "Atomrw"
	case AtomWWP:
		return "Atom'ww"
	case AtomRWP:
		return "Atom'rw"
	}
	return "Atom?"
}

// Config selects a model from the paper's design space.
type Config struct {
	Name string

	// HB lists the enabled happens-before extension rules.
	HB []HBVariant
	// Atoms lists the enabled antidependency axioms.
	Atoms []Atom

	// XWRInHB replaces cwr with xwr in the happens-before base. The paper
	// rejects this choice because it causes publication through aborted
	// reads (§2, "Consistency" discussion); the flag exists to reproduce
	// that discussion.
	XWRInHB bool

	// RWInHB includes crw in the happens-before base, as x86-TSO does
	// (§6: "In x86-TSO, crw order is included in hb").
	RWInHB bool
}

// HasHB reports whether the variant is enabled.
func (c Config) HasHB(v HBVariant) bool {
	for _, h := range c.HB {
		if h == v {
			return true
		}
	}
	return false
}

// HasAtom reports whether the axiom is enabled.
func (c Config) HasAtom(a Atom) bool {
	for _, x := range c.Atoms {
		if x == a {
			return true
		}
	}
	return false
}

// Programmer is the paper's programmer model (§2): happens-before includes
// HBww, and consistency requires Causality, Coherence, Observation and
// Atomww. Privatization is race-free by definition.
var Programmer = Config{
	Name:  "programmer",
	HB:    []HBVariant{HBww},
	Atoms: []Atom{AtomWW},
}

// Implementation is the paper's implementation model (§5): HBww and Atomww
// are dropped; ordering without direct dependency must come from quiescence
// fences (HBCQ/HBQB, or the fence-as-writing-transaction encoding).
var Implementation = Config{
	Name: "implementation",
}

// Strongest enables all six HB variants and all four Atom axioms
// (§6: validated by x86-TSO).
var Strongest = Config{
	Name:  "strongest",
	HB:    []HBVariant{HBww, HBrw, HBwr, HBwwP, HBrwP, HBwrP},
	Atoms: []Atom{AtomWW, AtomRW, AtomWWP, AtomRWP},
}

// TSO models x86-TSO's treatment at the axiomatic level: crw is included
// in happens-before, which subsumes every HB variant and Atom axiom (§6).
var TSO = Config{
	Name:   "tso",
	RWInHB: true,
}

// Variant returns the implementation model extended with exactly one HB
// rule and its matching Atom axiom (Example 2.3's design points).
func Variant(v HBVariant) Config {
	c := Config{Name: "variant-" + v.String(), HB: []HBVariant{v}}
	switch v {
	case HBww:
		c.Atoms = []Atom{AtomWW}
	case HBrw:
		c.Atoms = []Atom{AtomRW}
	case HBwwP:
		c.Atoms = []Atom{AtomWWP}
	case HBrwP:
		c.Atoms = []Atom{AtomRWP}
	}
	// HBwr and HBwrP need no Atom axiom: "The exceptions involve lwr,
	// for which Causality suffices."
	return c
}
