package core

import (
	"fmt"
	"strings"

	"modtx/internal/event"
	"modtx/internal/rel"
)

// Axiom names used in Verdict.Violations.
const (
	AxCausality   = "Causality"
	AxCoherence   = "Coherence"
	AxObservation = "Observation"
)

// Verdict is the result of a consistency check.
type Verdict struct {
	Consistent bool
	Violations []string // names of violated axioms
	HB         *rel.Rel // the computed happens-before order
}

func (v Verdict) String() string {
	if v.Consistent {
		return "consistent"
	}
	return "inconsistent (" + strings.Join(v.Violations, ", ") + ")"
}

// Check evaluates the consistency axioms of §2 under cfg:
//
//	Causality:   (hb→ ∪ lwr→ ∪ xrw→) is acyclic
//	Coherence:   (hb→ ; lww→) is irreflexive
//	Observation: (hb→ ; lrw→) is irreflexive
//	Atom axioms per cfg (e.g. Atomww: (crw→ ; hb→ ; lww→) irreflexive)
//
// The execution is assumed structurally valid (Execution.Validate);
// well-formedness of the trace view is checked separately by event.WellFormed.
func Check(x *event.Execution, cfg Config) Verdict {
	r := Derive(x)
	return CheckRels(r, cfg)
}

// CheckRels is Check for callers that already derived the relations.
func CheckRels(r *Rels, cfg Config) Verdict {
	hb := HB(r, cfg)
	v := Verdict{Consistent: true, HB: hb}
	fail := func(name string) {
		v.Consistent = false
		v.Violations = append(v.Violations, name)
	}

	if !rel.UnionOf(hb, r.LWR, r.XRW).Acyclic() {
		fail(AxCausality)
	}
	if !rel.Compose(hb, r.LWW).Irreflexive() {
		fail(AxCoherence)
	}
	if !rel.Compose(hb, r.LRW).Irreflexive() {
		fail(AxObservation)
	}
	for _, a := range cfg.Atoms {
		if !atomHolds(r, hb, a) {
			fail(a.String())
		}
	}
	return v
}

func atomHolds(r *Rels, hb *rel.Rel, a Atom) bool {
	switch a {
	case AtomWW:
		return rel.Compose(rel.Compose(r.CRW, hb), r.LWW).Irreflexive()
	case AtomRW:
		return rel.Compose(rel.Compose(r.CRW, hb), r.LRW).Irreflexive()
	case AtomWWP:
		return rel.Compose(rel.Compose(hb, r.CRW), r.LWW).Irreflexive()
	case AtomRWP:
		return rel.Compose(rel.Compose(hb, r.CRW), r.LRW).Irreflexive()
	}
	panic(fmt.Sprintf("core: unknown atom axiom %d", a))
}

// Consistent reports whether the execution satisfies all axioms of cfg.
func Consistent(x *event.Execution, cfg Config) bool {
	return Check(x, cfg).Consistent
}
