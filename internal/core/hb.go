package core

import (
	"modtx/internal/event"
	"modtx/internal/rel"
)

// HB computes the happens-before order of the execution under the given
// model configuration, as the least relation closed under (§2):
//
//	HBdef:   init→ ∪ po→ ∪ cwr→ ∪ cww→  ⊆  hb→
//	HBtrans: hb→ is transitive
//	plus the enabled HB extension rules (Example 2.3)
//	plus, when the execution contains quiescence fences, the §5 rules
//	HBCQ and HBQB (trace order = event ID order).
//
// Extension rules reference hb itself, so the computation is a monotone
// fixpoint: alternate transitive closure with rule application until no
// edge is added.
func HB(r *Rels, cfg Config) *rel.Rel {
	x := r.X
	base := rel.UnionOf(r.Init, r.PO, r.CWW)
	if cfg.XWRInHB {
		base.Union(r.XWR)
	} else {
		base.Union(r.CWR)
	}
	if cfg.RWInHB {
		base.Union(r.CRW)
	}
	addFenceEdges(x, base)

	hb := base.TransitiveClosure()
	for {
		added := false
		for _, v := range cfg.HB {
			if applyVariant(r, v, hb) {
				added = true
			}
		}
		if !added {
			return hb
		}
		hb = hb.TransitiveClosure()
	}
}

// applyVariant adds the edges demanded by one HB extension rule given the
// current hb approximation. Returns whether any edge was new.
func applyVariant(r *Rels, v HBVariant, hb *rel.Rel) bool {
	x := r.X
	var lifted *rel.Rel
	switch v {
	case HBww, HBwwP:
		lifted = r.LWW
	case HBrw, HBrwP:
		lifted = r.LRW
	case HBwr, HBwrP:
		lifted = r.LWR
	}
	added := false
	switch v {
	case HBww, HBrw, HBwr:
		// a hb→ c if c is plain, a lR→ c and a crw→ b hb→ c.
		lifted.Each(func(a, c int) {
			if hb.Has(a, c) || !x.IsPlain(c) {
				return
			}
			for _, b := range r.CRW.Successors(a) {
				if hb.Has(b, c) {
					hb.Add(a, c)
					added = true
					return
				}
			}
		})
	case HBwwP, HBrwP, HBwrP:
		// a hb→ c if a is plain, a lR→ c and a hb→ b crw→ c.
		lifted.Each(func(a, c int) {
			if hb.Has(a, c) || !x.IsPlain(a) {
				return
			}
			for _, b := range hb.Successors(a) {
				if r.CRW.Has(b, c) {
					hb.Add(a, c)
					added = true
					return
				}
			}
		})
	}
	return added
}

// addFenceEdges installs the §5 quiescence-fence rules, using event ID
// order as the trace's index order:
//
//	HBCQ: ⟨a:Cb⟩ hb→ ⟨c:Qx⟩ if a index→ c and b touches x
//	HBQB: ⟨c:Qx⟩ hb→ ⟨b:B⟩  if c index→ b and b touches x
func addFenceEdges(x *event.Execution, base *rel.Rel) {
	for _, f := range x.Events {
		if f.Kind != event.KFence {
			continue
		}
		for _, e := range x.Events {
			switch e.Kind {
			case event.KCommit:
				if e.ID < f.ID && x.TxTouches(e.Tx, f.Loc) {
					base.Add(e.ID, f.ID)
				}
			case event.KBegin:
				if f.ID < e.ID && x.TxTouches(e.Tx, f.Loc) {
					base.Add(f.ID, e.ID)
				}
			}
		}
	}
}
