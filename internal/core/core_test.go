package core

import (
	"testing"

	"modtx/internal/event"
)

// --- Executions from the paper used as ground truth ---

// Example 2.1: atomic_a { if !y then x:=1 } || atomic_b { y:=1 }; x:=2
// with a reading y=0 and ww(x) = Wx1 → Wx2.
func ex21(t testing.TB) *event.Execution {
	b := event.NewBuilder("x", "y")
	t1 := b.Thread()
	t1.Begin("a")
	t1.R("y", 0)
	wx1 := t1.W("x", 1)
	t1.Commit()
	t2 := b.Thread()
	t2.Begin("b")
	t2.W("y", 1)
	t2.Commit()
	wx2 := t2.W("x", 2)
	b.WWOrder("x", wx1, wx2)
	x, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// Example 2.2: atomic_a { if !y then x:=2 } || atomic_b { y:=1 }; x:=1
// with the reverse lww order: plain Wx1 ww→ transactional Wx2.
func ex22(t testing.TB) *event.Execution {
	b := event.NewBuilder("x", "y")
	t1 := b.Thread()
	t1.Begin("a")
	t1.R("y", 0)
	wx2 := t1.W("x", 2)
	t1.Commit()
	t2 := b.Thread()
	t2.Begin("b")
	t2.W("y", 1)
	t2.Commit()
	wx1 := t2.W("x", 1)
	b.WWOrder("x", wx1, wx2)
	x, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestExample21Privatization(t *testing.T) {
	x := ex21(t)
	v := Check(x, Programmer)
	if !v.Consistent {
		t.Fatalf("Example 2.1 must be consistent in the programmer model: %v", v)
	}
	// HBww orders Wx1 before Wx2, so the execution is race free.
	if races := GraphRaces(x, Programmer, nil); len(races) != 0 {
		t.Errorf("Example 2.1 must be race-free under HBww, got races %v\n%s", races, event.Pretty(x))
	}
	// Without HBww (implementation model) the two writes to x race.
	if races := GraphRaces(x, Implementation, nil); len(races) == 0 {
		t.Error("Example 2.1 must be racy without HBww")
	}
	if MixedRaceFree(x, Implementation) {
		t.Error("the privatization race is a mixed (write-write, tx-vs-plain) race")
	}
	if !Consistent(x, Implementation) {
		t.Error("Example 2.1 remains consistent in the implementation model")
	}
}

func TestExample22AtomWW(t *testing.T) {
	x := ex22(t)
	v := Check(x, Programmer)
	if v.Consistent {
		t.Fatalf("Example 2.2 must be inconsistent in the programmer model\n%s", event.Pretty(x))
	}
	found := false
	for _, name := range v.Violations {
		if name == AtomWW.String() {
			found = true
		}
	}
	if !found {
		t.Errorf("Example 2.2 must violate Atomww, got %v", v.Violations)
	}
	// The implementation model drops Atomww and allows it (§5).
	if !Consistent(x, Implementation) {
		t.Error("Example 2.2 must be consistent in the implementation model")
	}
}

func TestHBwwCascade(t *testing.T) {
	// §2: "Order from HBww can cascade". Two chained privatizations; the
	// final plain writes x':=2; x:=2 must be hb-after the transactional
	// writes x':=1 and x:=1.
	b := event.NewBuilder("x", "y", "u", "v") // u,v play x',y'
	t1 := b.Thread()
	t1.Begin("a")
	t1.R("y", 0)
	wx1 := t1.W("x", 1)
	t1.Commit()
	t2 := b.Thread()
	t2.Begin("b")
	t2.W("y", 1)
	t2.Commit()
	t2.Begin("a'")
	t2.R("v", 0)
	wu1 := t2.W("u", 1)
	t2.Commit()
	t3 := b.Thread()
	t3.Begin("b'")
	t3.W("v", 1)
	t3.Commit()
	wu2 := t3.W("u", 2)
	wx2 := t3.W("x", 2)
	b.WWOrder("x", wx1, wx2)
	b.WWOrder("u", wu1, wu2)
	x := b.MustBuild()

	v := Check(x, Programmer)
	if !v.Consistent {
		t.Fatalf("cascade must be consistent: %v", v)
	}
	if races := GraphRaces(x, Programmer, nil); len(races) != 0 {
		t.Errorf("cascade must be race-free, got %v", races)
	}
	// Both hb edges must be present (the second requires the first).
	if !v.HB.Has(wu1, wu2) {
		t.Error("hb missing Wu1 → Wu2")
	}
	if !v.HB.Has(wx1, wx2) {
		t.Error("hb missing cascaded Wx1 → Wx2")
	}
}

func TestLoadBufferingForbidden(t *testing.T) {
	// §2: Causality includes lwr, forbidding load buffering.
	b := event.NewBuilder("x", "y")
	t1 := b.Thread()
	rx := t1.R("x", 1)
	t1.W("y", 1)
	t2 := b.Thread()
	ry := t2.R("y", 1)
	wx := t2.W("x", 1)
	_ = rx
	_ = ry
	_ = wx
	x := b.MustBuild()
	v := Check(x, Programmer)
	if v.Consistent {
		t.Fatal("load buffering must be forbidden")
	}
	if v.Violations[0] != AxCausality {
		t.Errorf("load buffering must violate Causality, got %v", v.Violations)
	}
}

func TestStoreBufferingAllowed(t *testing.T) {
	b := event.NewBuilder("x", "y")
	t1 := b.Thread()
	t1.W("x", 1)
	t1.R("y", 0)
	t2 := b.Thread()
	t2.W("y", 1)
	t2.R("x", 0)
	x := b.MustBuild()
	if !Consistent(x, Programmer) {
		t.Fatal("store buffering must be allowed (plain antidependencies are only irreflexive)")
	}
}

// abortedReadPublication builds the §2 "allowed" execution:
// committed tx {Wx1, Wy1} || aborted tx {Ry1}; plain Rx0.
func abortedReadPublication(t testing.TB) *event.Execution {
	b := event.NewBuilder("x", "y")
	t1 := b.Thread()
	t1.Begin("w")
	t1.W("x", 1)
	t1.W("y", 1)
	t1.Commit()
	t2 := b.Thread()
	t2.Begin("r")
	t2.R("y", 1)
	t2.Abort()
	t2.R("x", 0)
	x, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestAbortedReadPublication(t *testing.T) {
	x := abortedReadPublication(t)
	if !Consistent(x, Programmer) {
		t.Fatal("publication through an aborted read must be allowed with cwr in hb")
	}
	// "would be disallowed if hb included xwr rather than cwr"
	cfg := Programmer
	cfg.XWRInHB = true
	if Consistent(x, cfg) {
		t.Fatal("with xwr in hb the execution must be forbidden")
	}
}

func TestOpacityAbortedIRIW(t *testing.T) {
	// §2 "Forbidden": singleton committed writer transactions; two aborted
	// reader transactions observing them in opposite orders. Opacity
	// requires a total order over all transactions, so this is forbidden.
	b := event.NewBuilder("x", "y")
	t1 := b.Thread()
	t1.Begin("wx")
	t1.W("x", 1)
	t1.Commit()
	t2 := b.Thread()
	t2.Begin("wy")
	t2.W("y", 1)
	t2.Commit()
	t3 := b.Thread()
	t3.Begin("c")
	t3.R("x", 1)
	t3.R("y", 0)
	t3.Abort()
	t4 := b.Thread()
	t4.Begin("d")
	t4.R("y", 1)
	t4.R("x", 0)
	t4.Abort()
	x := b.MustBuild()
	v := Check(x, Programmer)
	if v.Consistent {
		t.Fatal("aborted IRIW must be forbidden (opacity)")
	}
	if v.Violations[0] != AxCausality {
		t.Errorf("expected Causality violation, got %v", v.Violations)
	}
}

func TestPlainWWCycleAllowed(t *testing.T) {
	// §2 "Allowed": plain po ∪ ww cycles are permitted (this is why
	// Causality cannot use lww).
	b := event.NewBuilder("x", "y")
	t1 := b.Thread()
	wx2 := t1.W("x", 2)
	wy1 := t1.W("y", 1)
	t2 := b.Thread()
	wy2 := t2.W("y", 2)
	wx1 := t2.W("x", 1)
	b.WWOrder("x", wx1, wx2)
	b.WWOrder("y", wy1, wy2)
	x := b.MustBuild()
	if !Consistent(x, Programmer) {
		t.Fatal("plain po∪ww cycle must be allowed")
	}
}

func TestCoherenceStrongerThanJava(t *testing.T) {
	// §2 "Forbidden": after synchronizing via a committed transaction on y,
	// a stale read of x is forbidden by Observation.
	b := event.NewBuilder("x", "y")
	t1 := b.Thread()
	wx1 := t1.W("x", 1)
	t1.Begin("wy")
	t1.W("y", 1)
	t1.Commit()
	t2 := b.Thread()
	wx2 := t2.W("x", 2)
	t2.Begin("ry")
	t2.R("y", 1)
	t2.Commit()
	r2 := t2.R("x", 2)
	r1 := t2.R("x", 1)
	b.WWOrder("x", wx1, wx2)
	b.RF(wx2, r2)
	b.RF(wx1, r1)
	x := b.MustBuild()
	v := Check(x, Programmer)
	if v.Consistent {
		t.Fatal("stale read after synchronization must be forbidden")
	}
}

func TestCoherenceWeakerThanHardware(t *testing.T) {
	// §2 "Allowed": reading 2, 1, 2 from unsynchronized plain writes is
	// allowed (needed for common subexpression elimination).
	b := event.NewBuilder("x")
	t1 := b.Thread()
	wx1 := t1.W("x", 1)
	wx2 := t1.W("x", 2)
	t2 := b.Thread()
	ra := t2.R("x", 2)
	rb := t2.R("x", 1)
	rc := t2.R("x", 2)
	b.WWOrder("x", wx1, wx2)
	b.RF(wx2, ra)
	b.RF(wx1, rb)
	b.RF(wx2, rc)
	x := b.MustBuild()
	if !Consistent(x, Programmer) {
		t.Fatal("2,1,2 read sequence of plain writes must be allowed")
	}
}

// ex31 builds Example 3.1 (publication by antidependence is NOT enforced):
// x:=1; atomic_a { r:=y } || atomic_b { q:=x; y:=1 } with r=q=0.
func ex31(t testing.TB) *event.Execution {
	b := event.NewBuilder("x", "y")
	t1 := b.Thread()
	t1.W("x", 1)
	t1.Begin("a")
	t1.R("y", 0)
	t1.Commit()
	t2 := b.Thread()
	t2.Begin("b")
	t2.R("x", 0)
	t2.W("y", 1)
	t2.Commit()
	x, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestExample31PublicationByAntidependence(t *testing.T) {
	x := ex31(t)
	if !Consistent(x, Programmer) {
		t.Fatal("Example 3.1 (r=q=0) must be allowed in the programmer model")
	}
	// Forbidden by any model that enforces Atom'rw.
	if Consistent(x, Variant(HBrwP)) {
		t.Fatal("Example 3.1 must be forbidden under Atom'rw")
	}
	// x86-TSO includes crw in hb and also forbids it (§6).
	if Consistent(x, TSO) {
		t.Fatal("Example 3.1 must be forbidden under TSO")
	}
}

func TestExample32NoGlobalLockAtomicity(t *testing.T) {
	// x:=1; atomic_a { y:=1 }; r:=z || atomic_b { q:=x; z:=1 } with r=q=0:
	// allowed by all variants including Atom'rw.
	b := event.NewBuilder("x", "y", "z")
	t1 := b.Thread()
	t1.W("x", 1)
	t1.Begin("a")
	t1.W("y", 1)
	t1.Commit()
	t1.R("z", 0)
	t2 := b.Thread()
	t2.Begin("b")
	t2.R("x", 0)
	t2.W("z", 1)
	t2.Commit()
	x := b.MustBuild()
	for _, cfg := range []Config{Programmer, Implementation, Strongest} {
		if !Consistent(x, cfg) {
			t.Errorf("Example 3.2 must be allowed under %s", cfg.Name)
		}
	}
}

func TestExample33RacyPublicationForbidden(t *testing.T) {
	// x:=1; atomic_a { y:=1 } || q:=2; atomic_b { r:=x; if y then q:=r }:
	// b reading x=0 and y=1 violates Observation.
	b := event.NewBuilder("x", "y")
	t1 := b.Thread()
	t1.W("x", 1)
	t1.Begin("a")
	t1.W("y", 1)
	t1.Commit()
	t2 := b.Thread()
	t2.Begin("b")
	t2.R("x", 0)
	t2.R("y", 1)
	t2.Commit()
	x := b.MustBuild()
	v := Check(x, Programmer)
	if v.Consistent {
		t.Fatal("Example 3.3: reading x=0, y=1 must be forbidden")
	}
}

func TestQuiescenceFenceOrders(t *testing.T) {
	// Implementation-model privatization with a fence: the fence creates
	// hb between the transactional write and the later plain write,
	// removing the mixed race (§5).
	build := func(withFence bool) *event.Execution {
		b := event.NewBuilder("x", "y")
		t1 := b.Thread()
		t1.Begin("a")
		t1.R("y", 0)
		wx1 := t1.W("x", 1)
		t1.Commit()
		t2 := b.Thread()
		t2.Begin("b")
		t2.W("y", 1)
		t2.Commit()
		if withFence {
			t2.Q("x")
		}
		wx2 := t2.W("x", 2)
		b.WWOrder("x", wx1, wx2)
		return b.MustBuild()
	}
	noFence := build(false)
	if MixedRaceFree(noFence, Implementation) {
		t.Fatal("unfenced privatization must have a mixed race in the implementation model")
	}
	fenced := build(true)
	if vs := event.WellFormed(fenced); len(vs) != 0 {
		t.Fatalf("fenced trace not well-formed: %v", vs)
	}
	if !MixedRaceFree(fenced, Implementation) {
		t.Fatalf("fenced privatization must be mixed-race-free\n%s", event.Pretty(fenced))
	}
	if !Consistent(fenced, Implementation) {
		t.Fatal("fenced privatization must be consistent")
	}
}

func TestLiftedRelationExample(t *testing.T) {
	// §2 "Lifted Relations": b1:Wy1, b2:Wx1 in one committed transaction;
	// c: plain Ry1; d: plain Wx2.
	b := event.NewBuilder("x", "y")
	t1 := b.Thread()
	t1.Begin("b")
	b1 := t1.W("y", 1)
	b2 := t1.W("x", 1)
	t1.Commit()
	t2 := b.Thread()
	c := t2.R("y", 1)
	d := t2.W("x", 2)
	b.WWOrder("x", b2, d)
	x := b.MustBuild()
	r := Derive(x)

	if !r.WR.Has(b1, c) {
		t.Error("base wr missing b1 → c")
	}
	if r.WR.Has(b2, c) {
		t.Error("base wr must not relate b2 → c")
	}
	if !r.LWR.Has(b2, c) {
		t.Error("lifted lwr must relate b2 → c")
	}
	if !r.LWW.Has(b1, d) {
		t.Error("lifted lww must relate b1 → d")
	}
	if r.WW.Has(b1, d) {
		t.Error("base ww must not relate b1 → d (different locations)")
	}
	// The "x" variants exclude the plain d; the "c" variants also exclude c.
	if r.XWW.Has(b1, d) || r.XWR.Has(b2, c) {
		t.Error("x-variants must exclude plain endpoints")
	}
}

func TestVariantConfigs(t *testing.T) {
	for _, v := range []HBVariant{HBww, HBrw, HBwr, HBwwP, HBrwP, HBwrP} {
		cfg := Variant(v)
		if !cfg.HasHB(v) {
			t.Errorf("Variant(%v) does not enable %v", v, v)
		}
		switch v {
		case HBwr, HBwrP:
			if len(cfg.Atoms) != 0 {
				t.Errorf("Variant(%v) must not add an Atom axiom", v)
			}
		default:
			if len(cfg.Atoms) != 1 {
				t.Errorf("Variant(%v) must add exactly one Atom axiom", v)
			}
		}
	}
}

func TestDoomedTransactionForbidden(t *testing.T) {
	// §4: atomic_a { if !y then while x do skip } || atomic_b { y:=1 }; x:=1.
	// A live transaction a that read y=0 and then x=1 is inconsistent.
	b := event.NewBuilder("x", "y")
	t1 := b.Thread()
	t1.Begin("a")
	t1.R("y", 0)
	t1.R("x", 1) // spinning: observed the plain write
	// a never resolves: live.
	t2 := b.Thread()
	t2.Begin("b")
	t2.W("y", 1)
	t2.Commit()
	t2.W("x", 1)
	x := b.MustBuild()
	if Consistent(x, Programmer) {
		t.Fatal("doomed transaction execution must be inconsistent")
	}
}

func TestTheorem42RemoveAborted(t *testing.T) {
	// Removing aborted transactions preserves consistency on the corpus.
	execs := []*event.Execution{
		ex21(t), ex22(t), ex31(t), abortedReadPublication(t),
	}
	for i, x := range execs {
		before := Consistent(x, Programmer)
		y := x.RemoveAborted()
		if err := y.Validate(); err != nil {
			t.Fatalf("exec %d: removal broke validity: %v", i, err)
		}
		if before && !Consistent(y, Programmer) {
			t.Errorf("exec %d: consistency lost after removing aborted transactions", i)
		}
	}
}
