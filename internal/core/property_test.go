package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"modtx/internal/event"
	"modtx/internal/rel"
)

// randomExecution builds a structurally valid random execution: up to
// three threads of transactional/plain reads and writes over two
// locations, with random statuses, reads-from and coherence orders.
func randomExecution(rng *rand.Rand) *event.Execution {
	b := event.NewBuilder("x", "y")
	locs := []string{"x", "y"}
	type wrec struct {
		id  int
		loc string
		val int
	}
	writes := map[string][]wrec{
		"x": {{id: b.InitWrite("x"), loc: "x", val: 0}},
		"y": {{id: b.InitWrite("y"), loc: "y", val: 0}},
	}
	nextVal := 1
	threads := 1 + rng.Intn(3)
	var reads []struct {
		id  int
		loc string
	}
	for t := 0; t < threads; t++ {
		tb := b.Thread()
		inTx := false
		steps := 1 + rng.Intn(4)
		for s := 0; s < steps; s++ {
			switch rng.Intn(4) {
			case 0: // begin/resolve
				if inTx {
					if rng.Intn(2) == 0 {
						tb.Commit()
					} else {
						tb.Abort()
					}
					inTx = false
				} else {
					tb.Begin("")
					inTx = true
				}
			case 1: // write a fresh value
				loc := locs[rng.Intn(2)]
				id := tb.W(loc, nextVal)
				writes[loc] = append(writes[loc], wrec{id: id, loc: loc, val: nextVal})
				nextVal++
			default: // read (value bound later via explicit RF)
				loc := locs[rng.Intn(2)]
				ws := writes[loc]
				w := ws[rng.Intn(len(ws))]
				id := tb.R(loc, w.val)
				b.RF(w.id, id)
				reads = append(reads, struct {
					id  int
					loc string
				}{id, loc})
			}
		}
		// Half of the time leave the transaction open (live).
		if inTx && rng.Intn(2) == 0 {
			tb.Commit()
		}
	}
	// Random coherence orders.
	for _, loc := range locs {
		ws := writes[loc][1:]
		ids := make([]int, len(ws))
		for i, w := range ws {
			ids[i] = w.id
		}
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		b.WWOrder(loc, ids...)
	}
	x, err := b.Build()
	if err != nil {
		// Some random combinations are structurally impossible (e.g. a
		// read bound to a write that the shuffle reordered incompatibly is
		// still fine; Build errors only on real structural breakage).
		return nil
	}
	return x
}

// Property: lifting is extensive, monotone and idempotent-ish (lifting a
// lifted relation adds nothing new at transaction granularity).
func TestLiftProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 300; iter++ {
		x := randomExecution(rng)
		if x == nil {
			continue
		}
		base := x.WRRel()
		lifted := Lift(x, base)
		if !base.SubsetOf(lifted) {
			t.Fatal("lift not extensive")
		}
		if !Lift(x, lifted).Equal(lifted) {
			t.Fatal("lift not idempotent")
		}
	}
}

// Property: hb is transitive and contains po and init.
func TestHBProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 300; iter++ {
		x := randomExecution(rng)
		if x == nil {
			continue
		}
		r := Derive(x)
		for _, cfg := range []Config{Programmer, Implementation, TSO, Strongest} {
			hb := HB(r, cfg)
			if !r.PO.SubsetOf(hb) || !r.Init.SubsetOf(hb) {
				t.Fatalf("%s: hb misses po/init", cfg.Name)
			}
			if !rel.Compose(hb, hb).SubsetOf(hb) {
				t.Fatalf("%s: hb not transitive", cfg.Name)
			}
		}
	}
}

// Property: the programmer model is at least as strong as the
// implementation model (its hb is a superset, so consistency implies
// implementation consistency on HB-monotone axioms is NOT generally true —
// but the implementation model never rejects an execution the programmer
// model accepts on the shared axioms; here we check hb inclusion).
func TestHBMonotoneAcrossModels(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 300; iter++ {
		x := randomExecution(rng)
		if x == nil {
			continue
		}
		r := Derive(x)
		hbImpl := HB(r, Implementation)
		hbProg := HB(r, Programmer)
		hbTSO := HB(r, TSO)
		if !hbImpl.SubsetOf(hbProg) {
			t.Fatal("implementation hb ⊄ programmer hb")
		}
		if !hbImpl.SubsetOf(hbTSO) {
			t.Fatal("implementation hb ⊄ TSO hb")
		}
	}
}

// Property: removing aborted transactions preserves consistency
// (Theorem 4.2) on random executions.
func TestTheorem42Random(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	checked := 0
	for iter := 0; iter < 500; iter++ {
		x := randomExecution(rng)
		if x == nil || !Consistent(x, Programmer) {
			continue
		}
		checked++
		y := x.RemoveAborted()
		if err := y.Validate(); err != nil {
			t.Fatalf("removal broke validity: %v", err)
		}
		if !Consistent(y, Programmer) {
			t.Fatalf("Theorem 4.2 violated:\n%s", event.Pretty(x))
		}
	}
	if checked < 50 {
		t.Fatalf("only %d consistent random executions; generator too weak", checked)
	}
}

// Property: GraphRaces is symmetric in its reporting and only ever pairs
// a plain access with something (two transactional actions cannot race).
func TestRaceProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randomExecution(rng)
		if x == nil {
			return true
		}
		for _, r := range GraphRaces(x, Programmer, nil) {
			if !x.IsPlain(r.A) && !x.IsPlain(r.B) {
				return false
			}
			ea, eb := x.Ev(r.A), x.Ev(r.B)
			if ea.Loc != eb.Loc {
				return false
			}
			if ea.Kind != event.KWrite && eb.Kind != event.KWrite {
				return false
			}
			if !x.NonAborted(r.A) || !x.NonAborted(r.B) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: consistency is monotone under removing reads-from edges is NOT
// meaningful; instead check that prefixes of consistent traces remain
// consistent (used by the Σ construction).
func TestPrefixConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for iter := 0; iter < 300; iter++ {
		x := randomExecution(rng)
		if x == nil || !Consistent(x, Programmer) {
			continue
		}
		if !event.IsWellFormed(x) {
			continue
		}
		for k := 4; k <= x.N(); k++ {
			// Prefixes may cut fulfilling writes of later reads; Prefix
			// panics in that case, which IsWellFormed-checked traces avoid.
			p := x.Prefix(k)
			if !Consistent(p, Programmer) {
				t.Fatalf("prefix of consistent trace inconsistent at %d:\n%s", k, event.Pretty(x))
			}
		}
	}
}
