package core

import (
	"modtx/internal/event"
	"modtx/internal/rel"
)

// Race is an ordered pair of conflicting events.
type Race struct {
	A, B int // event ids; for trace races, A index→ B
	Loc  int
}

// LConflict implements §4: two actions are in L-conflict if they both
// access the same x ∈ L, at least one is plain, at least one is a write,
// and neither is aborted. (Two transactional actions cannot race.)
func LConflict(x *event.Execution, L map[int]bool, a, b int) bool {
	ea, eb := x.Ev(a), x.Ev(b)
	if !isAccess(ea.Kind) || !isAccess(eb.Kind) {
		return false
	}
	if ea.Loc != eb.Loc || (L != nil && !L[ea.Loc]) {
		return false
	}
	if !x.IsPlain(a) && !x.IsPlain(b) {
		return false
	}
	if ea.Kind != event.KWrite && eb.Kind != event.KWrite {
		return false
	}
	return x.NonAborted(a) && x.NonAborted(b)
}

func isAccess(k event.Kind) bool { return k == event.KRead || k == event.KWrite }

// TraceRaces returns the L-races of the trace view (§4): pairs (b, c) in
// L-conflict with b index→ c but not b hb→ c. L == nil means all locations.
func TraceRaces(x *event.Execution, cfg Config, L map[int]bool) []Race {
	hb := HB(Derive(x), cfg)
	return traceRacesHB(x, hb, L)
}

func traceRacesHB(x *event.Execution, hb *rel.Rel, L map[int]bool) []Race {
	var races []Race
	for b := 0; b < x.N(); b++ {
		for c := b + 1; c < x.N(); c++ {
			if LConflict(x, L, b, c) && !hb.Has(b, c) {
				races = append(races, Race{A: b, B: c, Loc: x.Ev(b).Loc})
			}
		}
	}
	return races
}

// GraphRaces returns conflicting pairs unordered by hb in either direction.
// This is the order-insensitive view used for execution-graph figures,
// where no trace index is intended.
func GraphRaces(x *event.Execution, cfg Config, L map[int]bool) []Race {
	hb := HB(Derive(x), cfg)
	var races []Race
	for b := 0; b < x.N(); b++ {
		for c := b + 1; c < x.N(); c++ {
			if LConflict(x, L, b, c) && !hb.Has(b, c) && !hb.Has(c, b) {
				races = append(races, Race{A: b, B: c, Loc: x.Ev(b).Loc})
			}
		}
	}
	return races
}

// RaceFree reports whether the execution has no races at all (graph view).
func RaceFree(x *event.Execution, cfg Config) bool {
	return len(GraphRaces(x, cfg, nil)) == 0
}

// MixedRaces returns the §5 mixed races: L-races between a transactional
// write and a plain write, over any location set (we use all locations,
// which is the union over all L ⊆ Loc).
func MixedRaces(x *event.Execution, cfg Config) []Race {
	var mixed []Race
	for _, r := range TraceRaces(x, cfg, nil) {
		ea, eb := x.Ev(r.A), x.Ev(r.B)
		if ea.Kind != event.KWrite || eb.Kind != event.KWrite {
			continue
		}
		if x.IsPlain(r.A) != x.IsPlain(r.B) {
			mixed = append(mixed, r)
		}
	}
	return mixed
}

// MixedRaceFree reports whether the execution has no mixed race under cfg.
func MixedRaceFree(x *event.Execution, cfg Config) bool {
	return len(MixedRaces(x, cfg)) == 0
}

// LocSet builds a location set from names, for use as the L parameter.
func LocSet(x *event.Execution, names ...string) map[int]bool {
	L := make(map[int]bool, len(names))
	for _, n := range names {
		if id := x.LocID(n); id >= 0 {
			L[id] = true
		}
	}
	return L
}
