package core

import (
	"modtx/internal/event"
	"modtx/internal/rel"
)

// Rels bundles every relation the model derives from an execution (§2).
// Lifted relations follow the paper's notation: the "l" variants lift to
// transaction granularity, the "x" variants restrict lifting to
// transactional actions, and the "c" variants further restrict to
// committed-or-live (nonaborted) transactions.
type Rels struct {
	X *event.Execution

	PO   *rel.Rel // program order
	Init *rel.Rel // initialization order
	WW   *rel.Rel // write-to-write (coherence, from timestamps)
	WR   *rel.Rel // write-to-read (reads-from)
	RW   *rel.Rel // read-to-write (antidependency)

	LWW, LWR, LRW *rel.Rel
	XWW, XWR, XRW *rel.Rel
	CWW, CWR, CRW *rel.Rel
}

// Derive computes all base and lifted relations of the execution.
func Derive(x *event.Execution) *Rels {
	r := &Rels{
		X:    x,
		PO:   x.PO(),
		Init: x.InitRel(),
		WW:   x.WWRel(),
		WR:   x.WRRel(),
		RW:   x.RWRel(),
	}
	r.LWW = Lift(x, r.WW)
	r.LWR = Lift(x, r.WR)
	r.LRW = Lift(x, r.RW)
	r.XWW = restrictX(x, r.LWW)
	r.XWR = restrictX(x, r.LWR)
	r.XRW = restrictX(x, r.LRW)
	r.CWW = restrictC(x, r.XWW)
	r.CWR = restrictC(x, r.XWR)
	r.CRW = restrictC(x, r.XRW)
	return r
}

// Lift implements the lifting of §2:
//
//	a lR→ b iff a R→ b, or a′ R→ b′ for some a′ tx∼ a ≁tx b tx∼ b′.
//
// Cross-transaction base edges are expanded to the full product of the two
// transactions' action sets (begin/commit/abort actions included, matching
// the paper's use of tx∼ with B/C/A in §5); same-transaction base edges
// are kept as-is.
func Lift(x *event.Execution, base *rel.Rel) *rel.Rel {
	classes := txClasses(x)
	out := base.Clone()
	base.Each(func(a, b int) {
		if x.SameTx(a, b) {
			return
		}
		for _, a2 := range classOf(x, classes, a) {
			for _, b2 := range classOf(x, classes, b) {
				out.Add(a2, b2)
			}
		}
	})
	return out
}

// txClasses returns, per transaction id, the ids of all its events.
func txClasses(x *event.Execution) [][]int {
	classes := make([][]int, x.NTx())
	for _, e := range x.Events {
		if e.Tx != event.NoTx {
			classes[e.Tx] = append(classes[e.Tx], e.ID)
		}
	}
	return classes
}

func classOf(x *event.Execution, classes [][]int, id int) []int {
	if tx := x.Ev(id).Tx; tx != event.NoTx {
		return classes[tx]
	}
	return []int{id}
}

// restrictX keeps pairs whose endpoints are both transactional ("x" variant).
func restrictX(x *event.Execution, r *rel.Rel) *rel.Rel {
	return r.Restrict(x.Transactional)
}

// restrictC keeps pairs whose endpoints are both in committed or live
// transactions ("c" variant).
func restrictC(x *event.Execution, r *rel.Rel) *rel.Rel {
	return r.Restrict(x.CommittedOrLive)
}
