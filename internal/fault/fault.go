// Package fault is the deterministic fault-injection layer: seeded,
// in-process fault models for the store's three I/O boundaries — WAL
// file operations (DiskFS, behind the wal.FS seam), replication
// connections (Conn / Dialer, wrapping net.Conn), and, through those
// two, everything the chaos tests drive end-to-end.
//
// Two principles shape the package:
//
//   - Determinism. Every probabilistic decision is drawn from a PCG
//     stream seeded by the caller, so a failing chaos run replays from
//     its seed. (Goroutine interleaving still varies between runs; the
//     seed fixes the fault schedule, not the scheduler.)
//   - Enumerability. Faults are injected only at the named seams, and
//     every injection is counted per kind (Stats), so a test can assert
//     not just "the system survived" but "the system survived N sync
//     failures and M connection cuts".
//
// Both injectors also take scripted one-shot faults (FailNextWrite,
// FailNextSync, ...) for tests that need a fault at an exact point
// rather than a seeded schedule, and both can be healed at runtime
// (Heal), which is what recovery-convergence tests do before asserting
// the system climbs back to a consistent state.
package fault

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"syscall"
)

// Injected fault errors. They wrap the real errno so code under test
// exercises its genuine errno-handling paths (errors.Is(err,
// syscall.ENOSPC) holds), while ErrInjected lets tests tell an
// injected fault from an organic one.
var (
	// ErrInjected marks every error this package fabricates.
	ErrInjected = errors.New("fault: injected")
	// ErrDiskFull is an injected ENOSPC.
	ErrDiskFull = fmt.Errorf("%w: %w", ErrInjected, syscall.ENOSPC)
	// ErrIO is an injected EIO.
	ErrIO = fmt.Errorf("%w: %w", ErrInjected, syscall.EIO)
	// ErrPartitioned is an injected network partition.
	ErrPartitioned = fmt.Errorf("%w: network partitioned", ErrInjected)
)

// newRNG builds the package's seeded PCG stream. The second word just
// decorrelates streams built from small consecutive seeds.
func newRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}
