package fault

import (
	"context"
	"errors"
	"net"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"modtx/internal/wal"
)

func openFile(t *testing.T, d *DiskFS, name string) wal.File {
	t.Helper()
	f, err := d.OpenFile(name, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestDiskScripted pins the one-shot fault scripts: each fires exactly
// once, in FIFO order, against the next matching operation.
func TestDiskScripted(t *testing.T) {
	d := NewDiskFS(nil, DiskPlan{})
	f := openFile(t, d, filepath.Join(t.TempDir(), "log"))

	d.FailNextWrite(ErrIO)
	if _, err := f.Write([]byte("doomed")); !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.EIO) {
		t.Fatalf("scripted write error: %v", err)
	}
	if _, err := f.Write([]byte("fine")); err != nil {
		t.Fatalf("one-shot leaked into the next write: %v", err)
	}

	d.FailNextSync(ErrIO)
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("scripted sync error: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("one-shot leaked into the next sync: %v", err)
	}

	d.FailNextOpen(ErrIO)
	if _, err := d.OpenFile(filepath.Join(t.TempDir(), "x"), os.O_CREATE|os.O_RDWR, 0o644); !errors.Is(err, ErrInjected) {
		t.Fatalf("scripted open error: %v", err)
	}

	s := d.Stats()
	if s.WriteErrs != 1 || s.SyncErrs != 1 || s.OpenErrs != 1 || s.Total() != 3 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestDiskTornWrite pins the torn-write shape: a strict prefix of at
// least one byte lands, the call errors, and the bytes on disk match
// the reported short count.
func TestDiskTornWrite(t *testing.T) {
	d := NewDiskFS(nil, DiskPlan{})
	path := filepath.Join(t.TempDir(), "log")
	f := openFile(t, d, path)

	payload := []byte("0123456789abcdef")
	d.TearNextWrite()
	n, err := f.Write(payload)
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write did not error: n=%d err=%v", n, err)
	}
	if n < 1 || n >= len(payload) {
		t.Fatalf("torn write landed %d of %d bytes; want a strict prefix >= 1", n, len(payload))
	}
	b, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(b) != string(payload[:n]) {
		t.Fatalf("on disk %q, reported prefix %q", b, payload[:n])
	}
	if s := d.Stats(); s.TornWrite != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestDiskWriteBudget pins the disk-full story: writes succeed until
// the byte budget is spent, then every write fails ENOSPC until Heal.
func TestDiskWriteBudget(t *testing.T) {
	d := NewDiskFS(nil, DiskPlan{WriteBudget: 10})
	f := openFile(t, d, filepath.Join(t.TempDir(), "log"))

	if _, err := f.Write([]byte("0123456789")); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, ErrInjected) {
		t.Fatalf("over budget: %v", err)
	}
	if _, err := f.Write([]byte("y")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("disk-full is not sticky: %v", err)
	}
	d.Heal()
	if _, err := f.Write([]byte("z")); err != nil {
		t.Fatalf("healed disk still failing: %v", err)
	}
	if s := d.Stats(); s.ENOSPC != 2 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestDiskDeterministic pins the seed contract: two DiskFS with the
// same plan inject faults at exactly the same call indices.
func TestDiskDeterministic(t *testing.T) {
	run := func() []int {
		d := NewDiskFS(nil, DiskPlan{Seed: 42, WriteErrProb: 0.2})
		f := openFile(t, d, filepath.Join(t.TempDir(), "log"))
		var failed []int
		for i := 0; i < 100; i++ {
			if _, err := f.Write([]byte("abc")); err != nil {
				failed = append(failed, i)
			}
		}
		return failed
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("0.2 write-error probability injected nothing in 100 writes")
	}
	if len(a) != len(b) {
		t.Fatalf("schedules diverge: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d: %v vs %v", i, a, b)
		}
	}
}

// TestNetPartition pins the partition switch: it kills live wrapped
// conns, refuses operations on both wrapped conns and dials while on,
// counts each refusal, and lifts cleanly.
func TestNetPartition(t *testing.T) {
	n := NewNet(NetPlan{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 64)
				for {
					k, err := c.Read(buf)
					if err != nil {
						return
					}
					c.Write(buf[:k])
				}
			}()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := n.Dial(ctx, "tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := c.Read(buf); err != nil {
		t.Fatal(err)
	}

	n.Partition(true)
	if _, err := c.Write([]byte("no")); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("write through partition: %v", err)
	}
	if _, err := n.Dial(ctx, "tcp", l.Addr().String()); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("dial through partition: %v", err)
	}
	if s := n.Stats(); s.Partitions < 2 {
		t.Fatalf("stats: %+v", s)
	}

	n.Partition(false)
	c2, err := n.Dial(ctx, "tcp", l.Addr().String())
	if err != nil {
		t.Fatalf("dial after partition lifted: %v", err)
	}
	defer c2.Close()
	if _, err := c2.Write([]byte("ok")); err != nil {
		t.Fatalf("write after partition lifted: %v", err)
	}
}
