package fault

import (
	"context"
	"math/rand/v2"
	"net"
	"sync"
	"time"
)

// NetPlan is a seeded schedule of connection faults. As with DiskPlan,
// the zero plan injects nothing.
type NetPlan struct {
	// Seed fixes the fault schedule.
	Seed uint64

	// CutProb closes the connection mid-write: a prefix of the bytes
	// lands (possibly splitting a frame) and then the conn dies — the
	// mid-frame cut the streamer's reconnect path must absorb.
	CutProb float64
	// DelayProb, with Delay, sleeps before a read or write proceeds.
	DelayProb float64
	Delay     time.Duration
	// StallProb, with Stall, holds a write for a long pause without
	// failing it — a congested or half-dead link rather than a broken
	// one. The peer's read deadline decides whether that kills the
	// session.
	StallProb float64
	Stall     time.Duration
	// DialErrProb fails a Dial attempt outright.
	DialErrProb float64
}

// NetStats counts injected network faults.
type NetStats struct {
	Cuts       int64 // connections cut mid-write
	Delays     int64 // read/write delays
	Stalls     int64 // write stalls
	DialErrs   int64 // failed dials
	Partitions int64 // operations refused while partitioned
}

// Net injects faults into connections. One Net is shared by every
// conn it wraps: the partition switch and the seeded schedule are
// global to it, which is what lets a chaos test cut "the network"
// rather than one socket.
type Net struct {
	mu          sync.Mutex
	rng         *rand.Rand
	plan        NetPlan
	partitioned bool
	healed      bool
	conns       map[*Conn]struct{}
	stats       NetStats
}

// NewNet builds a fault injector from plan.
func NewNet(plan NetPlan) *Net {
	return &Net{plan: plan, rng: newRNG(plan.Seed), conns: make(map[*Conn]struct{})}
}

// Partition flips the global partition: while set, every wrapped
// conn's reads and writes fail (closing the conn) and dials are
// refused. Un-partitioning heals new connections; existing ones were
// already killed.
func (n *Net) Partition(on bool) {
	n.mu.Lock()
	n.partitioned = on
	var conns []*Conn
	if on {
		for c := range n.conns {
			conns = append(conns, c)
		}
	}
	n.mu.Unlock()
	for _, c := range conns {
		c.Conn.Close()
	}
}

// Heal stops all scheduled injection (the partition switch is separate
// — heal + partition(false) is a fully healthy network).
func (n *Net) Heal() {
	n.mu.Lock()
	n.healed = true
	n.mu.Unlock()
}

// Stats snapshots the injected-fault counters.
func (n *Net) Stats() NetStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Wrap interposes the injector on a conn.
func (n *Net) Wrap(c net.Conn) *Conn {
	fc := &Conn{Conn: c, net: n}
	n.mu.Lock()
	n.conns[fc] = struct{}{}
	n.mu.Unlock()
	return fc
}

// Dial dials through the injector: scheduled dial failures, partition
// refusal, and a fault-wrapped conn on success. Drop-in for a
// net.Dialer's DialContext.
func (n *Net) Dial(ctx context.Context, network, addr string) (net.Conn, error) {
	n.mu.Lock()
	if n.partitioned {
		n.stats.Partitions++
		n.mu.Unlock()
		return nil, ErrPartitioned
	}
	fail := !n.healed && n.plan.DialErrProb > 0 && n.rng.Float64() < n.plan.DialErrProb
	if fail {
		n.stats.DialErrs++
	}
	n.mu.Unlock()
	if fail {
		return nil, ErrIO
	}
	var d net.Dialer
	c, err := d.DialContext(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	return n.Wrap(c), nil
}

// decide draws one fault decision for an op of n bytes (reads pass 0:
// they can be delayed or refused, not cut or stalled).
type netFault struct {
	err   error
	keep  int // bytes to let through before a cut
	sleep time.Duration
}

func (n *Net) decide(c *Conn, nbytes int, write bool) netFault {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.partitioned {
		n.stats.Partitions++
		return netFault{err: ErrPartitioned}
	}
	if n.healed {
		return netFault{keep: nbytes}
	}
	f := netFault{keep: nbytes}
	if write && n.plan.CutProb > 0 && n.rng.Float64() < n.plan.CutProb {
		n.stats.Cuts++
		f.keep = nbytes / 2
		f.err = ErrPartitioned
		return f
	}
	if write && n.plan.StallProb > 0 && n.rng.Float64() < n.plan.StallProb {
		n.stats.Stalls++
		f.sleep = n.plan.Stall
		return f
	}
	if n.plan.DelayProb > 0 && n.rng.Float64() < n.plan.DelayProb {
		n.stats.Delays++
		f.sleep = n.plan.Delay
	}
	return f
}

func (n *Net) forget(c *Conn) {
	n.mu.Lock()
	delete(n.conns, c)
	n.mu.Unlock()
}

// Conn is a fault-injected net.Conn.
type Conn struct {
	net.Conn
	net *Net
}

// Read implements net.Conn. A partition kills the conn; scheduled
// delays apply before the read.
func (c *Conn) Read(p []byte) (int, error) {
	f := c.net.decide(c, 0, false)
	if f.sleep > 0 {
		time.Sleep(f.sleep)
	}
	if f.err != nil {
		c.Conn.Close()
		return 0, f.err
	}
	return c.Conn.Read(p)
}

// Write implements net.Conn. A cut lands a prefix of p (mid-frame)
// and closes the conn; stalls and delays sleep first.
func (c *Conn) Write(p []byte) (int, error) {
	f := c.net.decide(c, len(p), true)
	if f.sleep > 0 {
		time.Sleep(f.sleep)
	}
	if f.err != nil {
		n := 0
		if f.keep > 0 {
			n, _ = c.Conn.Write(p[:f.keep])
		}
		c.Conn.Close()
		return n, f.err
	}
	return c.Conn.Write(p)
}

// Close implements net.Conn.
func (c *Conn) Close() error {
	c.net.forget(c)
	return c.Conn.Close()
}
