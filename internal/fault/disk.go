package fault

import (
	"io/fs"
	"math/rand/v2"
	"os"
	"sync"
	"time"

	"modtx/internal/wal"
)

// DiskPlan is a seeded schedule of disk faults. Probabilities are per
// operation in [0, 1]; zero values inject nothing, so the zero plan is
// a transparent passthrough.
type DiskPlan struct {
	// Seed fixes the fault schedule (not the goroutine schedule).
	Seed uint64

	// WriteErrProb fails a file write outright with EIO.
	WriteErrProb float64
	// TornWriteProb lands a prefix of the write's bytes (a torn write:
	// roughly half, at least one byte) and then fails with EIO — the
	// shape recovery's torn-tail repair exists for.
	TornWriteProb float64
	// SyncErrProb fails an fsync (file or directory) with EIO.
	SyncErrProb float64
	// OpenErrProb fails an OpenFile with EIO.
	OpenErrProb float64
	// ReadErrProb fails a ReadFile with EIO.
	ReadErrProb float64

	// WriteBudget, when > 0, is the total number of bytes accepted
	// across all files before every further write fails with ENOSPC —
	// the disk filling up.
	WriteBudget int64

	// Latency, with LatencyProb, sleeps a write or sync before it
	// proceeds — a stalling disk rather than a failing one.
	Latency     time.Duration
	LatencyProb float64
}

// DiskStats counts injected faults per kind.
type DiskStats struct {
	WriteErrs int64 // failed writes (EIO)
	TornWrite int64 // short writes
	ENOSPC    int64 // budget-exhausted writes
	SyncErrs  int64 // failed fsyncs
	OpenErrs  int64 // failed opens
	ReadErrs  int64 // failed reads
	Delays    int64 // latency injections
}

// Total sums every injected fault (latency excluded: it is not a
// failure).
func (s DiskStats) Total() int64 {
	return s.WriteErrs + s.TornWrite + s.ENOSPC + s.SyncErrs + s.OpenErrs + s.ReadErrs
}

// DiskFS is a fault-injecting wal.FS. It wraps an inner filesystem
// (the real one by default), drawing faults from its seeded plan plus
// any scripted one-shots. All state is behind one mutex: decisions are
// taken in call order, which is what makes a single-goroutine test
// fully deterministic.
type DiskFS struct {
	under wal.FS

	mu       sync.Mutex
	rng      *rand.Rand
	plan     DiskPlan
	healed   bool
	written  int64
	nextWr   []error // scripted one-shot write errors, FIFO
	nextSync []error
	nextOpen []error
	nextTear int // scripted torn writes pending
	stats    DiskStats
}

// NewDiskFS wraps under (nil = the real filesystem) with plan.
func NewDiskFS(under wal.FS, plan DiskPlan) *DiskFS {
	if under == nil {
		under = wal.OSFS
	}
	d := &DiskFS{under: under, plan: plan}
	d.rng = newRNG(plan.Seed)
	return d
}

// FailNextWrite scripts err for the next file write (after any
// already-scripted ones).
func (d *DiskFS) FailNextWrite(err error) {
	d.mu.Lock()
	d.nextWr = append(d.nextWr, err)
	d.mu.Unlock()
}

// TearNextWrite scripts a torn write: the next file write lands half
// its bytes and then fails with EIO.
func (d *DiskFS) TearNextWrite() {
	d.mu.Lock()
	d.nextTear++
	d.mu.Unlock()
}

// FailNextSync scripts err for the next fsync.
func (d *DiskFS) FailNextSync(err error) {
	d.mu.Lock()
	d.nextSync = append(d.nextSync, err)
	d.mu.Unlock()
}

// FailNextOpen scripts err for the next OpenFile.
func (d *DiskFS) FailNextOpen(err error) {
	d.mu.Lock()
	d.nextOpen = append(d.nextOpen, err)
	d.mu.Unlock()
}

// Heal stops all injection — scheduled and scripted — and resets the
// write budget. Recovery tests call this before reopening the store.
func (d *DiskFS) Heal() {
	d.mu.Lock()
	d.healed = true
	d.nextWr, d.nextSync, d.nextOpen = nil, nil, nil
	d.nextTear = 0
	d.written = 0
	d.mu.Unlock()
}

// Unheal re-arms the plan after a Heal.
func (d *DiskFS) Unheal() {
	d.mu.Lock()
	d.healed = false
	d.mu.Unlock()
}

// Stats snapshots the injected-fault counters.
func (d *DiskFS) Stats() DiskStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// maybeDelay sleeps outside the lock when the plan says so.
func (d *DiskFS) maybeDelay() {
	d.mu.Lock()
	hit := !d.healed && d.plan.LatencyProb > 0 && d.rng.Float64() < d.plan.LatencyProb
	if hit {
		d.stats.Delays++
	}
	dur := d.plan.Latency
	d.mu.Unlock()
	if hit {
		time.Sleep(dur)
	}
}

// writeFault decides the fate of an n-byte write: the error to inject
// (nil = none) and how many bytes to let through first (torn writes).
func (d *DiskFS) writeFault(n int) (keep int, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.nextWr) > 0 {
		err, d.nextWr = d.nextWr[0], d.nextWr[1:]
		d.stats.WriteErrs++
		return 0, err
	}
	if d.nextTear > 0 {
		d.nextTear--
		d.stats.TornWrite++
		return n / 2, ErrIO
	}
	if d.healed {
		return n, nil
	}
	if d.plan.WriteBudget > 0 && d.written+int64(n) > d.plan.WriteBudget {
		d.stats.ENOSPC++
		return 0, ErrDiskFull
	}
	if d.plan.WriteErrProb > 0 && d.rng.Float64() < d.plan.WriteErrProb {
		d.stats.WriteErrs++
		return 0, ErrIO
	}
	if d.plan.TornWriteProb > 0 && n > 1 && d.rng.Float64() < d.plan.TornWriteProb {
		d.stats.TornWrite++
		return n / 2, ErrIO
	}
	d.written += int64(n)
	return n, nil
}

func (d *DiskFS) syncFault() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.nextSync) > 0 {
		var err error
		err, d.nextSync = d.nextSync[0], d.nextSync[1:]
		d.stats.SyncErrs++
		return err
	}
	if !d.healed && d.plan.SyncErrProb > 0 && d.rng.Float64() < d.plan.SyncErrProb {
		d.stats.SyncErrs++
		return ErrIO
	}
	return nil
}

func (d *DiskFS) openFault() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.nextOpen) > 0 {
		var err error
		err, d.nextOpen = d.nextOpen[0], d.nextOpen[1:]
		d.stats.OpenErrs++
		return err
	}
	if !d.healed && d.plan.OpenErrProb > 0 && d.rng.Float64() < d.plan.OpenErrProb {
		d.stats.OpenErrs++
		return ErrIO
	}
	return nil
}

func (d *DiskFS) readFault() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.healed && d.plan.ReadErrProb > 0 && d.rng.Float64() < d.plan.ReadErrProb {
		d.stats.ReadErrs++
		return ErrIO
	}
	return nil
}

// OpenFile implements wal.FS.
func (d *DiskFS) OpenFile(name string, flag int, perm os.FileMode) (wal.File, error) {
	if err := d.openFault(); err != nil {
		return nil, err
	}
	f, err := d.under.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, d: d}, nil
}

// ReadFile implements wal.FS.
func (d *DiskFS) ReadFile(name string) ([]byte, error) {
	if err := d.readFault(); err != nil {
		return nil, err
	}
	return d.under.ReadFile(name)
}

// ReadDir implements wal.FS.
func (d *DiskFS) ReadDir(name string) ([]fs.DirEntry, error) { return d.under.ReadDir(name) }

// Rename implements wal.FS.
func (d *DiskFS) Rename(oldpath, newpath string) error { return d.under.Rename(oldpath, newpath) }

// Remove implements wal.FS.
func (d *DiskFS) Remove(name string) error { return d.under.Remove(name) }

// Truncate implements wal.FS.
func (d *DiskFS) Truncate(name string, size int64) error { return d.under.Truncate(name, size) }

// MkdirAll implements wal.FS.
func (d *DiskFS) MkdirAll(name string, perm os.FileMode) error {
	return d.under.MkdirAll(name, perm)
}

// SyncDir implements wal.FS: directory fsyncs share the sync fault
// class.
func (d *DiskFS) SyncDir(name string) error {
	d.maybeDelay()
	if err := d.syncFault(); err != nil {
		return err
	}
	return d.under.SyncDir(name)
}

// faultFile interposes on the write/sync path of one open file.
type faultFile struct {
	f wal.File
	d *DiskFS
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.d.maybeDelay()
	keep, ferr := ff.d.writeFault(len(p))
	if ferr != nil && keep == 0 {
		return 0, ferr
	}
	n, err := ff.f.Write(p[:keep])
	if err != nil {
		return n, err
	}
	if ferr != nil {
		return n, ferr // torn write: keep bytes landed, then the fault
	}
	return n, nil
}

func (ff *faultFile) Sync() error {
	ff.d.maybeDelay()
	if err := ff.d.syncFault(); err != nil {
		return err
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }
