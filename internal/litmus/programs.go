package litmus

import (
	"modtx/internal/core"
	"modtx/internal/event"
	"modtx/internal/exec"
	"modtx/internal/prog"
)

// Shorthand constructors for catalog programs.
func w(loc string, v int) prog.Stmt                 { return prog.Write{Loc: prog.At(loc), Val: prog.Const(v)} }
func r(reg, loc string) prog.Stmt                   { return prog.Read{RegName: reg, Loc: prog.At(loc)} }
func atomic(name string, ss ...prog.Stmt) prog.Stmt { return prog.Atomic{Name: name, Body: ss} }
func ifnz(cond prog.Expr, then ...prog.Stmt) prog.Stmt {
	return prog.If{Cond: cond, Then: then}
}

// Programs returns the catalog of litmus programs from the paper.
func Programs() []ProgramEntry {
	return []ProgramEntry{
		progE01Privatization(),
		progE02Publication(),
		progE03IRIW(),
		progE04TemporalIRIW(),
		progE19PublicationByAntidep(),
		progE20GlobalLockAtomicity(),
		progE21RacyPublication(),
		progE22EagerVersioning(),
		progE23LazyVersioning(),
		progE24LDRFPublication(),
		progE28FencedPrivatization(),
		progE30OpaqueWrites(),
		progE31RaceFreeSpeculation(),
		progE32DirtyReads(),
		progE33OverlappedWrites(),
	}
}

// PrivatizationProgram builds the §1 privatization idiom, optionally with a
// quiescence fence before the plain write (used by E01, E28 and benches).
func PrivatizationProgram(fence bool) *prog.Program {
	t2 := []prog.Stmt{atomic("b", w("y", 1))}
	if fence {
		t2 = append(t2, prog.Fence{Loc: prog.At("x")})
	}
	t2 = append(t2, w("x", 2))
	return &prog.Program{
		Name: "privatization",
		Locs: []string{"x", "y"},
		Threads: []prog.Thread{
			{Name: "t1", Body: []prog.Stmt{
				atomic("a",
					r("r", "y"),
					ifnz(prog.Not{E: prog.Reg("r")}, w("x", 1)),
				),
			}},
			{Name: "t2", Body: t2},
		},
	}
}

func progE01Privatization() ProgramEntry {
	p := PrivatizationProgram(false)
	return ProgramEntry{
		ID: "E01", Ref: "§1/Ex 2.1", Title: "privatization", Prog: p,
		Checks: []ProgramCheck{
			{Desc: "final x=1 forbidden (programmer)", Model: core.Programmer,
				Outcome: memEq("x", 1), Want: false},
			{Desc: "final x=2 reachable (programmer)", Model: core.Programmer,
				Outcome: memEq("x", 2), Want: true},
			{Desc: "final x=1 allowed (implementation, unfenced)", Model: core.Implementation,
				Outcome: memEq("x", 1), Want: true},
			{Desc: "mixed race exists (implementation)", Model: core.Implementation,
				Exec: hasMixedRace(core.Implementation), Want: true},
			{Desc: "race-free under TSO", Model: core.TSO,
				Exec: hasRace(core.TSO), Want: false},
		},
	}
}

func progE02Publication() ProgramEntry {
	p := &prog.Program{
		Name: "publication",
		Locs: []string{"x", "y", "z"},
		Threads: []prog.Thread{
			{Name: "t1", Body: []prog.Stmt{
				w("x", 1),
				atomic("a", w("y", 1)),
			}},
			{Name: "t2", Body: []prog.Stmt{
				atomic("b",
					w("z", 2),
					r("r", "y"),
					ifnz(prog.Reg("r"),
						r("q", "x"),
						prog.Write{Loc: prog.At("z"), Val: prog.Reg("q")},
					),
				),
			}},
		},
	}
	return ProgramEntry{
		ID: "E02", Ref: "§1", Title: "publication", Prog: p,
		Checks: []ProgramCheck{
			{Desc: "final z=0 forbidden", Model: core.Programmer,
				Outcome: memEq("z", 0), Want: false},
			{Desc: "final z=1 reachable", Model: core.Programmer,
				Outcome: memEq("z", 1), Want: true},
			{Desc: "final z=2 reachable", Model: core.Programmer,
				Outcome: memEq("z", 2), Want: true},
			{Desc: "z=0 forbidden even in implementation model (direct dependency)",
				Model: core.Implementation, Outcome: memEq("z", 0), Want: false},
		},
	}
}

func progE03IRIW() ProgramEntry {
	p := &prog.Program{
		Name: "iriw-z",
		Locs: []string{"x", "y", "z"},
		Threads: []prog.Thread{
			{Name: "t1", Body: []prog.Stmt{atomic("wx", w("x", 1))}},
			{Name: "t2", Body: []prog.Stmt{atomic("wy", w("y", 1))}},
			{Name: "t3", Body: []prog.Stmt{
				atomic("c1", r("r1", "x")),
				w("z", 1),
				atomic("c2", r("r2", "y")),
			}},
			{Name: "t4", Body: []prog.Stmt{
				atomic("d1", r("q1", "y")),
				w("z", 2),
				atomic("d2", r("q2", "x")),
			}},
		},
	}
	return ProgramEntry{
		ID: "E03", Ref: "§1 IRIW", Title: "IRIW with racy plain writes to z", Prog: p,
		Checks: []ProgramCheck{
			{Desc: "IRIW pattern forbidden despite z races", Model: core.Programmer,
				Outcome: regsEq(map[string]int{"t3.r1": 1, "t3.r2": 0, "t4.q1": 1, "t4.q2": 0}),
				Want:    false},
			{Desc: "both-see-both reachable", Model: core.Programmer,
				Outcome: regsEq(map[string]int{"t3.r1": 1, "t3.r2": 1, "t4.q1": 1, "t4.q2": 1}),
				Want:    true},
			{Desc: "z writes race", Model: core.Programmer,
				Exec: func(x *event.Execution) bool {
					return len(core.GraphRaces(x, core.Programmer, core.LocSet(x, "z"))) > 0
				},
				Want: true},
		},
	}
}

// progE04TemporalIRIW adapts the §1 temporal-locality example. The paper
// spawns IRIW after a guard inside one thread; a static-thread language
// cannot fork, so the two reader threads each guard on the same condition
// (both F increments observed). The racy location w is only written before
// the guards become true, so SC-LTRF reasoning applies to the IRIW part.
func progE04TemporalIRIW() ProgramEntry {
	guard := prog.Bin{Op: prog.OpEq, L: prog.Reg("g"), R: prog.Const(2)}
	inc := atomic("f", r("t", "F"), prog.Write{Loc: prog.At("F"), Val: prog.Bin{Op: prog.OpAdd, L: prog.Reg("t"), R: prog.Const(1)}})
	p := &prog.Program{
		Name:     "temporal-iriw",
		Locs:     []string{"w", "F", "x", "y", "z"},
		Universe: []int{0, 1, 2, 3},
		Threads: []prog.Thread{
			{Name: "t1", Body: []prog.Stmt{w("w", 1), inc}},
			{Name: "t2", Body: []prog.Stmt{w("w", 2), inc}},
			{Name: "t3", Body: []prog.Stmt{atomic("wx", w("x", 1))}},
			{Name: "t4", Body: []prog.Stmt{atomic("wy", w("y", 1))}},
			{Name: "t5", Body: []prog.Stmt{
				atomic("g5", r("g", "F")),
				ifnz(guard,
					atomic("c1", r("r1", "x")),
					w("z", 1),
					atomic("c2", r("r2", "y")),
				),
			}},
			{Name: "t6", Body: []prog.Stmt{
				atomic("g6", r("g", "F")),
				ifnz(guard,
					atomic("d1", r("q1", "y")),
					w("z", 2),
					atomic("d2", r("q2", "x")),
				),
			}},
		},
	}
	post := map[string]int{"t5.g": 2, "t6.g": 2}
	forbidden := map[string]int{"t5.r1": 1, "t5.r2": 0, "t6.q1": 1, "t6.q2": 0}
	allowed := map[string]int{"t5.r1": 1, "t5.r2": 1, "t6.q1": 1, "t6.q2": 1}
	merge := func(a, b map[string]int) map[string]int {
		m := make(map[string]int, len(a)+len(b))
		for k, v := range a {
			m[k] = v
		}
		for k, v := range b {
			m[k] = v
		}
		return m
	}
	return ProgramEntry{
		ID: "E04", Ref: "§1 temporal", Title: "IRIW guarded behind racy prologue", Prog: p,
		Checks: []ProgramCheck{
			{Desc: "post-guard IRIW pattern forbidden", Model: core.Programmer,
				Outcome: regsEq(merge(post, forbidden)), Want: false},
			{Desc: "post-guard both-see-both reachable", Model: core.Programmer,
				Outcome: regsEq(merge(post, allowed)), Want: true},
			{Desc: "w races before the guard", Model: core.Programmer,
				Exec: func(x *event.Execution) bool {
					return len(core.GraphRaces(x, core.Programmer, core.LocSet(x, "w"))) > 0
				},
				Want: true},
		},
	}
}

func progE19PublicationByAntidep() ProgramEntry {
	p := &prog.Program{
		Name: "pub-by-antidep",
		Locs: []string{"x", "y"},
		Threads: []prog.Thread{
			{Name: "t1", Body: []prog.Stmt{
				w("x", 1),
				atomic("a", r("r", "y")),
			}},
			{Name: "t2", Body: []prog.Stmt{
				atomic("b", r("q", "x"), w("y", 1)),
			}},
		},
	}
	rq00 := regsEq(map[string]int{"t1.r": 0, "t2.q": 0})
	return ProgramEntry{
		ID: "E19", Ref: "Example 3.1", Title: "no publication by antidependence", Prog: p,
		Checks: []ProgramCheck{
			{Desc: "r=q=0 allowed (programmer)", Model: core.Programmer, Outcome: rq00, Want: true},
			{Desc: "r=q=0 forbidden under Atom'rw", Model: core.Variant(core.HBrwP), Outcome: rq00, Want: false},
			{Desc: "r=q=0 forbidden under TSO", Model: core.TSO, Outcome: rq00, Want: false},
		},
	}
}

func progE20GlobalLockAtomicity() ProgramEntry {
	p := &prog.Program{
		Name: "no-gla",
		Locs: []string{"x", "y", "z"},
		Threads: []prog.Thread{
			{Name: "t1", Body: []prog.Stmt{
				w("x", 1),
				atomic("a", w("y", 1)),
				r("r", "z"),
			}},
			{Name: "t2", Body: []prog.Stmt{
				atomic("b", r("q", "x"), w("z", 1)),
			}},
		},
	}
	rq00 := regsEq(map[string]int{"t1.r": 0, "t2.q": 0})
	return ProgramEntry{
		ID: "E20", Ref: "Example 3.2", Title: "no global lock atomicity", Prog: p,
		Checks: []ProgramCheck{
			{Desc: "r=q=0 allowed (programmer)", Model: core.Programmer, Outcome: rq00, Want: true},
			{Desc: "r=q=0 allowed (strongest variant)", Model: core.Strongest, Outcome: rq00, Want: true},
			{Desc: "r=q=0 allowed (implementation)", Model: core.Implementation, Outcome: rq00, Want: true},
		},
	}
}

func progE21RacyPublication() ProgramEntry {
	p := &prog.Program{
		Name: "racy-publication",
		Locs: []string{"x", "y", "q"},
		Threads: []prog.Thread{
			{Name: "t1", Body: []prog.Stmt{
				w("x", 1),
				atomic("a", w("y", 1)),
			}},
			{Name: "t2", Body: []prog.Stmt{
				w("q", 2),
				atomic("b",
					r("r", "x"),
					r("s", "y"),
					ifnz(prog.Reg("s"), prog.Write{Loc: prog.At("q"), Val: prog.Reg("r")}),
				),
			}},
		},
	}
	return ProgramEntry{
		ID: "E21", Ref: "Example 3.3", Title: "benign racy publication is rejected", Prog: p,
		Checks: []ProgramCheck{
			{Desc: "final q=0 forbidden", Model: core.Programmer, Outcome: memEq("q", 0), Want: false},
			{Desc: "final q=1 reachable", Model: core.Programmer, Outcome: memEq("q", 1), Want: true},
			{Desc: "final q=2 reachable", Model: core.Programmer, Outcome: memEq("q", 2), Want: true},
		},
	}
}

func progE22EagerVersioning() ProgramEntry {
	p := &prog.Program{
		Name: "eager-versioning",
		Locs: []string{"x", "y"},
		Threads: []prog.Thread{
			{Name: "t1", Body: []prog.Stmt{
				atomic("a",
					r("r0", "y"),
					ifnz(prog.Not{E: prog.Reg("r0")}, w("x", 1), prog.AbortStmt{}),
				),
				atomic("b",
					r("r1", "y"),
					ifnz(prog.Not{E: prog.Reg("r1")}, w("x", 1)),
				),
				r("r", "x"),
			}},
			{Name: "t2", Body: []prog.Stmt{
				w("x", 2),
				w("y", 1),
				r("q", "x"),
			}},
		},
	}
	return ProgramEntry{
		ID: "E22", Ref: "Example 3.4", Title: "no speculative lost update", Prog: p,
		Checks: []ProgramCheck{
			{Desc: "q=0 forbidden (Wx2 is not lost)", Model: core.Programmer,
				Outcome: regEq("t2.q", 0), Want: false},
			{Desc: "q=2 reachable", Model: core.Programmer, Outcome: regEq("t2.q", 2), Want: true},
			{Desc: "r=2 reachable", Model: core.Programmer, Outcome: regEq("t1.r", 2), Want: true},
			{Desc: "r=0 reachable", Model: core.Programmer, Outcome: regEq("t1.r", 0), Want: true},
			{Desc: "q=0 forbidden even in implementation model", Model: core.Implementation,
				Outcome: regEq("t2.q", 0), Want: false},
		},
	}
}

func progE23LazyVersioning() ProgramEntry {
	p := &prog.Program{
		Name:     "lazy-versioning",
		Locs:     []string{"x", "z[0]", "z[1]", "z[2]", "z[42]"},
		Universe: []int{0, 1, 2, 42},
		Threads: []prog.Thread{
			{Name: "t1", Body: []prog.Stmt{
				atomic("a", r("r", "x"), w("x", 42)),
				prog.Read{RegName: "r1", Loc: prog.AtIdx("z", prog.Reg("r"))},
				prog.Read{RegName: "r2", Loc: prog.AtIdx("z", prog.Reg("r"))},
				prog.Write{Loc: prog.AtIdx("z", prog.Reg("r")), Val: prog.Const(0)},
			}},
			{Name: "t2", Body: []prog.Stmt{
				atomic("b",
					r("q", "x"),
					ifnz(prog.Bin{Op: prog.OpNe, L: prog.Reg("q"), R: prog.Const(42)},
						prog.Read{RegName: "s", Loc: prog.AtIdx("z", prog.Reg("q"))},
						prog.Write{Loc: prog.AtIdx("z", prog.Reg("q")),
							Val: prog.Bin{Op: prog.OpAdd, L: prog.Reg("s"), R: prog.Const(1)}},
					),
				),
			}},
		},
	}
	neq := func(o *exec.Outcome) bool { return o.Regs["t1.r1"] != o.Regs["t1.r2"] }
	return ProgramEntry{
		ID: "E23", Ref: "Example 3.5", Title: "lazy versioning privatization of an array cell", Prog: p,
		Checks: []ProgramCheck{
			{Desc: "final z[0]≠0 forbidden (Atomww)", Model: core.Programmer,
				Outcome: func(o *exec.Outcome) bool { return o.Mem["z[0]"] != 0 }, Want: false},
			{Desc: "r1≠r2 forbidden under Atomrw variant", Model: core.Variant(core.HBrw),
				Outcome: neq, Want: false},
			{Desc: "r1≠r2 admitted by base programmer model", Model: core.Programmer,
				Outcome: neq, Want: true},
			{Desc: "final z[0]≠0 allowed in implementation model", Model: core.Implementation,
				Outcome: func(o *exec.Outcome) bool { return o.Mem["z[0]"] != 0 }, Want: true},
		},
	}
}

func progE24LDRFPublication() ProgramEntry {
	p := &prog.Program{
		Name: "ldrf-publication",
		Locs: []string{"x", "y", "F", "z"},
		Threads: []prog.Thread{
			{Name: "t1", Body: []prog.Stmt{
				w("x", 1),
				w("y", 1),
				atomic("a", w("F", 1)),
				w("z", 1),
			}},
			{Name: "t2", Body: []prog.Stmt{
				w("y", 2),
				atomic("b", r("r", "F")),
				w("z", 2),
				ifnz(prog.Reg("r"),
					r("rx", "x"),
					r("ry1", "y"),
					r("ry2", "y"),
				),
			}},
		},
	}
	return ProgramEntry{
		ID: "E24", Ref: "§4", Title: "local reasoning past y and z races", Prog: p,
		Checks: []ProgramCheck{
			{Desc: "r=1 implies x published and y reads agree", Model: core.Programmer,
				Outcome: func(o *exec.Outcome) bool {
					return o.Regs["t2.r"] == 1 &&
						(o.Regs["t2.rx"] != 1 || o.Regs["t2.ry1"] != o.Regs["t2.ry2"])
				},
				Want: false},
			{Desc: "r=1 with published values reachable", Model: core.Programmer,
				Outcome: func(o *exec.Outcome) bool {
					return o.Regs["t2.r"] == 1 && o.Regs["t2.rx"] == 1 &&
						o.Regs["t2.ry1"] == o.Regs["t2.ry2"]
				},
				Want: true},
			{Desc: "races on y exist", Model: core.Programmer,
				Exec: func(x *event.Execution) bool {
					return len(core.GraphRaces(x, core.Programmer, core.LocSet(x, "y"))) > 0
				},
				Want: true},
		},
	}
}

func progE28FencedPrivatization() ProgramEntry {
	p := PrivatizationProgram(true)
	return ProgramEntry{
		ID: "E28", Ref: "§5", Title: "privatization with quiescence fence", Prog: p,
		Checks: []ProgramCheck{
			{Desc: "final x=1 forbidden (implementation, fenced)", Model: core.Implementation,
				Outcome: memEq("x", 1), Want: false},
			{Desc: "final x=2 reachable", Model: core.Implementation,
				Outcome: memEq("x", 2), Want: true},
			{Desc: "mixed race gone (implementation, fenced)", Model: core.Implementation,
				Exec: hasMixedRace(core.Implementation), Want: false},
		},
	}
}

func progE30OpaqueWrites() ProgramEntry {
	p := &prog.Program{
		Name: "opaque-writes",
		Locs: []string{"x"},
		Threads: []prog.Thread{
			{Name: "t1", Body: []prog.Stmt{atomic("a", w("x", 1), prog.AbortStmt{})}},
			{Name: "t2", Body: []prog.Stmt{atomic("b", r("r", "x"))}},
		},
	}
	return ProgramEntry{
		ID: "E30", Ref: "Example D.1", Title: "opaque writes", Prog: p,
		Checks: []ProgramCheck{
			{Desc: "r=1 forbidden (WF7)", Model: core.Programmer, Outcome: regEq("t2.r", 1), Want: false},
			{Desc: "r=0 reachable", Model: core.Programmer, Outcome: regEq("t2.r", 0), Want: true},
		},
	}
}

func progE31RaceFreeSpeculation() ProgramEntry {
	incr := func(loc string) []prog.Stmt {
		return []prog.Stmt{
			prog.Read{RegName: "t" + loc, Loc: prog.At(loc)},
			prog.Write{Loc: prog.At(loc), Val: prog.Bin{Op: prog.OpAdd, L: prog.Reg("t" + loc), R: prog.Const(1)}},
		}
	}
	body := append(incr("x"), incr("y")...)
	p := &prog.Program{
		Name:     "race-free-speculation",
		Locs:     []string{"x", "y", "z"},
		Universe: []int{0, 1, 2},
		Threads: []prog.Thread{
			{Name: "t1", Body: []prog.Stmt{prog.Atomic{Name: "a", Body: body}}},
			{Name: "t2", Body: []prog.Stmt{
				atomic("b",
					r("bx", "x"),
					r("by", "y"),
					ifnz(prog.Bin{Op: prog.OpNe, L: prog.Reg("bx"), R: prog.Reg("by")},
						w("z", 1),
						prog.AbortStmt{},
					),
				),
			}},
			{Name: "t3", Body: []prog.Stmt{
				w("z", 2),
				r("r", "z"),
			}},
		},
	}
	return ProgramEntry{
		ID: "E31", Ref: "Example D.2", Title: "race-free speculation", Prog: p,
		Checks: []ProgramCheck{
			{Desc: "r=2 is the only outcome", Model: core.Programmer,
				Outcome: func(o *exec.Outcome) bool { return o.Regs["t3.r"] != 2 }, Want: false},
			{Desc: "r=2 reachable", Model: core.Programmer, Outcome: regEq("t3.r", 2), Want: true},
			{Desc: "transaction b never observes x≠y", Model: core.Programmer,
				Exec: func(x *event.Execution) bool {
					for _, e := range x.Events {
						if e.Kind == event.KWrite && e.Tx != event.NoTx &&
							x.TxName[e.Tx] == "b" && x.Locs[e.Loc] == "z" {
							return true
						}
					}
					return false
				},
				Want: false},
		},
	}
}

func progE32DirtyReads() ProgramEntry {
	p := &prog.Program{
		Name: "dirty-reads",
		Locs: []string{"x", "y"},
		Threads: []prog.Thread{
			{Name: "t1", Body: []prog.Stmt{
				atomic("a",
					r("r", "y"),
					ifnz(prog.Not{E: prog.Reg("r")}, w("x", 1), prog.AbortStmt{}),
				),
				atomic("b",
					r("s", "y"),
					ifnz(prog.Not{E: prog.Reg("s")}, w("x", 1)),
				),
			}},
			{Name: "t2", Body: []prog.Stmt{
				r("q", "x"),
				ifnz(prog.Bin{Op: prog.OpEq, L: prog.Reg("q"), R: prog.Const(1)}, w("y", 1)),
			}},
		},
	}
	return ProgramEntry{
		ID: "E32", Ref: "Example D.3", Title: "dirty reads", Prog: p,
		Checks: []ProgramCheck{
			{Desc: "x=0 ∧ y=1 forbidden", Model: core.Programmer,
				Outcome: func(o *exec.Outcome) bool { return o.Mem["x"] == 0 && o.Mem["y"] == 1 },
				Want:    false},
			{Desc: "x=1 ∧ y=1 reachable", Model: core.Programmer,
				Outcome: func(o *exec.Outcome) bool { return o.Mem["x"] == 1 && o.Mem["y"] == 1 },
				Want:    true},
			{Desc: "x=1 ∧ y=0 reachable", Model: core.Programmer,
				Outcome: func(o *exec.Outcome) bool { return o.Mem["x"] == 1 && o.Mem["y"] == 0 },
				Want:    true},
		},
	}
}

func progE33OverlappedWrites() ProgramEntry {
	p := &prog.Program{
		Name:     "overlapped-writes",
		Locs:     []string{"x", "y", "z[1]", "z[4]"},
		Universe: []int{0, 1, 4},
		Threads: []prog.Thread{
			{Name: "t1", Body: []prog.Stmt{
				atomic("a", w("y", 4), w("z[4]", 1), w("x", 4)),
			}},
			{Name: "t2", Body: []prog.Stmt{
				prog.Let{RegName: "r", Val: prog.Const(1)},
				atomic("q", r("q", "x")),
				ifnz(prog.Bin{Op: prog.OpNe, L: prog.Reg("q"), R: prog.Const(0)},
					prog.Read{RegName: "r", Loc: prog.AtIdx("z", prog.Reg("q"))},
				),
			}},
		},
	}
	return ProgramEntry{
		ID: "E33", Ref: "Example D.4", Title: "no overlapped writes", Prog: p,
		Checks: []ProgramCheck{
			{Desc: "r=0 forbidden", Model: core.Programmer, Outcome: regEq("t2.r", 0), Want: false},
			{Desc: "r=1 reachable", Model: core.Programmer, Outcome: regEq("t2.r", 1), Want: true},
			{Desc: "r=0 forbidden in implementation model too", Model: core.Implementation,
				Outcome: regEq("t2.r", 0), Want: false},
		},
	}
}

// --- predicate helpers ---

func memEq(loc string, v int) func(*exec.Outcome) bool {
	return func(o *exec.Outcome) bool { return o.Mem[loc] == v }
}

func regEq(reg string, v int) func(*exec.Outcome) bool {
	return func(o *exec.Outcome) bool { return o.Regs[reg] == v }
}

func regsEq(want map[string]int) func(*exec.Outcome) bool {
	return func(o *exec.Outcome) bool {
		for k, v := range want {
			if o.Regs[k] != v {
				return false
			}
		}
		return true
	}
}

func hasMixedRace(cfg core.Config) func(*event.Execution) bool {
	return func(x *event.Execution) bool { return !core.MixedRaceFree(x, cfg) }
}

func hasRace(cfg core.Config) func(*event.Execution) bool {
	return func(x *event.Execution) bool { return len(core.GraphRaces(x, cfg, nil)) > 0 }
}
