// Package litmus catalogs every figure and example program of the paper
// together with its expected verdict, forming the repository's experiment
// suite (see DESIGN.md §5 and EXPERIMENTS.md).
//
// Two catalog kinds mirror the paper's two presentation styles:
//
//   - Figures are hand-encoded executions (event graphs with explicit
//     reads-from and coherence), checked for consistency and raciness
//     under specific model configurations.
//   - Programs are litmus programs handed to the exhaustive enumerator;
//     checks assert that outcomes or execution shapes are allowed or
//     forbidden under specific model configurations.
package litmus

import (
	"fmt"

	"modtx/internal/core"
	"modtx/internal/event"
	"modtx/internal/exec"
	"modtx/internal/prog"
)

// Property is a checkable predicate of a figure execution.
type Property string

// Figure properties.
const (
	PropConsistent    Property = "consistent"
	PropRaceFree      Property = "race-free"
	PropMixedRaceFree Property = "mixed-race-free"
	PropWellFormed    Property = "well-formed"
	PropNotWellFormed Property = "not-well-formed"
	PropAllContiguous Property = "contiguous"
)

// FigureCheck is one expectation about a figure.
type FigureCheck struct {
	Model core.Config
	Prop  Property
	Want  bool
	Note  string
}

// Figure is a hand-encoded execution from the paper.
type Figure struct {
	ID     string // experiment id, e.g. "E10"
	Ref    string // paper reference, e.g. "Example 2.2"
	Title  string
	Build  func() *event.Execution
	Checks []FigureCheck
}

// ProgramCheck is one expectation about a program's behaviours.
type ProgramCheck struct {
	Desc  string
	Model core.Config
	// Outcome, when non-nil, asks whether some complete consistent
	// execution satisfies the predicate.
	Outcome func(*exec.Outcome) bool
	// Exec, when non-nil, asks whether some consistent execution
	// (complete or not) satisfies the predicate.
	Exec func(*event.Execution) bool
	// Want is the expected answer (true = allowed/exists).
	Want bool
}

// ProgramEntry is a litmus program from the paper.
type ProgramEntry struct {
	ID     string
	Ref    string
	Title  string
	Prog   *prog.Program
	Checks []ProgramCheck
	// Slow marks entries whose enumeration takes more than ~1s; they are
	// skipped by short test runs but included by cmd/mtx-litmus and the
	// benchmark harness.
	Slow bool
}

// Result is the outcome of one executed check.
type Result struct {
	ID   string
	Ref  string
	Desc string
	Want bool
	Got  bool
	Err  error
}

// Pass reports whether the check matched its expectation.
func (r Result) Pass() bool { return r.Err == nil && r.Got == r.Want }

func (r Result) String() string {
	status := "PASS"
	if !r.Pass() {
		status = "FAIL"
	}
	if r.Err != nil {
		return fmt.Sprintf("%-4s %-5s %-14s %s: error: %v", status, r.ID, r.Ref, r.Desc, r.Err)
	}
	return fmt.Sprintf("%-4s %-5s %-14s %s (got %v, want %v)", status, r.ID, r.Ref, r.Desc, r.Got, r.Want)
}

// RunFigure evaluates all checks of a figure.
func RunFigure(f Figure) []Result {
	x := f.Build()
	out := make([]Result, 0, len(f.Checks))
	for _, c := range f.Checks {
		desc := fmt.Sprintf("%s under %s", c.Prop, c.Model.Name)
		if c.Note != "" {
			desc += " — " + c.Note
		}
		got := evalProperty(x, c.Model, c.Prop)
		out = append(out, Result{ID: f.ID, Ref: f.Ref, Desc: desc, Want: c.Want, Got: got})
	}
	return out
}

func evalProperty(x *event.Execution, cfg core.Config, p Property) bool {
	switch p {
	case PropConsistent:
		return core.Consistent(x, cfg)
	case PropRaceFree:
		return core.RaceFree(x, cfg)
	case PropMixedRaceFree:
		return core.MixedRaceFree(x, cfg)
	case PropWellFormed:
		return event.IsWellFormed(x)
	case PropNotWellFormed:
		return !event.IsWellFormed(x)
	case PropAllContiguous:
		return event.AllContiguous(x)
	}
	panic("litmus: unknown property " + string(p))
}

// RunProgram evaluates all checks of a program entry.
func RunProgram(p ProgramEntry) []Result {
	out := make([]Result, 0, len(p.Checks))
	for _, c := range p.Checks {
		var got bool
		var err error
		switch {
		case c.Outcome != nil:
			got, err = exec.Allowed(p.Prog, c.Model, c.Outcome)
		case c.Exec != nil:
			got, err = exec.AnyConsistent(p.Prog, c.Model, c.Exec)
		default:
			err = fmt.Errorf("check %q has no predicate", c.Desc)
		}
		out = append(out, Result{ID: p.ID, Ref: p.Ref, Desc: c.Desc, Want: c.Want, Got: got, Err: err})
	}
	return out
}

// RunAll executes the full catalog. Slow program entries are skipped unless
// includeSlow is set.
func RunAll(includeSlow bool) []Result {
	var out []Result
	for _, f := range Figures() {
		out = append(out, RunFigure(f)...)
	}
	for _, p := range Programs() {
		if p.Slow && !includeSlow {
			continue
		}
		out = append(out, RunProgram(p)...)
	}
	return out
}
