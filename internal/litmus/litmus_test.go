package litmus

import (
	"testing"
)

// TestFigures checks every figure expectation in the catalog against the
// model checker. Each failing row is one disagreement with the paper.
func TestFigures(t *testing.T) {
	for _, f := range Figures() {
		f := f
		t.Run(f.ID+"_"+f.Title, func(t *testing.T) {
			for _, res := range RunFigure(f) {
				if !res.Pass() {
					t.Errorf("%s", res)
				}
			}
		})
	}
}

// TestPrograms checks every program expectation via exhaustive enumeration.
func TestPrograms(t *testing.T) {
	for _, p := range Programs() {
		p := p
		t.Run(p.ID+"_"+p.Prog.Name, func(t *testing.T) {
			if p.Slow && testing.Short() {
				t.Skip("slow entry skipped in -short")
			}
			if p.Slow {
				t.Parallel()
			}
			for _, res := range RunProgram(p) {
				if !res.Pass() {
					t.Errorf("%s", res)
				}
			}
		})
	}
}

// TestCatalogShape guards against accidental catalog regressions: every
// entry must have an ID, a reference and at least one check, and IDs must
// be unique within each catalog.
func TestCatalogShape(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range Figures() {
		if f.ID == "" || f.Ref == "" || len(f.Checks) == 0 {
			t.Errorf("figure %q is underspecified", f.Title)
		}
		if seen[f.ID] {
			t.Errorf("duplicate figure id %s", f.ID)
		}
		seen[f.ID] = true
		if f.Build == nil {
			t.Errorf("figure %s has no builder", f.ID)
			continue
		}
		x := f.Build()
		if err := x.Validate(); err != nil {
			t.Errorf("figure %s builds an invalid execution: %v", f.ID, err)
		}
	}
	seen = map[string]bool{}
	for _, p := range Programs() {
		if p.ID == "" || p.Ref == "" || len(p.Checks) == 0 {
			t.Errorf("program %q is underspecified", p.Title)
		}
		if seen[p.ID] {
			t.Errorf("duplicate program id %s", p.ID)
		}
		seen[p.ID] = true
		if err := p.Prog.Validate(); err != nil {
			t.Errorf("program %s invalid: %v", p.ID, err)
		}
	}
}
