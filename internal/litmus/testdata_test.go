package litmus

import (
	"os"
	"path/filepath"
	"testing"

	"modtx/internal/core"
	"modtx/internal/exec"
	"modtx/internal/prog"
)

// TestLitFiles parses every testdata litmus file and checks its headline
// verdict, exercising the parser → enumerator pipeline end to end.
func TestLitFiles(t *testing.T) {
	expectations := map[string]struct {
		model   core.Config
		desc    string
		pred    func(*exec.Outcome) bool
		allowed bool
	}{
		"privatization.lit": {
			model: core.Programmer, desc: "final x=1 forbidden",
			pred:    func(o *exec.Outcome) bool { return o.Mem["x"] == 1 },
			allowed: false,
		},
		"publication.lit": {
			model: core.Programmer, desc: "final z=0 forbidden",
			pred:    func(o *exec.Outcome) bool { return o.Mem["z"] == 0 },
			allowed: false,
		},
		"mp-mixed.lit": {
			model: core.Programmer, desc: "flag seen but payload stale forbidden",
			pred: func(o *exec.Outcome) bool {
				return o.Regs["t2.r"] == 1 && o.Regs["t2.q"] == 0
			},
			allowed: false,
		},
		"fenced-privatization.lit": {
			model: core.Implementation, desc: "final x=1 forbidden with fence",
			pred:    func(o *exec.Outcome) bool { return o.Mem["x"] == 1 },
			allowed: false,
		},
		"dekker-tx.lit": {
			model: core.Programmer, desc: "transactional both-read-zero forbidden",
			pred: func(o *exec.Outcome) bool {
				return o.Regs["t1.r"] == 0 && o.Regs["t2.q"] == 0
			},
			allowed: false,
		},
	}
	files, err := filepath.Glob("testdata/*.lit")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata files: %v", err)
	}
	if len(files) != len(expectations) {
		t.Fatalf("have %d files but %d expectations", len(files), len(expectations))
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			p, err := prog.Parse(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			ex, ok := expectations[filepath.Base(file)]
			if !ok {
				t.Fatalf("no expectation for %s", file)
			}
			got, err := exec.Allowed(p, ex.model, ex.pred)
			if err != nil {
				t.Fatal(err)
			}
			if got != ex.allowed {
				t.Errorf("%s: allowed=%v, want %v", ex.desc, got, ex.allowed)
			}
			// Sanity: the program has at least one reachable outcome.
			outs, err := exec.Outcomes(p, ex.model)
			if err != nil {
				t.Fatal(err)
			}
			if len(outs) == 0 {
				t.Error("no reachable outcomes")
			}
		})
	}
}
