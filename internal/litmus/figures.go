package litmus

import (
	"modtx/internal/core"
	"modtx/internal/event"
)

// Figures returns the catalog of hand-encoded executions from the paper.
// IDs follow the experiment index in DESIGN.md.
func Figures() []Figure {
	return []Figure{
		figE05TraceVisualization(),
		figE06StaleRead(),
		figE07StaleReadAborted(),
		figE08Privatization(),
		figE09Cascade(),
		figE10ReversedWW(),
		figE11LoadBuffering(),
		figE12StoreBuffering(),
		figE13AbortedReadPublication(),
		figE14OpacityAbortedIRIW(),
		figE15PlainWWCycle(),
		figE16CoherenceJava(),
		figE17CoherenceCSE(),
		figE18aHBww(),
		figE18bHBrw(),
		figE18cHBwr(),
		figE18dHBwwPrime(),
		figE18eHBrwPrime(),
		figE18fHBwrPrime(),
		figE22EagerVersioning(),
		figE23aLazyVersioning(),
		figE23bLazyVersioningReversed(),
		figE25FromDToT1(),
		figE25FromDToT2(),
		figE26Doomed(),
		figE27Dagger(),
		figE27DaggerReordered(),
		figE29Stability(),
		figE33OverlappedWrites(),
	}
}

func figE05TraceVisualization() Figure {
	return Figure{
		ID:    "E05",
		Ref:   "§2 fig.1",
		Title: "visualized trace: committed writer, aborted reader, plain write",
		Build: func() *event.Execution {
			b := event.NewBuilder("x", "y")
			t1 := b.Thread()
			t1.Begin("b")
			t1.W("y", 1)
			wx1 := t1.W("x", 1)
			t1.Commit()
			t2 := b.Thread()
			t2.Begin("c")
			t2.R("y", 1)
			t2.Abort()
			wx2 := t2.W("x", 2)
			b.WWOrder("x", wx1, wx2)
			return b.MustBuild()
		},
		Checks: []FigureCheck{
			{Model: core.Programmer, Prop: PropWellFormed, Want: true},
			{Model: core.Programmer, Prop: PropConsistent, Want: true},
			{Model: core.Programmer, Prop: PropAllContiguous, Want: true},
		},
	}
}

func figE06StaleRead() Figure {
	return Figure{
		ID:    "E06",
		Ref:   "§2 antidep",
		Title: "same-thread stale read ⟨Wx1⟩⟨Wx2⟩⟨Rx1⟩",
		Build: func() *event.Execution {
			b := event.NewBuilder("x")
			t1 := b.Thread()
			w1 := t1.W("x", 1)
			w2 := t1.W("x", 2)
			r := t1.R("x", 1)
			b.WWOrder("x", w1, w2)
			b.RF(w1, r)
			return b.MustBuild()
		},
		Checks: []FigureCheck{
			{Model: core.Programmer, Prop: PropConsistent, Want: false,
				Note: "c po→ b rw→ c violates Observation"},
			{Model: core.Implementation, Prop: PropConsistent, Want: false},
		},
	}
}

func figE07StaleReadAborted() Figure {
	return Figure{
		ID:    "E07",
		Ref:   "§2 antidep",
		Title: "stale read allowed when the obscuring write aborted",
		Build: func() *event.Execution {
			b := event.NewBuilder("x")
			t1 := b.Thread()
			w1 := t1.W("x", 1)
			t1.Begin("c")
			w2 := t1.W("x", 2)
			t1.Abort()
			r := t1.R("x", 1)
			b.WWOrder("x", w1, w2)
			b.RF(w1, r)
			return b.MustBuild()
		},
		Checks: []FigureCheck{
			{Model: core.Programmer, Prop: PropConsistent, Want: true,
				Note: "rw ignores aborted writes"},
		},
	}
}

// privatizationExec is the Example 2.1 execution, shared by several figures.
func privatizationExec() *event.Execution {
	b := event.NewBuilder("x", "y")
	t1 := b.Thread()
	t1.Begin("a")
	t1.R("y", 0)
	wx1 := t1.W("x", 1)
	t1.Commit()
	t2 := b.Thread()
	t2.Begin("b")
	t2.W("y", 1)
	t2.Commit()
	wx2 := t2.W("x", 2)
	b.WWOrder("x", wx1, wx2)
	return b.MustBuild()
}

func figE08Privatization() Figure {
	return Figure{
		ID:    "E08",
		Ref:   "Example 2.1",
		Title: "privatization execution",
		Build: privatizationExec,
		Checks: []FigureCheck{
			{Model: core.Programmer, Prop: PropConsistent, Want: true},
			{Model: core.Programmer, Prop: PropRaceFree, Want: true,
				Note: "HBww orders Wx1 before Wx2"},
			{Model: core.Implementation, Prop: PropConsistent, Want: true},
			{Model: core.Implementation, Prop: PropRaceFree, Want: false,
				Note: "without HBww the x writes race"},
			{Model: core.Implementation, Prop: PropMixedRaceFree, Want: false},
			{Model: core.TSO, Prop: PropRaceFree, Want: true,
				Note: "§6: x86-TSO validates privatization"},
		},
	}
}

func figE09Cascade() Figure {
	return Figure{
		ID:    "E09",
		Ref:   "§2 cascade",
		Title: "HBww order cascades across two privatizations",
		Build: func() *event.Execution {
			b := event.NewBuilder("x", "y", "u", "v")
			t1 := b.Thread()
			t1.Begin("a")
			t1.R("y", 0)
			wx1 := t1.W("x", 1)
			t1.Commit()
			t2 := b.Thread()
			t2.Begin("b")
			t2.W("y", 1)
			t2.Commit()
			t2.Begin("a'")
			t2.R("v", 0)
			wu1 := t2.W("u", 1)
			t2.Commit()
			t3 := b.Thread()
			t3.Begin("b'")
			t3.W("v", 1)
			t3.Commit()
			wu2 := t3.W("u", 2)
			wx2 := t3.W("x", 2)
			b.WWOrder("x", wx1, wx2)
			b.WWOrder("u", wu1, wu2)
			return b.MustBuild()
		},
		Checks: []FigureCheck{
			{Model: core.Programmer, Prop: PropConsistent, Want: true},
			{Model: core.Programmer, Prop: PropRaceFree, Want: true},
			{Model: core.Implementation, Prop: PropRaceFree, Want: false},
		},
	}
}

func figE10ReversedWW() Figure {
	return Figure{
		ID:    "E10",
		Ref:   "Example 2.2",
		Title: "privatization with reversed coherence order",
		Build: func() *event.Execution {
			b := event.NewBuilder("x", "y")
			t1 := b.Thread()
			t1.Begin("a")
			t1.R("y", 0)
			wx2 := t1.W("x", 2)
			t1.Commit()
			t2 := b.Thread()
			t2.Begin("b")
			t2.W("y", 1)
			t2.Commit()
			wx1 := t2.W("x", 1)
			b.WWOrder("x", wx1, wx2)
			return b.MustBuild()
		},
		Checks: []FigureCheck{
			{Model: core.Programmer, Prop: PropConsistent, Want: false,
				Note: "Atomww: required for SC-LTRF"},
			{Model: core.Implementation, Prop: PropConsistent, Want: true,
				Note: "§5 drops Atomww"},
		},
	}
}

func figE11LoadBuffering() Figure {
	return Figure{
		ID:    "E11",
		Ref:   "§2 LB",
		Title: "load buffering",
		Build: func() *event.Execution {
			b := event.NewBuilder("x", "y")
			t1 := b.Thread()
			t1.R("x", 1)
			t1.W("y", 1)
			t2 := b.Thread()
			t2.R("y", 1)
			t2.W("x", 1)
			return b.MustBuild()
		},
		Checks: []FigureCheck{
			{Model: core.Programmer, Prop: PropConsistent, Want: false,
				Note: "Causality includes lwr"},
			{Model: core.Implementation, Prop: PropConsistent, Want: false},
		},
	}
}

func figE12StoreBuffering() Figure {
	return Figure{
		ID:    "E12",
		Ref:   "§2 SB",
		Title: "store buffering",
		Build: func() *event.Execution {
			b := event.NewBuilder("x", "y")
			t1 := b.Thread()
			t1.W("x", 1)
			t1.R("y", 0)
			t2 := b.Thread()
			t2.W("y", 1)
			t2.R("x", 0)
			return b.MustBuild()
		},
		Checks: []FigureCheck{
			{Model: core.Programmer, Prop: PropConsistent, Want: true,
				Note: "plain antidependencies are only irreflexive"},
		},
	}
}

func figE13AbortedReadPublication() Figure {
	return Figure{
		ID:    "E13",
		Ref:   "§2 xwr",
		Title: "publication through an aborted read",
		Build: func() *event.Execution {
			b := event.NewBuilder("x", "y")
			t1 := b.Thread()
			t1.Begin("w")
			t1.W("x", 1)
			t1.W("y", 1)
			t1.Commit()
			t2 := b.Thread()
			t2.Begin("r")
			t2.R("y", 1)
			t2.Abort()
			t2.R("x", 0)
			return b.MustBuild()
		},
		Checks: []FigureCheck{
			{Model: core.Programmer, Prop: PropConsistent, Want: true},
			{Model: withXWR(core.Programmer), Prop: PropConsistent, Want: false,
				Note: "xwr in hb would force publication through aborted reads"},
		},
	}
}

func withXWR(c core.Config) core.Config {
	c.Name = c.Name + "+xwr"
	c.XWRInHB = true
	return c
}

func figE14OpacityAbortedIRIW() Figure {
	return Figure{
		ID:    "E14",
		Ref:   "§2 opacity",
		Title: "aborted transactions observe writer transactions in opposite orders",
		Build: func() *event.Execution {
			b := event.NewBuilder("x", "y")
			t1 := b.Thread()
			t1.Begin("wx")
			t1.W("x", 1)
			t1.Commit()
			t2 := b.Thread()
			t2.Begin("wy")
			t2.W("y", 1)
			t2.Commit()
			t3 := b.Thread()
			t3.Begin("c")
			t3.R("x", 1)
			t3.R("y", 0)
			t3.Abort()
			t4 := b.Thread()
			t4.Begin("d")
			t4.R("y", 1)
			t4.R("x", 0)
			t4.Abort()
			return b.MustBuild()
		},
		Checks: []FigureCheck{
			{Model: core.Programmer, Prop: PropConsistent, Want: false,
				Note: "xrw in Causality gives opacity"},
		},
	}
}

func figE15PlainWWCycle() Figure {
	return Figure{
		ID:    "E15",
		Ref:   "§2 ww cycle",
		Title: "plain po ∪ ww cycle",
		Build: func() *event.Execution {
			b := event.NewBuilder("x", "y")
			t1 := b.Thread()
			wx2 := t1.W("x", 2)
			wy1 := t1.W("y", 1)
			t2 := b.Thread()
			wy2 := t2.W("y", 2)
			wx1 := t2.W("x", 1)
			b.WWOrder("x", wx1, wx2)
			b.WWOrder("y", wy1, wy2)
			return b.MustBuild()
		},
		Checks: []FigureCheck{
			{Model: core.Programmer, Prop: PropConsistent, Want: true,
				Note: "why Causality cannot use lww"},
		},
	}
}

func figE16CoherenceJava() Figure {
	return Figure{
		ID:    "E16",
		Ref:   "§2 coherence",
		Title: "stale read after transactional synchronization (Java allows)",
		Build: func() *event.Execution {
			b := event.NewBuilder("x", "y")
			t1 := b.Thread()
			wx1 := t1.W("x", 1)
			t1.Begin("wy")
			t1.W("y", 1)
			t1.Commit()
			t2 := b.Thread()
			wx2 := t2.W("x", 2)
			t2.Begin("ry")
			t2.R("y", 1)
			t2.Commit()
			r2 := t2.R("x", 2)
			r1 := t2.R("x", 1)
			b.WWOrder("x", wx1, wx2)
			b.RF(wx2, r2)
			b.RF(wx1, r1)
			return b.MustBuild()
		},
		Checks: []FigureCheck{
			{Model: core.Programmer, Prop: PropConsistent, Want: false,
				Note: "LTRF coherence is stronger than Java"},
		},
	}
}

func figE17CoherenceCSE() Figure {
	return Figure{
		ID:    "E17",
		Ref:   "§2 coherence",
		Title: "2,1,2 read sequence of plain writes (CSE-compatible)",
		Build: func() *event.Execution {
			b := event.NewBuilder("x")
			t1 := b.Thread()
			wx1 := t1.W("x", 1)
			wx2 := t1.W("x", 2)
			t2 := b.Thread()
			ra := t2.R("x", 2)
			rb := t2.R("x", 1)
			rc := t2.R("x", 2)
			b.WWOrder("x", wx1, wx2)
			b.RF(wx2, ra)
			b.RF(wx1, rb)
			b.RF(wx2, rc)
			return b.MustBuild()
		},
		Checks: []FigureCheck{
			{Model: core.Programmer, Prop: PropConsistent, Want: true,
				Note: "LTRF coherence is weaker than hardware/C++"},
		},
	}
}

// Example 2.3: each HB variant validated by its illustrating execution.
// With the variant enabled the conflicting pair is ordered (race-free);
// without it (implementation model) the pair races.

func figE18aHBww() Figure {
	return Figure{
		ID:    "E18a",
		Ref:   "Example 2.3",
		Title: "HBww: atomic_a{r:=y; x:=1} || atomic_b{y:=1}; x:=2",
		Build: func() *event.Execution {
			b := event.NewBuilder("x", "y")
			t1 := b.Thread()
			t1.Begin("a")
			t1.R("y", 0)
			wx1 := t1.W("x", 1)
			t1.Commit()
			t2 := b.Thread()
			t2.Begin("b")
			t2.W("y", 1)
			t2.Commit()
			wx2 := t2.W("x", 2)
			b.WWOrder("x", wx1, wx2)
			return b.MustBuild()
		},
		Checks: []FigureCheck{
			{Model: core.Variant(core.HBww), Prop: PropRaceFree, Want: true},
			{Model: core.Variant(core.HBww), Prop: PropConsistent, Want: true},
			{Model: core.Implementation, Prop: PropRaceFree, Want: false},
		},
	}
}

func figE18bHBrw() Figure {
	return Figure{
		ID:    "E18b",
		Ref:   "Example 2.3",
		Title: "HBrw: atomic_a{r:=y; q:=x} || atomic_b{y:=1}; x:=1",
		Build: func() *event.Execution {
			b := event.NewBuilder("x", "y")
			t1 := b.Thread()
			t1.Begin("a")
			t1.R("y", 0)
			t1.R("x", 0)
			t1.Commit()
			t2 := b.Thread()
			t2.Begin("b")
			t2.W("y", 1)
			t2.Commit()
			t2.W("x", 1)
			return b.MustBuild()
		},
		Checks: []FigureCheck{
			{Model: core.Variant(core.HBrw), Prop: PropRaceFree, Want: true},
			{Model: core.Variant(core.HBrw), Prop: PropConsistent, Want: true},
			{Model: core.Implementation, Prop: PropRaceFree, Want: false},
		},
	}
}

func figE18cHBwr() Figure {
	return Figure{
		ID:    "E18c",
		Ref:   "Example 2.3",
		Title: "HBwr: atomic_a{r:=y; x:=1} || atomic_b{y:=1}; q:=x",
		Build: func() *event.Execution {
			b := event.NewBuilder("x", "y")
			t1 := b.Thread()
			t1.Begin("a")
			t1.R("y", 0)
			t1.W("x", 1)
			t1.Commit()
			t2 := b.Thread()
			t2.Begin("b")
			t2.W("y", 1)
			t2.Commit()
			t2.R("x", 1)
			return b.MustBuild()
		},
		Checks: []FigureCheck{
			{Model: core.Variant(core.HBwr), Prop: PropRaceFree, Want: true},
			{Model: core.Variant(core.HBwr), Prop: PropConsistent, Want: true},
			{Model: core.Implementation, Prop: PropRaceFree, Want: false},
		},
	}
}

func figE18dHBwwPrime() Figure {
	return Figure{
		ID:    "E18d",
		Ref:   "Example 2.3",
		Title: "HB'ww: x:=1; atomic_b{r:=y} || atomic_c{x:=2; y:=1}",
		Build: func() *event.Execution {
			b := event.NewBuilder("x", "y")
			t1 := b.Thread()
			wx1 := t1.W("x", 1)
			t1.Begin("b")
			t1.R("y", 0)
			t1.Commit()
			t2 := b.Thread()
			t2.Begin("c")
			wx2 := t2.W("x", 2)
			t2.W("y", 1)
			t2.Commit()
			b.WWOrder("x", wx1, wx2)
			return b.MustBuild()
		},
		Checks: []FigureCheck{
			{Model: core.Variant(core.HBwwP), Prop: PropRaceFree, Want: true},
			{Model: core.Variant(core.HBwwP), Prop: PropConsistent, Want: true},
			{Model: core.Implementation, Prop: PropRaceFree, Want: false},
			{Model: core.Programmer, Prop: PropRaceFree, Want: false,
				Note: "the unprimed HBww does not order plain-first pairs"},
		},
	}
}

func figE18eHBrwPrime() Figure {
	return Figure{
		ID:    "E18e",
		Ref:   "Example 2.3",
		Title: "HB'rw: q:=x; atomic_b{r:=y} || atomic_c{x:=1; y:=1}",
		Build: func() *event.Execution {
			b := event.NewBuilder("x", "y")
			t1 := b.Thread()
			t1.R("x", 0)
			t1.Begin("b")
			t1.R("y", 0)
			t1.Commit()
			t2 := b.Thread()
			t2.Begin("c")
			t2.W("x", 1)
			t2.W("y", 1)
			t2.Commit()
			return b.MustBuild()
		},
		Checks: []FigureCheck{
			{Model: core.Variant(core.HBrwP), Prop: PropRaceFree, Want: true},
			{Model: core.Variant(core.HBrwP), Prop: PropConsistent, Want: true},
			{Model: core.Implementation, Prop: PropRaceFree, Want: false},
		},
	}
}

func figE18fHBwrPrime() Figure {
	return Figure{
		ID:    "E18f",
		Ref:   "Example 2.3",
		Title: "HB'wr: x:=1; atomic_b{r:=y} || atomic_c{q:=x; y:=1}",
		Build: func() *event.Execution {
			b := event.NewBuilder("x", "y")
			t1 := b.Thread()
			t1.W("x", 1)
			t1.Begin("b")
			t1.R("y", 0)
			t1.Commit()
			t2 := b.Thread()
			t2.Begin("c")
			t2.R("x", 1)
			t2.W("y", 1)
			t2.Commit()
			return b.MustBuild()
		},
		Checks: []FigureCheck{
			{Model: core.Variant(core.HBwrP), Prop: PropRaceFree, Want: true},
			{Model: core.Variant(core.HBwrP), Prop: PropConsistent, Want: true},
			{Model: core.Implementation, Prop: PropRaceFree, Want: false},
		},
	}
}

func figE22EagerVersioning() Figure {
	return Figure{
		ID:    "E22",
		Ref:   "Example 3.4",
		Title: "eager versioning: aborted speculative write, plain write not lost",
		Build: func() *event.Execution {
			// atomic_a{if !y then x:=1; abort}; atomic_b{if !y then x:=1}; r:=x
			// || x:=2; y:=1; q:=x — first drawn execution: a aborts after
			// writing x=1; b sees y=1 and skips; both threads read x=2.
			b := event.NewBuilder("x", "y")
			t1 := b.Thread()
			t1.Begin("a")
			t1.R("y", 0)
			wx1 := t1.W("x", 1)
			t1.Abort()
			t1.Begin("b")
			t1.R("y", 1)
			t1.Commit()
			r1 := t1.R("x", 2)
			t2 := b.Thread()
			wx2 := t2.W("x", 2)
			t2.W("y", 1)
			r2 := t2.R("x", 2)
			b.WWOrder("x", wx1, wx2)
			b.RF(wx2, r1)
			b.RF(wx2, r2)
			return b.MustBuild()
		},
		Checks: []FigureCheck{
			{Model: core.Programmer, Prop: PropConsistent, Want: true,
				Note: "the plain Wx2 is not lost"},
		},
	}
}

// Example 3.5 (lazy versioning). The drawn execution (E23a) has coherence
// order init → Wz[0]1 (transaction b) → Wz[0]0 (plain), with the two plain
// reads of z[0] returning 0 then 1. The paper states this r1≠r2 outcome is
// disallowed by the Example 2.3 variants with the read-antidependency Atom
// axiom (Atomrw) — the plain read of z[0]=0 anti-depends on b while b must
// serialize before a. Reversing the coherence order (E23b) is ruled out by
// Atomww itself, so "z[0] ≠ 0 is forbidden by our model".
func lazyVersioningExec(reverse bool) *event.Execution {
	b := event.NewBuilder("x", "z[0]")
	t1 := b.Thread()
	t1.Begin("a")
	t1.R("x", 0)
	t1.W("x", 42)
	t1.Commit()
	r1 := t1.R("z[0]", 0)
	r2 := t1.R("z[0]", 1)
	w0 := t1.W("z[0]", 0)
	t2 := b.Thread()
	t2.Begin("b")
	t2.R("x", 0)
	rz := t2.R("z[0]", 0)
	w1 := t2.W("z[0]", 1)
	t2.Commit()
	b.RF(w1, r2)
	// Both reads of z[0]=0 (r1 and rz) read the init write; value-based
	// matching would be ambiguous with the plain w0, so bind explicitly.
	b.RF(b.InitWrite("z[0]"), r1)
	b.RF(b.InitWrite("z[0]"), rz)
	if reverse {
		b.WWOrder("z[0]", w0, w1)
	} else {
		b.WWOrder("z[0]", w1, w0)
	}
	return b.MustBuild()
}

func figE23aLazyVersioning() Figure {
	return Figure{
		ID:    "E23a",
		Ref:   "Example 3.5",
		Title: "lazy versioning: r1≠r2 with drawn coherence order",
		Build: func() *event.Execution { return lazyVersioningExec(false) },
		Checks: []FigureCheck{
			{Model: core.Programmer, Prop: PropConsistent, Want: true,
				Note: "base programmer model (Atomww only) admits the drawn order"},
			{Model: core.Variant(core.HBrw), Prop: PropConsistent, Want: false,
				Note: "Atomrw variants disallow the r1≠r2 outcome"},
		},
	}
}

func figE23bLazyVersioningReversed() Figure {
	return Figure{
		ID:    "E23b",
		Ref:   "Example 3.5",
		Title: "lazy versioning: reversed coherence order (z[0]≠0)",
		Build: func() *event.Execution { return lazyVersioningExec(true) },
		Checks: []FigureCheck{
			{Model: core.Programmer, Prop: PropConsistent, Want: false,
				Note: "Atomww forbids z[0]≠0"},
			{Model: core.Implementation, Prop: PropConsistent, Want: true},
		},
	}
}

func figE25FromDToT1() Figure {
	return Figure{
		ID:    "E25.1",
		Ref:   "§4 From D to T",
		Title: "transactional read of a plain write races",
		Build: func() *event.Execution {
			b := event.NewBuilder("x")
			t1 := b.Thread()
			wx1 := t1.W("x", 1)
			t1.Begin("b")
			wx2 := t1.W("x", 2)
			t1.Commit()
			t2 := b.Thread()
			t2.Begin("c")
			r := t2.R("x", 1)
			t2.Commit()
			b.WWOrder("x", wx1, wx2)
			b.RF(wx1, r)
			return b.MustBuild()
		},
		Checks: []FigureCheck{
			{Model: core.Programmer, Prop: PropConsistent, Want: true},
			{Model: core.Programmer, Prop: PropRaceFree, Want: false,
				Note: "wr from a plain write does not synchronize"},
		},
	}
}

func figE25FromDToT2() Figure {
	return Figure{
		ID:    "E25.2",
		Ref:   "§4 From D to T",
		Title: "transactional read of the transactional write is race-free",
		Build: func() *event.Execution {
			b := event.NewBuilder("x")
			t1 := b.Thread()
			wx1 := t1.W("x", 1)
			t1.Begin("b")
			wx2 := t1.W("x", 2)
			t1.Commit()
			t2 := b.Thread()
			t2.Begin("c")
			r := t2.R("x", 2)
			t2.Commit()
			b.WWOrder("x", wx1, wx2)
			b.RF(wx2, r)
			return b.MustBuild()
		},
		Checks: []FigureCheck{
			{Model: core.Programmer, Prop: PropConsistent, Want: true},
			{Model: core.Programmer, Prop: PropRaceFree, Want: true,
				Note: "cwr creates hb; Wx1 po→ b cwr→ c"},
		},
	}
}

func figE26Doomed() Figure {
	return Figure{
		ID:    "E26",
		Ref:   "§4 doomed",
		Title: "doomed transaction reading y=0 then x=1",
		Build: func() *event.Execution {
			b := event.NewBuilder("x", "y")
			t1 := b.Thread()
			t1.Begin("a")
			t1.R("y", 0)
			t1.R("x", 1)
			// a stays live (spinning forever).
			t2 := b.Thread()
			t2.Begin("b")
			t2.W("y", 1)
			t2.Commit()
			t2.W("x", 1)
			return b.MustBuild()
		},
		Checks: []FigureCheck{
			{Model: core.Programmer, Prop: PropConsistent, Want: false,
				Note: "SC-LTRF covers live transactions (opacity)"},
		},
	}
}

func daggerExec(readZBeforeWriteX bool) *event.Execution {
	b := event.NewBuilder("x", "y", "z")
	t1 := b.Thread()
	t1.W("z", 1)
	t1.Begin("a")
	t1.R("y", 0)
	wx1 := t1.W("x", 1)
	t1.Commit()
	t2 := b.Thread()
	t2.Begin("b")
	t2.W("y", 1)
	t2.Commit()
	var wx2 int
	if readZBeforeWriteX {
		t2.R("z", 0)
		wx2 = t2.W("x", 2)
	} else {
		wx2 = t2.W("x", 2)
		t2.R("z", 0)
	}
	b.WWOrder("x", wx1, wx2)
	return b.MustBuild()
}

func figE27Dagger() Figure {
	return Figure{
		ID:    "E27",
		Ref:   "§5 (‡)",
		Title: "z:=1; atomic_a{..x:=1} || atomic_b{y:=1}; x:=2; r:=z reading z=0",
		Build: func() *event.Execution { return daggerExec(false) },
		Checks: []FigureCheck{
			{Model: core.Programmer, Prop: PropConsistent, Want: false,
				Note: "HBww gives Wz1 hb→ Rz0; Causality rejects"},
			{Model: core.Implementation, Prop: PropConsistent, Want: true},
		},
	}
}

func figE27DaggerReordered() Figure {
	return Figure{
		ID:    "E27r",
		Ref:   "§5 (‡)",
		Title: "reordered r:=z; x:=2 — reading z=0 becomes allowed",
		Build: func() *event.Execution { return daggerExec(true) },
		Checks: []FigureCheck{
			{Model: core.Programmer, Prop: PropConsistent, Want: true,
				Note: "why W;R reordering is invalid in the programmer model"},
		},
	}
}

func figE29Stability() Figure {
	return Figure{
		ID:    "E29",
		Ref:   "Example A.1",
		Title: "stability decomposition witness",
		Build: func() *event.Execution {
			b := event.NewBuilder("x", "y")
			t1 := b.Thread()
			wx1 := t1.W("x", 1)
			t1.Begin("a")
			wx2 := t1.W("x", 2)
			t1.Commit()
			t2 := b.Thread()
			t2.Begin("b")
			r := t2.R("x", 1)
			t2.W("y", 1)
			t2.Commit()
			b.WWOrder("x", wx1, wx2)
			b.RF(wx1, r)
			return b.MustBuild()
		},
		Checks: []FigureCheck{
			{Model: core.Programmer, Prop: PropConsistent, Want: true},
		},
	}
}

func figE33OverlappedWrites() Figure {
	return Figure{
		ID:    "E33f",
		Ref:   "Example D.4",
		Title: "lazy version copies may not overlap publication",
		Build: func() *event.Execution {
			b := event.NewBuilder("x", "y", "z[4]")
			t1 := b.Thread()
			t1.Begin("a")
			t1.W("y", 4)
			t1.W("z[4]", 1)
			t1.W("x", 4)
			t1.Commit()
			t2 := b.Thread()
			t2.Begin("q")
			t2.R("x", 4)
			t2.Commit()
			t2.R("z[4]", 0)
			return b.MustBuild()
		},
		Checks: []FigureCheck{
			{Model: core.Programmer, Prop: PropConsistent, Want: false,
				Note: "cwr publishes the whole transaction; Observation rejects"},
			{Model: core.Implementation, Prop: PropConsistent, Want: false,
				Note: "direct dependency: ordered even without fences"},
		},
	}
}
