//go:build !race

package kv

const raceEnabled = false
