// Blocking reads: WaitGet and Watch, built on the STM runtime's
// commit-notification subsystem (stm.Tx.Block). A blocked reader parks
// on the variables it read — the key's value and tombstone, or the
// shard's keyspace version when the key is absent — and is woken by the
// commit (or table Touch) that changes them, instead of polling.
//
// Tombstones and the key table interact with blocking as follows. A key
// that does not exist — never created, or condemned by a Delete whose
// sweep may still be in flight — reads as absent, and the waiting
// transaction joins the shard's keyspace version (kvers) instead:
// entry creation and sweep completion Touch it, so re-creation of the
// key wakes the waiter even though the fresh entry's variables did not
// exist when it parked. Privatize's quiescence fence broadcasts to all
// waiters of the fenced shards (a privatized variable's plain writes
// would otherwise never wake them); after the fence, a still-blocked
// reader of a privatized key re-parks and relies on the safety-net
// recheck, which is the documented cost of blocking on state you have
// made private.
package kv

import (
	"bytes"
	"context"
	"time"

	"modtx/internal/stm"
)

// blockOnKeyspace parks the transaction on the shard's keyspace version
// because key routed to no live entry (have is the entry the caller
// observed: nil, or a condemned one). The order is load-bearing for the
// no-lost-wakeup guarantee: the kvers read happens first, and the table
// is re-checked after it — a creation or sweep whose Touch landed before
// our kvers read necessarily stored its table first, so the re-lookup
// observes it and restarts instead of parking past an already-delivered
// notification (on the glock and tl2 engines the kvers read alone would
// absorb such a Touch without conflicting). A Touch after the kvers read
// is caught by the park's register-then-revalidate protocol. Never
// returns.
func blockOnKeyspace(tx *stm.Tx, sh *shard, key string, have *entry) {
	tx.Read(sh.kvers)
	if sh.lookup(key) != have {
		tx.Retry() // the keyspace moved under us: re-run against it now
	}
	tx.Block()
}

// WaitGet returns key's value, blocking until the key exists: if the key
// is present (and not condemned) it behaves like Get, otherwise the call
// parks until a Set, CounterAdd, MSet, Update or Publish brings the key
// to life, and then returns the value it observes. Counters are
// formatted as decimal, exactly as Get. The wait is event-driven — a
// parked WaitGet consumes no CPU and wakes on the next relevant commit.
// Cancellation or deadline on ctx ends the wait with a *stm.TxError
// wrapping stm.ErrCanceled.
func (s *Store) WaitGet(ctx context.Context, key string) ([]byte, error) {
	sh := s.shards[s.ShardOf(key)]
	// WaitGet is timed unsampled: a call that parks is milliseconds and a
	// call that does not is still a full transaction, so the clock pair is
	// noise — and the wait distribution's tail is the interesting part.
	var t0 time.Time
	if s.opHists != nil {
		t0 = time.Now()
	}
	var out []byte
	err := sh.stm.AtomicallyCtx(ctx, func(tx *stm.Tx) error {
		out = nil
		e := sh.lookup(key)
		if e == nil || tx.Read(e.dead) != 0 {
			// Absent, or condemned (the entry is dead forever — the
			// wakeup that matters is the sweep and later re-creation,
			// both of which Touch the keyspace version). Park on kvers.
			blockOnKeyspace(tx, sh, key, e)
		}
		if e.isCounter() {
			out = formatCounter(tx.Read(e.c))
		} else {
			out = stm.ReadT(tx, e.b)
		}
		return nil
	})
	if s.opHists != nil {
		s.opHists[OpWaitGet].Observe(time.Since(t0).Nanoseconds())
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Watch blocks until key's state differs from what Watch itself observes
// at call time, then returns the new state: the value and ok=true while
// the key exists, ok=false when it was deleted. Equality is by value
// (bytes.Equal on the surfaced representation), so a Set that rewrites
// the same bytes does not wake the caller, and intermediate states
// between wakeups are not observed (Watch is level-triggered, not an
// event log). Use WatchFrom to supply the baseline yourself — e.g. to
// re-arm a watch loop without re-reading.
func (s *Store) Watch(ctx context.Context, key string) ([]byte, bool, error) {
	base, present, err := s.Get(key)
	if err != nil {
		return nil, false, err
	}
	return s.WatchFrom(ctx, key, base, present)
}

// WatchFrom blocks until key's state differs from the given baseline
// (val compared by bytes.Equal, present for existence) and returns the
// state it observes then. It returns immediately if the current state
// already differs. The wait is event-driven, like WaitGet.
func (s *Store) WatchFrom(ctx context.Context, key string, val []byte, present bool) ([]byte, bool, error) {
	sh := s.shards[s.ShardOf(key)]
	var out []byte
	var ok bool
	err := sh.stm.AtomicallyCtx(ctx, func(tx *stm.Tx) error {
		out, ok = nil, false
		e := sh.lookup(key)
		if e != nil && tx.Read(e.dead) == 0 {
			if e.isCounter() {
				out = formatCounter(tx.Read(e.c))
			} else {
				out = stm.ReadT(tx, e.b)
			}
			ok = true
		}
		if ok == present && (!ok || bytes.Equal(out, val)) {
			// Unchanged from the baseline: keep waiting. A live entry's
			// own variables are the footprint; an absent/condemned key
			// parks on the keyspace version (with the same read-then-
			// recheck ordering as WaitGet).
			if !ok {
				blockOnKeyspace(tx, sh, key, e)
			}
			tx.Block()
		}
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	return out, ok, nil
}
