package kv

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"modtx/internal/stm"
	"modtx/internal/wal"
)

// replicaFeeder builds a primary-shaped record stream by hand: dense
// per-shard sequences, cross-shard participants flagged and matched by
// a marker stream — the exact shapes the wire client delivers.
type replicaFeeder struct {
	r      *Replica
	seqs   []uint64
	xseq   uint64
	xid    uint64
	t      *testing.T
	recs   []wal.Record // accumulated when buffered, for interleaving tests
	buffer bool
}

func newFeeder(t *testing.T, r *Replica) *replicaFeeder {
	return &replicaFeeder{r: r, seqs: make([]uint64, r.Shards()), t: t}
}

func (f *replicaFeeder) shardFor(key string) int { return f.r.Store().ShardOf(key) }

// set emits a single-shard set record.
func (f *replicaFeeder) set(key, val string) {
	i := f.shardFor(key)
	f.seqs[i]++
	f.emit(wal.Record{Shard: uint32(i), Seq: f.seqs[i],
		Ops: []wal.Op{{Kind: wal.KindSet, Key: key, Val: []byte(val)}}})
}

// xfer emits a cross-shard transfer: CounterSet on two keys that MUST
// route to different shards, plus the commit marker.
func (f *replicaFeeder) xfer(from, to string, nfrom, nto int64) {
	i, j := f.shardFor(from), f.shardFor(to)
	if i == j {
		f.t.Fatalf("keys %q and %q share shard %d; pick others", from, to, i)
	}
	f.seqs[i]++
	f.seqs[j]++
	f.xid++
	id := 0xFEED0000 + f.xid // the txn id binding records to their marker
	f.emit(wal.Record{Shard: uint32(i), Seq: f.seqs[i], Cross: true, Txn: id,
		Ops: []wal.Op{{Kind: wal.KindCounterSet, Key: from, N: nfrom}}})
	f.emit(wal.Record{Shard: uint32(j), Seq: f.seqs[j], Cross: true, Txn: id,
		Ops: []wal.Op{{Kind: wal.KindCounterSet, Key: to, N: nto}}})
	f.xseq++
	parts := wal.AppendTxnParts(nil, []wal.TxnPart{
		{Shard: uint32(i), Seq: f.seqs[i]},
		{Shard: uint32(j), Seq: f.seqs[j]},
	})
	f.emit(wal.Record{Shard: wal.TxnShard, Seq: f.xseq, Cross: true, Txn: id,
		Ops: []wal.Op{{Kind: wal.KindTxnMarker, Val: parts}}})
}

func (f *replicaFeeder) emit(rec wal.Record) {
	if f.buffer {
		f.recs = append(f.recs, rec)
		return
	}
	if err := f.r.ApplyRecord(rec); err != nil {
		f.t.Fatalf("ApplyRecord(shard %d seq %d): %v", rec.Shard, rec.Seq, err)
	}
}

// twoShardKeys finds two keys routing to distinct shards of r.
func twoShardKeys(t *testing.T, r *Replica, prefix string) (a, b string) {
	a = prefix + "-a0"
	for n := 0; n < 4096; n++ {
		b = fmt.Sprintf("%s-b%d", prefix, n)
		if r.Store().ShardOf(b) != r.Store().ShardOf(a) {
			return a, b
		}
	}
	t.Fatal("no key pair on distinct shards")
	return
}

func mustGet(t *testing.T, s *Store, key string) (string, bool) {
	t.Helper()
	v, ok, err := s.Get(key)
	if err != nil {
		t.Fatalf("Get(%s): %v", key, err)
	}
	return string(v), ok
}

func mustCounter(t *testing.T, s *Store, key string) (int64, bool) {
	t.Helper()
	v, ok, err := s.CounterGet(key)
	if err != nil {
		t.Fatalf("CounterGet(%s): %v", key, err)
	}
	return v, ok
}

func TestReplicaApplyBasic(t *testing.T) {
	r, err := NewReplica(WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Store().Close()
	f := newFeeder(t, r)
	f.set("alpha", "1")
	f.set("beta", "2")
	f.set("alpha", "3")

	if v, ok := mustGet(t, r.Store(), "alpha"); !ok || v != "3" {
		t.Fatalf("alpha = %q, %v; want 3", v, ok)
	}
	if v, ok := mustGet(t, r.Store(), "beta"); !ok || v != "2" {
		t.Fatalf("beta = %q, %v; want 2", v, ok)
	}
	st := r.Stats()
	if st.Applied != 3 || st.Pending != 0 {
		t.Fatalf("stats = %+v; want applied 3 pending 0", st)
	}
	i := r.Store().ShardOf("alpha")
	if w := r.Watermark(i); w != f.seqs[i] {
		t.Fatalf("watermark(%d) = %d, want %d", i, w, f.seqs[i])
	}
}

func TestReplicaDuplicateAndGap(t *testing.T) {
	r, err := NewReplica(WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Store().Close()
	rec := func(seq uint64, val string) wal.Record {
		return wal.Record{Shard: 0, Seq: seq,
			Ops: []wal.Op{{Kind: wal.KindSet, Key: "k", Val: []byte(val)}}}
	}
	for _, seq := range []uint64{1, 2} {
		if err := r.ApplyRecord(rec(seq, "v")); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicate below the watermark: ignored.
	if err := r.ApplyRecord(rec(1, "stale")); err != nil {
		t.Fatalf("duplicate: %v", err)
	}
	if v, _ := mustGet(t, r.Store(), "k"); v != "v" {
		t.Fatalf("duplicate overwrote: %q", v)
	}
	// Gap: rejected with ErrReplicaGap.
	if err := r.ApplyRecord(rec(5, "x")); err == nil {
		t.Fatal("gap accepted")
	}
	if r.Watermark(0) != 2 {
		t.Fatalf("watermark = %d, want 2", r.Watermark(0))
	}
}

func TestReplicaRejectsDurability(t *testing.T) {
	var c config
	WithShards(2)(&c)
	c.durDir = t.TempDir()
	if _, err := NewReplica(func(cc *config) { *cc = c }); err == nil {
		t.Fatal("replica accepted a durable store config")
	}
}

func TestReplicaReadiness(t *testing.T) {
	r, err := NewReplica(WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Store().Close()
	if r.Ready() {
		t.Fatal("ready with no target")
	}
	a, b := twoShardKeys(t, r, "rdy")
	f := newFeeder(t, r)
	f.set(a, "1")
	target := make([]uint64, r.Shards())
	copy(target, f.seqs)
	target[r.Store().ShardOf(b)]++ // primary is one ahead on b's shard
	r.SetTarget(target)
	if r.Ready() {
		t.Fatal("ready before catching up")
	}
	f.set(b, "1")
	if !r.Ready() {
		t.Fatal("not ready after catching up")
	}
}

// TestReplicaCrossShardLitmus is the replica-semantics litmus, run
// against every registered engine × clock-mode pair: a stream of
// cross-shard transfers between two counters whose sum is invariant.
// Concurrent transactional readers must never see the sum mid-transfer
// — cross-shard transactions surface atomically — no matter how the
// record and marker streams interleave.
func TestReplicaCrossShardLitmus(t *testing.T) {
	for _, eng := range stm.Engines() {
		for _, clock := range stm.ClockModes() {
			testReplicaCrossShardLitmus(t, eng, clock)
		}
	}
}

func testReplicaCrossShardLitmus(t *testing.T, eng stm.Engine, clock stm.ClockMode) {
	t.Run(eng.String()+"/"+clock.String(), func(t *testing.T) {
		r, err := NewReplica(WithShards(4), WithEngine(eng), WithClock(clock))
		if err != nil {
			t.Fatal(err)
		}
		defer r.Store().Close()
		a, b := twoShardKeys(t, r, "acct")
		f := newFeeder(t, r)
		f.buffer = true

		// Seed both accounts at 500 (sum 1000), then 200 transfers
		// of 1 from a to b, as absolute CounterSets.
		const seed, n = int64(500), 200
		f.xfer(a, b, seed, seed)
		for k := int64(1); k <= n; k++ {
			f.xfer(a, b, seed-k, seed+k)
		}
		recs := f.recs

		// Interleave: per-stream order must hold (per shard and for
		// markers), but across streams anything goes. Walk three
		// cursors, picking randomly among streams with pending work.
		rng := rand.New(rand.NewSource(42))
		byStream := map[uint32][]wal.Record{}
		for _, rec := range recs {
			byStream[rec.Shard] = append(byStream[rec.Shard], rec)
		}
		var streams [][]wal.Record
		for _, s := range byStream {
			streams = append(streams, s)
		}

		stop := make(chan struct{})
		var violations atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					var sum int64
					var seen, half bool
					if err := r.Store().View([]string{a, b}, func(t *ViewTxn) error {
						va, oka := t.Counter(a)
						vb, okb := t.Counter(b)
						seen = oka || okb
						half = oka != okb
						sum = va + vb
						return nil
					}); err != nil {
						violations.Add(1)
						return
					}
					if seen && (half || sum != 2*seed) {
						violations.Add(1)
					}
				}
			}()
		}

		for len(streams) > 0 {
			i := rng.Intn(len(streams))
			rec := streams[i][0]
			streams[i] = streams[i][1:]
			if len(streams[i]) == 0 {
				streams = append(streams[:i], streams[i+1:]...)
			}
			if err := r.ApplyRecord(rec); err != nil {
				t.Fatalf("ApplyRecord: %v", err)
			}
		}
		close(stop)
		wg.Wait()
		if v := violations.Load(); v != 0 {
			t.Fatalf("%d atomicity violations: readers saw a partial cross-shard transaction", v)
		}
		var spread int64
		if err := r.Store().View([]string{a, b}, func(t *ViewTxn) error {
			va, _ := t.Counter(a)
			vb, _ := t.Counter(b)
			spread = vb - va
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if spread != 2*n {
			t.Fatalf("final spread = %d, want %d", spread, 2*n)
		}
		st := r.Stats()
		if st.XApplied != n+1 {
			t.Fatalf("xapplied = %d, want %d", st.XApplied, n+1)
		}
		if st.Pending != 0 || len(r.markers) != 0 {
			t.Fatalf("leftover pending %d / markers %d", st.Pending, len(r.markers))
		}
	})
}

// TestReplicaStallsWithoutMarker: a cross-shard participant must NOT
// apply before its marker arrives, and records queued behind it must
// wait too (per-shard prefix order).
func TestReplicaStallsWithoutMarker(t *testing.T) {
	r, err := NewReplica(WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Store().Close()
	a, b := twoShardKeys(t, r, "stall")
	i, j := r.Store().ShardOf(a), r.Store().ShardOf(b)

	// Cross-shard parts on both shards, NO marker yet.
	part := func(shard int, seq uint64, key string, n int64) wal.Record {
		return wal.Record{Shard: uint32(shard), Seq: seq, Cross: true,
			Ops: []wal.Op{{Kind: wal.KindCounterSet, Key: key, N: n}}}
	}
	if err := r.ApplyRecord(part(i, 1, a, 10)); err != nil {
		t.Fatal(err)
	}
	if err := r.ApplyRecord(part(j, 1, b, 20)); err != nil {
		t.Fatal(err)
	}
	// A later single-shard record queues behind the stalled head.
	if err := r.ApplyRecord(wal.Record{Shard: uint32(i), Seq: 2,
		Ops: []wal.Op{{Kind: wal.KindSet, Key: a + "-later", Val: []byte("x")}}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := mustCounter(t, r.Store(), a); ok {
		t.Fatal("participant applied before marker")
	}
	if _, ok := mustGet(t, r.Store(), a+"-later"); ok {
		t.Fatal("later record overtook stalled cross-shard head")
	}
	if st := r.Stats(); st.Pending != 3 {
		t.Fatalf("pending = %d, want 3", st.Pending)
	}

	parts := wal.AppendTxnParts(nil, []wal.TxnPart{
		{Shard: uint32(i), Seq: 1}, {Shard: uint32(j), Seq: 1}})
	if err := r.ApplyRecord(wal.Record{Shard: wal.TxnShard, Seq: 1,
		Ops: []wal.Op{{Kind: wal.KindTxnMarker, Val: parts}}}); err != nil {
		t.Fatal(err)
	}
	if v, _ := mustCounter(t, r.Store(), a); v != 10 {
		t.Fatalf("a = %d, want 10", v)
	}
	if v, _ := mustCounter(t, r.Store(), b); v != 20 {
		t.Fatalf("b = %d, want 20", v)
	}
	if _, ok := mustGet(t, r.Store(), a+"-later"); !ok {
		t.Fatal("queued record did not drain after marker")
	}
	if w := r.Watermark(i); w != 2 {
		t.Fatalf("watermark = %d, want 2", w)
	}
}

func TestReplicaResetShard(t *testing.T) {
	r, err := NewReplica(WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Store().Close()
	f := newFeeder(t, r)
	f.set("old-key", "stale")
	i := r.Store().ShardOf("old-key")

	// Snapshot at seq 40 replaces the shard: stale value gone, snapshot
	// values in, watermark jumps.
	snap := []wal.Record{{Shard: uint32(i), Seq: 40, Ops: []wal.Op{
		{Kind: wal.KindSet, Key: "old-key", Val: []byte("fresh")},
		{Kind: wal.KindCounterSet, Key: "snap-ctr", N: 7},
	}}}
	if err := r.ResetShard(i, 40, snap); err != nil {
		t.Fatal(err)
	}
	if v, _ := mustGet(t, r.Store(), "old-key"); v != "fresh" {
		t.Fatalf("old-key = %q, want fresh", v)
	}
	if v, _ := mustCounter(t, r.Store(), "snap-ctr"); v != 7 {
		t.Fatalf("snap-ctr = %d, want 7", v)
	}
	if w := r.Watermark(i); w != 40 {
		t.Fatalf("watermark = %d, want 40", w)
	}
	// The stream resumes at 41.
	if err := r.ApplyRecord(wal.Record{Shard: uint32(i), Seq: 41,
		Ops: []wal.Op{{Kind: wal.KindSet, Key: "old-key", Val: []byte("41")}}}); err != nil {
		t.Fatal(err)
	}
	if v, _ := mustGet(t, r.Store(), "old-key"); v != "41" {
		t.Fatalf("old-key = %q, want 41", v)
	}
}

// TestReplicaFromPrimaryLog is the end-to-end tentpole check at the
// package level: run a real durable primary (updates, deletes, and
// cross-shard transfers), then ship its actual on-disk log — segments
// and marker log, via the same ScanSegments the streamer uses — into a
// replica, and require identical state.
func TestReplicaFromPrimaryLog(t *testing.T) {
	dir := t.TempDir()
	const shards = 4
	p, err := Open(WithDurability(dir, wal.Batch), WithShards(shards), WithMetrics(false))
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 16)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%02d", i)
	}
	for i, k := range keys {
		k := k
		if err := p.Update([]string{k, k + "/ctr"}, func(t *Txn) error {
			t.Set(k, []byte(fmt.Sprintf("v%d", i)))
			t.Add(k+"/ctr", int64(i))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Cross-shard transfers between counters on distinct shards.
	a, b := keys[0], ""
	for _, k := range keys[1:] {
		if p.ShardOf(k+"/x") != p.ShardOf(a+"/x") {
			b = k
			break
		}
	}
	if b == "" {
		t.Fatal("no cross-shard pair")
	}
	for i := 0; i < 10; i++ {
		if err := p.Update([]string{a + "/x", b + "/x"}, func(t *Txn) error {
			t.Add(a+"/x", -1)
			t.Add(b+"/x", 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Delete(keys[3]); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReplica(WithShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Store().Close()
	// Ship the on-disk log. Order across streams is free; shard-by-
	// shard then markers works because drain holds cross-shard parts
	// until their marker lands. Ship twice to exercise duplicate
	// suppression (reconnect overlap).
	ship := func() {
		for i := 0; i < shards; i++ {
			dir := fmt.Sprintf("%s/shard-%04d", dir, i)
			if _, err := wal.ScanSegments(dir, uint32(i), 1,
				func(rec wal.Record, _ []byte) error { return r.ApplyRecord(rec) }); err != nil {
				t.Fatalf("scan shard %d: %v", i, err)
			}
		}
		if _, err := wal.ScanSegments(dir+"/txn", wal.TxnShard, 1,
			func(rec wal.Record, _ []byte) error { return r.ApplyRecord(rec) }); err != nil {
			t.Fatalf("scan markers: %v", err)
		}
	}
	ship()
	ship()

	// Compare states via a reopened primary.
	p2, err := Open(WithDurability(dir, wal.Batch), WithShards(shards), WithMetrics(false))
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	for _, k := range keys {
		pv, pok := mustGet(t, p2, k)
		rv, rok := mustGet(t, r.Store(), k)
		if pok != rok || pv != rv {
			t.Fatalf("%s: primary %q,%v replica %q,%v", k, pv, pok, rv, rok)
		}
		pc, pok := mustCounter(t, p2, k+"/ctr")
		rc, rok := mustCounter(t, r.Store(), k+"/ctr")
		if pok != rok || pc != rc {
			t.Fatalf("%s/ctr: primary %d,%v replica %d,%v", k, pc, pok, rc, rok)
		}
	}
	for _, k := range []string{a + "/x", b + "/x"} {
		pc, _ := mustCounter(t, p2, k)
		rc, _ := mustCounter(t, r.Store(), k)
		if pc != rc {
			t.Fatalf("%s: primary %d replica %d", k, pc, rc)
		}
	}
	if st := r.Stats(); st.XApplied == 0 {
		t.Fatal("no cross-shard transactions were shipped")
	}
}

func BenchmarkKVReplicaApply(b *testing.B) {
	r, err := NewReplica(WithShards(8), WithMetrics(false))
	if err != nil {
		b.Fatal(err)
	}
	defer r.Store().Close()
	keys := make([]string, 64)
	shard := make([]int, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench-key-%03d", i)
		shard[i] = r.Store().ShardOf(keys[i])
	}
	seqs := make([]uint64, r.Shards())
	val := []byte("0123456789abcdef")
	rec := wal.Record{Ops: []wal.Op{{Kind: wal.KindSet}}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i & 63
		seqs[shard[k]]++
		rec.Shard = uint32(shard[k])
		rec.Seq = seqs[shard[k]]
		rec.Ops[0].Key = keys[k]
		rec.Ops[0].Val = val
		if err := r.ApplyRecord(rec); err != nil {
			b.Fatal(err)
		}
	}
}
