package kv

import (
	"fmt"
	"math/rand"
	"testing"

	"modtx/internal/stm"
	"modtx/internal/wal"
)

// benchStore preloads nkeys byte-valued keys and nkeys counters. Extra
// options are appended after the defaults.
func benchStore(b *testing.B, e stm.Engine, nkeys int, opts ...Option) (*Store, []string, []string) {
	b.Helper()
	s := New(append([]Option{WithShards(64), WithEngine(e)}, opts...)...)
	keys := make([]string, nkeys)
	ctrs := make([]string, nkeys)
	vals := make(map[string][]byte, nkeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%06d", i)
		ctrs[i] = fmt.Sprintf("ctr-%06d", i)
		vals[keys[i]] = []byte(fmt.Sprintf("value-%06d", i))
	}
	if err := s.MSet(vals); err != nil {
		b.Fatal(err)
	}
	s.EnsureCounters(ctrs...)
	return s, keys, ctrs
}

func forEachEngineB(b *testing.B, f func(b *testing.B, e stm.Engine)) {
	for _, e := range stm.Engines() {
		b.Run(e.String(), func(b *testing.B) { f(b, e) })
	}
}

// BenchmarkKVFastGet measures the lock-free plain-access read path on
// byte values.
func BenchmarkKVFastGet(b *testing.B) {
	forEachEngineB(b, func(b *testing.B, e stm.Engine) {
		s, keys, _ := benchStore(b, e, 4096)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(1))
			for pb.Next() {
				if _, ok := s.FastGet(keys[rng.Intn(len(keys))]); !ok {
					b.Fatal("missing key")
				}
			}
		})
	})
}

// BenchmarkKVFastCounterGet measures the plain path on the int64
// specialization (no boxing, no formatting).
func BenchmarkKVFastCounterGet(b *testing.B) {
	forEachEngineB(b, func(b *testing.B, e stm.Engine) {
		s, _, ctrs := benchStore(b, e, 4096)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(1))
			for pb.Next() {
				if _, ok := s.FastCounterGet(ctrs[rng.Intn(len(ctrs))]); !ok {
					b.Fatal("missing counter")
				}
			}
		})
	})
}

// BenchmarkKVGet measures the single-key transactional read path.
func BenchmarkKVGet(b *testing.B) {
	forEachEngineB(b, func(b *testing.B, e stm.Engine) {
		s, keys, _ := benchStore(b, e, 4096)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(2))
			for pb.Next() {
				if _, ok, err := s.Get(keys[rng.Intn(len(keys))]); err != nil || !ok {
					b.Fatal("missing key")
				}
			}
		})
	})
}

// BenchmarkKVSet measures the single-key transactional write path
// (includes the defensive value copy).
func BenchmarkKVSet(b *testing.B) {
	forEachEngineB(b, func(b *testing.B, e stm.Engine) {
		s, keys, _ := benchStore(b, e, 4096)
		val := []byte("benchmark-value")
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(3))
			for pb.Next() {
				if err := s.Set(keys[rng.Intn(len(keys))], val); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkKVDurableSet measures the single-key write path under each
// durability level on the default engine: "none" shows the pure
// logging overhead (encode + buffered append, no fsync), "batch" adds
// the interval fsync off the hot path, and "fsync" is the full
// group-commit wait — the number that shows how many concurrent
// writers share one fsync. "off" is the undisturbed baseline through
// the same harness.
func BenchmarkKVDurableSet(b *testing.B) {
	run := func(b *testing.B, opts ...Option) {
		s := New(append([]Option{WithShards(64), WithMetrics(false)}, opts...)...)
		defer s.Close()
		keys := make([]string, 4096)
		for i := range keys {
			keys[i] = fmt.Sprintf("key-%06d", i)
		}
		val := []byte("benchmark-value")
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(9))
			for pb.Next() {
				if err := s.Set(keys[rng.Intn(len(keys))], val); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("off", func(b *testing.B) { run(b) })
	for _, level := range []wal.Level{wal.None, wal.Batch, wal.Fsync} {
		b.Run(level.String(), func(b *testing.B) {
			run(b, WithDurability(b.TempDir(), level))
		})
	}
}

// BenchmarkKVDurableCounterAdd is the counter lane under durability:
// the logged record is fixed-size, so this isolates sequencing and
// group-commit cost from value copying.
func BenchmarkKVDurableCounterAdd(b *testing.B) {
	for _, level := range []wal.Level{wal.None, wal.Fsync} {
		b.Run(level.String(), func(b *testing.B) {
			s := New(WithShards(64), WithMetrics(false), WithDurability(b.TempDir(), level))
			defer s.Close()
			ctrs := make([]string, 4096)
			for i := range ctrs {
				ctrs[i] = fmt.Sprintf("ctr-%06d", i)
			}
			s.EnsureCounters(ctrs...)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(10))
				for pb.Next() {
					if _, err := s.CounterAdd(ctrs[rng.Intn(len(ctrs))], 1); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkKVCounterAdd measures the int64-specialized counter hot path.
func BenchmarkKVCounterAdd(b *testing.B) {
	forEachEngineB(b, func(b *testing.B, e stm.Engine) {
		s, _, ctrs := benchStore(b, e, 4096)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(6))
			for pb.Next() {
				if _, err := s.CounterAdd(ctrs[rng.Intn(len(ctrs))], 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkKVTxnTransfer measures cross-shard two-key counter
// transactions.
func BenchmarkKVTxnTransfer(b *testing.B) {
	forEachEngineB(b, func(b *testing.B, e stm.Engine) {
		s, _, ctrs := benchStore(b, e, 4096)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(4))
			for pb.Next() {
				from := ctrs[rng.Intn(len(ctrs))]
				to := ctrs[rng.Intn(len(ctrs))]
				if from == to {
					continue
				}
				err := s.Update([]string{from, to}, func(t *Txn) error {
					t.Add(from, -1)
					t.Add(to, 1)
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkInstrumentedKVGet measures the transactional read path with
// every call sampled (WithMetricsSampling(1)) — the worst-case
// observability cost: two clock reads and a histogram record per op.
// The default configuration (BenchmarkKVGet) samples 1-in-256 and pays
// ~1/256th of the delta between this and BenchmarkInstrumentedKVGetOff.
func BenchmarkInstrumentedKVGet(b *testing.B) {
	forEachEngineB(b, func(b *testing.B, e stm.Engine) {
		s, keys, _ := benchStore(b, e, 4096, WithMetricsSampling(1))
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(2))
			for pb.Next() {
				if _, ok, err := s.Get(keys[rng.Intn(len(keys))]); err != nil || !ok {
					b.Fatal("missing key")
				}
			}
		})
	})
}

// BenchmarkInstrumentedKVGetOff is the floor for the pair: the same read
// with metrics compiled out of the path (nil histograms, no ticks).
func BenchmarkInstrumentedKVGetOff(b *testing.B) {
	forEachEngineB(b, func(b *testing.B, e stm.Engine) {
		s, keys, _ := benchStore(b, e, 4096, WithMetrics(false))
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(2))
			for pb.Next() {
				if _, ok, err := s.Get(keys[rng.Intn(len(keys))]); err != nil || !ok {
					b.Fatal("missing key")
				}
			}
		})
	})
}

// BenchmarkInstrumentedKVCounterAdd is the write-side twin: the counter
// hot path with every call sampled.
func BenchmarkInstrumentedKVCounterAdd(b *testing.B) {
	forEachEngineB(b, func(b *testing.B, e stm.Engine) {
		s, _, ctrs := benchStore(b, e, 4096, WithMetricsSampling(1))
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(6))
			for pb.Next() {
				if _, err := s.CounterAdd(ctrs[rng.Intn(len(ctrs))], 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkKVMGet measures consistent cross-shard snapshot reads of 8
// byte-valued keys.
func BenchmarkKVMGet(b *testing.B) {
	forEachEngineB(b, func(b *testing.B, e stm.Engine) {
		s, keys, _ := benchStore(b, e, 4096)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(5))
			batch := make([]string, 8)
			for pb.Next() {
				for i := range batch {
					batch[i] = keys[rng.Intn(len(keys))]
				}
				if _, err := s.MGet(batch...); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}
