package kv

import (
	"fmt"
	"math/rand"
	"testing"

	"modtx/internal/stm"
)

func benchStore(b *testing.B, e stm.Engine, nkeys int) (*Store, []string) {
	b.Helper()
	s := New(Options{Shards: 64, Engine: e})
	keys := make([]string, nkeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%06d", i)
	}
	s.EnsureKeys(keys...)
	return s, keys
}

func forEachEngineB(b *testing.B, f func(b *testing.B, e stm.Engine)) {
	for _, e := range []stm.Engine{stm.Lazy, stm.Eager, stm.GlobalLock} {
		b.Run(e.String(), func(b *testing.B) { f(b, e) })
	}
}

// BenchmarkKVFastGet measures the lock-free plain-access read path.
func BenchmarkKVFastGet(b *testing.B) {
	forEachEngineB(b, func(b *testing.B, e stm.Engine) {
		s, keys := benchStore(b, e, 4096)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(1))
			for pb.Next() {
				if _, ok := s.FastGet(keys[rng.Intn(len(keys))]); !ok {
					b.Fatal("missing key")
				}
			}
		})
	})
}

// BenchmarkKVGet measures the single-key transactional read path.
func BenchmarkKVGet(b *testing.B) {
	forEachEngineB(b, func(b *testing.B, e stm.Engine) {
		s, keys := benchStore(b, e, 4096)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(2))
			for pb.Next() {
				if _, ok, err := s.Get(keys[rng.Intn(len(keys))]); err != nil || !ok {
					b.Fatal("missing key")
				}
			}
		})
	})
}

// BenchmarkKVSet measures the single-key transactional write path.
func BenchmarkKVSet(b *testing.B) {
	forEachEngineB(b, func(b *testing.B, e stm.Engine) {
		s, keys := benchStore(b, e, 4096)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(3))
			for pb.Next() {
				if err := s.Set(keys[rng.Intn(len(keys))], 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkKVTxnTransfer measures cross-shard two-key transactions.
func BenchmarkKVTxnTransfer(b *testing.B) {
	forEachEngineB(b, func(b *testing.B, e stm.Engine) {
		s, keys := benchStore(b, e, 4096)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(4))
			for pb.Next() {
				from := keys[rng.Intn(len(keys))]
				to := keys[rng.Intn(len(keys))]
				if from == to {
					continue
				}
				err := s.Update([]string{from, to}, func(t *Txn) error {
					t.Add(from, -1)
					t.Add(to, 1)
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkKVMGet measures consistent cross-shard snapshot reads of 8 keys.
func BenchmarkKVMGet(b *testing.B) {
	forEachEngineB(b, func(b *testing.B, e stm.Engine) {
		s, keys := benchStore(b, e, 4096)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(5))
			batch := make([]string, 8)
			for pb.Next() {
				for i := range batch {
					batch[i] = keys[rng.Intn(len(keys))]
				}
				if _, err := s.MGet(batch...); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}
