package kv

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"modtx/internal/stm"
	"modtx/internal/wal"
)

// openDurable opens a small durable store over dir with deterministic
// settings (2 shards keep the directories small, fsync level makes
// every acknowledged write durable without sleeping).
func openDurable(t *testing.T, dir string, level wal.Level, extra ...Option) *Store {
	t.Helper()
	opts := append([]Option{
		WithShards(2),
		WithDurability(dir, level),
		WithMetrics(false),
	}, extra...)
	s, err := Open(opts...)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir, wal.Fsync)

	if err := s.Set("greeting", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CounterAdd("hits", 41); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CounterAdd("hits", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("doomed", []byte("bye")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete("doomed"); err != nil {
		t.Fatal(err)
	}
	// A cross-shard transaction, to cover the Txn emission paths.
	if err := s.Update([]string{"greeting", "hits", "txn-key"}, func(tx *Txn) error {
		tx.Set("txn-key", []byte("txn-val"))
		tx.Add("hits", 8)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openDurable(t, dir, wal.Fsync)
	defer r.Close()
	if v, ok, _ := r.Get("greeting"); !ok || string(v) != "hello" {
		t.Fatalf("greeting = %q, %v", v, ok)
	}
	if n, ok, _ := r.CounterGet("hits"); !ok || n != 50 {
		t.Fatalf("hits = %d, %v", n, ok)
	}
	if v, ok, _ := r.Get("txn-key"); !ok || string(v) != "txn-val" {
		t.Fatalf("txn-key = %q, %v", v, ok)
	}
	if _, ok, _ := r.Get("doomed"); ok {
		t.Fatal("deleted key survived recovery")
	}
	info := r.WALStats().Recover
	if info.Records == 0 {
		t.Fatalf("recovery replayed no records: %+v", info)
	}
}

func TestDurablePublishLogged(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir, wal.Fsync)
	if err := s.Publish(map[string][]byte{"pub1": []byte("v1"), "pub2": []byte("v2")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openDurable(t, dir, wal.Fsync)
	defer r.Close()
	for k, want := range map[string]string{"pub1": "v1", "pub2": "v2"} {
		if v, ok, _ := r.Get(k); !ok || string(v) != want {
			t.Fatalf("%s = %q, %v (want %q)", k, v, ok, want)
		}
	}
}

func TestDurableDeleteRecreateChangesKind(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir, wal.Fsync)
	if err := s.Set("k", []byte("bytes")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CounterAdd("k", 7); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openDurable(t, dir, wal.Fsync)
	defer r.Close()
	if n, ok, _ := r.CounterGet("k"); !ok || n != 7 {
		t.Fatalf("k = %d, %v after kind change", n, ok)
	}
}

func TestCheckpointAndCompactReopen(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotations (and their background checkpoints).
	s := openDurable(t, dir, wal.Fsync, WithWALSegmentBytes(512))
	for i := 0; i < 200; i++ {
		if err := s.Set(fmt.Sprintf("key-%03d", i), []byte(strings.Repeat("x", 32))); err != nil {
			t.Fatal(err)
		}
	}
	// An explicit checkpoint on top of whatever the rotations started.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := s.WALStats()
	if st.Rotations == 0 {
		t.Fatalf("expected rotations with 512-byte segments: %+v", st)
	}
	if st.Checkpoints == 0 {
		t.Fatalf("expected checkpoints: %+v", st)
	}
	// More writes after the checkpoint, to exercise snapshot + tail.
	for i := 0; i < 50; i++ {
		if err := s.Set(fmt.Sprintf("key-%03d", i), []byte("updated")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openDurable(t, dir, wal.Fsync, WithWALSegmentBytes(512))
	defer r.Close()
	for i := 0; i < 200; i++ {
		want := strings.Repeat("x", 32)
		if i < 50 {
			want = "updated"
		}
		if v, ok, _ := r.Get(fmt.Sprintf("key-%03d", i)); !ok || string(v) != want {
			t.Fatalf("key-%03d = %q, %v", i, v, ok)
		}
	}
	if r.WALStats().Recover.Snapshots == 0 {
		t.Fatalf("expected snapshot-based recovery: %+v", r.WALStats().Recover)
	}
}

func TestDurableShardCountMismatch(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir, wal.None)
	if err := s.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(WithShards(8), WithDurability(dir, wal.None), WithMetrics(false)); err == nil {
		t.Fatal("reopening with a different shard count must fail")
	} else if !strings.Contains(err.Error(), "shards") {
		t.Fatalf("unhelpful mismatch error: %v", err)
	}
}

func TestDurableBatchLevelFlushes(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir, wal.Batch, WithWALFlushInterval(time.Millisecond))
	if err := s.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Close fsyncs the tail at every level, so the write must survive.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openDurable(t, dir, wal.Batch)
	defer r.Close()
	if v, ok, _ := r.Get("k"); !ok || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("k = %q, %v", v, ok)
	}
}

func TestDurableNoneLevelSurvivesClose(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir, wal.None)
	if _, err := s.CounterAdd("n", 5); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openDurable(t, dir, wal.None)
	defer r.Close()
	if n, ok, _ := r.CounterGet("n"); !ok || n != 5 {
		t.Fatalf("n = %d, %v", n, ok)
	}
}

func TestWALStatsShape(t *testing.T) {
	s := New(WithShards(2), WithMetrics(false))
	if st := s.WALStats(); st.Level != "off" {
		t.Fatalf("non-durable level = %q", st.Level)
	}
	if s.Durable() {
		t.Fatal("Durable() on a plain store")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close on a plain store: %v", err)
	}
	if _, err := s.Recover(); err != ErrNotDurable {
		t.Fatalf("Recover on a plain store: %v", err)
	}
	if err := s.Checkpoint(); err != ErrNotDurable {
		t.Fatalf("Checkpoint on a plain store: %v", err)
	}

	dir := t.TempDir()
	d := openDurable(t, dir, wal.Fsync)
	defer d.Close()
	if err := d.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	st := d.WALStats()
	if st.Level != "fsync" || st.Appends == 0 || st.Fsyncs == 0 || st.Bytes == 0 {
		t.Fatalf("stats not counting: %+v", st)
	}
	if st.Err != "" {
		t.Fatalf("unexpected sticky error: %s", st.Err)
	}
}

// TestDurableDirLayout pins the on-disk layout: a meta file at the
// root and one subdirectory per shard holding segments.
func TestDurableDirLayout(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir, wal.Fsync)
	if err := s.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "store.meta")); err != nil {
		t.Fatalf("store.meta: %v", err)
	}
	for i := 0; i < 2; i++ {
		sub := filepath.Join(dir, fmt.Sprintf("shard-%04d", i))
		ents, err := os.ReadDir(sub)
		if err != nil {
			t.Fatalf("%s: %v", sub, err)
		}
		if len(ents) == 0 {
			t.Fatalf("%s is empty", sub)
		}
	}
}

// TestDurableAllEngines runs the round-trip on every engine: the tap
// contract (log order = commit order) must hold regardless of engine.
func TestDurableAllEngines(t *testing.T) {
	for _, eng := range stm.Engines() {
		t.Run(eng.String(), func(t *testing.T) {
			dir := t.TempDir()
			s := openDurable(t, dir, wal.Fsync, WithEngine(eng))
			for i := 0; i < 20; i++ {
				if _, err := s.CounterAdd("n", 1); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			r := openDurable(t, dir, wal.Fsync, WithEngine(eng))
			defer r.Close()
			if n, ok, _ := r.CounterGet("n"); !ok || n != 20 {
				t.Fatalf("n = %d, %v", n, ok)
			}
		})
	}
}
