package kv

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"modtx/internal/stm"
)

// watchdog returns a context that fails the test (rather than hanging
// go test) if a blocking call never wakes.
func watchdog(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestWaitGetExistingKey: WaitGet on a live key behaves like Get, with
// no park at all.
func TestWaitGetExistingKey(t *testing.T) {
	for _, e := range stm.Engines() {
		t.Run(e.String(), func(t *testing.T) {
			s := New(WithEngine(e), WithShards(4))
			if err := s.Set("k", []byte("v")); err != nil {
				t.Fatal(err)
			}
			got, err := s.WaitGet(watchdog(t), "k")
			if err != nil || string(got) != "v" {
				t.Fatalf("WaitGet = %q, %v", got, err)
			}
			if _, err := s.CounterAdd("n", 7); err != nil {
				t.Fatal(err)
			}
			got, err = s.WaitGet(watchdog(t), "n")
			if err != nil || string(got) != "7" {
				t.Fatalf("WaitGet counter = %q, %v", got, err)
			}
			if w := s.Stats().Waits; w != 0 {
				t.Fatalf("existing-key WaitGet parked %d times, want 0", w)
			}
		})
	}
}

// TestWaitGetWakesOnCreation: a WaitGet parked on an absent key is woken
// by the Set that creates it — key creation is announced through the
// shard's keyspace version.
func TestWaitGetWakesOnCreation(t *testing.T) {
	for _, e := range stm.Engines() {
		t.Run(e.String(), func(t *testing.T) {
			s := New(WithEngine(e), WithShards(4))
			ctx := watchdog(t)
			got := make(chan []byte, 1)
			errc := make(chan error, 1)
			go func() {
				v, err := s.WaitGet(ctx, "born")
				errc <- err
				got <- v
			}()
			waitForParked(t, s, 1)
			if err := s.Set("born", []byte("hello")); err != nil {
				t.Fatal(err)
			}
			if err := <-errc; err != nil {
				t.Fatal(err)
			}
			if v := <-got; string(v) != "hello" {
				t.Fatalf("WaitGet = %q", v)
			}
			st := s.Stats()
			if st.Waits == 0 || st.Wakeups == 0 {
				t.Fatalf("expected a park and a notified wakeup: %+v", st)
			}
		})
	}
}

// TestWaitGetAcrossDeleteAndRecreate: the waiter must survive the
// tombstone-then-sweep deletion protocol — a condemned entry's variables
// never change again, so the waiter re-parks on the keyspace version and
// wakes when the key is re-created (possibly with a different kind).
func TestWaitGetAcrossDeleteAndRecreate(t *testing.T) {
	for _, e := range stm.Engines() {
		t.Run(e.String(), func(t *testing.T) {
			s := New(WithEngine(e), WithShards(4))
			if err := s.Set("k", []byte("old")); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Delete("k"); err != nil {
				t.Fatal(err)
			}
			ctx := watchdog(t)
			got := make(chan []byte, 1)
			errc := make(chan error, 1)
			go func() {
				v, err := s.WaitGet(ctx, "k")
				errc <- err
				got <- v
			}()
			waitForParked(t, s, 1)
			// Re-create as a counter: deletion freed the key's kind.
			if _, err := s.CounterAdd("k", 42); err != nil {
				t.Fatal(err)
			}
			if err := <-errc; err != nil {
				t.Fatal(err)
			}
			if v := <-got; string(v) != "42" {
				t.Fatalf("WaitGet after recreate = %q", v)
			}
		})
	}
}

// TestWaitGetCanceled: cancellation while parked surfaces promptly as
// stm.ErrCanceled (wrapping context.Canceled), not as a conflict error.
func TestWaitGetCanceled(t *testing.T) {
	for _, e := range stm.Engines() {
		t.Run(e.String(), func(t *testing.T) {
			s := New(WithEngine(e), WithShards(4))
			ctx, cancel := context.WithCancel(context.Background())
			errc := make(chan error, 1)
			go func() {
				_, err := s.WaitGet(ctx, "never")
				errc <- err
			}()
			waitForParked(t, s, 1)
			start := time.Now()
			cancel()
			select {
			case err := <-errc:
				if !errors.Is(err, stm.ErrCanceled) || !errors.Is(err, context.Canceled) {
					t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
				}
				if d := time.Since(start); d > 5*time.Second {
					t.Fatalf("cancellation honored after %v", d)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("canceled WaitGet never returned")
			}
		})
	}
}

// TestWatchValueChange: Watch wakes on a value change and returns the
// new value; rewriting identical bytes does not wake it.
func TestWatchValueChange(t *testing.T) {
	for _, e := range stm.Engines() {
		t.Run(e.String(), func(t *testing.T) {
			s := New(WithEngine(e), WithShards(4))
			if err := s.Set("k", []byte("v1")); err != nil {
				t.Fatal(err)
			}
			ctx := watchdog(t)
			type res struct {
				v  []byte
				ok bool
			}
			got := make(chan res, 1)
			errc := make(chan error, 1)
			go func() {
				v, ok, err := s.Watch(ctx, "k")
				errc <- err
				got <- res{v, ok}
			}()
			waitForParked(t, s, 1)
			// Same bytes: must not satisfy the watch.
			if err := s.Set("k", []byte("v1")); err != nil {
				t.Fatal(err)
			}
			select {
			case r := <-got:
				t.Fatalf("watch woke on identical bytes: %q", r.v)
			case <-time.After(100 * time.Millisecond):
			}
			if err := s.Set("k", []byte("v2")); err != nil {
				t.Fatal(err)
			}
			if err := <-errc; err != nil {
				t.Fatal(err)
			}
			if r := <-got; !r.ok || string(r.v) != "v2" {
				t.Fatalf("Watch = %q, %v", r.v, r.ok)
			}
		})
	}
}

// TestWatchDelete: Watch reports deletion as ok=false.
func TestWatchDelete(t *testing.T) {
	for _, e := range stm.Engines() {
		t.Run(e.String(), func(t *testing.T) {
			s := New(WithEngine(e), WithShards(4))
			if err := s.Set("k", []byte("v")); err != nil {
				t.Fatal(err)
			}
			ctx := watchdog(t)
			okc := make(chan bool, 1)
			errc := make(chan error, 1)
			go func() {
				_, ok, err := s.Watch(ctx, "k")
				errc <- err
				okc <- ok
			}()
			waitForParked(t, s, 1)
			if _, err := s.Delete("k"); err != nil {
				t.Fatal(err)
			}
			if err := <-errc; err != nil {
				t.Fatal(err)
			}
			if ok := <-okc; ok {
				t.Fatal("Watch after delete reported ok=true")
			}
		})
	}
}

// TestWatchFromImmediate: a baseline that already disagrees with the
// current state returns without parking.
func TestWatchFromImmediate(t *testing.T) {
	s := New(WithShards(4))
	if err := s.Set("k", []byte("new")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.WatchFrom(watchdog(t), "k", []byte("stale"), true)
	if err != nil || !ok || string(v) != "new" {
		t.Fatalf("WatchFrom = %q, %v, %v", v, ok, err)
	}
	v, ok, err = s.WatchFrom(watchdog(t), "k", nil, false)
	if err != nil || !ok || string(v) != "new" {
		t.Fatalf("WatchFrom(absent baseline) = %q, %v, %v", v, ok, err)
	}
}

// TestWaitGetManyWaitersOneKey: every parked waiter of a key wakes on
// the creating commit (notification is broadcast to all registrations
// of the variable, not handed to one).
func TestWaitGetManyWaitersOneKey(t *testing.T) {
	s := New(WithShards(4))
	ctx := watchdog(t)
	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			v, err := s.WaitGet(ctx, "k")
			if err == nil && string(v) != "v" {
				err = fmt.Errorf("value %q", v)
			}
			errs <- err
		}()
	}
	waitForParked(t, s, n)
	if err := s.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// waitForParked blocks until the store has recorded at least n parks
// (waiters registered and asleep), so tests signal only after the
// blocking side is actually parked.
func waitForParked(t *testing.T, s *Store, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Waits < uint64(n) {
		if time.Now().After(deadline) {
			t.Fatalf("waiters never parked: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWaitGetCreationRaceNoStall races WaitGet against the Set that
// creates the key with no park synchronization, pinning the ordering
// fix in blockOnKeyspace: the keyspace version must be read before the
// table is re-checked, otherwise a creation whose Touch lands between
// the waiter's lookup and its kvers read strands the waiter on the
// safety-net timer (≥100ms per stall). With the correct ordering every
// round resolves in microseconds; the wall-clock bound catches a
// reintroduced window on any engine (the glock and tl2 read paths are
// the ones that can absorb the Touch without conflicting).
func TestWaitGetCreationRaceNoStall(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive race stress")
	}
	const rounds = 200
	for _, e := range stm.Engines() {
		t.Run(e.String(), func(t *testing.T) {
			s := New(WithEngine(e), WithShards(2))
			ctx := watchdog(t)
			start := time.Now()
			for i := 0; i < rounds; i++ {
				key := fmt.Sprintf("race-%d", i)
				got := make(chan error, 1)
				go func() {
					v, err := s.WaitGet(ctx, key)
					if err == nil && string(v) != "x" {
						err = fmt.Errorf("value %q", v)
					}
					got <- err
				}()
				if err := s.Set(key, []byte("x")); err != nil {
					t.Fatal(err)
				}
				if err := <-got; err != nil {
					t.Fatal(err)
				}
			}
			// 200 rounds of stall-free handoff take well under a second;
			// a re-opened race window costs ≥100ms per hit.
			if d := time.Since(start); d > 20*time.Second {
				t.Fatalf("%d rounds took %v — waiters are stalling on the safety net", rounds, d)
			}
		})
	}
}
