package kv

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"modtx/internal/stm"
	"modtx/internal/wal"
)

// The cross-shard crash-recovery torture test: every transaction moves
// an amount between counters on two distinct shards, so the sum over
// all counters is zero in every committed state. A crash is simulated
// by abandoning the store (no Close) and then damaging WAL tails — the
// participant shards', the commit marker log's, or both, covering the
// kill points on either side of the marker append. Recovery must be
// all-or-nothing per transaction: a surviving state where one leg of a
// transfer applied without the other shows up as a nonzero sum.
//
// Runs the full grid: every engine × every durability level. (At
// wal.None nothing is promised across a crash, but whatever does
// survive must still be a consistent cut — the atomicity rule is about
// which prefix recovery chooses, not about fsync.)
//
// The stores run at the default segment size so no rotation-triggered
// checkpoint writes snapshots: every record stays in the chain, where
// the all-or-nothing cut can physically unwind it. That matches the
// guarantee — state baked into a snapshot is only atomic against
// crashes (the checkpoint barrier fsyncs every participant first),
// not against arbitrary damage to other shards' already-synced logs,
// which this test's bit flips would otherwise inflict.

// xtortureCtrs finds one counter key per shard, so transfers between
// two of them are genuinely cross-shard transactions.
func xtortureCtrs(s *Store) []string {
	ctr := make([]string, s.NumShards())
	missing := s.NumShards()
	for i := 0; missing > 0; i++ {
		k := fmt.Sprintf("xctr-%d", i)
		if sh := s.ShardOf(k); ctr[sh] == "" {
			ctr[sh], missing = k, missing-1
		}
	}
	return ctr
}

// xtortureMangle damages a round-dependent set of WAL directories:
// marker log only (participant records survive their marker's loss),
// one participant shard only (the marker survives a participant's
// loss), or a random subset of everything. Returns a description.
func xtortureMangle(t *testing.T, dir string, s *Store, round int, rng *rand.Rand) string {
	t.Helper()
	shardSub := func(sh int) string { return filepath.Join(dir, fmt.Sprintf("shard-%04d", sh)) }
	switch round % 3 {
	case 0:
		return "txn: " + mangleTail(t, filepath.Join(dir, "txn"), rng)
	case 1:
		sh := rng.Intn(s.NumShards())
		return fmt.Sprintf("shard %d: %s", sh, mangleTail(t, shardSub(sh), rng))
	default:
		desc := ""
		hit := false
		for sh := 0; sh < s.NumShards(); sh++ {
			if rng.Intn(2) == 0 {
				desc += fmt.Sprintf("shard %d: %s; ", sh, mangleTail(t, shardSub(sh), rng))
				hit = true
			}
		}
		if rng.Intn(2) == 0 || !hit {
			desc += "txn: " + mangleTail(t, filepath.Join(dir, "txn"), rng)
		}
		return desc
	}
}

func TestCrossShardCrashRecoveryTorture(t *testing.T) {
	for _, eng := range stm.Engines() {
		for _, level := range []wal.Level{wal.None, wal.Batch, wal.Fsync} {
			t.Run(eng.String()+"/"+level.String(), func(t *testing.T) {
				t.Parallel()
				rng := rand.New(rand.NewSource(0x8A2C + int64(eng)*7 + int64(level)))
				dir := t.TempDir()
				const rounds = 3
				var prevSum int64 // always 0; kept for the failure message
				for round := 0; round < rounds; round++ {
					s, err := Open(
						WithShards(4),
						WithEngine(eng),
						WithMetrics(false),
						WithDurability(dir, level),
					)
					if err != nil {
						t.Fatalf("round %d: Open: %v", round, err)
					}
					ctr := xtortureCtrs(s)

					// The recovered cut must be transaction-atomic: the sum
					// over all counters is zero in every committed state, so
					// any partially surfaced transfer shows here.
					var sum int64
					for _, k := range ctr {
						v, _, _ := s.CounterGet(k)
						sum += v
					}
					if sum != prevSum {
						info := s.WALStats().Recover
						t.Fatalf("round %d: recovered counter sum %d, want %d — a cross-shard transfer was torn apart (recover: %+v)",
							round, sum, prevSum, info)
					}
					if info := s.WALStats().Recover; info.TxnRollbacks > 0 {
						t.Logf("round %d: rolled back %d incomplete cross-shard txns (%d records across %d shards)",
							round, info.TxnRollbacks, info.TxnRolledRecords, info.TxnRolledShards)
					}

					// Transfer concurrently between random distinct shards,
					// with single-shard churn mixed in so the logs hold both
					// plain and cross-flagged records.
					const writers, each = 4, 15
					var wg sync.WaitGroup
					for w := 0; w < writers; w++ {
						wg.Add(1)
						go func(w int) {
							defer wg.Done()
							r := rand.New(rand.NewSource(int64(round*writers + w)))
							for i := 0; i < each; i++ {
								a := r.Intn(len(ctr))
								b := (a + 1 + r.Intn(len(ctr)-1)) % len(ctr)
								d := int64(1 + r.Intn(9))
								keys := []string{ctr[a], ctr[b]}
								if err := s.Update(keys, func(tx *Txn) error {
									tx.Add(keys[0], -d)
									tx.Add(keys[1], d)
									return nil
								}); err != nil {
									t.Error(err)
									return
								}
								if i%3 == 0 {
									_ = s.Set(fmt.Sprintf("churn-%d-%d", w, i%4), []byte("x"))
								}
							}
						}(w)
					}
					wg.Wait()

					// Crash: no Close — abandon the logs mid-flight, then
					// damage this round's target directories.
					t.Logf("round %d: %s", round, xtortureMangle(t, dir, s, round, rng))
					_ = s.Close() // release the batchers so TempDir can clean up
				}

				// A final clean generation: the last recovery must leave
				// logs that extend and survive a clean close intact.
				s, err := Open(WithShards(4), WithEngine(eng), WithMetrics(false), WithDurability(dir, level))
				if err != nil {
					t.Fatalf("final open: %v", err)
				}
				ctr := xtortureCtrs(s)
				{
					var sum int64
					for _, k := range ctr {
						v, _, _ := s.CounterGet(k)
						sum += v
					}
					if sum != 0 {
						t.Fatalf("final open: recovered counter sum %d, want 0 (recover: %+v)", sum, s.WALStats().Recover)
					}
				}
				if err := s.Update([]string{ctr[0], ctr[1]}, func(tx *Txn) error {
					tx.Add(ctr[0], -5)
					tx.Add(ctr[1], 5)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
				f, err := Open(WithShards(4), WithEngine(eng), WithMetrics(false), WithDurability(dir, level))
				if err != nil {
					t.Fatalf("reopen after clean close: %v", err)
				}
				defer f.Close()
				var sum int64
				for _, k := range ctr {
					v, _, _ := f.CounterGet(k)
					sum += v
				}
				if sum != 0 {
					t.Fatalf("after clean close, counter sum %d, want 0", sum)
				}
			})
		}
	}
}
