package kv

import (
	"errors"
	"syscall"
	"testing"
	"time"

	"modtx/internal/fault"
	"modtx/internal/wal"
)

// waitDegraded polls until the store latches the WAL fault (the OnFail
// hook runs on the batcher goroutine, so the transition is prompt but
// asynchronous).
func waitDegraded(t *testing.T, s *Store) error {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if deg, err := s.Degraded(); deg {
			return err
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("store never transitioned to degraded")
	return nil
}

// TestDegradedReadOnly pins the readonly policy end to end: a scripted
// disk fault latches the WAL, the store flips degraded, writes bounce
// with ErrDegraded while reads keep serving, and reopening over the
// healed disk recovers the durable prefix cleanly.
func TestDegradedReadOnly(t *testing.T) {
	dir := t.TempDir()
	dfs := fault.NewDiskFS(nil, fault.DiskPlan{})
	s := openDurable(t, dir, wal.Fsync, WithWALFS(dfs), WithDegradedMode(DegradeReadOnly))

	if err := s.Set("stable", []byte("before")); err != nil {
		t.Fatal(err)
	}

	dfs.FailNextWrite(fault.ErrIO)
	// This write commits in memory but its append dies; at the Fsync
	// level that surfaces here, dressed as ErrDegraded by the policy.
	if err := s.Set("torn", []byte("during")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("write during fault: got %v, want ErrDegraded", err)
	}
	if err := waitDegraded(t, s); !errors.Is(err, syscall.EIO) {
		t.Fatalf("degraded cause: got %v, want EIO", err)
	}

	// Writes of every flavor are rejected at the gate...
	if err := s.Set("k", []byte("v")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Set: got %v, want ErrDegraded", err)
	}
	if _, err := s.CounterAdd("c", 1); !errors.Is(err, ErrDegraded) {
		t.Fatalf("CounterAdd: got %v, want ErrDegraded", err)
	}
	if _, err := s.Delete("stable"); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Delete: got %v, want ErrDegraded", err)
	}
	if err := s.Update([]string{"a", "b"}, func(tx *Txn) error { tx.Set("a", []byte("x")); return nil }); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Update: got %v, want ErrDegraded", err)
	}
	// ...while reads keep serving.
	if v, ok, err := s.Get("stable"); err != nil || !ok || string(v) != "before" {
		t.Fatalf("Get during degraded: %q %v %v", v, ok, err)
	}

	st := s.WALStats()
	if !st.Degraded || st.DegradedMode != "readonly" || st.Err == "" {
		t.Fatalf("WALStats degraded state: %+v", st)
	}

	s.Close() // error expected: the log is dead

	// Disk repaired: recovery replays the durable prefix and the store
	// is healthy again.
	dfs.Heal()
	s2 := openDurable(t, dir, wal.Fsync, WithWALFS(dfs), WithDegradedMode(DegradeReadOnly))
	defer s2.Close()
	if deg, _ := s2.Degraded(); deg {
		t.Fatal("reopened store is degraded")
	}
	if v, ok, _ := s2.Get("stable"); !ok || string(v) != "before" {
		t.Fatalf("recovered value: %q %v", v, ok)
	}
	if err := s2.Set("after", []byte("healed")); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
}

// TestDegradedShed pins the shed-durability policy: after the fault the
// store keeps acknowledging writes from memory, counting every commit
// the dead log refused, and reads see the shed writes.
func TestDegradedShed(t *testing.T) {
	dir := t.TempDir()
	dfs := fault.NewDiskFS(nil, fault.DiskPlan{})
	s := openDurable(t, dir, wal.Fsync, WithWALFS(dfs), WithDegradedMode(DegradeShed))

	if err := s.Set("stable", []byte("before")); err != nil {
		t.Fatal(err)
	}
	dfs.FailNextWrite(fault.ErrDiskFull)
	// The policy swallows the failure: the commit stands in memory.
	// Subsequent writes go to the same key — same shard, same dead log
	// — so each one is a commit the log refused.
	if err := s.Set("shed", []byte("v")); err != nil {
		t.Fatalf("write during fault: %v (shed mode must not fail writes)", err)
	}
	if err := waitDegraded(t, s); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("degraded cause: got %v, want ENOSPC", err)
	}

	for i := 0; i < 8; i++ {
		if err := s.Set("shed", []byte{byte(i)}); err != nil {
			t.Fatalf("shed write %d: %v", i, err)
		}
	}
	if v, ok, _ := s.Get("shed"); !ok || v[0] != 7 {
		t.Fatalf("shed writes not readable: %q %v", v, ok)
	}

	st := s.WALStats()
	if !st.Degraded || st.DegradedMode != "shed-durability" {
		t.Fatalf("WALStats degraded state: %+v", st)
	}
	if st.ShedWrites == 0 {
		t.Fatal("ShedWrites = 0, want > 0: sheds must be counted")
	}

	s.Close()

	// Reopen over the healed disk: the durable prefix survives; the
	// shed writes were the traded-away durability.
	dfs.Heal()
	s2 := openDurable(t, dir, wal.Fsync, WithWALFS(dfs), WithDegradedMode(DegradeShed))
	defer s2.Close()
	if v, ok, _ := s2.Get("stable"); !ok || string(v) != "before" {
		t.Fatalf("recovered value: %q %v", v, ok)
	}
}

// TestDegradedFailDefault pins the default policy: no gate, the sticky
// WAL error itself keeps surfacing on acknowledged writes.
func TestDegradedFailDefault(t *testing.T) {
	dir := t.TempDir()
	dfs := fault.NewDiskFS(nil, fault.DiskPlan{})
	s := openDurable(t, dir, wal.Fsync, WithWALFS(dfs))
	defer s.Close()

	dfs.FailNextWrite(fault.ErrIO)
	if err := s.Set("a", []byte("v")); err == nil || errors.Is(err, ErrDegraded) {
		t.Fatalf("got %v, want the raw sticky WAL error", err)
	}
	waitDegraded(t, s)
	// Same key: the fault latched that key's shard log, and fail mode
	// keeps surfacing it there (the other shard's log is healthy).
	if err := s.Set("a", []byte("v")); err == nil || errors.Is(err, ErrDegraded) {
		t.Fatalf("later write: got %v, want the raw sticky WAL error", err)
	}
}

func TestParseDegradedMode(t *testing.T) {
	for _, m := range []DegradedMode{DegradeFail, DegradeReadOnly, DegradeShed} {
		got, err := ParseDegradedMode(m.String())
		if err != nil || got != m {
			t.Fatalf("round-trip %v: %v %v", m, got, err)
		}
	}
	if _, err := ParseDegradedMode("nope"); err == nil {
		t.Fatal("ParseDegradedMode accepted garbage")
	}
}
