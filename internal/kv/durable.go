package kv

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"modtx/internal/obs"
	"modtx/internal/stm"
	"modtx/internal/wal"
)

// Durability: each shard's commits stream into a per-shard write-ahead
// log (internal/wal), sequenced by the STM commit tap so log order is
// commit order, and recovery replays snapshot + log tail back into the
// shard on Open.
//
// The flow of one durable write: the operation's transaction body
// records its effects as wal.Ops in a pooled pendingOps and attaches
// it with Tx.SetTapData; if (and only if) the attempt commits, the
// shard's tap runs at the serialization point, assigns the next
// per-shard commit sequence under the feed lock, hands the encoded
// record to the log's group-commit batcher, and fans the ops out to
// subscribers (feed.go) — all without blocking on I/O, so commits are
// never held up by the disk. At the Fsync level the operation then
// waits (after its transaction is fully committed and unlocked) for
// the batcher's fsync to cover its sequence number.
//
// Ops are logged in absolute form — counter writes as KindCounterSet
// with the post-transaction value — so replay is idempotent and
// recovery can splice a snapshot anywhere into the record stream.
//
// Two mixed-mode paths are, by design, outside the log: key creation
// via EnsureKeys/EnsureCounters (present-but-unwritten keys reappear
// on first write) and plain writes through Privatize'd handles.
// Publish IS logged: its sentinel transactions carry the published
// values as SET ops.

// ErrNotDurable reports a durability operation on a store opened
// without WithDurability.
var ErrNotDurable = errors.New("kv: store has no durability configured")

// pendingOps is one transaction's effect list, attached to the attempt
// via Tx.SetTapData and consumed by the shard's commit tap, which
// stamps it with the commit sequence it assigned. txn links the
// participants of one cross-shard commit (nil for single-shard
// writes): the tap flags their records and the last participant's tap
// appends the commit marker.
type pendingOps struct {
	ops []wal.Op
	seq uint64
	txn *pendingTxn
}

func (p *pendingOps) reset() {
	clear(p.ops)
	p.ops = p.ops[:0]
	p.seq = 0
	p.txn = nil
}

// pendingTxn coordinates the commit taps of one cross-shard
// transaction. The taps of one commit run sequentially (the two-phase
// cross-shard commit fires them shard by shard at the serialization
// point), each under its shard's feed lock: every tap records its
// (shard, seq) participant, and the last one appends the commit
// marker — participant vector included — to the store's marker log.
//
// Allocated per cross-shard durable commit; between the first and
// last tap it sits in the marker feed's open set, which is the
// checkpoint barrier's view of commits whose records are not all
// queued yet (see checkpointShard).
type pendingTxn struct {
	id     uint64        // random transaction id binding records and marker
	need   int           // participant count
	parts  []wal.TxnPart // filled by each tap, in tap order
	marker uint64        // marker-log seq, set by the last tap
	done   chan struct{} // closed by the last tap
}

// newPendingTxn allocates the coordination state of one cross-shard
// durable commit. The random id — not the (shard, seq) pairs — is the
// transaction's durable identity: sequence numbers are reused after a
// recovery rollback, the marker log is never rewritten, and a marker
// from a previous incarnation must never vouch for a later
// transaction's records (see Recover).
func newPendingTxn(need int) *pendingTxn {
	return &pendingTxn{id: rand.Uint64(), need: need, parts: make([]wal.TxnPart, 0, need), done: make(chan struct{})}
}

// txnFeed is the store-level cross-shard marker stream: a wal.Log of
// KindTxnMarker records under the sentinel wal.TxnShard, with its own
// dense sequence. mu also guards the open set of in-flight
// cross-shard commits.
type txnFeed struct {
	mu   sync.Mutex
	seq  uint64
	log  *wal.Log
	open map[*pendingTxn]struct{}
}

// shardFeed is the per-shard commit stream state: the sequence
// counter, the shard's log (nil without durability), and the lock
// under which the tap assigns sequences, appends, and fans out —
// making all three agree on one per-shard order.
type shardFeed struct {
	mu  sync.Mutex
	seq uint64
	log *wal.Log
}

// durState is the store's durability state (nil when disabled).
type durState struct {
	dir     string
	level   wal.Level
	opts    wal.Options // template for per-shard logs
	m       wal.Metrics
	results []wal.RecoverResult // per-shard, consumed by log attach
	xres    wal.RecoverResult   // marker log, consumed by log attach
	info    RecoverInfo

	// xfeed is the cross-shard commit marker stream (txn/ directory).
	xfeed txnFeed

	recovered bool
	attached  bool
	closed    atomic.Bool

	// Degraded-mode policy (degrade.go): mode is fixed at Open; the
	// flag and first error latch on the WAL's OnFail hook; shed counts
	// commits served while the log was down in DegradeShed.
	mode     DegradedMode
	degraded atomic.Bool
	degErr   atomic.Pointer[error]
	shed     atomic.Uint64

	// fs is the filesystem seam threaded into every wal call (nil =
	// the real filesystem); fault-injection tests swap it.
	fs wal.FS

	ckptBusy  []atomic.Bool // per-shard: one checkpoint at a time
	ckpts     atomic.Uint64
	ckptFails atomic.Uint64

	// ckptMu + ckptWG fence rotation-triggered checkpoints against
	// Close: the mutex makes "passed the closed check" and "counted in
	// the WaitGroup" one atomic step, so Close can drain stragglers
	// before it closes the logs.
	ckptMu sync.Mutex
	ckptWG sync.WaitGroup
}

// RecoverInfo summarizes a store's boot-time recovery, aggregated over
// shards. The JSON names are a stable wire format (STATS WAL emits it).
type RecoverInfo struct {
	Shards          int    `json:"shards"`
	Records         int    `json:"records"`          // log records replayed
	SnapshotRecords int    `json:"snapshot_records"` // snapshot chunks applied
	Snapshots       int    `json:"snapshots"`        // shards restored from a snapshot
	Truncations     int    `json:"truncations"`      // shards with a repaired torn tail
	TruncatedBytes  int64  `json:"truncated_bytes"`
	MaxSeq          uint64 `json:"max_seq"` // highest recovered commit sequence

	// Cross-shard atomicity: markers recovered from the txn log, and
	// what the all-or-nothing rule rolled back — incomplete cross-shard
	// transactions whose marker or sibling records did not survive the
	// crash, unwound by truncating each participant shard at the
	// incomplete record.
	TxnMarkers       int `json:"txn_markers"`
	TxnRollbacks     int `json:"txn_rollbacks"`      // transactions rolled back
	TxnRolledRecords int `json:"txn_rolled_records"` // records dropped by rollbacks
	TxnRolledShards  int `json:"txn_rolled_shards"`  // shards truncated by rollbacks
}

// storeMetaName guards against reopening a directory with a different
// shard count (keys would re-route and recovery would interleave
// shards' states).
const storeMetaName = "store.meta"

func (s *Store) shardDir(i int) string {
	return filepath.Join(s.dur.dir, fmt.Sprintf("shard-%04d", i))
}

// txnDir is the cross-shard commit marker log's directory.
func (s *Store) txnDir() string {
	return filepath.Join(s.dur.dir, "txn")
}

// checkMeta verifies (or, first time, records) the directory's shard
// count.
func (s *Store) checkMeta() error {
	path := filepath.Join(s.dur.dir, storeMetaName)
	want := fmt.Sprintf("mtxkv shards=%d\n", len(s.shards))
	b, err := os.ReadFile(path)
	switch {
	case err == nil:
		if string(b) != want {
			return fmt.Errorf("kv: durability dir %s was written with %q, reopened with %d shards", s.dur.dir, strings.TrimSpace(string(b)), len(s.shards))
		}
		return nil
	case os.IsNotExist(err):
		if err := os.MkdirAll(s.dur.dir, 0o755); err != nil {
			return err
		}
		return os.WriteFile(path, []byte(want), 0o644)
	default:
		return err
	}
}

// Recover replays the durability directory into the store: per shard,
// the newest usable snapshot plus the log tail past it, with torn
// tails truncated (see wal.Recover). Open calls it before attaching
// the logs and the commit taps, so nothing replayed is re-logged;
// calling it again afterwards just returns the boot-time summary.
//
// Cross-shard transactions recover all-or-nothing: a record flagged
// as a cross-shard participant replays only if the transaction's
// commit marker survived in the txn log AND every sibling participant
// record survived on its own shard (or is baked into that shard's
// snapshot — the checkpoint barrier guarantees a snapshot never bakes
// an incomplete transaction). An incomplete transaction is unwound by
// truncating each participant shard at its record; because later
// records on those shards may depend on the unwound writes, the
// truncation takes the shard's whole tail from that point, which can
// render further cross-shard transactions incomplete — the cut
// therefore iterates to a fixed point before anything replays.
func (s *Store) Recover() (RecoverInfo, error) {
	if s.dur == nil {
		return RecoverInfo{}, ErrNotDurable
	}
	if s.dur.recovered {
		return s.dur.info, nil
	}
	if err := s.checkMeta(); err != nil {
		return RecoverInfo{}, err
	}
	info := RecoverInfo{Shards: len(s.shards)}

	// Phase 1 — scan-and-repair every log, buffering the tails instead
	// of applying them: the marker log's surviving markers and each
	// shard's surviving chain past its snapshot. (Tails are bounded by
	// segment rotation + compaction, so buffering is proportional to
	// one checkpoint interval, not history.)
	var markers []wal.Record
	xres, err := wal.RecoverFS(s.dur.fs, s.txnDir(), wal.TxnShard, func(rec wal.Record) error {
		markers = append(markers, rec)
		return nil
	}, &s.dur.m)
	if err != nil {
		return info, fmt.Errorf("kv: recover txn log: %w", err)
	}
	s.dur.xres = xres
	s.dur.xfeed.seq = xres.LastSeq
	info.TxnMarkers = len(markers)

	nshards := len(s.shards)
	s.dur.results = make([]wal.RecoverResult, nshards)
	bufs := make([][]wal.Record, nshards)
	for i := range s.shards {
		res, err := wal.RecoverFS(s.dur.fs, s.shardDir(i), uint32(i), func(rec wal.Record) error {
			bufs[i] = append(bufs[i], rec)
			return nil
		}, &s.dur.m)
		if err != nil {
			return info, fmt.Errorf("kv: recover shard %d: %w", i, err)
		}
		s.dur.results[i] = res
	}

	// Phase 2 — the all-or-nothing cut. byTxn maps each surviving
	// marker's transaction id to its participant vector, and flagged
	// maps each surviving cross record's (shard, seq) to its id; cut[i]
	// is the highest seq shard i keeps. A flagged record above the
	// snapshot with no surviving marker for its id, or whose marker
	// names a sibling not accounted for under the same id within that
	// shard's kept horizon, moves the cut below itself; cuts cascade
	// until stable. Matching by transaction id — never by (shard, seq)
	// alone — is what makes markers from before an earlier rollback
	// harmless: the freed sequence numbers are reused by later commits,
	// and a stale marker must not vouch for them. A participant at or
	// below a shard's snapshot seq is always satisfied: the checkpoint
	// barrier ensures snapshots only bake complete transactions.
	byTxn := make(map[uint64][]wal.TxnPart)
	for _, mrec := range markers {
		if !mrec.Cross {
			continue // a marker without an id can vouch for nothing
		}
		for _, op := range mrec.Ops {
			if op.Kind != wal.KindTxnMarker {
				continue
			}
			parts, derr := wal.DecodeTxnParts(op.Val)
			if derr != nil {
				continue // an undecodable marker commits nothing
			}
			byTxn[mrec.Txn] = parts
		}
	}
	flagged := make(map[wal.TxnPart]uint64)
	for i := range s.shards {
		for _, rec := range bufs[i] {
			if rec.Cross {
				flagged[wal.TxnPart{Shard: uint32(i), Seq: rec.Seq}] = rec.Txn
			}
		}
	}
	cut := make([]uint64, nshards)
	for i := range cut {
		cut[i] = s.dur.results[i].LastSeq
	}
	satisfied := func(p wal.TxnPart, txn uint64) bool {
		if int(p.Shard) >= nshards {
			return false // corrupt marker: the sibling cannot exist
		}
		if p.Seq <= s.dur.results[p.Shard].SnapshotSeq {
			return true
		}
		return p.Seq <= cut[p.Shard] && flagged[p] == txn
	}
	rolled := make(map[wal.TxnPart]bool) // first record cut per incomplete txn
	for changed := true; changed; {
		changed = false
		for i := range s.shards {
			for _, rec := range bufs[i] {
				if !rec.Cross || rec.Seq > cut[i] {
					continue
				}
				parts, ok := byTxn[rec.Txn]
				complete := ok
				for _, p := range parts {
					if !satisfied(p, rec.Txn) {
						complete = false
						break
					}
				}
				if !complete {
					cut[i] = rec.Seq - 1
					rolled[wal.TxnPart{Shard: uint32(i), Seq: rec.Seq}] = true
					changed = true
					break // later records on this shard are gone too
				}
			}
		}
	}
	info.TxnRollbacks = len(rolled)

	// Phase 3 — replay. Untouched shards apply their buffered snapshot
	// chunks + tail directly; cut shards re-run recovery with the cut
	// as a hard ceiling, which also repairs the files on disk so the
	// rolled-back records never resurface on the next boot.
	for i, sh := range s.shards {
		res := s.dur.results[i]
		if cut[i] < res.LastSeq {
			info.TxnRolledShards++
			info.TxnRolledRecords += int(res.LastSeq - cut[i])
			res, err = wal.RecoverLimitedFS(s.dur.fs, s.shardDir(i), uint32(i), cut[i], func(rec wal.Record) error {
				return applyRecovered(sh, rec)
			}, &s.dur.m)
			if err != nil {
				return info, fmt.Errorf("kv: recover shard %d (cross-shard rollback to seq %d): %w", i, cut[i], err)
			}
			s.dur.results[i] = res
		} else {
			for _, rec := range bufs[i] {
				if err := applyRecovered(sh, rec); err != nil {
					return info, fmt.Errorf("kv: recover shard %d: %w", i, err)
				}
			}
		}
		bufs[i] = nil
		sh.feed.seq = res.LastSeq
		info.Records += res.Records
		info.SnapshotRecords += res.SnapshotRecords
		if res.SnapshotSeq != 0 {
			info.Snapshots++
		}
		if res.Truncated {
			info.Truncations++
			info.TruncatedBytes += res.TruncatedBytes
		}
		if res.LastSeq > info.MaxSeq {
			info.MaxSeq = res.LastSeq
		}
	}
	s.dur.recovered = true
	s.dur.info = info
	return info, nil
}

// applyRecovered replays one record into a shard. Recovery is
// single-threaded and runs before the store serves, so it mutates the
// shard's table in place instead of copy-on-write — replaying K keys
// is O(K), not O(K²).
func applyRecovered(sh *shard, rec wal.Record) error {
	for _, op := range rec.Ops {
		switch op.Kind {
		case wal.KindSet:
			sh.replayEntry(op.Key, false).b.Store(copyVal(op.Val))
		case wal.KindCounterSet:
			sh.replayEntry(op.Key, true).c.Store(op.N)
		case wal.KindCounterAdd:
			e := sh.replayEntry(op.Key, true)
			e.c.Store(e.c.Load() + op.N)
		case wal.KindDelete:
			delete(*sh.vars.Load(), op.Key)
		default:
			return fmt.Errorf("kv: replay: unknown op kind %d", op.Kind)
		}
	}
	return nil
}

// replayEntry returns key's entry of the requested kind, creating or
// kind-replacing it in place. Replacement is what makes replay of a
// SET → DELETE → ADD history land on the right kind at every step.
func (sh *shard) replayEntry(key string, counter bool) *entry {
	tbl := *sh.vars.Load()
	if e := tbl[key]; e != nil && e.isCounter() == counter {
		return e
	}
	e := sh.newEntry(key, counter)
	tbl[key] = e
	return e
}

// attachLogs opens every shard's log (continuing each repaired tail)
// plus the cross-shard marker log, and installs the commit taps.
// Open-time only.
func (s *Store) attachLogs() error {
	xo := s.dur.opts
	xo.Metrics = &s.dur.m
	xlog, err := wal.OpenLog(s.txnDir(), wal.TxnShard, s.dur.xres, xo)
	if err != nil {
		return err
	}
	s.dur.xfeed.log = xlog
	s.dur.xfeed.open = make(map[*pendingTxn]struct{})
	for i, sh := range s.shards {
		i := i
		o := s.dur.opts
		o.Metrics = &s.dur.m
		o.OnRotate = func(uint64) { go s.checkpointShardAsync(i) }
		log, err := wal.OpenLog(s.shardDir(i), uint32(i), s.dur.results[i], o)
		if err != nil {
			for _, prev := range s.shards[:i] {
				prev.feed.log.Close()
			}
			xlog.Close()
			return err
		}
		sh.feed.log = log
	}
	s.dur.attached = true
	s.dur.results = nil
	s.tapOnce.Do(s.installTaps)
	return nil
}

// installTaps installs the per-shard commit taps (idempotent via
// tapOnce at the call sites). The tap runs at the committing
// transaction's serialization point with commit locks held: it only
// assigns the sequence, buffers the record (Log.Append does no I/O)
// and fans out to subscribers — the disk never gates a commit.
//
// A cross-shard commit's taps additionally thread its pendingTxn: the
// record is flagged, the participant (shard, seq) recorded, and the
// last participant's tap appends the commit marker. Registration in
// the marker feed's open set happens inside the shard feed lock, so
// a checkpoint's marker transaction on any participant shard strictly
// orders with it (the checkpoint barrier's correctness hinges on
// that: any cross-shard commit sequenced below a snapshot is either
// fully queued or in the open set when the barrier looks).
func (s *Store) installTaps() {
	for _, sh := range s.shards {
		sh := sh
		f := sh.feed
		sh.stm.SetCommitTap(func(data any) {
			p := data.(*pendingOps)
			f.mu.Lock()
			f.seq++
			p.seq = f.seq
			var flags uint8
			var txnID uint64
			if p.txn != nil {
				flags, txnID = wal.FlagCross, p.txn.id
			}
			if f.log != nil {
				// Errors are sticky inside the Log and surface on
				// WaitDurable/Sync; the commit itself must not fail here —
				// it is already past its serialization point. In
				// shed-durability mode each commit the dead log refused is
				// counted: served, not durable, loudly.
				if err := f.log.AppendFlags(p.seq, flags, txnID, p.ops); err != nil && s.dur.mode == DegradeShed {
					s.dur.shed.Add(1)
				}
			}
			if p.txn != nil {
				s.xtap(p.txn, uint32(sh.index), p.seq)
			}
			if subs := s.subs.Load(); subs != nil && len(p.ops) > 0 {
				notifySubscribers(s, *subs, sh.index, p)
			}
			f.mu.Unlock()
		})
	}
	s.tapOn.Store(true)
}

// xtap records one participant of a cross-shard commit and, on the
// last participant, appends the commit marker. Runs under the
// participant shard's feed lock; takes the marker feed lock inside it
// (that order — shard feed, then marker feed — holds everywhere).
func (s *Store) xtap(t *pendingTxn, shard uint32, seq uint64) {
	x := &s.dur.xfeed
	x.mu.Lock()
	if len(t.parts) == 0 {
		x.open[t] = struct{}{}
	}
	t.parts = append(t.parts, wal.TxnPart{Shard: shard, Seq: seq})
	if len(t.parts) == t.need {
		x.seq++
		t.marker = x.seq
		if x.log != nil {
			// The marker is itself cross-flagged, carrying the same
			// transaction id its participants do.
			_ = x.log.AppendFlags(t.marker, wal.FlagCross, t.id, []wal.Op{{Kind: wal.KindTxnMarker, Val: wal.AppendTxnParts(nil, t.parts)}})
		}
		delete(x.open, t)
		close(t.done)
	}
	x.mu.Unlock()
}

// tapWrites reports whether transaction bodies should record their
// effects (durability attached, or at least one subscriber ever
// registered). One atomic load on the write path when disabled.
func (s *Store) tapWrites() bool { return s.tapOn.Load() }

// fsyncLevel reports whether acknowledged writes wait for fsync.
func (s *Store) fsyncLevel() bool { return s.dur != nil && s.dur.level == wal.Fsync }

// waitDurable blocks until p's record is fsynced, at the Fsync level.
// Called after the transaction has fully committed and released its
// locks; p.seq is 0 when the attempt logged nothing.
func (s *Store) waitDurable(sh *shard, p *pendingOps) error {
	if p.seq == 0 || !s.fsyncLevel() {
		return nil
	}
	if err := sh.feed.log.WaitDurable(p.seq); err != nil {
		return s.degradeWriteErr(err)
	}
	return nil
}

// waitTxnDurable blocks until a cross-shard commit's marker is
// fsynced, at the Fsync level. The caller has already waited for the
// participant records; marker + participants durable together is what
// makes the acknowledgment an atomic cross-shard guarantee.
func (s *Store) waitTxnDurable(t *pendingTxn) error {
	if t == nil || t.marker == 0 || !s.fsyncLevel() {
		return nil
	}
	if err := s.dur.xfeed.log.WaitDurable(t.marker); err != nil {
		return s.degradeWriteErr(err)
	}
	return nil
}

// Checkpoint snapshots every shard and compacts its log. Each shard's
// snapshot is exact at a commit sequence: it is taken by a marker
// transaction that reads the shard's whole table (and its keyspace and
// publication versions, so concurrent key creation or publication
// conflicts it) and goes through the commit tap — the sequence the tap
// assigns the (empty) marker record is precisely the state the
// transaction read. The log is then fsynced through that sequence
// before the snapshot is installed, so a surviving snapshot never
// outruns the surviving log.
func (s *Store) Checkpoint() error {
	if s.dur == nil {
		return ErrNotDurable
	}
	var first error
	for i := range s.shards {
		if err := s.checkpointShard(i); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// checkpointShardAsync is the rotation hook: best-effort, one at a
// time per shard, failures counted rather than returned.
func (s *Store) checkpointShardAsync(i int) {
	d := s.dur
	d.ckptMu.Lock()
	if d.closed.Load() {
		d.ckptMu.Unlock()
		return
	}
	d.ckptWG.Add(1)
	d.ckptMu.Unlock()
	defer d.ckptWG.Done()
	if err := s.checkpointShard(i); err != nil {
		d.ckptFails.Add(1)
	}
}

func (s *Store) checkpointShard(i int) error {
	if !s.dur.ckptBusy[i].CompareAndSwap(false, true) {
		return nil // already in progress
	}
	defer s.dur.ckptBusy[i].Store(false)
	sh := s.shards[i]
	var (
		pend pendingOps
		ops  []wal.Op
	)
	err := sh.stm.Atomically(func(tx *stm.Tx) error {
		ops = ops[:0]
		pend.reset()
		// Key creations touch the keyspace version and publications
		// bump the sentinel; reading both makes either conflict this
		// snapshot instead of slipping past it.
		_ = tx.Read(sh.kvers)
		_ = tx.Read(sh.pub)
		for k, e := range *sh.vars.Load() {
			if tx.Read(e.dead) != 0 {
				continue
			}
			if e.isCounter() {
				ops = append(ops, wal.Op{Kind: wal.KindCounterSet, Key: k, N: tx.Read(e.c)})
			} else {
				ops = append(ops, wal.Op{Kind: wal.KindSet, Key: k, Val: stm.ReadT(tx, e.b)})
			}
		}
		tx.SetTapData(&pend) // the marker: its tap seq is the snapshot's position
		return nil
	})
	if err != nil {
		return fmt.Errorf("kv: checkpoint shard %d: %w", i, err)
	}
	// Cross-shard barrier: recovery trusts that a snapshot never bakes
	// an incomplete cross-shard transaction, so before this snapshot
	// installs, every cross-shard commit sequenced below it must be
	// fully queued on every participant shard AND durable there. Any
	// such commit either finished its taps before our marker
	// transaction's tap (fully queued) or is in the open set right
	// after it (the tap registers under the shard feed lock) — wait
	// those out, then fsync every log so all their records, and the
	// markers proving them complete, are on disk before the snapshot.
	if err := s.crossShardBarrier(); err != nil {
		return fmt.Errorf("kv: checkpoint shard %d: %w", i, err)
	}
	if err := sh.feed.log.Sync(); err != nil {
		return fmt.Errorf("kv: checkpoint shard %d: %w", i, err)
	}
	if err := wal.WriteSnapshotFS(s.dur.fs, s.shardDir(i), uint32(i), pend.seq, ops); err != nil {
		return fmt.Errorf("kv: checkpoint shard %d: %w", i, err)
	}
	s.dur.ckpts.Add(1)
	// Keep the previous snapshot as a fallback against bit rot in the
	// new one; prune segments both still cover.
	if err := wal.CompactFS(s.dur.fs, s.shardDir(i), 2); err != nil {
		return fmt.Errorf("kv: compact shard %d: %w", i, err)
	}
	return nil
}

// crossShardBarrier waits out every in-flight cross-shard commit and
// then fsyncs every shard log plus the marker log. A store that never
// committed cross-shard skips it entirely (the common path: one fsync
// per checkpoint, not one per shard). The marker log is never
// compacted — markers are ~30 bytes per cross-shard commit and stale
// ones (naming rolled-back or snapshot-covered records) are inert at
// recovery, so correctness never depends on pruning them.
func (s *Store) crossShardBarrier() error {
	x := &s.dur.xfeed
	x.mu.Lock()
	if x.seq == 0 && len(x.open) == 0 {
		x.mu.Unlock()
		return nil
	}
	waits := make([]chan struct{}, 0, len(x.open))
	for t := range x.open {
		waits = append(waits, t.done)
	}
	x.mu.Unlock()
	for _, ch := range waits {
		<-ch
	}
	for j, other := range s.shards {
		if err := other.feed.log.Sync(); err != nil {
			return fmt.Errorf("cross-shard barrier: sync shard %d: %w", j, err)
		}
	}
	if err := x.log.Sync(); err != nil {
		return fmt.Errorf("cross-shard barrier: sync txn log: %w", err)
	}
	return nil
}

// Close flushes and closes every shard's log (a Fsync/Batch-level
// close fsyncs the tail). The store itself remains usable for
// non-durable operation but further writes are no longer logged;
// Close is for orderly shutdown. Safe to call more than once.
func (s *Store) Close() error {
	if s.dur == nil {
		return nil
	}
	if !s.dur.closed.CompareAndSwap(false, true) {
		return nil
	}
	// Drain in-flight rotation checkpoints before closing the logs, so
	// no background goroutine touches the directory after Close returns.
	s.dur.ckptMu.Lock()
	s.dur.ckptMu.Unlock() //nolint:staticcheck // barrier, not a critical section
	s.dur.ckptWG.Wait()
	var first error
	for _, sh := range s.shards {
		if sh.feed.log == nil {
			continue
		}
		if err := sh.feed.log.Close(); err != nil && first == nil {
			first = err
		}
	}
	if s.dur.xfeed.log != nil {
		if err := s.dur.xfeed.log.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Durable reports whether the store was opened with WithDurability.
func (s *Store) Durable() bool { return s.dur != nil }

// WALStats is the durability and changefeed observability snapshot.
// The JSON names are a stable wire format (STATS WAL, /debug/vars).
type WALStats struct {
	Level             string       `json:"level"` // "off" without durability
	Appends           uint64       `json:"appends"`
	Batches           uint64       `json:"batches"`
	Fsyncs            uint64       `json:"fsyncs"`
	Bytes             uint64       `json:"bytes"`
	Rotations         uint64       `json:"rotations"`
	Truncations       uint64       `json:"truncations"`
	TruncatedBytes    uint64       `json:"truncated_bytes"`
	Checkpoints       uint64       `json:"checkpoints"`
	CheckpointFails   uint64       `json:"checkpoint_fails"`
	TxnMarkers        uint64       `json:"txn_markers"` // cross-shard commit markers logged (ever)
	AppendNs          obs.Snapshot `json:"append_ns"`
	FsyncNs           obs.Snapshot `json:"fsync_ns"`
	Subscribers       int          `json:"subscribers"`
	ChangefeedDropped uint64       `json:"changefeed_dropped"`
	Recover           RecoverInfo  `json:"recover"`
	Err               string       `json:"err,omitempty"` // first sticky log error

	// Degraded-mode policy state (degrade.go).
	Degraded     bool   `json:"degraded"`
	DegradedMode string `json:"degraded_mode,omitempty"`
	ShedWrites   uint64 `json:"shed_writes"` // commits served without durability (DegradeShed)
}

// WALStats snapshots the durability metrics; with durability off only
// the changefeed fields are live.
func (s *Store) WALStats() WALStats {
	st := WALStats{Level: "off", ChangefeedDropped: s.feedDropped.Load()}
	if subs := s.subs.Load(); subs != nil {
		st.Subscribers = len(*subs)
	}
	if s.dur == nil {
		return st
	}
	m := s.dur.m.Snapshot()
	st.Level = s.dur.level.String()
	st.Appends, st.Batches, st.Fsyncs, st.Bytes = m.Appends, m.Batches, m.Fsyncs, m.Bytes
	st.Rotations, st.Truncations, st.TruncatedBytes = m.Rotations, m.Truncations, m.TruncatedBytes
	st.Checkpoints, st.CheckpointFails = s.dur.ckpts.Load(), s.dur.ckptFails.Load()
	s.dur.xfeed.mu.Lock()
	st.TxnMarkers = s.dur.xfeed.seq
	s.dur.xfeed.mu.Unlock()
	st.AppendNs, st.FsyncNs = m.AppendNs, m.FsyncNs
	st.Recover = s.dur.info
	st.DegradedMode = s.dur.mode.String()
	st.ShedWrites = s.dur.shed.Load()
	if deg, derr := s.Degraded(); deg {
		st.Degraded = true
		if derr != nil {
			st.Err = derr.Error()
		}
	}
	if st.Err == "" {
		for _, sh := range s.shards {
			if sh.feed.log != nil {
				if err := sh.feed.log.Err(); err != nil {
					st.Err = err.Error()
					break
				}
			}
		}
	}
	return st
}

// WithDurability opens the store over a write-ahead log rooted at dir
// (one subdirectory per shard), recovering existing state on Open and
// logging every committed write thereafter at the given level. Stores
// with durability must be created with Open (New panics on error).
func WithDurability(dir string, level wal.Level) Option {
	return func(c *config) {
		c.durDir = dir
		c.durLevel = level
	}
}

// WithWALSegmentBytes sets the log segment rotation threshold
// (default 64 MiB; each rotation triggers a background checkpoint).
func WithWALSegmentBytes(n int64) Option {
	return func(c *config) { c.segmentBytes = n }
}

// WithWALFlushInterval sets the Batch level's fsync cadence
// (default 20ms).
func WithWALFlushInterval(d time.Duration) Option {
	return func(c *config) { c.flushEvery = d }
}

// WithWALFS threads a filesystem seam under the store's WAL — every
// segment, snapshot and recovery file operation goes through it. The
// fault-injection tests pass a fault.DiskFS; production code never
// needs this (nil means the real filesystem).
func WithWALFS(fsys wal.FS) Option {
	return func(c *config) { c.walFS = fsys }
}
