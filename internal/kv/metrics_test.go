package kv

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"modtx/internal/stm"
)

// sampledStore builds a store that samples every call, so latency
// assertions are deterministic.
func sampledStore(t *testing.T, e stm.Engine) *Store {
	t.Helper()
	return New(WithShards(8), WithEngine(e), WithMetricsSampling(1))
}

func TestOpNames(t *testing.T) {
	seen := map[string]bool{}
	for _, op := range Ops() {
		n := op.String()
		if n == "" || n == "unknown" || seen[n] {
			t.Fatalf("op %d has bad/duplicate name %q", op, n)
		}
		seen[n] = true
	}
	if Op(99).String() != "unknown" {
		t.Fatal("out-of-range op must stringify as unknown")
	}
}

func TestMetricsDisabled(t *testing.T) {
	s := New(WithShards(2), WithMetrics(false))
	if s.MetricsEnabled() {
		t.Fatal("WithMetrics(false) should disable metrics")
	}
	if err := s.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got := s.OpLatency(OpSet); got.Count != 0 {
		t.Fatal("disabled store must not record latencies")
	}
	if s.HotKeys(10) != nil {
		t.Fatal("disabled store must report no hot keys")
	}
	if lat := s.StmLatencies(); lat.CommitNs.Count != 0 {
		t.Fatal("disabled store must have no STM latencies")
	}
	s.ResetMetrics() // must not panic
}

func TestOpLatenciesRecorded(t *testing.T) {
	for _, e := range stm.Engines() {
		t.Run(e.String(), func(t *testing.T) {
			s := sampledStore(t, e)
			if err := s.Set("k", []byte("v")); err != nil {
				t.Fatal(err)
			}
			if _, ok, err := s.Get("k"); err != nil || !ok {
				t.Fatal("get failed")
			}
			if _, err := s.CounterAdd("c", 1); err != nil {
				t.Fatal(err)
			}
			if _, ok, err := s.CounterGet("c"); err != nil || !ok {
				t.Fatal("counter get failed")
			}
			if err := s.Update([]string{"k", "c"}, func(tx *Txn) error {
				tx.Set("k", []byte("v2"))
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if err := s.View([]string{"k"}, func(v *ViewTxn) error {
				_, _ = v.Get("k")
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if _, err := s.WaitGet(context.Background(), "k"); err != nil {
				t.Fatal(err)
			}
			for _, op := range Ops() {
				snap := s.OpLatency(op)
				if snap.Count == 0 {
					t.Errorf("op %s recorded no latency", op)
				}
				if snap.Quantile(1.0) <= 0 {
					t.Errorf("op %s max latency not positive", op)
				}
			}
			lat := s.StmLatencies()
			if lat.CommitNs.Count == 0 {
				t.Error("no STM commit latencies recorded")
			}
			if lat.ReadOnlyNs.Count == 0 {
				t.Error("no STM read-only latencies recorded")
			}
			if lat.Attempts.Count == 0 {
				t.Error("no STM attempt counts recorded")
			}
		})
	}
}

func TestShardStats(t *testing.T) {
	s := sampledStore(t, stm.Lazy)
	if err := s.Set("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.FastGet("a"); !ok {
		t.Fatal("missing key")
	}
	stats := s.ShardStats()
	if len(stats) != s.NumShards() {
		t.Fatalf("got %d shard stats, want %d", len(stats), s.NumShards())
	}
	var keys int
	var commits, fastGets uint64
	for i, st := range stats {
		if st.Shard != i {
			t.Fatalf("stat %d has shard %d", i, st.Shard)
		}
		keys += st.Keys
		commits += st.Stm.Commits
		fastGets += st.FastGets
	}
	if keys != 1 || commits == 0 || fastGets != 1 {
		t.Fatalf("per-shard totals wrong: keys=%d commits=%d fastGets=%d", keys, commits, fastGets)
	}
	// Per-shard sums must agree with the aggregate view.
	agg := s.Stats()
	if agg.Keys != keys || agg.FastGets != fastGets || agg.Commits != commits {
		t.Fatalf("ShardStats totals disagree with Stats: %+v", agg)
	}
}

// TestHotKeysAttribution hammers one key from many goroutines (with a
// cold key alongside) and expects HotKeys to name it. The hot shard's
// WritebackDelay hook holds commit locks open for a moment, so conflicts
// happen deterministically even on a single-CPU machine.
func TestHotKeysAttribution(t *testing.T) {
	s := sampledStore(t, stm.Lazy)
	s.EnsureCounters("hot-counter", "cold-counter")
	s.ShardSTM(s.ShardOf("hot-counter")).WritebackDelay = func() {
		time.Sleep(20 * time.Microsecond)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := s.CounterAdd("hot-counter", 1); err != nil {
					t.Error(err)
					return
				}
				if i%16 == 0 {
					if _, err := s.CounterAdd("cold-counter", 1); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if s.Stats().Conflicts == 0 {
		t.Skip("no conflicts observed; nothing to attribute")
	}
	hot := s.HotKeys(4)
	if len(hot) == 0 {
		t.Fatal("conflicts occurred but HotKeys is empty")
	}
	if hot[0].Key != "hot-counter" {
		t.Fatalf("hottest key = %q, want hot-counter (profile %+v)", hot[0].Key, hot)
	}
	if hot[0].Shard != s.ShardOf("hot-counter") {
		t.Fatalf("hot key attributed to shard %d, want %d", hot[0].Shard, s.ShardOf("hot-counter"))
	}
	// The trim honors n.
	if len(s.HotKeys(1)) > 1 {
		t.Fatal("HotKeys(1) returned more than one entry")
	}
}

// TestHotKeysSweptEntry checks that contention attributed to an entry
// that is later deleted degrades to the "(swept)" placeholder instead of
// disappearing or crashing.
func TestHotKeysSweptEntry(t *testing.T) {
	s := sampledStore(t, stm.Lazy)
	if _, err := s.CounterAdd("doomed", 1); err != nil {
		t.Fatal(err)
	}
	// Attribute synthetic contention directly to the entry's variables,
	// then delete the key so the id no longer resolves.
	sh := s.shards[s.ShardOf("doomed")]
	e := sh.lookup("doomed")
	sh.stm.Metrics().Contention.Record(e.c.ID())
	if _, err := s.Delete("doomed"); err != nil {
		t.Fatal(err)
	}
	hot := s.HotKeys(0)
	found := false
	for _, h := range hot {
		if h.Key == "(swept)" {
			found = true
		}
	}
	if !found {
		t.Fatalf("swept entry's contention should surface as (swept): %+v", hot)
	}
}

func TestResetMetrics(t *testing.T) {
	s := sampledStore(t, stm.Lazy)
	if err := s.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	s.shards[0].stm.Metrics().Contention.Record(1)
	s.ResetMetrics()
	if s.OpLatency(OpSet).Count != 0 {
		t.Fatal("ResetMetrics left op latencies")
	}
	if lat := s.StmLatencies(); lat.CommitNs.Count != 0 {
		t.Fatal("ResetMetrics left STM latencies")
	}
	if len(s.HotKeys(0)) != 0 {
		t.Fatal("ResetMetrics left hot keys")
	}
	if s.Stats().Commits == 0 {
		t.Fatal("ResetMetrics must not clear cumulative Stats")
	}
}

func TestWaitGetLatencyCoversPark(t *testing.T) {
	s := sampledStore(t, stm.Lazy)
	done := make(chan error, 1)
	go func() {
		_, err := s.WaitGet(context.Background(), "appears-later")
		done <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Waits == 0 {
		if time.Now().After(deadline) {
			t.Fatal("WaitGet never parked")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Set("appears-later", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	snap := s.OpLatency(OpWaitGet)
	if snap.Count == 0 {
		t.Fatal("WaitGet latency not recorded")
	}
	lat := s.StmLatencies()
	if lat.ParkNs.Count == 0 {
		t.Fatal("the park should land in ParkNs")
	}
}

func TestStatsJSONStable(t *testing.T) {
	st := Stats{Shards: 1, Keys: 2, FastGets: 3, Commits: 4, Conflicts: 5,
		UserAborts: 6, MultiCommits: 7, ReadOnlyCommits: 8, Quiesces: 9,
		Waits: 10, Wakeups: 11, SpuriousWakeups: 12}
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		`"shards":1`, `"keys":2`, `"fast_gets":3`, `"commits":4`,
		`"conflicts":5`, `"user_aborts":6`, `"multi_commits":7`,
		`"read_only_commits":8`, `"quiesces":9`, `"waits":10`,
		`"wakeups":11`, `"spurious_wakeups":12`,
	} {
		if !strings.Contains(string(b), field) {
			t.Errorf("marshaled Stats missing %s: %s", field, b)
		}
	}
	var back Stats
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != st {
		t.Fatalf("round trip changed Stats: %+v", back)
	}
}

func TestShardStatJSONRoundTrip(t *testing.T) {
	s := sampledStore(t, stm.TL2)
	if err := s.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(s.ShardStats())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"stm":{"commits":`) {
		t.Fatalf("ShardStat JSON missing nested stm snapshot: %s", b)
	}
	var back []ShardStat
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != s.NumShards() {
		t.Fatal("round trip lost shards")
	}
}
