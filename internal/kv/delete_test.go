package kv

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"modtx/internal/stm"
)

func TestDeleteBasic(t *testing.T) {
	for _, e := range kvEngines {
		t.Run(e.String(), func(t *testing.T) {
			s := New(WithShards(4), WithEngine(e))
			if err := s.Set("a", []byte("v")); err != nil {
				t.Fatal(err)
			}
			if _, err := s.CounterAdd("c", 7); err != nil {
				t.Fatal(err)
			}
			if n := s.Len(); n != 2 {
				t.Fatalf("Len=%d, want 2", n)
			}

			if ok, err := s.Delete("missing"); err != nil || ok {
				t.Fatalf("Delete(missing)=%v,%v, want false", ok, err)
			}
			if ok, err := s.Delete("a"); err != nil || !ok {
				t.Fatalf("Delete(a)=%v,%v, want true", ok, err)
			}
			if ok, err := s.Delete("a"); err != nil || ok {
				t.Fatalf("second Delete(a)=%v,%v, want false", ok, err)
			}
			// Gone on every read path, and swept from the table.
			if _, ok, _ := s.Get("a"); ok {
				t.Fatal("Get sees deleted key")
			}
			if _, ok := s.FastGet("a"); ok {
				t.Fatal("FastGet sees deleted key")
			}
			if got, _ := s.MGet("a", "c"); len(got) != 1 || string(got["c"]) != "7" {
				t.Fatalf("MGet after delete: %v", got)
			}
			if n := s.Len(); n != 1 {
				t.Fatalf("Len after delete=%d, want 1", n)
			}

			// Deleting a counter frees the kind: the key can come back as
			// bytes.
			if ok, err := s.Delete("c"); err != nil || !ok {
				t.Fatalf("Delete(c)=%v,%v", ok, err)
			}
			if err := s.Set("c", []byte("now bytes")); err != nil {
				t.Fatalf("re-create with new kind: %v", err)
			}
			if v, ok, _ := s.Get("c"); !ok || string(v) != "now bytes" {
				t.Fatalf("re-created key reads %q,%v", v, ok)
			}
		})
	}
}

func TestTxnDelete(t *testing.T) {
	for _, e := range kvEngines {
		t.Run(e.String(), func(t *testing.T) {
			s := New(WithShards(4), WithEngine(e))
			if err := s.MSet(map[string][]byte{"x": []byte("1"), "y": []byte("2")}); err != nil {
				t.Fatal(err)
			}
			// Delete inside a transaction: the key reads as absent within
			// the same transaction and is swept after commit.
			err := s.Update([]string{"x", "y"}, func(tx *Txn) error {
				if !tx.Delete("x") {
					t.Error("Txn.Delete(x) reported absent")
				}
				if tx.Delete("x") {
					t.Error("second Txn.Delete(x) reported present")
				}
				if _, ok := tx.Get("x"); ok {
					t.Error("deleted key visible inside its own transaction")
				}
				if v, ok := tx.Get("y"); !ok || string(v) != "2" {
					t.Errorf("unrelated key disturbed: %q,%v", v, ok)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, ok, _ := s.Get("x"); ok {
				t.Fatal("committed Txn.Delete did not remove the key")
			}
			if n := s.Len(); n != 1 {
				t.Fatalf("Len=%d, want 1", n)
			}

			// An aborted transaction rolls the tombstone back.
			boom := errors.New("boom")
			err = s.Update([]string{"y"}, func(tx *Txn) error {
				tx.Delete("y")
				return boom
			})
			if !errors.Is(err, boom) {
				t.Fatalf("err=%v", err)
			}
			if v, ok, _ := s.Get("y"); !ok || string(v) != "2" {
				t.Fatalf("aborted delete leaked: %q,%v", v, ok)
			}

			// Delete-then-Set in one transaction resurrects the key with
			// the new value, atomically.
			err = s.Update([]string{"y"}, func(tx *Txn) error {
				tx.Delete("y")
				tx.Set("y", []byte("reborn"))
				if v, ok := tx.Get("y"); !ok || string(v) != "reborn" {
					t.Errorf("resurrected key reads %q,%v in-txn", v, ok)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if v, ok, _ := s.Get("y"); !ok || string(v) != "reborn" {
				t.Fatalf("resurrected key reads %q,%v", v, ok)
			}
		})
	}
}

func TestTxnDeleteAddRestartsCounter(t *testing.T) {
	// Delete-then-Add of a counter in one transaction must match the
	// committed sequential semantics (fresh entry): the counter restarts
	// at zero, not at its pre-delete value.
	for _, e := range kvEngines {
		t.Run(e.String(), func(t *testing.T) {
			s := New(WithShards(2), WithEngine(e))
			if _, err := s.CounterAdd("k", 7); err != nil {
				t.Fatal(err)
			}
			var got int64
			if err := s.Update([]string{"k"}, func(tx *Txn) error {
				tx.Delete("k")
				got = tx.Add("k", 1)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if got != 1 {
				t.Fatalf("in-txn delete+add returned %d, want 1 (counter restarts)", got)
			}
			if v, ok, err := s.CounterGet("k"); err != nil || !ok || v != 1 {
				t.Fatalf("committed value %d,%v,%v, want 1", v, ok, err)
			}
			// A second Add in the same transaction accumulates normally.
			if err := s.Update([]string{"k"}, func(tx *Txn) error {
				tx.Delete("k")
				tx.Add("k", 5)
				got = tx.Add("k", 2)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if got != 7 {
				t.Fatalf("resurrect then second add = %d, want 7", got)
			}
		})
	}
}

// condemnUnswept commits a tombstone on key's entry WITHOUT sweeping it
// from the table, reproducing the window between a concurrent Delete's
// commit and its sweep.
func condemnUnswept(t *testing.T, s *Store, key string) *entry {
	t.Helper()
	sh := s.shards[s.ShardOf(key)]
	e := sh.lookup(key)
	if e == nil {
		t.Fatalf("key %q has no entry to condemn", key)
	}
	if err := sh.stm.Atomically(func(tx *stm.Tx) error {
		tx.Write(e.dead, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestPublishPrivatizeEnsureOnCondemnedEntry pins the fix for the
// condemned-entry window: Publish, Privatize and EnsureKeys must not
// operate on a tombstoned entry (whose sweep would silently discard
// their writes) — they help the sweep and re-create the key.
func TestPublishPrivatizeEnsureOnCondemnedEntry(t *testing.T) {
	// Publish into a condemned entry must survive the sweep.
	s := New(WithShards(2))
	if err := s.Set("p", []byte("old")); err != nil {
		t.Fatal(err)
	}
	condemned := condemnUnswept(t, s, "p")
	if err := s.Publish(map[string][]byte{"p": []byte("published")}); err != nil {
		t.Fatal(err)
	}
	s.sweep(map[string]*entry{"p": condemned}) // the racing deleter's sweep lands late
	if v, ok, err := s.Get("p"); err != nil || !ok || string(v) != "published" {
		t.Fatalf("published value lost to the sweep: %q,%v,%v", v, ok, err)
	}

	// Privatize must hand back a handle on a live entry.
	if err := s.Set("q", []byte("old")); err != nil {
		t.Fatal(err)
	}
	condemned = condemnUnswept(t, s, "q")
	vars, err := s.Privatize("q")
	if err != nil {
		t.Fatal(err)
	}
	vars[0].Store([]byte("private"))
	s.sweep(map[string]*entry{"q": condemned})
	if v, ok := s.FastGet("q"); !ok || string(v) != "private" {
		t.Fatalf("privatized write lost to the sweep: %q,%v", v, ok)
	}

	// EnsureKeys over a condemned entry re-creates the key.
	if err := s.Set("r", []byte("old")); err != nil {
		t.Fatal(err)
	}
	condemned = condemnUnswept(t, s, "r")
	s.EnsureKeys("r")
	s.sweep(map[string]*entry{"r": condemned})
	if _, ok := s.FastGet("r"); !ok {
		t.Fatal("EnsureKeys reused a condemned entry; key vanished after sweep")
	}
}

func TestTxnDeleteKindStaysFixedInTxn(t *testing.T) {
	// In-transaction resurrection reuses the entry, so the kind cannot
	// change within one transaction; the mismatch aborts with no effects
	// (including the tombstone).
	s := New(WithShards(2))
	if _, err := s.CounterAdd("k", 3); err != nil {
		t.Fatal(err)
	}
	err := s.Update([]string{"k"}, func(tx *Txn) error {
		tx.Delete("k")
		tx.Set("k", []byte("bytes now"))
		return nil
	})
	if !errors.Is(err, ErrWrongType) {
		t.Fatalf("err=%v, want ErrWrongType", err)
	}
	if v, ok, err := s.CounterGet("k"); err != nil || !ok || v != 3 {
		t.Fatalf("failed txn disturbed the key: %d,%v,%v", v, ok, err)
	}
}

// TestDeleteSetRace hammers Delete against Set/CounterAdd on a small hot
// keyspace on every engine: writers must never resurrect a condemned
// entry (lost update into a swept table), and the store must end in a
// coherent state where a final Set is durably readable. Run under -race.
func TestDeleteSetRace(t *testing.T) {
	for _, e := range kvEngines {
		t.Run(e.String(), func(t *testing.T) {
			s := New(WithShards(2), WithEngine(e))
			keys := make([]string, 8)
			for i := range keys {
				keys[i] = fmt.Sprintf("hot-%d", i)
			}
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 300; i++ {
						k := keys[(i+w)%len(keys)]
						switch (i + w) % 3 {
						case 0:
							if err := s.Set(k, []byte("v")); err != nil {
								t.Errorf("Set: %v", err)
								return
							}
						case 1:
							if _, err := s.Delete(k); err != nil {
								t.Errorf("Delete: %v", err)
								return
							}
						default:
							if _, ok, err := s.Get(k); err != nil {
								t.Errorf("Get: %v,%v", ok, err)
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			// Every key must be writable and durably readable afterwards.
			for _, k := range keys {
				if err := s.Set(k, []byte("final")); err != nil {
					t.Fatalf("final Set(%s): %v", k, err)
				}
				if v, ok, err := s.Get(k); err != nil || !ok || string(v) != "final" {
					t.Fatalf("final Get(%s)=%q,%v,%v", k, v, ok, err)
				}
			}
			if n := s.Len(); n != len(keys) {
				t.Fatalf("Len=%d, want %d (sweep leaked or lost entries)", n, len(keys))
			}
		})
	}
}
