// Package kv is a sharded, string-keyed transactional key-value store
// built on the internal/stm runtime. It is the repo's first serving-scale
// workload: transactional cross-key updates mixed with plain fast-path
// reads, which is exactly the mixed-mode territory the paper bounds.
//
// Values are arbitrary byte strings, carried end-to-end on the typed core
// (stm.TVar[[]byte]); numeric counters get a compatibility lane on the
// int64 specialization (stm.Var) via CounterAdd / FastCounterGet, so the
// hottest numeric path pays no boxing. A key holds exactly one kind —
// bytes or counter — fixed at first use; accessing it through the other
// kind's mutators fails with ErrWrongType (reads format counters as
// decimal, so GET works uniformly).
//
// Keys hash (FNV-1a) to one of N power-of-two shards. Each shard owns its
// own stm.STM instance and a copy-on-write key→entry table, so the
// plain-access path (FastGet) is lock-free: one atomic pointer load, one
// map lookup, one atomic value load. Multi-key operations run as a single
// transaction two-phased across the shards touched via stm.AtomicallyMulti
// with the shards in ascending index order, which makes cross-shard
// commits deadlock-free and invisible in partial states to consistent
// transactional readers. Read-only multi-key snapshots (View, MGet) ride
// stm.AtomicallyReadMulti instead and never take write locks at all.
//
// Deletion (Delete, Txn.Delete) is tombstone-then-sweep: a transactional
// per-entry liveness flag commits first, then the key is removed from
// the COW table, so concurrent transactions serialize against the
// tombstone write rather than racing the table edit.
//
// Mixed-mode access follows the paper's §5 implementation model:
//
//   - FastGet is a plain read. Against the lazy engine it can miss a
//     logically-committed-but-unwritten value (the delayed-writeback
//     anomaly of §3.5); the store never promises otherwise.
//   - Privatize issues quiescence fences on the owning shards and hands
//     back raw TVar handles, after which plain access cannot race with
//     in-flight transactional writeback.
//   - Publish performs plain writes and then a sentinel transaction per
//     owning shard, so transactional readers that observe the sentinel
//     are ordered after the plain writes (publication by direct
//     dependency, safe by construction).
package kv

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"modtx/internal/obs"
	"modtx/internal/stm"
	"modtx/internal/wal"
)

// ErrWrongType reports an operation against a key holding the other kind
// of value (bytes vs. counter).
var ErrWrongType = errors.New("kv: operation against a key holding the wrong kind of value")

// Option configures a Store (see New).
type Option func(*config)

type config struct {
	shards      int
	engine      stm.Engine
	clock       stm.ClockMode
	maxRetries  int
	metricsOff  bool
	sampleEvery int

	// Durability (see durable.go / WithDurability).
	durDir       string
	durLevel     wal.Level
	segmentBytes int64
	flushEvery   time.Duration
	degradedMode DegradedMode
	walFS        wal.FS
}

// WithShards sets the shard count, rounded up to a power of two
// (default 16).
func WithShards(n int) Option { return func(c *config) { c.shards = n } }

// WithEngine selects the STM engine backing every shard (default Lazy).
func WithEngine(e stm.Engine) Option { return func(c *config) { c.engine = e } }

// WithClock selects the version-clock strategy of every shard's STM
// instance (default stm.ClockShared). Each shard owns its clock either
// way; the mode decides whether writing commits fetch-add it (shared)
// or defer the store and let readers advance it (deferred) — see
// stm.ClockMode.
func WithClock(m stm.ClockMode) Option { return func(c *config) { c.clock = m } }

// WithMaxRetries bounds commit attempts per operation (default: the stm
// package default).
func WithMaxRetries(n int) Option { return func(c *config) { c.maxRetries = n } }

// WithMetrics enables or disables metrics — the store's per-op latency
// histograms and every shard's stm.Metrics together (default enabled).
func WithMetrics(on bool) Option { return func(c *config) { c.metricsOff = !on } }

// WithMetricsSampling sets the latency-sampling period for both the
// store's per-op histograms and the shards' STM distributions: one call
// in every n carries timestamps (default 256, rounded up to a power of
// two). n <= 1 samples everything — the deterministic setting tests use.
func WithMetricsSampling(n int) Option {
	return func(c *config) {
		if n < 1 {
			n = 1
		}
		c.sampleEvery = n
	}
}

// entry is one key's storage: exactly one of b (bytes kind) or c
// (counter kind) is non-nil, fixed at creation. dead is the tombstone —
// a transactional liveness flag (0 live, 1 condemned) that makes
// deletion serializable even though the key table itself is not
// transactional: Delete commits dead=1 and only then removes the key
// from the COW table (the sweep), so any transaction that read the key
// concurrently validates against the tombstone write and retries onto
// the updated table. Committed condemnation is permanent for an entry;
// re-creating the key installs a fresh entry (which may change kind).
type entry struct {
	b    *stm.TVar[[]byte]
	c    *stm.Var
	dead *stm.Var
}

func (e *entry) isCounter() bool { return e.c != nil }

// Store is a sharded transactional key-value store. All methods are safe
// for concurrent use. Byte slices returned by reads are the stored boxes:
// treat them as read-only (writes always install defensive copies).
type Store struct {
	shards []*shard
	mask   uint64
	engine stm.Engine

	// fastGets is indexed by shard and cache-line padded: the lock-free
	// read path must not false-share one hot counter word across cores.
	fastGets []paddedCount

	// singleOps and multiOps recycle per-call scratch (operands, result
	// slots and pre-bound transaction bodies) for the hot operations, so
	// steady-state Get/Set/CounterAdd/Update/View allocate no closures.
	singleOps sync.Pool
	multiOps  sync.Pool

	// opHists holds the sampled per-operation latency histograms, nil
	// when metrics are disabled; sampleMask is the sampling period minus
	// one (period a power of two), shared by every pooled op's tick.
	opHists    *[numOps]obs.Histogram
	sampleMask uint64

	// Durability and changefeed state (durable.go, feed.go). tapOn is
	// the write paths' single gate: when false (no durability, no
	// subscriber ever registered) the only cost is its atomic load.
	dur         *durState
	tapOn       atomic.Bool
	tapOnce     sync.Once
	subs        atomic.Pointer[[]*Subscription]
	subMu       sync.Mutex
	feedDropped atomic.Uint64
}

type paddedCount struct {
	n atomic.Uint64
	_ [7]uint64
}

type shard struct {
	stm   *stm.STM
	index int
	pub   *stm.Var // publication sentinel (see Publish)

	// feed is the shard's commit stream: sequence counter, log and the
	// lock the commit tap runs under (durable.go). Always allocated;
	// feed.log is nil without durability.
	feed *shardFeed

	// kvers is the keyspace version: a transactional variable Touched
	// (version-stamped and waiter-notified, value untouched) after every
	// insertion into or sweep from the copy-on-write key table. The key
	// table itself is not transactional, so this is how a blocked
	// WaitGet/Watch observes key creation and deletion: its transaction
	// reads kvers when the key is absent or condemned, and the Touch
	// wakes it to re-route the key (see stm.STM.Touch).
	kvers *stm.Var

	mu   sync.Mutex                        // guards insertions into vars
	vars atomic.Pointer[map[string]*entry] // copy-on-write key table
}

// New creates a Store. It panics if the options cannot be honored,
// which only durability options can cause — stores opened with
// WithDurability should use Open to handle recovery errors.
func New(opts ...Option) *Store {
	s, err := Open(opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// Open creates a Store and, when WithDurability is set, recovers the
// durability directory into it and starts logging: per shard, the
// newest usable snapshot plus the log tail replay, then the log
// attaches and every subsequent committed write is appended in commit
// order at the configured level.
func Open(opts ...Option) (*Store, error) {
	var c config
	for _, o := range opts {
		o(&c)
	}
	s := newStore(&c)
	if c.durDir == "" {
		return s, nil
	}
	s.dur = &durState{
		dir:   c.durDir,
		level: c.durLevel,
		opts: wal.Options{
			Level:         c.durLevel,
			SegmentBytes:  c.segmentBytes,
			FlushInterval: c.flushEvery,
			FS:            c.walFS,
			OnFail:        s.noteWALFault,
		},
		mode:     c.degradedMode,
		fs:       c.walFS,
		ckptBusy: make([]atomic.Bool, len(s.shards)),
	}
	if _, err := s.Recover(); err != nil {
		return nil, err
	}
	if err := s.attachLogs(); err != nil {
		return nil, err
	}
	return s, nil
}

func newStore(c *config) *Store {
	n := c.shards
	if n <= 0 {
		n = 16
	}
	// Round up to a power of two so shard routing is a mask.
	p := 1
	for p < n {
		p <<= 1
	}
	n = p
	s := &Store{
		shards:   make([]*shard, n),
		mask:     uint64(n - 1),
		engine:   c.engine,
		fastGets: make([]paddedCount, n),
	}
	se := uint64(c.sampleEvery)
	if se == 0 {
		se = 256
	}
	if se&(se-1) != 0 {
		se = 1 << bits.Len64(se) // round up to a power of two
	}
	s.sampleMask = se - 1
	stmOpts := []stm.Option{
		stm.WithEngine(c.engine),
		stm.WithClock(c.clock),
		stm.WithMetrics(!c.metricsOff),
		stm.WithMetricsSampling(int(se)),
	}
	if c.maxRetries > 0 {
		stmOpts = append(stmOpts, stm.WithMaxRetries(c.maxRetries))
	}
	if !c.metricsOff {
		s.opHists = new([numOps]obs.Histogram)
	}
	for i := range s.shards {
		inst := stm.New(stmOpts...)
		sh := &shard{
			stm:   inst,
			index: i,
			pub:   inst.NewVar(fmt.Sprintf("shard%d.pub", i), 0),
			kvers: inst.NewVar(fmt.Sprintf("shard%d.keys", i), 0),
			feed:  &shardFeed{},
		}
		empty := make(map[string]*entry)
		sh.vars.Store(&empty)
		s.shards[i] = sh
	}
	s.singleOps.New = func() any {
		op := &singleOp{s: s}
		op.getFn = op.runGet
		op.cgetFn = op.runCounterGet
		op.setFn = op.runSet
		op.addFn = op.runAdd
		return op
	}
	s.multiOps.New = func() any {
		op := &multiOp{s: s}
		op.runUpdate = op.update
		op.runView = op.viewBody
		return op
	}
	return s
}

// fnv1a is the 64-bit FNV-1a hash, inlined to keep FastGet allocation-free.
func fnv1a(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// Engine returns the engine backing the store.
func (s *Store) Engine() stm.Engine { return s.engine }

// Clock returns the version-clock mode backing the store's shards.
func (s *Store) Clock() stm.ClockMode { return s.shards[0].stm.Clock() }

// ShardOf returns the index of the shard owning key.
func (s *Store) ShardOf(key string) int { return int(fnv1a(key) & s.mask) }

// ShardSTM exposes shard i's STM instance for stats, anomaly hooks and
// tests.
func (s *Store) ShardSTM(i int) *stm.STM { return s.shards[i].stm }

func (sh *shard) lookup(key string) *entry {
	return (*sh.vars.Load())[key]
}

func wrongType(key string) error {
	return fmt.Errorf("kv: key %q: %w", key, ErrWrongType)
}

// checkBytesKinds rejects keys that already exist as counters, without
// creating anything. Callers still handle ensure errors: a key created
// concurrently between this check and ensure is caught there.
func (s *Store) checkBytesKinds(keys []string) error {
	for _, k := range keys {
		if e := s.shards[s.ShardOf(k)].lookup(k); e != nil && e.isCounter() {
			return wrongType(k)
		}
	}
	return nil
}

func (sh *shard) newEntry(key string, counter bool) *entry {
	dead := sh.stm.NewVar(key+"\x00dead", 0)
	if counter {
		return &entry{c: sh.stm.NewVar(key, 0), dead: dead}
	}
	return &entry{b: stm.NewTVar(sh.stm, key, []byte(nil)), dead: dead}
}

// ensure returns the key's entry of the requested kind, creating it on
// first use (bytes keys start nil-valued but present; counters start 0).
// Creation copies the shard's table, so steady-state reads stay
// lock-free; use EnsureKeys / EnsureCounters to amortize bulk loads.
func (sh *shard) ensure(key string, counter bool) (*entry, error) {
	if e := sh.lookup(key); e != nil {
		if e.isCounter() != counter {
			return nil, wrongType(key)
		}
		return e, nil
	}
	sh.mu.Lock()
	old := *sh.vars.Load()
	if e := old[key]; e != nil {
		sh.mu.Unlock()
		if e.isCounter() != counter {
			return nil, wrongType(key)
		}
		return e, nil
	}
	next := make(map[string]*entry, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	e := sh.newEntry(key, counter)
	next[key] = e
	sh.vars.Store(&next)
	sh.mu.Unlock()
	// The keyspace changed: wake WaitGet/Watch transactions parked on
	// the key's absence. Touch takes only leaf locks, so it is safe here
	// even when ensure runs inside an open transaction (Txn.Set/Add).
	sh.stm.Touch(sh.kvers)
	return e, nil
}

// ensureLive returns a live entry of the requested kind for key: like
// ensure, but a condemned entry (tombstone committed, sweep not yet
// done) is helped out of the table and re-created instead of being
// handed to the caller, whose writes would otherwise be lost to the
// concurrent sweep. The liveness check is transactional, so an in-flight
// eager delete resolves before we judge the entry.
func (s *Store) ensureLive(sh *shard, key string, counter bool) (*entry, error) {
	for {
		e, err := sh.ensure(key, counter)
		if err != nil {
			return nil, err
		}
		dead := false
		if err := sh.stm.AtomicallyRead(func(r *stm.ReadTx) error {
			dead = r.Read(e.dead) != 0
			return nil
		}); err != nil {
			return nil, err
		}
		if !dead {
			return e, nil
		}
		s.sweep(map[string]*entry{key: e}) // help the deleter, then re-create
	}
}

// ensureBulk creates all missing keys of one kind with one table copy per
// shard instead of one per key. Existing keys keep their kind; existing
// condemned entries are help-swept and re-created (one transactional
// liveness check per shard, not per key).
func (s *Store) ensureBulk(counter bool, keys []string) {
	byShard := make(map[int][]string)
	for _, k := range keys {
		i := s.ShardOf(k)
		byShard[i] = append(byShard[i], k)
	}
	for i, ks := range byShard {
		sh := s.shards[i]
		for {
			reused := make(map[string]*entry)
			sh.mu.Lock()
			old := *sh.vars.Load()
			next := make(map[string]*entry, len(old)+len(ks))
			for k, v := range old {
				next[k] = v
			}
			for _, k := range ks {
				if e := next[k]; e != nil {
					reused[k] = e
				} else {
					next[k] = sh.newEntry(k, counter)
				}
			}
			sh.vars.Store(&next)
			sh.mu.Unlock()
			if len(reused) < len(ks) {
				sh.stm.Touch(sh.kvers) // created at least one key
			}
			if len(reused) == 0 {
				break
			}
			// Re-check reused entries' liveness in one transaction;
			// condemned ones are swept and the loop re-creates them.
			condemned := make(map[string]*entry)
			err := sh.stm.AtomicallyRead(func(r *stm.ReadTx) error {
				clear(condemned)
				for k, e := range reused {
					if r.Read(e.dead) != 0 {
						condemned[k] = e
					}
				}
				return nil
			})
			if err != nil || len(condemned) == 0 {
				break
			}
			s.sweep(condemned)
			ks = ks[:0]
			for k := range condemned {
				ks = append(ks, k)
			}
		}
	}
}

// EnsureKeys creates all missing keys as bytes keys (present, nil value).
func (s *Store) EnsureKeys(keys ...string) { s.ensureBulk(false, keys) }

// EnsureCounters creates all missing keys as counters initialized to 0.
func (s *Store) EnsureCounters(keys ...string) { s.ensureBulk(true, keys) }

// Len returns the number of keys present.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += len(*sh.vars.Load())
	}
	return n
}

// copyVal defensively copies an incoming value so later caller mutation
// of its buffer cannot corrupt the store. Stored boxes are immutable.
func copyVal(val []byte) []byte {
	if val == nil {
		return nil
	}
	return append([]byte(nil), val...)
}

// formatCounter renders a counter the way reads surface it.
func formatCounter(v int64) []byte { return strconv.AppendInt(nil, v, 10) }

// FastGet is the lock-free mixed-mode read: a plain (non-transactional)
// load of the key's variable. It reports false when the key has never
// been written; counter keys are formatted as decimal. Per the §5
// implementation model it may miss a value whose transaction has
// validated but not yet written back (lazy engine); use Get for a
// consistent transactional read, or Privatize to fence.
func (s *Store) FastGet(key string) ([]byte, bool) {
	i := s.ShardOf(key)
	s.fastGets[i].n.Add(1)
	e := s.shards[i].lookup(key)
	switch {
	case e == nil, e.dead.Load() != 0:
		return nil, false
	case e.isCounter():
		return formatCounter(e.c.Load()), true
	default:
		return e.b.Load(), true
	}
}

// FastCounterGet is FastGet on the int64 specialization: a single plain
// atomic load with no formatting and no allocation. ok is false when the
// key is absent or holds bytes.
func (s *Store) FastCounterGet(key string) (int64, bool) {
	i := s.ShardOf(key)
	s.fastGets[i].n.Add(1)
	e := s.shards[i].lookup(key)
	if e == nil || !e.isCounter() || e.dead.Load() != 0 {
		return 0, false
	}
	return e.c.Load(), true
}

// singleOp is pooled per-call scratch for the single-key hot paths: the
// operands and result slots travel through the op instead of a closure
// environment, and the transaction bodies are method values bound once
// at pool fill, so a steady-state Get/Set/CounterAdd allocates nothing
// for its own plumbing.
type singleOp struct {
	s     *Store
	sh    *shard
	key   string
	val   []byte // Set input (already copied) / Get output
	delta int64  // CounterAdd input
	n     int64  // CounterAdd / CounterGet output
	ok    bool

	getFn  func(*stm.ReadTx) error
	cgetFn func(*stm.ReadTx) error
	setFn  func(*stm.Tx) error
	addFn  func(*stm.Tx) error

	// pend is the op's durability effect list (durable.go), attached to
	// the write bodies' transactions when the commit tap is on. Pooled
	// with the op, so steady-state emission reuses its capacity.
	pend pendingOps

	// tick is the latency-sampling tick (see nextSample in metrics.go);
	// deliberately NOT cleared by release, so it survives pool reuse.
	tick uint64
}

// release drops the operands so the pooled op does not pin values, and
// returns it to the pool.
func (op *singleOp) release() {
	s := op.s
	op.sh, op.key, op.val = nil, "", nil
	op.delta, op.n, op.ok = 0, 0, false
	op.pend.reset()
	s.singleOps.Put(op)
}

func (op *singleOp) runGet(r *stm.ReadTx) error {
	op.val, op.ok = nil, false
	e := op.sh.lookup(op.key) // re-resolve per attempt: the entry may be swept
	if e == nil || r.Read(e.dead) != 0 {
		return nil
	}
	if e.isCounter() {
		op.val = formatCounter(r.Read(e.c))
	} else {
		op.val = stm.ReadTVar(r, e.b)
	}
	op.ok = true
	return nil
}

func (op *singleOp) runCounterGet(r *stm.ReadTx) error {
	op.n, op.ok = 0, false
	e := op.sh.lookup(op.key)
	if e == nil || !e.isCounter() || r.Read(e.dead) != 0 {
		return nil
	}
	op.n = r.Read(e.c)
	op.ok = true
	return nil
}

func (op *singleOp) runSet(tx *stm.Tx) error {
	e, err := op.sh.ensure(op.key, false)
	if err != nil {
		return err
	}
	if tx.Read(e.dead) != 0 {
		// Condemned by a concurrent Delete whose table removal is in
		// flight; retry onto the swept table (a fresh entry).
		tx.Retry()
	}
	stm.WriteT(tx, e.b, op.val)
	if op.s.tapOn.Load() {
		op.pend.reset()
		op.pend.ops = append(op.pend.ops, wal.Op{Kind: wal.KindSet, Key: op.key, Val: op.val})
		tx.SetTapData(&op.pend)
	}
	return nil
}

func (op *singleOp) runAdd(tx *stm.Tx) error {
	e, err := op.sh.ensure(op.key, true)
	if err != nil {
		return err
	}
	if tx.Read(e.dead) != 0 {
		tx.Retry() // see runSet
	}
	op.n = tx.Read(e.c) + op.delta
	tx.Write(e.c, op.n)
	if op.s.tapOn.Load() {
		// Logged absolute (KindCounterSet, the post-transaction value),
		// so replay over a snapshot is idempotent.
		op.pend.reset()
		op.pend.ops = append(op.pend.ops, wal.Op{Kind: wal.KindCounterSet, Key: op.key, N: op.n})
		tx.SetTapData(&op.pend)
	}
	return nil
}

// Get performs a consistent transactional read of one key (counters are
// formatted as decimal) on the read-only path: no write locks are ever
// taken, and on the tl2 engine the read is invisible (no read set, O(1)
// commit). ok reports whether the key exists; a non-nil error
// (retry-budget exhaustion) means the value could not be read and val is
// meaningless. Steady-state Get of a bytes key performs no heap
// allocation.
func (s *Store) Get(key string) (val []byte, ok bool, err error) {
	sh := s.shards[s.ShardOf(key)]
	if sh.lookup(key) == nil {
		return nil, false, nil
	}
	op := s.singleOps.Get().(*singleOp)
	op.sh, op.key = sh, key
	var t0 time.Time
	sampled := s.opHists != nil && op.nextSample()
	if sampled {
		t0 = time.Now()
	}
	err = sh.stm.AtomicallyRead(op.getFn)
	val, ok = op.val, op.ok
	op.release()
	if sampled {
		s.opHists[OpGet].Observe(time.Since(t0).Nanoseconds())
	}
	if err != nil {
		return nil, false, err
	}
	return val, ok, nil
}

// CounterGet transactionally reads a counter key on the read-only path.
// ok is false when the key is absent; a bytes key returns ErrWrongType.
func (s *Store) CounterGet(key string) (val int64, ok bool, err error) {
	sh := s.shards[s.ShardOf(key)]
	if e := sh.lookup(key); e == nil {
		return 0, false, nil
	} else if !e.isCounter() {
		return 0, false, wrongType(key)
	}
	op := s.singleOps.Get().(*singleOp)
	op.sh, op.key = sh, key
	var t0 time.Time
	sampled := s.opHists != nil && op.nextSample()
	if sampled {
		t0 = time.Now()
	}
	err = sh.stm.AtomicallyRead(op.cgetFn)
	val, ok = op.n, op.ok
	op.release()
	if sampled {
		s.opHists[OpCounterGet].Observe(time.Since(t0).Nanoseconds())
	}
	if err != nil {
		return 0, false, err
	}
	return val, ok, nil
}

// Set transactionally writes one bytes key, creating it if absent. The
// value is copied on the way in.
func (s *Store) Set(key string, val []byte) error {
	if err := s.degradedGate(); err != nil {
		return err
	}
	sh := s.shards[s.ShardOf(key)]
	op := s.singleOps.Get().(*singleOp)
	op.sh, op.key, op.val = sh, key, copyVal(val)
	var t0 time.Time
	sampled := s.opHists != nil && op.nextSample()
	if sampled {
		t0 = time.Now()
	}
	err := sh.stm.Atomically(op.setFn)
	if err == nil {
		err = s.waitDurable(sh, &op.pend)
	}
	op.release()
	if sampled {
		s.opHists[OpSet].Observe(time.Since(t0).Nanoseconds())
	}
	return err
}

// CounterAdd transactionally adds delta to a counter key (creating it at
// 0 if absent) and returns the new value. This is the compatibility lane
// on the int64 specialization: no boxing, no formatting, and (steady
// state) no heap allocation.
func (s *Store) CounterAdd(key string, delta int64) (int64, error) {
	if err := s.degradedGate(); err != nil {
		return 0, err
	}
	sh := s.shards[s.ShardOf(key)]
	op := s.singleOps.Get().(*singleOp)
	op.sh, op.key, op.delta = sh, key, delta
	var t0 time.Time
	sampled := s.opHists != nil && op.nextSample()
	if sampled {
		t0 = time.Now()
	}
	err := sh.stm.Atomically(op.addFn)
	if err == nil {
		err = s.waitDurable(sh, &op.pend)
	}
	out := op.n
	op.release()
	if sampled {
		s.opHists[OpCounterAdd].Observe(time.Since(t0).Nanoseconds())
	}
	return out, err
}

// Delete transactionally removes a key of either kind. It reports
// whether the key existed. Deletion is two-step: the entry's tombstone
// commits first (serializing against every transaction that touched the
// key), then the key is swept from the copy-on-write table. A later Set
// or CounterAdd re-creates the key fresh — so deletion also frees the
// key's kind.
func (s *Store) Delete(key string) (bool, error) {
	if err := s.degradedGate(); err != nil {
		return false, err
	}
	sh := s.shards[s.ShardOf(key)]
	var condemned *entry
	var pend pendingOps
	existed := false
	err := sh.stm.Atomically(func(tx *stm.Tx) error {
		condemned, existed = nil, false
		pend.reset()
		e := sh.lookup(key)
		if e == nil {
			return nil
		}
		if tx.Read(e.dead) != 0 {
			// Already condemned by a concurrent Delete; help its sweep.
			condemned = e
			return nil
		}
		tx.Write(e.dead, 1)
		condemned = e
		existed = true
		if s.tapOn.Load() {
			pend.ops = append(pend.ops, wal.Op{Kind: wal.KindDelete, Key: key})
			tx.SetTapData(&pend)
		}
		return nil
	})
	if err != nil {
		return false, err
	}
	if condemned != nil {
		s.sweep(map[string]*entry{key: condemned})
	}
	if werr := s.waitDurable(sh, &pend); werr != nil {
		return existed, werr
	}
	return existed, nil
}

// sweep removes condemned entries from their shards' COW tables. The
// identity check (table still maps the key to the condemned entry) makes
// the sweep safe against concurrent re-creation: once an entry's
// tombstone is committed nothing ever writes its dead flag again, so
// matching identity implies the entry really is condemned.
func (s *Store) sweep(condemned map[string]*entry) {
	byShard := make(map[int]map[string]*entry)
	for k, e := range condemned {
		i := s.ShardOf(k)
		if byShard[i] == nil {
			byShard[i] = make(map[string]*entry)
		}
		byShard[i][k] = e
	}
	for i, kills := range byShard {
		sh := s.shards[i]
		sh.mu.Lock()
		old := *sh.vars.Load()
		any := false
		for k, e := range kills {
			if old[k] == e {
				any = true
				break
			}
		}
		if any {
			next := make(map[string]*entry, len(old))
			for k, v := range old {
				if e, kill := kills[k]; kill && v == e {
					continue
				}
				next[k] = v
			}
			sh.vars.Store(&next)
		}
		sh.mu.Unlock()
		if any {
			// The swept entries' variables will never change again, so
			// waiters parked through them (a WaitGet that saw the
			// tombstone) move to the keyspace version — announce the
			// table change there.
			sh.stm.Touch(sh.kvers)
		}
	}
}

// MGet reads the given keys in one read-only transaction spanning every
// shard touched; the snapshot is consistent across shards and no write
// locks are taken. Missing keys are omitted from the result; counters
// are formatted as decimal.
func (s *Store) MGet(keys ...string) (map[string][]byte, error) {
	out := make(map[string][]byte, len(keys))
	err := s.View(keys, func(t *ViewTxn) error {
		clear(out) // only the committed attempt's reads survive a retry
		for _, k := range keys {
			if v, ok := t.Get(k); ok {
				out[k] = v
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MSet writes the given bytes keys in one cross-shard transaction.
func (s *Store) MSet(vals map[string][]byte) error {
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	return s.Update(keys, func(t *Txn) error {
		for k, v := range vals {
			t.Set(k, v)
		}
		return nil
	})
}

// Txn is the handle passed to Update bodies. Accesses are restricted to
// the shards owning the declared footprint; an access outside it — or
// against a key of the wrong kind — makes the transaction fail with an
// error (no partial effects).
type Txn struct {
	s    *Store
	idxs []int     // sorted footprint shard indices
	txs  []*stm.Tx // per-shard transaction handles, aligned with idxs
	err  error

	// tap and pends are the durability effect lists, aligned with idxs
	// (durable.go): each shard transaction the body writes through gets
	// its shard's pendingOps attached on first emission. Cross-shard
	// transactions log one record per shard, so durability's prefix
	// guarantee is per shard — a crash can recover one shard's half of a
	// cross-shard transaction without the other's.
	tap   bool
	pends []pendingOps

	// deleted tracks keys tombstoned by this transaction, for the
	// post-commit sweep and for in-transaction resurrection (a Set or Add
	// after a Delete of the same key un-condemns the entry instead of
	// spinning on it).
	deleted map[string]*entry
}

// emit appends op to footprint position j's effect list, attaching the
// list to the shard transaction on first use.
func (t *Txn) emit(j int, tx *stm.Tx, op wal.Op) {
	if !t.tap {
		return
	}
	p := &t.pends[j]
	p.ops = append(p.ops, op)
	if len(p.ops) == 1 {
		tx.SetTapData(p)
	}
}

func (t *Txn) fail(err error) {
	if t.err == nil {
		t.err = err
	}
}

func (t *Txn) outside(key string) error {
	return fmt.Errorf("kv: key %q is outside the transaction footprint", key)
}

// resolve routes key and returns its shard index, footprint position
// and shard transaction, or fails the transaction when the shard is
// outside the declared footprint. The footprint is a short sorted
// slice, so the membership test is a linear scan, not a map lookup.
func (t *Txn) resolve(key string) (int, int, *stm.Tx, bool) {
	i := t.s.ShardOf(key)
	for j, idx := range t.idxs {
		if idx == i {
			return i, j, t.txs[j], true
		}
	}
	t.fail(t.outside(key))
	return i, 0, nil, false
}

// live returns whether e is readable by this transaction: not condemned,
// or condemned by this very transaction and not resurrected.
func (t *Txn) live(tx *stm.Tx, key string, e *entry) bool {
	if _, mine := t.deleted[key]; mine {
		return false // deleted earlier in this transaction
	}
	return tx.Read(e.dead) == 0
}

// Get reads key inside the transaction; ok is false when the key is
// absent (including keys deleted earlier in this transaction). Counter
// keys are formatted as decimal.
func (t *Txn) Get(key string) ([]byte, bool) {
	i, _, tx, ok := t.resolve(key)
	if !ok {
		return nil, false
	}
	e := t.s.shards[i].lookup(key)
	if e == nil || !t.live(tx, key, e) {
		return nil, false
	}
	if e.isCounter() {
		return formatCounter(tx.Read(e.c)), true
	}
	return stm.ReadT(tx, e.b), true
}

// Set writes a bytes key inside the transaction, creating it if absent.
// The value is copied on the way in. Setting a key deleted earlier in
// the same transaction resurrects it (same entry, so the kind must still
// match).
func (t *Txn) Set(key string, val []byte) {
	i, j, tx, ok := t.resolve(key)
	if !ok {
		return
	}
	e, err := t.s.shards[i].ensure(key, false)
	if err != nil {
		t.fail(err)
		return
	}
	if _, mine := t.deleted[key]; mine {
		tx.Write(e.dead, 0) // resurrect our own tombstone
		delete(t.deleted, key)
	} else if tx.Read(e.dead) != 0 {
		tx.Retry() // concurrent Delete's sweep in flight; see Store.Set
	}
	v := copyVal(val)
	stm.WriteT(tx, e.b, v)
	t.emit(j, tx, wal.Op{Kind: wal.KindSet, Key: key, Val: v})
}

// Add adds delta to a counter key inside the transaction and returns the
// new value. The key is routed and resolved once (this is the hot path of
// TXN ADD and the transfer benchmarks).
func (t *Txn) Add(key string, delta int64) int64 {
	i, j, tx, ok := t.resolve(key)
	if !ok {
		return 0
	}
	e, err := t.s.shards[i].ensure(key, true)
	if err != nil {
		t.fail(err)
		return 0
	}
	if _, mine := t.deleted[key]; mine {
		// Resurrect our own tombstone. The deleted key read as absent, so
		// the counter restarts at zero — the same result a committed
		// Delete followed by CounterAdd produces via a fresh entry.
		tx.Write(e.dead, 0)
		delete(t.deleted, key)
		tx.Write(e.c, delta)
		t.emit(j, tx, wal.Op{Kind: wal.KindCounterSet, Key: key, N: delta})
		return delta
	}
	if tx.Read(e.dead) != 0 {
		tx.Retry()
	}
	nv := tx.Read(e.c) + delta
	tx.Write(e.c, nv)
	t.emit(j, tx, wal.Op{Kind: wal.KindCounterSet, Key: key, N: nv})
	return nv
}

// CounterSet sets a counter key to an absolute value inside the
// transaction, creating it if absent. It is the write the replication
// apply path uses to replay KindCounterSet records (counters are
// logged absolute so replay is idempotent), and is useful anywhere an
// absolute counter write is wanted transactionally.
func (t *Txn) CounterSet(key string, n int64) {
	i, j, tx, ok := t.resolve(key)
	if !ok {
		return
	}
	e, err := t.s.shards[i].ensure(key, true)
	if err != nil {
		t.fail(err)
		return
	}
	if _, mine := t.deleted[key]; mine {
		tx.Write(e.dead, 0) // resurrect our own tombstone
		delete(t.deleted, key)
	} else if tx.Read(e.dead) != 0 {
		tx.Retry() // concurrent Delete's sweep in flight; see Store.Set
	}
	tx.Write(e.c, n)
	t.emit(j, tx, wal.Op{Kind: wal.KindCounterSet, Key: key, N: n})
}

// Delete tombstones a key of either kind inside the transaction,
// reporting whether it existed. The committed removal from the key table
// happens after the transaction commits (see Store.Delete); within the
// transaction the key reads as absent, and a later Set/Add of the same
// key resurrects it.
func (t *Txn) Delete(key string) bool {
	i, j, tx, ok := t.resolve(key)
	if !ok {
		return false
	}
	e := t.s.shards[i].lookup(key)
	if e == nil {
		return false
	}
	if _, mine := t.deleted[key]; mine {
		return false // already deleted in this transaction
	}
	if tx.Read(e.dead) != 0 {
		return false // already condemned by a committed Delete
	}
	tx.Write(e.dead, 1)
	if t.deleted == nil {
		t.deleted = make(map[string]*entry, 2)
	}
	t.deleted[key] = e
	t.emit(j, tx, wal.Op{Kind: wal.KindDelete, Key: key})
	return true
}

// appendShardSet appends the sorted, deduplicated shard indices owning
// keys to idxs (pass a truncated scratch slice). Footprints are small,
// so a sorted insert with linear shifts beats a map-and-sort and
// allocates nothing once the scratch has capacity.
func (s *Store) appendShardSet(idxs []int, keys []string) []int {
	for _, k := range keys {
		i := s.ShardOf(k)
		pos := sort.SearchInts(idxs, i)
		if pos < len(idxs) && idxs[pos] == i {
			continue
		}
		idxs = append(idxs, 0)
		copy(idxs[pos+1:], idxs[pos:])
		idxs[pos] = i
	}
	return idxs
}

// appendSTMs appends the shards' STM instances in idxs order.
func (s *Store) appendSTMs(stms []*stm.STM, idxs []int) []*stm.STM {
	for _, i := range idxs {
		stms = append(stms, s.shards[i].stm)
	}
	return stms
}

// multiOp is pooled per-call scratch for the footprint-scoped operations
// (Update, View): the sorted shard set, the aligned instance list and
// the reusable transaction handle, with the attempt bodies bound once at
// pool fill so the per-attempt plumbing allocates nothing.
type multiOp struct {
	s     *Store
	idxs  []int
	stms  []*stm.STM
	pends []pendingOps // durability effect lists, aligned with idxs
	txn   Txn
	view  ViewTxn

	updateFn  func(*Txn) error     // the user's Update body
	viewFn    func(*ViewTxn) error // the user's View body
	runUpdate func([]*stm.Tx) error
	runView   func([]*stm.ReadTx) error

	// tick is the latency-sampling tick; like singleOp's it survives
	// release on purpose.
	tick uint64
}

func (op *multiOp) update(txs []*stm.Tx) error {
	t := &op.txn
	t.s = op.s
	t.idxs = op.idxs
	t.txs = txs
	t.err = nil
	t.deleted = nil // only the committed attempt's tombstones are swept
	t.tap = op.s.tapOn.Load()
	if t.tap {
		for len(op.pends) < len(op.idxs) {
			op.pends = append(op.pends, pendingOps{})
		}
		t.pends = op.pends[:len(op.idxs)]
		for j := range t.pends {
			t.pends[j].reset() // only the committed attempt's ops are logged
		}
	} else {
		t.pends = nil
	}
	if err := op.updateFn(t); err != nil {
		return err
	}
	if t.err == nil {
		t.linkCross()
	}
	return t.err
}

// linkCross links this attempt's effect lists into one pendingTxn when
// the attempt wrote through more than one shard on a durable store:
// the commit taps then flag each shard's record as a cross-shard
// participant and the last tap appends the commit marker (durable.go).
// Runs at body end, before the two-phase commit; a retried attempt
// simply links a fresh pendingTxn (reset clears the old link, and taps
// only ever fire for the committing attempt).
func (t *Txn) linkCross() {
	if !t.tap || t.s.dur == nil || !t.s.dur.attached {
		return
	}
	n := 0
	for j := range t.pends {
		if len(t.pends[j].ops) > 0 {
			n++
		}
	}
	if n < 2 {
		return
	}
	pt := newPendingTxn(n)
	for j := range t.pends {
		if len(t.pends[j].ops) > 0 {
			t.pends[j].txn = pt
		}
	}
}

func (op *multiOp) viewBody(rtxs []*stm.ReadTx) error {
	t := &op.view
	t.s = op.s
	t.idxs = op.idxs
	t.rtxs = rtxs
	t.err = nil
	if err := op.viewFn(t); err != nil {
		return err
	}
	return t.err
}

// release drops the per-call references (keeping the scratch slices'
// capacity) and returns the op to the pool.
func (op *multiOp) release() {
	s := op.s
	op.idxs = op.idxs[:0]
	clear(op.stms)
	op.stms = op.stms[:0]
	for j := range op.pends {
		op.pends[j].reset() // drop key/value references, keep capacity
	}
	op.txn = Txn{}
	op.view = ViewTxn{}
	op.updateFn, op.viewFn = nil, nil
	s.multiOps.Put(op)
}

// Update runs fn as one transaction over the shards owning keys (the
// transaction's footprint). The per-shard transactions two-phase in
// ascending shard order: every shard prepares (locks + validation) before
// any publishes, so concurrent transactional readers never observe a
// partial cross-shard commit, and the consistent lock order avoids
// deadlock. fn may touch any key routed to a declared shard, not just the
// declared keys; it may be re-executed on conflict and must be pure.
func (s *Store) Update(keys []string, fn func(*Txn) error) error {
	return s.UpdateCtx(context.Background(), keys, fn)
}

// UpdateCtx is Update honoring ctx between retry attempts (see
// stm.AtomicallyMultiCtx): cancellation surfaces as an error wrapping
// stm.ErrCanceled and the context's error.
func (s *Store) UpdateCtx(ctx context.Context, keys []string, fn func(*Txn) error) error {
	if err := s.degradedGate(); err != nil {
		return err
	}
	op := s.multiOps.Get().(*multiOp)
	op.idxs = s.appendShardSet(op.idxs[:0], keys)
	op.stms = s.appendSTMs(op.stms[:0], op.idxs)
	op.updateFn = fn
	var t0 time.Time
	sampled := s.opHists != nil && op.nextSample()
	if sampled {
		t0 = time.Now()
	}
	err := stm.AtomicallyMultiCtx(ctx, op.stms, op.runUpdate)
	committed := err == nil
	deleted := op.txn.deleted
	if committed && op.txn.tap && s.fsyncLevel() {
		var xt *pendingTxn
		for j, i := range op.idxs {
			if p := &op.pends[j]; p.seq != 0 {
				if p.txn != nil {
					xt = p.txn
				}
				if werr := s.shards[i].feed.log.WaitDurable(p.seq); werr != nil {
					err = werr
					break
				}
			}
		}
		// A cross-shard commit is acknowledged only once its marker is
		// durable too: records without the marker roll back on recovery.
		if err == nil {
			if werr := s.waitTxnDurable(xt); werr != nil {
				err = werr
			}
		}
	}
	op.release()
	if sampled {
		s.opHists[OpUpdate].Observe(time.Since(t0).Nanoseconds())
	}
	// The sweep keys off the commit, not the durable wait: a failed wait
	// reports the log's sticky error, but the tombstones are committed.
	if committed && len(deleted) > 0 {
		s.sweep(deleted)
	}
	return err
}

// ViewTxn is the handle passed to View bodies: a consistent, read-only,
// possibly cross-shard snapshot. It can only read, so the underlying
// transactions never take write locks; on the tl2 engine a single-shard
// View additionally keeps no read set and commits in O(1).
type ViewTxn struct {
	s    *Store
	idxs []int         // sorted footprint shard indices
	rtxs []*stm.ReadTx // read-only handles, aligned with idxs
	err  error
}

func (t *ViewTxn) fail(err error) {
	if t.err == nil {
		t.err = err
	}
}

// resolve routes key to its live entry within the view's footprint.
// ok is false (with no error) for absent or condemned keys, and the view
// fails when the key's shard is outside the footprint.
func (t *ViewTxn) resolve(key string) (*stm.ReadTx, *entry, bool) {
	i := t.s.ShardOf(key)
	var r *stm.ReadTx
	for j, idx := range t.idxs {
		if idx == i {
			r = t.rtxs[j]
			break
		}
	}
	if r == nil {
		t.fail(fmt.Errorf("kv: key %q is outside the view footprint", key))
		return nil, nil, false
	}
	e := t.s.shards[i].lookup(key)
	if e == nil || r.Read(e.dead) != 0 {
		return nil, nil, false
	}
	return r, e, true
}

// Get reads key inside the view; ok is false when the key is absent.
// Counter keys are formatted as decimal.
func (t *ViewTxn) Get(key string) ([]byte, bool) {
	r, e, ok := t.resolve(key)
	if !ok {
		return nil, false
	}
	if e.isCounter() {
		return formatCounter(r.Read(e.c)), true
	}
	return stm.ReadTVar(r, e.b), true
}

// Counter reads a counter key inside the view on the int64 lane (no
// boxing, no formatting). ok is false when the key is absent or holds
// bytes.
func (t *ViewTxn) Counter(key string) (int64, bool) {
	r, e, ok := t.resolve(key)
	if !ok || !e.isCounter() {
		return 0, false
	}
	return r.Read(e.c), true
}

// View runs fn as one read-only transaction over the shards owning keys
// (the view's footprint): a multi-key snapshot consistent across shards
// that never takes write locks — commit validates the read sets with no
// locking at all (see stm.AtomicallyReadMulti), and a single-shard view
// on the tl2 engine runs with invisible reads. fn may read any key
// routed to a declared shard; it may be re-executed on conflict and must
// be pure.
func (s *Store) View(keys []string, fn func(*ViewTxn) error) error {
	return s.ViewCtx(context.Background(), keys, fn)
}

// ViewCtx is View honoring ctx between retry attempts.
func (s *Store) ViewCtx(ctx context.Context, keys []string, fn func(*ViewTxn) error) error {
	op := s.multiOps.Get().(*multiOp)
	op.idxs = s.appendShardSet(op.idxs[:0], keys)
	op.stms = s.appendSTMs(op.stms[:0], op.idxs)
	op.viewFn = fn
	var t0 time.Time
	sampled := s.opHists != nil && op.nextSample()
	if sampled {
		t0 = time.Now()
	}
	err := stm.AtomicallyReadMultiCtx(ctx, op.stms, op.runView)
	op.release()
	if sampled {
		s.opHists[OpView].Observe(time.Since(t0).Nanoseconds())
	}
	return err
}

// Privatize fences the shards owning keys and returns the keys' raw
// typed handles, aligned with keys (creating missing keys as nil-valued
// bytes keys). When it returns, every transaction admitted before the
// call on those shards has resolved, so the §3.5 delayed-writeback race
// is excluded and the caller may use plain Load/Store on the handles —
// provided it has already made the keys logically private (e.g. cleared a
// routing flag inside a transaction), exactly as in the paper's
// privatization idiom. Counter keys return ErrWrongType.
func (s *Store) Privatize(keys ...string) ([]*stm.TVar[[]byte], error) {
	// Check kinds before creating anything, so a wrong-type failure does
	// not leave phantom bytes keys behind for the keys processed first.
	if err := s.checkBytesKinds(keys); err != nil {
		return nil, err
	}
	vars := make([]*stm.TVar[[]byte], len(keys))
	for i, k := range keys {
		// ensureLive, not ensure: a handle on a condemned entry would have
		// every subsequent plain Store silently lost to the sweep.
		e, err := s.ensureLive(s.shards[s.ShardOf(k)], k, false)
		if err != nil {
			return nil, err
		}
		vars[i] = e.b
	}
	for _, i := range s.appendShardSet(nil, keys) {
		s.shards[i].stm.Quiesce()
	}
	return vars, nil
}

// Publish plainly stores vals (copied on the way in) and then commits a
// sentinel transaction on each owning shard. A transactional reader
// ordered after the sentinel write (any transaction on the shard that
// starts after Publish returns, or one that observes the bumped sentinel)
// also sees the plain writes: publication by direct dependency, safe on
// every engine without fences. Counter keys return ErrWrongType before
// any write happens.
func (s *Store) Publish(vals map[string][]byte) error {
	if err := s.degradedGate(); err != nil {
		return err
	}
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	// Check kinds before creating anything, so a wrong-type failure does
	// not leave phantom bytes keys behind (the map iterates in random
	// order, so "before any write" would otherwise be best-effort).
	if err := s.checkBytesKinds(keys); err != nil {
		return err
	}
	entries := make([]*entry, 0, len(vals))
	for _, k := range keys {
		// ensureLive, not ensure: plain stores into a condemned entry would
		// be silently lost to the concurrent sweep.
		e, err := s.ensureLive(s.shards[s.ShardOf(k)], k, false)
		if err != nil {
			return err
		}
		entries = append(entries, e)
	}
	copies := make([][]byte, len(keys))
	for j, k := range keys {
		copies[j] = copyVal(vals[k])
		entries[j].b.Store(copies[j])
	}
	idxs := s.appendShardSet(nil, keys)
	// The sentinel transactions carry the published values as SET ops,
	// so publication is logged (and fed to subscribers) even though the
	// value writes themselves were plain.
	var pends []pendingOps
	if s.tapOn.Load() {
		pends = make([]pendingOps, len(idxs))
		pos := make(map[int]int, len(idxs))
		for j, i := range idxs {
			pos[i] = j
		}
		for j, k := range keys {
			p := &pends[pos[s.ShardOf(k)]]
			p.ops = append(p.ops, wal.Op{Kind: wal.KindSet, Key: k, Val: copies[j]})
		}
	}
	durable := s.dur != nil && s.dur.attached
	err := stm.AtomicallyMulti(s.appendSTMs(nil, idxs), func(txs []*stm.Tx) error {
		// A multi-shard publication links its sentinels into one
		// cross-shard commit, fresh per attempt, so the logged records
		// recover all-or-nothing like any other cross-shard write.
		var pt *pendingTxn
		if pends != nil && durable && len(idxs) > 1 {
			pt = newPendingTxn(len(idxs))
		}
		for j, i := range idxs {
			txs[j].Write(s.shards[i].pub, txs[j].Read(s.shards[i].pub)+1)
			if pends != nil {
				pends[j].seq = 0 // ops are attempt-invariant; only the stamp resets
				pends[j].txn = pt
				txs[j].SetTapData(&pends[j])
			}
		}
		return nil
	})
	if err != nil || pends == nil || !s.fsyncLevel() {
		return err
	}
	for j, i := range idxs {
		if pends[j].seq != 0 {
			if werr := s.shards[i].feed.log.WaitDurable(pends[j].seq); werr != nil {
				return werr
			}
		}
	}
	return s.waitTxnDurable(pends[0].txn)
}

// Stats is an aggregate snapshot across shards. The JSON field names are
// a stable wire format — the admin plane and bench reports emit them.
type Stats struct {
	Shards          int    `json:"shards"`
	Keys            int    `json:"keys"`
	FastGets        uint64 `json:"fast_gets"`
	Commits         uint64 `json:"commits"`
	Conflicts       uint64 `json:"conflicts"`
	UserAborts      uint64 `json:"user_aborts"`
	MultiCommits    uint64 `json:"multi_commits"`
	ReadOnlyCommits uint64 `json:"read_only_commits"`
	Quiesces        uint64 `json:"quiesces"`

	// Blocking counters (WaitGet/Watch and any blocked Update bodies):
	// parks taken, parks ended by a commit notification, and parks ended
	// by the safety-net timer (see stm.Stats).
	Waits           uint64 `json:"waits"`
	Wakeups         uint64 `json:"wakeups"`
	SpuriousWakeups uint64 `json:"spurious_wakeups"`
}

// Stats aggregates per-shard STM counters and store-level counters.
func (s *Store) Stats() Stats {
	st := Stats{Shards: len(s.shards)}
	for i, sh := range s.shards {
		st.FastGets += s.fastGets[i].n.Load()
		st.Keys += len(*sh.vars.Load())
		snap := sh.stm.Snapshot()
		st.Commits += snap.Commits
		st.Conflicts += snap.Conflicts
		st.UserAborts += snap.UserAborts
		st.MultiCommits += snap.MultiCommits
		st.ReadOnlyCommits += snap.ReadOnlyCommits
		st.Quiesces += snap.Quiesces
		st.Waits += snap.Waits
		st.Wakeups += snap.Wakeups
		st.SpuriousWakeups += snap.SpuriousWakeups
	}
	return st
}

// String implements fmt.Stringer for diagnostics.
func (st Stats) String() string {
	return fmt.Sprintf("kv: shards=%d keys=%d fastgets=%d commits=%d conflicts=%d user-aborts=%d multi-commits=%d ro-commits=%d quiesces=%d waits=%d wakeups=%d spurious-wakeups=%d",
		st.Shards, st.Keys, st.FastGets, st.Commits, st.Conflicts, st.UserAborts, st.MultiCommits, st.ReadOnlyCommits, st.Quiesces, st.Waits, st.Wakeups, st.SpuriousWakeups)
}
