// Package kv is a sharded, string-keyed transactional key-value store
// built on the internal/stm runtime. It is the repo's first serving-scale
// workload: transactional cross-key updates mixed with plain fast-path
// reads, which is exactly the mixed-mode territory the paper bounds.
//
// Keys hash (FNV-1a) to one of N power-of-two shards. Each shard owns its
// own stm.STM instance and a copy-on-write key→*stm.Var table, so the
// plain-access path (FastGet) is lock-free: one atomic pointer load, one
// map lookup, one atomic value load. Multi-key operations run as a single
// transaction two-phased across the shards touched via stm.AtomicallyMulti
// with the shards in ascending index order, which makes cross-shard
// commits deadlock-free and invisible in partial states to consistent
// transactional readers.
//
// Mixed-mode access follows the paper's §5 implementation model:
//
//   - FastGet is a plain read. Against the lazy engine it can miss a
//     logically-committed-but-unwritten value (the delayed-writeback
//     anomaly of §3.5); the store never promises otherwise.
//   - Privatize issues quiescence fences on the owning shards and hands
//     back raw Var handles, after which plain access cannot race with
//     in-flight transactional writeback.
//   - Publish performs plain writes and then a sentinel transaction per
//     owning shard, so transactional readers that observe the sentinel
//     are ordered after the plain writes (publication by direct
//     dependency, safe by construction).
package kv

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"modtx/internal/stm"
)

// Options configures a Store.
type Options struct {
	// Shards is the shard count; it is rounded up to a power of two.
	// 0 means 16.
	Shards int
	// Engine selects the STM engine backing every shard.
	Engine stm.Engine
	// MaxRetries bounds commit attempts per operation (0 = stm default).
	MaxRetries int
}

// Store is a sharded transactional key-value store. All methods are safe
// for concurrent use.
type Store struct {
	shards []*shard
	mask   uint64
	engine stm.Engine

	fastGets atomic.Uint64
}

type shard struct {
	stm *stm.STM
	pub *stm.Var // publication sentinel (see Publish)

	mu   sync.Mutex                          // guards insertions into vars
	vars atomic.Pointer[map[string]*stm.Var] // copy-on-write key table
}

// New creates a Store.
func New(opts Options) *Store {
	n := opts.Shards
	if n <= 0 {
		n = 16
	}
	// Round up to a power of two so shard routing is a mask.
	p := 1
	for p < n {
		p <<= 1
	}
	n = p
	s := &Store{
		shards: make([]*shard, n),
		mask:   uint64(n - 1),
		engine: opts.Engine,
	}
	for i := range s.shards {
		inst := stm.New(stm.Options{Engine: opts.Engine, MaxRetries: opts.MaxRetries})
		sh := &shard{stm: inst, pub: inst.NewVar(fmt.Sprintf("shard%d.pub", i), 0)}
		empty := make(map[string]*stm.Var)
		sh.vars.Store(&empty)
		s.shards[i] = sh
	}
	return s
}

// fnv1a is the 64-bit FNV-1a hash, inlined to keep FastGet allocation-free.
func fnv1a(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// Engine returns the engine backing the store.
func (s *Store) Engine() stm.Engine { return s.engine }

// ShardOf returns the index of the shard owning key.
func (s *Store) ShardOf(key string) int { return int(fnv1a(key) & s.mask) }

// ShardSTM exposes shard i's STM instance for stats, anomaly hooks and
// tests.
func (s *Store) ShardSTM(i int) *stm.STM { return s.shards[i].stm }

func (sh *shard) lookup(key string) *stm.Var {
	return (*sh.vars.Load())[key]
}

// ensure returns the key's variable, creating it (initialized to 0) on
// first use. Creation copies the shard's table, so steady-state reads stay
// lock-free; use EnsureKeys to amortize bulk loads.
func (sh *shard) ensure(key string) *stm.Var {
	if v := sh.lookup(key); v != nil {
		return v
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	old := *sh.vars.Load()
	if v := old[key]; v != nil {
		return v
	}
	next := make(map[string]*stm.Var, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	v := sh.stm.NewVar(key, 0)
	next[key] = v
	sh.vars.Store(&next)
	return v
}

// EnsureKeys creates all missing keys (initialized to 0) with one table
// copy per shard instead of one per key.
func (s *Store) EnsureKeys(keys ...string) {
	byShard := make(map[int][]string)
	for _, k := range keys {
		i := s.ShardOf(k)
		byShard[i] = append(byShard[i], k)
	}
	for i, ks := range byShard {
		sh := s.shards[i]
		sh.mu.Lock()
		old := *sh.vars.Load()
		next := make(map[string]*stm.Var, len(old)+len(ks))
		for k, v := range old {
			next[k] = v
		}
		for _, k := range ks {
			if next[k] == nil {
				next[k] = sh.stm.NewVar(k, 0)
			}
		}
		sh.vars.Store(&next)
		sh.mu.Unlock()
	}
}

// Len returns the number of keys present.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += len(*sh.vars.Load())
	}
	return n
}

// FastGet is the lock-free mixed-mode read: a plain (non-transactional)
// load of the key's variable. It reports false when the key has never been
// written. Per the §5 implementation model it may miss a value whose
// transaction has validated but not yet written back (lazy engine); use
// Get for a consistent transactional read, or Privatize to fence.
func (s *Store) FastGet(key string) (int64, bool) {
	s.fastGets.Add(1)
	v := s.shards[s.ShardOf(key)].lookup(key)
	if v == nil {
		return 0, false
	}
	return v.Load(), true
}

// Get performs a consistent transactional read of one key. ok reports
// whether the key exists; a non-nil error (retry-budget exhaustion) means
// the value could not be read and val is meaningless.
func (s *Store) Get(key string) (val int64, ok bool, err error) {
	sh := s.shards[s.ShardOf(key)]
	v := sh.lookup(key)
	if v == nil {
		return 0, false, nil
	}
	err = sh.stm.Atomically(func(tx *stm.Tx) error {
		val = tx.Read(v)
		return nil
	})
	if err != nil {
		return 0, false, err
	}
	return val, true, nil
}

// Set transactionally writes one key, creating it if absent.
func (s *Store) Set(key string, val int64) error {
	sh := s.shards[s.ShardOf(key)]
	v := sh.ensure(key)
	return sh.stm.Atomically(func(tx *stm.Tx) error {
		tx.Write(v, val)
		return nil
	})
}

// Add transactionally adds delta to one key (creating it at 0 if absent)
// and returns the new value.
func (s *Store) Add(key string, delta int64) (int64, error) {
	sh := s.shards[s.ShardOf(key)]
	v := sh.ensure(key)
	var out int64
	err := sh.stm.Atomically(func(tx *stm.Tx) error {
		out = tx.Read(v) + delta
		tx.Write(v, out)
		return nil
	})
	return out, err
}

// MGet reads the given keys in one transaction spanning every shard
// touched; the snapshot is consistent across shards. Missing keys are
// omitted from the result.
func (s *Store) MGet(keys ...string) (map[string]int64, error) {
	out := make(map[string]int64, len(keys))
	err := s.Update(keys, func(t *Txn) error {
		for _, k := range keys {
			if v, ok := t.Get(k); ok {
				out[k] = v
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MSet writes the given keys in one cross-shard transaction.
func (s *Store) MSet(vals map[string]int64) error {
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	return s.Update(keys, func(t *Txn) error {
		for k, v := range vals {
			t.Set(k, v)
		}
		return nil
	})
}

// Txn is the handle passed to Update bodies. Accesses are restricted to
// the shards owning the declared footprint; an access outside it makes the
// transaction fail with an error (no partial effects).
type Txn struct {
	s   *Store
	txs map[int]*stm.Tx // shard index -> per-shard transaction handle
	err error
}

func (t *Txn) fail(key string) {
	if t.err == nil {
		t.err = fmt.Errorf("kv: key %q is outside the transaction footprint", key)
	}
}

// Get reads key inside the transaction; ok is false when the key is
// absent.
func (t *Txn) Get(key string) (int64, bool) {
	i := t.s.ShardOf(key)
	tx, declared := t.txs[i]
	if !declared {
		t.fail(key)
		return 0, false
	}
	v := t.s.shards[i].lookup(key)
	if v == nil {
		return 0, false
	}
	return tx.Read(v), true
}

// Set writes key inside the transaction, creating it if absent.
func (t *Txn) Set(key string, val int64) {
	i := t.s.ShardOf(key)
	tx, declared := t.txs[i]
	if !declared {
		t.fail(key)
		return
	}
	tx.Write(t.s.shards[i].ensure(key), val)
}

// Add adds delta to key inside the transaction and returns the new value.
// The key is routed and resolved once (this is the hot path of TXN ADD and
// the transfer benchmarks).
func (t *Txn) Add(key string, delta int64) int64 {
	i := t.s.ShardOf(key)
	tx, declared := t.txs[i]
	if !declared {
		t.fail(key)
		return 0
	}
	v := t.s.shards[i].ensure(key)
	nv := tx.Read(v) + delta
	tx.Write(v, nv)
	return nv
}

// shardSet returns the sorted, deduplicated shard indices owning keys.
func (s *Store) shardSet(keys []string) []int {
	seen := make(map[int]bool, len(keys))
	idxs := make([]int, 0, len(keys))
	for _, k := range keys {
		if i := s.ShardOf(k); !seen[i] {
			seen[i] = true
			idxs = append(idxs, i)
		}
	}
	sort.Ints(idxs)
	return idxs
}

// stmsFor maps shard indices to their STM instances, preserving order.
func (s *Store) stmsFor(idxs []int) []*stm.STM {
	stms := make([]*stm.STM, len(idxs))
	for j, i := range idxs {
		stms[j] = s.shards[i].stm
	}
	return stms
}

// Update runs fn as one transaction over the shards owning keys (the
// transaction's footprint). The per-shard transactions two-phase in
// ascending shard order: every shard prepares (locks + validation) before
// any publishes, so concurrent transactional readers never observe a
// partial cross-shard commit, and the consistent lock order avoids
// deadlock. fn may touch any key routed to a declared shard, not just the
// declared keys; it may be re-executed on conflict and must be pure.
func (s *Store) Update(keys []string, fn func(*Txn) error) error {
	idxs := s.shardSet(keys)
	return stm.AtomicallyMulti(s.stmsFor(idxs), func(txs []*stm.Tx) error {
		t := &Txn{s: s, txs: make(map[int]*stm.Tx, len(idxs))}
		for j, i := range idxs {
			t.txs[i] = txs[j]
		}
		if err := fn(t); err != nil {
			return err
		}
		return t.err
	})
}

// Privatize fences the shards owning keys and returns the keys' raw
// variable handles, aligned with keys (creating missing keys at 0). When
// it returns, every transaction admitted before the call on those shards
// has resolved, so the §3.5 delayed-writeback race is excluded and the
// caller may use plain Load/Store on the handles — provided it has already
// made the keys logically private (e.g. cleared a routing flag inside a
// transaction), exactly as in the paper's privatization idiom.
func (s *Store) Privatize(keys ...string) []*stm.Var {
	vars := make([]*stm.Var, len(keys))
	for i, k := range keys {
		vars[i] = s.shards[s.ShardOf(k)].ensure(k)
	}
	for _, i := range s.shardSet(keys) {
		s.shards[i].stm.Quiesce()
	}
	return vars
}

// Publish plainly stores vals and then commits a sentinel transaction on
// each owning shard. A transactional reader ordered after the sentinel
// write (any transaction on the shard that starts after Publish returns,
// or one that observes the bumped sentinel) also sees the plain writes:
// publication by direct dependency, safe on every engine without fences.
func (s *Store) Publish(vals map[string]int64) error {
	keys := make([]string, 0, len(vals))
	for k, v := range vals {
		s.shards[s.ShardOf(k)].ensure(k).Store(v)
		keys = append(keys, k)
	}
	idxs := s.shardSet(keys)
	return stm.AtomicallyMulti(s.stmsFor(idxs), func(txs []*stm.Tx) error {
		for j, i := range idxs {
			txs[j].Write(s.shards[i].pub, txs[j].Read(s.shards[i].pub)+1)
		}
		return nil
	})
}

// Stats is an aggregate snapshot across shards.
type Stats struct {
	Shards       int
	Keys         int
	FastGets     uint64
	Commits      uint64
	Conflicts    uint64
	UserAborts   uint64
	MultiCommits uint64
	Quiesces     uint64
}

// Stats aggregates per-shard STM counters and store-level counters.
func (s *Store) Stats() Stats {
	st := Stats{Shards: len(s.shards), FastGets: s.fastGets.Load()}
	for _, sh := range s.shards {
		st.Keys += len(*sh.vars.Load())
		snap := sh.stm.Snapshot()
		st.Commits += snap.Commits
		st.Conflicts += snap.Conflicts
		st.UserAborts += snap.UserAborts
		st.MultiCommits += snap.MultiCommits
		st.Quiesces += snap.Quiesces
	}
	return st
}

// String implements fmt.Stringer for diagnostics.
func (st Stats) String() string {
	return fmt.Sprintf("kv: shards=%d keys=%d fastgets=%d commits=%d conflicts=%d user-aborts=%d multi-commits=%d quiesces=%d",
		st.Shards, st.Keys, st.FastGets, st.Commits, st.Conflicts, st.UserAborts, st.MultiCommits, st.Quiesces)
}
