package kv

import (
	"errors"
	"fmt"
)

// Degraded mode: what a durable store does after its WAL latches a
// sticky I/O failure (internal/wal errors are sticky by design — a log
// that cannot write must not silently acknowledge). Before this
// policy, a latched fault meant every subsequent fsync-level write
// returned the same error forever: correct, but operationally useless.
// The policy makes the failure a *transition* instead:
//
//   - DegradeFail: the historical behavior, and the default — writes
//     keep flowing into the dead log and fsync-level callers keep
//     getting the sticky error. For embedders that handle the error
//     themselves.
//   - DegradeReadOnly: the store refuses new writes with ErrDegraded
//     (reads keep serving). The dataset stops diverging from disk, so
//     a restart after the disk recovers loses nothing acknowledged.
//   - DegradeShed: the store keeps serving writes from memory with
//     durability shed, each one counted in WALStats.ShedWrites —
//     availability over durability, loudly.
//
// The transition fires the moment the WAL fails (the log's OnFail
// hook), not on the next write, and is one-way: recovering the disk
// means reopening the store, which re-runs recovery against the
// repaired directory.

// ErrDegraded is returned for writes rejected because the store is in
// read-only degraded mode after a WAL failure. The underlying WAL
// error is attached: errors.Is(err, ErrDegraded) routes, %v explains.
var ErrDegraded = errors.New("kv: store degraded after WAL failure, writes rejected")

// DegradedMode selects the store's response to a latched WAL failure.
type DegradedMode int

const (
	// DegradeFail keeps the pre-policy behavior: fsync-level writes
	// surface the sticky WAL error forever.
	DegradeFail DegradedMode = iota
	// DegradeReadOnly rejects writes with ErrDegraded; reads serve.
	DegradeReadOnly
	// DegradeShed serves writes from memory with durability off,
	// counting each in WALStats.ShedWrites.
	DegradeShed
)

var degradedModeNames = [...]string{"fail", "readonly", "shed-durability"}

// String returns the mode's wire name ("fail", "readonly",
// "shed-durability").
func (m DegradedMode) String() string {
	if m >= 0 && int(m) < len(degradedModeNames) {
		return degradedModeNames[m]
	}
	return fmt.Sprintf("degradedmode(%d)", int(m))
}

// ParseDegradedMode parses a wire name back into a DegradedMode.
func ParseDegradedMode(s string) (DegradedMode, error) {
	for i, n := range degradedModeNames {
		if s == n {
			return DegradedMode(i), nil
		}
	}
	return 0, fmt.Errorf("kv: unknown degraded mode %q (want fail, readonly or shed-durability)", s)
}

// WithDegradedMode sets the store's response to a latched WAL failure
// (default DegradeFail). Only meaningful with WithDurability.
func WithDegradedMode(m DegradedMode) Option {
	return func(c *config) { c.degradedMode = m }
}

// noteWALFault is the WAL's OnFail hook: it records the first failure
// and flips the store degraded. Runs on whichever goroutine hit the
// fault (usually a log batcher) and must stay non-blocking.
func (s *Store) noteWALFault(err error) {
	d := s.dur
	if d == nil {
		return
	}
	d.degErr.CompareAndSwap(nil, &err)
	d.degraded.Store(true)
}

// Degraded reports whether the store has latched a WAL failure, and
// the failure itself.
func (s *Store) Degraded() (bool, error) {
	d := s.dur
	if d == nil || !d.degraded.Load() {
		return false, nil
	}
	if ep := d.degErr.Load(); ep != nil {
		return true, *ep
	}
	return true, nil
}

// DegradedMode returns the configured policy (DegradeFail without
// durability).
func (s *Store) DegradedMode() DegradedMode {
	if s.dur == nil {
		return DegradeFail
	}
	return s.dur.mode
}

// degradedGate is the write-path admission check: every mutating
// operation consults it before starting its transaction. One atomic
// load on the healthy path.
func (s *Store) degradedGate() error {
	d := s.dur
	if d == nil || !d.degraded.Load() || d.mode != DegradeReadOnly {
		return nil
	}
	if ep := d.degErr.Load(); ep != nil {
		return fmt.Errorf("%w: %w", ErrDegraded, *ep)
	}
	return ErrDegraded
}

// degradeWriteErr maps a WAL failure surfacing on an acknowledged
// write (WaitDurable at the Fsync level) through the policy: readonly
// dresses it as ErrDegraded, shed swallows it (the commit stands in
// memory; the tap counted it), fail returns it untouched.
func (s *Store) degradeWriteErr(err error) error {
	switch s.dur.mode {
	case DegradeReadOnly:
		return fmt.Errorf("%w: %w", ErrDegraded, err)
	case DegradeShed:
		return nil
	}
	return err
}
