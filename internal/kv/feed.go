package kv

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"

	"modtx/internal/wal"
)

// The changefeed: Subscribe taps the same per-shard commit streams the
// durability log rides (durable.go), so subscribers observe every
// committed write in per-shard commit order — with or without
// durability configured (the first Subscribe on a non-durable store
// lazily installs the commit taps).
//
// Delivery is strictly non-blocking for the committer: the tap sends
// into each subscription's buffered channel and drops the event when
// the buffer is full, counting the drop on the subscription and the
// store. A slow subscriber therefore loses events (detectable via
// Dropped) but can never block or slow a commit. Events are delivered
// at the commit's serialization point, which is slightly before the
// written values are transactionally readable — a subscriber that
// reacts to an event with an immediate Get may briefly still read the
// previous value, so it should treat the event itself as the truth
// about the write it describes.

// Event is one committed operation, as observed by a Subscription.
type Event struct {
	Shard int      // owning shard
	Seq   uint64   // per-shard commit sequence (dense per shard)
	Kind  wal.Kind // set, cset, del (cadd is never emitted by the store)
	Key   string
	Val   []byte // KindSet: the stored box — treat as read-only; else nil
	N     int64  // counter kinds: the absolute value
}

// Subscription is one registered changefeed consumer. Close (or the
// Subscribe context's cancellation) unregisters it and closes Events.
type Subscription struct {
	store  *Store
	prefix string
	ch     chan Event
	done   chan struct{}

	// mu serializes delivery against Close, so the tap never sends on a
	// closed channel. Held only for a non-blocking send — never I/O.
	mu     sync.Mutex
	closed bool

	dropped atomic.Uint64
}

// Subscribe registers a changefeed over keys with the given prefix
// ("" = all keys) with the default buffer of 256 events. The feed
// delivers every committed write on every shard, in per-shard commit
// order; see SubscribeBuffer for the overflow contract.
func (s *Store) Subscribe(ctx context.Context, prefix string) *Subscription {
	return s.SubscribeBuffer(ctx, prefix, 256)
}

// SubscribeBuffer is Subscribe with an explicit per-subscription buffer
// (minimum 1). When the consumer falls more than the buffer behind,
// events are dropped — counted, never blocking a commit — so a
// subscriber that observes Dropped() > 0 must treat its view as gappy
// and re-read the keys it cares about.
func (s *Store) SubscribeBuffer(ctx context.Context, prefix string, buffer int) *Subscription {
	if buffer < 1 {
		buffer = 1
	}
	sub := &Subscription{
		store:  s,
		prefix: prefix,
		ch:     make(chan Event, buffer),
		done:   make(chan struct{}),
	}
	// The taps may not be installed yet (store without durability):
	// the first subscriber turns the commit streams on.
	s.tapOnce.Do(s.installTaps)
	s.subMu.Lock()
	var next []*Subscription
	if old := s.subs.Load(); old != nil {
		next = append(next, *old...)
	}
	next = append(next, sub)
	s.subs.Store(&next)
	s.subMu.Unlock()
	if ctx != nil && ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				sub.Close()
			case <-sub.done:
			}
		}()
	}
	return sub
}

// Events is the subscription's delivery channel. It closes when the
// subscription is closed (Close or context cancellation).
func (sub *Subscription) Events() <-chan Event { return sub.ch }

// Dropped returns how many events this subscription has lost to a full
// buffer. A non-zero value means the event stream has gaps.
func (sub *Subscription) Dropped() uint64 { return sub.dropped.Load() }

// Close unregisters the subscription and closes its Events channel.
// Safe to call more than once and concurrently with delivery.
func (sub *Subscription) Close() {
	sub.mu.Lock()
	if sub.closed {
		sub.mu.Unlock()
		return
	}
	sub.closed = true
	close(sub.ch)
	sub.mu.Unlock()
	close(sub.done)

	s := sub.store
	s.subMu.Lock()
	if old := s.subs.Load(); old != nil {
		next := make([]*Subscription, 0, len(*old))
		for _, o := range *old {
			if o != sub {
				next = append(next, o)
			}
		}
		if len(next) == 0 {
			s.subs.Store(nil)
		} else {
			s.subs.Store(&next)
		}
	}
	s.subMu.Unlock()
}

// deliver offers one event to the subscription: non-blocking, dropping
// (and counting) on a full buffer. Runs under the shard feed lock, so
// each subscriber sees one shard's events in commit order.
func (sub *Subscription) deliver(ev Event) {
	if !strings.HasPrefix(ev.Key, sub.prefix) {
		return
	}
	sub.mu.Lock()
	if !sub.closed {
		select {
		case sub.ch <- ev:
		default:
			sub.dropped.Add(1)
			sub.store.feedDropped.Add(1)
		}
	}
	sub.mu.Unlock()
}

// notifySubscribers fans one committed transaction's ops out to the
// registered subscriptions. Called by the shard's commit tap under the
// feed lock.
func notifySubscribers(s *Store, subs []*Subscription, shard int, p *pendingOps) {
	for i := range p.ops {
		op := &p.ops[i]
		ev := Event{Shard: shard, Seq: p.seq, Kind: op.Kind, Key: op.Key, Val: op.Val, N: op.N}
		for _, sub := range subs {
			sub.deliver(ev)
		}
	}
}
