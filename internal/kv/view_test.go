package kv

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"modtx/internal/stm"
)

func TestViewBasic(t *testing.T) {
	for _, e := range kvEngines {
		t.Run(e.String(), func(t *testing.T) {
			s := New(WithShards(4), WithEngine(e))
			if err := s.MSet(map[string][]byte{"a": []byte("1"), "b": []byte("two")}); err != nil {
				t.Fatal(err)
			}
			if _, err := s.CounterAdd("n", 9); err != nil {
				t.Fatal(err)
			}
			// A missing key on a declared shard must read as a clean miss.
			missing := ""
			for i := 0; ; i++ {
				k := fmt.Sprintf("miss-%d", i)
				if s.ShardOf(k) == s.ShardOf("a") {
					missing = k
					break
				}
			}
			var av, bv []byte
			var nv int64
			err := s.View([]string{"a", "b", "n"}, func(v *ViewTxn) error {
				av, _ = v.Get("a")
				bv, _ = v.Get("b")
				var ok bool
				nv, ok = v.Counter("n")
				if !ok {
					t.Error("Counter(n) reported absent")
				}
				if fm, ok := v.Get("n"); !ok || string(fm) != "9" {
					t.Errorf("Get of counter inside view: %q,%v", fm, ok)
				}
				if _, ok := v.Get(missing); ok {
					t.Error("missing key reported present")
				}
				if _, ok := v.Counter("a"); ok {
					t.Error("Counter of a bytes key reported ok")
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if string(av) != "1" || string(bv) != "two" || nv != 9 {
				t.Fatalf("view read a=%q b=%q n=%d", av, bv, nv)
			}
			if st := s.Stats(); st.ReadOnlyCommits == 0 {
				t.Errorf("read-only commits not plumbed: %v", st)
			}
		})
	}
}

func TestViewFootprint(t *testing.T) {
	s := New(WithShards(8))
	s.EnsureKeys("in")
	other := ""
	for i := 0; ; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if s.ShardOf(k) != s.ShardOf("in") {
			other = k
			break
		}
	}
	s.EnsureKeys(other)
	err := s.View([]string{"in"}, func(v *ViewTxn) error {
		v.Get(other)
		return nil
	})
	if err == nil {
		t.Fatal("out-of-footprint view read did not error")
	}
}

func TestViewCtxPreCanceled(t *testing.T) {
	s := New(WithShards(4))
	s.EnsureKeys("a", "b")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.ViewCtx(ctx, []string{"a", "b"}, func(v *ViewTxn) error { return nil })
	if !errors.Is(err, stm.ErrCanceled) {
		t.Fatalf("err=%v, want stm.ErrCanceled", err)
	}
}

// TestViewConsistentAcrossShards is the read-only acceptance check:
// cross-shard transfers preserve a conserved total while View observers
// take lock-free consistent snapshots of every account.
func TestViewConsistentAcrossShards(t *testing.T) {
	for _, e := range kvEngines {
		t.Run(e.String(), func(t *testing.T) {
			const accounts = 32
			const initial = 100
			s := New(WithShards(2), WithEngine(e))
			keys := make([]string, accounts)
			for i := range keys {
				keys[i] = fmt.Sprintf("acct-%02d", i)
			}
			s.EnsureCounters(keys...)
			if err := s.Update(keys, func(tx *Txn) error {
				for _, k := range keys {
					tx.Add(k, initial)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			const total = accounts * initial

			var wg sync.WaitGroup
			stop := make(chan struct{})
			for w := 0; w < 3; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 300; i++ {
						from := keys[(i+w)%accounts]
						to := keys[(i*7+w+13)%accounts]
						if from == to {
							continue
						}
						if err := s.Update([]string{from, to}, func(tx *Txn) error {
							tx.Add(from, -1)
							tx.Add(to, 1)
							return nil
						}); err != nil {
							t.Errorf("transfer: %v", err)
							return
						}
					}
				}(w)
			}
			obsErr := make(chan error, 1)
			var obsWg sync.WaitGroup
			obsWg.Add(1)
			go func() {
				defer obsWg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					var sum int64
					err := s.View(keys, func(v *ViewTxn) error {
						sum = 0
						for _, k := range keys {
							n, ok := v.Counter(k)
							if !ok {
								return fmt.Errorf("account %s missing from view", k)
							}
							sum += n
						}
						return nil
					})
					if err != nil {
						obsErr <- err
						return
					}
					if sum != total {
						obsErr <- fmt.Errorf("torn view snapshot: sum=%d, want %d", sum, total)
						return
					}
				}
			}()
			wg.Wait()
			close(stop)
			obsWg.Wait()
			select {
			case err := <-obsErr:
				t.Fatal(err)
			default:
			}
		})
	}
}
