package kv

import (
	"errors"

	"modtx/internal/wal"
)

// Replication source: the primary side's handles, consumed by the
// cluster streamer. A replica's stream per shard is exactly the
// shard's WAL — catch-up reads the segment files (wal.ScanSegments on
// ReplDir), the live tail attaches a wal.Follower to the shard's log
// (ReplFollow) — plus the cross-shard marker log, addressed as the
// pseudo-shard wal.TxnShard throughout.

// ReplPositions returns each shard's newest committed WAL sequence and
// the marker log's: the handshake-time positions a replica must reach
// before it reports Ready.
func (s *Store) ReplPositions() (shards []uint64, marker uint64, err error) {
	if s.dur == nil || !s.dur.attached {
		return nil, 0, ErrNotDurable
	}
	shards = make([]uint64, len(s.shards))
	for i, sh := range s.shards {
		sh.feed.mu.Lock()
		shards[i] = sh.feed.seq
		sh.feed.mu.Unlock()
	}
	x := &s.dur.xfeed
	x.mu.Lock()
	marker = x.seq
	x.mu.Unlock()
	return shards, marker, nil
}

// ReplDir returns the directory holding shard's segment files (the
// marker log's for wal.TxnShard), for wal.ScanSegments /
// wal.LatestSnapshot catch-up reads.
func (s *Store) ReplDir(shard uint32) (string, error) {
	if s.dur == nil {
		return "", ErrNotDurable
	}
	if shard == wal.TxnShard {
		return s.txnDir(), nil
	}
	if int(shard) >= len(s.shards) {
		return "", errors.New("kv: no such shard")
	}
	return s.shardDir(int(shard)), nil
}

// ReplFollow attaches a live-tail follower to shard's log (the marker
// log for wal.TxnShard). See wal.Log.Follow for the low-water/overflow
// contract; the caller must Close the follower.
func (s *Store) ReplFollow(shard uint32, limitBytes int) (*wal.Follower, uint64, error) {
	if s.dur == nil || !s.dur.attached {
		return nil, 0, ErrNotDurable
	}
	var l *wal.Log
	if shard == wal.TxnShard {
		l = s.dur.xfeed.log
	} else {
		if int(shard) >= len(s.shards) {
			return nil, 0, errors.New("kv: no such shard")
		}
		l = s.shards[shard].feed.log
	}
	f, low := l.Follow(limitBytes)
	return f, low, nil
}
