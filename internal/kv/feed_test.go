package kv

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"modtx/internal/wal"
)

// collect drains events from sub until want events with the prefix
// arrived or the timeout fired.
func collect(t *testing.T, sub *Subscription, want int) []Event {
	t.Helper()
	var evs []Event
	deadline := time.After(5 * time.Second)
	for len(evs) < want {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				t.Fatalf("feed closed after %d/%d events", len(evs), want)
			}
			evs = append(evs, ev)
		case <-deadline:
			t.Fatalf("timed out after %d/%d events", len(evs), want)
		}
	}
	return evs
}

func TestSubscribeDeliversCommits(t *testing.T) {
	s := New(WithShards(2), WithMetrics(false))
	sub := s.Subscribe(context.Background(), "")
	defer sub.Close()

	if err := s.Set("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CounterAdd("c", 5); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}

	evs := collect(t, sub, 3)
	byKey := map[string][]Event{}
	for _, ev := range evs {
		byKey[ev.Key] = append(byKey[ev.Key], ev)
	}
	a := byKey["a"]
	if len(a) != 2 || a[0].Kind != wal.KindSet || string(a[0].Val) != "1" || a[1].Kind != wal.KindDelete {
		t.Fatalf("a events: %+v", a)
	}
	if a[0].Seq >= a[1].Seq {
		t.Fatalf("same-key events out of order: %+v", a)
	}
	c := byKey["c"]
	if len(c) != 1 || c[0].Kind != wal.KindCounterSet || c[0].N != 5 {
		t.Fatalf("c events: %+v", c)
	}
}

func TestSubscribePrefixFilter(t *testing.T) {
	s := New(WithShards(2), WithMetrics(false))
	sub := s.Subscribe(context.Background(), "user:")
	defer sub.Close()

	if err := s.Set("user:1", []byte("alice")); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("order:1", []byte("widget")); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("user:2", []byte("bob")); err != nil {
		t.Fatal(err)
	}

	evs := collect(t, sub, 2)
	for _, ev := range evs {
		if ev.Key != "user:1" && ev.Key != "user:2" {
			t.Fatalf("event outside prefix: %+v", ev)
		}
	}
	select {
	case ev := <-sub.Events():
		t.Fatalf("unexpected extra event: %+v", ev)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestSubscribePerShardOrder pins the ordering contract: each
// subscriber sees one shard's events in dense commit-sequence order.
func TestSubscribePerShardOrder(t *testing.T) {
	s := New(WithShards(4), WithMetrics(false))
	// A generous buffer so nothing drops and order is fully checkable.
	sub := s.SubscribeBuffer(context.Background(), "", 1<<14)
	defer sub.Close()

	const writers, each = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := s.CounterAdd(fmt.Sprintf("k%d", w%4), 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	evs := collect(t, sub, writers*each)
	if sub.Dropped() != 0 {
		t.Fatalf("dropped %d events despite the large buffer", sub.Dropped())
	}
	lastSeq := map[int]uint64{}
	for _, ev := range evs {
		if ev.Seq <= lastSeq[ev.Shard] {
			t.Fatalf("shard %d seq %d after %d", ev.Shard, ev.Seq, lastSeq[ev.Shard])
		}
		lastSeq[ev.Shard] = ev.Seq
	}
}

func TestSubscribeOverflowDropsAndCounts(t *testing.T) {
	s := New(WithShards(1), WithMetrics(false))
	sub := s.SubscribeBuffer(context.Background(), "", 1)
	defer sub.Close()

	const n = 64
	for i := 0; i < n; i++ {
		// Nobody drains: everything past the single slot must drop
		// without ever blocking the committer.
		if err := s.Set("k", []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	got := len(sub.Events()) // buffered, undelivered
	dropped := sub.Dropped()
	if got+int(dropped) != n {
		t.Fatalf("buffered %d + dropped %d != %d written", got, dropped, n)
	}
	if dropped == 0 {
		t.Fatal("expected drops with a 1-slot buffer and no consumer")
	}
	if s.WALStats().ChangefeedDropped != dropped {
		t.Fatalf("store-level dropped %d, subscription %d", s.WALStats().ChangefeedDropped, dropped)
	}
}

func TestSubscribeContextCancel(t *testing.T) {
	s := New(WithShards(1), WithMetrics(false))
	ctx, cancel := context.WithCancel(context.Background())
	sub := s.Subscribe(ctx, "")
	cancel()

	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-sub.Events():
			if !ok {
				// Closed; the subscription must also be unregistered.
				if st := s.WALStats(); st.Subscribers != 0 {
					t.Fatalf("still registered: %+v", st)
				}
				return
			}
		case <-deadline:
			t.Fatal("events channel never closed after cancellation")
		}
	}
}

func TestSubscribeCloseConcurrentWithCommits(t *testing.T) {
	s := New(WithShards(2), WithMetrics(false))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = s.Set("k", []byte("v"))
			}
		}
	}()
	// Churn subscriptions while commits fan out: Close racing deliver
	// must neither panic (send on closed channel) nor deadlock.
	for i := 0; i < 200; i++ {
		sub := s.SubscribeBuffer(context.Background(), "", 4)
		sub.Close()
	}
	close(stop)
	wg.Wait()
}

// TestSubscribeWithDurability checks the two tap consumers compose:
// the same commit both logs and feeds, with matching sequences.
func TestSubscribeWithDurability(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir, wal.Fsync)
	defer s.Close()
	sub := s.Subscribe(context.Background(), "")
	defer sub.Close()

	if err := s.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	evs := collect(t, sub, 1)
	if evs[0].Seq == 0 {
		t.Fatalf("unsequenced event: %+v", evs[0])
	}
	if st := s.WALStats(); st.Appends == 0 {
		t.Fatalf("commit fed the subscriber but not the log: %+v", st)
	}
}
