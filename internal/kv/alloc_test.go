package kv

import (
	"testing"

	"modtx/internal/stm"
)

// Allocation guards for the serving hot paths. The contract after the
// zero-allocation rework: the plain fast path and the transactional
// Get/CounterAdd steady states allocate nothing on any engine; Set pays
// exactly its two inherent allocations (the defensive value copy and
// the typed lane's box). AllocsPerRun truncates toward zero over 100
// runs, absorbing a rare GC-emptied pool refill without masking a real
// per-op allocation.

func allocStore(t *testing.T, e stm.Engine) *Store {
	t.Helper()
	s := New(WithShards(8), WithEngine(e))
	if err := s.Set("bytes-key", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CounterAdd("ctr-key", 5); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestAllocsFastPaths: the lock-free plain reads allocate nothing
// (bytes values are returned as the stored box; the int64 lane has no
// formatting at all).
func TestAllocsFastPaths(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	for _, e := range stm.Engines() {
		t.Run(e.String(), func(t *testing.T) {
			s := allocStore(t, e)
			if avg := testing.AllocsPerRun(100, func() {
				if _, ok := s.FastGet("bytes-key"); !ok {
					t.Fatal("missing key")
				}
			}); avg != 0 {
				t.Errorf("FastGet: %v allocs/op, want 0", avg)
			}
			if avg := testing.AllocsPerRun(100, func() {
				if _, ok := s.FastCounterGet("ctr-key"); !ok {
					t.Fatal("missing counter")
				}
			}); avg != 0 {
				t.Errorf("FastCounterGet: %v allocs/op, want 0", avg)
			}
		})
	}
}

// TestAllocsGet: the transactional read-only Get of a bytes key is
// allocation-free steady state (the returned slice is the stored box).
func TestAllocsGet(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	for _, e := range stm.Engines() {
		t.Run(e.String(), func(t *testing.T) {
			s := allocStore(t, e)
			for i := 0; i < 32; i++ { // warm the op and Tx pools
				if _, ok, err := s.Get("bytes-key"); err != nil || !ok {
					t.Fatal("missing key")
				}
			}
			avg := testing.AllocsPerRun(100, func() {
				if _, ok, err := s.Get("bytes-key"); err != nil || !ok {
					t.Fatal("missing key")
				}
			})
			if avg != 0 {
				t.Errorf("Get: %v allocs/op, want 0", avg)
			}
		})
	}
}

// TestAllocsCounterOps: the int64 compatibility lane — CounterAdd and
// CounterGet — runs transactions with no boxing, no formatting and no
// allocation.
func TestAllocsCounterOps(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	for _, e := range stm.Engines() {
		t.Run(e.String(), func(t *testing.T) {
			s := allocStore(t, e)
			for i := 0; i < 32; i++ {
				if _, err := s.CounterAdd("ctr-key", 1); err != nil {
					t.Fatal(err)
				}
			}
			if avg := testing.AllocsPerRun(100, func() {
				if _, err := s.CounterAdd("ctr-key", 1); err != nil {
					t.Fatal(err)
				}
			}); avg != 0 {
				t.Errorf("CounterAdd: %v allocs/op, want 0", avg)
			}
			if avg := testing.AllocsPerRun(100, func() {
				if _, ok, err := s.CounterGet("ctr-key"); err != nil || !ok {
					t.Fatal("missing counter")
				}
			}); avg != 0 {
				t.Errorf("CounterGet: %v allocs/op, want 0", avg)
			}
		})
	}
}

// TestAllocsInstrumented: full observability — every call sampled, both
// clock reads taken, histograms recorded — adds zero allocations to the
// read and counter hot paths. The metrics write side is atomic adds into
// preallocated buckets plus a pooled tick; nothing escapes.
func TestAllocsInstrumented(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	for _, e := range stm.Engines() {
		t.Run(e.String(), func(t *testing.T) {
			s := New(WithShards(8), WithEngine(e), WithMetricsSampling(1))
			if err := s.Set("bytes-key", []byte("payload")); err != nil {
				t.Fatal(err)
			}
			if _, err := s.CounterAdd("ctr-key", 5); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 32; i++ { // warm the op and Tx pools
				if _, ok, err := s.Get("bytes-key"); err != nil || !ok {
					t.Fatal("missing key")
				}
				if _, err := s.CounterAdd("ctr-key", 1); err != nil {
					t.Fatal(err)
				}
			}
			if avg := testing.AllocsPerRun(100, func() {
				if _, ok, err := s.Get("bytes-key"); err != nil || !ok {
					t.Fatal("missing key")
				}
			}); avg != 0 {
				t.Errorf("instrumented Get: %v allocs/op, want 0", avg)
			}
			if avg := testing.AllocsPerRun(100, func() {
				if _, err := s.CounterAdd("ctr-key", 1); err != nil {
					t.Fatal(err)
				}
			}); avg != 0 {
				t.Errorf("instrumented CounterAdd: %v allocs/op, want 0", avg)
			}
			if avg := testing.AllocsPerRun(100, func() {
				if _, ok := s.FastGet("bytes-key"); !ok {
					t.Fatal("missing key")
				}
			}); avg != 0 {
				t.Errorf("instrumented FastGet: %v allocs/op, want 0", avg)
			}
			// The guard must be exercising the instrumentation, not a
			// disabled store.
			if s.OpLatency(OpGet).Count == 0 || s.OpLatency(OpCounterAdd).Count == 0 {
				t.Fatal("sampling=1 store recorded no latencies; guard is vacuous")
			}
		})
	}
}

// TestAllocsDurabilityOff: the durability wiring costs the non-durable
// hot paths nothing but one atomic load — Get and CounterAdd stay at
// zero allocations and Set within its two inherent ones on a store
// opened without WithDurability (explicitly, through the same Open
// path a durable store takes).
func TestAllocsDurabilityOff(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	val := []byte("steady-state-value")
	for _, e := range stm.Engines() {
		t.Run(e.String(), func(t *testing.T) {
			s, err := Open(WithShards(8), WithEngine(e))
			if err != nil {
				t.Fatal(err)
			}
			if s.Durable() || s.tapOn.Load() {
				t.Fatal("store unexpectedly durable or tapped")
			}
			if err := s.Set("bytes-key", val); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 32; i++ { // warm the op and Tx pools
				if _, ok, er := s.Get("bytes-key"); er != nil || !ok {
					t.Fatal("missing key")
				}
				if _, er := s.CounterAdd("ctr-key", 1); er != nil {
					t.Fatal(er)
				}
				if er := s.Set("bytes-key", val); er != nil {
					t.Fatal(er)
				}
			}
			if avg := testing.AllocsPerRun(100, func() {
				if _, ok, er := s.Get("bytes-key"); er != nil || !ok {
					t.Fatal("missing key")
				}
			}); avg != 0 {
				t.Errorf("Get with durability off: %v allocs/op, want 0", avg)
			}
			if avg := testing.AllocsPerRun(100, func() {
				if _, er := s.CounterAdd("ctr-key", 1); er != nil {
					t.Fatal(er)
				}
			}); avg != 0 {
				t.Errorf("CounterAdd with durability off: %v allocs/op, want 0", avg)
			}
			if avg := testing.AllocsPerRun(100, func() {
				if er := s.Set("bytes-key", val); er != nil {
					t.Fatal(er)
				}
			}); avg > 2 {
				t.Errorf("Set with durability off: %v allocs/op, want <= 2 (copy + box)", avg)
			}
		})
	}
}

// TestAllocsSetBounded: Set's only remaining allocations are inherent to
// its semantics — the defensive copy of the incoming value and the
// typed lane's immutable box. Anything above two means plumbing
// regressed.
func TestAllocsSetBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	val := []byte("steady-state-value")
	for _, e := range stm.Engines() {
		t.Run(e.String(), func(t *testing.T) {
			s := allocStore(t, e)
			for i := 0; i < 32; i++ {
				if err := s.Set("bytes-key", val); err != nil {
					t.Fatal(err)
				}
			}
			avg := testing.AllocsPerRun(100, func() {
				if err := s.Set("bytes-key", val); err != nil {
					t.Fatal(err)
				}
			})
			if avg > 2 {
				t.Errorf("Set: %v allocs/op, want <= 2 (copy + box)", avg)
			}
		})
	}
}
