package kv

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"modtx/internal/stm"
)

// kvEngines is every registered engine: the store-level suite runs
// against each, so a new engine cannot merge without passing it.
var kvEngines = stm.Engines()

func TestShardRoundsToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 16}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {7, 8}, {8, 8}, {9, 16}, {33, 64},
	} {
		if got := New(WithShards(tc.in)).NumShards(); got != tc.want {
			t.Errorf("Shards=%d: got %d shards, want %d", tc.in, got, tc.want)
		}
	}
}

func TestShardRouting(t *testing.T) {
	s := New(WithShards(16))
	hit := make([]int, s.NumShards())
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("key-%d", i)
		i1 := s.ShardOf(k)
		i2 := s.ShardOf(k)
		if i1 != i2 {
			t.Fatalf("routing is not deterministic: %d vs %d", i1, i2)
		}
		if i1 < 0 || i1 >= s.NumShards() {
			t.Fatalf("shard %d out of range", i1)
		}
		hit[i1]++
	}
	// FNV-1a should spread 10k keys so every one of 16 shards gets a
	// reasonable share (binomial mean 625; tolerate wide slack).
	for i, n := range hit {
		if n < 300 || n > 1000 {
			t.Errorf("shard %d got %d of 10000 keys: suspicious skew", i, n)
		}
	}
	// A key's route must agree with where operations land.
	s2 := New(WithShards(4))
	if err := s2.Set("alpha", []byte("7")); err != nil {
		t.Fatal(err)
	}
	sh := s2.shards[s2.ShardOf("alpha")]
	if sh.lookup("alpha") == nil {
		t.Fatal("Set stored the key on a different shard than ShardOf reports")
	}
}

func TestBasicOps(t *testing.T) {
	for _, e := range kvEngines {
		t.Run(e.String(), func(t *testing.T) {
			s := New(WithShards(4), WithEngine(e))
			if _, ok, _ := s.Get("missing"); ok {
				t.Fatal("Get of missing key reported present")
			}
			if _, ok := s.FastGet("missing"); ok {
				t.Fatal("FastGet of missing key reported present")
			}
			if err := s.Set("a", []byte("hello world")); err != nil {
				t.Fatal(err)
			}
			if v, ok, err := s.Get("a"); err != nil || !ok || string(v) != "hello world" {
				t.Fatalf("Get(a)=%q,%v,%v", v, ok, err)
			}
			if v, ok := s.FastGet("a"); !ok || string(v) != "hello world" {
				t.Fatalf("FastGet(a)=%q,%v", v, ok)
			}
			// Arbitrary binary round-trips, including NUL and high bytes.
			blob := []byte{0, 1, 2, 255, 254, 'x', 0}
			if err := s.Set("blob", blob); err != nil {
				t.Fatal(err)
			}
			if v, _, _ := s.Get("blob"); !bytes.Equal(v, blob) {
				t.Fatalf("binary value mangled: %v", v)
			}
			// The store copies on ingest: mutating the caller's buffer
			// after Set must not change the stored value.
			buf := []byte("mutable")
			if err := s.Set("m", buf); err != nil {
				t.Fatal(err)
			}
			buf[0] = 'X'
			if v, _, _ := s.Get("m"); string(v) != "mutable" {
				t.Fatalf("stored value aliased the caller's buffer: %q", v)
			}
			// Counter lane on the int64 specialization.
			if v, err := s.CounterAdd("ctr", 5); err != nil || v != 5 {
				t.Fatalf("CounterAdd(ctr,5)=%d,%v", v, err)
			}
			if v, err := s.CounterAdd("ctr", -2); err != nil || v != 3 {
				t.Fatalf("CounterAdd(ctr,-2)=%d,%v", v, err)
			}
			if v, ok := s.FastCounterGet("ctr"); !ok || v != 3 {
				t.Fatalf("FastCounterGet(ctr)=%d,%v", v, ok)
			}
			if v, ok, err := s.CounterGet("ctr"); err != nil || !ok || v != 3 {
				t.Fatalf("CounterGet(ctr)=%d,%v,%v", v, ok, err)
			}
			// Reads surface counters as decimal bytes.
			if v, ok, _ := s.Get("ctr"); !ok || string(v) != "3" {
				t.Fatalf("Get(ctr)=%q,%v, want \"3\"", v, ok)
			}
			if v, ok := s.FastGet("ctr"); !ok || string(v) != "3" {
				t.Fatalf("FastGet(ctr)=%q,%v", v, ok)
			}
			if err := s.MSet(map[string][]byte{"x": []byte("10"), "y": []byte("two words"), "z": nil}); err != nil {
				t.Fatal(err)
			}
			got, err := s.MGet("x", "y", "z", "missing")
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 3 || string(got["x"]) != "10" || string(got["y"]) != "two words" {
				t.Fatalf("MGet=%v", got)
			}
			if n := s.Len(); n != 7 {
				t.Fatalf("Len=%d, want 7", n)
			}
			st := s.Stats()
			if st.Commits == 0 || st.FastGets == 0 || st.Keys != 7 {
				t.Fatalf("stats not plumbed: %v", st)
			}
		})
	}
}

func TestWrongTypeErrors(t *testing.T) {
	s := New(WithShards(4))
	if err := s.Set("str", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CounterAdd("str", 1); !errors.Is(err, ErrWrongType) {
		t.Fatalf("CounterAdd on bytes key: err=%v, want ErrWrongType", err)
	}
	if _, _, err := s.CounterGet("str"); !errors.Is(err, ErrWrongType) {
		t.Fatalf("CounterGet on bytes key: err=%v", err)
	}
	if _, err := s.CounterAdd("n", 7); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("n", []byte("v")); !errors.Is(err, ErrWrongType) {
		t.Fatalf("Set on counter key: err=%v, want ErrWrongType", err)
	}
	if _, err := s.Privatize("fresh1", "n"); !errors.Is(err, ErrWrongType) {
		t.Fatalf("Privatize on counter key: err=%v", err)
	}
	if err := s.Publish(map[string][]byte{"fresh2": []byte("v"), "n": []byte("v")}); !errors.Is(err, ErrWrongType) {
		t.Fatalf("Publish on counter key: err=%v", err)
	}
	// The failed calls must not leave phantom keys behind.
	for _, k := range []string{"fresh1", "fresh2"} {
		if _, ok, _ := s.Get(k); ok {
			t.Fatalf("failed Privatize/Publish created phantom key %q", k)
		}
	}
	if _, ok := s.FastCounterGet("str"); ok {
		t.Fatal("FastCounterGet on bytes key reported ok")
	}
	// Inside transactions the mismatch aborts with no partial effects.
	err := s.Update([]string{"str", "n"}, func(t *Txn) error {
		t.Add("str", 1)
		return nil
	})
	if !errors.Is(err, ErrWrongType) {
		t.Fatalf("Txn.Add on bytes key: err=%v", err)
	}
	if v, _, _ := s.Get("str"); string(v) != "v" {
		t.Fatalf("failed txn left effects: %q", v)
	}
	err = s.Update([]string{"str", "n"}, func(t *Txn) error {
		t.Set("n", []byte("x"))
		return nil
	})
	if !errors.Is(err, ErrWrongType) {
		t.Fatalf("Txn.Set on counter key: err=%v", err)
	}
}

func TestUpdateFootprint(t *testing.T) {
	s := New(WithShards(8))
	s.EnsureKeys("in")
	// Find a key routed to a different shard than "in".
	other := ""
	for i := 0; ; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if s.ShardOf(k) != s.ShardOf("in") {
			other = k
			break
		}
	}
	err := s.Update([]string{"in"}, func(t *Txn) error {
		t.Set(other, []byte("1"))
		return nil
	})
	if err == nil {
		t.Fatal("out-of-footprint write did not error")
	}
	if _, ok, _ := s.Get(other); ok {
		t.Fatal("out-of-footprint write took effect")
	}
	// Undeclared keys on declared shards are fine.
	same := ""
	for i := 0; ; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if k != "in" && s.ShardOf(k) == s.ShardOf("in") {
			same = k
			break
		}
	}
	if err := s.Update([]string{"in"}, func(t *Txn) error {
		t.Set(same, []byte("42"))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := s.Get(same); !ok || string(v) != "42" {
		t.Fatalf("same-shard undeclared write lost: %q,%v", v, ok)
	}
}

func TestEnsureKeysBulk(t *testing.T) {
	s := New(WithShards(4))
	keys := make([]string, 500)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%03d", i)
	}
	s.EnsureKeys(keys...)
	if n := s.Len(); n != 500 {
		t.Fatalf("Len=%d, want 500", n)
	}
	s.EnsureKeys(keys...) // idempotent
	if n := s.Len(); n != 500 {
		t.Fatalf("Len after re-ensure=%d, want 500", n)
	}
	for _, k := range keys {
		if _, ok := s.FastGet(k); !ok {
			t.Fatalf("key %s missing after EnsureKeys", k)
		}
	}
	ctrs := []string{"c1", "c2", "c3"}
	s.EnsureCounters(ctrs...)
	for _, k := range ctrs {
		if v, ok := s.FastCounterGet(k); !ok || v != 0 {
			t.Fatalf("counter %s: %d,%v", k, v, ok)
		}
	}
}

// TestFastGetQuiesceConsistency forces the §3.5 delayed-writeback anomaly
// on the lazy engine and shows that (a) the plain fast path can miss a
// logically committed value, and (b) Privatize's quiescence fence restores
// agreement between FastGet and the transactional state.
func TestFastGetQuiesceConsistency(t *testing.T) {
	s := New(WithShards(1), WithEngine(stm.Lazy))
	s.EnsureKeys("x")
	inst := s.ShardSTM(0)

	inWindow := make(chan struct{})
	resume := make(chan struct{})
	var armed atomic.Bool
	armed.Store(true)
	inst.WritebackDelay = func() {
		if armed.CompareAndSwap(true, false) {
			close(inWindow)
			<-resume
		}
	}
	defer func() { inst.WritebackDelay = nil }()

	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := s.Set("x", []byte("committed")); err != nil {
			t.Errorf("Set: %v", err)
		}
	}()
	<-inWindow
	// The writer has validated (logically committed) but not written back:
	// the plain fast path still sees the old value. This is the anomaly,
	// not a bug — the model admits it for unfenced mixed access.
	if v, _ := s.FastGet("x"); v != nil {
		t.Fatalf("expected stale fast read inside the writeback window, got %q", v)
	}
	go func() { close(resume) }()
	// Privatize fences: after it returns, the writer has drained and the
	// plain path must agree with the transactional state.
	vars, err := s.Privatize("x")
	if err != nil {
		t.Fatal(err)
	}
	if v := vars[0].Load(); string(v) != "committed" {
		t.Fatalf("after Privatize fence: handle reads %q, want committed", v)
	}
	if v, _ := s.FastGet("x"); string(v) != "committed" {
		t.Fatalf("after Privatize fence: FastGet=%q, want committed", v)
	}
	<-done
	if st := s.Stats(); st.Quiesces == 0 {
		t.Fatalf("quiesce counter not plumbed: %v", st)
	}
}

func TestPublish(t *testing.T) {
	for _, e := range kvEngines {
		t.Run(e.String(), func(t *testing.T) {
			s := New(WithShards(4), WithEngine(e))
			if err := s.Publish(map[string][]byte{"p": []byte("nine"), "q": []byte("8")}); err != nil {
				t.Fatal(err)
			}
			// A transaction starting after Publish observes the values.
			got, err := s.MGet("p", "q")
			if err != nil {
				t.Fatal(err)
			}
			if string(got["p"]) != "nine" || string(got["q"]) != "8" {
				t.Fatalf("published values not visible transactionally: %v", got)
			}
		})
	}
}

// TestFastGetCountersPerShard checks the satellite change: fast-path
// counts are accumulated per shard (padded) and aggregated in Stats.
func TestFastGetCountersPerShard(t *testing.T) {
	s := New(WithShards(4))
	s.EnsureKeys("a", "b", "c", "d", "e")
	for i := 0; i < 10; i++ {
		for _, k := range []string{"a", "b", "c", "d", "e"} {
			s.FastGet(k)
		}
	}
	if got := s.Stats().FastGets; got != 50 {
		t.Fatalf("aggregated FastGets=%d, want 50", got)
	}
	var perShard uint64
	for i := range s.fastGets {
		perShard += s.fastGets[i].n.Load()
	}
	if perShard != 50 {
		t.Fatalf("per-shard counters sum to %d, want 50", perShard)
	}
}

// TestUpdateCtx covers the context plumbing end to end at the store
// level: a canceled context surfaces stm.ErrCanceled with no effects.
func TestUpdateCtx(t *testing.T) {
	s := New(WithShards(4))
	s.EnsureCounters("a", "b")
	// Block shard commits forever by corrupting a var is internal to stm;
	// at the kv level it suffices to check the pre-canceled path.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.UpdateCtx(ctx, []string{"a", "b"}, func(t *Txn) error {
		t.Add("a", 1)
		t.Add("b", 1)
		return nil
	})
	if !errors.Is(err, stm.ErrCanceled) {
		t.Fatalf("err=%v, want stm.ErrCanceled", err)
	}
	if v, _ := s.FastCounterGet("a"); v != 0 {
		t.Fatalf("canceled update leaked: a=%d", v)
	}
}
