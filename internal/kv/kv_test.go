package kv

import (
	"fmt"
	"sync/atomic"
	"testing"

	"modtx/internal/stm"
)

var kvEngines = []stm.Engine{stm.Lazy, stm.Eager, stm.GlobalLock}

func TestShardRoundsToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 16}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {7, 8}, {8, 8}, {9, 16}, {33, 64},
	} {
		if got := New(Options{Shards: tc.in}).NumShards(); got != tc.want {
			t.Errorf("Shards=%d: got %d shards, want %d", tc.in, got, tc.want)
		}
	}
}

func TestShardRouting(t *testing.T) {
	s := New(Options{Shards: 16})
	hit := make([]int, s.NumShards())
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("key-%d", i)
		i1 := s.ShardOf(k)
		i2 := s.ShardOf(k)
		if i1 != i2 {
			t.Fatalf("routing is not deterministic: %d vs %d", i1, i2)
		}
		if i1 < 0 || i1 >= s.NumShards() {
			t.Fatalf("shard %d out of range", i1)
		}
		hit[i1]++
	}
	// FNV-1a should spread 10k keys so every one of 16 shards gets a
	// reasonable share (binomial mean 625; tolerate wide slack).
	for i, n := range hit {
		if n < 300 || n > 1000 {
			t.Errorf("shard %d got %d of 10000 keys: suspicious skew", i, n)
		}
	}
	// A key's route must agree with where operations land.
	s2 := New(Options{Shards: 4})
	if err := s2.Set("alpha", 7); err != nil {
		t.Fatal(err)
	}
	sh := s2.shards[s2.ShardOf("alpha")]
	if sh.lookup("alpha") == nil {
		t.Fatal("Set stored the key on a different shard than ShardOf reports")
	}
}

func TestBasicOps(t *testing.T) {
	for _, e := range kvEngines {
		t.Run(e.String(), func(t *testing.T) {
			s := New(Options{Shards: 4, Engine: e})
			if _, ok, _ := s.Get("missing"); ok {
				t.Fatal("Get of missing key reported present")
			}
			if _, ok := s.FastGet("missing"); ok {
				t.Fatal("FastGet of missing key reported present")
			}
			if err := s.Set("a", 1); err != nil {
				t.Fatal(err)
			}
			if v, ok, err := s.Get("a"); err != nil || !ok || v != 1 {
				t.Fatalf("Get(a)=%d,%v want 1,true", v, ok)
			}
			if v, ok := s.FastGet("a"); !ok || v != 1 {
				t.Fatalf("FastGet(a)=%d,%v want 1,true", v, ok)
			}
			if v, err := s.Add("ctr", 5); err != nil || v != 5 {
				t.Fatalf("Add(ctr,5)=%d,%v", v, err)
			}
			if v, err := s.Add("ctr", -2); err != nil || v != 3 {
				t.Fatalf("Add(ctr,-2)=%d,%v", v, err)
			}
			if err := s.MSet(map[string]int64{"x": 10, "y": 20, "z": 30}); err != nil {
				t.Fatal(err)
			}
			got, err := s.MGet("x", "y", "z", "missing")
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 3 || got["x"] != 10 || got["y"] != 20 || got["z"] != 30 {
				t.Fatalf("MGet=%v", got)
			}
			if n := s.Len(); n != 5 {
				t.Fatalf("Len=%d, want 5", n)
			}
			st := s.Stats()
			if st.Commits == 0 || st.FastGets == 0 || st.Keys != 5 {
				t.Fatalf("stats not plumbed: %v", st)
			}
		})
	}
}

func TestUpdateFootprint(t *testing.T) {
	s := New(Options{Shards: 8})
	s.EnsureKeys("in")
	// Find a key routed to a different shard than "in".
	other := ""
	for i := 0; ; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if s.ShardOf(k) != s.ShardOf("in") {
			other = k
			break
		}
	}
	err := s.Update([]string{"in"}, func(t *Txn) error {
		t.Set(other, 1)
		return nil
	})
	if err == nil {
		t.Fatal("out-of-footprint write did not error")
	}
	if _, ok, _ := s.Get(other); ok {
		t.Fatal("out-of-footprint write took effect")
	}
	// Undeclared keys on declared shards are fine.
	same := ""
	for i := 0; ; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if k != "in" && s.ShardOf(k) == s.ShardOf("in") {
			same = k
			break
		}
	}
	if err := s.Update([]string{"in"}, func(t *Txn) error {
		t.Set(same, 42)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := s.Get(same); !ok || v != 42 {
		t.Fatalf("same-shard undeclared write lost: %d,%v", v, ok)
	}
}

func TestEnsureKeysBulk(t *testing.T) {
	s := New(Options{Shards: 4})
	keys := make([]string, 500)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%03d", i)
	}
	s.EnsureKeys(keys...)
	if n := s.Len(); n != 500 {
		t.Fatalf("Len=%d, want 500", n)
	}
	s.EnsureKeys(keys...) // idempotent
	if n := s.Len(); n != 500 {
		t.Fatalf("Len after re-ensure=%d, want 500", n)
	}
	for _, k := range keys {
		if _, ok := s.FastGet(k); !ok {
			t.Fatalf("key %s missing after EnsureKeys", k)
		}
	}
}

// TestFastGetQuiesceConsistency forces the §3.5 delayed-writeback anomaly
// on the lazy engine and shows that (a) the plain fast path can miss a
// logically committed value, and (b) Privatize's quiescence fence restores
// agreement between FastGet and the transactional state.
func TestFastGetQuiesceConsistency(t *testing.T) {
	s := New(Options{Shards: 1, Engine: stm.Lazy})
	s.EnsureKeys("x")
	inst := s.ShardSTM(0)

	inWindow := make(chan struct{})
	resume := make(chan struct{})
	var armed atomic.Bool
	armed.Store(true)
	inst.WritebackDelay = func() {
		if armed.CompareAndSwap(true, false) {
			close(inWindow)
			<-resume
		}
	}
	defer func() { inst.WritebackDelay = nil }()

	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := s.Set("x", 1); err != nil {
			t.Errorf("Set: %v", err)
		}
	}()
	<-inWindow
	// The writer has validated (logically committed) but not written back:
	// the plain fast path still sees the old value. This is the anomaly,
	// not a bug — the model admits it for unfenced mixed access.
	if v, _ := s.FastGet("x"); v != 0 {
		t.Fatalf("expected stale fast read inside the writeback window, got %d", v)
	}
	go func() { close(resume) }()
	// Privatize fences: after it returns, the writer has drained and the
	// plain path must agree with the transactional state.
	vars := s.Privatize("x")
	if v := vars[0].Load(); v != 1 {
		t.Fatalf("after Privatize fence: handle reads %d, want 1", v)
	}
	if v, _ := s.FastGet("x"); v != 1 {
		t.Fatalf("after Privatize fence: FastGet=%d, want 1", v)
	}
	<-done
	if st := s.Stats(); st.Quiesces == 0 {
		t.Fatalf("quiesce counter not plumbed: %v", st)
	}
}

func TestPublish(t *testing.T) {
	for _, e := range kvEngines {
		t.Run(e.String(), func(t *testing.T) {
			s := New(Options{Shards: 4, Engine: e})
			if err := s.Publish(map[string]int64{"p": 9, "q": 8}); err != nil {
				t.Fatal(err)
			}
			// A transaction starting after Publish observes the values.
			got, err := s.MGet("p", "q")
			if err != nil {
				t.Fatal(err)
			}
			if got["p"] != 9 || got["q"] != 8 {
				t.Fatalf("published values not visible transactionally: %v", got)
			}
		})
	}
}
