package kv

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"modtx/internal/stm"
)

// TestCrossShardTransferStress is the acceptance stress test: 4 goroutines
// doing bank-style transfers between counter accounts spread over 2
// shards, with a consistent transactional observer and a mixed-mode plain
// reader running concurrently, while a fourth lane hammers byte-valued
// keys through Set/Get. The total balance must hold at every
// transactional snapshot and at the end. Run under -race in CI.
func TestCrossShardTransferStress(t *testing.T) {
	for _, e := range stm.Engines() {
		t.Run(e.String(), func(t *testing.T) {
			const (
				accounts = 64
				initial  = 1000
				workers  = 4
				iters    = 400
			)
			s := New(WithShards(2), WithEngine(e))
			keys := make([]string, accounts)
			shardsHit := make(map[int]bool)
			for i := range keys {
				keys[i] = fmt.Sprintf("acct-%02d", i)
				shardsHit[s.ShardOf(keys[i])] = true
			}
			if len(shardsHit) < 2 {
				t.Fatalf("accounts all landed on one shard; need a cross-shard workload")
			}
			s.EnsureCounters(keys...)
			if err := s.Update(keys, func(tx *Txn) error {
				for _, k := range keys {
					tx.Add(k, initial)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			const total = accounts * initial

			var wg sync.WaitGroup
			stop := make(chan struct{})

			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < iters; i++ {
						from := keys[rng.Intn(accounts)]
						to := keys[rng.Intn(accounts)]
						if from == to {
							continue
						}
						amt := int64(rng.Intn(20) + 1)
						err := s.Update([]string{from, to}, func(tx *Txn) error {
							tx.Add(from, -amt)
							tx.Add(to, amt)
							return nil
						})
						if err != nil {
							t.Errorf("transfer %s->%s: %v", from, to, err)
							return
						}
					}
				}(int64(w + 1))
			}

			// Consistent observer: a cross-shard transactional snapshot of
			// every account must always sum to the invariant.
			obsErr := make(chan error, 1)
			var obsWg sync.WaitGroup
			obsWg.Add(1)
			go func() {
				defer obsWg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					var sum int64
					err := s.Update(keys, func(tx *Txn) error {
						sum = 0
						for _, k := range keys {
							sum += tx.Add(k, 0)
						}
						return nil
					})
					if err != nil {
						obsErr <- err
						return
					}
					if sum != total {
						obsErr <- fmt.Errorf("torn cross-shard snapshot: sum=%d, want %d", sum, total)
						return
					}
				}
			}()

			// Mixed-mode plain reader: values are racy by design; this
			// exercises the FastCounterGet path for the race detector,
			// asserting only that present keys stay present.
			var fastWg sync.WaitGroup
			fastWg.Add(1)
			go func() {
				defer fastWg.Done()
				rng := rand.New(rand.NewSource(99))
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, ok := s.FastCounterGet(keys[rng.Intn(accounts)]); !ok {
						t.Error("account key vanished from the fast path")
						return
					}
				}
			}()

			// Byte-value lane: concurrent Set/Get/FastGet of blobs on the
			// same store must not disturb the counter invariant.
			var blobWg sync.WaitGroup
			blobWg.Add(1)
			go func() {
				defer blobWg.Done()
				rng := rand.New(rand.NewSource(7))
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					k := fmt.Sprintf("blob-%d", rng.Intn(16))
					if err := s.Set(k, []byte(fmt.Sprintf("payload-%d", i))); err != nil {
						t.Errorf("blob set: %v", err)
						return
					}
					s.FastGet(k)
					if _, _, err := s.Get(k); err != nil {
						t.Errorf("blob get: %v", err)
						return
					}
				}
			}()

			wg.Wait()
			close(stop)
			obsWg.Wait()
			fastWg.Wait()
			blobWg.Wait()
			select {
			case err := <-obsErr:
				t.Fatal(err)
			default:
			}

			var sum int64
			for _, k := range keys {
				v, ok, err := s.CounterGet(k)
				if err != nil || !ok {
					t.Fatalf("CounterGet(%s): %v,%v", k, ok, err)
				}
				sum += v
			}
			if sum != total {
				t.Fatalf("final sum=%d, want %d", sum, total)
			}
			if st := s.Stats(); st.MultiCommits == 0 {
				t.Fatalf("expected cross-shard commits in stats: %v", st)
			}
		})
	}
}
