package kv

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"modtx/internal/stm"
	"modtx/internal/wal"
)

// The crash-recovery torture test: commit transactions concurrently,
// then simulate a crash by corrupting or truncating the log tail at a
// random offset, recover, and check the recovered state is a
// commit-order prefix — on every engine.
//
// The prefix witness is a per-shard invariant pair: every transaction
// on a shard increments its counter key and sets its mark key to the
// new value in the same (single-shard) transaction. Any commit-order
// prefix of that history satisfies counter == mark == number of
// transactions applied; a recovery that tore a transaction apart,
// reordered commits, or resurrected a lost suffix breaks the equality.

// torturePairs finds, for each shard, a counter key and a mark key
// routed to it, so each invariant pair lives entirely on one shard
// (durability's prefix guarantee is per shard).
func torturePairs(s *Store) (ctr, mark []string) {
	ctr = make([]string, s.NumShards())
	mark = make([]string, s.NumShards())
	missing := 2 * s.NumShards()
	for i := 0; missing > 0; i++ {
		k := fmt.Sprintf("ctr-%d", i)
		if sh := s.ShardOf(k); ctr[sh] == "" {
			ctr[sh], missing = k, missing-1
		}
		m := fmt.Sprintf("mark-%d", i)
		if sh := s.ShardOf(m); mark[sh] == "" {
			mark[sh], missing = m, missing-1
		}
	}
	return ctr, mark
}

// mangleTail simulates a crash plus disk damage in one shard
// directory: with the given rng it either truncates the newest segment
// at a random offset or flips one random byte in its tail half.
// Returns a description for the failure message.
func mangleTail(t *testing.T, dir string, rng *rand.Rand) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, ent := range ents {
		if filepath.Ext(ent.Name()) == ".wal" {
			segs = append(segs, filepath.Join(dir, ent.Name()))
		}
	}
	if len(segs) == 0 {
		return "no segments"
	}
	sort.Strings(segs)
	path := segs[len(segs)-1]
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	size := fi.Size()
	if size == 0 {
		return "empty segment"
	}
	if rng.Intn(2) == 0 {
		off := rng.Int63n(size)
		if err := os.Truncate(path, off); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("truncated %s at %d/%d", filepath.Base(path), off, size)
	}
	off := size/2 + rng.Int63n(size-size/2)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 1 << uint(rng.Intn(8))
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("flipped a bit of %s at %d/%d", filepath.Base(path), off, size)
}

func TestCrashRecoveryTorture(t *testing.T) {
	for _, eng := range stm.Engines() {
		t.Run(eng.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(0x70217 + int64(eng)))
			dir := t.TempDir()
			const rounds = 4
			var prev []int64 // previous round's recovered counters
			for round := 0; round < rounds; round++ {
				s, err := Open(
					WithShards(2),
					WithEngine(eng),
					WithMetrics(false),
					WithDurability(dir, wal.None), // crash consistency comes from the chain, not fsync
					WithWALSegmentBytes(2048),     // small segments: corruption hits rotated files too
				)
				if err != nil {
					t.Fatalf("round %d: Open: %v", round, err)
				}
				ctr, mark := torturePairs(s)

				// Recovered state from the previous round must already
				// satisfy the invariant and not exceed what was committed.
				for sh := 0; sh < s.NumShards(); sh++ {
					c, _, _ := s.CounterGet(ctr[sh])
					mv, ok, _ := s.Get(mark[sh])
					want := ""
					if c > 0 {
						want = fmt.Sprint(c)
					} else if ok {
						t.Fatalf("round %d shard %d: mark %q exists with zero counter", round, sh, mv)
					}
					if c > 0 && string(mv) != want {
						t.Fatalf("round %d shard %d: counter %d but mark %q — not a commit prefix", round, sh, c, mv)
					}
					if prev != nil && c > prev[sh] {
						t.Fatalf("round %d shard %d: recovered counter %d exceeds committed %d", round, sh, c, prev[sh])
					}
				}

				// Commit concurrently: the invariant transactions plus
				// scratch set/delete churn for op-kind coverage.
				const writers, each = 4, 40
				var wg sync.WaitGroup
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for i := 0; i < each; i++ {
							sh := (w + i) % 2
							keys := []string{ctr[sh], mark[sh]}
							if err := s.Update(keys, func(tx *Txn) error {
								n := tx.Add(keys[0], 1)
								tx.Set(keys[1], []byte(fmt.Sprint(n)))
								return nil
							}); err != nil {
								t.Error(err)
								return
							}
							scratch := fmt.Sprintf("scratch-%d-%d", w, i%5)
							if i%3 == 0 {
								_, _ = s.Delete(scratch)
							} else {
								_ = s.Set(scratch, []byte("x"))
							}
						}
					}(w)
				}
				wg.Wait()

				prev = make([]int64, s.NumShards())
				for sh := range prev {
					prev[sh], _, _ = s.CounterGet(ctr[sh])
				}
				// Crash: no Close — the logs are simply abandoned (their
				// batchers may be mid-write; the files hold whatever made
				// it to the page cache) — then damage the tails.
				for sh := 0; sh < s.NumShards(); sh++ {
					sub := filepath.Join(dir, fmt.Sprintf("shard-%04d", sh))
					t.Logf("round %d shard %d: %s", round, sh, mangleTail(t, sub, rng))
				}
				_ = s.Close() // release the batchers so TempDir can clean up
			}
		})
	}
}

// TestTortureRecoveredStoreStaysUsable reopens a damaged store and
// keeps writing: recovery must leave a log that extends cleanly.
func TestTortureRecoveredStoreStaysUsable(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(42))
	s, err := Open(WithShards(2), WithMetrics(false), WithDurability(dir, wal.Fsync))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := s.Set(fmt.Sprintf("k%02d", i), []byte("first")); err != nil {
			t.Fatal(err)
		}
	}
	for sh := 0; sh < 2; sh++ {
		mangleTail(t, filepath.Join(dir, fmt.Sprintf("shard-%04d", sh)), rng)
	}
	_ = s.Close()

	r, err := Open(WithShards(2), WithMetrics(false), WithDurability(dir, wal.Fsync))
	if err != nil {
		t.Fatalf("reopen after damage: %v", err)
	}
	// Overwrite everything, close cleanly, reopen: the second
	// generation must be fully recovered.
	for i := 0; i < 100; i++ {
		if err := r.Set(fmt.Sprintf("k%02d", i), []byte("second")); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := Open(WithShards(2), WithMetrics(false), WithDurability(dir, wal.Fsync))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 100; i++ {
		if v, ok, _ := f.Get(fmt.Sprintf("k%02d", i)); !ok || string(v) != "second" {
			t.Fatalf("k%02d = %q, %v", i, v, ok)
		}
	}
}
