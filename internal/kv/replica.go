package kv

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"modtx/internal/wal"
)

// Replica: the follower side of WAL shipping. A Replica wraps an
// in-memory Store and applies the primary's per-shard WAL records —
// plus the cross-shard marker stream — through real transactions on
// the local store, so the replica's own engines (any of the four)
// provide the same isolation to its readers that the primary's do.
//
// What a replica observer may see (the replication contract, litmus-
// tested in replica_test.go and documented in the README):
//
//   - Per-shard prefix, always: shard records apply in the primary's
//     per-shard commit order, each as one local transaction, so any
//     reader sees a dense prefix of each shard's history.
//   - Cross-shard transactions surface atomically: a record flagged
//     as a cross-shard participant is held at the head of its shard's
//     apply queue until its commit marker and every sibling record
//     have arrived, then all participants apply as ONE local
//     cross-shard transaction. A transactional reader (Get, View,
//     MGet) therefore never observes half of a cross-shard
//     transaction — the watermark boundary is the apply transaction's
//     serialization point.
//   - FGET keeps its plain-read caveat: exactly as on the primary
//     (the paper's §3.5 delayed-writeback anomaly), a plain read
//     against the lazy engine may briefly miss a committed-but-
//     unwritten value. Replication restates the paper's mixed-mode
//     bound in space; it does not tighten the plain-read path.
//
// Feeding the replica is single-writer: ApplyRecord and ResetShard
// serialize on an internal mutex (the wire client is one goroutine),
// while the store's readers run concurrently, lock-free as ever.

// ErrReplicaGap reports a record that does not extend the replica's
// dense per-shard prefix: the stream skipped sequences (e.g. the
// primary compacted past this replica's cursor). The feeder must
// re-catch-up — from segments or a snapshot — before applying more.
var ErrReplicaGap = errors.New("kv: record does not extend the replica's prefix (gap)")

// Replica applies a primary's replication stream to a local store.
type Replica struct {
	s *Store

	mu      sync.Mutex
	queues  [][]wal.Record              // per-shard dense apply queues (head may stall)
	markers map[wal.TxnPart]markerEntry // participant -> its txn's marker
	xseq    uint64                      // newest marker-log seq seen

	water    []atomic.Uint64 // per-shard applied watermark (primary seqs)
	applied  atomic.Uint64   // records applied
	xapplied atomic.Uint64   // cross-shard transactions applied
	syncing  atomic.Bool     // a snapshot reset is in progress

	// target is the primary's per-shard position at handshake time;
	// Ready reports the replica caught up to it at least once.
	tmu    sync.Mutex
	target []uint64
}

// NewReplica creates a replica over a fresh in-memory store. opts are
// the store options (shards, engine, metrics...); the shard count MUST
// match the primary's, since records route by the shared key hash, and
// durability options are rejected — a replica's durability is the
// primary's log, re-streamed on restart.
func NewReplica(opts ...Option) (*Replica, error) {
	var c config
	for _, o := range opts {
		o(&c)
	}
	if c.durDir != "" {
		return nil, errors.New("kv: a replica store cannot have durability; it replays the primary's log")
	}
	s := newStore(&c)
	r := &Replica{
		s:       s,
		queues:  make([][]wal.Record, len(s.shards)),
		markers: make(map[wal.TxnPart]markerEntry),
		water:   make([]atomic.Uint64, len(s.shards)),
	}
	return r, nil
}

// Store is the replica's read surface: FastGet / View / Get /
// Subscribe serve from it. Writing through it corrupts replication
// (the server layer enforces read-only); changefeed events carry the
// replica's own per-shard commit sequences, not the primary's.
func (r *Replica) Store() *Store { return r.s }

// Shards returns the replica's shard count (must equal the primary's).
func (r *Replica) Shards() int { return len(r.s.shards) }

// Watermark returns shard i's applied watermark: the primary commit
// sequence the replica's state includes, per the contract above.
func (r *Replica) Watermark(i int) uint64 { return r.water[i].Load() }

// SetTarget records the primary's per-shard positions at handshake
// time; Ready flips true once every shard's watermark reaches it.
func (r *Replica) SetTarget(seqs []uint64) {
	r.tmu.Lock()
	r.target = append([]uint64(nil), seqs...)
	r.tmu.Unlock()
}

// Ready reports whether the replica has caught up to the handshake-
// time primary positions on every shard and is not mid-reset.
func (r *Replica) Ready() bool {
	if r.syncing.Load() {
		return false
	}
	r.tmu.Lock()
	defer r.tmu.Unlock()
	if r.target == nil {
		return false
	}
	for i, want := range r.target {
		if i < len(r.water) && r.water[i].Load() < want {
			return false
		}
	}
	return true
}

// ApplyRecord feeds one record from the primary's stream: a shard
// record (rec.Shard < Shards) or a cross-shard commit marker
// (rec.Shard == wal.TxnShard). Records must arrive in per-stream
// order; duplicates below the watermark are ignored (reconnect
// overlap), a sequence above the expected next returns ErrReplicaGap.
func (r *Replica) ApplyRecord(rec wal.Record) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.ingestLocked(rec); err != nil {
		return err
	}
	if rec.Shard == wal.TxnShard {
		return r.drainLocked(allShards(len(r.queues)))
	}
	return r.drainLocked([]int{int(rec.Shard)})
}

// ApplyRecords feeds a batch of stream records — same ordering rules
// as ApplyRecord — and drains once at the end. The wire client hands
// over every frame it has already buffered, so catch-up applies long
// runs of records per local transaction instead of one at a time. On
// error the already-ingested records stay queued; they drain with the
// next successful apply, and reconnect overlap dedupes as usual.
func (r *Replica) ApplyRecords(recs []wal.Record) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range recs {
		if err := r.ingestLocked(recs[i]); err != nil {
			return err
		}
	}
	return r.drainLocked(allShards(len(r.queues)))
}

// ingestLocked validates one record and queues it (shard record) or
// registers its markers (marker record) without draining. Caller
// holds r.mu.
func (r *Replica) ingestLocked(rec wal.Record) error {
	if rec.Shard == wal.TxnShard {
		if rec.Seq <= r.xseq {
			return nil // duplicate marker
		}
		if rec.Seq != r.xseq+1 {
			return fmt.Errorf("%w: marker seq %d, want %d", ErrReplicaGap, rec.Seq, r.xseq+1)
		}
		r.xseq = rec.Seq
		for _, op := range rec.Ops {
			if op.Kind != wal.KindTxnMarker {
				continue
			}
			parts, err := wal.DecodeTxnParts(op.Val)
			if err != nil {
				return fmt.Errorf("kv: replica: %w", err)
			}
			if r.partsSatisfied(parts) {
				continue // snapshot catch-up already covered the whole txn, or the marker is stale
			}
			for _, p := range parts {
				// Overwrite wins: the marker stream is ordered, so a later
				// marker claiming a reused (shard, seq) is the live one and
				// the entry it replaces was stale.
				r.markers[p] = markerEntry{txn: rec.Txn, parts: parts}
			}
		}
		// Prune entries the stream has moved past (all parts inside the
		// watermarks): applied transactions' leftovers and stale markers
		// whose sequence numbers were consumed by other records.
		for p, e := range r.markers {
			if r.partsSatisfied(e.parts) {
				delete(r.markers, p)
			}
		}
		return nil
	}
	i := int(rec.Shard)
	if i < 0 || i >= len(r.queues) {
		return fmt.Errorf("kv: replica: record for shard %d of %d", rec.Shard, len(r.queues))
	}
	w := r.water[i].Load()
	next := w + uint64(len(r.queues[i])) + 1
	if rec.Seq <= w || rec.Seq < next {
		return nil // duplicate (reconnect overlap)
	}
	if rec.Seq > next {
		return fmt.Errorf("%w: shard %d seq %d, want %d", ErrReplicaGap, i, rec.Seq, next)
	}
	r.queues[i] = append(r.queues[i], rec)
	return nil
}

func allShards(n int) []int {
	idxs := make([]int, n)
	for i := range idxs {
		idxs[i] = i
	}
	return idxs
}

// markerEntry is one registered commit marker: the transaction id that
// binds it to its participant records, and the participant vector. A
// record applies through a marker only when the ids match — a marker
// streamed from before a primary-side recovery rollback may name
// (shard, seq) pairs that later commits reused, and must not vouch
// for them.
type markerEntry struct {
	txn   uint64
	parts []wal.TxnPart
}

// partsSatisfied reports whether every participant is at or below its
// shard's watermark (already in the replica's state).
func (r *Replica) partsSatisfied(parts []wal.TxnPart) bool {
	for _, p := range parts {
		if int(p.Shard) >= len(r.water) || p.Seq > r.water[p.Shard].Load() {
			return false
		}
	}
	return true
}

// drainLocked applies every applicable queued record on the given
// shards, following cross-shard applies onto their sibling shards.
// Caller holds r.mu.
func (r *Replica) drainLocked(shards []int) error {
	work := append([]int(nil), shards...)
	for len(work) > 0 {
		i := work[0]
		work = work[1:]
		for len(r.queues[i]) > 0 {
			head := r.queues[i][0]
			if !head.Cross {
				// A run of plain records applies as one local transaction:
				// the watermark advances in coarser steps but still only at
				// transaction boundaries, so readers keep seeing a dense
				// per-shard prefix — and applyTxn's bulk key creation turns
				// catch-up from one table copy per new key into one per run.
				n, ops := r.runLocked(i)
				if err := r.applyTxn(ops); err != nil {
					return err
				}
				for ; n > 0; n-- {
					r.popLocked(i)
				}
				continue
			}
			self := wal.TxnPart{Shard: uint32(i), Seq: head.Seq}
			entry, ok := r.markers[self]
			if !ok || entry.txn != head.Txn {
				break // this record's marker not here yet: hold the queue
			}
			heads, ready := r.crossReady(entry)
			if !ready {
				break // a sibling record not here yet
			}
			var ops []wal.Op
			for _, h := range heads {
				ops = append(ops, r.queues[h][0].Ops...)
			}
			if err := r.applyTxn(ops); err != nil {
				return err
			}
			for _, h := range heads {
				r.popLocked(h)
			}
			for _, p := range entry.parts {
				delete(r.markers, p)
			}
			r.xapplied.Add(1)
			// Sibling shards may have queued records behind the part
			// that just applied.
			for _, h := range heads {
				if h != i {
					work = append(work, h)
				}
			}
		}
	}
	return nil
}

// maxRunOps caps how many ops one apply transaction merges — large
// enough to amortize key creation during catch-up, small enough to
// bound the transaction's footprint (and lock hold) on a live replica.
const maxRunOps = 256

// runLocked collects the longest run of plain (non-cross) records at
// the head of shard i's queue that may merge into one transaction. A
// cross-shard participant ends the run before itself (it applies with
// its siblings); a record containing a delete ends the run after
// itself, because a later record may re-create the key with the other
// kind, which needs the delete's commit-time sweep between the two
// writes. Caller holds r.mu.
func (r *Replica) runLocked(i int) (n int, ops []wal.Op) {
	q := r.queues[i]
	for n < len(q) && len(ops) < maxRunOps {
		rec := q[n]
		if rec.Cross {
			break
		}
		ops = append(ops, rec.Ops...)
		n++
		if hasDelete(rec.Ops) {
			break
		}
	}
	return n, ops
}

func hasDelete(ops []wal.Op) bool {
	for i := range ops {
		if ops[i].Kind == wal.KindDelete {
			return true
		}
	}
	return false
}

// crossReady reports whether a cross-shard transaction can apply:
// every participant is either already inside the watermark (snapshot-
// covered) or sits at the head of its shard's queue with the marker's
// transaction id. heads lists the shards whose queued head records
// participate.
func (r *Replica) crossReady(e markerEntry) (heads []int, ready bool) {
	for _, p := range e.parts {
		if int(p.Shard) >= len(r.queues) {
			return nil, false
		}
		j := int(p.Shard)
		if p.Seq <= r.water[j].Load() {
			continue // already applied via snapshot catch-up
		}
		q := r.queues[j]
		if len(q) == 0 || q[0].Seq != p.Seq || !q[0].Cross || q[0].Txn != e.txn {
			return nil, false
		}
		heads = append(heads, j)
	}
	return heads, true
}

// popLocked removes shard i's head record and advances its watermark:
// the record's writes are committed locally, so readers at and after
// this point include it.
func (r *Replica) popLocked(i int) {
	head := r.queues[i][0]
	r.queues[i] = r.queues[i][1:]
	if len(r.queues[i]) == 0 {
		r.queues[i] = nil // release the backing array between bursts
	}
	r.water[i].Store(head.Seq)
	r.applied.Add(1)
}

// applyTxn replays one transaction's ops (possibly merged from
// several cross-shard participant records) as ONE local transaction —
// the idempotent replay: sets and counter-sets are absolute, deletes
// of absent keys are no-ops. Empty op lists (the primary's checkpoint
// marker transactions) commit nothing.
func (r *Replica) applyTxn(ops []wal.Op) error {
	if len(ops) == 0 {
		return nil
	}
	// Bulk-create the missing keys first — one shard-table copy per
	// batch instead of one per key (ensure's copy-on-write is O(table)
	// per miss, which made fresh-keyspace catch-up quadratic). The
	// pre-created entries are present-but-unwritten for the instant
	// before the transaction commits, the same window every primary
	// write has between its ensure and its commit.
	keys := make([]string, len(ops))
	var newBytes, newCtrs []string
	for i := range ops {
		op := &ops[i]
		keys[i] = op.Key
		if op.Kind == wal.KindDelete {
			continue
		}
		if r.s.shards[r.s.ShardOf(op.Key)].lookup(op.Key) == nil {
			if op.Kind == wal.KindSet {
				newBytes = append(newBytes, op.Key)
			} else {
				newCtrs = append(newCtrs, op.Key)
			}
		}
	}
	if len(newBytes) > 0 {
		r.s.EnsureKeys(newBytes...)
	}
	if len(newCtrs) > 0 {
		r.s.EnsureCounters(newCtrs...)
	}
	return r.s.Update(keys, func(t *Txn) error {
		for i := range ops {
			op := &ops[i]
			switch op.Kind {
			case wal.KindSet:
				t.Set(op.Key, op.Val)
			case wal.KindCounterSet:
				t.CounterSet(op.Key, op.N)
			case wal.KindCounterAdd:
				t.Add(op.Key, op.N)
			case wal.KindDelete:
				t.Delete(op.Key)
			default:
				return fmt.Errorf("kv: replica: unknown op kind %d", op.Kind)
			}
		}
		return nil
	})
}

// ResetShard replaces shard i's state with a primary snapshot at seq:
// the catch-up fallback when the replica's cursor predates the
// primary's oldest retained segment. Existing keys of the shard are
// deleted and the snapshot's records applied, in batched transactions
// — readers may observe the intermediate states, which is why Ready
// reports false (syncing) for the duration; a replica serving live
// traffic should be drained first. The shard's queue and watermark
// reset to the snapshot position.
func (r *Replica) ResetShard(i int, seq uint64, recs []wal.Record) error {
	if i < 0 || i >= len(r.queues) {
		return fmt.Errorf("kv: replica: reset of shard %d of %d", i, len(r.queues))
	}
	r.syncing.Store(true)
	defer r.syncing.Store(false)
	r.mu.Lock()
	defer r.mu.Unlock()

	// Wipe: collect the shard's current keys (the table only mutates
	// under r.mu — applies and their sweeps run right here), then
	// delete transactionally in batches.
	sh := r.s.shards[i]
	var keys []string
	for k := range *sh.vars.Load() {
		keys = append(keys, k)
	}
	const batch = 256
	for len(keys) > 0 {
		n := min(batch, len(keys))
		part := keys[:n]
		keys = keys[n:]
		if err := r.s.Update(part, func(t *Txn) error {
			for _, k := range part {
				t.Delete(k)
			}
			return nil
		}); err != nil {
			return fmt.Errorf("kv: replica: reset shard %d: %w", i, err)
		}
	}
	for _, rec := range recs {
		if err := r.applyTxn(rec.Ops); err != nil {
			return fmt.Errorf("kv: replica: reset shard %d: %w", i, err)
		}
	}
	r.queues[i] = nil
	r.water[i].Store(seq)
	// Markers fully inside the watermarks now commit nothing: prune.
	for p, e := range r.markers {
		if r.partsSatisfied(e.parts) {
			delete(r.markers, p)
		}
	}
	return nil
}

// ReplicaStats is the replica's observability snapshot. The JSON
// names are a stable wire format (STATS REPL emits it).
type ReplicaStats struct {
	Shards     int      `json:"shards"`
	Watermarks []uint64 `json:"watermarks"` // per-shard applied primary seq
	MarkerSeq  uint64   `json:"marker_seq"` // newest marker-log seq seen
	Applied    uint64   `json:"applied"`    // shard records applied
	XApplied   uint64   `json:"xapplied"`   // cross-shard txns applied atomically
	Pending    int      `json:"pending"`    // queued records held back
	Ready      bool     `json:"ready"`
	Syncing    bool     `json:"syncing"`
}

// Stats snapshots the replica's progress.
func (r *Replica) Stats() ReplicaStats {
	st := ReplicaStats{
		Shards:   len(r.water),
		Applied:  r.applied.Load(),
		XApplied: r.xapplied.Load(),
		Ready:    r.Ready(),
		Syncing:  r.syncing.Load(),
	}
	st.Watermarks = make([]uint64, len(r.water))
	for i := range r.water {
		st.Watermarks[i] = r.water[i].Load()
	}
	r.mu.Lock()
	st.MarkerSeq = r.xseq
	for _, q := range r.queues {
		st.Pending += len(q)
	}
	r.mu.Unlock()
	return st
}
