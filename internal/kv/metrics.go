package kv

import (
	"sort"

	"modtx/internal/obs"
	"modtx/internal/stm"
)

// Observability surface of the store: sampled per-operation latency
// histograms at the API boundary, per-shard statistics, merged STM-level
// latency distributions, and hot-key contention attribution (the STM
// layer records conflicts by variable id; this layer maps the ids back
// to key names at snapshot time, so the hot write side never touches a
// string). Everything here is read-side; the write-side cost on the
// serving paths is a pooled non-atomic tick and, one call in N, a pair
// of clock reads — see WithMetricsSampling.

// Op identifies one instrumented store operation.
type Op int

// Instrumented operations, in histogram order.
const (
	OpGet Op = iota
	OpCounterGet
	OpSet
	OpCounterAdd
	OpUpdate
	OpView
	OpWaitGet
	numOps
)

var opNames = [numOps]string{"get", "counter_get", "set", "counter_add", "update", "view", "wait_get"}

// String returns the operation's wire name (stable: the admin plane
// emits it as a Prometheus label).
func (o Op) String() string {
	if o >= 0 && o < numOps {
		return opNames[o]
	}
	return "unknown"
}

// Ops returns every instrumented operation in histogram order.
func Ops() []Op {
	out := make([]Op, numOps)
	for i := range out {
		out[i] = Op(i)
	}
	return out
}

// nextSample advances the pooled op's sampling tick; like stm.Tx's, the
// tick survives pool round-trips (release does not clear it) so each
// pooled op contributes an even 1-in-N stream with no shared atomic.
func (op *singleOp) nextSample() bool {
	op.tick++
	return op.tick&op.s.sampleMask == 0
}

func (op *multiOp) nextSample() bool {
	op.tick++
	return op.tick&op.s.sampleMask == 0
}

// OpLatency returns the sampled latency distribution of one operation
// (zero-valued when metrics are disabled).
func (s *Store) OpLatency(op Op) obs.Snapshot {
	if s.opHists == nil || op < 0 || op >= numOps {
		return obs.Snapshot{}
	}
	return s.opHists[op].Snapshot()
}

// MetricsEnabled reports whether the store records metrics.
func (s *Store) MetricsEnabled() bool { return s.opHists != nil }

// StmLatencies is the union of every shard's STM-level distributions:
// commit and read-only transaction latency, attempts per committed
// transaction, and park duration (see stm.Metrics).
type StmLatencies struct {
	CommitNs   obs.Snapshot `json:"commit_ns"`
	ReadOnlyNs obs.Snapshot `json:"read_only_ns"`
	Attempts   obs.Snapshot `json:"attempts"`
	ParkNs     obs.Snapshot `json:"park_ns"`
}

// StmLatencies merges the per-shard STM distributions into one
// store-wide view. Zero-valued when metrics are disabled.
func (s *Store) StmLatencies() StmLatencies {
	var out StmLatencies
	for _, sh := range s.shards {
		m := sh.stm.Metrics()
		if m == nil {
			continue
		}
		out.CommitNs.Merge(m.CommitNs.Snapshot())
		out.ReadOnlyNs.Merge(m.ReadOnlyNs.Snapshot())
		out.Attempts.Merge(m.Attempts.Snapshot())
		out.ParkNs.Merge(m.ParkNs.Snapshot())
	}
	return out
}

// ShardStat is one shard's point-in-time statistics. The JSON names are
// a stable wire format (STATS SHARDS and /metrics render from it).
type ShardStat struct {
	Shard    int               `json:"shard"`
	Keys     int               `json:"keys"`
	FastGets uint64            `json:"fast_gets"`
	Stm      stm.StatsSnapshot `json:"stm"`

	// Strategy is the protocol the shard's transactions currently begin
	// under — interesting on the adaptive engine, where each shard flips
	// between tl2 and eager on its own conflict-rate hysteresis; fixed
	// engines report themselves. SpinBudget is the shard's current
	// adaptive spin-before-park budget (stm.STM.SpinBudget).
	Strategy   string `json:"strategy"`
	SpinBudget int    `json:"spin_budget"`
}

// ShardStats returns per-shard statistics, indexed by shard.
func (s *Store) ShardStats() []ShardStat {
	out := make([]ShardStat, len(s.shards))
	for i, sh := range s.shards {
		out[i] = ShardStat{
			Shard:      i,
			Keys:       len(*sh.vars.Load()),
			FastGets:   s.fastGets[i].n.Load(),
			Stm:        sh.stm.Snapshot(),
			Strategy:   sh.stm.Strategy().String(),
			SpinBudget: sh.stm.SpinBudget(),
		}
	}
	return out
}

// HotKey is one contended key and its approximate conflict count — how
// many conflicts were attributed to (lost against) its variables.
type HotKey struct {
	Key   string `json:"key"`
	Shard int    `json:"shard"`
	Count uint64 `json:"count"`
}

// Sentinel names surfaced by HotKeys for contention attributed to shard
// infrastructure rather than a user key.
const (
	hotKeyspace    = "(keyspace)"    // the shard's keyspace version (WaitGet routing)
	hotPublication = "(publication)" // the shard's publication sentinel
	hotSwept       = "(swept)"       // a deleted entry's variables, no longer in the table
)

// HotKeys returns the approximately most conflict-contended keys across
// all shards, hottest first, at most n entries (n <= 0 means all
// resident). Attribution is by the STM contention tables — each records
// the variable a conflict lost to, by id — and this read side maps ids
// back through the shards' key tables, so a key's value, counter and
// tombstone variables all attribute to the key. Conflicts on shard
// infrastructure surface as "(keyspace)" and "(publication)"; an id
// whose entry was deleted since surfaces as "(swept)". Counts are
// approximate (see obs.HotTable) — the head of a skewed profile is
// accurate, which is the use case. Nil when metrics are disabled.
func (s *Store) HotKeys(n int) []HotKey {
	if s.opHists == nil {
		return nil
	}
	var out []HotKey
	for i, sh := range s.shards {
		m := sh.stm.Metrics()
		if m == nil {
			continue
		}
		snap := m.Contention.Snapshot()
		if len(snap) == 0 {
			continue
		}
		// Map variable ids back to key names: one table scan per shard,
		// only on this read path.
		names := make(map[uint64]string, 3*len(*sh.vars.Load())+2)
		for k, e := range *sh.vars.Load() {
			if e.b != nil {
				names[e.b.ID()] = k
			}
			if e.c != nil {
				names[e.c.ID()] = k
			}
			names[e.dead.ID()] = k
		}
		names[sh.kvers.ID()] = hotKeyspace
		names[sh.pub.ID()] = hotPublication
		// A key's variables may occupy several table slots; sum them.
		byName := make(map[string]uint64, len(snap))
		for _, he := range snap {
			name, ok := names[he.ID]
			if !ok {
				name = hotSwept
			}
			byName[name] += he.Count
		}
		for name, count := range byName {
			out = append(out, HotKey{Key: name, Shard: i, Count: count})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Count != out[b].Count {
			return out[a].Count > out[b].Count
		}
		if out[a].Key != out[b].Key { // deterministic order among ties
			return out[a].Key < out[b].Key
		}
		return out[a].Shard < out[b].Shard
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// ResetMetrics zeroes the per-op histograms and every shard's STM
// distributions and contention table. Cumulative counters (Stats,
// ShardStats) are not touched.
func (s *Store) ResetMetrics() {
	if s.opHists != nil {
		for i := range s.opHists {
			s.opHists[i].Reset()
		}
	}
	for _, sh := range s.shards {
		if m := sh.stm.Metrics(); m != nil {
			m.Reset()
		}
	}
}
