package conform

import (
	"sync"
	"sync/atomic"
	"testing"

	"modtx/internal/core"
	"modtx/internal/stm"
)

func TestSequentialRunExplained(t *testing.T) {
	s := NewSession(stm.New(stm.WithEngine(stm.Lazy)))
	th := s.Thread()
	s.Var("x", 0)
	err := th.Atomically(func(h *TxRec) error {
		h.Write("x", 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := th.Load("x"); got != 1 {
		t.Fatalf("loaded %d", got)
	}
	x, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !x.ExplainedBy(core.Implementation) {
		t.Error("sequential run not explainable in the implementation model")
	}
	if !x.ExplainedBy(core.Programmer) {
		t.Error("sequential run not explainable in the programmer model")
	}
}

func TestPublicationRunExplained(t *testing.T) {
	// Every registered engine × clock-mode pair must produce publication
	// runs explainable in the implementation model — a new engine or
	// clock variant cannot merge without passing the litmus recording.
	for _, engine := range stm.Engines() {
		for _, clock := range stm.ClockModes() {
			testPublicationRunExplained(t, engine, clock)
		}
	}
}

func testPublicationRunExplained(t *testing.T, engine stm.Engine, clock stm.ClockMode) {
	t.Run(engine.String()+"/"+clock.String(), func(t *testing.T) {
		s := NewSession(stm.New(stm.WithEngine(engine), stm.WithClock(clock)))
		s.Var("x", 0)
		s.Var("y", 0)
		t1 := s.Thread()
		t2 := s.Thread()
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			t1.Store("x", 1)
			_ = t1.Atomically(func(h *TxRec) error {
				h.Write("y", 1)
				return nil
			})
		}()
		go func() {
			defer wg.Done()
			var r int64
			_ = t2.Atomically(func(h *TxRec) error {
				r = h.Read("y")
				return nil
			})
			if r == 1 {
				t2.Load("x")
			}
		}()
		wg.Wait()
		x, err := s.Build()
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		if !x.ExplainedBy(core.Implementation) {
			t.Errorf("%v: publication run not explainable in the implementation model", engine)
		}
	})
}

// TestPrivatizationAnomalyLemma51Gap records the forced delayed-writeback
// anomaly and checks the Lemma 5.1 gap: the behaviour is explainable in
// the implementation model (it has a mixed race) but not in the programmer
// model. Both write-buffering engines (lazy and its tl2 refinement)
// exhibit it.
func TestPrivatizationAnomalyLemma51Gap(t *testing.T) {
	for _, engine := range []stm.Engine{stm.Lazy, stm.TL2} {
		t.Run(engine.String(), func(t *testing.T) {
			testPrivatizationAnomalyLemma51Gap(t, engine)
		})
	}
}

func testPrivatizationAnomalyLemma51Gap(t *testing.T, engine stm.Engine) {
	eng := stm.New(stm.WithEngine(engine))
	s := NewSession(eng)
	s.Var("x", 0)
	s.Var("y", 0)
	t1 := s.Thread()
	t2 := s.Thread()

	inWindow := make(chan struct{})
	resume := make(chan struct{})
	var armed atomic.Bool
	armed.Store(true)
	eng.WritebackDelay = func() {
		if armed.CompareAndSwap(true, false) {
			close(inWindow)
			<-resume
		}
	}
	defer func() { eng.WritebackDelay = nil }()

	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = t1.Atomically(func(h *TxRec) error {
			if h.Read("y") == 0 {
				h.Write("x", 1)
			}
			return nil
		})
	}()
	<-inWindow
	_ = t2.Atomically(func(h *TxRec) error {
		h.Write("y", 1)
		return nil
	})
	t2.Store("x", 2)
	close(resume)
	<-done

	x, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !x.ExplainedBy(core.Implementation) {
		t.Error("anomaly must be explainable in the implementation model")
	}
	if x.ExplainedBy(core.Programmer) {
		t.Error("anomaly must NOT be explainable in the programmer model (HBww+Atomww)")
	}
}

// TestFencedPrivatizationExplained records the fenced idiom; the result is
// explainable in both models.
func TestFencedPrivatizationExplained(t *testing.T) {
	eng := stm.New(stm.WithEngine(stm.Lazy))
	s := NewSession(eng)
	s.Var("x", 0)
	s.Var("y", 0)
	t1 := s.Thread()
	t2 := s.Thread()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_ = t1.Atomically(func(h *TxRec) error {
			if h.Read("y") == 0 {
				h.Write("x", 1)
			}
			return nil
		})
	}()
	go func() {
		defer wg.Done()
		_ = t2.Atomically(func(h *TxRec) error {
			h.Write("y", 1)
			return nil
		})
		t2.Quiesce("x")
		t2.Store("x", 2)
	}()
	wg.Wait()
	x, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !x.ExplainedBy(core.Implementation) {
		t.Error("fenced run must be explainable in the implementation model")
	}
}

// TestDirtyReadUnexplainable records the forced eager dirty read; the
// observation matches no model trace (WF7 forbids reading aborted writes),
// surfacing as an unmatched read during Build.
func TestDirtyReadUnexplainable(t *testing.T) {
	eng := stm.New(stm.WithEngine(stm.Eager))
	s := NewSession(eng)
	s.Var("x", 0)
	t1 := s.Thread()
	t2 := s.Thread()

	inWindow := make(chan struct{})
	resume := make(chan struct{})
	var armed atomic.Bool
	armed.Store(true)
	eng.RollbackDelay = func() {
		if armed.CompareAndSwap(true, false) {
			close(inWindow)
			<-resume
		}
	}
	defer func() { eng.RollbackDelay = nil }()

	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = t1.Atomically(func(h *TxRec) error {
			h.Write("x", 1)
			return stm.ErrAbort
		})
	}()
	<-inWindow
	dirty := t2.Load("x")
	close(resume)
	<-done

	if dirty != 1 {
		t.Fatalf("expected to observe the speculative value, got %d", dirty)
	}
	x, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	// The read matches the aborted write by value, but no model trace
	// explains it: WF7 kills every linearization.
	if x.ExplainedBy(core.Implementation) {
		t.Error("dirty read must not be explainable in the implementation model")
	}
	if x.ExplainedBy(core.Programmer) {
		t.Error("dirty read must not be explainable in the programmer model")
	}
}

func TestAmbiguousValuesRejected(t *testing.T) {
	s := NewSession(stm.New(stm.WithEngine(stm.Lazy)))
	th := s.Thread()
	s.Var("x", 0)
	th.Store("x", 7)
	th.Store("x", 7) // duplicate value: wr resolution is ambiguous
	th.Load("x")
	if _, err := s.Build(); err == nil {
		t.Fatal("expected ambiguity error")
	}
}
