// Package conform records the behaviour of real STM runs (internal/stm)
// and checks whether the observed execution is explainable by the paper's
// axiomatic model: does there exist a coherence order and a well-formed
// trace making the observation consistent under a given configuration?
//
// This ties the runtime to the semantics: the lazy engine's forced
// privatization anomaly is explainable in the implementation model but not
// in the programmer model (the Lemma 5.1 gap), and the eager engine's
// dirty read is explainable in neither (WF7).
package conform

import (
	"fmt"
	"sync"

	"modtx/internal/core"
	"modtx/internal/event"
	"modtx/internal/ltrf"
	"modtx/internal/stm"
)

// Session wraps an STM instance with recording. Scenarios create named
// vars and per-goroutine Thread handles, run, then Build an execution.
type Session struct {
	S *stm.STM

	mu      sync.Mutex
	names   []string
	vars    map[string]*stm.Var
	threads []*Thread
}

// NewSession wraps the STM instance.
func NewSession(s *stm.STM) *Session {
	return &Session{S: s, vars: make(map[string]*stm.Var)}
}

// Var creates (or returns) a named recorded variable.
func (s *Session) Var(name string, init int64) *stm.Var {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.vars[name]; ok {
		return v
	}
	v := s.S.NewVar(name, init)
	s.vars[name] = v
	s.names = append(s.names, name)
	return v
}

// Thread creates a recording handle. Each handle must be used by a single
// goroutine.
type Thread struct {
	s   *Session
	ops []op
}

type op struct {
	kind event.Kind
	loc  string
	val  int64
	tx   int // block marker: >=0 within a transaction
}

// Thread registers a new thread handle.
func (s *Session) Thread() *Thread {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := &Thread{s: s}
	s.threads = append(s.threads, t)
	return t
}

// Load performs and records a plain read.
func (t *Thread) Load(name string) int64 {
	v := t.s.Var(name, 0)
	x := v.Load()
	t.ops = append(t.ops, op{kind: event.KRead, loc: name, val: x, tx: -1})
	return x
}

// Store performs and records a plain write.
func (t *Thread) Store(name string, x int64) {
	v := t.s.Var(name, 0)
	v.Store(x)
	t.ops = append(t.ops, op{kind: event.KWrite, loc: name, val: x, tx: -1})
}

// Quiesce performs and records a quiescence fence on the named location.
func (t *Thread) Quiesce(name string) {
	v := t.s.Var(name, 0)
	t.s.S.Quiesce(v)
	t.ops = append(t.ops, op{kind: event.KFence, loc: name, tx: -1})
}

// TxRec records transactional operations of one attempt.
type TxRec struct {
	t   *Thread
	tx  *stm.Tx
	ops []op
}

// Read performs and records a transactional read.
func (h *TxRec) Read(name string) int64 {
	v := h.t.s.Var(name, 0)
	x := h.tx.Read(v)
	h.ops = append(h.ops, op{kind: event.KRead, loc: name, val: x})
	return x
}

// Write performs and records a transactional write.
func (h *TxRec) Write(name string, x int64) {
	v := h.t.s.Var(name, 0)
	h.tx.Write(v, x)
	h.ops = append(h.ops, op{kind: event.KWrite, loc: name, val: x})
}

// Atomically runs a recorded transaction. Only the final attempt's
// operations enter the log (conflicted attempts are retried by the engine
// and leave no trace, matching the model where only the resolved
// transaction appears).
func (t *Thread) Atomically(fn func(*TxRec) error) error {
	var rec *TxRec
	err := t.s.S.Atomically(func(tx *stm.Tx) error {
		rec = &TxRec{t: t, tx: tx} // fresh buffer per attempt
		return fn(rec)
	})
	kind := event.KCommit
	if err != nil {
		kind = event.KAbort
	}
	txid := 0 // block id is positional; Build renumbers
	t.ops = append(t.ops, op{kind: event.KBegin, tx: txid})
	for _, o := range rec.ops {
		o.tx = txid
		t.ops = append(t.ops, o)
	}
	t.ops = append(t.ops, op{kind: kind, tx: txid})
	return err
}

// Recorded is a finished observation: the execution graph plus the final
// memory state, which constrains the coherence order during explanation.
type Recorded struct {
	X      *event.Execution
	Finals map[int]int64 // loc id -> observed final value
}

// Build converts the recorded run into an execution graph: events in
// per-thread order, reads-from resolved by unique value matching, the
// coherence order left open (see ExplainedBy), and the final memory state
// captured. Recording must use values that uniquely identify writes per
// location, and all threads must have finished.
func (s *Session) Build() (*Recorded, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	x := &event.Execution{
		Locs:     append([]string(nil), s.names...),
		NThreads: len(s.threads) + 1,
		TxStatus: []event.Status{event.Committed},
		TxName:   []string{"init"},
		WR:       make(map[int]int),
		WW:       make(map[int][]int),
	}
	locID := make(map[string]int, len(s.names))
	for i, n := range s.names {
		locID[n] = i
	}
	add := func(e event.Event) int {
		e.ID = len(x.Events)
		x.Events = append(x.Events, e)
		return e.ID
	}
	add(event.Event{Thread: event.InitThread, Kind: event.KBegin, Loc: event.NoLoc, Tx: event.InitTx})
	for loc := range s.names {
		id := add(event.Event{Thread: event.InitThread, Kind: event.KWrite, Loc: loc, Tx: event.InitTx})
		x.WW[loc] = append(x.WW[loc], id)
	}
	add(event.Event{Thread: event.InitThread, Kind: event.KCommit, Loc: event.NoLoc, Tx: event.InitTx})

	for ti, th := range s.threads {
		thread := ti + 1
		curTx := event.NoTx
		for _, o := range th.ops {
			switch o.kind {
			case event.KBegin:
				curTx = len(x.TxStatus)
				x.TxStatus = append(x.TxStatus, event.Live)
				x.TxName = append(x.TxName, fmt.Sprintf("t%d.tx", thread))
				add(event.Event{Thread: thread, Kind: event.KBegin, Loc: event.NoLoc, Tx: curTx})
			case event.KCommit, event.KAbort:
				if o.kind == event.KCommit {
					x.TxStatus[curTx] = event.Committed
				} else {
					x.TxStatus[curTx] = event.Aborted
				}
				add(event.Event{Thread: thread, Kind: o.kind, Loc: event.NoLoc, Tx: curTx})
				curTx = event.NoTx
			case event.KFence:
				add(event.Event{Thread: thread, Kind: event.KFence, Loc: locID[o.loc], Tx: event.NoTx})
			default:
				tx := event.NoTx
				if o.tx >= 0 {
					tx = curTx
				}
				loc, ok := locID[o.loc]
				if !ok {
					return nil, fmt.Errorf("conform: unknown location %q", o.loc)
				}
				id := add(event.Event{Thread: thread, Kind: o.kind, Loc: loc, Val: int(o.val), Tx: tx})
				if o.kind == event.KWrite {
					x.WW[loc] = append(x.WW[loc], id)
				}
			}
		}
	}
	// Resolve reads-from by unique value match.
	for _, e := range x.Events {
		if e.Kind != event.KRead {
			continue
		}
		cand := -1
		for _, w := range x.WW[e.Loc] {
			if x.Events[w].Val == e.Val {
				if cand != -1 {
					return nil, fmt.Errorf("conform: ambiguous read of %s=%d; use unique write values",
						x.Locs[e.Loc], e.Val)
				}
				cand = w
			}
		}
		if cand == -1 {
			return nil, fmt.Errorf("conform: read of %s=%d matches no write (dirty read of a rolled-back value?)",
				x.Locs[e.Loc], e.Val)
		}
		x.WR[e.ID] = cand
	}
	finals := make(map[int]int64, len(s.names))
	for loc, name := range s.names {
		finals[loc] = s.vars[name].Load()
	}
	return &Recorded{X: x, Finals: finals}, nil
}

// ExplainedBy reports whether the recorded execution is explainable under
// cfg: some coherence order reproduces the observed final memory state and
// makes the graph axiomatically consistent and well-formed-linearizable.
// Quiescence fences are encoded as committed writing transactions (§5)
// before checking.
func (r *Recorded) ExplainedBy(cfg core.Config) bool {
	g := r.X.EncodeFences()
	// Enumerate coherence orders per location over non-init writes.
	locs := make([]int, 0, len(g.WW))
	for loc, order := range g.WW {
		if len(order) > 1 {
			locs = append(locs, loc)
		}
	}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(locs) {
			for loc, want := range r.Finals {
				if got, ok := g.FinalValue(loc); !ok || got != int(want) {
					return false
				}
			}
			return core.Consistent(g, cfg) && ltrf.ExistsWellFormedTrace(g)
		}
		loc := locs[i]
		writes := append([]int(nil), g.WW[loc][1:]...)
		perm := writes
		var permute func(k int) bool
		permute = func(k int) bool {
			if k == len(perm) {
				g.WW[loc] = append(g.WW[loc][:1], perm...)
				return rec(i + 1)
			}
			for j := k; j < len(perm); j++ {
				perm[k], perm[j] = perm[j], perm[k]
				if permute(k + 1) {
					return true
				}
				perm[k], perm[j] = perm[j], perm[k]
			}
			return false
		}
		return permute(0)
	}
	return rec(0)
}
