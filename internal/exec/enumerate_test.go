package exec

import (
	"testing"

	"modtx/internal/core"
	"modtx/internal/event"
	"modtx/internal/prog"
)

// privatization is the §1/Example 2.1 program:
//
//	atomic_a { if !y then x:=1 } || atomic_b { y:=1 }; x:=2
func privatization(fence bool) *prog.Program {
	t2 := []prog.Stmt{
		prog.Atomic{Name: "b", Body: []prog.Stmt{prog.Write{Loc: prog.At("y"), Val: prog.Const(1)}}},
	}
	if fence {
		t2 = append(t2, prog.Fence{Loc: prog.At("x")})
	}
	t2 = append(t2, prog.Write{Loc: prog.At("x"), Val: prog.Const(2)})
	return &prog.Program{
		Name: "privatization",
		Locs: []string{"x", "y"},
		Threads: []prog.Thread{
			{Name: "t1", Body: []prog.Stmt{
				prog.Atomic{Name: "a", Body: []prog.Stmt{
					prog.Read{RegName: "r", Loc: prog.At("y")},
					prog.If{Cond: prog.Not{E: prog.Reg("r")}, Then: []prog.Stmt{
						prog.Write{Loc: prog.At("x"), Val: prog.Const(1)},
					}},
				}},
			}},
			{Name: "t2", Body: t2},
		},
	}
}

func TestSequentialSingleThread(t *testing.T) {
	p := &prog.Program{
		Name: "seq",
		Locs: []string{"x"},
		Threads: []prog.Thread{{Name: "t1", Body: []prog.Stmt{
			prog.Write{Loc: prog.At("x"), Val: prog.Const(1)},
			prog.Read{RegName: "r", Loc: prog.At("x")},
		}}},
	}
	outs, err := Outcomes(p, core.Programmer)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("got %d outcomes, want 1: %v", len(outs), keys(outs))
	}
	for _, o := range outs {
		if o.Regs["t1.r"] != 1 || o.Mem["x"] != 1 {
			t.Errorf("outcome wrong: %v", o.Key())
		}
	}
}

func TestCoherentSingleLocation(t *testing.T) {
	// Two sequential reads of x by the same thread while another thread
	// writes once, with no synchronization. LTRF's plain coherence is
	// weaker than hardware coherence (§2, the CSE "Allowed" figure): all
	// four outcomes are allowed, including the backwards (1,0).
	p := &prog.Program{
		Name: "coherence",
		Locs: []string{"x"},
		Threads: []prog.Thread{
			{Name: "t1", Body: []prog.Stmt{
				prog.Read{RegName: "r1", Loc: prog.At("x")},
				prog.Read{RegName: "r2", Loc: prog.At("x")},
			}},
			{Name: "t2", Body: []prog.Stmt{prog.Write{Loc: prog.At("x"), Val: prog.Const(1)}}},
		},
	}
	outs, err := Outcomes(p, core.Programmer)
	if err != nil {
		t.Fatal(err)
	}
	saw := map[[2]int]bool{}
	for _, o := range outs {
		saw[[2]int{o.Regs["t1.r1"], o.Regs["t1.r2"]}] = true
	}
	for _, want := range [][2]int{{0, 0}, {0, 1}, {1, 1}, {1, 0}} {
		if !saw[want] {
			t.Errorf("missing outcome r1,r2 = %v (got %v)", want, saw)
		}
	}

	// With the writer inside a committed transaction and the reads
	// transactional too, the backwards outcome (1,0) is forbidden: wr into
	// transactions is cwr and creates hb, and Observation then rejects the
	// stale second read ("stronger than Java", §2).
	pt := &prog.Program{
		Name: "coherence-tx",
		Locs: []string{"x"},
		Threads: []prog.Thread{
			{Name: "t1", Body: []prog.Stmt{
				prog.Atomic{Name: "c1", Body: []prog.Stmt{prog.Read{RegName: "r1", Loc: prog.At("x")}}},
				prog.Atomic{Name: "c2", Body: []prog.Stmt{prog.Read{RegName: "r2", Loc: prog.At("x")}}},
			}},
			{Name: "t2", Body: []prog.Stmt{
				prog.Atomic{Name: "w", Body: []prog.Stmt{prog.Write{Loc: prog.At("x"), Val: prog.Const(1)}}},
			}},
		},
	}
	allowed, err := Allowed(pt, core.Programmer, func(o *Outcome) bool {
		return o.Regs["t1.r1"] == 1 && o.Regs["t1.r2"] == 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if allowed {
		t.Error("transactional stale read (1 then 0) must be forbidden")
	}
}

func TestPrivatizationProgrammerModel(t *testing.T) {
	p := privatization(false)
	outs, err := Outcomes(p, core.Programmer)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) == 0 {
		t.Fatal("no outcomes")
	}
	for _, o := range outs {
		if o.Mem["x"] != 2 {
			t.Errorf("programmer model must end with x=2, got %s", o.Key())
		}
	}
}

func TestPrivatizationImplementationModel(t *testing.T) {
	// Without a fence the implementation model admits the delayed-commit
	// anomaly: final x = 1 (§5). The execution has a mixed race.
	p := privatization(false)
	allowed, err := Allowed(p, core.Implementation, func(o *Outcome) bool {
		return o.Mem["x"] == 1
	})
	if err != nil {
		t.Fatal(err)
	}
	if !allowed {
		t.Error("implementation model must allow final x=1 without a fence")
	}

	racy, err := AnyConsistent(p, core.Implementation, func(x *event.Execution) bool {
		return !core.MixedRaceFree(x, core.Implementation)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !racy {
		t.Error("unfenced privatization must exhibit a mixed race in the implementation model")
	}
}

func TestPrivatizationWithFence(t *testing.T) {
	// With a quiescence fence before the plain write, the implementation
	// model forbids x=1 and the mixed race disappears.
	p := privatization(true)
	outs, err := Outcomes(p, core.Implementation)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) == 0 {
		t.Fatal("no outcomes")
	}
	for _, o := range outs {
		if o.Mem["x"] != 2 {
			t.Errorf("fenced implementation model must end with x=2, got %s", o.Key())
		}
	}
	racy, err := AnyConsistent(p, core.Implementation, func(x *event.Execution) bool {
		return !core.MixedRaceFree(x, core.Implementation)
	})
	if err != nil {
		t.Fatal(err)
	}
	if racy {
		t.Error("fenced privatization must be mixed-race-free")
	}
}

// publication is the §1 program:
//
//	x:=1; atomic_a { y:=1 } || atomic_b { z:=2; if y then z:=x }
func publication() *prog.Program {
	return &prog.Program{
		Name: "publication",
		Locs: []string{"x", "y", "z"},
		Threads: []prog.Thread{
			{Name: "t1", Body: []prog.Stmt{
				prog.Write{Loc: prog.At("x"), Val: prog.Const(1)},
				prog.Atomic{Name: "a", Body: []prog.Stmt{prog.Write{Loc: prog.At("y"), Val: prog.Const(1)}}},
			}},
			{Name: "t2", Body: []prog.Stmt{
				prog.Atomic{Name: "b", Body: []prog.Stmt{
					prog.Write{Loc: prog.At("z"), Val: prog.Const(2)},
					prog.Read{RegName: "r", Loc: prog.At("y")},
					prog.If{Cond: prog.Reg("r"), Then: []prog.Stmt{
						prog.Read{RegName: "q", Loc: prog.At("x")},
						prog.Write{Loc: prog.At("z"), Val: prog.Reg("q")},
					}},
				}},
			}},
		},
	}
}

func TestPublicationForbidsZZero(t *testing.T) {
	outs, err := Outcomes(publication(), core.Programmer)
	if err != nil {
		t.Fatal(err)
	}
	saw := map[int]bool{}
	for _, o := range outs {
		saw[o.Mem["z"]] = true
	}
	if saw[0] {
		t.Error("publication must not end with z=0")
	}
	if !saw[1] || !saw[2] {
		t.Errorf("expected z ∈ {1,2} reachable, got %v", saw)
	}
}

func TestStoreBufferingProgram(t *testing.T) {
	p := &prog.Program{
		Name: "sb",
		Locs: []string{"x", "y"},
		Threads: []prog.Thread{
			{Name: "t1", Body: []prog.Stmt{
				prog.Write{Loc: prog.At("x"), Val: prog.Const(1)},
				prog.Read{RegName: "r", Loc: prog.At("y")},
			}},
			{Name: "t2", Body: []prog.Stmt{
				prog.Write{Loc: prog.At("y"), Val: prog.Const(1)},
				prog.Read{RegName: "q", Loc: prog.At("x")},
			}},
		},
	}
	allowed, err := Allowed(p, core.Programmer, func(o *Outcome) bool {
		return o.Regs["t1.r"] == 0 && o.Regs["t2.q"] == 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if !allowed {
		t.Error("store buffering (r=q=0) must be allowed")
	}
}

func TestLoadBufferingProgram(t *testing.T) {
	p := &prog.Program{
		Name: "lb",
		Locs: []string{"x", "y"},
		Threads: []prog.Thread{
			{Name: "t1", Body: []prog.Stmt{
				prog.Read{RegName: "r", Loc: prog.At("x")},
				prog.Write{Loc: prog.At("y"), Val: prog.Const(1)},
			}},
			{Name: "t2", Body: []prog.Stmt{
				prog.Read{RegName: "q", Loc: prog.At("y")},
				prog.Write{Loc: prog.At("x"), Val: prog.Const(1)},
			}},
		},
	}
	allowed, err := Allowed(p, core.Programmer, func(o *Outcome) bool {
		return o.Regs["t1.r"] == 1 && o.Regs["t2.q"] == 1
	})
	if err != nil {
		t.Fatal(err)
	}
	if allowed {
		t.Error("load buffering (r=q=1) must be forbidden")
	}
}

// iriw is the §1 IRIW program with plain writes to z interposed.
func iriw() *prog.Program {
	atomicW := func(name, loc string) prog.Stmt {
		return prog.Atomic{Name: name, Body: []prog.Stmt{prog.Write{Loc: prog.At(loc), Val: prog.Const(1)}}}
	}
	atomicR := func(name, reg, loc string) prog.Stmt {
		return prog.Atomic{Name: name, Body: []prog.Stmt{prog.Read{RegName: reg, Loc: prog.At(loc)}}}
	}
	return &prog.Program{
		Name: "iriw-z",
		Locs: []string{"x", "y", "z"},
		Threads: []prog.Thread{
			{Name: "t1", Body: []prog.Stmt{atomicW("wx", "x")}},
			{Name: "t2", Body: []prog.Stmt{atomicW("wy", "y")}},
			{Name: "t3", Body: []prog.Stmt{
				atomicR("c1", "r1", "x"),
				prog.Write{Loc: prog.At("z"), Val: prog.Const(1)},
				atomicR("c2", "r2", "y"),
			}},
			{Name: "t4", Body: []prog.Stmt{
				atomicR("d1", "q1", "y"),
				prog.Write{Loc: prog.At("z"), Val: prog.Const(2)},
				atomicR("d2", "q2", "x"),
			}},
		},
	}
}

func TestIRIWForbiddenDespiteZRaces(t *testing.T) {
	// SC-LTRF: no transactional variable is racy, so the transactional
	// portion is sequential; the IRIW pattern is forbidden even though the
	// plain writes to z race.
	p := iriw()
	allowed, err := Allowed(p, core.Programmer, func(o *Outcome) bool {
		return o.Regs["t3.r1"] == 1 && o.Regs["t3.r2"] == 0 &&
			o.Regs["t4.q1"] == 1 && o.Regs["t4.q2"] == 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if allowed {
		t.Error("IRIW read pattern must be forbidden in the programmer model")
	}
	// The z writes do race.
	racy, err := AnyConsistent(p, core.Programmer, func(x *event.Execution) bool {
		return len(core.GraphRaces(x, core.Programmer, core.LocSet(x, "z"))) > 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if !racy {
		t.Error("the plain writes to z must race")
	}
}

func TestDoomedTransactionProgram(t *testing.T) {
	// §4: atomic_a { if !y then while x do skip } || atomic_b { y:=1 }; x:=1.
	// No consistent execution lets a read y=0 and then x=1.
	p := &prog.Program{
		Name: "doomed",
		Locs: []string{"x", "y"},
		Threads: []prog.Thread{
			{Name: "t1", Body: []prog.Stmt{
				prog.Atomic{Name: "a", Body: []prog.Stmt{
					prog.Read{RegName: "r", Loc: prog.At("y")},
					prog.If{Cond: prog.Not{E: prog.Reg("r")}, Then: []prog.Stmt{
						prog.Read{RegName: "s", Loc: prog.At("x")},
						prog.While{Cond: prog.Reg("s"), Body: []prog.Stmt{
							prog.Read{RegName: "s", Loc: prog.At("x")},
						}, Bound: 1},
					}},
				}},
			}},
			{Name: "t2", Body: []prog.Stmt{
				prog.Atomic{Name: "b", Body: []prog.Stmt{prog.Write{Loc: prog.At("y"), Val: prog.Const(1)}}},
				prog.Write{Loc: prog.At("x"), Val: prog.Const(1)},
			}},
		},
	}
	doomed, err := AnyConsistent(p, core.Programmer, func(x *event.Execution) bool {
		// Transaction a (named "a") read y=0 and x=1.
		var sawY0, sawX1 bool
		for _, e := range x.Events {
			if e.Kind != event.KRead || e.Tx == event.NoTx {
				continue
			}
			if x.TxName[e.Tx] != "a" {
				continue
			}
			if x.Locs[e.Loc] == "y" && e.Val == 0 {
				sawY0 = true
			}
			if x.Locs[e.Loc] == "x" && e.Val == 1 {
				sawX1 = true
			}
		}
		return sawY0 && sawX1
	})
	if err != nil {
		t.Fatal(err)
	}
	if doomed {
		t.Error("doomed transaction (read y=0 then x=1) must be impossible")
	}
}

func TestBudgetExhaustion(t *testing.T) {
	p := privatization(false)
	_, err := Enumerate(p, Options{Config: core.Programmer, MaxNodes: 1})
	if err != ErrBudget {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
}

func TestVisitorEarlyStop(t *testing.T) {
	p := privatization(false)
	n := 0
	_, err := Enumerate(p, Options{
		Config: core.Programmer,
		Visit: func(*event.Execution, *Outcome) bool {
			n++
			return false
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("visitor called %d times after requesting stop", n)
	}
}

func TestUndeclaredCellError(t *testing.T) {
	p := &prog.Program{
		Name: "badcell",
		Locs: []string{"x", "z[0]"},
		Threads: []prog.Thread{{Name: "t1", Body: []prog.Stmt{
			prog.Read{RegName: "q", Loc: prog.At("x")},
			prog.Write{Loc: prog.AtIdx("z", prog.Reg("q")), Val: prog.Const(1)},
		}}},
		ExtraValues: []int{5}, // q=5 → z[5] undeclared
	}
	if _, err := Enumerate(p, Options{Config: core.Programmer}); err == nil {
		t.Fatal("expected undeclared-cell error")
	}
}

func keys(m map[string]*Outcome) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
