// Package exec exhaustively enumerates the consistent executions of a
// litmus program under a model configuration from internal/core.
//
// The enumeration follows the axiomatic ("candidate execution") style:
//
//  1. each thread is unfolded into its control-flow paths, forking reads
//     over the program's value universe (internal/prog);
//  2. for each path combination, every per-location coherence order (ww)
//     and every reads-from assignment (wr) is explored;
//  3. candidates are filtered by the consistency axioms. Consistency is
//     monotone in wr edges, so the reads-from search is a DFS with
//     early pruning: a partial assignment that is already inconsistent
//     cannot be completed to a consistent execution.
//
// Final outcomes (registers + final memory) are collected from complete
// executions (no thread diverged).
package exec

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"modtx/internal/core"
	"modtx/internal/event"
	"modtx/internal/prog"
)

// Options controls the enumeration.
type Options struct {
	Config core.Config
	// MaxNodes caps the number of consistency checks; exceeding it returns
	// ErrBudget. Zero means the default of 2,000,000.
	MaxNodes int
	// Visit, when non-nil, is called for every consistent execution
	// (complete or not). The execution is reused across calls; clone it to
	// retain. Returning false stops the enumeration early.
	Visit func(x *event.Execution, o *Outcome) bool
}

// ErrBudget reports that the node budget was exhausted.
var ErrBudget = errors.New("exec: enumeration budget exhausted")

// Outcome is the observable result of a complete execution.
type Outcome struct {
	Regs map[string]int // "thread.reg" -> value
	Mem  map[string]int // location -> final value
}

// Key returns a canonical string for the outcome.
func (o *Outcome) Key() string {
	var parts []string
	for k, v := range o.Regs {
		parts = append(parts, fmt.Sprintf("%s=%d", k, v))
	}
	sort.Strings(parts)
	var mem []string
	for k, v := range o.Mem {
		mem = append(mem, fmt.Sprintf("%s=%d", k, v))
	}
	sort.Strings(mem)
	return strings.Join(parts, " ") + " | " + strings.Join(mem, " ")
}

// Summary aggregates an enumeration.
type Summary struct {
	Outcomes   map[string]*Outcome // complete consistent outcomes by Key
	Consistent int                 // number of consistent executions (incl. incomplete)
	Candidates int                 // consistency checks performed
	Universe   []int               // read-value universe used
}

// Enumerate explores all candidate executions of p under opt.
func Enumerate(p *prog.Program, opt Options) (*Summary, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opt.MaxNodes == 0 {
		opt.MaxNodes = 2_000_000
	}
	universe := prog.ValueUniverse(p)
	paths := make([][]prog.Path, len(p.Threads))
	for i, th := range p.Threads {
		paths[i] = prog.ThreadPaths(th, universe)
	}
	e := &enumerator{
		p:        p,
		opt:      opt,
		universe: universe,
		summary: &Summary{
			Outcomes: make(map[string]*Outcome),
			Universe: universe,
		},
	}
	combo := make([]prog.Path, len(p.Threads))
	if err := e.combine(paths, 0, combo); err != nil && err != errStop {
		return e.summary, err
	}
	return e.summary, nil
}

var errStop = errors.New("exec: stopped by visitor")

type enumerator struct {
	p        *prog.Program
	opt      Options
	universe []int
	summary  *Summary
}

func (e *enumerator) combine(paths [][]prog.Path, i int, combo []prog.Path) error {
	if i == len(paths) {
		return e.candidate(combo)
	}
	for _, pth := range paths[i] {
		combo[i] = pth
		if err := e.combine(paths, i+1, combo); err != nil {
			return err
		}
	}
	return nil
}

// candidate builds the event skeleton for one path combination and explores
// its coherence orders and reads-from assignments.
func (e *enumerator) candidate(combo []prog.Path) error {
	x, reads, writesByLoc, err := e.skeleton(combo)
	if err != nil {
		return err
	}
	// Quick feasibility: every read needs at least one value-matching write.
	cands := make([][]int, len(reads))
	for i, rd := range reads {
		cands[i] = e.readCandidates(x, rd)
		if len(cands[i]) == 0 {
			return nil
		}
	}
	complete := true
	for _, pth := range combo {
		if !pth.Complete {
			complete = false
		}
	}
	locs := make([]int, 0, len(writesByLoc))
	for loc := range writesByLoc {
		locs = append(locs, loc)
	}
	sort.Ints(locs)
	return e.wwPerms(x, locs, 0, writesByLoc, reads, cands, combo, complete)
}

// skeleton constructs the execution's events (init transaction + one block
// per thread) with empty WR and construction-order WW.
func (e *enumerator) skeleton(combo []prog.Path) (*event.Execution, []int, map[int][]int, error) {
	p := e.p
	locID := make(map[string]int, len(p.Locs))
	for i, n := range p.Locs {
		locID[n] = i
	}
	x := &event.Execution{
		Locs:     append([]string(nil), p.Locs...),
		NThreads: len(p.Threads) + 1,
		TxStatus: []event.Status{event.Committed},
		TxName:   []string{"init"},
		WR:       make(map[int]int),
		WW:       make(map[int][]int),
	}
	add := func(ev event.Event) int {
		ev.ID = len(x.Events)
		x.Events = append(x.Events, ev)
		return ev.ID
	}
	add(event.Event{Thread: event.InitThread, Kind: event.KBegin, Loc: event.NoLoc, Tx: event.InitTx})
	for loc := range p.Locs {
		id := add(event.Event{Thread: event.InitThread, Kind: event.KWrite, Loc: loc, Tx: event.InitTx})
		x.WW[loc] = append(x.WW[loc], id)
	}
	add(event.Event{Thread: event.InitThread, Kind: event.KCommit, Loc: event.NoLoc, Tx: event.InitTx})

	var reads []int
	writesByLoc := make(map[int][]int)
	for ti, pth := range combo {
		thread := ti + 1
		curTx := event.NoTx
		for _, pe := range pth.Events {
			switch pe.Kind {
			case event.KBegin:
				curTx = len(x.TxStatus)
				x.TxStatus = append(x.TxStatus, event.Live)
				x.TxName = append(x.TxName, pe.Tx)
				add(event.Event{Thread: thread, Kind: event.KBegin, Loc: event.NoLoc, Tx: curTx})
			case event.KCommit:
				x.TxStatus[curTx] = event.Committed
				add(event.Event{Thread: thread, Kind: event.KCommit, Loc: event.NoLoc, Tx: curTx})
				curTx = event.NoTx
			case event.KAbort:
				x.TxStatus[curTx] = event.Aborted
				add(event.Event{Thread: thread, Kind: event.KAbort, Loc: event.NoLoc, Tx: curTx})
				curTx = event.NoTx
			case event.KRead, event.KWrite:
				loc, ok := locID[pe.Loc]
				if !ok {
					return nil, nil, nil, fmt.Errorf("exec: program %s touches undeclared location %q", e.p.Name, pe.Loc)
				}
				id := add(event.Event{Thread: thread, Kind: pe.Kind, Loc: loc, Val: pe.Val, Tx: curTx})
				if pe.Kind == event.KRead {
					reads = append(reads, id)
				} else {
					writesByLoc[loc] = append(writesByLoc[loc], id)
					x.WW[loc] = append(x.WW[loc], id)
				}
			}
		}
	}
	return x, reads, writesByLoc, nil
}

// readCandidates returns the writes that may fulfil the read: same
// location and value, and — per WF7 — aborted or live writers are visible
// only within their own transaction.
func (e *enumerator) readCandidates(x *event.Execution, rd int) []int {
	re := x.Ev(rd)
	var out []int
	for _, w := range x.WW[re.Loc] {
		we := x.Ev(w)
		if we.Val != re.Val {
			continue
		}
		if !x.IsPlain(w) && x.StatusOfEvent(w) != event.Committed && !x.SameTx(w, rd) {
			continue
		}
		out = append(out, w)
	}
	return out
}

// wwPerms enumerates coherence orders location by location, then hands the
// fully ordered execution to the reads-from DFS. The init write stays at
// timestamp 0.
func (e *enumerator) wwPerms(x *event.Execution, locs []int, li int,
	writesByLoc map[int][]int, reads []int, cands [][]int, combo []prog.Path, complete bool) error {
	if li == len(locs) {
		// Prune whole subtree if the execution is inconsistent before any
		// read is assigned (consistency is monotone in wr edges).
		if !e.check(x) {
			return e.budget()
		}
		return e.assignReads(x, reads, cands, 0, combo, complete)
	}
	loc := locs[li]
	writes := writesByLoc[loc]
	perm := append([]int(nil), writes...)
	var rec func(k int) error
	rec = func(k int) error {
		if k == len(perm) {
			x.WW[loc] = append(x.WW[loc][:1], perm...)
			return e.wwPerms(x, locs, li+1, writesByLoc, reads, cands, combo, complete)
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if err := rec(k + 1); err != nil {
				return err
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return nil
	}
	if err := rec(0); err != nil {
		return err
	}
	x.WW[loc] = append(x.WW[loc][:1], writes...)
	return nil
}

// assignReads runs the pruned DFS over reads-from assignments.
func (e *enumerator) assignReads(x *event.Execution, reads []int, cands [][]int,
	i int, combo []prog.Path, complete bool) error {
	if i == len(reads) {
		e.summary.Consistent++
		var out *Outcome
		if complete {
			out = e.outcome(x, combo)
			if _, dup := e.summary.Outcomes[out.Key()]; !dup {
				e.summary.Outcomes[out.Key()] = out
			}
		}
		if e.opt.Visit != nil && !e.opt.Visit(x, out) {
			return errStop
		}
		return nil
	}
	rd := reads[i]
	for _, w := range cands[i] {
		x.WR[rd] = w
		ok := e.check(x)
		if err := e.budget(); err != nil {
			delete(x.WR, rd)
			return err
		}
		if ok {
			if err := e.assignReads(x, reads, cands, i+1, combo, complete); err != nil {
				delete(x.WR, rd)
				return err
			}
		}
	}
	delete(x.WR, rd)
	return nil
}

func (e *enumerator) check(x *event.Execution) bool {
	e.summary.Candidates++
	return core.Consistent(x, e.opt.Config)
}

func (e *enumerator) budget() error {
	if e.summary.Candidates > e.opt.MaxNodes {
		return ErrBudget
	}
	return nil
}

func (e *enumerator) outcome(x *event.Execution, combo []prog.Path) *Outcome {
	o := &Outcome{Regs: make(map[string]int), Mem: make(map[string]int)}
	for ti, pth := range combo {
		name := e.p.Threads[ti].Name
		for reg, v := range pth.Regs {
			o.Regs[name+"."+reg] = v
		}
	}
	for loc, name := range x.Locs {
		if v, ok := x.FinalValue(loc); ok {
			o.Mem[name] = v
		}
	}
	return o
}

// Outcomes enumerates and returns the set of complete consistent outcomes.
func Outcomes(p *prog.Program, cfg core.Config) (map[string]*Outcome, error) {
	s, err := Enumerate(p, Options{Config: cfg})
	if err != nil {
		return nil, err
	}
	return s.Outcomes, nil
}

// Allowed reports whether some complete consistent execution satisfies pred.
func Allowed(p *prog.Program, cfg core.Config, pred func(*Outcome) bool) (bool, error) {
	found := false
	_, err := Enumerate(p, Options{
		Config: cfg,
		Visit: func(_ *event.Execution, o *Outcome) bool {
			if o != nil && pred(o) {
				found = true
				return false
			}
			return true
		},
	})
	if err != nil {
		return false, err
	}
	return found, nil
}

// AnyConsistent reports whether some consistent execution (complete or not)
// satisfies the execution-level predicate.
func AnyConsistent(p *prog.Program, cfg core.Config, pred func(*event.Execution) bool) (bool, error) {
	found := false
	_, err := Enumerate(p, Options{
		Config: cfg,
		Visit: func(x *event.Execution, _ *Outcome) bool {
			if pred(x) {
				found = true
				return false
			}
			return true
		},
	})
	if err != nil {
		return false, err
	}
	return found, nil
}
