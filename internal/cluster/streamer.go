package cluster

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"modtx/internal/kv"
	"modtx/internal/wal"
)

// Streamer is the primary side: it serves each connected replica every
// shard's WAL plus the marker log, catch-up then live tail.
//
// Per stream (one goroutine per shard per connection) the loop is:
//
//  1. Catch-up: wal.ScanSegments from the replica's cursor — read-only
//     against the live appender — sending raw records. If the cursor
//     predates the oldest retained segment (ErrCompacted), ship the
//     latest snapshot instead and resume from its sequence.
//  2. Attach a wal.Follower. If its low-water mark is above the scan
//     frontier (records were queued between scan and attach), drop it
//     and rescan; otherwise switch to the live tail.
//  3. Tail: forward the follower's batches, skipping the overlap below
//     the cursor. A follower killed by overflow or log rotation-gap
//     just falls back to step 1 — slow replicas and reconnects share
//     one repair path.
type Streamer struct {
	store *kv.Store
	limit int // follower buffer bytes per stream

	mu       sync.Mutex
	ln       net.Listener
	sessions map[*session]struct{}
	closed   bool
	wg       sync.WaitGroup

	// Stats, exposed via STATS REPL on the primary.
	connected atomic.Int64  // current sessions
	served    atomic.Uint64 // sessions ever
	records   atomic.Uint64 // record frames sent
	snapshots atomic.Uint64 // snapshot transfers sent
}

// followLimit is each stream's live-tail buffer: a replica falling
// this far behind the appender is re-fed from segments instead.
const followLimit = 4 << 20

const pingEvery = 1 * time.Second

// catchupBatch is the flush threshold for batched catch-up frames.
const catchupBatch = 32 << 10

// NewStreamer wraps a durable store. Opening fails on a store with no
// WAL — there is nothing to ship.
func NewStreamer(s *kv.Store) (*Streamer, error) {
	if !s.Durable() {
		return nil, kv.ErrNotDurable
	}
	return &Streamer{store: s, limit: followLimit, sessions: make(map[*session]struct{})}, nil
}

// Serve accepts replica connections on ln until Close (or a listener
// error). It owns ln and closes it on return.
func (st *Streamer) Serve(ln net.Listener) error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		ln.Close()
		return errors.New("cluster: streamer closed")
	}
	st.ln = ln
	st.mu.Unlock()
	defer ln.Close()
	for {
		conn, err := ln.Accept()
		if err != nil {
			st.mu.Lock()
			closed := st.closed
			st.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s := newSession(st, conn)
		st.mu.Lock()
		if st.closed {
			st.mu.Unlock()
			conn.Close()
			return nil
		}
		st.sessions[s] = struct{}{}
		st.wg.Add(1)
		st.mu.Unlock()
		go func() {
			defer st.wg.Done()
			st.serveSession(s)
		}()
	}
}

// Close stops accepting, tears down every session, and waits for the
// per-stream goroutines to drain.
func (st *Streamer) Close() {
	st.mu.Lock()
	st.closed = true
	ln := st.ln
	ss := make([]*session, 0, len(st.sessions))
	for s := range st.sessions {
		ss = append(ss, s)
	}
	st.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, s := range ss {
		s.close()
	}
	st.wg.Wait()
}

// StreamerStats is the primary-side replication snapshot (STATS REPL).
type StreamerStats struct {
	Role      string `json:"role"` // "primary"
	Connected int64  `json:"connected"`
	Served    uint64 `json:"served"`
	Records   uint64 `json:"records"`
	Snapshots uint64 `json:"snapshots"`
}

// Stats snapshots the streamer.
func (st *Streamer) Stats() StreamerStats {
	return StreamerStats{
		Role:      "primary",
		Connected: st.connected.Load(),
		Served:    st.served.Load(),
		Records:   st.records.Load(),
		Snapshots: st.snapshots.Load(),
	}
}

// session is one replica connection: a shared write lock over the
// conn, the set of live followers (closed on teardown so blocked
// Take calls unwind), and a cancel fanning out to every stream.
type session struct {
	st     *Streamer
	conn   net.Conn
	ctx    context.Context
	cancel context.CancelFunc

	wmu     sync.Mutex
	scratch []byte

	fmu       sync.Mutex
	followers map[*wal.Follower]struct{}
	dead      bool
}

func newSession(st *Streamer, conn net.Conn) *session {
	ctx, cancel := context.WithCancel(context.Background())
	return &session{
		st: st, conn: conn, ctx: ctx, cancel: cancel,
		followers: make(map[*wal.Follower]struct{}),
	}
}

func (s *session) close() {
	s.cancel()
	s.conn.Close()
	s.fmu.Lock()
	s.dead = true
	fs := make([]*wal.Follower, 0, len(s.followers))
	for f := range s.followers {
		fs = append(fs, f)
	}
	s.followers = nil
	s.fmu.Unlock()
	for _, f := range fs {
		f.Close()
	}
}

// track registers a follower for teardown; false means the session is
// already closing and the caller must not block on the follower.
func (s *session) track(f *wal.Follower) bool {
	s.fmu.Lock()
	defer s.fmu.Unlock()
	if s.dead {
		return false
	}
	s.followers[f] = struct{}{}
	return true
}

func (s *session) untrack(f *wal.Follower) {
	s.fmu.Lock()
	if s.followers != nil {
		delete(s.followers, f)
	}
	s.fmu.Unlock()
}

// writeFrame serializes frame writes from the per-shard goroutines.
func (s *session) writeFrame(typ uint8, shard uint32, payload []byte) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	s.scratch = AppendFrame(s.scratch[:0], typ, shard, payload)
	_, err := s.conn.Write(s.scratch)
	return err
}

// writeRaw sends pre-framed bytes — the catch-up path batches many
// record frames into one write, which is worth an order of magnitude
// in catch-up throughput over a syscall per record.
func (s *session) writeRaw(b []byte) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	_, err := s.conn.Write(b)
	return err
}

func (st *Streamer) serveSession(s *session) {
	defer func() {
		s.close()
		st.mu.Lock()
		delete(st.sessions, s)
		st.mu.Unlock()
		st.connected.Add(-1)
	}()
	st.connected.Add(1)
	st.served.Add(1)

	// Handshake: our positions first (so a fresh replica can size
	// itself), then the replica's cursors.
	shards, marker, err := st.store.ReplPositions()
	if err != nil {
		return
	}
	s.conn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := s.conn.Write(AppendHello(nil, Hello{Seqs: shards, Marker: marker})); err != nil {
		return
	}
	cur, err := ReadHello(s.conn)
	if err != nil || len(cur.Seqs) != len(shards) {
		return
	}
	s.conn.SetDeadline(time.Time{})

	// The replica sends nothing after its cursor hello: any read
	// result — data or EOF — means the connection is done.
	go func() {
		var one [1]byte
		s.conn.Read(one[:])
		s.close()
	}()

	var wg sync.WaitGroup
	streamErr := func(err error) {
		if err != nil && s.ctx.Err() == nil {
			s.close() // one stream failing kills the session
		}
	}
	for i := range cur.Seqs {
		wg.Add(1)
		go func(shard uint32, from uint64) {
			defer wg.Done()
			streamErr(st.streamShard(s, shard, from))
		}(uint32(i), cur.Seqs[i])
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		streamErr(st.streamShard(s, wal.TxnShard, cur.Marker))
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(pingEvery)
		defer t.Stop()
		for {
			select {
			case <-s.ctx.Done():
				return
			case <-t.C:
				if err := s.writeFrame(FramePing, 0, nil); err != nil {
					s.close()
					return
				}
			}
		}
	}()
	wg.Wait()
}

// streamShard runs one shard's stream (the marker log's for
// wal.TxnShard) until the session dies: catch-up from segments (or
// snapshot when compacted), then live tail, looping on follower death.
func (st *Streamer) streamShard(s *session, shard uint32, from uint64) error {
	dir, err := st.store.ReplDir(shard)
	if err != nil {
		return err
	}
	cursor := from
	if cursor == 0 {
		cursor = 1
	}
	var tail []byte  // follower batch buffer, recycled through Take
	var batch []byte // catch-up frame batch, flushed every catchupBatch bytes
	for s.ctx.Err() == nil {
		progressed := false
		// Catch-up until the follower attach races no queued records.
		var f *wal.Follower
		for {
			if s.ctx.Err() != nil {
				return nil
			}
			scanFrom := cursor
			batch = batch[:0]
			next, err := wal.ScanSegments(dir, shard, cursor, func(rec wal.Record, raw []byte) error {
				st.records.Add(1)
				batch = AppendFrame(batch, FrameRecord, shard, raw)
				if len(batch) >= catchupBatch {
					werr := s.writeRaw(batch)
					batch = batch[:0]
					return werr
				}
				return nil
			})
			if len(batch) > 0 {
				if werr := s.writeRaw(batch); werr != nil && err == nil {
					err = werr
				}
				batch = batch[:0]
			}
			if next > cursor {
				cursor = next
				progressed = true
			}
			if errors.Is(err, wal.ErrCompacted) {
				if shard == wal.TxnShard {
					// The marker log is never compacted; this is corruption.
					return fmt.Errorf("cluster: marker log: %w", err)
				}
				seq, recs, serr := wal.LatestSnapshot(dir, shard)
				if serr != nil {
					return serr
				}
				if err := st.sendSnapshot(s, shard, seq, recs); err != nil {
					return err
				}
				cursor = seq + 1
				progressed = true
				continue
			}
			if err != nil {
				return err
			}
			ff, low, ferr := st.store.ReplFollow(shard, st.limit)
			if ferr != nil {
				return ferr
			}
			if low > cursor {
				ff.Close() // records queued between scan and attach: rescan
				if cursor == scanFrom {
					// The log is ahead of the segments but the rescan found
					// nothing: a failed log's frontier never reaches disk, so
					// poll instead of spinning (and notice session close).
					select {
					case <-s.ctx.Done():
						return nil
					case <-time.After(20 * time.Millisecond):
					}
				}
				continue
			}
			if !s.track(ff) {
				ff.Close()
				return nil
			}
			f = ff
			break
		}
		// Live tail.
		for {
			b, _, ok := f.Take(tail)
			if !ok {
				break // dead: overflow, gap, or log/session close → re-catch-up
			}
			off := 0
			for off < len(b) {
				rec, n, derr := wal.DecodeRecord(b[off:])
				if derr != nil {
					s.untrack(f)
					f.Close()
					return derr // a log batch is always whole records
				}
				if rec.Seq >= cursor {
					if werr := s.writeFrame(FrameRecord, shard, b[off:off+n]); werr != nil {
						s.untrack(f)
						f.Close()
						return werr
					}
					st.records.Add(1)
					cursor = rec.Seq + 1
					progressed = true
				}
				off += n
			}
			tail = b
		}
		s.untrack(f)
		f.Close()
		if !progressed {
			// A dead-on-arrival follower with nothing new on disk (e.g.
			// the log is closing): don't spin.
			select {
			case <-s.ctx.Done():
			case <-time.After(20 * time.Millisecond):
			}
		}
	}
	return nil
}

// sendSnapshot ships a shard snapshot: begin (with its sequence), the
// chunk records re-encoded, end.
func (st *Streamer) sendSnapshot(s *session, shard uint32, seq uint64, recs []wal.Record) error {
	st.snapshots.Add(1)
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], seq)
	if err := s.writeFrame(FrameSnapBegin, shard, p[:]); err != nil {
		return err
	}
	var enc []byte
	for _, rec := range recs {
		var err error
		enc, err = wal.AppendRecord(enc[:0], rec.Shard, rec.Seq, rec.Ops)
		if err != nil {
			return err
		}
		if err := s.writeFrame(FrameSnapRec, shard, enc); err != nil {
			return err
		}
	}
	return s.writeFrame(FrameSnapEnd, shard, nil)
}
