package cluster

import (
	"math/rand/v2"
	"time"
)

// backoff produces reconnect delays: exponential doubling from base up
// to max, jittered so a fleet of replicas that lost the same primary
// does not reconnect in lockstep. Each delay is drawn uniformly from
// [d/2, d) — half the nominal value is kept as a floor so the schedule
// still backs off meaningfully. Not safe for concurrent use; each
// reconnect loop owns one.
type backoff struct {
	base, max time.Duration
	cur       time.Duration
	rng       *rand.Rand
}

func newBackoff(base, max time.Duration, seed uint64) *backoff {
	return &backoff{
		base: base, max: max, cur: base,
		rng: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
	}
}

// next returns the delay to sleep before the coming attempt and
// advances the schedule toward max.
func (b *backoff) next() time.Duration {
	d := b.cur
	if b.cur < b.max {
		b.cur *= 2
		if b.cur > b.max {
			b.cur = b.max
		}
	}
	return d/2 + time.Duration(b.rng.Int64N(int64(d/2)))
}

// reset rewinds to the base delay after a healthy session.
func (b *backoff) reset() { b.cur = b.base }
