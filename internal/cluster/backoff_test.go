package cluster

import (
	"testing"
	"time"
)

// TestBackoffSchedule pins the shape of the reconnect schedule: every
// delay jitters within [nominal/2, nominal), nominal doubles to the cap
// and stays there, and reset rewinds to base.
func TestBackoffSchedule(t *testing.T) {
	base, max := 250*time.Millisecond, 4*time.Second
	b := newBackoff(base, max, 42)

	nominal := base
	for i := 0; i < 10; i++ {
		d := b.next()
		if d < nominal/2 || d >= nominal {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", i, d, nominal/2, nominal)
		}
		if nominal < max {
			nominal *= 2
			if nominal > max {
				nominal = max
			}
		}
	}
	if nominal != max {
		t.Fatalf("schedule never reached cap: nominal %v", nominal)
	}

	b.reset()
	if d := b.next(); d < base/2 || d >= base {
		t.Fatalf("after reset: delay %v outside [%v, %v)", d, base/2, base)
	}
}

// TestBackoffJitterVaries: consecutive capped delays are not identical
// — the whole point of jitter.
func TestBackoffJitterVaries(t *testing.T) {
	b := newBackoff(250*time.Millisecond, 4*time.Second, 7)
	for i := 0; i < 8; i++ {
		b.next() // drive to the cap
	}
	seen := map[time.Duration]bool{}
	for i := 0; i < 16; i++ {
		seen[b.next()] = true
	}
	if len(seen) < 2 {
		t.Fatalf("16 capped delays were all identical: %v", seen)
	}
}

// TestBackoffDeterministic: the same seed yields the same schedule —
// chaos runs must be reproducible.
func TestBackoffDeterministic(t *testing.T) {
	a := newBackoff(250*time.Millisecond, 4*time.Second, 99)
	b := newBackoff(250*time.Millisecond, 4*time.Second, 99)
	for i := 0; i < 12; i++ {
		if da, db := a.next(), b.next(); da != db {
			t.Fatalf("attempt %d: %v != %v under the same seed", i, da, db)
		}
	}
}
