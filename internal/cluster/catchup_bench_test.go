package cluster

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"modtx/internal/kv"
	"modtx/internal/wal"
)

// BenchmarkCatchup50k times a cold replica attaching to a primary
// holding 50k committed records, dial to Ready — the full pipeline:
// segment scan, frame batching, wire, client batch apply, bulk key
// creation. The guarded regression is quadratic catch-up: per-key
// copy-on-write table growth once made this path ~75x slower. Each
// iteration pays an untimed ~20s preload, so run with -benchtime=1x.
func BenchmarkCatchup50k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		primary, err := kv.Open(kv.WithShards(8), kv.WithMetrics(false), kv.WithDurability(dir, wal.None))
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 50_000; j++ {
			if err := primary.Set(fmt.Sprintf("key-%06d", j), []byte("preloaded value")); err != nil {
				b.Fatal(err)
			}
		}
		st, err := NewStreamer(primary)
		if err != nil {
			b.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go st.Serve(ln)
		replica, err := kv.NewReplica(kv.WithShards(8), kv.WithMetrics(false))
		if err != nil {
			b.Fatal(err)
		}
		client := &Client{Addr: ln.Addr().String(), Replica: replica}
		ctx, cancel := context.WithCancel(context.Background())
		go client.Run(ctx)
		b.StartTimer()
		for !replica.Ready() {
			time.Sleep(100 * time.Microsecond)
		}
		b.StopTimer()
		cancel()
		st.Close()
		replica.Store().Close()
		primary.Close()
	}
}
