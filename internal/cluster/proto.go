// Package cluster is the replication wire layer: a primary-side
// Streamer that ships each shard's WAL (and the cross-shard commit
// marker log) over TCP, and a replica-side Client that feeds the
// stream into a kv.Replica. The protocol is deliberately dumb — raw
// WAL records in self-checking frames — because all replication
// semantics (per-shard prefix order, atomic cross-shard surfacing,
// idempotent replay) live in the record format and the replica's
// apply rules, not in the transport.
//
// Wire layout, all little-endian:
//
//	server hello:  "MTXREPL1\n" | u32 nshards | u64 pos[nshards] | u64 markerPos
//	client cursor: "MTXREPL1\n" | u32 nshards | u64 from[nshards] | u64 markerFrom
//	frames:        u8 type | u32 shard | u32 len | payload[len]
//
// The server speaks first, so a fresh replica discovers the shard
// count before committing to one. Cursors are "next sequence wanted";
// positions are "newest sequence committed". The marker log rides the
// same machinery under the pseudo-shard wal.TxnShard.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Magic opens both hellos. The trailing newline makes an accidental
// HTTP or text client mis-speak visibly.
const Magic = "MTXREPL1\n"

// Frame types.
const (
	// FrameRecord carries one encoded wal.Record for Shard (which is
	// wal.TxnShard for commit markers).
	FrameRecord = uint8(1)
	// FrameSnapBegin announces a snapshot transfer replacing Shard's
	// state: payload is the u64 snapshot sequence. Sent when the
	// replica's cursor predates the primary's oldest retained segment.
	FrameSnapBegin = uint8(2)
	// FrameSnapRec carries one snapshot chunk (an encoded wal.Record
	// holding a batch of KindSet/KindCounterSet ops).
	FrameSnapRec = uint8(3)
	// FrameSnapEnd closes the snapshot transfer; the stream then
	// resumes with FrameRecord at snapshot sequence + 1.
	FrameSnapEnd = uint8(4)
	// FramePing is a liveness beacon on an otherwise idle stream.
	FramePing = uint8(5)
)

const (
	frameHeaderLen = 9
	// MaxFrame bounds a frame payload: comfortably above the WAL's
	// segment-roll threshold, so any legitimately encoded record fits,
	// while a garbage length field fails fast instead of allocating.
	MaxFrame = 64 << 20
	// MaxShards bounds the hello's shard count the same way.
	MaxShards = 1 << 16
)

// ErrProto reports a malformed hello or frame; the connection is dead.
var ErrProto = errors.New("cluster: protocol error")

// Frame is one wire frame. Payload aliases the read buffer passed to
// ReadFrame and is valid only until the next call with that buffer.
type Frame struct {
	Type    uint8
	Shard   uint32
	Payload []byte
}

// AppendFrame appends a frame to dst and returns the extended slice.
func AppendFrame(dst []byte, typ uint8, shard uint32, payload []byte) []byte {
	dst = append(dst, typ)
	dst = binary.LittleEndian.AppendUint32(dst, shard)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// ReadFrame reads one frame from r, reusing buf (grown as needed) for
// the payload. It validates the type and length bounds; payload
// contents are the next layer's problem (records self-check via their
// CRC when decoded).
func ReadFrame(r io.Reader, buf []byte) (f Frame, _ []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return f, buf, err
	}
	f.Type = hdr[0]
	f.Shard = binary.LittleEndian.Uint32(hdr[1:5])
	n := binary.LittleEndian.Uint32(hdr[5:9])
	if f.Type < FrameRecord || f.Type > FramePing {
		return f, buf, fmt.Errorf("%w: frame type %d", ErrProto, f.Type)
	}
	if n > MaxFrame {
		return f, buf, fmt.Errorf("%w: frame length %d", ErrProto, n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return f, buf, err
	}
	f.Payload = buf
	return f, buf, nil
}

// Hello is either side's handshake: the server's positions (newest
// committed sequence per shard, plus the marker log's), or the
// client's cursors (next sequence wanted). Shards len(Seqs) is the
// shard count; Marker is the marker-log entry.
type Hello struct {
	Seqs   []uint64
	Marker uint64
}

// AppendHello appends a hello to dst.
func AppendHello(dst []byte, h Hello) []byte {
	dst = append(dst, Magic...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(h.Seqs)))
	for _, s := range h.Seqs {
		dst = binary.LittleEndian.AppendUint64(dst, s)
	}
	return binary.LittleEndian.AppendUint64(dst, h.Marker)
}

// ReadHello reads and validates a hello.
func ReadHello(r io.Reader) (Hello, error) {
	var h Hello
	hdr := make([]byte, len(Magic)+4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return h, err
	}
	if string(hdr[:len(Magic)]) != Magic {
		return h, fmt.Errorf("%w: bad magic", ErrProto)
	}
	n := binary.LittleEndian.Uint32(hdr[len(Magic):])
	if n == 0 || n > MaxShards {
		return h, fmt.Errorf("%w: shard count %d", ErrProto, n)
	}
	body := make([]byte, (int(n)+1)*8)
	if _, err := io.ReadFull(r, body); err != nil {
		return h, err
	}
	h.Seqs = make([]uint64, n)
	for i := range h.Seqs {
		h.Seqs[i] = binary.LittleEndian.Uint64(body[i*8:])
	}
	h.Marker = binary.LittleEndian.Uint64(body[int(n)*8:])
	return h, nil
}
