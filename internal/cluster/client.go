package cluster

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"modtx/internal/kv"
	"modtx/internal/wal"
)

// readTimeout bounds frame reads; the primary pings every second, so
// a silent connection this long is dead.
const readTimeout = 15 * time.Second

// Discover dials a primary and returns its handshake hello (shard
// count and positions) without starting a stream — how a fresh
// replica sizes itself before building its store.
func Discover(ctx context.Context, addr string) (Hello, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return Hello{}, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	return ReadHello(conn)
}

// Client feeds a primary's stream into a kv.Replica, reconnecting with
// backoff: every reconnect re-handshakes from the replica's current
// watermarks, and the replica's duplicate suppression absorbs overlap,
// so the loop needs no resume state of its own.
type Client struct {
	Addr    string
	Replica *kv.Replica
	// Logf, when set, receives connection lifecycle messages.
	Logf func(format string, args ...any)
	// Dial, when set, replaces the default dialer. The fault-injection
	// harness uses it to interpose a chaos network; nil means net.Dialer.
	Dial func(ctx context.Context, network, addr string) (net.Conn, error)

	connects  atomic.Uint64
	connected atomic.Bool
	mu        sync.Mutex
	lastErr   string
}

// ClientStats is the replica-side connection snapshot, merged with
// kv.ReplicaStats into STATS REPL.
type ClientStats struct {
	Role      string `json:"role"` // "replica"
	Primary   string `json:"primary"`
	Connected bool   `json:"connected"`
	Connects  uint64 `json:"connects"`
	LastError string `json:"last_error,omitempty"`
}

// Stats snapshots the client.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	lastErr := c.lastErr
	c.mu.Unlock()
	return ClientStats{
		Role:      "replica",
		Primary:   c.Addr,
		Connected: c.connected.Load(),
		Connects:  c.connects.Load(),
		LastError: lastErr,
	}
}

func (c *Client) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

func (c *Client) noteErr(err error) {
	c.mu.Lock()
	c.lastErr = err.Error()
	c.mu.Unlock()
}

// Run streams until ctx is done, reconnecting on transient errors.
// A protocol-level mismatch (wrong magic, wrong shard count) is a
// configuration error and returns immediately instead of retrying.
func (c *Client) Run(ctx context.Context) error {
	bo := newBackoff(250*time.Millisecond, 4*time.Second, rand.Uint64())
	for {
		start := time.Now()
		err := c.session(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if errors.Is(err, ErrProto) {
			return err
		}
		if err != nil {
			c.noteErr(err)
			c.logf("replica: stream from %s: %v (reconnecting)", c.Addr, err)
		}
		if time.Since(start) > 10*time.Second {
			bo.reset() // the last session was healthy
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(bo.next()):
		}
	}
}

// snapState accumulates one in-flight snapshot transfer for a shard.
type snapState struct {
	seq  uint64
	recs []wal.Record
}

func (c *Client) dial(ctx context.Context) (net.Conn, error) {
	if c.Dial != nil {
		return c.Dial(ctx, "tcp", c.Addr)
	}
	var d net.Dialer
	return d.DialContext(ctx, "tcp", c.Addr)
}

func (c *Client) session(ctx context.Context) error {
	conn, err := c.dial(ctx)
	if err != nil {
		return err
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	r := c.Replica
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	hello, err := ReadHello(conn)
	if err != nil {
		return err
	}
	if len(hello.Seqs) != r.Shards() {
		return fmt.Errorf("%w: primary has %d shards, replica %d", ErrProto, len(hello.Seqs), r.Shards())
	}
	r.SetTarget(hello.Seqs)
	cur := Hello{Seqs: make([]uint64, r.Shards()), Marker: r.Stats().MarkerSeq + 1}
	for i := range cur.Seqs {
		cur.Seqs[i] = r.Watermark(i) + 1
	}
	if _, err := conn.Write(AppendHello(nil, cur)); err != nil {
		return err
	}
	conn.SetDeadline(time.Time{})
	c.connects.Add(1)
	c.connected.Store(true)
	defer c.connected.Store(false)
	c.logf("replica: streaming from %s (%d shards)", c.Addr, r.Shards())

	snaps := make(map[uint32]*snapState)
	// Buffered reads: frames are small and the catch-up path sends them
	// in dense batches, so reading through a buffer collapses thousands
	// of read syscalls; the per-frame deadline still applies to the
	// underlying conn.
	br := bufio.NewReaderSize(conn, 64<<10)
	// Records accumulate while more frames are already buffered and
	// apply in one batch when the read would block (or at the cap):
	// batch apply is what lets the replica merge catch-up runs into few
	// local transactions instead of one per record.
	const maxPending = 1024
	var pending []wal.Record
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		err := r.ApplyRecords(pending)
		pending = pending[:0]
		return err
	}
	var buf []byte
	for {
		conn.SetReadDeadline(time.Now().Add(readTimeout))
		var f Frame
		f, buf, err = ReadFrame(br, buf)
		if err != nil {
			return err
		}
		switch f.Type {
		case FramePing:
			if err := flush(); err != nil {
				return err
			}
		case FrameRecord:
			rec, n, derr := wal.DecodeRecord(f.Payload)
			if derr != nil || n != len(f.Payload) || rec.Shard != f.Shard {
				return fmt.Errorf("%w: bad record frame", ErrProto)
			}
			pending = append(pending, rec)
			if len(pending) >= maxPending || br.Buffered() == 0 {
				if aerr := flush(); aerr != nil {
					// A gap means our cursor raced compaction; reconnecting
					// re-handshakes and takes the snapshot path.
					return aerr
				}
			}
		case FrameSnapBegin:
			if err := flush(); err != nil {
				return err
			}
			if len(f.Payload) != 8 {
				return fmt.Errorf("%w: bad snapshot begin", ErrProto)
			}
			snaps[f.Shard] = &snapState{seq: binary.LittleEndian.Uint64(f.Payload)}
		case FrameSnapRec:
			st := snaps[f.Shard]
			if st == nil {
				return fmt.Errorf("%w: snapshot record outside transfer", ErrProto)
			}
			rec, n, derr := wal.DecodeRecord(f.Payload)
			if derr != nil || n != len(f.Payload) {
				return fmt.Errorf("%w: bad snapshot record", ErrProto)
			}
			st.recs = append(st.recs, rec)
		case FrameSnapEnd:
			if err := flush(); err != nil {
				return err
			}
			st := snaps[f.Shard]
			if st == nil {
				return fmt.Errorf("%w: snapshot end outside transfer", ErrProto)
			}
			delete(snaps, f.Shard)
			if err := r.ResetShard(int(f.Shard), st.seq, st.recs); err != nil {
				return err
			}
		}
	}
}
