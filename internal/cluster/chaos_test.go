package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"modtx/internal/fault"
	"modtx/internal/kv"
	"modtx/internal/stm"
	"modtx/internal/wal"
)

// chaosSeed fixes the fault schedule. CI runs exactly this seed; a
// failure reproduces locally with no search.
const chaosSeed = 0xC4A05

// chaosListener wraps accepted conns in the fault injector so the
// streamer's writes (the primary→replica direction, where the records
// flow) are subject to cuts and stalls, not just the replica's reads.
type chaosListener struct {
	net.Listener
	n *fault.Net
}

func (l chaosListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.n.Wrap(c), nil
}

// TestChaosTransfers is the end-to-end chaos harness: a cross-shard
// transfer workload on a durable primary, streamed to a replica through
// a faulty network over a faulty disk, in three phases —
//
//	A: network chaos (mid-frame cuts, delays, dial failures, one full
//	   partition cycle) while transfers run. Invariants: the primary's
//	   total is conserved, the replica never exposes a partial
//	   cross-shard transaction (its total is always 0 or the full sum),
//	   and once the network heals the replica converges per account.
//	B: a disk fault latches one shard's WAL. The store is configured to
//	   shed durability: it must transition to degraded, keep serving
//	   writes, and count every commit the dead log refused.
//	C: the disk heals and the primary reopens. Recovery's cross-shard
//	   rollback must yield a transaction-consistent state: the total is
//	   conserved exactly.
//
// The schedule is seeded: every run injects the same faults in the same
// call order.
func TestChaosTransfers(t *testing.T) {
	for _, eng := range stm.Engines() {
		t.Run(eng.String(), func(t *testing.T) { runChaos(t, eng) })
	}
}

func runChaos(t *testing.T, eng stm.Engine) {
	const (
		accounts  = 16
		seedBal   = 1000
		total     = accounts * seedBal
		transfers = 200
	)

	dir := t.TempDir()
	dfs := fault.NewDiskFS(nil, fault.DiskPlan{
		Seed:        chaosSeed,
		Latency:     200 * time.Microsecond,
		LatencyProb: 0.02,
	})
	open := func() *kv.Store {
		s, err := kv.Open(
			kv.WithDurability(dir, wal.Batch),
			kv.WithShards(4),
			kv.WithMetrics(false),
			kv.WithEngine(eng),
			kv.WithWALFS(dfs),
			kv.WithDegradedMode(kv.DegradeShed),
		)
		if err != nil {
			t.Fatalf("open primary: %v", err)
		}
		return s
	}
	p := open()

	keys := make([]string, accounts)
	for i := range keys {
		keys[i] = fmt.Sprintf("acct-%02d", i)
	}
	// One cross-shard transaction seeds every balance: the replica either
	// sees no accounts or all of them, never a partial ledger.
	if err := p.Update(keys, func(tx *kv.Txn) error {
		for _, k := range keys {
			tx.Add(k, seedBal)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	sumOf := func(s *kv.Store) (sum int64, all bool) {
		err := s.View(keys, func(tx *kv.ViewTxn) error {
			sum, all = 0, true // optimistic engines re-run the closure on conflict
			for _, k := range keys {
				v, ok := tx.Counter(k)
				if !ok {
					all = false
				}
				sum += v
			}
			return nil
		})
		if err != nil {
			return 0, false
		}
		return
	}

	// The chaos network sits on both sides of the stream: the listener
	// wraps the streamer's conns, the client dials through it.
	cnet := fault.NewNet(fault.NetPlan{
		Seed:        chaosSeed,
		CutProb:     0.01,
		DelayProb:   0.05,
		Delay:       500 * time.Microsecond,
		StallProb:   0.001,
		Stall:       20 * time.Millisecond,
		DialErrProb: 0.05,
	})
	st, err := NewStreamer(p)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		st.Serve(chaosListener{Listener: ln, n: cnet})
	}()
	addr := ln.Addr().String()

	r, err := kv.NewReplica(kv.WithShards(4), kv.WithMetrics(false), kv.WithEngine(eng))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Store().Close()
	ctx, cancel := context.WithCancel(context.Background())
	clientDone := make(chan struct{})
	c := &Client{Addr: addr, Replica: r, Dial: cnet.Dial}
	go func() {
		defer close(clientDone)
		if err := c.Run(ctx); err != nil && ctx.Err() == nil && !errors.Is(err, ErrProto) {
			t.Errorf("client: %v", err)
		}
	}()
	stopClient := func() { cancel(); <-clientDone }

	waitFor(t, "chaos catch-up", r.Ready)

	// Replica reader: the total it can observe is 0 (ledger not yet
	// applied) or the full sum — anything else is a torn cross-shard
	// transaction leaking through the stream.
	stopRead := make(chan struct{})
	readDone := make(chan struct{})
	var violations atomic.Int64
	go func() {
		defer close(readDone)
		for {
			select {
			case <-stopRead:
				return
			default:
			}
			sum, all := sumOf(r.Store())
			if all && sum != total {
				violations.Add(1)
			}
		}
	}()

	// Phase A: transfers under network chaos, with a full partition for
	// the middle third of the run.
	rng := rand.New(rand.NewPCG(chaosSeed, chaosSeed>>1|1))
	xshard := 1 // the seeding transaction spans every shard
	for i := 0; i < transfers; i++ {
		switch i {
		case transfers / 3:
			cnet.Partition(true)
			// Partitioning kills the live conns, so the client's blocked
			// read fails now; holding the partition past its first backoff
			// forces at least one redial to be refused by it.
			time.Sleep(600 * time.Millisecond)
		case 2 * transfers / 3:
			cnet.Partition(false)
		}
		from, to := rng.IntN(accounts), rng.IntN(accounts)
		if from == to {
			to = (to + 1) % accounts
		}
		if p.ShardOf(keys[from]) != p.ShardOf(keys[to]) {
			xshard++
		}
		if err := p.Update([]string{keys[from], keys[to]}, func(tx *kv.Txn) error {
			tx.Add(keys[from], -1)
			tx.Add(keys[to], 1)
			return nil
		}); err != nil {
			t.Fatalf("transfer %d: %v", i, err)
		}
	}
	cnet.Partition(false) // idempotent: make sure the network is up

	if sum, all := sumOf(p); !all || sum != total {
		t.Fatalf("primary sum after chaos = %d (all=%v), want %d", sum, all, total)
	}

	// Convergence: once dials succeed again the client re-handshakes
	// from its watermarks and drains the backlog. Reconnect backoff caps
	// at 4s, so give it room.
	deadline := time.Now().Add(60 * time.Second)
	for {
		sum, all := sumOf(r.Store())
		if all && sum == total && r.Stats().XApplied >= uint64(xshard) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never converged: sum=%d all=%v xapplied=%d",
				sum, all, r.Stats().XApplied)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Per-account equality, not just the total.
	for _, k := range keys {
		pv, _, _ := p.CounterGet(k)
		rv, _, _ := r.Store().CounterGet(k)
		if pv != rv {
			t.Fatalf("%s: primary %d, replica %d", k, pv, rv)
		}
	}

	close(stopRead)
	<-readDone
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d torn cross-shard transactions observed on the replica", v)
	}
	ns := cnet.Stats()
	if ns.Cuts+ns.Delays+ns.Stalls+ns.DialErrs == 0 {
		t.Fatal("network chaos injected nothing — the harness is not wired in")
	}
	if ns.Partitions == 0 {
		t.Fatal("the partition was never exercised: no operation was refused by it")
	}

	// Phase B: the disk fails under the WAL. Shed mode keeps the store
	// serving while counting what the dead log refused.
	dfs.FailNextWrite(fault.ErrIO)
	for i := 0; i < 50; i++ {
		if err := p.Set("chaos-probe", []byte{byte(i)}); err != nil {
			t.Fatalf("shed-mode write failed: %v", err)
		}
		if deg, _ := p.Degraded(); deg {
			break
		}
		time.Sleep(time.Millisecond)
	}
	deg, derr := p.Degraded()
	if !deg {
		t.Fatal("disk fault did not transition the store to degraded")
	}
	if !errors.Is(derr, fault.ErrInjected) {
		t.Fatalf("degraded cause: %v", derr)
	}
	ws := p.WALStats()
	if !ws.Degraded || ws.DegradedMode != "shed-durability" {
		t.Fatalf("WALStats after fault: %+v", ws)
	}
	// Keep committing into the degraded store: sum conservation holds in
	// memory even though one shard's log is dead.
	for i := 0; i < 20; i++ {
		from, to := rng.IntN(accounts), rng.IntN(accounts)
		if from == to {
			to = (to + 1) % accounts
		}
		if err := p.Update([]string{keys[from], keys[to]}, func(tx *kv.Txn) error {
			tx.Add(keys[from], -1)
			tx.Add(keys[to], 1)
			return nil
		}); err != nil {
			t.Fatalf("degraded transfer %d: %v", i, err)
		}
	}
	if sum, all := sumOf(p); !all || sum != total {
		t.Fatalf("degraded primary sum = %d (all=%v), want %d", sum, all, total)
	}

	shed := p.WALStats().ShedWrites

	// Tear down the stream before recovery.
	stopClient()
	st.Close()
	<-serveDone
	p.Close() // a close error is expected: one log is latched

	// Phase C: disk repaired, primary reopens. Some shard logs carry
	// transactions the dead log never saw; recovery's marker-gated
	// rollback must trim to a transaction-consistent prefix, so the
	// total is conserved exactly.
	dfs.Heal()
	p2 := open()
	defer p2.Close()
	if deg, _ := p2.Degraded(); deg {
		t.Fatal("reopened store is degraded")
	}
	if sum, all := sumOf(p2); !all || sum != total {
		t.Fatalf("recovered sum = %d (all=%v), want %d", sum, all, total)
	}
	ds := dfs.Stats()
	t.Logf("chaos stats: xshard=%d/%d shed=%d disk=%+v net=%+v",
		xshard, transfers+1, shed, ds, ns)
	if ds.WriteErrs == 0 {
		t.Fatal("disk chaos injected nothing")
	}
}
