package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"modtx/internal/kv"
	"modtx/internal/wal"
)

func TestProtoRoundTrip(t *testing.T) {
	h := Hello{Seqs: []uint64{5, 0, 12, 3}, Marker: 7}
	got, err := ReadHello(bytes.NewReader(AppendHello(nil, h)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Marker != h.Marker || len(got.Seqs) != len(h.Seqs) {
		t.Fatalf("hello round trip: %+v vs %+v", got, h)
	}
	for i := range h.Seqs {
		if got.Seqs[i] != h.Seqs[i] {
			t.Fatalf("seq[%d] = %d, want %d", i, got.Seqs[i], h.Seqs[i])
		}
	}

	var wire []byte
	wire = AppendFrame(wire, FrameRecord, 3, []byte("payload"))
	wire = AppendFrame(wire, FramePing, 0, nil)
	r := bytes.NewReader(wire)
	f, buf, err := ReadFrame(r, nil)
	if err != nil || f.Type != FrameRecord || f.Shard != 3 || string(f.Payload) != "payload" {
		t.Fatalf("frame 1: %+v, %v", f, err)
	}
	f, _, err = ReadFrame(r, buf)
	if err != nil || f.Type != FramePing || len(f.Payload) != 0 {
		t.Fatalf("frame 2: %+v, %v", f, err)
	}
}

// testPrimary boots a durable primary with a streamer on a loopback
// listener, returning the store, the streamer, the address, and a
// cleanup.
func testPrimary(t *testing.T, opts ...kv.Option) (*kv.Store, *Streamer, string, func()) {
	t.Helper()
	dir := t.TempDir()
	opts = append([]kv.Option{
		kv.WithDurability(dir, wal.Batch),
		kv.WithShards(4),
		kv.WithMetrics(false),
	}, opts...)
	s, err := kv.Open(opts...)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStreamer(s)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		st.Serve(ln)
	}()
	return s, st, ln.Addr().String(), func() {
		st.Close()
		<-done
		s.Close()
	}
}

func startClient(t *testing.T, addr string, r *kv.Replica) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	c := &Client{Addr: addr, Replica: r}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := c.Run(ctx); err != nil && ctx.Err() == nil {
			t.Errorf("client: %v", err)
		}
	}()
	return func() {
		cancel()
		<-done
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func distinctShardPair(s *kv.Store, prefix string) (a, b string) {
	a = prefix + "-a"
	for n := 0; ; n++ {
		b = fmt.Sprintf("%s-b%d", prefix, n)
		if s.ShardOf(b) != s.ShardOf(a) {
			return a, b
		}
	}
}

// TestClusterLiveReplication is the wire-level tentpole test: catch-up
// of pre-handshake writes, live tail of post-handshake writes
// (including cross-shard transactions), convergence, and the replica
// never serving a partial cross-shard transaction while it streams.
func TestClusterLiveReplication(t *testing.T) {
	p, _, addr, cleanup := testPrimary(t)
	defer cleanup()

	// Catch-up material: written before any replica exists.
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("pre-%02d", i)
		if err := p.Set(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	a, b := distinctShardPair(p, "acct")
	const seed = int64(1000)
	if err := p.Update([]string{a, b}, func(t *kv.Txn) error {
		t.Add(a, seed)
		t.Add(b, seed)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	hello, err := Discover(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	r, err := kv.NewReplica(kv.WithShards(len(hello.Seqs)), kv.WithMetrics(false))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Store().Close()
	stop := startClient(t, addr, r)
	defer stop()
	waitFor(t, "catch-up", r.Ready)

	// Live phase: cross-shard transfers on the primary while replica
	// readers check the invariant sum.
	stopRead := make(chan struct{})
	var violations atomic.Int64
	readDone := make(chan struct{})
	go func() {
		defer close(readDone)
		for {
			select {
			case <-stopRead:
				return
			default:
			}
			var sum int64
			var both bool
			if err := r.Store().View([]string{a, b}, func(t *kv.ViewTxn) error {
				va, oka := t.Counter(a)
				vb, okb := t.Counter(b)
				both = oka && okb
				sum = va + vb
				return nil
			}); err != nil {
				violations.Add(1)
				return
			}
			if both && sum != 2*seed {
				violations.Add(1)
			}
		}
	}()

	const transfers = 150
	for i := 0; i < transfers; i++ {
		if err := p.Update([]string{a, b}, func(t *kv.Txn) error {
			t.Add(a, -1)
			t.Add(b, 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Set("live-done", []byte("yes")); err != nil {
		t.Fatal(err)
	}

	waitFor(t, "live convergence", func() bool {
		var va, vb int64
		var ok bool
		r.Store().View([]string{a, b}, func(t *kv.ViewTxn) error {
			va, _ = t.Counter(a)
			vb, ok = t.Counter(b)
			return nil
		})
		return ok && va == seed-transfers && vb == seed+transfers
	})
	close(stopRead)
	<-readDone
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d atomicity violations on the replica", v)
	}
	waitFor(t, "marker convergence", func() bool {
		return r.Stats().XApplied >= transfers+1
	})
	v, ok, err := r.Store().Get("pre-07")
	if err != nil || !ok || string(v) != "v7" {
		t.Fatalf("pre-07 = %q, %v, %v", v, ok, err)
	}
}

// TestClusterReconnect kills the replica's connection mid-stream and
// checks it re-catches up from its watermarks without double-applying.
func TestClusterReconnect(t *testing.T) {
	p, _, addr, cleanup := testPrimary(t)
	defer cleanup()
	if _, err := p.CounterAdd("ctr", 5); err != nil {
		t.Fatal(err)
	}

	hello, err := Discover(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	r, err := kv.NewReplica(kv.WithShards(len(hello.Seqs)), kv.WithMetrics(false))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Store().Close()
	stop := startClient(t, addr, r)
	waitFor(t, "first catch-up", r.Ready)
	stop() // drop the connection entirely

	if _, err := p.CounterAdd("ctr", 7); err != nil {
		t.Fatal(err)
	}
	stop2 := startClient(t, addr, r)
	defer stop2()
	waitFor(t, "re-catch-up", func() bool {
		v, ok, _ := r.Store().CounterGet("ctr")
		return ok && v == 12
	})
}

// TestClusterSnapshotCatchup forces the compacted path: the primary
// checkpoints and compacts its log before the replica ever connects,
// so catch-up must go through a snapshot transfer (FrameSnapBegin).
func TestClusterSnapshotCatchup(t *testing.T) {
	// Tiny segments so rotations close segments and Checkpoint's
	// compaction can delete them — forcing ErrCompacted for a replica
	// starting from sequence 1.
	p, st, addr, cleanup := testPrimary(t, kv.WithWALSegmentBytes(256))
	defer cleanup()
	for i := 0; i < 40; i++ {
		if err := p.Set(fmt.Sprintf("snap-%02d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	hello, err := Discover(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	r, err := kv.NewReplica(kv.WithShards(len(hello.Seqs)), kv.WithMetrics(false))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Store().Close()
	stop := startClient(t, addr, r)
	defer stop()
	waitFor(t, "snapshot catch-up", r.Ready)
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("snap-%02d", i)
		if v, ok, err := r.Store().Get(k); err != nil || !ok || string(v) != "x" {
			t.Fatalf("%s = %q, %v, %v", k, v, ok, err)
		}
	}
	if st.Stats().Snapshots == 0 {
		t.Fatal("catch-up did not use the snapshot path")
	}
}

// TestClusterShardMismatch: a replica sized wrongly must fail fast,
// not retry forever.
func TestClusterShardMismatch(t *testing.T) {
	_, _, addr, cleanup := testPrimary(t)
	defer cleanup()
	r, err := kv.NewReplica(kv.WithShards(64), kv.WithMetrics(false))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Store().Close()
	c := &Client{Addr: addr, Replica: r}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Run(ctx); err == nil || ctx.Err() != nil {
		t.Fatalf("mismatched client: %v (ctx %v)", err, ctx.Err())
	}
}
