package cluster

import (
	"bytes"
	"encoding/binary"
	"testing"

	"modtx/internal/wal"
)

// FuzzReplFrame drives the replication wire decoder — frame reader
// plus the record-decode step the client performs on FrameRecord —
// with arbitrary bytes. It must never panic, never allocate from a
// hostile length field beyond the bound, and corrupt frames must
// never yield an applicable record: either ReadFrame rejects the
// frame, or the payload fails wal.DecodeRecord, or the decode is a
// valid record (whose CRC passed) — there is no fourth outcome where
// garbage silently applies.
func FuzzReplFrame(f *testing.F) {
	rec, err := wal.AppendRecordFlags(nil, 1, 7, wal.FlagCross, 0x1122334455667788,
		[]wal.Op{{Kind: wal.KindSet, Key: "k", Val: []byte("v")}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(AppendFrame(nil, FrameRecord, 1, rec))
	f.Add(AppendFrame(nil, FramePing, 0, nil))
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], 42)
	f.Add(AppendFrame(nil, FrameSnapBegin, 3, p[:]))
	f.Add(AppendFrame(nil, FrameSnapEnd, 3, nil))
	// Torn header, bad type, hostile length.
	f.Add(AppendFrame(nil, FrameRecord, 1, rec)[:5])
	f.Add([]byte{99, 0, 0, 0, 0, 0, 0, 0, 0})
	hostile := []byte{FrameRecord, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff}
	f.Add(hostile)
	// A record frame whose payload is bit-flipped.
	broken := AppendFrame(nil, FrameRecord, 1, rec)
	broken[len(broken)-2] ^= 0x40
	f.Add(broken)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var buf []byte
		for {
			f, nbuf, err := ReadFrame(r, buf)
			if err != nil {
				return // rejected: connection would drop
			}
			buf = nbuf
			if len(f.Payload) > MaxFrame {
				t.Fatalf("payload of %d bytes exceeds MaxFrame", len(f.Payload))
			}
			if f.Type < FrameRecord || f.Type > FramePing {
				t.Fatalf("ReadFrame passed invalid type %d", f.Type)
			}
			if f.Type == FrameRecord || f.Type == FrameSnapRec {
				rec, n, derr := wal.DecodeRecord(f.Payload)
				if derr != nil {
					continue // corrupt record: client drops the connection
				}
				// The client additionally requires the frame to contain
				// exactly one record addressed to its declared shard;
				// emulate that gate.
				if n != len(f.Payload) || rec.Shard != f.Shard {
					continue
				}
				// A record that passes every gate decoded through the
				// CRC-checked WAL codec: re-encoding it must succeed
				// (it is structurally valid, so it could legitimately
				// apply).
				var flags uint8
				if rec.Cross {
					flags = wal.FlagCross
				}
				if _, rerr := wal.AppendRecordFlags(nil, rec.Shard, rec.Seq, flags, rec.Txn, rec.Ops); rerr != nil {
					t.Fatalf("accepted record does not re-encode: %v", rerr)
				}
			}
		}
	})
}

// FuzzReplHello drives the handshake decoder the same way.
func FuzzReplHello(f *testing.F) {
	f.Add(AppendHello(nil, Hello{Seqs: []uint64{3, 0, 9}, Marker: 2}))
	f.Add([]byte(Magic))
	f.Add([]byte("GET / HTTP/1.1\r\n\r\n"))
	huge := append([]byte(Magic), 0xff, 0xff, 0xff, 0xff)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ReadHello(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(h.Seqs) == 0 || len(h.Seqs) > MaxShards {
			t.Fatalf("hello with %d shards accepted", len(h.Seqs))
		}
		re := AppendHello(nil, h)
		if _, rerr := ReadHello(bytes.NewReader(re)); rerr != nil {
			t.Fatalf("hello does not round-trip: %v", rerr)
		}
	})
}
