package stm

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// clockModes is every registered clock mode: clock-sensitive suites run
// against each, so a new mode cannot merge without passing them.
var clockModes = ClockModes()

// forEachEngineClock runs f on every (engine, clock mode) pair — the
// full transactional matrix.
func forEachEngineClock(t *testing.T, f func(t *testing.T, s *STM)) {
	for _, e := range engines {
		for _, cm := range clockModes {
			e, cm := e, cm
			t.Run(e.String()+"/"+cm.String(), func(t *testing.T) {
				f(t, New(WithEngine(e), WithClock(cm)))
			})
		}
	}
}

// TestClockRegistry pins the clock-mode registry: enum values, canonical
// names, the parse round trip and the documented aliases.
func TestClockRegistry(t *testing.T) {
	want := []ClockMode{ClockShared, ClockDeferred}
	got := ClockModes()
	if len(got) != len(want) {
		t.Fatalf("ClockModes() = %v, want %v", got, want)
	}
	names := ClockNames()
	for i, m := range got {
		if m != want[i] {
			t.Fatalf("ClockModes()[%d] = %v, want %v", i, m, want[i])
		}
		if m.String() != names[i] {
			t.Errorf("String/ClockNames disagree for %v: %q vs %q", m, m.String(), names[i])
		}
		parsed, err := ParseClock(m.String())
		if err != nil || parsed != m {
			t.Errorf("ParseClock(%q) = %v, %v; want %v", m.String(), parsed, err, m)
		}
		if ClockDoc(m) == "" {
			t.Errorf("clock mode %v has no doc line", m)
		}
	}
	for _, tc := range []struct {
		in   string
		want ClockMode
	}{
		{"shared", ClockShared},
		{"GV1", ClockShared},
		{"deferred", ClockDeferred},
		{"gv5", ClockDeferred},
		{"leased", ClockDeferred},
		{" Deferred ", ClockDeferred},
	} {
		got, err := ParseClock(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseClock(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseClock("nope"); err == nil {
		t.Fatal("ParseClock accepted an unknown name")
	} else if !strings.Contains(err.Error(), "shared") || !strings.Contains(err.Error(), "deferred") {
		t.Errorf("parse error does not enumerate valid names: %v", err)
	}
	if s := ClockMode(99).String(); s != "clock(99)" {
		t.Errorf("unregistered mode String() = %q", s)
	}
	if ClockDoc(ClockMode(99)) != "" {
		t.Error("unregistered mode has a doc line")
	}
}

// TestClockModeSelected pins the New wiring: the option reaches the
// instance and defaults to shared.
func TestClockModeSelected(t *testing.T) {
	if got := New().Clock(); got != ClockShared {
		t.Fatalf("default clock = %v, want shared", got)
	}
	if got := New(WithClock(ClockDeferred)).Clock(); got != ClockDeferred {
		t.Fatalf("WithClock(deferred) ignored: %v", got)
	}
}

// TestClockConcurrentCounter is the contended-counter correctness check
// across the full engine × clock matrix: under the deferred clock,
// distinct commits may share a write version, and this is the workload
// that would lose increments if validation mistook one commit for
// another.
func TestClockConcurrentCounter(t *testing.T) {
	const goroutines = 8
	const perG = 150
	forEachEngineClock(t, func(t *testing.T, s *STM) {
		c := s.NewVar("c", 0)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					if err := s.Atomically(func(tx *Tx) error {
						tx.Write(c, tx.Read(c)+1)
						return nil
					}); err != nil {
						t.Errorf("increment failed: %v", err)
						return
					}
				}
			}()
		}
		wg.Wait()
		if got := c.Load(); got != goroutines*perG {
			t.Errorf("counter = %d, want %d", got, goroutines*perG)
		}
	})
}

// TestMonotonicSnapshot is the dedicated snapshot-consistency test of
// the clock work: writers keep the invariant x == y while readers
// assert it transactionally. A clock variant that let a reader accept a
// write from after its snapshot (the failure mode of naive timestamp
// leasing — see clock.go) tears the pair. Read-only transactions are
// exercised too: on tl2/adaptive they run invisibly against rv alone,
// the path most sensitive to an unsound write version.
func TestMonotonicSnapshot(t *testing.T) {
	const writers = 2
	const readers = 2
	const perWriter = 200
	forEachEngineClock(t, func(t *testing.T, s *STM) {
		x := s.NewVar("x", 0)
		y := s.NewVar("y", 0)
		var stop atomic.Bool
		var readerWG, writerWG sync.WaitGroup
		for r := 0; r < readers; r++ {
			readerWG.Add(1)
			go func(r int) {
				defer readerWG.Done()
				for !stop.Load() {
					var gx, gy int64
					var err error
					if r%2 == 0 {
						err = s.AtomicallyRead(func(rtx *ReadTx) error {
							gx, gy = rtx.Read(x), rtx.Read(y)
							return nil
						})
					} else {
						err = s.Atomically(func(tx *Tx) error {
							gx, gy = tx.Read(x), tx.Read(y)
							return nil
						})
					}
					if err != nil {
						t.Errorf("reader: %v", err)
						return
					}
					if gx != gy {
						t.Errorf("snapshot tore: x=%d y=%d", gx, gy)
						return
					}
					runtime.Gosched() // keep writers scheduled on small GOMAXPROCS
				}
			}(r)
		}
		for w := 0; w < writers; w++ {
			writerWG.Add(1)
			go func() {
				defer writerWG.Done()
				for i := 0; i < perWriter; i++ {
					if err := s.Atomically(func(tx *Tx) error {
						v := tx.Read(x) + 1
						tx.Write(x, v)
						tx.Write(y, v)
						return nil
					}); err != nil {
						t.Errorf("writer: %v", err)
						return
					}
				}
			}()
		}
		writerWG.Wait()
		stop.Store(true)
		readerWG.Wait()
		if got := x.Load(); got != int64(writers*perWriter) {
			t.Errorf("x = %d, want %d", got, writers*perWriter)
		}
	})
}

// TestDeferredPerVarVersionMonotonic pins the releaseWord contract:
// even though deferred-mode commits may share a write version, each
// variable's published version word is strictly increasing — the
// property waiter revalidation (changed()) and ABA-free validation
// need. An observer thread watches the raw meta word while writers
// hammer the variable.
func TestDeferredPerVarVersionMonotonic(t *testing.T) {
	for _, e := range engines {
		e := e
		t.Run(e.String(), func(t *testing.T) {
			s := New(WithEngine(e), WithClock(ClockDeferred))
			v := s.NewVar("v", 0)
			var stop atomic.Bool
			var bad atomic.Bool
			done := make(chan struct{})
			go func() {
				defer close(done)
				var last uint64
				for !stop.Load() {
					m := v.meta.Load()
					if isLocked(m) {
						runtime.Gosched()
						continue
					}
					cur := version(m)
					if cur < last {
						bad.Store(true)
						return
					}
					last = cur
					runtime.Gosched() // observer must not starve writers on one P
				}
			}()
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 400; i++ {
						_ = s.Atomically(func(tx *Tx) error {
							tx.Write(v, tx.Read(v)+1)
							return nil
						})
					}
				}()
			}
			wg.Wait()
			stop.Store(true)
			<-done
			if bad.Load() {
				t.Fatal("published version word regressed")
			}
		})
	}
}

// TestDeferredClockAdvancesOnObservation pins the progress mechanism of
// the deferred mode: after a writing commit, a reader's next snapshot
// must be able to cover the new version (via clockObserve), so a
// read-modify-write loop terminates instead of spinning on a stale rv.
// Also checks Touch keeps versions moving in deferred mode.
func TestDeferredClockAdvancesOnObservation(t *testing.T) {
	s := New(WithEngine(TL2), WithClock(ClockDeferred))
	v := s.NewVar("v", 0)
	for i := 0; i < 100; i++ {
		if err := s.Atomically(func(tx *Tx) error {
			tx.Write(v, tx.Read(v)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := v.Load(); got != 100 {
		t.Fatalf("v = %d, want 100", got)
	}
	before := version(v.meta.Load())
	s.Touch(v)
	after := version(v.meta.Load())
	if after <= before {
		t.Fatalf("Touch did not advance the version: %d -> %d", before, after)
	}
	if c := s.clock.Load(); c < after {
		t.Fatalf("clock %d below touched version %d: snapshots cannot cover it", c, after)
	}
}
