package stm

import (
	"errors"
	"sync"
	"testing"
)

// TestCommitTapSerializationOrder pins the property the durability layer
// is built on: for transactions that conflict (here: all increment one
// variable), the commit tap observes them in serialization order, on
// every engine. Each body attaches the post-increment value as its tap
// payload; if the tap ran after lock release, a dependent commit could
// overtake and the recorded sequence would have an inversion.
func TestCommitTapSerializationOrder(t *testing.T) {
	const (
		goroutines = 8
		increments = 200
	)
	for _, e := range Engines() {
		t.Run(e.String(), func(t *testing.T) {
			s := New(WithEngine(e))
			x := s.NewVar("x", 0)

			var mu sync.Mutex
			seen := make([]int64, 0, goroutines*increments)
			s.SetCommitTap(func(data any) {
				// Disjoint commits may tap concurrently; the tap orders
				// itself. Conflicting commits (all of these) must arrive
				// already ordered.
				mu.Lock()
				seen = append(seen, data.(int64))
				mu.Unlock()
			})

			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < increments; i++ {
						err := s.Atomically(func(tx *Tx) error {
							v := tx.Read(x) + 1
							tx.Write(x, v)
							tx.SetTapData(v)
							return nil
						})
						if err != nil {
							t.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()

			if len(seen) != goroutines*increments {
				t.Fatalf("tap fired %d times, want %d", len(seen), goroutines*increments)
			}
			for i, v := range seen {
				if v != int64(i+1) {
					t.Fatalf("tap order inversion at %d: got %d, want %d", i, v, i+1)
				}
			}
		})
	}
}

// TestCommitTapSkipped pins the negative space: attempts without tap
// data never invoke the tap, aborted attempts drop their payload, and
// attaching data with no tap installed is harmless.
func TestCommitTapSkipped(t *testing.T) {
	for _, e := range Engines() {
		t.Run(e.String(), func(t *testing.T) {
			s := New(WithEngine(e))
			x := s.NewVar("x", 0)

			var fired int
			s.SetCommitTap(func(any) { fired++ })

			// No tap data: the tap must not fire.
			if err := s.Atomically(func(tx *Tx) error {
				tx.Write(x, 1)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if fired != 0 {
				t.Fatalf("tap fired %d times for an attempt without data", fired)
			}

			// Aborted attempt: the payload is dropped with the attempt.
			boom := errors.New("boom")
			if err := s.Atomically(func(tx *Tx) error {
				tx.Write(x, 2)
				tx.SetTapData(42)
				return boom
			}); !errors.Is(err, boom) {
				t.Fatalf("got %v, want %v", err, boom)
			}
			if fired != 0 {
				t.Fatalf("tap fired %d times for an aborted attempt", fired)
			}

			// Tap removed: data-carrying commits proceed without it.
			s.SetCommitTap(nil)
			if err := s.Atomically(func(tx *Tx) error {
				tx.Write(x, 3)
				tx.SetTapData(43)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if fired != 0 {
				t.Fatalf("tap fired %d times after removal", fired)
			}
			if got := x.Load(); got != 3 {
				t.Fatalf("x = %d, want 3", got)
			}
		})
	}
}
