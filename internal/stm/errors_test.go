package stm

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestMaxRetriesDiagnostics exhausts a tiny retry budget under a forced
// permanent conflict and checks both the sentinel and the *TxError
// diagnostics.
func TestMaxRetriesDiagnostics(t *testing.T) {
	for _, e := range []Engine{Lazy, Eager, TL2} {
		t.Run(e.String(), func(t *testing.T) {
			s := New(WithEngine(e), WithMaxRetries(3))
			x := s.NewVar("x", 0)
			// Hold the var permanently "locked" by corrupting its meta, so
			// every attempt conflicts. Internal representation, on purpose.
			x.meta.Store(lockedBit)
			err := s.Atomically(func(tx *Tx) error {
				tx.Write(x, 1)
				return nil
			})
			if !errors.Is(err, ErrMaxRetries) {
				t.Fatalf("err = %v, want ErrMaxRetries", err)
			}
			var txe *TxError
			if !errors.As(err, &txe) {
				t.Fatalf("err %T does not carry *TxError diagnostics", err)
			}
			if txe.Attempts != 3 || txe.Conflicts != 3 {
				t.Errorf("diagnostics: attempts=%d conflicts=%d, want 3/3", txe.Attempts, txe.Conflicts)
			}
			if txe.Engine != e || txe.Op != "atomically" {
				t.Errorf("diagnostics: engine=%v op=%q", txe.Engine, txe.Op)
			}
		})
	}
}

// TestMaxRetriesUnderRealConflicts exhausts the budget with genuine
// contention: writers hammer a var while a victim with budget 1 tries to
// commit a stale read-modify-write through a barrier that guarantees
// invalidation.
func TestMaxRetriesUnderRealConflicts(t *testing.T) {
	s := New(WithEngine(Lazy), WithMaxRetries(1))
	x := s.NewVar("x", 0)
	read := make(chan struct{})
	invalidated := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-read
		_ = s.Atomically(func(tx *Tx) error {
			tx.Write(x, 99)
			return nil
		})
		close(invalidated)
	}()
	err := s.Atomically(func(tx *Tx) error {
		v := tx.Read(x)
		select {
		case <-invalidated:
		default:
			close(read)
			<-invalidated // x is rewritten after our snapshot read
		}
		tx.Write(x, v+1)
		return nil
	})
	wg.Wait()
	if !errors.Is(err, ErrMaxRetries) {
		t.Fatalf("err = %v, want ErrMaxRetries after budget 1", err)
	}
}

// TestAtomicallyCtxCancelMidRetry cancels the context while the
// transaction is conflict-looping and checks the error taxonomy:
// errors.Is must match both ErrCanceled and context.Canceled, and the
// diagnostics must show at least one attempt.
func TestAtomicallyCtxCancelMidRetry(t *testing.T) {
	s := New(WithEngine(Lazy))
	x := s.NewVar("x", 0)
	x.meta.Store(lockedBit) // permanent conflict: the call can only end via ctx
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	err := s.AtomicallyCtx(ctx, func(tx *Tx) error {
		tx.Write(x, 1)
		return nil
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v does not unwrap to context.Canceled", err)
	}
	var txe *TxError
	if !errors.As(err, &txe) {
		t.Fatalf("err %T lacks diagnostics", err)
	}
	if txe.Attempts == 0 || txe.Conflicts == 0 {
		t.Errorf("expected retries before cancellation, got attempts=%d conflicts=%d",
			txe.Attempts, txe.Conflicts)
	}
}

// TestAtomicallyCtxDeadline uses a deadline instead of explicit cancel.
func TestAtomicallyCtxDeadline(t *testing.T) {
	s := New(WithEngine(Eager))
	x := s.NewVar("x", 0)
	x.meta.Store(lockedBit)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := s.AtomicallyCtx(ctx, func(tx *Tx) error {
		tx.Write(x, 1)
		return nil
	})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
}

// TestAtomicallyCtxPreCanceled: an already-canceled context fails before
// the body ever runs.
func TestAtomicallyCtxPreCanceled(t *testing.T) {
	s := New()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := s.AtomicallyCtx(ctx, func(tx *Tx) error {
		ran = true
		return nil
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if ran {
		t.Fatal("body ran under a pre-canceled context")
	}
	var txe *TxError
	if errors.As(err, &txe) && txe.Attempts != 0 {
		t.Errorf("attempts = %d, want 0", txe.Attempts)
	}
}

// TestAtomicallyCtxCommitsNormally: a live context does not perturb the
// happy path.
func TestAtomicallyCtxCommitsNormally(t *testing.T) {
	forEachEngine(t, func(t *testing.T, s *STM) {
		x := s.NewVar("x", 0)
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		if err := s.AtomicallyCtx(ctx, func(tx *Tx) error {
			tx.Write(x, 41)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if x.Load() != 41 {
			t.Fatalf("x = %d", x.Load())
		}
	})
}

// TestAtomicallyMultiCtxCancel covers the multi-instance ctx path: a
// permanently conflicted instance forces retries until the deadline.
func TestAtomicallyMultiCtxCancel(t *testing.T) {
	s1 := New(WithEngine(Lazy))
	s2 := New(WithEngine(Eager))
	a := s1.NewVar("a", 0)
	b := s2.NewVar("b", 0)
	b.meta.Store(lockedBit)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := AtomicallyMultiCtx(ctx, []*STM{s1, s2}, func(txs []*Tx) error {
		txs[0].Write(a, 1)
		txs[1].Write(b, 1)
		return nil
	})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
	var txe *TxError
	if !errors.As(err, &txe) || txe.Op != "atomically-multi" {
		t.Fatalf("diagnostics missing or wrong op: %+v", txe)
	}
	if a.Load() != 0 {
		t.Fatalf("partial effect leaked: a=%d", a.Load())
	}
}

// TestAtomicallyMultiCtxEmptyPreCanceled: the vacuous empty-instance path
// still honors the cancellation contract.
func TestAtomicallyMultiCtxEmptyPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := AtomicallyMultiCtx(ctx, nil, func(txs []*Tx) error {
		ran = true
		return nil
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if ran {
		t.Fatal("body ran under a pre-canceled context")
	}
}

// TestMultiMaxRetriesMixedEngines exhausts the cross-instance budget
// (taken from stms[0]) against a permanently conflicted member.
func TestMultiMaxRetriesMixedEngines(t *testing.T) {
	s1 := New(WithEngine(Lazy), WithMaxRetries(2))
	s2 := New(WithEngine(GlobalLock))
	a := s1.NewVar("a", 0)
	b := s2.NewVar("b", 0)
	a.meta.Store(lockedBit)
	err := AtomicallyMulti([]*STM{s1, s2}, func(txs []*Tx) error {
		txs[0].Write(a, 1)
		txs[1].Write(b, 1)
		return nil
	})
	if !errors.Is(err, ErrMaxRetries) {
		t.Fatalf("err = %v, want ErrMaxRetries", err)
	}
	var txe *TxError
	if !errors.As(err, &txe) || txe.Attempts != 2 {
		t.Fatalf("diagnostics: %+v, want 2 attempts", txe)
	}
	if b.Load() != 0 {
		t.Fatalf("partial effect leaked: b=%d", b.Load())
	}
}
