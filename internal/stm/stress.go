package stm

import (
	"sync"
	"sync/atomic"
)

// This file contains the mixed-mode stress scenarios of DESIGN.md S1–S3:
// each reproduces a paper idiom on the real runtime and counts outcomes
// the programmer model forbids. Deterministic variants use the anomaly
// hooks to force the §3.4/§3.5 windows; probabilistic variants run the
// raw races.

// StressResult aggregates a scenario run.
type StressResult struct {
	Scenario   string
	Engine     Engine
	Fenced     bool
	Iterations int
	Violations int
}

// Privatization runs the §1 idiom:
//
//	atomic_a { if !y then x:=1 } || atomic_b { y:=1 }; [fence]; x:=2
//
// and counts executions whose final x is not 2 — forbidden in the
// programmer model, and reachable on the lazy engine without a fence via
// delayed writeback.
func Privatization(s *STM, iters int, fence bool) StressResult {
	res := StressResult{Scenario: "privatization", Engine: s.engine, Fenced: fence, Iterations: iters}
	for i := 0; i < iters; i++ {
		x := s.NewVar("x", 0)
		y := s.NewVar("y", 0)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			_ = s.Atomically(func(tx *Tx) error {
				if tx.Read(y) == 0 {
					tx.Write(x, 1)
				}
				return nil
			})
		}()
		go func() {
			defer wg.Done()
			_ = s.Atomically(func(tx *Tx) error {
				tx.Write(y, 1)
				return nil
			})
			if fence {
				s.Quiesce(x)
			}
			x.Store(2)
		}()
		wg.Wait()
		if x.Load() != 2 {
			res.Violations++
		}
	}
	return res
}

// PrivatizationDeterministic forces the delayed-writeback anomaly on the
// lazy engine: transaction a validates, then blocks before writeback while
// thread 2 commits y, (optionally) fences, and performs the plain write.
// Without a fence the final value is 1 (a's stale writeback lands last);
// with a fence, Quiesce blocks until a resolves, so the final value is 2.
func PrivatizationDeterministic(s *STM, fence bool) StressResult {
	res := StressResult{Scenario: "privatization-det", Engine: s.engine, Fenced: fence, Iterations: 1}
	x := s.NewVar("x", 0)
	y := s.NewVar("y", 0)

	inWindow := make(chan struct{})
	resume := make(chan struct{})
	var armed atomic.Bool
	armed.Store(true)
	s.WritebackDelay = func() {
		if armed.CompareAndSwap(true, false) {
			close(inWindow)
			<-resume
		}
	}
	defer func() { s.WritebackDelay = nil }()

	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.Atomically(func(tx *Tx) error {
			if tx.Read(y) == 0 {
				tx.Write(x, 1)
			}
			return nil
		})
	}()
	<-inWindow // a validated; its write of x=1 is pending
	_ = s.Atomically(func(tx *Tx) error {
		tx.Write(y, 1)
		return nil
	})
	if fence {
		// The fence must not admit the plain write while a is unresolved:
		// release a's writeback and wait for it.
		go func() { close(resume) }()
		s.Quiesce(x)
	}
	x.Store(2)
	if !fence {
		close(resume) // let a's stale writeback land after the plain write
	}
	<-done
	if x.Load() != 2 {
		res.Violations++
	}
	return res
}

// Publication runs the §1 idiom:
//
//	x:=1; atomic_a { y:=1 } || atomic_b { r:=y }; if r then q:=x
//
// and counts q=0 observations, which the model forbids even in the
// implementation model (publication has a direct dependency), so every
// engine must produce zero violations.
func Publication(s *STM, iters int) StressResult {
	res := StressResult{Scenario: "publication", Engine: s.engine, Iterations: iters}
	for i := 0; i < iters; i++ {
		x := s.NewVar("x", 0)
		y := s.NewVar("y", 0)
		var wg sync.WaitGroup
		wg.Add(2)
		violated := false
		go func() {
			defer wg.Done()
			x.Store(1)
			_ = s.Atomically(func(tx *Tx) error {
				tx.Write(y, 1)
				return nil
			})
		}()
		go func() {
			defer wg.Done()
			var r int64
			_ = s.Atomically(func(tx *Tx) error {
				r = tx.Read(y)
				return nil
			})
			if r == 1 && x.Load() == 0 {
				violated = true
			}
		}()
		wg.Wait()
		if violated {
			res.Violations++
		}
	}
	return res
}

// LostUpdateDeterministic forces the §3.4 speculative-lost-update anomaly
// on the eager engine: transaction a writes x=1 in place and aborts; its
// rollback is delayed until after a plain store x:=2, which the rollback
// then clobbers back to 0. The programmer model forbids losing the plain
// write (final x must not be 0 when read after both threads finish).
func LostUpdateDeterministic(s *STM) StressResult {
	res := StressResult{Scenario: "lost-update-det", Engine: s.engine, Iterations: 1}
	x := s.NewVar("x", 0)

	inWindow := make(chan struct{})
	resume := make(chan struct{})
	var armed atomic.Bool
	armed.Store(true)
	s.RollbackDelay = func() {
		if armed.CompareAndSwap(true, false) {
			close(inWindow)
			<-resume
		}
	}
	defer func() { s.RollbackDelay = nil }()

	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.Atomically(func(tx *Tx) error {
			tx.Write(x, 1)
			return ErrAbort
		})
	}()
	<-inWindow // a wrote x=1 in place and is about to roll back
	x.Store(2) // plain write lands inside the window
	close(resume)
	<-done
	if x.Load() != 2 {
		res.Violations++ // the undo log restored 0, losing the plain write
	}
	return res
}

// DirtyReadDeterministic forces the §D.3 dirty-read anomaly on the eager
// engine: a plain reader observes the speculative x=1 of a transaction
// that subsequently aborts. The model forbids plain reads from aborted
// writes (WF7).
func DirtyReadDeterministic(s *STM) StressResult {
	res := StressResult{Scenario: "dirty-read-det", Engine: s.engine, Iterations: 1}
	x := s.NewVar("x", 0)

	inWindow := make(chan struct{})
	resume := make(chan struct{})
	var armed atomic.Bool
	armed.Store(true)
	s.RollbackDelay = func() {
		if armed.CompareAndSwap(true, false) {
			close(inWindow)
			<-resume
		}
	}
	defer func() { s.RollbackDelay = nil }()

	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.Atomically(func(tx *Tx) error {
			tx.Write(x, 1)
			return ErrAbort
		})
	}()
	<-inWindow
	if x.Load() == 1 {
		res.Violations++ // dirty read of an aborted write
	}
	close(resume)
	<-done
	return res
}

// LostUpdate is the probabilistic version of LostUpdateDeterministic,
// racing a plain store against aborting transactions without hooks.
func LostUpdate(s *STM, iters int) StressResult {
	res := StressResult{Scenario: "lost-update", Engine: s.engine, Iterations: iters}
	for i := 0; i < iters; i++ {
		x := s.NewVar("x", 0)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			_ = s.Atomically(func(tx *Tx) error {
				tx.Write(x, 1)
				return ErrAbort
			})
		}()
		go func() {
			defer wg.Done()
			x.Store(2)
		}()
		wg.Wait()
		if x.Load() != 2 {
			res.Violations++
		}
	}
	return res
}
