package stm

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestBackoffCanceledContextReturnsPromptly pins the cancellation
// contract of the backoff sleep itself: a canceled context must abort
// the wait via the ctx.Done() select instead of burning the full 4ms
// ceiling of the deep-conflict regime.
func TestBackoffCanceledContextReturnsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	backoff(ctx, 30, spinDefault) // deep-conflict regime: 4ms sleep when not canceled
	if d := time.Since(start); d >= 2*time.Millisecond {
		t.Fatalf("backoff with canceled ctx took %v, want immediate return", d)
	}
}

// TestBackoffNilContextSleeps is the control: with no context the
// deep-conflict backoff really sleeps its full duration.
func TestBackoffNilContextSleeps(t *testing.T) {
	start := time.Now()
	backoff(nil, 30, spinDefault)
	if d := time.Since(start); d < 3*time.Millisecond {
		t.Fatalf("backoff(nil) slept only %v, want ~4ms", d)
	}
}

// TestAtomicallyCtxDeadlineAbortsBackoff drives a permanently
// conflicting transaction deep into the 4ms-backoff regime under a
// short deadline and checks that the call honors the deadline promptly
// (well under the retry budget's worth of sleeps) with the canonical
// error chain.
func TestAtomicallyCtxDeadlineAbortsBackoff(t *testing.T) {
	for _, e := range engines {
		t.Run(e.String(), func(t *testing.T) {
			s := New(WithEngine(e))
			ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
			defer cancel()
			start := time.Now()
			err := s.AtomicallyCtx(ctx, func(tx *Tx) error {
				tx.Retry() // permanent conflict: every attempt backs off
				return nil
			})
			elapsed := time.Since(start)
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("err = %v, want ErrCanceled", err)
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want wrapped context.DeadlineExceeded", err)
			}
			// Generous CI bound: the deadline is 40ms and one residual
			// backoff tick is 4ms; anything near a second means the
			// sleeps ignored cancellation.
			if elapsed > time.Second {
				t.Fatalf("deadline honored after %v, want prompt abort", elapsed)
			}
		})
	}
}

// TestAtomicallyMultiCtxCancelDuringBackoff cancels mid-retry on the
// multi-instance path and checks the prompt-abort contract there too.
func TestAtomicallyMultiCtxCancelDuringBackoff(t *testing.T) {
	s1 := New(WithEngine(Lazy))
	s2 := New(WithEngine(TL2))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := AtomicallyMultiCtx(ctx, []*STM{s1, s2}, func(txs []*Tx) error {
		txs[0].Retry()
		return nil
	})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if elapsed > time.Second {
		t.Fatalf("cancellation honored after %v, want prompt abort", elapsed)
	}
}
