package stm

// eagerEngine is encounter-time locking with an undo log: writes lock
// the variable on first touch and land in place; aborts restore the
// logged values. Exhibits the speculative-lost-update and dirty-read
// anomalies of §3.4 under mixed access.
type eagerEngine struct{}

func (eagerEngine) begin(tx *Tx)  { tx.rv = tx.s.clockBegin() }
func (eagerEngine) finish(tx *Tx) {}

func (eagerEngine) read(tx *Tx, v *Var) int64 {
	if tx.ownsLock(&v.varBase) {
		return v.val.Load() // we hold the lock; in-place value is ours
	}
	return sampleVar(tx, v, true, false)
}

// encounterLock takes v's lock on first write, logging the pre-lock meta
// for release and conflicting when the variable is locked elsewhere or
// newer than the snapshot. Reports whether the caller must push an undo
// entry (first touch).
func (tx *Tx) encounterLock(vb *varBase) (firstTouch bool) {
	if tx.ownsLock(vb) {
		return false
	}
	for {
		m, ok := vb.tryLock(tx.rv)
		if ok {
			tx.addLocked(vb, m)
			return true
		}
		if isLocked(m) {
			tx.conflictOn(vb, m) // park: the holder's commit wakes us
		}
		// Too new or torn: the world already moved. Advance the deferred
		// clock past what we saw so the next snapshot covers it.
		tx.s.clockObserve(version(m))
		if tx.s.clockMode == ClockDeferred && tx.extendSnapshot() {
			// Under the deferred clock a write target newer than rv is
			// the common case, not a race: commits never publish to the
			// clock, so every writer finds its own last commit ahead of
			// its snapshot. Extend (revalidating the read set) and
			// relock rather than aborting.
			continue
		}
		noteContention(vb)
		tx.conflictRetryNow()
	}
}

func (eagerEngine) write(tx *Tx, v *Var, x int64) {
	if tx.encounterLock(&v.varBase) {
		tx.undo = append(tx.undo, undoEntry{v: v, old: v.val.Load()})
	}
	v.val.Store(x)
}

func (eagerEngine) readBoxed(tx *Tx, b boxed) any {
	if tx.ownsLock(b.base()) {
		return b.loadBox()
	}
	return sampleBox(tx, b, true, false)
}

func (eagerEngine) writeBoxed(tx *Tx, b boxed, box any) {
	if tx.encounterLock(b.base()) {
		tx.pundo = append(tx.pundo, pundoEntry{b: b, old: b.loadBox()})
	}
	b.storeBox(box)
}

func (e eagerEngine) prepare(tx *Tx) bool {
	// Locks were taken at encounter time; only the read set remains.
	return e.validateReads(tx)
}

func (eagerEngine) lockWrites(tx *Tx) bool { return true }

func (eagerEngine) validateReads(tx *Tx) bool {
	for i := range tx.reads {
		re := &tx.reads[i]
		if tx.ownsLock(re.vb) {
			continue // we hold the lock; value unchanged since read
		}
		cur := re.vb.meta.Load()
		if isLocked(cur) || version(cur) > tx.rv {
			noteContention(re.vb)
			return false
		}
	}
	return true
}

func (eagerEngine) commit(tx *Tx) {
	if len(tx.locked) == 0 {
		return // read-only: don't contend the clock for nothing
	}
	// Encounter locks are all held here — the deferred clock's
	// load-after-lock requirement is met (see clock.go).
	wv := tx.s.clockWV()
	for i := range tx.locked {
		tx.locked[i].vb.meta.Store(tx.s.releaseWord(wv, tx.locked[i].vb))
	}
	// Publish wv under the deferred clock (no-op otherwise) so the next
	// snapshot covers this commit; see the lazy engine's commit.
	tx.s.clockObserve(wv)
	// The lock table and undo logs are dropped by the Tx reset.
}

func (eagerEngine) rollback(tx *Tx) {
	s := tx.s
	if s.RollbackDelay != nil && len(tx.undo)+len(tx.pundo) > 0 {
		// The anomaly window of §3.4: speculative values are visible to
		// plain accesses until the undo log is applied.
		s.RollbackDelay()
	}
	for i := len(tx.undo) - 1; i >= 0; i-- {
		tx.undo[i].v.val.Store(tx.undo[i].old)
	}
	for i := len(tx.pundo) - 1; i >= 0; i-- {
		tx.pundo[i].b.storeBox(tx.pundo[i].old)
	}
	for i := range tx.locked {
		tx.locked[i].vb.meta.Store(tx.locked[i].meta) // release, version unchanged
	}
	// The lock table and undo logs are dropped by the Tx reset.
}

// wakeSet announces the encounter-time lock table: every lock was taken
// by a write, so it is exactly the published write set.
func (eagerEngine) wakeSet(tx *Tx, f func(*varBase)) {
	for i := range tx.locked {
		f(tx.locked[i].vb)
	}
}

func (eagerEngine) invisibleReadOnly(tx *Tx) bool { return false }
