package stm

// eagerEngine is encounter-time locking with an undo log: writes lock
// the variable on first touch and land in place; aborts restore the
// logged values. Exhibits the speculative-lost-update and dirty-read
// anomalies of §3.4 under mixed access.
type eagerEngine struct{}

func (eagerEngine) begin(tx *Tx)  { tx.rv = tx.s.clock.Load() }
func (eagerEngine) finish(tx *Tx) {}

func (eagerEngine) read(tx *Tx, v *Var) int64 {
	if tx.ownsLock(&v.varBase) {
		return v.val.Load() // we hold the lock; in-place value is ours
	}
	return sampleVar(tx, v, true, false)
}

// encounterLock takes v's lock on first write, logging the pre-lock meta
// for release and conflicting when the variable is locked elsewhere or
// newer than the snapshot. Reports whether the caller must push an undo
// entry (first touch).
func (tx *Tx) encounterLock(vb *varBase) (firstTouch bool) {
	if tx.ownsLock(vb) {
		return false
	}
	m, ok := vb.tryLock(tx.rv)
	if !ok {
		if isLocked(m) {
			tx.conflictOn(vb, m) // park: the holder's commit wakes us
		}
		noteContention(vb)
		tx.conflictRetryNow() // too new or torn: the world already moved
	}
	tx.addLocked(vb, m)
	return true
}

func (eagerEngine) write(tx *Tx, v *Var, x int64) {
	if tx.encounterLock(&v.varBase) {
		tx.undo = append(tx.undo, undoEntry{v: v, old: v.val.Load()})
	}
	v.val.Store(x)
}

func (eagerEngine) readBoxed(tx *Tx, b boxed) any {
	if tx.ownsLock(b.base()) {
		return b.loadBox()
	}
	return sampleBox(tx, b, true, false)
}

func (eagerEngine) writeBoxed(tx *Tx, b boxed, box any) {
	if tx.encounterLock(b.base()) {
		tx.pundo = append(tx.pundo, pundoEntry{b: b, old: b.loadBox()})
	}
	b.storeBox(box)
}

func (e eagerEngine) prepare(tx *Tx) bool {
	// Locks were taken at encounter time; only the read set remains.
	return e.validateReads(tx)
}

func (eagerEngine) lockWrites(tx *Tx) bool { return true }

func (eagerEngine) validateReads(tx *Tx) bool {
	for i := range tx.reads {
		re := &tx.reads[i]
		if tx.ownsLock(re.vb) {
			continue // we hold the lock; value unchanged since read
		}
		cur := re.vb.meta.Load()
		if isLocked(cur) || version(cur) > tx.rv {
			noteContention(re.vb)
			return false
		}
	}
	return true
}

func (eagerEngine) commit(tx *Tx) {
	if len(tx.locked) == 0 {
		return // read-only: don't contend the clock for nothing
	}
	wv := tx.s.clock.Add(1)
	for i := range tx.locked {
		tx.locked[i].vb.meta.Store(wv << 1)
	}
	// The lock table and undo logs are dropped by the Tx reset.
}

func (eagerEngine) rollback(tx *Tx) {
	s := tx.s
	if s.RollbackDelay != nil && len(tx.undo)+len(tx.pundo) > 0 {
		// The anomaly window of §3.4: speculative values are visible to
		// plain accesses until the undo log is applied.
		s.RollbackDelay()
	}
	for i := len(tx.undo) - 1; i >= 0; i-- {
		tx.undo[i].v.val.Store(tx.undo[i].old)
	}
	for i := len(tx.pundo) - 1; i >= 0; i-- {
		tx.pundo[i].b.storeBox(tx.pundo[i].old)
	}
	for i := range tx.locked {
		tx.locked[i].vb.meta.Store(tx.locked[i].meta) // release, version unchanged
	}
	// The lock table and undo logs are dropped by the Tx reset.
}

// wakeSet announces the encounter-time lock table: every lock was taken
// by a write, so it is exactly the published write set.
func (eagerEngine) wakeSet(tx *Tx, f func(*varBase)) {
	for i := range tx.locked {
		f(tx.locked[i].vb)
	}
}

func (eagerEngine) invisibleReadOnly() bool { return false }
