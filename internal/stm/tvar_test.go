package stm

import (
	"fmt"
	"sync"
	"testing"
)

type point struct{ X, Y int }

func TestTVarSequentialReadWrite(t *testing.T) {
	forEachEngine(t, func(t *testing.T, s *STM) {
		str := NewTVar(s, "str", "hello")
		pt := NewTVar(s, "pt", point{1, 2})
		err := s.Atomically(func(tx *Tx) error {
			if got := ReadT(tx, str); got != "hello" {
				t.Errorf("initial read = %q, want hello", got)
			}
			WriteT(tx, str, "world")
			if got := ReadT(tx, str); got != "world" {
				t.Errorf("read-your-write = %q, want world", got)
			}
			WriteT(tx, pt, point{3, 4})
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := str.Load(); got != "world" {
			t.Errorf("after commit str = %q, want world", got)
		}
		if got := pt.Load(); got != (point{3, 4}) {
			t.Errorf("after commit pt = %v", got)
		}
	})
}

func TestTVarAbortRollsBack(t *testing.T) {
	forEachEngine(t, func(t *testing.T, s *STM) {
		v := NewTVar(s, "v", "keep")
		err := s.Atomically(func(tx *Tx) error {
			WriteT(tx, v, "discard")
			return ErrAborted
		})
		if err != ErrAborted {
			t.Fatalf("err = %v, want ErrAborted", err)
		}
		if got := v.Load(); got != "keep" {
			t.Errorf("aborted typed write leaked: %q", got)
		}
	})
}

func TestTVarMixedModeVisibility(t *testing.T) {
	forEachEngine(t, func(t *testing.T, s *STM) {
		v := NewTVar(s, "v", []byte(nil))
		v.Store([]byte("plain"))
		var got []byte
		if err := s.Atomically(func(tx *Tx) error {
			got = ReadT(tx, v)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if string(got) != "plain" {
			t.Errorf("transactional read after plain store = %q", got)
		}
		if err := s.Atomically(func(tx *Tx) error {
			WriteT(tx, v, []byte("txn"))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if string(v.Load()) != "txn" {
			t.Errorf("plain load after transactional write = %q", v.Load())
		}
	})
}

// TestTVarSnapshotConsistency is the typed twin of TestConflictDetection:
// a reader transaction must never observe a torn pair across two typed
// vars, on any engine.
func TestTVarSnapshotConsistency(t *testing.T) {
	forEachEngine(t, func(t *testing.T, s *STM) {
		a := NewTVar(s, "a", "0")
		b := NewTVar(s, "b", "0")
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 1; i <= 300; i++ {
				val := fmt.Sprint(i)
				_ = s.Atomically(func(tx *Tx) error {
					WriteT(tx, a, val)
					WriteT(tx, b, val)
					return nil
				})
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				var av, bv string
				if err := s.Atomically(func(tx *Tx) error {
					av = ReadT(tx, a)
					bv = ReadT(tx, b)
					return nil
				}); err != nil {
					t.Errorf("snapshot read failed: %v", err)
					return
				}
				if av != bv {
					t.Errorf("torn typed snapshot: a=%s b=%s", av, bv)
					return
				}
			}
		}()
		wg.Wait()
	})
}

// TestTVarIntVarComposition writes both lanes in one transaction and
// checks atomicity of the combined commit.
func TestTVarIntVarComposition(t *testing.T) {
	forEachEngine(t, func(t *testing.T, s *STM) {
		label := NewTVar(s, "label", "")
		count := s.NewVar("count", 0)
		for i := 1; i <= 5; i++ {
			want := fmt.Sprintf("gen-%d", i)
			if err := s.Atomically(func(tx *Tx) error {
				WriteT(tx, label, want)
				tx.Write(count, tx.Read(count)+1)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		var gotLabel string
		var gotCount int64
		if err := s.Atomically(func(tx *Tx) error {
			gotLabel = ReadT(tx, label)
			gotCount = tx.Read(count)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if gotLabel != "gen-5" || gotCount != 5 {
			t.Errorf("label=%q count=%d, want gen-5/5", gotLabel, gotCount)
		}
	})
}

// TestTVarConcurrentAppendLog is a contended typed workload: goroutines
// append to a shared []int behind a TVar; every committed append must
// survive (no lost updates on the boxed lane).
func TestTVarConcurrentAppendLog(t *testing.T) {
	forEachEngine(t, func(t *testing.T, s *STM) {
		log := NewTVar(s, "log", []int(nil))
		const goroutines = 4
		const perG = 50
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					v := g*perG + i
					if err := s.Atomically(func(tx *Tx) error {
						cur := ReadT(tx, log)
						// Copy-on-write: committed boxes are immutable.
						next := make([]int, len(cur)+1)
						copy(next, cur)
						next[len(cur)] = v
						WriteT(tx, log, next)
						return nil
					}); err != nil {
						t.Errorf("append: %v", err)
						return
					}
				}
			}()
		}
		wg.Wait()
		final := log.Load()
		if len(final) != goroutines*perG {
			t.Fatalf("log has %d entries, want %d", len(final), goroutines*perG)
		}
		seen := make(map[int]bool, len(final))
		for _, v := range final {
			if seen[v] {
				t.Fatalf("value %d appended twice", v)
			}
			seen[v] = true
		}
	})
}

func TestMapBasics(t *testing.T) {
	forEachEngine(t, func(t *testing.T, s *STM) {
		m := NewMap[string, int](s, "m", 8)
		if err := m.Put("a", 1); err != nil {
			t.Fatal(err)
		}
		if err := m.Put("b", 2); err != nil {
			t.Fatal(err)
		}
		if v, ok, err := m.Get("a"); err != nil || !ok || v != 1 {
			t.Fatalf("Get(a)=%d,%v,%v", v, ok, err)
		}
		if _, ok, _ := m.Get("missing"); ok {
			t.Fatal("phantom key")
		}
		if err := m.Put("a", 10); err != nil { // replace
			t.Fatal(err)
		}
		if v, _, _ := m.Get("a"); v != 10 {
			t.Fatalf("replace lost: %d", v)
		}
		if n, _ := m.Len(); n != 2 {
			t.Fatalf("Len=%d, want 2", n)
		}
		if ok, _ := m.Delete("a"); !ok {
			t.Fatal("delete of present key reported absent")
		}
		if ok, _ := m.Delete("a"); ok {
			t.Fatal("double delete reported present")
		}
		if n, _ := m.Len(); n != 1 {
			t.Fatalf("Len after delete=%d, want 1", n)
		}
	})
}

func TestMapConcurrentDisjointKeys(t *testing.T) {
	forEachEngine(t, func(t *testing.T, s *STM) {
		m := NewMap[int, string](s, "m", 64)
		const goroutines = 4
		const perG = 50
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					k := g*perG + i
					if err := m.Put(k, fmt.Sprint(k)); err != nil {
						t.Errorf("put %d: %v", k, err)
						return
					}
				}
			}()
		}
		wg.Wait()
		if n, _ := m.Len(); n != goroutines*perG {
			t.Fatalf("Len=%d, want %d", n, goroutines*perG)
		}
		for k := 0; k < goroutines*perG; k++ {
			if v, ok, _ := m.Get(k); !ok || v != fmt.Sprint(k) {
				t.Fatalf("key %d: got %q,%v", k, v, ok)
			}
		}
	})
}

// TestMapComposesWithQueue moves entries from a map into a typed queue
// atomically; an observer sees the total conserved.
func TestMapComposesWithQueue(t *testing.T) {
	s := New(WithEngine(Lazy))
	m := NewMap[string, string](s, "m", 8)
	q := NewQueue[string](s, "q", 8)
	for i := 0; i < 8; i++ {
		if err := m.Put(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("k%d", i)
		if err := s.Atomically(func(tx *Tx) error {
			v, ok := m.GetTx(tx, k)
			if !ok {
				return ErrAborted
			}
			if !m.DeleteTx(tx, k) || !q.EnqueueTx(tx, v) {
				return ErrAborted
			}
			return nil
		}); err != nil {
			t.Fatalf("move %s: %v", k, err)
		}
		var mapN, qN int64
		_ = s.Atomically(func(tx *Tx) error {
			mapN = int64(m.LenTx(tx))
			qN = tx.Read(q.size)
			return nil
		})
		if mapN+qN != 8 {
			t.Fatalf("conservation broken: map=%d queue=%d", mapN, qN)
		}
	}
	if n, _ := q.Len(); n != 8 {
		t.Fatalf("queue has %d, want 8", n)
	}
}

// TestQueueClearsDequeuedSlot: dequeued boxes must not stay pinned in the
// ring buffer (reference-typed payloads would otherwise leak until the
// ring wraps).
func TestQueueClearsDequeuedSlot(t *testing.T) {
	s := New()
	q := NewQueue[[]byte](s, "q", 4)
	if ok, _ := q.Enqueue([]byte("big payload")); !ok {
		t.Fatal("enqueue failed")
	}
	if v, ok, _ := q.Dequeue(); !ok || string(v) != "big payload" {
		t.Fatalf("dequeue: %q %v", v, ok)
	}
	if got := q.buf[0].Load(); got != nil {
		t.Fatalf("dequeued slot still pins %q", got)
	}
}

// TestQueueSlotNamesIndexed guards the satellite fix: buffer slot vars
// must carry distinct, indexed diagnostic names.
func TestQueueSlotNamesIndexed(t *testing.T) {
	s := New()
	q := NewQueue[int64](s, "jobs", 3)
	want := []string{"jobs.buf[0]", "jobs.buf[1]", "jobs.buf[2]"}
	for i, v := range q.buf {
		if v.Name() != want[i] {
			t.Errorf("slot %d named %q, want %q", i, v.Name(), want[i])
		}
	}
	set := s.NewSet("members", 2)
	if set.slots[0].Name() == set.slots[1].Name() {
		t.Errorf("set slots share the name %q", set.slots[0].Name())
	}
}
