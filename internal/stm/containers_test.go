package stm

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestQueueSequential(t *testing.T) {
	forEachEngine(t, func(t *testing.T, s *STM) {
		q := NewQueue[int64](s, "q", 4)
		for i := int64(1); i <= 4; i++ {
			ok, err := q.Enqueue(i)
			if err != nil || !ok {
				t.Fatalf("enqueue %d: ok=%v err=%v", i, ok, err)
			}
		}
		if ok, _ := q.Enqueue(5); ok {
			t.Error("enqueue succeeded on a full queue")
		}
		for i := int64(1); i <= 4; i++ {
			v, ok, err := q.Dequeue()
			if err != nil || !ok || v != i {
				t.Fatalf("dequeue: v=%d ok=%v err=%v, want %d", v, ok, err, i)
			}
		}
		if _, ok, _ := q.Dequeue(); ok {
			t.Error("dequeue succeeded on an empty queue")
		}
	})
}

func TestQueueConcurrentTransfer(t *testing.T) {
	// Producers enqueue 1..N through a small queue while one consumer
	// drains exactly N values; every value must arrive exactly once
	// (atomicity of the multi-var queue operations).
	forEachEngine(t, func(t *testing.T, s *STM) {
		q := NewQueue[int64](s, "q", 8)
		const total = 400
		var wg sync.WaitGroup
		for p := 0; p < 4; p++ {
			p := p
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < total/4; i++ {
					v := int64(p*(total/4) + i + 1)
					for {
						ok, err := q.Enqueue(v)
						if err != nil {
							t.Errorf("enqueue: %v", err)
							return
						}
						if ok {
							break
						}
					}
				}
			}()
		}
		got := map[int64]int{}
		for len(got) < total {
			v, ok, err := q.Dequeue()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				continue
			}
			got[v]++
		}
		wg.Wait()
		for v := int64(1); v <= total; v++ {
			if got[v] != 1 {
				t.Fatalf("value %d seen %d times", v, got[v])
			}
		}
		if n, _ := q.Len(); n != 0 {
			t.Fatalf("queue not drained: %d left", n)
		}
	})
}

func TestSetBasics(t *testing.T) {
	forEachEngine(t, func(t *testing.T, s *STM) {
		set := s.NewSet("s", 16)
		for _, v := range []int64{3, 1, 4, 1, 5, 9, 2, 6} {
			if ok, err := set.Add(v); err != nil || !ok {
				t.Fatalf("add %d: %v", v, err)
			}
		}
		n, err := set.Size()
		if err != nil || n != 7 { // 1 inserted twice
			t.Fatalf("size = %d (err %v), want 7", n, err)
		}
		for _, v := range []int64{3, 1, 4, 5, 9, 2, 6} {
			if ok, _ := set.Contains(v); !ok {
				t.Errorf("missing %d", v)
			}
		}
		if ok, _ := set.Contains(8); ok {
			t.Error("phantom member 8")
		}
	})
}

func TestSetFull(t *testing.T) {
	s := New(WithEngine(Lazy))
	set := s.NewSet("s", 3)
	for v := int64(0); v < 3; v++ {
		if ok, _ := set.Add(v * 7); !ok {
			t.Fatalf("add %d failed", v)
		}
	}
	if ok, _ := set.Add(99); ok {
		t.Error("add succeeded on a full set")
	}
	// Existing members still succeed idempotently.
	if ok, _ := set.Add(0); !ok {
		t.Error("idempotent add of existing member failed")
	}
}

func TestSetConcurrentInserts(t *testing.T) {
	s := New(WithEngine(Lazy))
	set := s.NewSet("s", 128)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if ok, err := set.Add(int64(g*25 + i)); err != nil || !ok {
					t.Errorf("add: ok=%v err=%v", ok, err)
				}
			}
		}()
	}
	wg.Wait()
	n, _ := set.Size()
	if n != 100 {
		t.Fatalf("size = %d, want 100", n)
	}
}

// Property: a queue drained after arbitrary interleaved operations yields
// exactly the enqueued-but-not-dequeued values in FIFO order.
func TestQueueFIFOProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		s := New(WithEngine(Lazy))
		q := NewQueue[int64](s, "q", 8)
		var model []int64
		next := int64(1)
		for _, o := range ops {
			if o%2 == 0 {
				ok, err := q.Enqueue(next)
				if err != nil {
					return false
				}
				if ok {
					model = append(model, next)
				} else if len(model) != 8 {
					return false
				}
				next++
			} else {
				v, ok, err := q.Dequeue()
				if err != nil {
					return false
				}
				if ok {
					if len(model) == 0 || model[0] != v {
						return false
					}
					model = model[1:]
				} else if len(model) != 0 {
					return false
				}
			}
		}
		n, _ := q.Len()
		return n == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Composability: move an element between two queues atomically; observers
// never see it in both or neither (when accounting the in-flight count).
func TestQueueComposedTransfer(t *testing.T) {
	s := New(WithEngine(Lazy))
	a := NewQueue[int64](s, "a", 8)
	b := NewQueue[int64](s, "b", 8)
	for i := int64(1); i <= 8; i++ {
		if ok, _ := a.Enqueue(i); !ok {
			t.Fatal("seed enqueue failed")
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // observer: total across both queues is invariant
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var total int64
			_ = s.Atomically(func(tx *Tx) error {
				total = tx.Read(a.size) + tx.Read(b.size)
				return nil
			})
			if total != 8 {
				t.Errorf("observer saw total %d, want 8", total)
				return
			}
		}
	}()
	for i := 0; i < 8; i++ {
		err := s.Atomically(func(tx *Tx) error {
			v, ok := a.DequeueTx(tx)
			if !ok {
				return ErrAbort
			}
			if !b.EnqueueTx(tx, v) {
				return ErrAbort
			}
			return nil
		})
		if err != nil {
			t.Fatalf("transfer %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	na, _ := a.Len()
	nb, _ := b.Len()
	if na != 0 || nb != 8 {
		t.Fatalf("a=%d b=%d, want 0/8", na, nb)
	}
}
