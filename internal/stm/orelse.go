package stm

import "context"

// OrElse runs the alternatives as one blocking choice: each attempt
// tries them in order and commits the first one that neither blocks nor
// conflicts; an alternative that calls Tx.Block is rolled back (its
// effects discarded, its footprint remembered) and the next one runs.
// Only when every alternative blocks does the call park — on the union
// of all their footprints, so whichever branch's world changes first
// re-runs the whole choice from the top. This is the transactional
// analogue of mixed choice between communication branches: "pop from
// the high-priority queue, or else the low-priority one, or else wait
// for either to fill" is
//
//	s.OrElse(
//	        func(tx *stm.Tx) error { ... hi.DequeueTx(tx) or tx.Block() ... },
//	        func(tx *stm.Tx) error { ... lo.DequeueTx(tx) or tx.Block() ... },
//	)
//
// Each alternative commits atomically by itself (first-match semantics:
// the committed effects are exactly one alternative's); a conflicted
// alternative restarts the choice from the first one. OrElse panics if
// called with no alternatives.
func (s *STM) OrElse(alts ...func(*Tx) error) error {
	return s.orElse(nil, alts)
}

// OrElseCtx is OrElse honoring ctx between attempts and while parked,
// with the same contract as AtomicallyCtx.
func (s *STM) OrElseCtx(ctx context.Context, alts ...func(*Tx) error) error {
	return s.orElse(ctx, alts)
}

func (s *STM) orElse(ctx context.Context, alts []func(*Tx) error) error {
	if len(alts) == 0 {
		panic("stm: OrElse requires at least one alternative")
	}
	conflicts, parks := 0, 0
	for attempt := 0; attempt < s.maxRetries; {
		if err := ctxErr(ctx); err != nil {
			return s.txError("or-else", attempt, conflicts, ErrCanceled, err)
		}
		// w accumulates the union of blocked alternatives' footprints;
		// it only survives to the park when every alternative blocked
		// (any other outcome returns or restarts the choice).
		var w *waiter
		blockedAll := true
		for _, fn := range alts {
			tx := s.begin()
			err, st := tx.runBody(fn)
			if st == txBlocked {
				if w == nil {
					w = s.newWaiter()
				}
				w.captureTx(tx)
				tx.abortAttempt()
				continue // try the next alternative
			}
			if st == txConflicted {
				if w != nil {
					w.release()
				}
				attempt = s.conflictedAttempt(ctx, tx, attempt)
				conflicts++
				blockedAll = false
				break // restart the choice from the first alternative
			}
			if err != nil {
				tx.abortAttempt()
				if w != nil {
					w.release()
				}
				s.stats.UserAborts.Add(1)
				return err
			}
			if tx.prepare() {
				tx.commitPrepared()
				tx.finishTx()
				if w != nil {
					w.release()
				}
				s.stats.Commits.Add(1)
				return nil
			}
			if w != nil {
				w.release()
			}
			attempt = s.conflictedAttempt(ctx, tx, attempt)
			conflicts++
			blockedAll = false
			break
		}
		if blockedAll {
			// Every alternative blocked: park on the combined footprint.
			// (w is non-nil here — each blocked alternative allocated it.)
			s.parkBlocked(ctx, w, parks)
			parks++
		}
	}
	return s.txError("or-else", s.maxRetries, conflicts, ErrMaxRetries, nil)
}
