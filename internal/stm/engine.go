package stm

import (
	"fmt"
	"slices"
	"strings"
)

// Engine selects the versioning strategy. The exported enum is the stable
// selection API; each value is backed by a registered implementation of
// the unexported engine interface, so adding a strategy means adding one
// file and one registry row, not editing every hot path.
type Engine int

// Registered engines.
const (
	// Lazy buffers writes and applies them at commit under per-variable
	// versioned locks validated against a global version clock.
	Lazy Engine = iota
	// Eager locks at encounter time and writes in place with an undo log.
	Eager
	// GlobalLock serializes every transaction under one instance mutex.
	GlobalLock
	// TL2 is the snapshot engine: global-version-clock snapshots with
	// invisible reads, TL2-style timestamp extension, and read-only
	// transactions (AtomicallyRead) that keep no read set and commit in
	// O(1) without locks or validation.
	TL2
	// Adaptive delegates per instance to tl2 or eager, flipped by the
	// contention controller when the conflict rate crosses its
	// hysteresis thresholds (see adapt.go and engine_adaptive.go).
	Adaptive
)

// engine is the seam behind the transactional protocol: per-location
// read/write hooks over both value lanes (the inline int64 lane of Var
// and the boxed lane of TVar[T]) plus the lock/validate/commit/rollback
// phases. Tx owns the shared attempt state (read set, write sets, undo
// logs, lock tables); an engine is a stateless strategy over that state,
// so implementations are value types and one instance serves every
// transaction of an STM.
//
// The commit protocol is split so that AtomicallyMulti can two-phase it
// across instances: lockWrites (phase 1a) then validateReads (phase 1b)
// with a cross-instance barrier between them, then commit (phase 2).
// Single-instance commits go through prepare, which may fast-path.
type engine interface {
	// begin initializes the attempt after its quiescence slot is held. It
	// must leave tx.rv at a snapshot of the version clock; engines with
	// instance-level mutual exclusion acquire it here.
	begin(tx *Tx)
	// finish releases engine-level resources of a resolved attempt.
	finish(tx *Tx)

	// read and write are the int64 lane; readBoxed and writeBoxed the
	// pointer lane. All four may raise a conflict (never returning).
	read(tx *Tx, v *Var) int64
	write(tx *Tx, v *Var, x int64)
	readBoxed(tx *Tx, b boxed) any
	writeBoxed(tx *Tx, b boxed, box any)

	// prepare is commit phase one for a single-instance transaction:
	// after it returns true the transaction is guaranteed committable and
	// the caller must follow with commit (or releasePrepared to back
	// out). On false the caller aborts the attempt.
	prepare(tx *Tx) bool
	// lockWrites (phase 1a) takes the commit-time locks on the write
	// set; locks taken are recorded in tx.lockedMeta for restoration.
	lockWrites(tx *Tx) bool
	// validateReads (phase 1b) checks the read set against the begin-time
	// snapshot; it is lane-agnostic (only lock words are examined).
	validateReads(tx *Tx) bool
	// commit (phase 2) publishes the write set and releases commit-time
	// locks with a fresh version. Only legal after a successful prepare
	// (or lockWrites+validateReads).
	commit(tx *Tx)
	// rollback undoes in-place effects and drops buffers.
	rollback(tx *Tx)

	// wakeSet calls f for every variable the just-committed transaction
	// published, in the engine's own write-set representation — the hook
	// the commit-notification subsystem (notify.go) uses to wake parked
	// transactions. Called by commitPrepared after commit, so the new
	// version words are visible before any waiter is signaled, and only
	// when the instance has registered waiters.
	wakeSet(tx *Tx, f func(*varBase))

	// invisibleReadOnly reports whether a single-instance read-only
	// transaction (AtomicallyRead) can run with no read set at all:
	// every read validates against tx.rv at read time, so commit needs
	// no validation. Multi-instance read-only transactions always keep
	// read sets regardless (their serialization point is later than any
	// single rv). It takes the attempt so the adaptive engine can answer
	// for the delegate the attempt actually began under.
	invisibleReadOnly(tx *Tx) bool
}

// engineInfo is one registry row.
type engineInfo struct {
	id      Engine
	name    string
	aliases []string
	impl    engine
	doc     string
}

// engineTable is the registry backing the Engine enum. Order is the
// order Engines() reports and benchmarks iterate.
var engineTable = []engineInfo{
	{Lazy, "lazy", nil, lazyEngine{},
		"lazy versioning: buffered writes, commit-time locks, global version clock"},
	{Eager, "eager", nil, eagerEngine{},
		"encounter-time locking with an undo log; writes in place"},
	{GlobalLock, "global-lock", []string{"global"}, glockEngine{},
		"one mutex per instance; the strongest and slowest baseline"},
	{TL2, "tl2", []string{"snapshot"}, tl2Engine{},
		"global-version-clock snapshots: invisible reads, timestamp extension, lock-free read-only transactions"},
	{Adaptive, "adaptive", nil, adaptiveEngine{},
		"contention-adaptive: starts on tl2, flips to eager encounter locking while the conflict rate stays above the hysteresis threshold"},
}

func lookupEngine(e Engine) (engineInfo, bool) {
	for _, info := range engineTable {
		if info.id == e {
			return info, true
		}
	}
	return engineInfo{}, false
}

// Engines returns every registered engine in registry order. Test
// suites and benchmarks iterate this so a new engine cannot merge
// without passing the anomaly checks.
func Engines() []Engine {
	out := make([]Engine, len(engineTable))
	for i, info := range engineTable {
		out[i] = info.id
	}
	return out
}

// EngineNames returns the canonical engine names in registry order.
func EngineNames() []string {
	out := make([]string, len(engineTable))
	for i, info := range engineTable {
		out[i] = info.name
	}
	return out
}

// EngineDoc returns a one-line description of the engine, or "" if it is
// not registered.
func EngineDoc(e Engine) string {
	if info, ok := lookupEngine(e); ok {
		return info.doc
	}
	return ""
}

// ParseEngine resolves an engine name (or registered alias, case
// insensitively) to its Engine value. The error enumerates the valid
// names.
func ParseEngine(name string) (Engine, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	for _, info := range engineTable {
		if n == info.name {
			return info.id, nil
		}
		for _, a := range info.aliases {
			if n == a {
				return info.id, nil
			}
		}
	}
	return 0, fmt.Errorf("stm: unknown engine %q (want %s)", name, strings.Join(EngineNames(), ", "))
}

// String returns the registered name, consistent with ParseEngine; an
// unregistered value formats as "engine(N)".
func (e Engine) String() string {
	if info, ok := lookupEngine(e); ok {
		return info.name
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// --- shared building blocks used by the engine implementations ---

// sampleVar reads v's value consistently against tx.rv: the meta word is
// sampled around the value load to detect torn reads, locked or
// too-new variables conflict, and (when record is set) the observation
// joins the read set for commit-time validation. With extend set, a
// too-new variable first attempts a TL2 timestamp extension instead of
// conflicting outright.
func sampleVar(tx *Tx, v *Var, record, extend bool) int64 {
	for {
		m1 := v.meta.Load()
		if isLocked(m1) {
			// A commit is in flight on v: park on it — its writeback (or
			// the fallback timer, if it aborts) re-runs us.
			tx.conflictOn(&v.varBase, m1)
		}
		val := v.val.Load()
		if m2 := v.meta.Load(); m1 != m2 {
			continue // torn sample; retry
		}
		if version(m1) > tx.rv {
			// Written by a transaction after our snapshot: the world
			// already changed, so retry immediately — never park. Under
			// the deferred clock the observation itself must advance the
			// clock first, or the next snapshot would be no fresher.
			tx.s.clockObserve(version(m1))
			if !extend || !tx.extendSnapshot() {
				noteContention(&v.varBase)
				tx.conflictRetryNow()
			}
			continue
		}
		if record {
			tx.reads = append(tx.reads, readEntry{vb: &v.varBase, meta: m1})
		}
		tx.nreads++
		return val
	}
}

// sampleBox is the pointer-lane twin of sampleVar.
func sampleBox(tx *Tx, b boxed, record, extend bool) any {
	vb := b.base()
	for {
		m1 := vb.meta.Load()
		if isLocked(m1) {
			tx.conflictOn(vb, m1)
		}
		box := b.loadBox()
		if m2 := vb.meta.Load(); m1 != m2 {
			continue // torn sample; retry
		}
		if version(m1) > tx.rv {
			tx.s.clockObserve(version(m1))
			if !extend || !tx.extendSnapshot() {
				noteContention(vb)
				tx.conflictRetryNow()
			}
			continue
		}
		if record {
			tx.reads = append(tx.reads, readEntry{vb: vb, meta: m1})
		}
		tx.nreads++
		return box
	}
}

// extendSnapshot is the TL2 timestamp extension: move tx.rv forward to
// the current clock, provided every previous read is still valid at its
// original version (so the whole snapshot remains consistent at the new
// rv). Invisible reads (no read set) can only extend while no read has
// happened yet; after that there is nothing to revalidate against.
func (tx *Tx) extendSnapshot() bool {
	if tx.nreads != len(tx.reads) {
		// Some reads were invisible: extension would silently invalidate
		// them, except when none have happened at all.
		if tx.nreads == 0 {
			tx.rv = tx.s.clockBegin()
			return true
		}
		return false
	}
	newRV := tx.s.clockBegin()
	for _, re := range tx.reads {
		cur := re.vb.meta.Load()
		if isLocked(cur) || version(cur) > tx.rv {
			return false
		}
	}
	tx.rv = newRV
	return true
}

// lockWriteSetSorted acquires the commit-time locks on the combined
// write set of both lanes in id order (deterministic across committers,
// so concurrent commits cannot deadlock). Locks taken are recorded in
// tx.lockedMeta — a capacity-retained slice sorted by id, so the hot
// path allocates nothing — and releasePrepared restores them on any
// later failure. Shared by the lazy-family engines.
func lockWriteSetSorted(tx *Tx) bool {
	n := len(tx.writes) + len(tx.pwrites)
	if n == 0 {
		return true
	}
	lm := tx.lockedMeta[:0]
	for i := range tx.writes {
		lm = append(lm, lockedEntry{vb: &tx.writes[i].v.varBase})
	}
	for i := range tx.pwrites {
		lm = append(lm, lockedEntry{vb: tx.pwrites[i].b.base()})
	}
	slices.SortFunc(lm, func(a, b lockedEntry) int {
		switch {
		case a.vb.id < b.vb.id:
			return -1
		case a.vb.id > b.vb.id:
			return 1
		default:
			return 0
		}
	})
	for i := 0; i < len(lm); {
		m, ok := lm[i].vb.tryLock(tx.rv)
		if ok {
			lm[i].meta = m
			i++
			continue
		}
		// Back out the locks taken so far before deciding how to fail —
		// or, under the deferred clock, whether to fail at all.
		for j := i - 1; j >= 0; j-- {
			lm[j].vb.meta.Store(lm[j].meta)
		}
		if !isLocked(m) {
			// Too new (or torn): any future snapshot must be able to see
			// past m — advance the deferred clock first.
			tx.s.clockObserve(version(m))
			if tx.s.clockMode == ClockDeferred && tx.extendSnapshot() {
				// Deferred-mode commits never publish to the clock, so a
				// write target newer than rv is the systematic common
				// case (every writer trips over its own last commit), not
				// evidence of a race. Extend the snapshot — revalidating
				// the read set exactly as the read path would — and
				// relock at the fresh rv instead of paying an abort.
				i = 0
				continue
			}
			tx.conflictChanged = true
		} else {
			// A locked write target is worth parking on: its committer
			// will wake us. The contention table learns who we lost to.
			tx.conflictVB, tx.conflictMeta = lm[i].vb, m
		}
		noteContention(lm[i].vb)
		clear(lm)
		tx.lockedMeta = lm[:0]
		return false
	}
	tx.lockedMeta = lm
	return true
}
