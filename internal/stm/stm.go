// Package stm is a software transactional memory for Go that realizes the
// paper's implementation model (§5): transactions provide ordering between
// directly dependent transactions (publication is safe by construction),
// while mixed-mode idioms without direct dependencies (privatization)
// require quiescence fences.
//
// Three engines are provided:
//
//   - Lazy: TL2-style lazy versioning — writes are buffered and applied at
//     commit under per-variable versioned locks, validated against a
//     global version clock. Exhibits the delayed-writeback privatization
//     anomaly of §3.5/§5 unless fences are used.
//   - Eager: encounter-time locking with an undo log — writes are applied
//     in place and rolled back on abort. Exhibits the speculative-
//     lost-update and dirty-read anomalies of §3.4 under mixed access.
//   - GlobalLock: a single global mutex around each transaction; the
//     strongest (and slowest) baseline.
//
// Mixed-mode access is supported through Var.Load and Var.Store, which are
// plain (non-transactional) atomic accesses. Quiesce implements the
// quiescence fence ⟨Qx⟩: it waits for every transaction that was active
// when the fence began (a conservative, location-oblivious implementation
// of WF12/HBCQ/HBQB).
package stm

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"
)

// Engine selects the versioning strategy.
type Engine int

// Available engines.
const (
	Lazy Engine = iota
	Eager
	GlobalLock
)

func (e Engine) String() string {
	switch e {
	case Lazy:
		return "lazy"
	case Eager:
		return "eager"
	case GlobalLock:
		return "global-lock"
	}
	return "unknown"
}

// ErrAbort is returned by transaction bodies to abort without retrying.
// Atomically rolls the transaction back and returns ErrAbort.
var ErrAbort = errors.New("stm: transaction aborted by user")

// ErrMaxRetries reports that a transaction exceeded its retry budget.
var ErrMaxRetries = errors.New("stm: transaction exceeded retry budget")

// ErrDuplicateInstance reports that AtomicallyMulti was given the same STM
// instance more than once (which would self-deadlock on the global-lock
// engine).
var ErrDuplicateInstance = errors.New("stm: duplicate STM instance in AtomicallyMulti")

const lockedBit = 1

// Var is a transactional variable holding an int64.
//
// meta packs a TL2-style versioned lock: version<<1 | lockedBit. The value
// lives in val and is accessed with atomic loads/stores so that mixed-mode
// access is a race only at the model level, not a Go data race.
type Var struct {
	id   uint64
	name string
	meta atomic.Uint64
	val  atomic.Int64
}

// Name returns the variable's diagnostic name.
func (v *Var) Name() string { return v.name }

// Load performs a plain (non-transactional) read.
func (v *Var) Load() int64 { return v.val.Load() }

// Store performs a plain (non-transactional) write. It does not interact
// with the transactional version clock: ordering against transactions is
// the programmer's responsibility, exactly as in the paper's mixed-race
// model (use Quiesce for privatization).
func (v *Var) Store(x int64) { v.val.Store(x) }

func version(meta uint64) uint64 { return meta >> 1 }
func isLocked(meta uint64) bool  { return meta&lockedBit != 0 }

// Options configures an STM instance.
type Options struct {
	Engine Engine
	// MaxRetries bounds the commit attempts per Atomically call
	// (0 = 1,000,000).
	MaxRetries int
	// QuiesceSlots sizes the active-transaction table used by Quiesce
	// (0 = 8×GOMAXPROCS, minimum 64).
	QuiesceSlots int
}

// Stats are cumulative counters, safe to read concurrently.
type Stats struct {
	Commits      atomic.Uint64
	Conflicts    atomic.Uint64
	UserAborts   atomic.Uint64
	MultiCommits atomic.Uint64 // commits that were part of an AtomicallyMulti
	Quiesces     atomic.Uint64 // quiescence fences executed
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	Commits      uint64
	Conflicts    uint64
	UserAborts   uint64
	MultiCommits uint64
	Quiesces     uint64
}

// STM is a transactional memory instance. Vars belong to the instance that
// created them; mixing instances is a programming error.
type STM struct {
	engine     Engine
	maxRetries int
	clock      atomic.Uint64 // global version clock (TL2)
	txSeq      atomic.Uint64 // transaction admission sequence (quiescence)
	nextVarID  atomic.Uint64
	glock      chan struct{} // global-lock engine's mutex (chan for TryLock-free simplicity)
	slots      []slot
	stats      Stats

	// Test hooks, called at anomaly windows when non-nil. WritebackDelay
	// runs after validation and before lazy writeback; RollbackDelay runs
	// before eager undo is applied. They let tests and the stress harness
	// make the §3.4/§3.5 anomaly windows deterministic.
	WritebackDelay func()
	RollbackDelay  func()
}

type slot struct {
	seq atomic.Uint64 // 0 = free, otherwise transaction admission number
	_   [7]uint64     // pad to a cache line to avoid false sharing
}

// New creates an STM instance.
func New(opts Options) *STM {
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 1_000_000
	}
	n := opts.QuiesceSlots
	if n == 0 {
		n = 8 * runtime.GOMAXPROCS(0)
		if n < 64 {
			n = 64
		}
	}
	s := &STM{
		engine:     opts.Engine,
		maxRetries: opts.MaxRetries,
		glock:      make(chan struct{}, 1),
		slots:      make([]slot, n),
	}
	return s
}

// Engine returns the instance's engine.
func (s *STM) Engine() Engine { return s.engine }

// NewVar creates a transactional variable with an initial value.
func (s *STM) NewVar(name string, init int64) *Var {
	v := &Var{id: s.nextVarID.Add(1), name: name}
	v.val.Store(init)
	return v
}

// Snapshot returns current statistics.
func (s *STM) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Commits:      s.stats.Commits.Load(),
		Conflicts:    s.stats.Conflicts.Load(),
		UserAborts:   s.stats.UserAborts.Load(),
		MultiCommits: s.stats.MultiCommits.Load(),
		Quiesces:     s.stats.Quiesces.Load(),
	}
}

// acquireSlot registers a transaction for quiescence tracking and returns
// its slot index.
func (s *STM) acquireSlot() (int, uint64) {
	seq := s.txSeq.Add(1)
	for {
		for i := range s.slots {
			if s.slots[i].seq.Load() == 0 && s.slots[i].seq.CompareAndSwap(0, seq) {
				return i, seq
			}
		}
		runtime.Gosched()
	}
}

func (s *STM) releaseSlot(i int) { s.slots[i].seq.Store(0) }

// Quiesce implements a quiescence fence: it returns only after every
// transaction admitted before the call has resolved (committed or
// aborted). The vars arguments document intent (⟨Qx⟩ names a location);
// this implementation is conservative and waits for all transactions,
// which soundly over-approximates WF12/HBCQ/HBQB.
func (s *STM) Quiesce(vars ...*Var) {
	_ = vars
	s.stats.Quiesces.Add(1)
	snap := s.txSeq.Load()
	for spins := 0; ; spins++ {
		busy := false
		for i := range s.slots {
			if seq := s.slots[i].seq.Load(); seq != 0 && seq <= snap {
				busy = true
				break
			}
		}
		if !busy {
			return
		}
		if spins < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(time.Microsecond)
		}
	}
}

// String implements fmt.Stringer for diagnostics.
func (s *STM) String() string {
	st := s.Snapshot()
	return fmt.Sprintf("stm(%s): commits=%d conflicts=%d user-aborts=%d",
		s.engine, st.Commits, st.Conflicts, st.UserAborts)
}
