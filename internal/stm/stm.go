// Package stm is a software transactional memory for Go that realizes the
// paper's implementation model (§5): transactions provide ordering between
// directly dependent transactions (publication is safe by construction),
// while mixed-mode idioms without direct dependencies (privatization)
// require quiescence fences.
//
// The versioning strategy is pluggable: every strategy implements the
// unexported engine interface (per-location read/write hooks over both
// value lanes plus the lock/validate/commit/rollback phases) and is
// selected through the exported Engine enum, which is backed by a
// registry (Engines, ParseEngine). Five engines are registered:
//
//   - Lazy: lazy versioning — writes are buffered and applied at
//     commit under per-variable versioned locks, validated against a
//     global version clock. Exhibits the delayed-writeback privatization
//     anomaly of §3.5/§5 unless fences are used.
//   - Eager: encounter-time locking with an undo log — writes are applied
//     in place and rolled back on abort. Exhibits the speculative-
//     lost-update and dirty-read anomalies of §3.4 under mixed access.
//   - GlobalLock: a single global mutex around each transaction; the
//     strongest (and slowest) baseline.
//   - TL2: the snapshot engine — the lazy commit protocol plus TL2
//     timestamp extension and invisible reads, making AtomicallyRead
//     (read-only transactions) lock-free with O(1) commit. Inherits the
//     lazy engine's mixed-access anomalies.
//   - Adaptive: contention-adaptive — starts every instance on the TL2
//     protocol and flips new attempts to eager encounter locking while
//     the instance's windowed conflict rate stays above a hysteresis
//     threshold (see adapt.go and engine_adaptive.go).
//
// Transactional locations come in two shapes sharing one engine:
//
//   - Var holds an int64 in an atomic.Int64 — the zero-cost word
//     specialization used for counters and hot numeric state.
//   - TVar[T] holds any T behind a word-sized atomic.Pointer[T] box, so
//     strings, byte slices and structs get the same mixed-mode and
//     transactional semantics at the cost of one pointer indirection.
//
// Mixed-mode access is supported through Load and Store on both shapes,
// which are plain (non-transactional) atomic accesses. Quiesce implements
// the quiescence fence ⟨Qx⟩: it waits for every transaction that was
// active when the fence began (a conservative, location-oblivious
// implementation of WF12/HBCQ/HBQB).
package stm

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

const lockedBit = 1

// varBase is the engine-facing core every transactional variable embeds:
// a stable identity for deterministic lock ordering, a diagnostic name,
// a TL2-style versioned lock packed as version<<1 | lockedBit, and the
// owning instance (whose waiter table parked transactions register in —
// see notify.go).
type varBase struct {
	id    uint64
	name  string
	owner *STM
	meta  atomic.Uint64
}

// Name returns the variable's diagnostic name.
func (vb *varBase) Name() string { return vb.name }

func version(meta uint64) uint64 { return meta >> 1 }
func isLocked(meta uint64) bool  { return meta&lockedBit != 0 }

// tryLock CASes the lock bit in, failing when the variable is locked or
// was written after the snapshot rv. On success the pre-lock meta is
// returned for restoration on abort; on failure the sampled meta is
// returned so the caller can attribute the conflict (park on a locked
// variable, retry immediately past a too-new one).
func (vb *varBase) tryLock(rv uint64) (uint64, bool) {
	m := vb.meta.Load()
	if isLocked(m) || version(m) > rv || !vb.meta.CompareAndSwap(m, m|lockedBit) {
		return m, false
	}
	return m, true
}

// Var is a transactional variable holding an int64 — the word-sized
// specialization of the typed API. Its value lives in an atomic.Int64 and
// is accessed with atomic loads/stores so that mixed-mode access is a
// race only at the model level, not a Go data race.
type Var struct {
	varBase
	val atomic.Int64
}

// Load performs a plain (non-transactional) read.
func (v *Var) Load() int64 { return v.val.Load() }

// Store performs a plain (non-transactional) write. It does not interact
// with the transactional version clock: ordering against transactions is
// the programmer's responsibility, exactly as in the paper's mixed-race
// model (use Quiesce for privatization).
func (v *Var) Store(x int64) { v.val.Store(x) }

// Option configures an STM instance (see New).
type Option func(*config)

type config struct {
	engine       Engine
	clock        ClockMode
	maxRetries   int
	quiesceSlots int
	metricsOff   bool
	sampleEvery  uint64
	spin         int // 0 = adaptive (default); >0 pins the spin budget
}

// WithEngine selects the versioning strategy (default Lazy).
func WithEngine(e Engine) Option { return func(c *config) { c.engine = e } }

// WithMaxRetries bounds the commit attempts per Atomically call
// (default 1,000,000).
func WithMaxRetries(n int) Option { return func(c *config) { c.maxRetries = n } }

// WithQuiesceSlots sizes the active-transaction table used by Quiesce
// (default 8×GOMAXPROCS, minimum 64).
func WithQuiesceSlots(n int) Option { return func(c *config) { c.quiesceSlots = n } }

// WithMetrics enables or disables the instance's Metrics (default
// enabled). Disabled means Metrics() returns nil and every
// instrumentation site reduces to a nil check.
func WithMetrics(on bool) Option { return func(c *config) { c.metricsOff = !on } }

// WithMetricsSampling sets the latency-sampling period: one transaction
// in every n carries a timestamp (default 256; n is rounded up to a power
// of two so the decision is a mask test). n <= 1 samples every
// transaction — the deterministic setting tests use. Park durations and
// conflict attribution are always recorded regardless of n.
func WithMetricsSampling(n int) Option {
	return func(c *config) {
		if n < 1 {
			n = 1
		}
		c.sampleEvery = uint64(n)
	}
}

// Stats are cumulative counters, safe to read concurrently. The
// counters are grouped by the path that bumps them — commit, conflict,
// park — with a cache line of padding between groups, so the commit
// path's adds do not false-share with the conflict path's on many-core
// hardware (each group still shares its own line: that sharing is true,
// not false).
type Stats struct {
	Commits         atomic.Uint64
	MultiCommits    atomic.Uint64 // commits that were part of an AtomicallyMulti
	ReadOnlyCommits atomic.Uint64 // commits through AtomicallyRead / AtomicallyReadMulti
	_               [40]byte      // commit-path group ends its cache line here

	Conflicts  atomic.Uint64
	UserAborts atomic.Uint64
	Quiesces   atomic.Uint64 // quiescence fences executed
	_          [40]byte      // conflict-path group ends its cache line here

	// Blocking subsystem (see notify.go). Waits counts parks — attempts
	// that registered their footprint, revalidated and went to sleep;
	// Wakeups counts parks ended by a commit notification (or the
	// quiescence broadcast); SpuriousWakeups counts parks ended by the
	// bounded fallback timer with no notification — the rare windows
	// notification cannot cover, such as a lock-holder that aborted.
	// Parks ended by context cancellation count in neither.
	Waits           atomic.Uint64
	Wakeups         atomic.Uint64
	SpuriousWakeups atomic.Uint64
}

// StatsSnapshot is a point-in-time copy of Stats. The JSON field names
// are a stable wire format — the admin plane and bench reports emit
// them; renaming one is a breaking change.
type StatsSnapshot struct {
	Commits         uint64 `json:"commits"`
	Conflicts       uint64 `json:"conflicts"`
	UserAborts      uint64 `json:"user_aborts"`
	MultiCommits    uint64 `json:"multi_commits"`
	ReadOnlyCommits uint64 `json:"read_only_commits"`
	Quiesces        uint64 `json:"quiesces"`
	Waits           uint64 `json:"waits"`
	Wakeups         uint64 `json:"wakeups"`
	SpuriousWakeups uint64 `json:"spurious_wakeups"`
}

// STM is a transactional memory instance. Vars belong to the instance that
// created them; mixing instances is a programming error.
//
// structlayout (pinned — keep when editing): the struct is laid out in
// three bands so that many-core commit traffic never false-shares.
//
//	band 1  read-mostly configuration and pointers, written only by New
//	        (engine … RollbackDelay): any number of cores may cache
//	        these lines shared; nothing on the hot path stores to them.
//	band 2  write-hot words, one per 64-byte cache line, each isolated
//	        by a cacheLinePad *before* it (the pad absorbs the tail of
//	        the previous line) — clock (every begin loads it and, in
//	        shared clock mode, every writing commit RMWs it), txSeq
//	        (every begin RMWs it), nextVarID (every NewVar/NewTVar,
//	        which kv's key-insert path hits at runtime), and the
//	        spin/strategy pair (read per conflict, stored only by the
//	        adaptive controller).
//	band 3  self-padding aggregates: adapt (slow path, own mutex),
//	        stats (internally grouped by path — see Stats), waiters
//	        (gate word and buckets padded in notify.go), and the pools
//	        (sync.Pool shards itself per P).
//
// TestSTMHotFieldLayout pins the band-2 isolation with unsafe.Offsetof,
// so an accidental reorder fails the build's tests rather than a
// 16-core benchmark three PRs later.
type STM struct {
	// --- band 1: read-mostly ---
	engine     Engine
	eng        engine // the registered implementation behind the enum
	maxRetries int
	clockMode  ClockMode     // version-clock strategy (see clock.go)
	spinPinned bool          // WithSpinAttempts: adaptive controller disabled
	glock      chan struct{} // global-lock engine's mutex (chan for TryLock-free simplicity)
	slots      []slot

	// metrics is the observability surface (nil when disabled with
	// WithMetrics(false)); sampleMask gates which transactions carry a
	// latency timestamp (period-1, period a power of two).
	metrics    *Metrics
	sampleMask uint64

	// commitTap, when installed (SetCommitTap), is invoked by
	// commitPrepared for every committing attempt that attached a
	// payload with Tx.SetTapData — at the serialization point, before
	// the write set is published. Behind a pointer so it can be
	// installed on a live instance with one atomic store.
	commitTap atomic.Pointer[func(any)]

	// Test hooks, called at anomaly windows when non-nil. WritebackDelay
	// runs after validation and before lazy writeback; RollbackDelay runs
	// before eager undo is applied. They let tests and the stress harness
	// make the §3.4/§3.5 anomaly windows deterministic.
	WritebackDelay func()
	RollbackDelay  func()

	// --- band 2: write-hot words, one per cache line ---
	_         cacheLinePad
	clock     atomic.Uint64 // global version clock (TL2); ops in clock.go
	_         cacheLinePad
	txSeq     atomic.Uint64 // transaction admission sequence (quiescence)
	_         cacheLinePad
	nextVarID atomic.Uint64
	_         cacheLinePad
	spin      atomic.Int32 // adaptive spin-before-park budget (see adapt.go)
	strategy  atomic.Int32 // Adaptive engine's current delegate (engine_adaptive.go)
	_         cacheLinePad

	// --- band 3: self-padding aggregates ---

	// adapt is the contention controller's bookkeeping (see adapt.go);
	// touched only on the conflict slow path.
	adapt adaptState

	stats Stats

	// waiters is the commit-notification table: parked transactions
	// register their footprints here and every commit announces its
	// write set through it (see notify.go).
	waiters waitTable

	// txPool recycles attempt handles: begin takes one, finishTx resets
	// it (retaining slice capacity) and puts it back, so the steady-state
	// transaction path allocates nothing.
	txPool sync.Pool

	// waiterPool recycles park registrations the same way.
	waiterPool sync.Pool
}

// cacheLinePad isolates the band-2 hot words of STM: placed before each
// word, it guarantees at least 64 bytes between any two of them (and
// between the first word and band 1), so a store to one never
// invalidates another's line.
type cacheLinePad struct{ _ [64]byte }

type slot struct {
	seq atomic.Uint64 // 0 = free, otherwise transaction admission number
	_   [7]uint64     // pad to a cache line to avoid false sharing
}

// New creates an STM instance. It panics on an unregistered engine — the
// enum values and ParseEngine results are always registered, so this only
// trips on a hand-rolled Engine literal.
func New(opts ...Option) *STM {
	var c config
	for _, o := range opts {
		o(&c)
	}
	if c.maxRetries == 0 {
		c.maxRetries = 1_000_000
	}
	n := c.quiesceSlots
	if n == 0 {
		n = 8 * runtime.GOMAXPROCS(0)
		if n < 64 {
			n = 64
		}
	}
	info, ok := lookupEngine(c.engine)
	if !ok {
		panic(fmt.Sprintf("stm: engine %v is not registered", c.engine))
	}
	se := c.sampleEvery
	if se == 0 {
		se = 256
	}
	if se&(se-1) != 0 {
		se = 1 << bits.Len64(se) // round up to a power of two
	}
	s := &STM{
		engine:     c.engine,
		eng:        info.impl,
		maxRetries: c.maxRetries,
		clockMode:  c.clock,
		glock:      make(chan struct{}, 1),
		slots:      make([]slot, n),
		sampleMask: se - 1,
	}
	spin := c.spin
	if spin > 0 {
		s.spinPinned = true
	} else {
		spin = spinDefault
	}
	s.spin.Store(int32(spin))
	// The Adaptive engine starts every instance on tl2 (strategyTL2 is
	// the zero value); the controller flips it under contention.
	if !c.metricsOff {
		s.metrics = &Metrics{}
	}
	s.txPool.New = func() any {
		tx := &Tx{s: s, e: s.eng}
		tx.rtx.tx = tx
		return tx
	}
	s.waiterPool.New = func() any {
		return &waiter{s: s, ch: make(chan struct{}, 1)}
	}
	return s
}

// Engine returns the instance's engine.
func (s *STM) Engine() Engine { return s.engine }

// SetCommitTap installs f as the instance's commit tap, replacing any
// previous tap (nil removes it). The tap is called once per committing
// attempt that attached a payload with Tx.SetTapData, at the attempt's
// serialization point: the commit outcome is already decided (write
// locks held, read set validated) but the write set is not yet
// published and the locks not yet released. Two transactions that
// conflict therefore invoke the tap in their serialization order — the
// property the durability and changefeed layers rely on to sequence a
// per-shard log in commit order. Taps of non-conflicting commits may
// run concurrently; the callee orders them itself if it must.
//
// f runs on the committing goroutine with commit-time locks held: it
// must be fast, must not block on I/O, and must not run transactions
// on this instance. Installing a tap costs committing transactions
// nothing until a body attaches tap data (one nil check otherwise).
func (s *STM) SetCommitTap(f func(data any)) {
	if f == nil {
		s.commitTap.Store(nil)
		return
	}
	s.commitTap.Store(&f)
}

// MaxRetries returns the per-call retry budget.
func (s *STM) MaxRetries() int { return s.maxRetries }

// NewVar creates an int64 transactional variable with an initial value.
func (s *STM) NewVar(name string, init int64) *Var {
	v := &Var{varBase: varBase{id: s.nextVarID.Add(1), name: name, owner: s}}
	v.val.Store(init)
	return v
}

// Snapshot returns current statistics.
func (s *STM) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Commits:         s.stats.Commits.Load(),
		Conflicts:       s.stats.Conflicts.Load(),
		UserAborts:      s.stats.UserAborts.Load(),
		MultiCommits:    s.stats.MultiCommits.Load(),
		ReadOnlyCommits: s.stats.ReadOnlyCommits.Load(),
		Quiesces:        s.stats.Quiesces.Load(),
		Waits:           s.stats.Waits.Load(),
		Wakeups:         s.stats.Wakeups.Load(),
		SpuriousWakeups: s.stats.SpuriousWakeups.Load(),
	}
}

// acquireSlot registers a transaction for quiescence tracking and returns
// its slot index.
func (s *STM) acquireSlot() (int, uint64) {
	seq := s.txSeq.Add(1)
	for {
		for i := range s.slots {
			if s.slots[i].seq.Load() == 0 && s.slots[i].seq.CompareAndSwap(0, seq) {
				return i, seq
			}
		}
		runtime.Gosched()
	}
}

func (s *STM) releaseSlot(i int) { s.slots[i].seq.Store(0) }

// Quiesce implements a quiescence fence: it returns only after every
// transaction admitted before the call has resolved (committed or
// aborted). The vars arguments document intent (⟨Qx⟩ names a location);
// this implementation is conservative and waits for all transactions,
// which soundly over-approximates WF12/HBCQ/HBQB.
func (s *STM) Quiesce(vars ...*Var) {
	_ = vars
	s.stats.Quiesces.Add(1)
	snap := s.txSeq.Load()
	for spins := 0; ; spins++ {
		busy := false
		for i := range s.slots {
			if seq := s.slots[i].seq.Load(); seq != 0 && seq <= snap {
				busy = true
				break
			}
		}
		if !busy {
			break
		}
		if spins < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(time.Microsecond)
		}
	}
	// Privatization must not strand waiters: once the fence passes, the
	// privatized locations may change through plain writes that no
	// commit will announce, so every transaction parked at fence time is
	// woken to re-read the world (see waitTable.broadcast).
	s.waiters.broadcast()
}

// String implements fmt.Stringer for diagnostics.
func (s *STM) String() string {
	st := s.Snapshot()
	return fmt.Sprintf("stm(%s): commits=%d conflicts=%d user-aborts=%d",
		s.engine, st.Commits, st.Conflicts, st.UserAborts)
}
