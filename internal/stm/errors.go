package stm

import (
	"errors"
	"fmt"
)

// Sentinel errors of the transactional API. All errors returned by
// Atomically / AtomicallyCtx and their multi-instance variants either are
// one of these sentinels, wrap one in a *TxError carrying diagnostics, or
// come verbatim from the transaction body — so callers dispatch with
// errors.Is and recover diagnostics with errors.As.
var (
	// ErrAborted is returned by transaction bodies to abort without
	// retrying. Atomically rolls the transaction back and returns it.
	ErrAborted = errors.New("stm: transaction aborted by user")

	// ErrAbort is the v1 name of ErrAborted.
	//
	// Deprecated: use ErrAborted.
	ErrAbort = ErrAborted

	// ErrMaxRetries reports that a transaction exceeded its retry budget.
	// The returned error is a *TxError wrapping this sentinel.
	ErrMaxRetries = errors.New("stm: transaction exceeded retry budget")

	// ErrCanceled reports that the context passed to AtomicallyCtx (or
	// AtomicallyMultiCtx) was canceled or timed out between retry
	// attempts. The returned error is a *TxError wrapping this sentinel
	// and the context's error, so errors.Is matches both ErrCanceled and
	// context.Canceled / context.DeadlineExceeded.
	ErrCanceled = errors.New("stm: transaction canceled")

	// ErrDuplicateInstance reports that AtomicallyMulti was given the same
	// STM instance more than once (which would self-deadlock on the
	// global-lock engine).
	ErrDuplicateInstance = errors.New("stm: duplicate STM instance in AtomicallyMulti")
)

// TxError is the diagnostic wrapper for transaction failures that are the
// runtime's fault rather than the body's: retry-budget exhaustion and
// context cancellation. It unwraps to its sentinel (and, for
// cancellation, to the context's error).
type TxError struct {
	Op        string // "atomically" or "atomically-multi"
	Engine    Engine // engine of the (first) instance
	Attempts  int    // attempts completed when the call gave up
	Conflicts int    // conflict-aborted attempts within this call
	Err       error  // sentinel: ErrMaxRetries or ErrCanceled
	Cause     error  // context error for ErrCanceled, else nil
}

func (e *TxError) Error() string {
	msg := fmt.Sprintf("%v (%s on %s engine: %d attempts, %d conflicts",
		e.Err, e.Op, e.Engine, e.Attempts, e.Conflicts)
	if e.Cause != nil {
		msg += ": " + e.Cause.Error()
	}
	return msg + ")"
}

// Unwrap exposes the sentinel and the cancellation cause to errors.Is/As.
func (e *TxError) Unwrap() []error {
	if e.Cause != nil {
		return []error{e.Err, e.Cause}
	}
	return []error{e.Err}
}

func (s *STM) txError(op string, attempts, conflicts int, sentinel, cause error) *TxError {
	return &TxError{
		Op:        op,
		Engine:    s.engine,
		Attempts:  attempts,
		Conflicts: conflicts,
		Err:       sentinel,
		Cause:     cause,
	}
}
