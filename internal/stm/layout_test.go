package stm

import (
	"testing"
	"unsafe"
)

// TestSTMHotFieldLayout pins the band-2 isolation documented in the STM
// structlayout comment: every write-hot word sits at least a cache line
// away from its neighbors, so a store to one never invalidates
// another's line. An accidental field reorder fails here instead of in
// a 16-core benchmark several PRs later.
func TestSTMHotFieldLayout(t *testing.T) {
	var s STM
	const line = 64
	hot := []struct {
		name string
		off  uintptr
	}{
		{"clock", unsafe.Offsetof(s.clock)},
		{"txSeq", unsafe.Offsetof(s.txSeq)},
		{"nextVarID", unsafe.Offsetof(s.nextVarID)},
		// spin and strategy share a line deliberately: both are adaptive
		// controller outputs, stored once per adaptEvery conflicts.
		{"spin", unsafe.Offsetof(s.spin)},
		{"adapt (band 3 start)", unsafe.Offsetof(s.adapt)},
	}
	for i := 1; i < len(hot); i++ {
		if gap := hot[i].off - hot[i-1].off; gap < line {
			t.Errorf("%s at %d is only %d bytes past %s at %d, want >= %d",
				hot[i].name, hot[i].off, gap, hot[i-1].name, hot[i-1].off, line)
		}
	}
	// The first hot word must not share a line with band 1's tail.
	if unsafe.Offsetof(s.clock) < line {
		t.Errorf("clock at offset %d shares a line with band 1", unsafe.Offsetof(s.clock))
	}
}

// TestWaiterTableLayout pins the notification subsystem's padding: the
// per-instance gate word (waitTable.active) owns its cache line, and
// each bucket is exactly one line so neighbors never false-share.
func TestWaiterTableLayout(t *testing.T) {
	var wt waitTable
	if off := unsafe.Offsetof(wt.buckets); off < 64 {
		t.Errorf("buckets at offset %d share the gate word's line", off)
	}
	if sz := unsafe.Sizeof(waitBucket{}); sz != 64 {
		t.Errorf("waitBucket size = %d, want exactly one 64-byte line", sz)
	}
	// Stats groups: the conflict-path group must not share a line with
	// the commit-path group, nor the park group with the conflict group.
	var st Stats
	if gap := unsafe.Offsetof(st.Conflicts) - unsafe.Offsetof(st.Commits); gap < 64 {
		t.Errorf("Conflicts only %d bytes past Commits, want >= 64", gap)
	}
	if gap := unsafe.Offsetof(st.Waits) - unsafe.Offsetof(st.Conflicts); gap < 64 {
		t.Errorf("Waits only %d bytes past Conflicts, want >= 64", gap)
	}
}
