package stm

import "sync/atomic"

// TVar is a transactional variable holding any T. The value lives behind
// a word-sized atomic.Pointer[T] box, so plain (mixed-mode) access is a
// single pointer load/store and the engines move boxes, not values: the
// generic API costs one indirection over the int64 specialization (Var)
// and nothing else.
//
// Values handed out by Load / ReadT are the stored boxes themselves:
// treat them as immutable (copy before mutating reference types such as
// slices and maps), and Store / WriteT install a fresh box per write.
type TVar[T any] struct {
	varBase
	val atomic.Pointer[T]
}

// NewTVar creates a typed transactional variable with an initial value.
// (A free function because Go methods cannot introduce type parameters.)
func NewTVar[T any](s *STM, name string, init T) *TVar[T] {
	v := &TVar[T]{varBase: varBase{id: s.nextVarID.Add(1), name: name, owner: s}}
	v.val.Store(&init)
	return v
}

// Load performs a plain (non-transactional) read.
func (v *TVar[T]) Load() T { return *v.val.Load() }

// Store performs a plain (non-transactional) write. Like Var.Store it
// does not interact with the transactional version clock; use Quiesce for
// privatization.
func (v *TVar[T]) Store(x T) { v.val.Store(&x) }

// boxed is the untyped, engine-facing view of a TVar: the engines log and
// move opaque boxes (a box is the *T behind the interface — interface
// conversion of a pointer does not allocate), while the typed wrappers
// ReadT and WriteT do the only casts.
type boxed interface {
	base() *varBase
	loadBox() any // current box; never nil after NewTVar
	storeBox(any) // install a box produced by the same TVar's lane
}

func (v *TVar[T]) base() *varBase { return &v.varBase }
func (v *TVar[T]) loadBox() any   { return v.val.Load() }
func (v *TVar[T]) storeBox(b any) { v.val.Store(b.(*T)) }

// ReadT returns the transactional value of v, exactly as Tx.Read does for
// int64 vars: consistent against the begin-time snapshot, with
// read-your-own-writes within the transaction.
func ReadT[T any](tx *Tx, v *TVar[T]) T {
	return *tx.readBoxed(v).(*T)
}

// WriteT sets the transactional value of v.
func WriteT[T any](tx *Tx, v *TVar[T], x T) {
	tx.writeBoxed(v, &x)
}
