package stm

// lazyEngine is TL2-style lazy versioning: writes are buffered in the
// transaction and applied at commit under per-variable versioned locks,
// validated against the global version clock. Reads validate against the
// begin-time snapshot at read time and again (via the read set) at
// commit. Exhibits the delayed-writeback privatization anomaly of
// §3.5/§5 unless fences are used.
type lazyEngine struct{}

func (lazyEngine) begin(tx *Tx)  { tx.rv = tx.s.clockBegin() }
func (lazyEngine) finish(tx *Tx) {}

func (lazyEngine) read(tx *Tx, v *Var) int64 {
	if val, ok := tx.lookupWrite(v); ok {
		return val
	}
	return sampleVar(tx, v, true, false)
}

func (lazyEngine) write(tx *Tx, v *Var, x int64) { tx.putWrite(v, x) }

func (lazyEngine) readBoxed(tx *Tx, b boxed) any {
	if box, ok := tx.lookupPWrite(b); ok {
		return box
	}
	return sampleBox(tx, b, true, false)
}

func (lazyEngine) writeBoxed(tx *Tx, b boxed, box any) { tx.putPWrite(b, box) }

func (e lazyEngine) prepare(tx *Tx) bool {
	if len(tx.writes)+len(tx.pwrites) == 0 {
		// Single-instance read-only fast path: every read was validated
		// against rv at read time, so the snapshot is consistent as of rv.
		// (Not sound for multi-instance commits, whose serialization point
		// is later than rv — they always run validateReads.)
		return true
	}
	return e.lockWrites(tx) && e.validateReads(tx)
}

func (lazyEngine) lockWrites(tx *Tx) bool { return lockWriteSetSorted(tx) }

func (lazyEngine) validateReads(tx *Tx) bool {
	for i := range tx.reads {
		re := &tx.reads[i]
		if mv, mine := tx.lockedMetaFor(re.vb); mine {
			if version(re.meta) != version(mv) {
				noteContention(re.vb)
				return false // someone updated between our read and our lock
			}
			continue
		}
		cur := re.vb.meta.Load()
		if isLocked(cur) || version(cur) > tx.rv {
			noteContention(re.vb)
			return false
		}
	}
	return true
}

func (lazyEngine) commit(tx *Tx) {
	s := tx.s
	if len(tx.writes)+len(tx.pwrites) == 0 {
		return
	}
	// clockWV is legal here and only here: every commit-time lock is
	// held (prepare/lockWrites succeeded), which is what makes the
	// deferred clock's load-after-lock soundness argument go through.
	wv := s.clockWV()
	// The anomaly window of §3.5: the transaction is logically committed
	// but its buffered writes are not yet applied.
	if s.WritebackDelay != nil {
		s.WritebackDelay()
	}
	for i := range tx.writes {
		w := &tx.writes[i]
		w.v.val.Store(w.val)
		w.v.meta.Store(s.releaseWord(wv, &w.v.varBase)) // release with the new version
	}
	for i := range tx.pwrites {
		p := &tx.pwrites[i]
		p.b.storeBox(p.box)
		p.b.base().meta.Store(s.releaseWord(wv, p.b.base()))
	}
	// Deferred clock only (no-op otherwise): publish wv so the committer's
	// own next snapshot covers this commit without tripping the too-new
	// path. Concurrent committers share the CAS — whoever runs first pays
	// it, the rest observe a covered clock and load only — which is what
	// keeps this below GV1's unconditional fetch-add per commit.
	s.clockObserve(wv)
	clear(tx.lockedMeta)
	tx.lockedMeta = tx.lockedMeta[:0]
}

func (lazyEngine) rollback(tx *Tx) {
	// Nothing was published; the buffers are dropped by the Tx reset.
}

// wakeSet announces the buffered write set (both lanes) — the variables
// whose version words commit just advanced. The tl2 engine inherits
// this along with the commit protocol.
func (lazyEngine) wakeSet(tx *Tx, f func(*varBase)) {
	for i := range tx.writes {
		f(&tx.writes[i].v.varBase)
	}
	for i := range tx.pwrites {
		f(tx.pwrites[i].b.base())
	}
}

func (lazyEngine) invisibleReadOnly(tx *Tx) bool { return false }
