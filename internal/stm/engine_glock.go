package stm

// glockEngine serializes every transaction of the instance under one
// mutex (a buffered channel, so no TryLock gymnastics): the strongest —
// and slowest — baseline. Reads and writes go straight to the variables;
// an undo log supports user aborts.
type glockEngine struct{}

func (glockEngine) begin(tx *Tx) {
	tx.s.glock <- struct{}{}
	// Snapshot after acquisition so the transaction observes every commit
	// serialized before it.
	tx.rv = tx.s.clockBegin()
}

func (glockEngine) finish(tx *Tx) { <-tx.s.glock }

func (glockEngine) read(tx *Tx, v *Var) int64 {
	// The global mutex serializes transactions, so a plain load suffices
	// for consistency — but the read still joins the read set (with the
	// version word the notification subsystem compares) so a blocked or
	// conflicted attempt knows what footprint to park on. validateReads
	// stays trivially true; the entries are wait registrations only.
	tx.reads = append(tx.reads, readEntry{vb: &v.varBase, meta: v.meta.Load()})
	tx.nreads++
	return v.val.Load()
}

func (glockEngine) write(tx *Tx, v *Var, x int64) {
	tx.undo = append(tx.undo, undoEntry{v: v, old: v.val.Load()})
	v.val.Store(x)
}

func (glockEngine) readBoxed(tx *Tx, b boxed) any {
	vb := b.base()
	tx.reads = append(tx.reads, readEntry{vb: vb, meta: vb.meta.Load()})
	tx.nreads++
	return b.loadBox()
}

func (glockEngine) writeBoxed(tx *Tx, b boxed, box any) {
	tx.pundo = append(tx.pundo, pundoEntry{b: b, old: b.loadBox()})
	b.storeBox(box)
}

func (glockEngine) prepare(tx *Tx) bool       { return true }
func (glockEngine) lockWrites(tx *Tx) bool    { return true }
func (glockEngine) validateReads(tx *Tx) bool { return true }

func (glockEngine) commit(tx *Tx) {
	if len(tx.undo)+len(tx.pundo) == 0 {
		return // read-only: don't contend the clock for nothing
	}
	// Bump written variables' versions so lazy-family readers on other
	// instances (AtomicallyMulti) and quiescence-free fast paths observe
	// the update order. The instance mutex is the commit-time lock, so
	// clockWV's load-after-lock requirement holds trivially.
	wv := tx.s.clockWV()
	for i := range tx.undo {
		vb := &tx.undo[i].v.varBase
		vb.meta.Store(tx.s.releaseWord(wv, vb))
	}
	for i := range tx.pundo {
		vb := tx.pundo[i].b.base()
		vb.meta.Store(tx.s.releaseWord(wv, vb))
	}
	// Publish wv under the deferred clock (no-op otherwise) so later
	// snapshots — including other engines' in AtomicallyMulti — cover
	// this commit; see the lazy engine's commit.
	tx.s.clockObserve(wv)
	// The undo logs are dropped by the Tx reset.
}

func (glockEngine) rollback(tx *Tx) {
	for i := len(tx.undo) - 1; i >= 0; i-- {
		tx.undo[i].v.val.Store(tx.undo[i].old)
	}
	for i := len(tx.pundo) - 1; i >= 0; i-- {
		tx.pundo[i].b.storeBox(tx.pundo[i].old)
	}
	// The undo logs are dropped by the Tx reset.
}

// wakeSet announces the undo logs — every in-place write logged its
// variable, so the logs cover the published write set (repeat writes
// re-signal the same variable, which the buffered waiter channel
// collapses).
func (glockEngine) wakeSet(tx *Tx, f func(*varBase)) {
	for i := range tx.undo {
		f(&tx.undo[i].v.varBase)
	}
	for i := range tx.pundo {
		f(tx.pundo[i].b.base())
	}
}

func (glockEngine) invisibleReadOnly(tx *Tx) bool { return false }
