package stm

import (
	"sync"
	"sync/atomic"
)

// Adaptive contention management: each STM instance owns a tiny
// controller that retunes two knobs from its own telemetry instead of
// hard-coding them.
//
//   - The spin budget — how many conflicted attempts yield the
//     processor before the retry loops start parking (the constant 8 of
//     the original notify.go policy). Spinning wins while conflicts are
//     transient; parking wins when they are persistent, because a
//     parked attempt burns no CPU and is woken exactly by the commit it
//     lost to.
//   - The strategy, on the Adaptive engine only — which registered
//     protocol (tl2 or eager) new attempts begin under.
//
// The controller runs on the conflict slow path only: every conflicted
// attempt ticks a counter, and once per adaptEvery conflicts one loser
// (TryLock, so never two) recomputes the knobs from the windowed deltas
// of the instance's Stats — the conflict rate against commits, whether
// anything actually parked (Stats.Waits) — and from the obs.HotTable
// contention sketch, which tells it whether the conflicts concentrate
// on a single hot variable (spinning on a hotspot is futile: the line
// just bounces) or spread across the keyspace. Conflict-free workloads
// never run the controller at all, so the zero-allocation commit path
// is untouched.
const (
	// spinDefault is the initial spin budget — the historical fixed
	// policy, now only a starting point.
	spinDefault = 8
	// spinMin..spinMax bound the controller so a pathological window
	// cannot disable spinning entirely or degenerate into busy-wait.
	spinMin = 2
	spinMax = 64
	// adaptEvery is the conflict period between controller runs; a
	// power of two so the gate is a mask test.
	adaptEvery = 256
	// adaptHi/adaptLo are the hysteresis thresholds on the windowed
	// conflict rate conflicts/(commits+conflicts): above adaptHi the
	// instance is contended (halve the spin budget, prefer encounter
	// locking); below adaptLo it is calm (grow the budget back if
	// attempts still parked, return to tl2). The dead band between them
	// is what keeps the controller from oscillating.
	adaptHi = 0.50
	adaptLo = 0.10
	// adaptSkew marks a window as hotspot-skewed when the top slot of
	// the contention sketch absorbed at least this share of the window's
	// conflicts — the "everyone lost to the same variable" shape where
	// spinning cannot help regardless of the aggregate rate.
	adaptSkew = 0.75
)

// adaptState is the controller's bookkeeping. It shares a cache line
// with nothing hot: the tick is bumped only by conflicted attempts and
// everything else is touched once per adaptEvery conflicts under mu.
type adaptState struct {
	tick atomic.Uint32
	mu   sync.Mutex

	// Window baselines: the Stats readings at the last controller run.
	lastCommits   uint64
	lastConflicts uint64
	lastWaits     uint64
	lastHot       uint64 // top contention-sketch count at the last run
}

// SpinBudget returns the instance's current spin-before-park budget:
// the number of leading conflicted attempts that yield instead of
// parking. It starts at 8 and adapts per instance unless pinned with
// WithSpinAttempts.
func (s *STM) SpinBudget() int { return int(s.spin.Load()) }

// WithSpinAttempts pins the spin-before-park budget to n and disables
// the adaptive controller for the instance. n <= 0 keeps the adaptive
// default.
func WithSpinAttempts(n int) Option { return func(c *config) { c.spin = n } }

// Strategy returns the protocol new attempts of the instance begin
// under: the engine itself for the fixed engines, and the current
// delegate (TL2 or Eager) for the Adaptive engine.
func (s *STM) Strategy() Engine {
	if s.engine != Adaptive {
		return s.engine
	}
	if s.strategy.Load() == strategyEager {
		return Eager
	}
	return TL2
}

// maybeAdapt is the controller entry point, called by every conflicted
// attempt (captureConflict / captureConflictMulti). It is three loads
// and a mask test until the window closes.
func (s *STM) maybeAdapt() {
	if s.spinPinned {
		return
	}
	if s.adapt.tick.Add(1)&(adaptEvery-1) != 0 {
		return
	}
	if !s.adapt.mu.TryLock() {
		return // another loser is already retuning; skip, don't queue
	}
	defer s.adapt.mu.Unlock()

	a := &s.adapt
	commits := s.stats.Commits.Load()
	conflicts := s.stats.Conflicts.Load()
	waits := s.stats.Waits.Load()
	dCommits := commits - a.lastCommits
	dConflicts := conflicts - a.lastConflicts
	dWaits := waits - a.lastWaits
	a.lastCommits, a.lastConflicts, a.lastWaits = commits, conflicts, waits

	total := dCommits + dConflicts
	if total == 0 {
		return
	}
	rate := float64(dConflicts) / float64(total)
	s.retune(rate, s.hotSkewed(dConflicts), dWaits)
}

// hotSkewed reports whether the contention sketch attributes at least
// adaptSkew of the window's conflicts to a single variable. The sketch
// is cumulative, so the top slot is windowed against its reading at the
// last run; sketch counts are approximate (space-saving decay), which
// is fine — this steers a heuristic, not a ledger.
func (s *STM) hotSkewed(dConflicts uint64) bool {
	if s.metrics == nil || dConflicts == 0 {
		return false
	}
	var top uint64
	for _, e := range s.metrics.Contention.Snapshot() {
		if e.Count > top {
			top = e.Count
		}
	}
	prev := s.adapt.lastHot
	s.adapt.lastHot = top
	if top <= prev {
		return false // sketch decayed or reset; no usable window
	}
	return float64(top-prev) >= adaptSkew*float64(dConflicts)
}

// retune applies the hysteresis policy to one closed window. Split from
// maybeAdapt so tests can drive it with synthetic windows.
//
//   - Contended (rate above adaptHi, or hotspot-skewed): halve the spin
//     budget — losers should park and be woken by the winning commit —
//     and, on the Adaptive engine, flip new attempts to eager
//     encounter locking, which detects the conflict at the first write
//     instead of after the whole body ran against doomed state.
//   - Calm (rate below adaptLo): return the Adaptive engine to tl2,
//     and grow the spin budget back while attempts still parked in the
//     window (parks under a calm rate mean conflicts are transient and
//     a longer spin would have absorbed them).
//   - In the dead band: change nothing.
func (s *STM) retune(rate float64, skewed bool, parked uint64) {
	cur := s.spin.Load()
	switch {
	case rate > adaptHi || skewed:
		if next := cur / 2; next >= spinMin {
			s.spin.Store(next)
		} else {
			s.spin.Store(spinMin)
		}
		if s.engine == Adaptive {
			s.strategy.Store(strategyEager)
		}
	case rate < adaptLo:
		if parked > 0 && cur < spinMax {
			s.spin.Store(cur * 2)
		}
		if s.engine == Adaptive {
			s.strategy.Store(strategyTL2)
		}
	}
}
