package stm

import (
	"modtx/internal/obs"
)

// Metrics is an STM instance's observability surface: fixed-layout
// atomic histograms and a contention-attribution table, recorded into by
// the transaction loops behind cheap gates and snapshotted by operators
// (internal/kv aggregates them per shard; cmd/mtx-kv renders them on the
// admin plane). All write sides are allocation-free, preserving the
// zero-allocation hot-path contract with metrics enabled.
//
// Latency and attempt distributions are sampled — by default one
// transaction in 256 (see WithMetricsSampling) carries a timestamp — so
// the steady-state cost of instrumentation is a non-atomic counter bump
// per call plus the amortized clock reads. Park durations and conflict
// attributions are recorded unsampled: both live on slow paths where a
// few atomic adds vanish into microseconds.
type Metrics struct {
	// CommitNs is the distribution of wall-clock latency (ns) of
	// committed read-write transactions — the whole Atomically call from
	// first attempt to commit, retries and parks included. Multi-instance
	// commits account to the lead (first) instance.
	CommitNs obs.Histogram

	// ReadOnlyNs is the same distribution for the read-only entry points
	// (AtomicallyRead and friends).
	ReadOnlyNs obs.Histogram

	// Attempts is the distribution of attempts consumed per sampled
	// committed transaction (1 = first try committed).
	Attempts obs.Histogram

	// ParkNs is the distribution of park durations (ns) in the
	// commit-notification subsystem — how long blocked and conflicted
	// transactions actually slept. Recorded for every park.
	ParkNs obs.Histogram

	// Contention attributes conflicts to the variable they lost to, by
	// variable id: a read or lock attempt that found the variable locked,
	// too new, or changed at validation records the loser here. Map ids
	// back to names at snapshot time (internal/kv resolves them to keys;
	// Var.ID exposes the id).
	Contention obs.HotTable
}

// Reset zeroes every distribution and the contention table. Cumulative
// Stats counters are not touched; Reset is for re-baselining latency
// profiles between experiments.
func (m *Metrics) Reset() {
	m.CommitNs.Reset()
	m.ReadOnlyNs.Reset()
	m.Attempts.Reset()
	m.ParkNs.Reset()
	m.Contention.Reset()
}

// Metrics returns the instance's metrics, or nil when disabled with
// WithMetrics(false). The pointer is stable for the instance's lifetime.
func (s *STM) Metrics() *Metrics { return s.metrics }

// ID returns the variable's stable id within its instance — the key of
// the contention-attribution table (see Metrics.Contention). Promoted to
// Var and TVar[T] through embedding.
func (vb *varBase) ID() uint64 { return vb.id }

// noteContention attributes one conflict observation to vb in its
// owner's contention table. Called on the conflict paths only (read
// sampling, lock acquisition, validation), never on conflict-free
// commits; a nil-metrics instance pays one load and a branch.
func noteContention(vb *varBase) {
	if m := vb.owner.metrics; m != nil {
		m.Contention.Record(vb.id)
	}
}

// nextSample advances the pooled handle's sampling tick and reports
// whether this transaction should carry a latency timestamp. The tick
// survives pool round-trips (reset does not clear it), so each pooled Tx
// contributes an even 1-in-N stream without any shared atomic on the
// transaction fast path.
func (tx *Tx) nextSample() bool {
	tx.mTick++
	return tx.mTick&tx.s.sampleMask == 0
}
