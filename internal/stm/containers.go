package stm

import (
	"context"
	"fmt"
	"hash/maphash"
)

// Transactional containers built on the Var/TVar primitives, demonstrating
// the composability that motivates STM (§7: "Transactions are motivated by
// the issues that arise with lock-based programming"). All operations run
// inside caller-supplied or self-managed transactions and compose with
// arbitrary other transactional state.

// Queue is a bounded transactional FIFO of T.
type Queue[T any] struct {
	s          *STM
	buf        []*TVar[T]
	head, tail *Var // indices modulo len(buf)
	size       *Var
}

// NewQueue creates a bounded transactional queue. (A free function because
// Go methods cannot introduce type parameters.)
func NewQueue[T any](s *STM, name string, capacity int) *Queue[T] {
	if capacity <= 0 {
		panic("stm: queue capacity must be positive")
	}
	q := &Queue[T]{
		s:    s,
		buf:  make([]*TVar[T], capacity),
		head: s.NewVar(name+".head", 0),
		tail: s.NewVar(name+".tail", 0),
		size: s.NewVar(name+".size", 0),
	}
	var zero T
	for i := range q.buf {
		q.buf[i] = NewTVar(s, fmt.Sprintf("%s.buf[%d]", name, i), zero)
	}
	return q
}

// EnqueueTx appends v inside an existing transaction; reports false when
// the queue is full.
func (q *Queue[T]) EnqueueTx(tx *Tx, v T) bool {
	n := tx.Read(q.size)
	if int(n) == len(q.buf) {
		return false
	}
	t := tx.Read(q.tail)
	WriteT(tx, q.buf[t], v)
	tx.Write(q.tail, (t+1)%int64(len(q.buf)))
	tx.Write(q.size, n+1)
	return true
}

// DequeueTx removes the head inside an existing transaction; ok is false
// when the queue is empty.
func (q *Queue[T]) DequeueTx(tx *Tx) (v T, ok bool) {
	n := tx.Read(q.size)
	if n == 0 {
		return v, false
	}
	h := tx.Read(q.head)
	v = ReadT(tx, q.buf[h])
	var zero T
	WriteT(tx, q.buf[h], zero) // clear the slot so dequeued values are GC-able
	tx.Write(q.head, (h+1)%int64(len(q.buf)))
	tx.Write(q.size, n-1)
	return v, true
}

// Enqueue runs EnqueueTx in its own transaction.
func (q *Queue[T]) Enqueue(v T) (ok bool, err error) {
	err = q.s.Atomically(func(tx *Tx) error {
		ok = q.EnqueueTx(tx, v)
		return nil
	})
	return ok, err
}

// Dequeue runs DequeueTx in its own transaction.
func (q *Queue[T]) Dequeue() (v T, ok bool, err error) {
	err = q.s.Atomically(func(tx *Tx) error {
		v, ok = q.DequeueTx(tx)
		return nil
	})
	return v, ok, err
}

// PopWait dequeues the head, blocking while the queue is empty: the
// transaction parks on the queue's state (see Tx.Block) and is woken by
// the commit that enqueues — no polling, no lost wakeups, no CPU while
// parked. Cancel the wait through ctx; cancellation (or deadline)
// surfaces as a *TxError wrapping ErrCanceled. Multiple concurrent
// PopWaits race fairly for elements: each enqueue wakes the parked
// consumers and exactly one of them dequeues the element (the others
// re-park).
func (q *Queue[T]) PopWait(ctx context.Context) (T, error) {
	var out T
	err := q.s.AtomicallyCtx(ctx, func(tx *Tx) error {
		v, ok := q.DequeueTx(tx)
		if !ok {
			tx.Block()
		}
		out = v
		return nil
	})
	return out, err
}

// PushWait enqueues v, blocking while the queue is full — the blocking
// dual of PopWait, woken by the commit that dequeues.
func (q *Queue[T]) PushWait(ctx context.Context, v T) error {
	return q.s.AtomicallyCtx(ctx, func(tx *Tx) error {
		if !q.EnqueueTx(tx, v) {
			tx.Block()
		}
		return nil
	})
}

// Len returns the current size (its own read-only transaction).
func (q *Queue[T]) Len() (int, error) {
	var n int64
	err := q.s.Atomically(func(tx *Tx) error {
		n = tx.Read(q.size)
		return nil
	})
	return int(n), err
}

// Map is a transactional hash map with a fixed bucket count. Buckets are
// copy-on-write slices behind TVars, so operations on one bucket conflict
// only with writers of the same bucket (there is deliberately no shared
// element counter — Len sums the buckets instead), and the whole map
// composes with arbitrary other transactional state.
type Map[K comparable, V any] struct {
	s       *STM
	seed    maphash.Seed
	mask    uint64
	buckets []*TVar[[]mapPair[K, V]]
}

type mapPair[K comparable, V any] struct {
	k K
	v V
}

// NewMap creates a transactional map with the given bucket count (rounded
// up to a power of two; 0 means 16). The bucket count is fixed: sizing it
// near the expected element count keeps operations O(1).
func NewMap[K comparable, V any](s *STM, name string, buckets int) *Map[K, V] {
	if buckets <= 0 {
		buckets = 16
	}
	p := 1
	for p < buckets {
		p <<= 1
	}
	m := &Map[K, V]{
		s:       s,
		seed:    maphash.MakeSeed(),
		mask:    uint64(p - 1),
		buckets: make([]*TVar[[]mapPair[K, V]], p),
	}
	for i := range m.buckets {
		m.buckets[i] = NewTVar(s, fmt.Sprintf("%s.bucket[%d]", name, i), []mapPair[K, V](nil))
	}
	return m
}

func (m *Map[K, V]) bucket(k K) *TVar[[]mapPair[K, V]] {
	return m.buckets[maphash.Comparable(m.seed, k)&m.mask]
}

// GetTx looks up k inside an existing transaction.
func (m *Map[K, V]) GetTx(tx *Tx, k K) (V, bool) {
	for _, p := range ReadT(tx, m.bucket(k)) {
		if p.k == k {
			return p.v, true
		}
	}
	var zero V
	return zero, false
}

// PutTx inserts or replaces k inside an existing transaction. The bucket
// slice is copied, never mutated, so committed boxes stay immutable.
func (m *Map[K, V]) PutTx(tx *Tx, k K, v V) {
	b := m.bucket(k)
	old := ReadT(tx, b)
	next := make([]mapPair[K, V], 0, len(old)+1)
	replaced := false
	for _, p := range old {
		if p.k == k {
			p.v = v
			replaced = true
		}
		next = append(next, p)
	}
	if !replaced {
		next = append(next, mapPair[K, V]{k: k, v: v})
	}
	WriteT(tx, b, next)
}

// DeleteTx removes k inside an existing transaction; reports whether the
// key was present.
func (m *Map[K, V]) DeleteTx(tx *Tx, k K) bool {
	b := m.bucket(k)
	old := ReadT(tx, b)
	for i, p := range old {
		if p.k == k {
			next := make([]mapPair[K, V], 0, len(old)-1)
			next = append(next, old[:i]...)
			next = append(next, old[i+1:]...)
			WriteT(tx, b, next)
			return true
		}
	}
	return false
}

// Get runs GetTx in its own transaction.
func (m *Map[K, V]) Get(k K) (v V, ok bool, err error) {
	err = m.s.Atomically(func(tx *Tx) error {
		v, ok = m.GetTx(tx, k)
		return nil
	})
	return v, ok, err
}

// Put runs PutTx in its own transaction.
func (m *Map[K, V]) Put(k K, v V) error {
	return m.s.Atomically(func(tx *Tx) error {
		m.PutTx(tx, k, v)
		return nil
	})
}

// Delete runs DeleteTx in its own transaction.
func (m *Map[K, V]) Delete(k K) (ok bool, err error) {
	err = m.s.Atomically(func(tx *Tx) error {
		ok = m.DeleteTx(tx, k)
		return nil
	})
	return ok, err
}

// LenTx returns the element count inside an existing transaction by
// summing bucket lengths: O(buckets), but keeps disjoint-bucket writes
// conflict-free (a shared counter would serialize every insert/delete).
func (m *Map[K, V]) LenTx(tx *Tx) int {
	n := 0
	for _, b := range m.buckets {
		n += len(ReadT(tx, b))
	}
	return n
}

// Len runs LenTx in its own read-only transaction.
func (m *Map[K, V]) Len() (int, error) {
	var n int
	err := m.s.Atomically(func(tx *Tx) error {
		n = m.LenTx(tx)
		return nil
	})
	return n, err
}

// Set is a fixed-capacity transactional hash set of int64 with open
// addressing, kept on the int64 specialization. Capacity is fixed at
// creation; Add reports false when full.
type Set struct {
	s     *STM
	slots []*Var // 0 = empty; values are stored biased by +1
	count *Var
}

// NewSet creates a transactional set with the given slot capacity.
func (s *STM) NewSet(name string, capacity int) *Set {
	if capacity <= 0 {
		panic("stm: set capacity must be positive")
	}
	set := &Set{s: s, slots: make([]*Var, capacity), count: s.NewVar(name+".count", 0)}
	for i := range set.slots {
		set.slots[i] = s.NewVar(fmt.Sprintf("%s.slot[%d]", name, i), 0)
	}
	return set
}

func (s *Set) probe(v int64) int {
	h := uint64(v*2654435761) % uint64(len(s.slots))
	return int(h)
}

// AddTx inserts v (must be non-negative) inside a transaction; returns
// false if the set is full. Idempotent for present values.
func (s *Set) AddTx(tx *Tx, v int64) bool {
	key := v + 1
	i := s.probe(v)
	for n := 0; n < len(s.slots); n++ {
		cur := tx.Read(s.slots[i])
		if cur == key {
			return true
		}
		if cur == 0 {
			tx.Write(s.slots[i], key)
			tx.Write(s.count, tx.Read(s.count)+1)
			return true
		}
		i = (i + 1) % len(s.slots)
	}
	return false
}

// ContainsTx reports membership inside a transaction.
func (s *Set) ContainsTx(tx *Tx, v int64) bool {
	key := v + 1
	i := s.probe(v)
	for n := 0; n < len(s.slots); n++ {
		cur := tx.Read(s.slots[i])
		if cur == key {
			return true
		}
		if cur == 0 {
			return false
		}
		i = (i + 1) % len(s.slots)
	}
	return false
}

// Add runs AddTx in its own transaction.
func (s *Set) Add(v int64) (ok bool, err error) {
	err = s.s.Atomically(func(tx *Tx) error {
		ok = s.AddTx(tx, v)
		return nil
	})
	return ok, err
}

// Contains runs ContainsTx in its own transaction.
func (s *Set) Contains(v int64) (ok bool, err error) {
	err = s.s.Atomically(func(tx *Tx) error {
		ok = s.ContainsTx(tx, v)
		return nil
	})
	return ok, err
}

// Size returns the element count.
func (s *Set) Size() (int, error) {
	var n int64
	err := s.s.Atomically(func(tx *Tx) error {
		n = tx.Read(s.count)
		return nil
	})
	return int(n), err
}
