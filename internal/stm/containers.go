package stm

// Transactional containers built on the Var primitive, demonstrating the
// composability that motivates STM (§7: "Transactions are motivated by the
// issues that arise with lock-based programming"). All operations run
// inside caller-supplied or self-managed transactions and compose with
// arbitrary other transactional state.

// Queue is a bounded transactional FIFO of int64.
type Queue struct {
	s          *STM
	buf        []*Var
	head, tail *Var // indices modulo len(buf)
	size       *Var
}

// NewQueue creates a bounded transactional queue.
func (s *STM) NewQueue(name string, capacity int) *Queue {
	if capacity <= 0 {
		panic("stm: queue capacity must be positive")
	}
	q := &Queue{
		s:    s,
		buf:  make([]*Var, capacity),
		head: s.NewVar(name+".head", 0),
		tail: s.NewVar(name+".tail", 0),
		size: s.NewVar(name+".size", 0),
	}
	for i := range q.buf {
		q.buf[i] = s.NewVar(name+".buf", 0)
	}
	return q
}

// EnqueueTx appends v inside an existing transaction; reports false when
// the queue is full.
func (q *Queue) EnqueueTx(tx *Tx, v int64) bool {
	n := tx.Read(q.size)
	if int(n) == len(q.buf) {
		return false
	}
	t := tx.Read(q.tail)
	tx.Write(q.buf[t], v)
	tx.Write(q.tail, (t+1)%int64(len(q.buf)))
	tx.Write(q.size, n+1)
	return true
}

// DequeueTx removes the head inside an existing transaction; ok is false
// when the queue is empty.
func (q *Queue) DequeueTx(tx *Tx) (v int64, ok bool) {
	n := tx.Read(q.size)
	if n == 0 {
		return 0, false
	}
	h := tx.Read(q.head)
	v = tx.Read(q.buf[h])
	tx.Write(q.head, (h+1)%int64(len(q.buf)))
	tx.Write(q.size, n-1)
	return v, true
}

// Enqueue runs EnqueueTx in its own transaction.
func (q *Queue) Enqueue(v int64) (ok bool, err error) {
	err = q.s.Atomically(func(tx *Tx) error {
		ok = q.EnqueueTx(tx, v)
		return nil
	})
	return ok, err
}

// Dequeue runs DequeueTx in its own transaction.
func (q *Queue) Dequeue() (v int64, ok bool, err error) {
	err = q.s.Atomically(func(tx *Tx) error {
		v, ok = q.DequeueTx(tx)
		return nil
	})
	return v, ok, err
}

// Len returns the current size (its own read-only transaction).
func (q *Queue) Len() (int, error) {
	var n int64
	err := q.s.Atomically(func(tx *Tx) error {
		n = tx.Read(q.size)
		return nil
	})
	return int(n), err
}

// Set is a fixed-capacity transactional hash set of int64 with open
// addressing. Capacity is fixed at creation; Add reports false when full.
type Set struct {
	s     *STM
	slots []*Var // 0 = empty; values are stored biased by +1
	count *Var
}

// NewSet creates a transactional set with the given slot capacity.
func (s *STM) NewSet(name string, capacity int) *Set {
	if capacity <= 0 {
		panic("stm: set capacity must be positive")
	}
	set := &Set{s: s, slots: make([]*Var, capacity), count: s.NewVar(name+".count", 0)}
	for i := range set.slots {
		set.slots[i] = s.NewVar(name+".slot", 0)
	}
	return set
}

func (s *Set) probe(v int64) int {
	h := uint64(v*2654435761) % uint64(len(s.slots))
	return int(h)
}

// AddTx inserts v (must be non-negative) inside a transaction; returns
// false if the set is full. Idempotent for present values.
func (s *Set) AddTx(tx *Tx, v int64) bool {
	key := v + 1
	i := s.probe(v)
	for n := 0; n < len(s.slots); n++ {
		cur := tx.Read(s.slots[i])
		if cur == key {
			return true
		}
		if cur == 0 {
			tx.Write(s.slots[i], key)
			tx.Write(s.count, tx.Read(s.count)+1)
			return true
		}
		i = (i + 1) % len(s.slots)
	}
	return false
}

// ContainsTx reports membership inside a transaction.
func (s *Set) ContainsTx(tx *Tx, v int64) bool {
	key := v + 1
	i := s.probe(v)
	for n := 0; n < len(s.slots); n++ {
		cur := tx.Read(s.slots[i])
		if cur == key {
			return true
		}
		if cur == 0 {
			return false
		}
		i = (i + 1) % len(s.slots)
	}
	return false
}

// Add runs AddTx in its own transaction.
func (s *Set) Add(v int64) (ok bool, err error) {
	err = s.s.Atomically(func(tx *Tx) error {
		ok = s.AddTx(tx, v)
		return nil
	})
	return ok, err
}

// Contains runs ContainsTx in its own transaction.
func (s *Set) Contains(v int64) (ok bool, err error) {
	err = s.s.Atomically(func(tx *Tx) error {
		ok = s.ContainsTx(tx, v)
		return nil
	})
	return ok, err
}

// Size returns the element count.
func (s *Set) Size() (int, error) {
	var n int64
	err := s.s.Atomically(func(tx *Tx) error {
		n = tx.Read(s.count)
		return nil
	})
	return int(n), err
}
