package stm

import (
	"fmt"
	"testing"
	"time"
)

// The zero-allocation contract of the hot path: once the pooled Tx has
// grown its attempt-state slices, steady-state transactions allocate
// nothing — on every engine, for both the read-write and the read-only
// entry points. testing.AllocsPerRun truncates toward zero over 100
// runs, so a rare GC-emptied pool refill does not flake the guard while
// a real per-op allocation (1/op = 100 over the window) fails it.

// TestAllocsAtomicallySingleVar: the steady-state single-var
// read-modify-write transaction performs no heap allocation.
func TestAllocsAtomicallySingleVar(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	for _, e := range engines {
		t.Run(e.String(), func(t *testing.T) {
			s := New(WithEngine(e))
			v := s.NewVar("v", 0)
			body := func(tx *Tx) error {
				tx.Write(v, tx.Read(v)+1)
				return nil
			}
			for i := 0; i < 32; i++ { // grow the pooled capacity
				if err := s.Atomically(body); err != nil {
					t.Fatal(err)
				}
			}
			avg := testing.AllocsPerRun(100, func() {
				if err := s.Atomically(body); err != nil {
					t.Fatal(err)
				}
			})
			if avg != 0 {
				t.Errorf("Atomically single-var: %v allocs/op, want 0", avg)
			}
		})
	}
}

// TestAllocsAtomicallyRead: the steady-state read-only transaction (a
// 4-var snapshot sum) performs no heap allocation — with a read set on
// the validating engines, without one on tl2.
func TestAllocsAtomicallyRead(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	for _, e := range engines {
		t.Run(e.String(), func(t *testing.T) {
			s := New(WithEngine(e))
			vars := make([]*Var, 4)
			for i := range vars {
				vars[i] = s.NewVar(fmt.Sprintf("v%d", i), int64(i))
			}
			var sink int64
			body := func(r *ReadTx) error {
				var sum int64
				for _, v := range vars {
					sum += r.Read(v)
				}
				sink = sum
				return nil
			}
			for i := 0; i < 32; i++ {
				if err := s.AtomicallyRead(body); err != nil {
					t.Fatal(err)
				}
			}
			avg := testing.AllocsPerRun(100, func() {
				if err := s.AtomicallyRead(body); err != nil {
					t.Fatal(err)
				}
			})
			if avg != 0 {
				t.Errorf("AtomicallyRead: %v allocs/op, want 0 (sink=%d)", avg, sink)
			}
		})
	}
}

// TestAllocsMixedModeLoadStore: plain Load/Store never allocated; pin it
// so the mixed-mode lane stays at native atomic cost.
func TestAllocsMixedModeLoadStore(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	s := New()
	v := s.NewVar("v", 1)
	var sink int64
	avg := testing.AllocsPerRun(100, func() {
		v.Store(sink)
		sink += v.Load()
	})
	if avg != 0 {
		t.Errorf("plain Load/Store: %v allocs/op, want 0", avg)
	}
}

// TestAllocsCommitWithParkedWaiter: the commit-notification hook keeps
// the non-blocking fast path allocation-free even when the waiter table
// is active — including the worst case, a parked waiter hashed into the
// same bucket as the committed variable (the notify scan and channel
// signal allocate nothing).
func TestAllocsCommitWithParkedWaiter(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	for _, e := range engines {
		t.Run(e.String(), func(t *testing.T) {
			s := New(WithEngine(e))
			parkedVar := s.NewVar("parked", 0) // id 1
			var hot *Var
			for i := 0; ; i++ {
				v := s.NewVar(fmt.Sprintf("v%d", i), 0)
				if v.id != parkedVar.id && v.id%waitBuckets == parkedVar.id%waitBuckets {
					hot = v // same bucket as the parked waiter, different id
					break
				}
			}
			parked := make(chan error, 1)
			go func() {
				parked <- s.Atomically(func(tx *Tx) error {
					if tx.Read(parkedVar) == 0 {
						tx.Block()
					}
					return nil
				})
			}()
			deadline := time.Now().Add(10 * time.Second)
			for s.Snapshot().Waits == 0 {
				if time.Now().After(deadline) {
					t.Fatal("waiter never parked")
				}
				time.Sleep(time.Millisecond)
			}
			body := func(tx *Tx) error {
				tx.Write(hot, tx.Read(hot)+1)
				return nil
			}
			for i := 0; i < 32; i++ {
				if err := s.Atomically(body); err != nil {
					t.Fatal(err)
				}
			}
			avg := testing.AllocsPerRun(100, func() {
				if err := s.Atomically(body); err != nil {
					t.Fatal(err)
				}
			})
			if avg != 0 {
				t.Errorf("commit with parked waiter: %v allocs/op, want 0", avg)
			}
			if err := s.Atomically(func(tx *Tx) error { tx.Write(parkedVar, 1); return nil }); err != nil {
				t.Fatal(err)
			}
			if err := <-parked; err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAllocsAtomicallyInstrumented: the zero-allocation contract holds
// with metrics fully on and every transaction sampled — the histogram
// write side, the sampling tick and the timestamps live on the stack or
// in fixed atomics, so observability costs time (nanoseconds), never
// garbage.
func TestAllocsAtomicallyInstrumented(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	for _, e := range engines {
		t.Run(e.String(), func(t *testing.T) {
			s := New(WithEngine(e), WithMetricsSampling(1))
			v := s.NewVar("v", 0)
			body := func(tx *Tx) error {
				tx.Write(v, tx.Read(v)+1)
				return nil
			}
			rbody := func(r *ReadTx) error {
				_ = r.Read(v)
				return nil
			}
			for i := 0; i < 32; i++ {
				if err := s.Atomically(body); err != nil {
					t.Fatal(err)
				}
				if err := s.AtomicallyRead(rbody); err != nil {
					t.Fatal(err)
				}
			}
			if avg := testing.AllocsPerRun(100, func() {
				if err := s.Atomically(body); err != nil {
					t.Fatal(err)
				}
			}); avg != 0 {
				t.Errorf("instrumented Atomically: %v allocs/op, want 0", avg)
			}
			if avg := testing.AllocsPerRun(100, func() {
				if err := s.AtomicallyRead(rbody); err != nil {
					t.Fatal(err)
				}
			}); avg != 0 {
				t.Errorf("instrumented AtomicallyRead: %v allocs/op, want 0", avg)
			}
			if got := s.Metrics().CommitNs.Snapshot().Count; got == 0 {
				t.Error("sampling=1 should have recorded every commit")
			}
		})
	}
}

// TestAllocsLargeWriteSetSpills sanity-checks the spill path: a
// transaction writing far more than writeSetSpill vars still commits
// correctly (the map index takes over) — allocation-freedom is only
// promised for the small-footprint steady state.
func TestAllocsLargeWriteSetSpills(t *testing.T) {
	for _, e := range engines {
		t.Run(e.String(), func(t *testing.T) {
			s := New(WithEngine(e))
			vars := make([]*Var, 3*writeSetSpill)
			for i := range vars {
				vars[i] = s.NewVar(fmt.Sprintf("v%d", i), 0)
			}
			err := s.Atomically(func(tx *Tx) error {
				for pass := 0; pass < 2; pass++ { // second pass overwrites via lookup
					for i, v := range vars {
						tx.Write(v, int64(pass*1000+i))
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range vars {
				if got := v.Load(); got != int64(1000+i) {
					t.Fatalf("var %d = %d, want %d", i, got, 1000+i)
				}
			}
		})
	}
}
