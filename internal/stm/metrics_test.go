package stm

import (
	"encoding/json"
	"testing"
)

// newSampledSTM builds an instance that samples every transaction, so
// metric assertions are deterministic.
func newSampledSTM(e Engine) *STM {
	return New(WithEngine(e), WithMetricsSampling(1))
}

func TestMetricsDisabled(t *testing.T) {
	s := New(WithMetrics(false))
	if s.Metrics() != nil {
		t.Fatal("WithMetrics(false) should yield a nil Metrics")
	}
	v := s.NewVar("x", 0)
	if err := s.Atomically(func(tx *Tx) error {
		tx.Write(v, tx.Read(v)+1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if v.Load() != 1 {
		t.Fatal("transaction did not commit")
	}
}

func TestMetricsCommitLatencySampled(t *testing.T) {
	for _, e := range Engines() {
		t.Run(e.String(), func(t *testing.T) {
			s := newSampledSTM(e)
			v := s.NewVar("x", 0)
			const n = 50
			for i := 0; i < n; i++ {
				if err := s.Atomically(func(tx *Tx) error {
					tx.Write(v, tx.Read(v)+1)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
			}
			m := s.Metrics()
			if m == nil {
				t.Fatal("metrics should default on")
			}
			cs := m.CommitNs.Snapshot()
			if cs.Count != n {
				t.Fatalf("CommitNs count = %d, want %d (sampling=1)", cs.Count, n)
			}
			if cs.Quantile(0.5) <= 0 {
				t.Fatal("commit latency p50 must be positive")
			}
			as := m.Attempts.Snapshot()
			if as.Count != n {
				t.Fatalf("Attempts count = %d, want %d", as.Count, n)
			}
			if got := as.Quantile(1.0); got < 1 {
				t.Fatalf("max attempts = %d, want >= 1", got)
			}
		})
	}
}

func TestMetricsReadOnlyLatencySampled(t *testing.T) {
	for _, e := range Engines() {
		t.Run(e.String(), func(t *testing.T) {
			s := newSampledSTM(e)
			v := s.NewVar("x", 7)
			const n = 20
			for i := 0; i < n; i++ {
				if err := s.AtomicallyRead(func(r *ReadTx) error {
					if r.Read(v) != 7 {
						t.Error("wrong value")
					}
					return nil
				}); err != nil {
					t.Fatal(err)
				}
			}
			ro := s.Metrics().ReadOnlyNs.Snapshot()
			if ro.Count != n {
				t.Fatalf("ReadOnlyNs count = %d, want %d", ro.Count, n)
			}
			if cs := s.Metrics().CommitNs.Snapshot(); cs.Count != 0 {
				t.Fatalf("read-only commits must not land in CommitNs (count=%d)", cs.Count)
			}
		})
	}
}

func TestMetricsDefaultSamplingPeriod(t *testing.T) {
	if raceEnabled {
		// The race detector makes sync.Pool drop items at random, so the
		// pooled sampling tick never accumulates deterministically.
		t.Skip("pool recycling is nondeterministic under -race")
	}
	s := New() // default 1-in-256
	v := s.NewVar("x", 0)
	const n = 256 * 4
	for i := 0; i < n; i++ {
		if err := s.Atomically(func(tx *Tx) error {
			tx.Write(v, tx.Read(v)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	cs := s.Metrics().CommitNs.Snapshot()
	// Single-goroutine use recycles one pooled Tx, so the tick stream is
	// exact: one sample per 256 calls.
	if cs.Count != n/256 {
		t.Fatalf("CommitNs count = %d, want %d", cs.Count, n/256)
	}
}

// TestMetricsContentionAttribution pins conflict attribution
// deterministically: a variable whose lock bit is held (as an in-flight
// commit would hold it) makes every attempt that reads it conflict, and
// each conflict must be charged to that variable — not to the cold
// sibling the transaction also read.
func TestMetricsContentionAttribution(t *testing.T) {
	for _, e := range Engines() {
		t.Run(e.String(), func(t *testing.T) {
			if e == GlobalLock {
				// The global mutex serializes attempts before they touch
				// variables; conflicts cannot be attributed per var.
				t.Skip("global-lock conflicts are instance-level")
			}
			const retries = 3
			s := New(WithEngine(e), WithMetricsSampling(1), WithMaxRetries(retries))
			hot := s.NewVar("hot", 0)
			cold := s.NewVar("cold", 0)
			m := hot.meta.Load()
			hot.meta.Store(m | lockedBit) // simulate a commit in flight on hot
			err := s.Atomically(func(tx *Tx) error {
				_ = tx.Read(cold)
				tx.Write(hot, tx.Read(hot)+1)
				return nil
			})
			hot.meta.Store(m)
			if err == nil {
				t.Fatal("a transaction against a locked variable should exhaust its retries")
			}
			if got := s.Snapshot().Conflicts; got != retries {
				t.Fatalf("conflicts = %d, want %d", got, retries)
			}
			snap := s.Metrics().Contention.Snapshot()
			if len(snap) != 1 {
				t.Fatalf("contention table = %+v, want exactly the hot var", snap)
			}
			if snap[0].ID != hot.ID() {
				t.Fatalf("hottest id = %d, want %d (hot var)", snap[0].ID, hot.ID())
			}
			if snap[0].Count != retries {
				t.Fatalf("hot count = %d, want %d (one per conflicted attempt)", snap[0].Count, retries)
			}
		})
	}
}

func TestMetricsParkDuration(t *testing.T) {
	s := newSampledSTM(Lazy)
	v := s.NewVar("gate", 0)
	done := make(chan error, 1)
	go func() {
		done <- s.Atomically(func(tx *Tx) error {
			if tx.Read(v) == 0 {
				tx.Block()
			}
			return nil
		})
	}()
	waitForParks(t, s, 1)
	if err := s.Atomically(func(tx *Tx) error {
		tx.Write(v, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	ps := s.Metrics().ParkNs.Snapshot()
	if ps.Count == 0 {
		t.Fatal("a real park must land in ParkNs")
	}
	if ps.Quantile(1.0) <= 0 {
		t.Fatal("park duration must be positive")
	}
}

func TestMetricsReset(t *testing.T) {
	s := newSampledSTM(Lazy)
	v := s.NewVar("x", 0)
	for i := 0; i < 10; i++ {
		_ = s.Atomically(func(tx *Tx) error { tx.Write(v, 1); return nil })
	}
	m := s.Metrics()
	m.Contention.Record(v.ID())
	m.ParkNs.Observe(100)
	m.Reset()
	if m.CommitNs.Snapshot().Count != 0 || m.Attempts.Snapshot().Count != 0 ||
		m.ParkNs.Snapshot().Count != 0 || len(m.Contention.Snapshot()) != 0 {
		t.Fatal("Reset left residue")
	}
	// Cumulative stats survive a metrics reset.
	if s.Snapshot().Commits != 10 {
		t.Fatal("Reset must not clear Stats")
	}
}

func TestMetricsMultiAccountsToLead(t *testing.T) {
	a := newSampledSTM(Lazy)
	b := newSampledSTM(TL2)
	va, vb := a.NewVar("a", 0), b.NewVar("b", 0)
	const n = 10
	for i := 0; i < n; i++ {
		if err := AtomicallyMulti([]*STM{a, b}, func(txs []*Tx) error {
			txs[0].Write(va, txs[0].Read(va)+1)
			txs[1].Write(vb, txs[1].Read(vb)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := AtomicallyReadMulti([]*STM{a, b}, func(rtxs []*ReadTx) error {
			_ = rtxs[0].Read(va)
			_ = rtxs[1].Read(vb)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Metrics().CommitNs.Snapshot().Count; got != n {
		t.Fatalf("lead CommitNs count = %d, want %d", got, n)
	}
	if got := a.Metrics().ReadOnlyNs.Snapshot().Count; got != n {
		t.Fatalf("lead ReadOnlyNs count = %d, want %d", got, n)
	}
	if got := b.Metrics().CommitNs.Snapshot().Count; got != 0 {
		t.Fatalf("non-lead CommitNs count = %d, want 0", got)
	}
}

func TestVarID(t *testing.T) {
	s := New()
	v1 := s.NewVar("a", 0)
	v2 := s.NewVar("b", 0)
	tv := NewTVar(s, "c", "hello")
	if v1.ID() == 0 || v2.ID() == 0 || tv.ID() == 0 {
		t.Fatal("ids must be nonzero (0 is the hot table's free slot)")
	}
	if v1.ID() == v2.ID() || v2.ID() == tv.ID() {
		t.Fatal("ids must be distinct")
	}
}

func TestStatsSnapshotJSONStable(t *testing.T) {
	snap := StatsSnapshot{
		Commits:         1,
		Conflicts:       2,
		UserAborts:      3,
		MultiCommits:    4,
		ReadOnlyCommits: 5,
		Quiesces:        6,
		Waits:           7,
		Wakeups:         8,
		SpuriousWakeups: 9,
	}
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	// The wire field names are a stable format; this test pins them.
	want := `{"commits":1,"conflicts":2,"user_aborts":3,"multi_commits":4,` +
		`"read_only_commits":5,"quiesces":6,"waits":7,"wakeups":8,"spurious_wakeups":9}`
	if string(b) != want {
		t.Fatalf("wire format changed:\n got %s\nwant %s", b, want)
	}
	var back StatsSnapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != snap {
		t.Fatalf("round trip changed snapshot: %+v", back)
	}
}
