package stm

import (
	"context"
	"time"
)

// ReadTx is the handle passed to AtomicallyRead bodies: a transaction
// that can only read, never write. Because the body provably has an
// empty write set, the commit never takes write locks on any engine, and
// on the TL2 snapshot engine the reads are invisible — no read set is
// kept and commit is O(1) with no validation (each read validates
// against the begin-time snapshot as it happens, which makes the whole
// transaction consistent as of that snapshot).
//
// Like Tx it must not escape the body or be used concurrently.
type ReadTx struct {
	tx *Tx
}

// Read returns the transactional value of v (int64 lane).
func (r *ReadTx) Read(v *Var) int64 { return r.tx.Read(v) }

// Retry aborts the current attempt and re-runs the transaction from the
// beginning (counted as a conflict); see Tx.Retry.
func (r *ReadTx) Retry() { r.tx.Retry() }

// Block parks the read-only transaction until a variable it has read is
// changed by another commit; see Tx.Block. On engines with invisible
// read-only reads (tl2) the first Block of a call re-runs the body once
// with the read set forced on, so the park registers a real footprint.
func (r *ReadTx) Block() { r.tx.Block() }

// ReadTVar returns the transactional value of a typed variable inside a
// read-only transaction — the ReadTx twin of ReadT.
func ReadTVar[T any](r *ReadTx, v *TVar[T]) T {
	return *r.tx.readBoxed(v).(*T)
}

// AtomicallyRead runs fn as a read-only transaction, retrying on
// conflicts until it commits or the retry budget is exhausted — the same
// contract as Atomically, specialized to bodies that never write. It
// never takes write locks; on the TL2 engine it additionally keeps no
// read set and commits without validation. Errors returned by fn roll
// back (vacuously) and are returned verbatim.
func (s *STM) AtomicallyRead(fn func(*ReadTx) error) error {
	return s.atomicallyRead(nil, fn)
}

// AtomicallyReadCtx is AtomicallyRead honoring ctx between retry
// attempts, with the same contract as AtomicallyCtx.
func (s *STM) AtomicallyReadCtx(ctx context.Context, fn func(*ReadTx) error) error {
	return s.atomicallyRead(ctx, fn)
}

func (s *STM) atomicallyRead(ctx context.Context, fn func(*ReadTx) error) error {
	conflicts, parks := 0, 0
	blockNeedsReadSet := false
	m := s.metrics
	var t0 time.Time
	sampled, first := false, true
	for attempt := 0; attempt < s.maxRetries; {
		if err := ctxErr(ctx); err != nil {
			return s.txError("atomically-read", attempt, conflicts, ErrCanceled, err)
		}
		tx := s.begin()
		if first {
			first = false
			if m != nil && tx.nextSample() {
				sampled = true
				t0 = time.Now()
			}
		}
		tx.readOnly = true
		tx.noReadSet = tx.e.invisibleReadOnly(tx) && !blockNeedsReadSet
		err, st := tx.runReadBody(fn)
		switch {
		case st == txBlocked:
			if tx.noReadSet && tx.nreads > 0 {
				// Invisible reads left nothing to park on: re-run once
				// with the read set forced on so the park is precise.
				blockNeedsReadSet = true
				tx.abortAttempt()
				continue
			}
			w := s.newWaiter()
			w.captureTx(tx)
			tx.abortAttempt()
			s.parkBlocked(ctx, w, parks)
			parks++
			continue
		case st == txConflicted:
			attempt = s.conflictedAttempt(ctx, tx, attempt)
			conflicts++
			continue
		case err != nil:
			tx.abortAttempt()
			s.stats.UserAborts.Add(1)
			return err
		}
		// The write set is empty by construction, so prepare degenerates
		// to read validation (or to a constant on engines whose read-only
		// fast path needs none).
		if tx.prepare() {
			tx.commitPrepared()
			tx.finishTx()
			s.stats.Commits.Add(1)
			s.stats.ReadOnlyCommits.Add(1)
			if sampled {
				m.ReadOnlyNs.Observe(time.Since(t0).Nanoseconds())
				m.Attempts.Observe(int64(conflicts) + 1)
			}
			return nil
		}
		attempt = s.conflictedAttempt(ctx, tx, attempt)
		conflicts++
	}
	return s.txError("atomically-read", s.maxRetries, conflicts, ErrMaxRetries, nil)
}

// AtomicallyReadMulti runs fn as one read-only transaction spanning
// several STM instances, passing it per-instance read handles aligned
// with stms. Unlike AtomicallyMulti it takes no locks at all at commit:
// after the body runs, every instance's read set is validated against
// its begin-time snapshot, and if all pass the combined snapshot is
// consistent.
//
// Soundness of the lock-free validation: for each instance i, rv_i was
// the clock at some time s_i before any of i's reads, and validation at
// time t_i (after the body) finds every read location's version still
// ≤ rv_i and unlocked — so none of i's locations took a committed write
// in [s_i, t_i]. All these intervals contain the window from the last
// begin to the first validation, which is nonempty; every value read was
// therefore the logical value throughout that common window, and the
// combined snapshot is consistent at any point inside it. (This is why
// multi-instance read-only transactions keep read sets even on the TL2
// engine: the serialization point is the common window, not any single
// rv, so per-read validation alone is not enough.)
//
// The retry budget is taken from stms[0]. An empty stms runs fn(nil)
// once, transactionally vacuous.
func AtomicallyReadMulti(stms []*STM, fn func(rtxs []*ReadTx) error) error {
	return atomicallyReadMulti(nil, stms, fn)
}

// AtomicallyReadMultiCtx is AtomicallyReadMulti honoring ctx between
// retry attempts, with the same contract as AtomicallyCtx.
func AtomicallyReadMultiCtx(ctx context.Context, stms []*STM, fn func(rtxs []*ReadTx) error) error {
	return atomicallyReadMulti(ctx, stms, fn)
}

func atomicallyReadMulti(ctx context.Context, stms []*STM, fn func(rtxs []*ReadTx) error) error {
	if len(stms) == 0 {
		if err := ctxErr(ctx); err != nil {
			return &TxError{Op: "atomically-read-multi", Err: ErrCanceled, Cause: err}
		}
		return fn(nil)
	}
	if len(stms) == 1 {
		// Single instance: the invisible-read fast path applies.
		return stms[0].atomicallyRead(ctx, func(r *ReadTx) error { return fn([]*ReadTx{r}) })
	}
	if err := rejectDuplicates(stms); err != nil {
		return err
	}
	rtxs := make([]*ReadTx, len(stms))
	abortAll := func() {
		for i := len(rtxs) - 1; i >= 0; i-- {
			rtxs[i].tx.abortAttempt()
		}
	}
	captureAll := func(attempt int) (*waiter, bool) {
		txs := make([]*Tx, len(rtxs))
		for i, r := range rtxs {
			txs[i] = r.tx
		}
		return captureConflictMulti(stms[0], txs, attempt)
	}
	conflicts, parks := 0, 0
	m := stms[0].metrics // multi commits account to the lead instance
	var t0 time.Time
	sampled, first := false, true
	for attempt := 0; attempt < stms[0].maxRetries; {
		if err := ctxErr(ctx); err != nil {
			return stms[0].txError("atomically-read-multi", attempt, conflicts, ErrCanceled, err)
		}
		for i, s := range stms {
			tx := s.begin()
			tx.readOnly = true // read sets stay on: see the soundness note
			rtxs[i] = &tx.rtx
		}
		if first {
			first = false
			if m != nil && rtxs[0].tx.nextSample() {
				sampled = true
				t0 = time.Now()
			}
		}
		err, st := runReadMultiBody(rtxs, fn)
		switch {
		case st == txBlocked:
			w := stms[0].newWaiter()
			for _, r := range rtxs {
				w.captureTx(r.tx)
			}
			abortAll()
			stms[0].parkBlocked(ctx, w, parks)
			parks++
			continue
		case st == txConflicted:
			w, changed := captureAll(attempt)
			abortAll()
			for _, s := range stms {
				s.stats.Conflicts.Add(1)
			}
			conflicts++
			attempt++
			stms[0].afterConflict(ctx, w, changed, attempt)
			continue
		case err != nil:
			abortAll()
			for _, s := range stms {
				s.stats.UserAborts.Add(1)
			}
			return err
		}
		valid := true
		for _, r := range rtxs {
			if !r.tx.validateReads() {
				valid = false
				break
			}
		}
		if !valid {
			w, changed := captureAll(attempt)
			abortAll()
			for _, s := range stms {
				s.stats.Conflicts.Add(1)
			}
			conflicts++
			attempt++
			stms[0].afterConflict(ctx, w, changed, attempt)
			continue
		}
		// Nothing to publish; resolve the attempts.
		for i := len(rtxs) - 1; i >= 0; i-- {
			rtxs[i].tx.finishTx()
		}
		for _, s := range stms {
			s.stats.Commits.Add(1)
			s.stats.MultiCommits.Add(1)
			s.stats.ReadOnlyCommits.Add(1)
		}
		if sampled {
			m.ReadOnlyNs.Observe(time.Since(t0).Nanoseconds())
			m.Attempts.Observe(int64(conflicts) + 1)
		}
		return nil
	}
	return stms[0].txError("atomically-read-multi", stms[0].maxRetries, conflicts, ErrMaxRetries, nil)
}
