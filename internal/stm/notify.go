package stm

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Commit-notification subsystem: the event-driven replacement for the
// blind retry backoff. Every STM instance owns a waitTable — a fixed
// array of hash buckets keyed on variable ids — and every successful
// commit publishes "these variables changed" through it (see
// engine.wakeSet and Tx.commitPrepared). A transaction that must pause —
// an explicit Tx.Block, or a conflicted attempt past the spin phase —
// captures its footprint into a waiter, registers it in the buckets,
// revalidates once, and parks on a channel until a relevant commit
// signals it.
//
// The no-lost-wakeup argument is the classic register-then-revalidate
// protocol. The waiter (W1) registers under the bucket locks, then (W2)
// revalidates each captured variable's version word, then (W3) parks.
// The committer (C1) stores the new version words, then (C2) scans the
// buckets and signals matching waiters. If C2 runs before W1 and misses
// the registration, then C1 — which precedes C2 — also precedes W1 and
// therefore W2, so the revalidation observes the changed version and the
// waiter never parks. If C2 runs after W1, the shared bucket lock makes
// the registration visible and the waiter is signaled. The per-table
// `active` counter that gates the commit path is sound for the same
// reason: it is incremented before W2, so a committer that loads zero
// loaded it — and published its writes — before the revalidation.
//
// The old exponential backoff survives only as a bounded fallback: a
// conflict-park keeps a capped fallback timer for the one window
// notification cannot cover (a lock-holder that aborts restores the old
// version word and publishes nothing), and an explicit Block-park keeps
// a coarse safety-net timer (seconds, not milliseconds) so even a
// mis-registered waiter revalidates eventually instead of hanging.

// waitBuckets is the bucket count of each instance's waiter table. Ids
// hash by masking, so this must stay a power of two.
const waitBuckets = 64

// waitTable is the per-STM waiter registry.
type waitTable struct {
	// active counts live registrations across all buckets. The commit
	// path loads it once per written variable and skips the bucket scan
	// entirely while it is zero, so instances with no waiters pay one
	// uncontended atomic load per written var and nothing else. Padded
	// to a line of its own: it is the gate word every writing commit
	// loads, and park/unpark RMWs on it must not invalidate the buckets.
	active atomic.Int64
	_      [56]byte

	buckets [waitBuckets]waitBucket
}

type waitBucket struct {
	// n mirrors len(regs) so the commit path can skip empty buckets
	// without taking the lock.
	n  atomic.Int32
	mu sync.Mutex

	// regs is insertion-ordered and capacity-retained: registrations are
	// appended, removals swap with the tail, so the steady-state park
	// path stops allocating once a bucket has seen its high-water mark.
	regs []waitReg

	// Tail padding rounds the bucket to one cache line (4+8+4 pad+24+24
	// = 64) so neighboring buckets — hashed to by unrelated variables —
	// never false-share their n gate words.
	_ [24]byte
}

type waitReg struct {
	id uint64
	w  *waiter
}

func (t *waitTable) bucketFor(id uint64) *waitBucket {
	return &t.buckets[id&(waitBuckets-1)]
}

// waiter is one parked transaction's registration: the captured
// footprint (variables and the version words under which they were
// observed) and the channel a committer signals. Waiters are pooled per
// STM and single-use per park; release drains and recycles them.
type waiter struct {
	s       *STM          // instance whose stats the park accrues to (and pool owner)
	ch      chan struct{} // buffered(1): multiple notifies collapse into one signal
	entries []readEntry   // captured (variable, observed meta) pairs
}

// newWaiter takes a pooled waiter (or grows the pool).
func (s *STM) newWaiter() *waiter {
	return s.waiterPool.Get().(*waiter)
}

// release drains any straggler signal, drops the captured footprint and
// returns the waiter to its pool.
func (w *waiter) release() {
	select {
	case <-w.ch:
	default:
	}
	clear(w.entries)
	w.entries = w.entries[:0]
	w.s.waiterPool.Put(w)
}

// captureTx snapshots the attempt's footprint into the waiter: the read
// set with its read-time version words, the variable whose lock or
// version raised the conflict (if any), and the write targets — a
// conflicted commit may have failed on a write-only variable that the
// read set never saw. Must run before the attempt is aborted (abort
// resets the Tx); version words recorded for variables this attempt
// itself locked are the pre-lock words, so the waiter does not wake on
// its own abort's lock release.
func (w *waiter) captureTx(tx *Tx) {
	w.entries = append(w.entries, tx.reads...)
	if tx.conflictVB != nil {
		w.entries = append(w.entries, readEntry{vb: tx.conflictVB, meta: tx.conflictMeta})
	}
	for i := range tx.writes {
		w.captureWriteTarget(tx, &tx.writes[i].v.varBase)
	}
	for i := range tx.pwrites {
		w.captureWriteTarget(tx, tx.pwrites[i].b.base())
	}
	// Encounter-time lock table (eager): pre-lock words are recorded in
	// the entries themselves. The eager undo log's variables are a
	// subset of locked, so they are covered; when locked is empty the
	// undo logs are the global-lock engine's write targets.
	for i := range tx.locked {
		w.entries = append(w.entries, readEntry{vb: tx.locked[i].vb, meta: tx.locked[i].meta})
	}
	if len(tx.locked) == 0 {
		for i := range tx.undo {
			w.captureWriteTarget(tx, &tx.undo[i].v.varBase)
		}
		for i := range tx.pundo {
			w.captureWriteTarget(tx, tx.pundo[i].b.base())
		}
	}
}

// captureWriteTarget records vb with its pre-lock word when this attempt
// holds vb's commit-time lock (validation-failure abort path), else with
// the currently visible word.
func (w *waiter) captureWriteTarget(tx *Tx, vb *varBase) {
	m, ok := tx.lockedMetaFor(vb)
	if !ok {
		m = vb.meta.Load()
	}
	w.entries = append(w.entries, readEntry{vb: vb, meta: m})
}

// register inserts the waiter into every captured variable's bucket.
// Variables may belong to different STM instances (AtomicallyMulti);
// each registers in its owner's table.
func (w *waiter) register() {
	for i := range w.entries {
		vb := w.entries[i].vb
		t := &vb.owner.waiters
		t.active.Add(1)
		b := t.bucketFor(vb.id)
		b.mu.Lock()
		b.regs = append(b.regs, waitReg{id: vb.id, w: w})
		b.n.Add(1)
		b.mu.Unlock()
	}
}

// unregister removes every registration made by register. After it
// returns no committer can signal w (signals happen under the bucket
// locks), so release's drain leaves the channel empty for reuse.
func (w *waiter) unregister() {
	for i := range w.entries {
		vb := w.entries[i].vb
		t := &vb.owner.waiters
		b := t.bucketFor(vb.id)
		b.mu.Lock()
		for j := range b.regs {
			if b.regs[j].w == w && b.regs[j].id == vb.id {
				last := len(b.regs) - 1
				b.regs[j] = b.regs[last]
				b.regs[last] = waitReg{}
				b.regs = b.regs[:last]
				b.n.Add(-1)
				break
			}
		}
		b.mu.Unlock()
		t.active.Add(-1)
	}
}

// changed revalidates the captured footprint: true when some variable's
// version moved past the observed word, or a lock the waiter observed
// has been released (an abort restores the old version, which is still a
// state change worth re-running for). A variable that is now locked at
// the same version is a commit in flight — its writeback will signal us,
// so it does not count as changed.
func (w *waiter) changed() bool {
	for i := range w.entries {
		e := &w.entries[i]
		cur := e.vb.meta.Load()
		if version(cur) != version(e.meta) || (isLocked(e.meta) && !isLocked(cur)) {
			return true
		}
	}
	return false
}

// park is the blocking heart of the subsystem: register, revalidate once
// (no lost wakeups — see the package comment), then sleep until a
// relevant commit signals the channel, the context is canceled, or the
// fallback timer insists on a recheck. The caller owns neither the
// waiter nor its registrations afterwards: park always unregisters and
// releases. fallback <= 0 means no timer (explicit blocks rely on the
// safety net their caller chose).
func (w *waiter) park(ctx context.Context, fallback time.Duration) {
	s := w.s
	w.register()
	if w.changed() {
		w.unregister()
		w.release()
		return
	}
	s.stats.Waits.Add(1)
	// Park duration is recorded unsampled: a park is microseconds at
	// minimum, so the clock reads are free relative to the sleep.
	var t0 time.Time
	if s.metrics != nil {
		t0 = time.Now()
	}
	var timeC <-chan time.Time
	var timer *time.Timer
	if fallback > 0 {
		timer = time.NewTimer(fallback)
		timeC = timer.C
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case <-w.ch:
		s.stats.Wakeups.Add(1)
	case <-timeC:
		s.stats.SpuriousWakeups.Add(1)
	case <-done:
		// The retry loop's top-of-attempt context check surfaces
		// ErrCanceled; nothing to count here.
	}
	if timer != nil {
		timer.Stop()
	}
	if s.metrics != nil {
		s.metrics.ParkNs.Observe(time.Since(t0).Nanoseconds())
	}
	w.unregister()
	w.release()
}

// wakeVarBase signals every waiter registered on vb. Called by the
// engines' commit paths (after the new version words are visible), by
// Touch, and by the quiescence fence's broadcast. It takes only the leaf
// bucket lock, so it is safe from any context, including inside an open
// transaction.
func wakeVarBase(vb *varBase) {
	t := &vb.owner.waiters
	if t.active.Load() == 0 {
		return
	}
	b := t.bucketFor(vb.id)
	if b.n.Load() == 0 {
		return
	}
	b.mu.Lock()
	for i := range b.regs {
		if b.regs[i].id == vb.id {
			select {
			case b.regs[i].w.ch <- struct{}{}:
			default:
			}
		}
	}
	b.mu.Unlock()
}

// broadcast signals every waiter in the table, regardless of what it
// waits on. The quiescence fence uses it so that privatization cannot
// strand waiters: after Quiesce the privatized locations may change
// through plain writes that no commit will ever announce, so everyone
// parked at fence time is woken to re-read the world.
func (t *waitTable) broadcast() {
	if t.active.Load() == 0 {
		return
	}
	for i := range t.buckets {
		b := &t.buckets[i]
		if b.n.Load() == 0 {
			continue
		}
		b.mu.Lock()
		for j := range b.regs {
			select {
			case b.regs[j].w.ch <- struct{}{}:
			default:
			}
		}
		b.mu.Unlock()
	}
}

// Touch stamps each variable with a fresh version from the instance's
// clock — without changing its value — and wakes any transactions parked
// on it. It is the notification hook for state changes that happen
// outside any transaction: internal/kv touches a per-shard keyspace
// version after inserting into or sweeping its (non-transactional)
// copy-on-write key table, so a blocked WaitGet observes key creation
// and deletion. Concurrent transactional readers of a touched variable
// conflict and retry, exactly as if a blind write to it had committed.
// The variables must belong to this instance.
func (s *STM) Touch(vs ...*Var) {
	for _, v := range vs {
		vb := &v.varBase
		for {
			m := vb.meta.Load()
			if isLocked(m) {
				// A committer holds vb; its writeback both bumps the
				// version and wakes waiters, but our caller's state
				// change is not that commit — stamp after it resolves.
				runtime.Gosched()
				continue
			}
			if vb.meta.CompareAndSwap(m, s.clockTouch(m)<<1) {
				break
			}
		}
		wakeVarBase(vb)
	}
}

// --- pause policy of the retry loops ---

// The number of leading conflicted attempts that just yield the
// processor before the loops start parking used to be a constant 8;
// it is now the per-instance adaptive spin budget (see adapt.go and
// STM.SpinBudget). Immediate retry wins while conflicts are transient,
// and it also keeps the short "retry onto fresh state" idiom (kv's
// tombstone handling) prompt; persistent contention shrinks the budget
// so losers park promptly instead of bouncing hot cache lines.

// conflictFallback is the pre-notification backoff schedule, demoted to
// the fallback timer of a conflict-park: it only fires when the
// conflicting transaction aborted (publishing nothing), so the parked
// attempt still makes progress instead of waiting forever. spin is the
// instance's spin budget, aligning the schedule with backoff's.
func conflictFallback(attempt, spin int) time.Duration {
	shift := attempt - spin
	if shift < 0 {
		shift = 0
	}
	if shift > 12 {
		return 4 * time.Millisecond
	}
	return time.Microsecond << uint(shift)
}

// blockFallback is the safety-net recheck cadence of an explicit
// Tx.Block park, growing with consecutive parks of the same call. It
// exists to bound the damage of waits that notification genuinely cannot
// cover (e.g. a variable privatized and then plainly written after the
// fence's broadcast): a parked waiter re-runs its body a handful of
// times per minute, which is unmeasurable CPU, instead of hanging.
func blockFallback(parks int) time.Duration {
	d := 100 * time.Millisecond << uint(min(parks, 7))
	if d > 10*time.Second {
		d = 10 * time.Second
	}
	return d
}

// afterConflict pauses between conflicted attempts. changed means the
// conflict proved the world already moved (a too-new read, a torn lock
// CAS), so the only right move is immediate retry; a captured waiter
// parks on the footprint with the bounded fallback; and with nothing to
// wait on (empty footprint, or still in the spin phase) the old blind
// backoff remains.
func (s *STM) afterConflict(ctx context.Context, w *waiter, changed bool, attempt int) {
	spin := s.SpinBudget()
	switch {
	case changed:
		runtime.Gosched()
	case w == nil || len(w.entries) == 0:
		if w != nil {
			w.release()
		}
		backoff(ctx, attempt, spin)
	default:
		w.park(ctx, conflictFallback(attempt, spin))
	}
}

// captureConflict decides whether a conflicted attempt should park and,
// if so, snapshots its footprint before the abort wipes it. It returns
// changed=true when the conflict already proved a state change. Every
// conflicted attempt also ticks the adaptive controller here — the
// conflict slow path is the only place contention telemetry accrues.
func (s *STM) captureConflict(tx *Tx, attempt int) (w *waiter, changed bool) {
	s.maybeAdapt()
	if tx.conflictChanged {
		return nil, true
	}
	if attempt < s.SpinBudget() {
		return nil, false
	}
	w = s.newWaiter()
	w.captureTx(tx)
	return w, false
}

// conflictedAttempt is the shared bookkeeping of a conflicted attempt
// in the single-instance retry loops: capture the footprint (or the
// proof of change), abort, count the conflict and pause. Returns the
// incremented attempt number; the caller tracks its own per-call
// conflict diagnostics.
func (s *STM) conflictedAttempt(ctx context.Context, tx *Tx, attempt int) int {
	w, changed := s.captureConflict(tx, attempt)
	tx.abortAttempt()
	s.stats.Conflicts.Add(1)
	attempt++
	s.afterConflict(ctx, w, changed, attempt)
	return attempt
}

// captureConflictMulti is captureConflict across a multi-instance
// attempt: the waiter parks on the union of every instance's footprint,
// and any instance's proof of change forces immediate retry. The waiter
// is pooled on (and its park accounted to) lead.
func captureConflictMulti(lead *STM, txs []*Tx, attempt int) (w *waiter, changed bool) {
	lead.maybeAdapt()
	for _, tx := range txs {
		if tx.conflictChanged {
			return nil, true
		}
	}
	if attempt < lead.SpinBudget() {
		return nil, false
	}
	w = lead.newWaiter()
	for _, tx := range txs {
		w.captureTx(tx)
	}
	return w, false
}

// parkBlocked parks an explicitly blocked attempt (Tx.Block) on its
// captured footprint until a relevant commit. A block with an empty
// footprint (the body blocked before reading anything) has nothing to
// wake it, so it degrades to the bounded blind backoff.
func (s *STM) parkBlocked(ctx context.Context, w *waiter, parks int) {
	if len(w.entries) == 0 {
		w.release()
		bo := s.SpinBudget()
		backoff(ctx, bo+12+parks, bo) // deep-backoff regime: 4ms sleeps
		return
	}
	w.park(ctx, blockFallback(parks))
}
