package stm

import (
	"fmt"
	"sync"
	"testing"
)

// TestMultiBasic commits a write across two instances and reads it back.
func TestMultiBasic(t *testing.T) {
	for _, e := range engines {
		t.Run(e.String(), func(t *testing.T) {
			s1 := New(WithEngine(e))
			s2 := New(WithEngine(e))
			a := s1.NewVar("a", 10)
			b := s2.NewVar("b", 0)
			err := AtomicallyMulti([]*STM{s1, s2}, func(txs []*Tx) error {
				v := txs[0].Read(a)
				txs[0].Write(a, 0)
				txs[1].Write(b, txs[1].Read(b)+v)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if a.Load() != 0 || b.Load() != 10 {
				t.Fatalf("a=%d b=%d, want 0 10", a.Load(), b.Load())
			}
			if s1.Snapshot().MultiCommits != 1 || s2.Snapshot().MultiCommits != 1 {
				t.Fatalf("multi-commit counters not plumbed: %v %v", s1.Snapshot(), s2.Snapshot())
			}
		})
	}
}

// TestMultiUserAbort checks that an error from the body rolls back every
// instance.
func TestMultiUserAbort(t *testing.T) {
	for _, e := range engines {
		t.Run(e.String(), func(t *testing.T) {
			s1 := New(WithEngine(e))
			s2 := New(WithEngine(e))
			a := s1.NewVar("a", 1)
			b := s2.NewVar("b", 2)
			err := AtomicallyMulti([]*STM{s1, s2}, func(txs []*Tx) error {
				txs[0].Write(a, 100)
				txs[1].Write(b, 200)
				return ErrAbort
			})
			if err != ErrAbort {
				t.Fatalf("err=%v, want ErrAbort", err)
			}
			if a.Load() != 1 || b.Load() != 2 {
				t.Fatalf("rollback failed: a=%d b=%d", a.Load(), b.Load())
			}
		})
	}
}

// TestMultiSingleAndEmpty covers the degenerate arities.
func TestMultiSingleAndEmpty(t *testing.T) {
	s := New(WithEngine(Lazy))
	x := s.NewVar("x", 0)
	if err := AtomicallyMulti([]*STM{s}, func(txs []*Tx) error {
		txs[0].Write(x, 7)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if x.Load() != 7 {
		t.Fatalf("x=%d, want 7", x.Load())
	}
	ran := false
	if err := AtomicallyMulti(nil, func(txs []*Tx) error {
		ran = len(txs) == 0
		return nil
	}); err != nil || !ran {
		t.Fatalf("empty multi: err=%v ran=%v", err, ran)
	}
}

// TestMultiNoTornCommit hammers a two-instance transfer while observer
// transactions assert that the sum is never seen torn: a prepared-but-
// uncommitted instance must block (conflict) consistent readers.
func TestMultiNoTornCommit(t *testing.T) {
	for _, e := range engines {
		t.Run(e.String(), func(t *testing.T) {
			s1 := New(WithEngine(e))
			s2 := New(WithEngine(e))
			a := s1.NewVar("a", 500)
			b := s2.NewVar("b", 500)
			stms := []*STM{s1, s2}

			const writers = 4
			const itersPerWriter = 300
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					amt := seed%7 + 1
					for i := 0; i < itersPerWriter; i++ {
						err := AtomicallyMulti(stms, func(txs []*Tx) error {
							av := txs[0].Read(a)
							bv := txs[1].Read(b)
							txs[0].Write(a, av-amt)
							txs[1].Write(b, bv+amt)
							return nil
						})
						if err != nil {
							t.Errorf("transfer: %v", err)
							return
						}
					}
				}(int64(w))
			}
			var observerErr error
			var obsWg sync.WaitGroup
			obsWg.Add(1)
			go func() {
				defer obsWg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					var sum int64
					err := AtomicallyMulti(stms, func(txs []*Tx) error {
						sum = txs[0].Read(a) + txs[1].Read(b)
						return nil
					})
					if err != nil {
						observerErr = err
						return
					}
					if sum != 1000 {
						observerErr = errTorn(sum)
						return
					}
				}
			}()
			wg.Wait()
			close(stop)
			obsWg.Wait()
			if observerErr != nil {
				t.Fatal(observerErr)
			}
			if got := a.Load() + b.Load(); got != 1000 {
				t.Fatalf("final sum=%d, want 1000", got)
			}
		})
	}
}

type errTorn int64

func (e errTorn) Error() string { return fmt.Sprintf("torn cross-instance read: sum=%d", int64(e)) }

// TestMultiMixedEngines runs one transaction across THREE instances each
// on a different engine (lazy + eager + global-lock): transfers circulate
// value among them under contention while a cross-instance observer
// checks the conserved total, exercising the two-phase commit's
// engine-heterogeneous path.
func TestMultiMixedEngines(t *testing.T) {
	s1 := New(WithEngine(Lazy))
	s2 := New(WithEngine(Eager))
	s3 := New(WithEngine(GlobalLock))
	stms := []*STM{s1, s2, s3}
	vars := []*Var{s1.NewVar("a", 300), s2.NewVar("b", 300), s3.NewVar("c", 300)}
	const total = 900

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				from := (w + i) % 3
				to := (from + 1) % 3
				err := AtomicallyMulti(stms, func(txs []*Tx) error {
					txs[from].Write(vars[from], txs[from].Read(vars[from])-1)
					txs[to].Write(vars[to], txs[to].Read(vars[to])+1)
					return nil
				})
				if err != nil {
					t.Errorf("mixed-engine transfer: %v", err)
					return
				}
			}
		}()
	}
	obsErr := make(chan error, 1)
	var obsWg sync.WaitGroup
	obsWg.Add(1)
	go func() {
		defer obsWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sum int64
			err := AtomicallyMulti(stms, func(txs []*Tx) error {
				sum = 0
				for i, v := range vars {
					sum += txs[i].Read(v)
				}
				return nil
			})
			if err != nil {
				obsErr <- err
				return
			}
			if sum != total {
				obsErr <- errTorn(sum)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	obsWg.Wait()
	select {
	case err := <-obsErr:
		t.Fatal(err)
	default:
	}
	if got := vars[0].Load() + vars[1].Load() + vars[2].Load(); got != total {
		t.Fatalf("final sum=%d, want %d", got, total)
	}
	for i, s := range stms {
		if s.Snapshot().MultiCommits == 0 {
			t.Errorf("instance %d (%s) recorded no multi-commits", i, s.Engine())
		}
	}
}

// TestMultiDuplicateInstance checks that passing the same instance twice
// is rejected rather than self-deadlocking.
func TestMultiDuplicateInstance(t *testing.T) {
	for _, e := range engines {
		s := New(WithEngine(e))
		err := AtomicallyMulti([]*STM{s, s}, func(txs []*Tx) error { return nil })
		if err != ErrDuplicateInstance {
			t.Errorf("%s: err=%v, want ErrDuplicateInstance", e, err)
		}
	}
}

// TestMultiNoWriteSkew is the serializability regression test for the
// cross-instance commit: T1 reads b (instance 2) and writes a (instance
// 1); T2 reads a and writes b, each writing only if its read saw zero.
// Under any serial order at most one write happens; write skew (both
// writes landing) requires both transactions to validate before the other
// locks, which the whole-footprint lock-then-validate commit forbids. A
// barrier inside the first attempt forces both bodies to read before
// either commits. (GlobalLock is exempt: it takes both instance mutexes at
// begin, so the barrier itself would deadlock — and skew is impossible.)
func TestMultiNoWriteSkew(t *testing.T) {
	for _, e := range []Engine{Lazy, Eager, TL2} {
		t.Run(e.String(), func(t *testing.T) {
			for round := 0; round < 50; round++ {
				s1 := New(WithEngine(e))
				s2 := New(WithEngine(e))
				a := s1.NewVar("a", 0)
				b := s2.NewVar("b", 0)
				stms := []*STM{s1, s2}

				var barrier sync.WaitGroup
				barrier.Add(2)
				run := func(mine, other *Var, myIdx, otherIdx int) error {
					first := true
					return AtomicallyMulti(stms, func(txs []*Tx) error {
						v := txs[otherIdx].Read(other)
						if first {
							first = false
							barrier.Done()
							barrier.Wait() // both attempts hold their reads
						}
						if v == 0 {
							txs[myIdx].Write(mine, 1)
						}
						return nil
					})
				}
				var wg sync.WaitGroup
				wg.Add(2)
				var err1, err2 error
				go func() { defer wg.Done(); err1 = run(a, b, 0, 1) }()
				go func() { defer wg.Done(); err2 = run(b, a, 1, 0) }()
				wg.Wait()
				if err1 != nil || err2 != nil {
					t.Fatalf("round %d: err1=%v err2=%v", round, err1, err2)
				}
				if a.Load() == 1 && b.Load() == 1 {
					t.Fatalf("round %d: write skew — both guarded writes committed", round)
				}
			}
		})
	}
}
