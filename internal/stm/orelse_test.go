package stm

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestOrElseFirstMatch: alternatives are tried in order and exactly one
// commits — the first that neither blocks nor conflicts.
func TestOrElseFirstMatch(t *testing.T) {
	for _, e := range engines {
		t.Run(e.String(), func(t *testing.T) {
			s := New(WithEngine(e))
			hi := NewQueue[string](s, "hi", 4)
			lo := NewQueue[string](s, "lo", 4)
			popOr := func(q *Queue[string], out *string) func(*Tx) error {
				return func(tx *Tx) error {
					v, ok := q.DequeueTx(tx)
					if !ok {
						tx.Block()
					}
					*out = v
					return nil
				}
			}
			if _, err := lo.Enqueue("low"); err != nil {
				t.Fatal(err)
			}
			if _, err := hi.Enqueue("high"); err != nil {
				t.Fatal(err)
			}
			var got string
			// Both non-empty: the first alternative wins.
			if err := s.OrElse(popOr(hi, &got), popOr(lo, &got)); err != nil {
				t.Fatal(err)
			}
			if got != "high" {
				t.Fatalf("got %q, want high", got)
			}
			// First empty and blocking: the second commits.
			if err := s.OrElse(popOr(hi, &got), popOr(lo, &got)); err != nil {
				t.Fatal(err)
			}
			if got != "low" {
				t.Fatalf("got %q, want low", got)
			}
			// The high-priority element was consumed by the first choice
			// only: first-match semantics commit exactly one alternative.
			if n, err := hi.Len(); err != nil || n != 0 {
				t.Fatalf("hi len = %d, %v", n, err)
			}
			if n, err := lo.Len(); err != nil || n != 0 {
				t.Fatalf("lo len = %d, %v", n, err)
			}
		})
	}
}

// TestOrElseParksOnUnion: when every alternative blocks, the choice
// parks on the union of their footprints — a commit into either queue
// wakes and resolves it.
func TestOrElseParksOnUnion(t *testing.T) {
	for _, e := range engines {
		t.Run(e.String(), func(t *testing.T) {
			s := New(WithEngine(e))
			q1 := NewQueue[int](s, "q1", 4)
			q2 := NewQueue[int](s, "q2", 4)
			for round, feed := range []*Queue[int]{q1, q2} {
				base := s.Snapshot().Waits
				got := make(chan int, 1)
				go func() {
					var v int
					err := s.OrElse(
						func(tx *Tx) error {
							x, ok := q1.DequeueTx(tx)
							if !ok {
								tx.Block()
							}
							v = x
							return nil
						},
						func(tx *Tx) error {
							x, ok := q2.DequeueTx(tx)
							if !ok {
								tx.Block()
							}
							v = -x
							return nil
						},
					)
					if err != nil {
						t.Error(err)
					}
					got <- v
				}()
				waitForParks(t, s, base+1)
				if _, err := feed.Enqueue(10 + round); err != nil {
					t.Fatal(err)
				}
				select {
				case v := <-got:
					want := 10 + round
					if round == 1 {
						want = -want
					}
					if v != want {
						t.Fatalf("round %d: got %d, want %d", round, v, want)
					}
				case <-time.After(10 * time.Second):
					t.Fatalf("round %d: OrElse lost the wakeup", round)
				}
			}
		})
	}
}

// TestOrElseCtxCanceledWhileParked: cancellation releases a fully
// blocked choice with the canonical error chain.
func TestOrElseCtxCanceledWhileParked(t *testing.T) {
	s := New()
	v := s.NewVar("v", 0)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- s.OrElseCtx(ctx,
			func(tx *Tx) error { _ = tx.Read(v); tx.Block(); return nil },
			func(tx *Tx) error { _ = tx.Read(v); tx.Block(); return nil },
		)
	}()
	waitForParks(t, s, 1)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled OrElse never returned")
	}
}

// TestOrElseUserError: an alternative's non-nil error aborts the whole
// choice without trying later alternatives.
func TestOrElseUserError(t *testing.T) {
	s := New()
	boom := errors.New("boom")
	ran2 := false
	err := s.OrElse(
		func(tx *Tx) error { return boom },
		func(tx *Tx) error { ran2 = true; return nil },
	)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran2 {
		t.Fatal("second alternative ran after the first returned an error")
	}
}

// TestOrElseNoAlternativesPanics pins the programming-error contract.
func TestOrElseNoAlternativesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("OrElse() with no alternatives did not panic")
		}
	}()
	_ = New().OrElse()
}
