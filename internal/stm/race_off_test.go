//go:build !race

package stm

const raceEnabled = false
