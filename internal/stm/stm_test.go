package stm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// engines is every registered engine: the whole suite runs against each,
// so a new engine cannot merge without passing these checks.
var engines = Engines()

func forEachEngine(t *testing.T, f func(t *testing.T, s *STM)) {
	for _, e := range engines {
		e := e
		t.Run(e.String(), func(t *testing.T) {
			f(t, New(WithEngine(e)))
		})
	}
}

func TestSequentialReadWrite(t *testing.T) {
	forEachEngine(t, func(t *testing.T, s *STM) {
		x := s.NewVar("x", 10)
		err := s.Atomically(func(tx *Tx) error {
			if got := tx.Read(x); got != 10 {
				t.Errorf("initial read = %d, want 10", got)
			}
			tx.Write(x, 42)
			if got := tx.Read(x); got != 42 {
				t.Errorf("read-your-write = %d, want 42", got)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := x.Load(); got != 42 {
			t.Errorf("after commit x = %d, want 42", got)
		}
	})
}

func TestUserAbortRollsBack(t *testing.T) {
	forEachEngine(t, func(t *testing.T, s *STM) {
		x := s.NewVar("x", 7)
		err := s.Atomically(func(tx *Tx) error {
			tx.Write(x, 99)
			return ErrAbort
		})
		if !errors.Is(err, ErrAbort) {
			t.Fatalf("err = %v, want ErrAbort", err)
		}
		if got := x.Load(); got != 7 {
			t.Errorf("aborted write leaked: x = %d, want 7", got)
		}
		if s.Snapshot().UserAborts != 1 {
			t.Errorf("user abort not counted")
		}
	})
}

func TestUserErrorRollsBack(t *testing.T) {
	sentinel := errors.New("boom")
	forEachEngine(t, func(t *testing.T, s *STM) {
		x := s.NewVar("x", 1)
		err := s.Atomically(func(tx *Tx) error {
			tx.Write(x, 2)
			return sentinel
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("err = %v, want sentinel", err)
		}
		if got := x.Load(); got != 1 {
			t.Errorf("errored write leaked: x = %d", got)
		}
	})
}

func TestPanicPropagates(t *testing.T) {
	s := New(WithEngine(Lazy))
	defer func() {
		if recover() == nil {
			t.Fatal("panic swallowed by Atomically")
		}
	}()
	_ = s.Atomically(func(*Tx) error { panic("user panic") })
}

func TestConcurrentCounter(t *testing.T) {
	const goroutines = 8
	const perG = 200
	forEachEngine(t, func(t *testing.T, s *STM) {
		c := s.NewVar("c", 0)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					if err := s.Atomically(func(tx *Tx) error {
						tx.Write(c, tx.Read(c)+1)
						return nil
					}); err != nil {
						t.Errorf("increment failed: %v", err)
						return
					}
				}
			}()
		}
		wg.Wait()
		if got := c.Load(); got != goroutines*perG {
			t.Errorf("counter = %d, want %d (%s)", got, goroutines*perG, s)
		}
	})
}

func TestInvariantPreservation(t *testing.T) {
	// Transfers keep a+b constant; concurrent transactional readers must
	// never observe a broken invariant (isolation).
	forEachEngine(t, func(t *testing.T, s *STM) {
		a := s.NewVar("a", 1000)
		b := s.NewVar("b", 0)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				amount := seed + 1
				for i := 0; i < 150; i++ {
					_ = s.Atomically(func(tx *Tx) error {
						av := tx.Read(a)
						tx.Write(a, av-amount)
						tx.Write(b, tx.Read(b)+amount)
						return nil
					})
				}
			}(int64(g))
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var sum int64
				if err := s.Atomically(func(tx *Tx) error {
					sum = tx.Read(a) + tx.Read(b)
					return nil
				}); err == nil && sum != 1000 {
					t.Errorf("observed broken invariant: %d", sum)
					return
				}
			}
		}()
		wgDoneAfter(&wg, 5, stop)
		if got := a.Load() + b.Load(); got != 1000 {
			t.Errorf("final sum = %d, want 1000", got)
		}
	})
}

// wgDoneAfter waits for the first n-1 members then closes stop and waits
// for the rest. Helper for reader/writer tests.
func wgDoneAfter(wg *sync.WaitGroup, _ int, stop chan struct{}) {
	// The writer goroutines are bounded; give them time, then stop readers.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	<-done
}

func TestConflictDetection(t *testing.T) {
	// A transaction reading a var invalidated mid-flight must retry, never
	// observe a mixed snapshot.
	forEachEngine(t, func(t *testing.T, s *STM) {
		x := s.NewVar("x", 0)
		y := s.NewVar("y", 0)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := int64(1); i <= 300; i++ {
				_ = s.Atomically(func(tx *Tx) error {
					tx.Write(x, i)
					tx.Write(y, i)
					return nil
				})
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				var xv, yv int64
				if err := s.Atomically(func(tx *Tx) error {
					xv = tx.Read(x)
					yv = tx.Read(y)
					return nil
				}); err != nil {
					t.Errorf("snapshot read failed: %v", err)
					return
				}
				if xv != yv {
					t.Errorf("torn snapshot: x=%d y=%d", xv, yv)
					return
				}
			}
		}()
		wg.Wait()
	})
}

func TestQuiesceWaitsForActiveTx(t *testing.T) {
	s := New(WithEngine(Lazy))
	x := s.NewVar("x", 0)
	inTx := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.Atomically(func(tx *Tx) error {
			tx.Write(x, 1)
			close(inTx)
			<-release
			return nil
		})
	}()
	<-inTx
	quiesced := make(chan struct{})
	go func() {
		s.Quiesce(x)
		close(quiesced)
	}()
	select {
	case <-quiesced:
		t.Fatal("Quiesce returned while a transaction was active")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	<-done
	select {
	case <-quiesced:
	case <-time.After(time.Second):
		t.Fatal("Quiesce did not return after the transaction resolved")
	}
}

func TestQuiesceIgnoresLaterTx(t *testing.T) {
	// Transactions admitted after the fence must not block it.
	s := New(WithEngine(Lazy))
	x := s.NewVar("x", 0)
	s.Quiesce(x) // no active transactions: immediate
	doneQ := make(chan struct{})
	go func() {
		s.Quiesce(x)
		close(doneQ)
	}()
	<-doneQ
	_ = s.Atomically(func(tx *Tx) error { tx.Write(x, 1); return nil })
}

func TestMaxRetries(t *testing.T) {
	s := New(WithEngine(Lazy), WithMaxRetries(3))
	x := s.NewVar("x", 0)
	// Hold a var permanently "locked" by corrupting its meta, so commits
	// always fail. Use the internal representation deliberately.
	x.meta.Store(lockedBit)
	err := s.Atomically(func(tx *Tx) error {
		tx.Write(x, 1)
		return nil
	})
	if !errors.Is(err, ErrMaxRetries) {
		t.Fatalf("err = %v, want ErrMaxRetries", err)
	}
}

func TestReadOnlySnapshot(t *testing.T) {
	// Read-only transactions on the lazy engine validate per read and
	// commit without locking.
	s := New(WithEngine(Lazy))
	x := s.NewVar("x", 5)
	before := s.Snapshot().Commits
	var v int64
	if err := s.Atomically(func(tx *Tx) error {
		v = tx.Read(x)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if v != 5 {
		t.Errorf("read %d, want 5", v)
	}
	if s.Snapshot().Commits != before+1 {
		t.Error("read-only commit not counted")
	}
}

func TestMixedModeVisibility(t *testing.T) {
	forEachEngine(t, func(t *testing.T, s *STM) {
		x := s.NewVar("x", 0)
		x.Store(3)
		var got int64
		if err := s.Atomically(func(tx *Tx) error {
			got = tx.Read(x)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if got != 3 {
			t.Errorf("transactional read after plain store = %d, want 3", got)
		}
		if err := s.Atomically(func(tx *Tx) error {
			tx.Write(x, 4)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if x.Load() != 4 {
			t.Errorf("plain load after transactional write = %d, want 4", x.Load())
		}
	})
}

func TestStatsString(t *testing.T) {
	s := New(WithEngine(Eager))
	_ = s.Atomically(func(*Tx) error { return nil })
	str := s.String()
	if want := "stm(eager)"; len(str) < len(want) || str[:len(want)] != want {
		t.Errorf("String() = %q", str)
	}
	for _, e := range append(Engines(), Engine(99)) {
		if e.String() == "" {
			t.Error("empty engine name")
		}
	}
}

// --- stress scenarios (S1–S3) ---

func TestPublicationSafeAllEngines(t *testing.T) {
	forEachEngine(t, func(t *testing.T, s *STM) {
		res := Publication(s, 300)
		if res.Violations != 0 {
			t.Errorf("publication violated %d/%d times on %s", res.Violations, res.Iterations, s.engine)
		}
	})
}

func TestPrivatizationDeterministicAnomalyLazy(t *testing.T) {
	// Without a fence the write-buffering engines (lazy and its tl2
	// refinement) exhibit the delayed-writeback violation; with a fence
	// they must not. New engines are new scenarios, not new guarantees.
	for _, e := range []Engine{Lazy, TL2} {
		t.Run(e.String(), func(t *testing.T) {
			s := New(WithEngine(e))
			res := PrivatizationDeterministic(s, false)
			if res.Violations != 1 {
				t.Errorf("expected the forced anomaly, got %d violations", res.Violations)
			}
			s2 := New(WithEngine(e))
			res2 := PrivatizationDeterministic(s2, true)
			if res2.Violations != 0 {
				t.Errorf("fenced privatization violated %d times", res2.Violations)
			}
		})
	}
}

func TestPrivatizationFencedStress(t *testing.T) {
	forEachEngine(t, func(t *testing.T, s *STM) {
		res := Privatization(s, 200, true)
		if res.Violations != 0 {
			t.Errorf("fenced privatization violated %d/%d times on %s",
				res.Violations, res.Iterations, s.engine)
		}
	})
}

func TestLostUpdateDeterministicEager(t *testing.T) {
	s := New(WithEngine(Eager))
	res := LostUpdateDeterministic(s)
	if res.Violations != 1 {
		t.Errorf("expected the forced lost update, got %d", res.Violations)
	}
	// The lazy engine buffers writes, so the same scenario cannot lose the
	// plain store: no in-place speculation exists.
	s2 := New(WithEngine(Lazy))
	res2 := LostUpdate(s2, 200)
	if res2.Violations != 0 {
		t.Errorf("lazy engine lost %d plain updates", res2.Violations)
	}
}

func TestDirtyReadDeterministicEager(t *testing.T) {
	s := New(WithEngine(Eager))
	res := DirtyReadDeterministic(s)
	if res.Violations != 1 {
		t.Errorf("expected the forced dirty read, got %d", res.Violations)
	}
}

func TestGlobalLockSerializes(t *testing.T) {
	s := New(WithEngine(GlobalLock))
	x := s.NewVar("x", 0)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = s.Atomically(func(tx *Tx) error {
					v := tx.Read(x)
					tx.Write(x, v+1)
					return nil
				})
			}
		}()
	}
	wg.Wait()
	if got := x.Load(); got != 400 {
		t.Errorf("global-lock counter = %d, want 400", got)
	}
	if s.Snapshot().Conflicts != 0 {
		t.Errorf("global lock reported %d conflicts", s.Snapshot().Conflicts)
	}
}

func TestManyVarsCommitOrder(t *testing.T) {
	// Commits locking many vars must not deadlock regardless of write
	// order inside the transaction.
	s := New(WithEngine(Lazy))
	vars := make([]*Var, 16)
	for i := range vars {
		vars[i] = s.NewVar(fmt.Sprintf("v%d", i), 0)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = s.Atomically(func(tx *Tx) error {
					// Touch vars in a goroutine-specific rotation.
					for k := range vars {
						v := vars[(k*7+g)%len(vars)]
						tx.Write(v, tx.Read(v)+1)
					}
					return nil
				})
			}
		}()
	}
	wg.Wait()
	var total int64
	for _, v := range vars {
		total += v.Load()
	}
	if total != 6*50*16 {
		t.Errorf("total = %d, want %d", total, 6*50*16)
	}
}
