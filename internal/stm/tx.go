package stm

import (
	"context"
	"runtime"
	"sort"
	"time"
)

// Tx is the per-attempt transaction handle passed to Atomically bodies.
// It must not escape the body or be used concurrently.
//
// The engines run two value lanes over one protocol: an int64 lane for
// Var (values logged inline, zero boxing) and a pointer lane for TVar[T]
// (opaque boxes logged behind the boxed interface). The read set, lock
// sets and commit protocol are shared — only value movement is per-lane.
type Tx struct {
	s       *STM
	rv      uint64 // read version (TL2 snapshot)
	slotIdx int    // quiescence slot held for the attempt's lifetime

	// Read set, shared by both lanes (validation is meta-only).
	reads []readEntry

	// Lazy engine write sets.
	writes     map[*Var]int64      // int64 lane
	worder     []*Var              // int64 lane write order
	pwrites    map[boxed]any       // pointer lane (pending boxes)
	pworder    []boxed             // pointer lane write order
	lockedMeta map[*varBase]uint64 // commit-time lock state while prepared

	// Eager and global-lock engines.
	undo   []undoEntry         // int64 lane
	pundo  []pundoEntry        // pointer lane
	locked map[*varBase]uint64 // var -> meta observed before locking
}

type readEntry struct {
	vb   *varBase
	meta uint64
}

type undoEntry struct {
	v   *Var
	old int64
}

type pundoEntry struct {
	b   boxed
	old any
}

// conflictSignal aborts the current attempt; Atomically recovers it.
type conflictSignal struct{}

func (tx *Tx) conflict() {
	panic(conflictSignal{})
}

// begin opens an unmanaged transaction attempt: it registers the
// quiescence slot, takes the global lock when the engine demands it, and
// snapshots the read version. The caller owns the attempt's lifecycle and
// must end it with finishTx (after commitPrepared) or abortAttempt.
func (s *STM) begin() *Tx {
	slotIdx, _ := s.acquireSlot()
	if s.engine == GlobalLock {
		s.glock <- struct{}{}
	}
	return &Tx{s: s, rv: s.clock.Load(), slotIdx: slotIdx}
}

// ctxErr returns the context's error if the context is cancelable and
// done; a nil context means "no cancellation" and costs nothing.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// Atomically runs fn as a transaction, retrying on conflicts until commit
// or the retry budget is exhausted. If fn returns ErrAborted the
// transaction is rolled back and ErrAborted is returned; any other
// non-nil error also rolls back and is returned verbatim (the transaction
// takes no effect). Budget exhaustion returns a *TxError wrapping
// ErrMaxRetries.
func (s *STM) Atomically(fn func(*Tx) error) error {
	return s.atomically(nil, fn)
}

// AtomicallyCtx is Atomically honoring ctx between retry attempts: when
// the context is canceled or its deadline passes, the call stops retrying
// and returns a *TxError wrapping ErrCanceled and the context's error.
// An attempt already executing is never interrupted mid-body, so a nil
// return still means exactly one committed execution of fn.
func (s *STM) AtomicallyCtx(ctx context.Context, fn func(*Tx) error) error {
	return s.atomically(ctx, fn)
}

func (s *STM) atomically(ctx context.Context, fn func(*Tx) error) error {
	conflicts := 0
	for attempt := 0; attempt < s.maxRetries; attempt++ {
		if err := ctxErr(ctx); err != nil {
			return s.txError("atomically", attempt, conflicts, ErrCanceled, err)
		}
		tx := s.begin()
		err, conflicted := tx.runBody(fn)
		switch {
		case conflicted:
			tx.abortAttempt()
			s.stats.Conflicts.Add(1)
			conflicts++
			backoff(attempt)
			continue
		case err != nil:
			tx.abortAttempt()
			s.stats.UserAborts.Add(1)
			return err
		}
		if tx.prepare() {
			tx.commitPrepared()
			tx.finishTx()
			s.stats.Commits.Add(1)
			return nil
		}
		tx.abortAttempt()
		s.stats.Conflicts.Add(1)
		conflicts++
		backoff(attempt)
	}
	return s.txError("atomically", s.maxRetries, conflicts, ErrMaxRetries, nil)
}

// AtomicallyMulti runs fn as one transaction spanning several STM
// instances, passing it per-instance handles aligned with stms. Commit is
// two-phase: every instance prepares (commit-time locks taken, read sets
// validated), and only when all have prepared do the write sets become
// visible, so no consistent transactional reader observes a partial
// cross-instance commit. Callers that may contend on overlapping instance
// sets must pass stms in a globally consistent order (e.g. sorted by shard
// index, as internal/kv does) — instance-level locks are taken in argument
// order, and a consistent order makes the global-lock engine deadlock-free.
//
// The instances may use different engines, but the retry budget is taken
// from stms[0]. An empty stms runs fn(nil) once, transactionally vacuous.
func AtomicallyMulti(stms []*STM, fn func(txs []*Tx) error) error {
	return atomicallyMulti(nil, stms, fn)
}

// AtomicallyMultiCtx is AtomicallyMulti honoring ctx between retry
// attempts, with the same contract as AtomicallyCtx.
func AtomicallyMultiCtx(ctx context.Context, stms []*STM, fn func(txs []*Tx) error) error {
	return atomicallyMulti(ctx, stms, fn)
}

func atomicallyMulti(ctx context.Context, stms []*STM, fn func(txs []*Tx) error) error {
	if len(stms) == 0 {
		// Transactionally vacuous, but the cancellation contract still
		// holds: a canceled context fails before the body runs.
		if err := ctxErr(ctx); err != nil {
			return &TxError{Op: "atomically-multi", Err: ErrCanceled, Cause: err}
		}
		return fn(nil)
	}
	if len(stms) == 1 {
		return stms[0].atomically(ctx, func(tx *Tx) error { return fn([]*Tx{tx}) })
	}
	for i := 1; i < len(stms); i++ {
		for j := 0; j < i; j++ {
			if stms[i] == stms[j] {
				// A duplicated GlobalLock instance would self-deadlock on
				// its mutex; reject all duplicates uniformly.
				return ErrDuplicateInstance
			}
		}
	}
	txs := make([]*Tx, len(stms))
	abortAll := func() {
		// Unwind in reverse so global locks release LIFO.
		for i := len(txs) - 1; i >= 0; i-- {
			txs[i].abortAttempt()
		}
	}
	conflicts := 0
	for attempt := 0; attempt < stms[0].maxRetries; attempt++ {
		if err := ctxErr(ctx); err != nil {
			return stms[0].txError("atomically-multi", attempt, conflicts, ErrCanceled, err)
		}
		for i, s := range stms {
			txs[i] = s.begin()
		}
		err, conflicted := runMultiBody(txs, fn)
		switch {
		case conflicted:
			abortAll()
			for _, s := range stms {
				s.stats.Conflicts.Add(1)
			}
			conflicts++
			backoff(attempt)
			continue
		case err != nil:
			abortAll()
			for _, s := range stms {
				s.stats.UserAborts.Add(1)
			}
			return err
		}
		// Two-phase, whole-footprint commit: first take every instance's
		// commit-time locks, and only then validate every instance's read
		// set. Validating inside the global lock window is what makes the
		// cross-instance transaction serializable — validating per
		// instance as it prepares would admit write skew (instance A's
		// reads could be invalidated while instance B is still locking),
		// and a read-only instance must be validated here too, since its
		// begin-time snapshot may predate the commit point.
		prepared := true
		for _, tx := range txs {
			if !tx.lockWrites() {
				prepared = false
				break
			}
		}
		if prepared {
			for _, tx := range txs {
				if !tx.validateReads() {
					prepared = false
					break
				}
			}
		}
		if !prepared {
			abortAll()
			for _, s := range stms {
				s.stats.Conflicts.Add(1)
			}
			conflicts++
			backoff(attempt)
			continue
		}
		for _, tx := range txs {
			tx.commitPrepared()
		}
		for i := len(txs) - 1; i >= 0; i-- {
			txs[i].finishTx()
		}
		for _, s := range stms {
			s.stats.Commits.Add(1)
			s.stats.MultiCommits.Add(1)
		}
		return nil
	}
	return stms[0].txError("atomically-multi", stms[0].maxRetries, conflicts, ErrMaxRetries, nil)
}

// finishTx releases the engine-level resources of a resolved attempt.
func (tx *Tx) finishTx() {
	s := tx.s
	if s.engine == GlobalLock {
		<-s.glock
	}
	s.releaseSlot(tx.slotIdx)
}

// abortAttempt rolls back an attempt (releasing any prepare-phase locks)
// and finishes it.
func (tx *Tx) abortAttempt() {
	tx.releasePrepared()
	tx.rollback()
	tx.finishTx()
}

// catchConflict runs fn, converting conflict signals into a flag. Both the
// single- and multi-instance bodies funnel through it so the abort
// protocol lives in one place.
func catchConflict(fn func() error) (err error, conflicted bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(conflictSignal); ok {
				conflicted = true
				return
			}
			panic(r)
		}
	}()
	return fn(), false
}

// runBody executes fn, converting conflict signals into a flag.
func (tx *Tx) runBody(fn func(*Tx) error) (error, bool) {
	return catchConflict(func() error { return fn(tx) })
}

// runMultiBody executes fn over the attempt's handles; a conflict raised
// by any participating instance aborts the whole attempt.
func runMultiBody(txs []*Tx, fn func([]*Tx) error) (error, bool) {
	return catchConflict(func() error { return fn(txs) })
}

func backoff(attempt int) {
	switch {
	case attempt < 8:
		runtime.Gosched()
	case attempt < 20:
		time.Sleep(time.Microsecond << uint(attempt-8))
	default:
		time.Sleep(4 * time.Millisecond)
	}
}

// Read returns the transactional value of v (int64 lane).
func (tx *Tx) Read(v *Var) int64 {
	switch tx.s.engine {
	case Lazy:
		if val, ok := tx.writes[v]; ok {
			return val
		}
		for {
			m1 := v.meta.Load()
			if isLocked(m1) {
				tx.conflict()
			}
			val := v.val.Load()
			if m2 := v.meta.Load(); m1 != m2 {
				continue // torn read; retry the sample
			}
			if version(m1) > tx.rv {
				tx.conflict() // written by a transaction after our snapshot
			}
			tx.reads = append(tx.reads, readEntry{vb: &v.varBase, meta: m1})
			return val
		}
	case Eager:
		if _, mine := tx.locked[&v.varBase]; mine {
			return v.val.Load()
		}
		for {
			m1 := v.meta.Load()
			if isLocked(m1) {
				tx.conflict()
			}
			val := v.val.Load()
			if m2 := v.meta.Load(); m1 != m2 {
				continue
			}
			if version(m1) > tx.rv {
				tx.conflict()
			}
			tx.reads = append(tx.reads, readEntry{vb: &v.varBase, meta: m1})
			return val
		}
	default: // GlobalLock: the global mutex serializes transactions.
		return v.val.Load()
	}
}

// Write sets the transactional value of v (int64 lane).
func (tx *Tx) Write(v *Var, x int64) {
	switch tx.s.engine {
	case Lazy:
		if tx.writes == nil {
			tx.writes = make(map[*Var]int64, 4)
		}
		if _, seen := tx.writes[v]; !seen {
			tx.worder = append(tx.worder, v)
		}
		tx.writes[v] = x
	case Eager:
		vb := &v.varBase
		if _, mine := tx.locked[vb]; !mine {
			m, ok := vb.tryLock(tx.rv)
			if !ok {
				tx.conflict()
			}
			if tx.locked == nil {
				tx.locked = make(map[*varBase]uint64, 4)
			}
			tx.locked[vb] = m
			tx.undo = append(tx.undo, undoEntry{v: v, old: v.val.Load()})
		}
		v.val.Store(x)
	default: // GlobalLock
		tx.undo = append(tx.undo, undoEntry{v: v, old: v.val.Load()})
		v.val.Store(x)
	}
}

// readBoxed is the pointer-lane twin of Read: same sampling, validation
// and read-set protocol, moving an opaque box instead of an int64. Only
// the own-write shortcut differs per engine; the versioned sample loop is
// shared.
func (tx *Tx) readBoxed(b boxed) any {
	vb := b.base()
	switch tx.s.engine {
	case Lazy:
		if box, ok := tx.pwrites[b]; ok {
			return box
		}
	case Eager:
		if _, mine := tx.locked[vb]; mine {
			return b.loadBox()
		}
	default: // GlobalLock: the global mutex serializes transactions.
		return b.loadBox()
	}
	for {
		m1 := vb.meta.Load()
		if isLocked(m1) {
			tx.conflict()
		}
		box := b.loadBox()
		if m2 := vb.meta.Load(); m1 != m2 {
			continue // torn sample; retry
		}
		if version(m1) > tx.rv {
			tx.conflict() // written by a transaction after our snapshot
		}
		tx.reads = append(tx.reads, readEntry{vb: vb, meta: m1})
		return box
	}
}

// writeBoxed is the pointer-lane twin of Write.
func (tx *Tx) writeBoxed(b boxed, box any) {
	switch tx.s.engine {
	case Lazy:
		if tx.pwrites == nil {
			tx.pwrites = make(map[boxed]any, 4)
		}
		if _, seen := tx.pwrites[b]; !seen {
			tx.pworder = append(tx.pworder, b)
		}
		tx.pwrites[b] = box
	case Eager:
		vb := b.base()
		if _, mine := tx.locked[vb]; !mine {
			m, ok := vb.tryLock(tx.rv)
			if !ok {
				tx.conflict()
			}
			if tx.locked == nil {
				tx.locked = make(map[*varBase]uint64, 4)
			}
			tx.locked[vb] = m
			tx.pundo = append(tx.pundo, pundoEntry{b: b, old: b.loadBox()})
		}
		b.storeBox(box)
	default: // GlobalLock
		tx.pundo = append(tx.pundo, pundoEntry{b: b, old: b.loadBox()})
		b.storeBox(box)
	}
}

// Abort aborts the current attempt and makes Atomically return ErrAborted.
// Provided for symmetry with the paper's abort statement; equivalent to
// returning ErrAborted from the body.
func (tx *Tx) Abort() error { return ErrAborted }

// prepare is commit phase one for a single-instance transaction: take the
// commit-time locks on the write set and validate the read set, publishing
// nothing. After a successful prepare the transaction is guaranteed
// committable; the caller must follow with commitPrepared (or
// abortAttempt/releasePrepared to back out). On failure the caller's
// abortAttempt releases any locks taken. Multi-instance commits call
// lockWrites and validateReads separately, with a barrier between the two
// phases across instances.
func (tx *Tx) prepare() bool {
	if tx.s.engine == Lazy && len(tx.worder)+len(tx.pworder) == 0 {
		// Single-instance read-only fast path: every read was validated
		// against rv at read time, so the snapshot is consistent as of rv.
		// (Not sound for multi-instance commits, whose serialization point
		// is later than rv — they always run validateReads.)
		return true
	}
	return tx.lockWrites() && tx.validateReads()
}

// lockWrites (commit phase 1a) acquires the commit-time locks on the write
// set. Locks taken are recorded in tx.lockedMeta so releasePrepared — run
// by abortAttempt on any later failure — can restore them.
func (tx *Tx) lockWrites() bool {
	switch tx.s.engine {
	case Lazy:
		n := len(tx.worder) + len(tx.pworder)
		if n == 0 {
			return true
		}
		// Lock the combined write set of both lanes in id order to avoid
		// deadlock against concurrent committers.
		targets := make([]*varBase, 0, n)
		for _, v := range tx.worder {
			targets = append(targets, &v.varBase)
		}
		for _, b := range tx.pworder {
			targets = append(targets, b.base())
		}
		sort.Slice(targets, func(i, j int) bool { return targets[i].id < targets[j].id })
		lockedMeta := make(map[*varBase]uint64, n)
		for i, vb := range targets {
			m, ok := vb.tryLock(tx.rv)
			if !ok {
				for _, u := range targets[:i] {
					u.meta.Store(lockedMeta[u])
				}
				return false
			}
			lockedMeta[vb] = m
		}
		tx.lockedMeta = lockedMeta
		return true
	default:
		// Eager locked at encounter time; GlobalLock holds the mutex.
		return true
	}
}

// validateReads (commit phase 1b) checks the read set against the
// begin-time snapshot while the write locks are held. The read set is
// lane-agnostic: only lock words are examined.
func (tx *Tx) validateReads() bool {
	switch tx.s.engine {
	case Lazy:
		for _, re := range tx.reads {
			if mv, mine := tx.lockedMeta[re.vb]; mine {
				if version(re.meta) != version(mv) {
					return false // someone updated between our read and our lock
				}
				continue
			}
			cur := re.vb.meta.Load()
			if isLocked(cur) || version(cur) > tx.rv {
				return false
			}
		}
		return true

	case Eager:
		for _, re := range tx.reads {
			if _, mine := tx.locked[re.vb]; mine {
				continue // we hold the lock; value unchanged since read
			}
			cur := re.vb.meta.Load()
			if isLocked(cur) || version(cur) > tx.rv {
				return false
			}
		}
		return true

	default: // GlobalLock: the mutex serialized this instance.
		return true
	}
}

// commitPrepared is commit phase two: it publishes the write set and
// releases the commit-time locks with a fresh version. Only legal after a
// successful prepare.
func (tx *Tx) commitPrepared() {
	s := tx.s
	switch s.engine {
	case Lazy:
		if len(tx.worder)+len(tx.pworder) == 0 {
			return
		}
		wv := s.clock.Add(1)
		// The anomaly window of §3.5: the transaction is logically
		// committed but its buffered writes are not yet applied.
		if s.WritebackDelay != nil {
			s.WritebackDelay()
		}
		for _, v := range tx.worder {
			v.val.Store(tx.writes[v])
			v.meta.Store(wv << 1) // release with the new version
		}
		for _, b := range tx.pworder {
			b.storeBox(tx.pwrites[b])
			b.base().meta.Store(wv << 1)
		}
		tx.lockedMeta = nil

	case Eager:
		wv := s.clock.Add(1)
		for vb := range tx.locked {
			vb.meta.Store(wv << 1)
		}
		tx.locked = nil
		tx.undo = nil
		tx.pundo = nil

	default: // GlobalLock
		wv := s.clock.Add(1)
		for _, u := range tx.undo {
			u.v.meta.Store(wv << 1)
		}
		for _, u := range tx.pundo {
			u.b.base().meta.Store(wv << 1)
		}
		tx.undo = nil
		tx.pundo = nil
	}
}

// releasePrepared drops the phase-one locks without publishing, restoring
// the pre-prepare lock words. A no-op unless prepare succeeded.
func (tx *Tx) releasePrepared() {
	if tx.lockedMeta == nil {
		return
	}
	for vb, m := range tx.lockedMeta {
		vb.meta.Store(m)
	}
	tx.lockedMeta = nil
}

// rollback undoes in-place effects (eager and global-lock engines); the
// lazy engine simply drops its buffers.
func (tx *Tx) rollback() {
	s := tx.s
	switch s.engine {
	case Eager:
		if s.RollbackDelay != nil && len(tx.undo)+len(tx.pundo) > 0 {
			// The anomaly window of §3.4: speculative values are visible
			// to plain accesses until the undo log is applied.
			s.RollbackDelay()
		}
		for i := len(tx.undo) - 1; i >= 0; i-- {
			tx.undo[i].v.val.Store(tx.undo[i].old)
		}
		for i := len(tx.pundo) - 1; i >= 0; i-- {
			tx.pundo[i].b.storeBox(tx.pundo[i].old)
		}
		for vb, m := range tx.locked {
			vb.meta.Store(m) // release, version unchanged
		}
		tx.locked = nil
		tx.undo = nil
		tx.pundo = nil
	case GlobalLock:
		for i := len(tx.undo) - 1; i >= 0; i-- {
			tx.undo[i].v.val.Store(tx.undo[i].old)
		}
		for i := len(tx.pundo) - 1; i >= 0; i-- {
			tx.pundo[i].b.storeBox(tx.pundo[i].old)
		}
		tx.undo = nil
		tx.pundo = nil
	default: // Lazy: nothing was published.
		tx.reads = nil
		tx.writes = nil
		tx.worder = nil
		tx.pwrites = nil
		tx.pworder = nil
	}
}
