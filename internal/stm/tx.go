package stm

import (
	"context"
	"runtime"
	"time"
)

// Tx is the per-attempt transaction handle passed to Atomically bodies.
// It must not escape the body or be used concurrently: resolved handles
// are pooled and reused by later transactions of the same STM instance,
// so a leaked Tx aliases somebody else's attempt state.
//
// Tx owns the attempt state shared by every engine — the read set, the
// two write lanes (inline int64 for Var, opaque boxes for TVar[T]), the
// undo logs and the lock tables; the selected engine is the strategy
// that moves values through that state. Which fields are live depends on
// the engine: the lazy family buffers writes, the eager and global-lock
// engines write in place behind undo logs.
//
// All per-attempt collections are insertion-ordered slices sized for the
// common small footprint: lookups linear-scan up to writeSetSpill
// entries and spill to a map index beyond that, and reset retains the
// slices' capacity across reuses, so the steady-state hot path performs
// no heap allocation at all.
type Tx struct {
	s       *STM
	e       engine // the instance's strategy, cached for dispatch
	del     engine // adaptive engine's delegate, pinned per attempt at begin
	rv      uint64 // read version (TL2 snapshot)
	slotIdx int    // quiescence slot held for the attempt's lifetime

	// Read set, shared by both lanes (validation is meta-only). nreads
	// counts every sampled read, including invisible ones that skip the
	// read set (see engine.invisibleReadOnly and Tx.extendSnapshot).
	reads  []readEntry
	nreads int

	// readOnly marks attempts driven by AtomicallyRead (the body cannot
	// write); noReadSet additionally marks single-instance read-only
	// attempts on engines with invisible reads.
	readOnly  bool
	noReadSet bool

	// Lazy-family write sets: insertion-ordered entries (the slice is
	// the write order) with a map index spill for large transactions.
	writes  []wEntry      // int64 lane
	windex  map[*Var]int  // spill: var -> index into writes
	pwrites []pEntry      // pointer lane (pending boxes)
	pindex  map[boxed]int // spill: box -> index into pwrites

	// Commit-time lock state while prepared, sorted by variable id (the
	// deterministic lock order); meta holds the pre-lock word for
	// restoration on abort.
	lockedMeta []lockedEntry

	// Eager and global-lock engines.
	undo   []undoEntry      // int64 lane
	pundo  []pundoEntry     // pointer lane
	locked []lockedEntry    // encounter-time locks, insertion order
	lindex map[*varBase]int // spill: var -> index into locked

	// Conflict attribution, consumed by the parking retry loops: the
	// variable (and the word observed on it) whose lock raised the
	// conflict, so the waiter can park on it even though it never joined
	// the read set — or conflictChanged, meaning the conflict itself
	// proved the world moved (too-new version, torn CAS) and the attempt
	// should retry immediately instead of parking.
	conflictVB      *varBase
	conflictMeta    uint64
	conflictChanged bool

	// tapData is the attempt's commit-tap payload (see SetTapData);
	// attempt-scoped: cleared on reset and consumed by commitPrepared.
	tapData any

	// rtx is the read-only view handed to AtomicallyRead bodies; it
	// points back at this Tx so no per-attempt wrapper is allocated.
	rtx ReadTx

	// mTick is the latency-sampling tick (see Tx.nextSample). It is
	// deliberately NOT cleared by reset: surviving pool round-trips is
	// what lets each pooled handle carry an even 1-in-N sample stream
	// without a shared atomic counter.
	mTick uint64
}

type readEntry struct {
	vb   *varBase
	meta uint64
}

type wEntry struct {
	v   *Var
	val int64
}

type pEntry struct {
	b   boxed
	box any
}

type lockedEntry struct {
	vb   *varBase
	meta uint64 // pre-lock word, restored on abort
}

type undoEntry struct {
	v   *Var
	old int64
}

type pundoEntry struct {
	b   boxed
	old any
}

// writeSetSpill is the footprint size beyond which the linear-scan
// write sets and lock tables build a map index. Up to this size a scan
// over a contiguous slice beats map hashing; past it the map wins.
const writeSetSpill = 16

// lookupWrite returns the buffered int64-lane value of v, if any.
func (tx *Tx) lookupWrite(v *Var) (int64, bool) {
	if tx.windex != nil {
		if i, ok := tx.windex[v]; ok {
			return tx.writes[i].val, true
		}
		return 0, false
	}
	for i := range tx.writes {
		if tx.writes[i].v == v {
			return tx.writes[i].val, true
		}
	}
	return 0, false
}

// putWrite buffers an int64-lane write, preserving first-write order.
func (tx *Tx) putWrite(v *Var, x int64) {
	if tx.windex != nil {
		if i, ok := tx.windex[v]; ok {
			tx.writes[i].val = x
			return
		}
	} else {
		for i := range tx.writes {
			if tx.writes[i].v == v {
				tx.writes[i].val = x
				return
			}
		}
	}
	tx.writes = append(tx.writes, wEntry{v: v, val: x})
	if tx.windex != nil {
		tx.windex[v] = len(tx.writes) - 1
	} else if len(tx.writes) > writeSetSpill {
		tx.windex = make(map[*Var]int, 2*writeSetSpill)
		for i := range tx.writes {
			tx.windex[tx.writes[i].v] = i
		}
	}
}

// lookupPWrite returns the buffered pointer-lane box of b, if any.
func (tx *Tx) lookupPWrite(b boxed) (any, bool) {
	if tx.pindex != nil {
		if i, ok := tx.pindex[b]; ok {
			return tx.pwrites[i].box, true
		}
		return nil, false
	}
	for i := range tx.pwrites {
		if tx.pwrites[i].b == b {
			return tx.pwrites[i].box, true
		}
	}
	return nil, false
}

// putPWrite buffers a pointer-lane write, preserving first-write order.
func (tx *Tx) putPWrite(b boxed, box any) {
	if tx.pindex != nil {
		if i, ok := tx.pindex[b]; ok {
			tx.pwrites[i].box = box
			return
		}
	} else {
		for i := range tx.pwrites {
			if tx.pwrites[i].b == b {
				tx.pwrites[i].box = box
				return
			}
		}
	}
	tx.pwrites = append(tx.pwrites, pEntry{b: b, box: box})
	if tx.pindex != nil {
		tx.pindex[b] = len(tx.pwrites) - 1
	} else if len(tx.pwrites) > writeSetSpill {
		tx.pindex = make(map[boxed]int, 2*writeSetSpill)
		for i := range tx.pwrites {
			tx.pindex[tx.pwrites[i].b] = i
		}
	}
}

// ownsLock reports whether this transaction holds vb's encounter-time
// lock (eager engine).
func (tx *Tx) ownsLock(vb *varBase) bool {
	if tx.lindex != nil {
		_, ok := tx.lindex[vb]
		return ok
	}
	for i := range tx.locked {
		if tx.locked[i].vb == vb {
			return true
		}
	}
	return false
}

// addLocked records an encounter-time lock and its pre-lock word.
func (tx *Tx) addLocked(vb *varBase, meta uint64) {
	tx.locked = append(tx.locked, lockedEntry{vb: vb, meta: meta})
	if tx.lindex != nil {
		tx.lindex[vb] = len(tx.locked) - 1
	} else if len(tx.locked) > writeSetSpill {
		tx.lindex = make(map[*varBase]int, 2*writeSetSpill)
		for i := range tx.locked {
			tx.lindex[tx.locked[i].vb] = i
		}
	}
}

// lockedMetaFor returns the pre-lock word recorded for vb by a
// successful lockWrites, if this transaction locked it. lockedMeta is
// sorted by id (the deterministic lock order), so membership is a
// binary search.
func (tx *Tx) lockedMetaFor(vb *varBase) (uint64, bool) {
	lm := tx.lockedMeta
	lo, hi := 0, len(lm)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if lm[mid].vb.id < vb.id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(lm) && lm[lo].vb == vb {
		return lm[lo].meta, true
	}
	return 0, false
}

// reset clears the attempt state for reuse, retaining the capacity of
// every slice (reads, writes, pwrites, lockedMeta, undo, pundo, locked)
// so steady-state transactions never re-grow them. Elements are zeroed
// before truncation so the pooled Tx does not pin dead variables. The
// rare spill indexes are dropped: small transactions must not pay the
// map path just because one large transaction came through earlier.
func (tx *Tx) reset() {
	clear(tx.reads)
	tx.reads = tx.reads[:0]
	tx.nreads = 0
	tx.readOnly, tx.noReadSet = false, false
	clear(tx.writes)
	tx.writes = tx.writes[:0]
	tx.windex = nil
	clear(tx.pwrites)
	tx.pwrites = tx.pwrites[:0]
	tx.pindex = nil
	clear(tx.lockedMeta)
	tx.lockedMeta = tx.lockedMeta[:0]
	clear(tx.undo)
	tx.undo = tx.undo[:0]
	clear(tx.pundo)
	tx.pundo = tx.pundo[:0]
	clear(tx.locked)
	tx.locked = tx.locked[:0]
	tx.lindex = nil
	tx.rv = 0
	tx.conflictVB, tx.conflictMeta, tx.conflictChanged = nil, 0, false
	tx.tapData = nil
}

// SetTapData attaches an opaque payload to the current attempt, handed
// to the instance's commit tap (STM.SetCommitTap) if and only if this
// attempt commits. The payload is attempt-scoped: an aborted or
// conflicted attempt drops it, so a retried body must re-attach on
// re-execution. Attempts that attach nothing skip the tap entirely —
// the disabled path costs one nil check at commit.
func (tx *Tx) SetTapData(d any) { tx.tapData = d }

// conflictSignal aborts the current attempt; Atomically recovers it.
type conflictSignal struct{}

// blockSignal aborts the current attempt and parks the transaction on
// its footprint; Tx.Block raises it.
type blockSignal struct{}

func (tx *Tx) conflict() {
	panic(conflictSignal{})
}

// conflictOn aborts the attempt attributing the conflict to vb, observed
// locked (or otherwise busy) with the word meta: the retry loop can park
// on vb and be woken by the commit that releases it. The contention
// table records the same attribution.
func (tx *Tx) conflictOn(vb *varBase, meta uint64) {
	tx.conflictVB, tx.conflictMeta = vb, meta
	noteContention(vb)
	panic(conflictSignal{})
}

// conflictRetryNow aborts the attempt marking the world as already
// changed (a too-new version, a torn CAS): the retry loop re-runs
// immediately instead of parking, because the next attempt's fresh
// snapshot will observe the new state.
func (tx *Tx) conflictRetryNow() {
	tx.conflictChanged = true
	panic(conflictSignal{})
}

// Retry aborts the current attempt and re-runs the transaction from the
// beginning (counted as a conflict; prompt for the first few attempts,
// then under the bounded fallback). Use it when the body observes state
// that a concurrent actor is about to change outside the transactional
// world — e.g. a tombstoned entry whose table removal is in flight — and
// the only correct move is to start over against fresh state. To wait
// for transactional state to change, use Block instead. It never
// returns.
func (tx *Tx) Retry() {
	tx.conflict()
}

// Block aborts the current attempt and parks the transaction until a
// variable it has read (its footprint: the read set, plus any write
// targets) is changed by another commit, at which point the body re-runs
// from the beginning against fresh state. This is the composable
// blocking primitive of the transactional API — the body expresses only
// the condition ("queue empty, so block"), and the commit-notification
// subsystem supplies the wakeup, with no polling and no lost wakeups
// (the footprint is registered and revalidated before parking). A
// blocked attempt consumes no retry budget and no measurable CPU while
// parked; cancel it with the context of AtomicallyCtx. It never returns.
func (tx *Tx) Block() {
	panic(blockSignal{})
}

// begin opens an unmanaged transaction attempt: it takes a pooled (or
// fresh) Tx, registers the quiescence slot and hands the engine its
// begin hook (which snapshots the read version and, for the global-lock
// engine, takes the instance mutex). The caller owns the attempt's
// lifecycle and must end it with finishTx (after commitPrepared) or
// abortAttempt; both return the Tx to the pool.
func (s *STM) begin() *Tx {
	slotIdx, _ := s.acquireSlot()
	tx := s.txPool.Get().(*Tx)
	tx.slotIdx = slotIdx
	tx.e.begin(tx)
	return tx
}

// ctxErr returns the context's error if the context is cancelable and
// done; a nil context means "no cancellation" and costs nothing.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// Atomically runs fn as a transaction, retrying on conflicts until commit
// or the retry budget is exhausted. If fn returns ErrAborted the
// transaction is rolled back and ErrAborted is returned; any other
// non-nil error also rolls back and is returned verbatim (the transaction
// takes no effect). Budget exhaustion returns a *TxError wrapping
// ErrMaxRetries.
func (s *STM) Atomically(fn func(*Tx) error) error {
	return s.atomically(nil, fn)
}

// AtomicallyCtx is Atomically honoring ctx between retry attempts and
// during backoff sleeps: when the context is canceled or its deadline
// passes, the call stops retrying and returns a *TxError wrapping
// ErrCanceled and the context's error. An attempt already executing is
// never interrupted mid-body, so a nil return still means exactly one
// committed execution of fn.
func (s *STM) AtomicallyCtx(ctx context.Context, fn func(*Tx) error) error {
	return s.atomically(ctx, fn)
}

func (s *STM) atomically(ctx context.Context, fn func(*Tx) error) error {
	conflicts, parks := 0, 0
	m := s.metrics
	var t0 time.Time
	sampled, first := false, true
	for attempt := 0; attempt < s.maxRetries; {
		if err := ctxErr(ctx); err != nil {
			return s.txError("atomically", attempt, conflicts, ErrCanceled, err)
		}
		tx := s.begin()
		if first {
			// The sampling decision is made once per call, on the first
			// attempt's pooled handle; retries reuse it.
			first = false
			if m != nil && tx.nextSample() {
				sampled = true
				t0 = time.Now()
			}
		}
		err, st := tx.runBody(fn)
		switch st {
		case txBlocked:
			// An explicit Block consumes no retry budget: a long-lived
			// waiter may legitimately park thousands of times.
			w := s.newWaiter()
			w.captureTx(tx)
			tx.abortAttempt()
			s.parkBlocked(ctx, w, parks)
			parks++
			continue
		case txConflicted:
			attempt = s.conflictedAttempt(ctx, tx, attempt)
			conflicts++
			continue
		}
		if err != nil {
			tx.abortAttempt()
			s.stats.UserAborts.Add(1)
			return err
		}
		if tx.prepare() {
			tx.commitPrepared()
			tx.finishTx()
			s.stats.Commits.Add(1)
			if sampled {
				m.CommitNs.Observe(time.Since(t0).Nanoseconds())
				m.Attempts.Observe(int64(conflicts) + 1)
			}
			return nil
		}
		attempt = s.conflictedAttempt(ctx, tx, attempt)
		conflicts++
	}
	return s.txError("atomically", s.maxRetries, conflicts, ErrMaxRetries, nil)
}

// AtomicallyMulti runs fn as one transaction spanning several STM
// instances, passing it per-instance handles aligned with stms. Commit is
// two-phase: every instance prepares (commit-time locks taken, read sets
// validated), and only when all have prepared do the write sets become
// visible, so no consistent transactional reader observes a partial
// cross-instance commit. Callers that may contend on overlapping instance
// sets must pass stms in a globally consistent order (e.g. sorted by shard
// index, as internal/kv does) — instance-level locks are taken in argument
// order, and a consistent order makes the global-lock engine deadlock-free.
//
// The instances may use different engines, but the retry budget is taken
// from stms[0]. An empty stms runs fn(nil) once, transactionally vacuous.
func AtomicallyMulti(stms []*STM, fn func(txs []*Tx) error) error {
	return atomicallyMulti(nil, stms, fn)
}

// AtomicallyMultiCtx is AtomicallyMulti honoring ctx between retry
// attempts, with the same contract as AtomicallyCtx.
func AtomicallyMultiCtx(ctx context.Context, stms []*STM, fn func(txs []*Tx) error) error {
	return atomicallyMulti(ctx, stms, fn)
}

// rejectDuplicates guards the multi-instance entry points: a duplicated
// GlobalLock instance would self-deadlock on its mutex, so all
// duplicates are rejected uniformly.
func rejectDuplicates(stms []*STM) error {
	for i := 1; i < len(stms); i++ {
		for j := 0; j < i; j++ {
			if stms[i] == stms[j] {
				return ErrDuplicateInstance
			}
		}
	}
	return nil
}

// abortAllTx unwinds a multi-instance attempt in reverse so global locks
// release LIFO.
func abortAllTx(txs []*Tx) {
	for i := len(txs) - 1; i >= 0; i-- {
		txs[i].abortAttempt()
	}
}

func atomicallyMulti(ctx context.Context, stms []*STM, fn func(txs []*Tx) error) error {
	if len(stms) == 0 {
		// Transactionally vacuous, but the cancellation contract still
		// holds: a canceled context fails before the body runs.
		if err := ctxErr(ctx); err != nil {
			return &TxError{Op: "atomically-multi", Err: ErrCanceled, Cause: err}
		}
		return fn(nil)
	}
	if len(stms) == 1 {
		// One handle-slice per call, not per attempt.
		var one [1]*Tx
		return stms[0].atomically(ctx, func(tx *Tx) error {
			one[0] = tx
			return fn(one[:])
		})
	}
	if err := rejectDuplicates(stms); err != nil {
		return err
	}
	txs := make([]*Tx, len(stms))
	conflicts, parks := 0, 0
	m := stms[0].metrics // multi commits account to the lead instance
	var t0 time.Time
	sampled, first := false, true
	for attempt := 0; attempt < stms[0].maxRetries; {
		if err := ctxErr(ctx); err != nil {
			return stms[0].txError("atomically-multi", attempt, conflicts, ErrCanceled, err)
		}
		for i, s := range stms {
			txs[i] = s.begin()
		}
		if first {
			first = false
			if m != nil && txs[0].nextSample() {
				sampled = true
				t0 = time.Now()
			}
		}
		err, st := runMultiBody(txs, fn)
		switch {
		case st == txBlocked:
			w := stms[0].newWaiter()
			for _, tx := range txs {
				w.captureTx(tx)
			}
			abortAllTx(txs)
			stms[0].parkBlocked(ctx, w, parks)
			parks++
			continue
		case st == txConflicted:
			w, changed := captureConflictMulti(stms[0], txs, attempt)
			abortAllTx(txs)
			for _, s := range stms {
				s.stats.Conflicts.Add(1)
			}
			conflicts++
			attempt++
			stms[0].afterConflict(ctx, w, changed, attempt)
			continue
		case err != nil:
			abortAllTx(txs)
			for _, s := range stms {
				s.stats.UserAborts.Add(1)
			}
			return err
		}
		// Two-phase, whole-footprint commit: first take every instance's
		// commit-time locks, and only then validate every instance's read
		// set. Validating inside the global lock window is what makes the
		// cross-instance transaction serializable — validating per
		// instance as it prepares would admit write skew (instance A's
		// reads could be invalidated while instance B is still locking),
		// and a read-only instance must be validated here too, since its
		// begin-time snapshot may predate the commit point.
		prepared := true
		for _, tx := range txs {
			if !tx.lockWrites() {
				prepared = false
				break
			}
		}
		if prepared {
			for _, tx := range txs {
				if !tx.validateReads() {
					prepared = false
					break
				}
			}
		}
		if !prepared {
			w, changed := captureConflictMulti(stms[0], txs, attempt)
			abortAllTx(txs)
			for _, s := range stms {
				s.stats.Conflicts.Add(1)
			}
			conflicts++
			attempt++
			stms[0].afterConflict(ctx, w, changed, attempt)
			continue
		}
		for _, tx := range txs {
			tx.commitPrepared()
		}
		for i := len(txs) - 1; i >= 0; i-- {
			txs[i].finishTx()
		}
		for _, s := range stms {
			s.stats.Commits.Add(1)
			s.stats.MultiCommits.Add(1)
		}
		if sampled {
			m.CommitNs.Observe(time.Since(t0).Nanoseconds())
			m.Attempts.Observe(int64(conflicts) + 1)
		}
		return nil
	}
	return stms[0].txError("atomically-multi", stms[0].maxRetries, conflicts, ErrMaxRetries, nil)
}

// finishTx releases the engine-level resources of a resolved attempt and
// returns the Tx to the instance pool. The handle must not be used after
// this call.
func (tx *Tx) finishTx() {
	tx.e.finish(tx)
	tx.s.releaseSlot(tx.slotIdx)
	tx.reset()
	tx.s.txPool.Put(tx)
}

// abortAttempt rolls back an attempt (releasing any prepare-phase locks)
// and finishes it.
func (tx *Tx) abortAttempt() {
	tx.releasePrepared()
	tx.e.rollback(tx)
	tx.finishTx()
}

// txStatus is how a body attempt resolved: ran to completion, aborted
// by a conflict signal, or parked itself with Tx.Block.
type txStatus int

const (
	txRan txStatus = iota
	txConflicted
	txBlocked
)

// recoverSignal is the deferred half of the body runners: it converts a
// conflict or block signal into a status and re-raises anything else.
// Keeping it a named function (rather than a closure) lets every attempt
// run without allocating.
func recoverSignal(st *txStatus) {
	switch r := recover(); r.(type) {
	case nil:
	case conflictSignal:
		*st = txConflicted
	case blockSignal:
		*st = txBlocked
	default:
		panic(r)
	}
}

// runBody executes fn, converting conflict and block signals into a
// status.
func (tx *Tx) runBody(fn func(*Tx) error) (err error, st txStatus) {
	defer recoverSignal(&st)
	return fn(tx), txRan
}

// runReadBody executes a read-only body against the Tx's embedded
// ReadTx view.
func (tx *Tx) runReadBody(fn func(*ReadTx) error) (err error, st txStatus) {
	defer recoverSignal(&st)
	return fn(&tx.rtx), txRan
}

// runMultiBody executes fn over the attempt's handles; a conflict raised
// by any participating instance aborts the whole attempt.
func runMultiBody(txs []*Tx, fn func([]*Tx) error) (err error, st txStatus) {
	defer recoverSignal(&st)
	return fn(txs), txRan
}

// runReadMultiBody is runMultiBody for read-only views.
func runReadMultiBody(rtxs []*ReadTx, fn func([]*ReadTx) error) (err error, st txStatus) {
	defer recoverSignal(&st)
	return fn(rtxs), txRan
}

// backoff yields (early attempts) or sleeps (persistent conflicts)
// before the next attempt — the pre-notification pause, surviving only
// as the fallback for attempts with nothing to park on (empty
// footprints) and as the duration schedule of conflictFallback. spin is
// the instance's current spin-before-park budget (see adapt.go): below
// it the backoff only yields, above it the sleep doubles from 1µs to a
// 4ms ceiling. A sleeping backoff selects on ctx so cancellation aborts
// the wait promptly instead of burning the full ceiling; the caller's
// loop then surfaces ErrCanceled.
func backoff(ctx context.Context, attempt, spin int) {
	if attempt < spin {
		runtime.Gosched()
		return
	}
	shift := attempt - spin
	if shift > 12 {
		shift = 12 // cap the schedule at ~4ms
	}
	d := time.Microsecond << uint(shift)
	if ctx == nil {
		time.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// Read returns the transactional value of v (int64 lane).
func (tx *Tx) Read(v *Var) int64 { return tx.e.read(tx, v) }

// Write sets the transactional value of v (int64 lane).
func (tx *Tx) Write(v *Var, x int64) { tx.e.write(tx, v, x) }

// readBoxed is the pointer-lane twin of Read: same sampling, validation
// and read-set protocol, moving an opaque box instead of an int64. The
// typed wrappers ReadT and WriteT do the only casts.
func (tx *Tx) readBoxed(b boxed) any { return tx.e.readBoxed(tx, b) }

// writeBoxed is the pointer-lane twin of Write.
func (tx *Tx) writeBoxed(b boxed, box any) { tx.e.writeBoxed(tx, b, box) }

// Abort aborts the current attempt and makes Atomically return ErrAborted.
// Provided for symmetry with the paper's abort statement; equivalent to
// returning ErrAborted from the body.
func (tx *Tx) Abort() error { return ErrAborted }

// prepare is commit phase one for a single-instance transaction; see
// engine.prepare. Multi-instance commits call lockWrites and
// validateReads separately, with a barrier between the two phases across
// instances.
func (tx *Tx) prepare() bool { return tx.e.prepare(tx) }

// lockWrites is commit phase 1a; see engine.lockWrites.
func (tx *Tx) lockWrites() bool { return tx.e.lockWrites(tx) }

// validateReads is commit phase 1b; see engine.validateReads.
func (tx *Tx) validateReads() bool { return tx.e.validateReads(tx) }

// commitPrepared is commit phase two: it publishes the write set and
// releases the commit-time locks with a fresh version; once the new
// version words are visible it announces the written variables to the
// instance's waiter table (skipped entirely — one atomic load — while no
// transaction is parked).
//
// The commit tap runs first, while the commit-time locks are still
// held: the attempt is at its serialization point (guaranteed to
// commit, not yet visible), so conflicting commits invoke the tap in
// serialization order — see STM.SetCommitTap.
func (tx *Tx) commitPrepared() {
	if tx.tapData != nil {
		if tap := tx.s.commitTap.Load(); tap != nil {
			(*tap)(tx.tapData)
		}
		tx.tapData = nil
	}
	tx.e.commit(tx)
	if tx.s.waiters.active.Load() != 0 {
		tx.e.wakeSet(tx, wakeVarBase)
	}
}

// releasePrepared drops the phase-one locks without publishing, restoring
// the pre-prepare lock words. A no-op unless lockWrites succeeded (commit
// truncates the table, and a failed lockWrites restores its own prefix).
func (tx *Tx) releasePrepared() {
	for i := range tx.lockedMeta {
		tx.lockedMeta[i].vb.meta.Store(tx.lockedMeta[i].meta)
	}
	clear(tx.lockedMeta)
	tx.lockedMeta = tx.lockedMeta[:0]
}
