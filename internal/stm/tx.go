package stm

import (
	"context"
	"runtime"
	"time"
)

// Tx is the per-attempt transaction handle passed to Atomically bodies.
// It must not escape the body or be used concurrently.
//
// Tx owns the attempt state shared by every engine — the read set, the
// two write lanes (inline int64 for Var, opaque boxes for TVar[T]), the
// undo logs and the lock tables; the selected engine is the strategy
// that moves values through that state. Which fields are live depends on
// the engine: the lazy family buffers writes, the eager and global-lock
// engines write in place behind undo logs.
type Tx struct {
	s       *STM
	e       engine // the instance's strategy, cached for dispatch
	rv      uint64 // read version (TL2 snapshot)
	slotIdx int    // quiescence slot held for the attempt's lifetime

	// Read set, shared by both lanes (validation is meta-only). nreads
	// counts every sampled read, including invisible ones that skip the
	// read set (see engine.invisibleReadOnly and Tx.extendSnapshot).
	reads  []readEntry
	nreads int

	// readOnly marks attempts driven by AtomicallyRead (the body cannot
	// write); noReadSet additionally marks single-instance read-only
	// attempts on engines with invisible reads.
	readOnly  bool
	noReadSet bool

	// Lazy-family write sets.
	writes     map[*Var]int64      // int64 lane
	worder     []*Var              // int64 lane write order
	pwrites    map[boxed]any       // pointer lane (pending boxes)
	pworder    []boxed             // pointer lane write order
	lockedMeta map[*varBase]uint64 // commit-time lock state while prepared

	// Eager and global-lock engines.
	undo   []undoEntry         // int64 lane
	pundo  []pundoEntry        // pointer lane
	locked map[*varBase]uint64 // var -> meta observed before locking
}

type readEntry struct {
	vb   *varBase
	meta uint64
}

type undoEntry struct {
	v   *Var
	old int64
}

type pundoEntry struct {
	b   boxed
	old any
}

// conflictSignal aborts the current attempt; Atomically recovers it.
type conflictSignal struct{}

func (tx *Tx) conflict() {
	panic(conflictSignal{})
}

// Retry aborts the current attempt and re-runs the transaction from the
// beginning (counted as a conflict, with the usual backoff). Use it when
// the body observes state that a concurrent transaction is about to
// change — e.g. a tombstoned entry whose removal is in flight — and the
// only correct move is to start over against fresh state. It never
// returns.
func (tx *Tx) Retry() {
	tx.conflict()
}

// begin opens an unmanaged transaction attempt: it registers the
// quiescence slot and hands the engine its begin hook (which snapshots
// the read version and, for the global-lock engine, takes the instance
// mutex). The caller owns the attempt's lifecycle and must end it with
// finishTx (after commitPrepared) or abortAttempt.
func (s *STM) begin() *Tx {
	slotIdx, _ := s.acquireSlot()
	tx := &Tx{s: s, e: s.eng, slotIdx: slotIdx}
	tx.e.begin(tx)
	return tx
}

// ctxErr returns the context's error if the context is cancelable and
// done; a nil context means "no cancellation" and costs nothing.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// Atomically runs fn as a transaction, retrying on conflicts until commit
// or the retry budget is exhausted. If fn returns ErrAborted the
// transaction is rolled back and ErrAborted is returned; any other
// non-nil error also rolls back and is returned verbatim (the transaction
// takes no effect). Budget exhaustion returns a *TxError wrapping
// ErrMaxRetries.
func (s *STM) Atomically(fn func(*Tx) error) error {
	return s.atomically(nil, fn)
}

// AtomicallyCtx is Atomically honoring ctx between retry attempts: when
// the context is canceled or its deadline passes, the call stops retrying
// and returns a *TxError wrapping ErrCanceled and the context's error.
// An attempt already executing is never interrupted mid-body, so a nil
// return still means exactly one committed execution of fn.
func (s *STM) AtomicallyCtx(ctx context.Context, fn func(*Tx) error) error {
	return s.atomically(ctx, fn)
}

func (s *STM) atomically(ctx context.Context, fn func(*Tx) error) error {
	conflicts := 0
	for attempt := 0; attempt < s.maxRetries; attempt++ {
		if err := ctxErr(ctx); err != nil {
			return s.txError("atomically", attempt, conflicts, ErrCanceled, err)
		}
		tx := s.begin()
		err, conflicted := tx.runBody(fn)
		switch {
		case conflicted:
			tx.abortAttempt()
			s.stats.Conflicts.Add(1)
			conflicts++
			backoff(attempt)
			continue
		case err != nil:
			tx.abortAttempt()
			s.stats.UserAborts.Add(1)
			return err
		}
		if tx.prepare() {
			tx.commitPrepared()
			tx.finishTx()
			s.stats.Commits.Add(1)
			return nil
		}
		tx.abortAttempt()
		s.stats.Conflicts.Add(1)
		conflicts++
		backoff(attempt)
	}
	return s.txError("atomically", s.maxRetries, conflicts, ErrMaxRetries, nil)
}

// AtomicallyMulti runs fn as one transaction spanning several STM
// instances, passing it per-instance handles aligned with stms. Commit is
// two-phase: every instance prepares (commit-time locks taken, read sets
// validated), and only when all have prepared do the write sets become
// visible, so no consistent transactional reader observes a partial
// cross-instance commit. Callers that may contend on overlapping instance
// sets must pass stms in a globally consistent order (e.g. sorted by shard
// index, as internal/kv does) — instance-level locks are taken in argument
// order, and a consistent order makes the global-lock engine deadlock-free.
//
// The instances may use different engines, but the retry budget is taken
// from stms[0]. An empty stms runs fn(nil) once, transactionally vacuous.
func AtomicallyMulti(stms []*STM, fn func(txs []*Tx) error) error {
	return atomicallyMulti(nil, stms, fn)
}

// AtomicallyMultiCtx is AtomicallyMulti honoring ctx between retry
// attempts, with the same contract as AtomicallyCtx.
func AtomicallyMultiCtx(ctx context.Context, stms []*STM, fn func(txs []*Tx) error) error {
	return atomicallyMulti(ctx, stms, fn)
}

// rejectDuplicates guards the multi-instance entry points: a duplicated
// GlobalLock instance would self-deadlock on its mutex, so all
// duplicates are rejected uniformly.
func rejectDuplicates(stms []*STM) error {
	for i := 1; i < len(stms); i++ {
		for j := 0; j < i; j++ {
			if stms[i] == stms[j] {
				return ErrDuplicateInstance
			}
		}
	}
	return nil
}

func atomicallyMulti(ctx context.Context, stms []*STM, fn func(txs []*Tx) error) error {
	if len(stms) == 0 {
		// Transactionally vacuous, but the cancellation contract still
		// holds: a canceled context fails before the body runs.
		if err := ctxErr(ctx); err != nil {
			return &TxError{Op: "atomically-multi", Err: ErrCanceled, Cause: err}
		}
		return fn(nil)
	}
	if len(stms) == 1 {
		return stms[0].atomically(ctx, func(tx *Tx) error { return fn([]*Tx{tx}) })
	}
	if err := rejectDuplicates(stms); err != nil {
		return err
	}
	txs := make([]*Tx, len(stms))
	abortAll := func() {
		// Unwind in reverse so global locks release LIFO.
		for i := len(txs) - 1; i >= 0; i-- {
			txs[i].abortAttempt()
		}
	}
	conflicts := 0
	for attempt := 0; attempt < stms[0].maxRetries; attempt++ {
		if err := ctxErr(ctx); err != nil {
			return stms[0].txError("atomically-multi", attempt, conflicts, ErrCanceled, err)
		}
		for i, s := range stms {
			txs[i] = s.begin()
		}
		err, conflicted := runMultiBody(txs, fn)
		switch {
		case conflicted:
			abortAll()
			for _, s := range stms {
				s.stats.Conflicts.Add(1)
			}
			conflicts++
			backoff(attempt)
			continue
		case err != nil:
			abortAll()
			for _, s := range stms {
				s.stats.UserAborts.Add(1)
			}
			return err
		}
		// Two-phase, whole-footprint commit: first take every instance's
		// commit-time locks, and only then validate every instance's read
		// set. Validating inside the global lock window is what makes the
		// cross-instance transaction serializable — validating per
		// instance as it prepares would admit write skew (instance A's
		// reads could be invalidated while instance B is still locking),
		// and a read-only instance must be validated here too, since its
		// begin-time snapshot may predate the commit point.
		prepared := true
		for _, tx := range txs {
			if !tx.lockWrites() {
				prepared = false
				break
			}
		}
		if prepared {
			for _, tx := range txs {
				if !tx.validateReads() {
					prepared = false
					break
				}
			}
		}
		if !prepared {
			abortAll()
			for _, s := range stms {
				s.stats.Conflicts.Add(1)
			}
			conflicts++
			backoff(attempt)
			continue
		}
		for _, tx := range txs {
			tx.commitPrepared()
		}
		for i := len(txs) - 1; i >= 0; i-- {
			txs[i].finishTx()
		}
		for _, s := range stms {
			s.stats.Commits.Add(1)
			s.stats.MultiCommits.Add(1)
		}
		return nil
	}
	return stms[0].txError("atomically-multi", stms[0].maxRetries, conflicts, ErrMaxRetries, nil)
}

// finishTx releases the engine-level resources of a resolved attempt.
func (tx *Tx) finishTx() {
	tx.e.finish(tx)
	tx.s.releaseSlot(tx.slotIdx)
}

// abortAttempt rolls back an attempt (releasing any prepare-phase locks)
// and finishes it.
func (tx *Tx) abortAttempt() {
	tx.releasePrepared()
	tx.e.rollback(tx)
	tx.finishTx()
}

// catchConflict runs fn, converting conflict signals into a flag. Both the
// single- and multi-instance bodies funnel through it so the abort
// protocol lives in one place.
func catchConflict(fn func() error) (err error, conflicted bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(conflictSignal); ok {
				conflicted = true
				return
			}
			panic(r)
		}
	}()
	return fn(), false
}

// runBody executes fn, converting conflict signals into a flag.
func (tx *Tx) runBody(fn func(*Tx) error) (error, bool) {
	return catchConflict(func() error { return fn(tx) })
}

// runMultiBody executes fn over the attempt's handles; a conflict raised
// by any participating instance aborts the whole attempt.
func runMultiBody(txs []*Tx, fn func([]*Tx) error) (error, bool) {
	return catchConflict(func() error { return fn(txs) })
}

func backoff(attempt int) {
	switch {
	case attempt < 8:
		runtime.Gosched()
	case attempt < 20:
		time.Sleep(time.Microsecond << uint(attempt-8))
	default:
		time.Sleep(4 * time.Millisecond)
	}
}

// Read returns the transactional value of v (int64 lane).
func (tx *Tx) Read(v *Var) int64 { return tx.e.read(tx, v) }

// Write sets the transactional value of v (int64 lane).
func (tx *Tx) Write(v *Var, x int64) { tx.e.write(tx, v, x) }

// readBoxed is the pointer-lane twin of Read: same sampling, validation
// and read-set protocol, moving an opaque box instead of an int64. The
// typed wrappers ReadT and WriteT do the only casts.
func (tx *Tx) readBoxed(b boxed) any { return tx.e.readBoxed(tx, b) }

// writeBoxed is the pointer-lane twin of Write.
func (tx *Tx) writeBoxed(b boxed, box any) { tx.e.writeBoxed(tx, b, box) }

// Abort aborts the current attempt and makes Atomically return ErrAborted.
// Provided for symmetry with the paper's abort statement; equivalent to
// returning ErrAborted from the body.
func (tx *Tx) Abort() error { return ErrAborted }

// prepare is commit phase one for a single-instance transaction; see
// engine.prepare. Multi-instance commits call lockWrites and
// validateReads separately, with a barrier between the two phases across
// instances.
func (tx *Tx) prepare() bool { return tx.e.prepare(tx) }

// lockWrites is commit phase 1a; see engine.lockWrites.
func (tx *Tx) lockWrites() bool { return tx.e.lockWrites(tx) }

// validateReads is commit phase 1b; see engine.validateReads.
func (tx *Tx) validateReads() bool { return tx.e.validateReads(tx) }

// commitPrepared is commit phase two: it publishes the write set and
// releases the commit-time locks with a fresh version. Only legal after a
// successful prepare.
func (tx *Tx) commitPrepared() { tx.e.commit(tx) }

// releasePrepared drops the phase-one locks without publishing, restoring
// the pre-prepare lock words. A no-op unless prepare succeeded.
func (tx *Tx) releasePrepared() {
	if tx.lockedMeta == nil {
		return
	}
	for vb, m := range tx.lockedMeta {
		vb.meta.Store(m)
	}
	tx.lockedMeta = nil
}
