package stm

import (
	"runtime"
	"sort"
	"time"
)

// Tx is the per-attempt transaction handle passed to Atomically bodies.
// It must not escape the body or be used concurrently.
type Tx struct {
	s  *STM
	rv uint64 // read version (TL2 snapshot)

	// Lazy engine.
	reads  []readEntry
	writes map[*Var]int64
	worder []*Var // write order for deterministic locking

	// Eager and global-lock engines.
	undo   []undoEntry
	locked map[*Var]uint64 // var -> meta observed before locking
}

type readEntry struct {
	v    *Var
	meta uint64
}

type undoEntry struct {
	v   *Var
	old int64
}

// conflictSignal aborts the current attempt; Atomically recovers it.
type conflictSignal struct{}

func (tx *Tx) conflict() {
	panic(conflictSignal{})
}

// Atomically runs fn as a transaction, retrying on conflicts until commit
// or the retry budget is exhausted. If fn returns ErrAbort the transaction
// is rolled back and ErrAbort is returned; any other non-nil error also
// rolls back and is returned verbatim (the transaction takes no effect).
func (s *STM) Atomically(fn func(*Tx) error) error {
	for attempt := 0; attempt < s.maxRetries; attempt++ {
		slotIdx, _ := s.acquireSlot()
		if s.engine == GlobalLock {
			s.glock <- struct{}{}
		}
		tx := &Tx{s: s, rv: s.clock.Load()}
		err, conflicted := tx.runBody(fn)
		switch {
		case conflicted:
			tx.rollback()
			s.finish(slotIdx)
			s.stats.Conflicts.Add(1)
			backoff(attempt)
			continue
		case err != nil:
			tx.rollback()
			s.finish(slotIdx)
			s.stats.UserAborts.Add(1)
			return err
		}
		if tx.commit() {
			s.finish(slotIdx)
			s.stats.Commits.Add(1)
			return nil
		}
		tx.rollback()
		s.finish(slotIdx)
		s.stats.Conflicts.Add(1)
		backoff(attempt)
	}
	return ErrMaxRetries
}

func (s *STM) finish(slotIdx int) {
	if s.engine == GlobalLock {
		<-s.glock
	}
	s.releaseSlot(slotIdx)
}

// runBody executes fn, converting conflict signals into a flag.
func (tx *Tx) runBody(fn func(*Tx) error) (err error, conflicted bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(conflictSignal); ok {
				conflicted = true
				return
			}
			panic(r)
		}
	}()
	return fn(tx), false
}

func backoff(attempt int) {
	switch {
	case attempt < 8:
		runtime.Gosched()
	case attempt < 20:
		time.Sleep(time.Microsecond << uint(attempt-8))
	default:
		time.Sleep(4 * time.Millisecond)
	}
}

// Read returns the transactional value of v.
func (tx *Tx) Read(v *Var) int64 {
	switch tx.s.engine {
	case Lazy:
		if val, ok := tx.writes[v]; ok {
			return val
		}
		for {
			m1 := v.meta.Load()
			if isLocked(m1) {
				tx.conflict()
			}
			val := v.val.Load()
			if m2 := v.meta.Load(); m1 != m2 {
				continue // torn read; retry the sample
			}
			if version(m1) > tx.rv {
				tx.conflict() // written by a transaction after our snapshot
			}
			tx.reads = append(tx.reads, readEntry{v: v, meta: m1})
			return val
		}
	case Eager:
		if _, mine := tx.locked[v]; mine {
			return v.val.Load()
		}
		for {
			m1 := v.meta.Load()
			if isLocked(m1) {
				tx.conflict()
			}
			val := v.val.Load()
			if m2 := v.meta.Load(); m1 != m2 {
				continue
			}
			if version(m1) > tx.rv {
				tx.conflict()
			}
			tx.reads = append(tx.reads, readEntry{v: v, meta: m1})
			return val
		}
	default: // GlobalLock: the global mutex serializes transactions.
		return v.val.Load()
	}
}

// Write sets the transactional value of v.
func (tx *Tx) Write(v *Var, x int64) {
	switch tx.s.engine {
	case Lazy:
		if tx.writes == nil {
			tx.writes = make(map[*Var]int64, 4)
		}
		if _, seen := tx.writes[v]; !seen {
			tx.worder = append(tx.worder, v)
		}
		tx.writes[v] = x
	case Eager:
		if _, mine := tx.locked[v]; !mine {
			m := v.meta.Load()
			if isLocked(m) || version(m) > tx.rv || !v.meta.CompareAndSwap(m, m|lockedBit) {
				tx.conflict()
			}
			if tx.locked == nil {
				tx.locked = make(map[*Var]uint64, 4)
			}
			tx.locked[v] = m
			tx.undo = append(tx.undo, undoEntry{v: v, old: v.val.Load()})
		}
		v.val.Store(x)
	default: // GlobalLock
		tx.undo = append(tx.undo, undoEntry{v: v, old: v.val.Load()})
		v.val.Store(x)
	}
}

// Abort aborts the current attempt and makes Atomically return ErrAbort.
// Provided for symmetry with the paper's abort statement; equivalent to
// returning ErrAbort from the body.
func (tx *Tx) Abort() error { return ErrAbort }

// commit attempts to make the transaction's effects visible. It reports
// success; on failure the caller rolls back and retries.
func (tx *Tx) commit() bool {
	s := tx.s
	switch s.engine {
	case Lazy:
		if len(tx.worder) == 0 {
			// Read-only transactions validated each read against rv.
			return true
		}
		// Lock the write set in id order to avoid deadlock.
		sort.Slice(tx.worder, func(i, j int) bool { return tx.worder[i].id < tx.worder[j].id })
		lockedMeta := make(map[*Var]uint64, len(tx.worder))
		for i, v := range tx.worder {
			m := v.meta.Load()
			if isLocked(m) || version(m) > tx.rv || !v.meta.CompareAndSwap(m, m|lockedBit) {
				for _, u := range tx.worder[:i] {
					u.meta.Store(lockedMeta[u])
				}
				return false
			}
			lockedMeta[v] = m
		}
		wv := s.clock.Add(1)
		// Validate the read set.
		for _, re := range tx.reads {
			cur := re.v.meta.Load()
			if _, mine := lockedMeta[re.v]; mine {
				if version(cur) != version(re.meta) {
					// Someone updated between our read and our lock.
					for _, u := range tx.worder {
						u.meta.Store(lockedMeta[u])
					}
					return false
				}
				continue
			}
			if isLocked(cur) || version(cur) > tx.rv {
				for _, u := range tx.worder {
					u.meta.Store(lockedMeta[u])
				}
				return false
			}
		}
		// The anomaly window of §3.5: the transaction is logically
		// committed but its buffered writes are not yet applied.
		if s.WritebackDelay != nil {
			s.WritebackDelay()
		}
		for _, v := range tx.worder {
			v.val.Store(tx.writes[v])
			v.meta.Store(wv << 1) // release with the new version
		}
		return true

	case Eager:
		wv := s.clock.Add(1)
		for _, re := range tx.reads {
			cur := re.v.meta.Load()
			if _, mine := tx.locked[re.v]; mine {
				continue // we hold the lock; value unchanged since read
			}
			if isLocked(cur) || version(cur) > tx.rv {
				return false
			}
		}
		for v := range tx.locked {
			v.meta.Store(wv << 1)
		}
		tx.locked = nil
		tx.undo = nil
		return true

	default: // GlobalLock
		wv := s.clock.Add(1)
		for _, u := range tx.undo {
			u.v.meta.Store(wv << 1)
		}
		tx.undo = nil
		return true
	}
}

// rollback undoes in-place effects (eager and global-lock engines); the
// lazy engine simply drops its buffers.
func (tx *Tx) rollback() {
	s := tx.s
	switch s.engine {
	case Eager:
		if s.RollbackDelay != nil && len(tx.undo) > 0 {
			// The anomaly window of §3.4: speculative values are visible
			// to plain accesses until the undo log is applied.
			s.RollbackDelay()
		}
		for i := len(tx.undo) - 1; i >= 0; i-- {
			tx.undo[i].v.val.Store(tx.undo[i].old)
		}
		for v, m := range tx.locked {
			v.meta.Store(m) // release, version unchanged
		}
		tx.locked = nil
		tx.undo = nil
	case GlobalLock:
		for i := len(tx.undo) - 1; i >= 0; i-- {
			tx.undo[i].v.val.Store(tx.undo[i].old)
		}
		tx.undo = nil
	default: // Lazy: nothing was published.
		tx.reads = nil
		tx.writes = nil
		tx.worder = nil
	}
}
