package stm

import (
	"runtime"
	"sort"
	"time"
)

// Tx is the per-attempt transaction handle passed to Atomically bodies.
// It must not escape the body or be used concurrently.
type Tx struct {
	s       *STM
	rv      uint64 // read version (TL2 snapshot)
	slotIdx int    // quiescence slot held for the attempt's lifetime

	// Lazy engine.
	reads      []readEntry
	writes     map[*Var]int64
	worder     []*Var          // write order for deterministic locking
	lockedMeta map[*Var]uint64 // commit-time lock state while prepared

	// Eager and global-lock engines.
	undo   []undoEntry
	locked map[*Var]uint64 // var -> meta observed before locking
}

type readEntry struct {
	v    *Var
	meta uint64
}

type undoEntry struct {
	v   *Var
	old int64
}

// conflictSignal aborts the current attempt; Atomically recovers it.
type conflictSignal struct{}

func (tx *Tx) conflict() {
	panic(conflictSignal{})
}

// begin opens an unmanaged transaction attempt: it registers the
// quiescence slot, takes the global lock when the engine demands it, and
// snapshots the read version. The caller owns the attempt's lifecycle and
// must end it with finishTx (after commitPrepared) or abortAttempt.
func (s *STM) begin() *Tx {
	slotIdx, _ := s.acquireSlot()
	if s.engine == GlobalLock {
		s.glock <- struct{}{}
	}
	return &Tx{s: s, rv: s.clock.Load(), slotIdx: slotIdx}
}

// Atomically runs fn as a transaction, retrying on conflicts until commit
// or the retry budget is exhausted. If fn returns ErrAbort the transaction
// is rolled back and ErrAbort is returned; any other non-nil error also
// rolls back and is returned verbatim (the transaction takes no effect).
func (s *STM) Atomically(fn func(*Tx) error) error {
	for attempt := 0; attempt < s.maxRetries; attempt++ {
		tx := s.begin()
		err, conflicted := tx.runBody(fn)
		switch {
		case conflicted:
			tx.abortAttempt()
			s.stats.Conflicts.Add(1)
			backoff(attempt)
			continue
		case err != nil:
			tx.abortAttempt()
			s.stats.UserAborts.Add(1)
			return err
		}
		if tx.prepare() {
			tx.commitPrepared()
			tx.finishTx()
			s.stats.Commits.Add(1)
			return nil
		}
		tx.abortAttempt()
		s.stats.Conflicts.Add(1)
		backoff(attempt)
	}
	return ErrMaxRetries
}

// AtomicallyMulti runs fn as one transaction spanning several STM
// instances, passing it per-instance handles aligned with stms. Commit is
// two-phase: every instance prepares (commit-time locks taken, read sets
// validated), and only when all have prepared do the write sets become
// visible, so no consistent transactional reader observes a partial
// cross-instance commit. Callers that may contend on overlapping instance
// sets must pass stms in a globally consistent order (e.g. sorted by shard
// index, as internal/kv does) — instance-level locks are taken in argument
// order, and a consistent order makes the global-lock engine deadlock-free.
//
// The instances may use different engines, but the retry budget is taken
// from stms[0]. An empty stms runs fn(nil) once, transactionally vacuous.
func AtomicallyMulti(stms []*STM, fn func(txs []*Tx) error) error {
	if len(stms) == 0 {
		return fn(nil)
	}
	if len(stms) == 1 {
		return stms[0].Atomically(func(tx *Tx) error { return fn([]*Tx{tx}) })
	}
	for i := 1; i < len(stms); i++ {
		for j := 0; j < i; j++ {
			if stms[i] == stms[j] {
				// A duplicated GlobalLock instance would self-deadlock on
				// its mutex; reject all duplicates uniformly.
				return ErrDuplicateInstance
			}
		}
	}
	txs := make([]*Tx, len(stms))
	abortAll := func() {
		// Unwind in reverse so global locks release LIFO.
		for i := len(txs) - 1; i >= 0; i-- {
			txs[i].abortAttempt()
		}
	}
	for attempt := 0; attempt < stms[0].maxRetries; attempt++ {
		for i, s := range stms {
			txs[i] = s.begin()
		}
		err, conflicted := runMultiBody(txs, fn)
		switch {
		case conflicted:
			abortAll()
			for _, s := range stms {
				s.stats.Conflicts.Add(1)
			}
			backoff(attempt)
			continue
		case err != nil:
			abortAll()
			for _, s := range stms {
				s.stats.UserAborts.Add(1)
			}
			return err
		}
		// Two-phase, whole-footprint commit: first take every instance's
		// commit-time locks, and only then validate every instance's read
		// set. Validating inside the global lock window is what makes the
		// cross-instance transaction serializable — validating per
		// instance as it prepares would admit write skew (instance A's
		// reads could be invalidated while instance B is still locking),
		// and a read-only instance must be validated here too, since its
		// begin-time snapshot may predate the commit point.
		prepared := true
		for _, tx := range txs {
			if !tx.lockWrites() {
				prepared = false
				break
			}
		}
		if prepared {
			for _, tx := range txs {
				if !tx.validateReads() {
					prepared = false
					break
				}
			}
		}
		if !prepared {
			abortAll()
			for _, s := range stms {
				s.stats.Conflicts.Add(1)
			}
			backoff(attempt)
			continue
		}
		for _, tx := range txs {
			tx.commitPrepared()
		}
		for i := len(txs) - 1; i >= 0; i-- {
			txs[i].finishTx()
		}
		for _, s := range stms {
			s.stats.Commits.Add(1)
			s.stats.MultiCommits.Add(1)
		}
		return nil
	}
	return ErrMaxRetries
}

// finishTx releases the engine-level resources of a resolved attempt.
func (tx *Tx) finishTx() {
	s := tx.s
	if s.engine == GlobalLock {
		<-s.glock
	}
	s.releaseSlot(tx.slotIdx)
}

// abortAttempt rolls back an attempt (releasing any prepare-phase locks)
// and finishes it.
func (tx *Tx) abortAttempt() {
	tx.releasePrepared()
	tx.rollback()
	tx.finishTx()
}

// catchConflict runs fn, converting conflict signals into a flag. Both the
// single- and multi-instance bodies funnel through it so the abort
// protocol lives in one place.
func catchConflict(fn func() error) (err error, conflicted bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(conflictSignal); ok {
				conflicted = true
				return
			}
			panic(r)
		}
	}()
	return fn(), false
}

// runBody executes fn, converting conflict signals into a flag.
func (tx *Tx) runBody(fn func(*Tx) error) (error, bool) {
	return catchConflict(func() error { return fn(tx) })
}

// runMultiBody executes fn over the attempt's handles; a conflict raised
// by any participating instance aborts the whole attempt.
func runMultiBody(txs []*Tx, fn func([]*Tx) error) (error, bool) {
	return catchConflict(func() error { return fn(txs) })
}

func backoff(attempt int) {
	switch {
	case attempt < 8:
		runtime.Gosched()
	case attempt < 20:
		time.Sleep(time.Microsecond << uint(attempt-8))
	default:
		time.Sleep(4 * time.Millisecond)
	}
}

// Read returns the transactional value of v.
func (tx *Tx) Read(v *Var) int64 {
	switch tx.s.engine {
	case Lazy:
		if val, ok := tx.writes[v]; ok {
			return val
		}
		for {
			m1 := v.meta.Load()
			if isLocked(m1) {
				tx.conflict()
			}
			val := v.val.Load()
			if m2 := v.meta.Load(); m1 != m2 {
				continue // torn read; retry the sample
			}
			if version(m1) > tx.rv {
				tx.conflict() // written by a transaction after our snapshot
			}
			tx.reads = append(tx.reads, readEntry{v: v, meta: m1})
			return val
		}
	case Eager:
		if _, mine := tx.locked[v]; mine {
			return v.val.Load()
		}
		for {
			m1 := v.meta.Load()
			if isLocked(m1) {
				tx.conflict()
			}
			val := v.val.Load()
			if m2 := v.meta.Load(); m1 != m2 {
				continue
			}
			if version(m1) > tx.rv {
				tx.conflict()
			}
			tx.reads = append(tx.reads, readEntry{v: v, meta: m1})
			return val
		}
	default: // GlobalLock: the global mutex serializes transactions.
		return v.val.Load()
	}
}

// Write sets the transactional value of v.
func (tx *Tx) Write(v *Var, x int64) {
	switch tx.s.engine {
	case Lazy:
		if tx.writes == nil {
			tx.writes = make(map[*Var]int64, 4)
		}
		if _, seen := tx.writes[v]; !seen {
			tx.worder = append(tx.worder, v)
		}
		tx.writes[v] = x
	case Eager:
		if _, mine := tx.locked[v]; !mine {
			m := v.meta.Load()
			if isLocked(m) || version(m) > tx.rv || !v.meta.CompareAndSwap(m, m|lockedBit) {
				tx.conflict()
			}
			if tx.locked == nil {
				tx.locked = make(map[*Var]uint64, 4)
			}
			tx.locked[v] = m
			tx.undo = append(tx.undo, undoEntry{v: v, old: v.val.Load()})
		}
		v.val.Store(x)
	default: // GlobalLock
		tx.undo = append(tx.undo, undoEntry{v: v, old: v.val.Load()})
		v.val.Store(x)
	}
}

// Abort aborts the current attempt and makes Atomically return ErrAbort.
// Provided for symmetry with the paper's abort statement; equivalent to
// returning ErrAbort from the body.
func (tx *Tx) Abort() error { return ErrAbort }

// prepare is commit phase one for a single-instance transaction: take the
// commit-time locks on the write set and validate the read set, publishing
// nothing. After a successful prepare the transaction is guaranteed
// committable; the caller must follow with commitPrepared (or
// abortAttempt/releasePrepared to back out). On failure the caller's
// abortAttempt releases any locks taken. Multi-instance commits call
// lockWrites and validateReads separately, with a barrier between the two
// phases across instances.
func (tx *Tx) prepare() bool {
	if tx.s.engine == Lazy && len(tx.worder) == 0 {
		// Single-instance read-only fast path: every read was validated
		// against rv at read time, so the snapshot is consistent as of rv.
		// (Not sound for multi-instance commits, whose serialization point
		// is later than rv — they always run validateReads.)
		return true
	}
	return tx.lockWrites() && tx.validateReads()
}

// lockWrites (commit phase 1a) acquires the commit-time locks on the write
// set. Locks taken are recorded in tx.lockedMeta so releasePrepared — run
// by abortAttempt on any later failure — can restore them.
func (tx *Tx) lockWrites() bool {
	switch tx.s.engine {
	case Lazy:
		if len(tx.worder) == 0 {
			return true
		}
		// Lock the write set in id order to avoid deadlock.
		sort.Slice(tx.worder, func(i, j int) bool { return tx.worder[i].id < tx.worder[j].id })
		lockedMeta := make(map[*Var]uint64, len(tx.worder))
		for i, v := range tx.worder {
			m := v.meta.Load()
			if isLocked(m) || version(m) > tx.rv || !v.meta.CompareAndSwap(m, m|lockedBit) {
				for _, u := range tx.worder[:i] {
					u.meta.Store(lockedMeta[u])
				}
				return false
			}
			lockedMeta[v] = m
		}
		tx.lockedMeta = lockedMeta
		return true
	default:
		// Eager locked at encounter time; GlobalLock holds the mutex.
		return true
	}
}

// validateReads (commit phase 1b) checks the read set against the
// begin-time snapshot while the write locks are held.
func (tx *Tx) validateReads() bool {
	switch tx.s.engine {
	case Lazy:
		for _, re := range tx.reads {
			if mv, mine := tx.lockedMeta[re.v]; mine {
				if version(re.meta) != version(mv) {
					return false // someone updated between our read and our lock
				}
				continue
			}
			cur := re.v.meta.Load()
			if isLocked(cur) || version(cur) > tx.rv {
				return false
			}
		}
		return true

	case Eager:
		for _, re := range tx.reads {
			if _, mine := tx.locked[re.v]; mine {
				continue // we hold the lock; value unchanged since read
			}
			cur := re.v.meta.Load()
			if isLocked(cur) || version(cur) > tx.rv {
				return false
			}
		}
		return true

	default: // GlobalLock: the mutex serialized this instance.
		return true
	}
}

// commitPrepared is commit phase two: it publishes the write set and
// releases the commit-time locks with a fresh version. Only legal after a
// successful prepare.
func (tx *Tx) commitPrepared() {
	s := tx.s
	switch s.engine {
	case Lazy:
		if len(tx.worder) == 0 {
			return
		}
		wv := s.clock.Add(1)
		// The anomaly window of §3.5: the transaction is logically
		// committed but its buffered writes are not yet applied.
		if s.WritebackDelay != nil {
			s.WritebackDelay()
		}
		for _, v := range tx.worder {
			v.val.Store(tx.writes[v])
			v.meta.Store(wv << 1) // release with the new version
		}
		tx.lockedMeta = nil

	case Eager:
		wv := s.clock.Add(1)
		for v := range tx.locked {
			v.meta.Store(wv << 1)
		}
		tx.locked = nil
		tx.undo = nil

	default: // GlobalLock
		wv := s.clock.Add(1)
		for _, u := range tx.undo {
			u.v.meta.Store(wv << 1)
		}
		tx.undo = nil
	}
}

// releasePrepared drops the phase-one locks without publishing, restoring
// the pre-prepare lock words. A no-op unless prepare succeeded.
func (tx *Tx) releasePrepared() {
	if tx.lockedMeta == nil {
		return
	}
	for _, v := range tx.worder {
		v.meta.Store(tx.lockedMeta[v])
	}
	tx.lockedMeta = nil
}

// rollback undoes in-place effects (eager and global-lock engines); the
// lazy engine simply drops its buffers.
func (tx *Tx) rollback() {
	s := tx.s
	switch s.engine {
	case Eager:
		if s.RollbackDelay != nil && len(tx.undo) > 0 {
			// The anomaly window of §3.4: speculative values are visible
			// to plain accesses until the undo log is applied.
			s.RollbackDelay()
		}
		for i := len(tx.undo) - 1; i >= 0; i-- {
			tx.undo[i].v.val.Store(tx.undo[i].old)
		}
		for v, m := range tx.locked {
			v.meta.Store(m) // release, version unchanged
		}
		tx.locked = nil
		tx.undo = nil
	case GlobalLock:
		for i := len(tx.undo) - 1; i >= 0; i-- {
			tx.undo[i].v.val.Store(tx.undo[i].old)
		}
		tx.undo = nil
	default: // Lazy: nothing was published.
		tx.reads = nil
		tx.writes = nil
		tx.worder = nil
	}
}
