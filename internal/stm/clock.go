package stm

import (
	"fmt"
	"strings"
)

// ClockMode selects the version-clock strategy of an STM instance — how
// committing writers obtain write versions and how reader snapshots
// relate to them. The transactional semantics are identical under every
// mode; what changes is the coherence traffic on the clock word.
//
//   - ClockShared is classic TL2 "GV1": one global word, fetch-added by
//     every writing commit. Simple and strictly monotonic, but at high
//     core counts every commit bounces the clock's cache line between
//     sockets — the coherence hotspot this mode exists to name. The word
//     is cache-line padded (see the STM layout comment), so the only
//     remaining cost is the RMW itself.
//
//   - ClockDeferred is the GV5-family variant: a writing commit takes
//     wv = clock+1 *without* fetch-adding it. The clock advances by
//     max-CAS (clockObserve) from two places: an attempt that observes
//     a version above its snapshot raises the clock to that version
//     before extending or retrying, and a commit publishes its wv after
//     releasing its locks. The CAS is shared — concurrent commits
//     computing the same wv pay for one advance between them, and an
//     already-covered clock costs a load — which is what beats GV1's
//     unconditional fetch-add per commit under contention. Distinct
//     commits may share a write version; per-variable monotonicity is
//     restored at release time (releaseWord), which the notification
//     subsystem's changed() comparison and ABA-free validation need.
//     Because commits only publish lazily, a writer's snapshot is
//     routinely behind the versions it is about to overwrite, so the
//     commit-lock path treats "too new" as staleness, not a race: it
//     revalidates the read set at the old rv and relocks at a fresh
//     snapshot (the TL2 extension rule applied at the lock site) instead
//     of aborting — without this, every write-only transaction would
//     abort once per commit against its own predecessor.
//
// Why deferred rather than a leased stride of timestamps: handing each
// committer a pre-allocated stride [base+1, base+K] (fetch-add K) is
// unsound under TL2 validation. The allocator bump makes base+K visible
// to reader snapshots immediately, while the stride's earlier
// timestamps are published later — so a reader with rv = base+K can
// accept a write at base+1 that happened after its snapshot, and
// commit-time validation (version ≤ rv, unlocked) cannot tell. The
// deferred rule — wv is computed from a clock load *after* the commit
// locks are held — is what makes version-below-snapshot imply
// happened-before-snapshot:
//
//	A reader accepts x@v only when v ≤ rv. rv was loaded from the clock
//	before any of the attempt's reads (begin), and extension revalidates
//	every prior read at the old rv before adopting a new one. The writer
//	of x@v loaded clock = g ≥ v-1 after locking x, so the clock reached
//	v-1 no earlier than that load; the reader's rv ≥ v means its
//	rv-load observed clock ≥ v, which is therefore after the writer
//	locked x. Hence the reader's sample of x — unlocked, after its
//	rv-load — is after the writer's full release of x: the accepted
//	value is the committed one, never a torn or stale intermediate.
//	Any later writer on x loads the clock after the reader's rv-load
//	and releases with a version > rv, so validation still catches
//	overwrites.
//
// The mode is fixed per instance at New; internal/kv threads it through
// per shard (kv.WithClock).
type ClockMode int

const (
	// ClockShared is the padded global fetch-add clock (TL2 GV1).
	ClockShared ClockMode = iota
	// ClockDeferred is the GV5-style reader-advanced clock: commits
	// never store to the clock word; readers advance it on observation.
	ClockDeferred
)

// clockModeInfo is one registry row, mirroring the engine registry.
type clockModeInfo struct {
	id      ClockMode
	name    string
	aliases []string
	doc     string
}

var clockModeTable = []clockModeInfo{
	{ClockShared, "shared", []string{"gv1"},
		"one padded global clock word, fetch-added by every writing commit"},
	{ClockDeferred, "deferred", []string{"gv5", "leased"},
		"GV5-style: commits take clock+1 and publish it by max-CAS, shared between concurrent commits"},
}

func lookupClockMode(m ClockMode) (clockModeInfo, bool) {
	for _, info := range clockModeTable {
		if info.id == m {
			return info, true
		}
	}
	return clockModeInfo{}, false
}

// ClockModes returns every registered clock mode in registry order.
// Conformance suites and benchmarks iterate this, so a new mode cannot
// merge without passing the litmus checks on every engine.
func ClockModes() []ClockMode {
	out := make([]ClockMode, len(clockModeTable))
	for i, info := range clockModeTable {
		out[i] = info.id
	}
	return out
}

// ClockNames returns the canonical clock-mode names in registry order.
func ClockNames() []string {
	out := make([]string, len(clockModeTable))
	for i, info := range clockModeTable {
		out[i] = info.name
	}
	return out
}

// ClockDoc returns a one-line description of the mode, or "" if it is
// not registered.
func ClockDoc(m ClockMode) string {
	if info, ok := lookupClockMode(m); ok {
		return info.doc
	}
	return ""
}

// ParseClock resolves a clock-mode name (or registered alias, case
// insensitively) to its ClockMode value.
func ParseClock(name string) (ClockMode, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	for _, info := range clockModeTable {
		if n == info.name {
			return info.id, nil
		}
		for _, a := range info.aliases {
			if n == a {
				return info.id, nil
			}
		}
	}
	return 0, fmt.Errorf("stm: unknown clock mode %q (want %s)", name, strings.Join(ClockNames(), ", "))
}

// String returns the registered name, consistent with ParseClock; an
// unregistered value formats as "clock(N)".
func (m ClockMode) String() string {
	if info, ok := lookupClockMode(m); ok {
		return info.name
	}
	return fmt.Sprintf("clock(%d)", int(m))
}

// WithClock selects the version-clock strategy (default ClockShared).
func WithClock(m ClockMode) Option { return func(c *config) { c.clock = m } }

// Clock returns the instance's clock mode.
func (s *STM) Clock() ClockMode { return s.clockMode }

// --- clock operations, shared by the engines ---

// clockBegin snapshots the read version. Engines call it from begin
// (and extension reloads through it).
func (s *STM) clockBegin() uint64 { return s.clock.Load() }

// clockWV returns the write version of a committing writer. It MUST be
// called only after every commit-time lock of the write set is held —
// in deferred mode the load-after-lock ordering is the entire soundness
// argument (see the ClockMode comment). In shared mode it is the
// classic fetch-add.
func (s *STM) clockWV() uint64 {
	if s.clockMode == ClockDeferred {
		return s.clock.Load() + 1
	}
	return s.clock.Add(1)
}

// clockObserve advances the clock to at least v. Deferred-mode readers
// call it before retrying or extending past a version above their
// snapshot: without the advance the next snapshot would be no fresher
// and the attempt would spin forever. In shared mode the clock is
// always ≥ every published version, so this is a no-op branch.
func (s *STM) clockObserve(v uint64) {
	if s.clockMode != ClockDeferred {
		return
	}
	for {
		cur := s.clock.Load()
		if cur >= v || s.clock.CompareAndSwap(cur, v) {
			return
		}
	}
}

// releaseWord returns the meta word a committing writer stores into vb:
// the write version, raised past vb's current version in deferred mode.
// Distinct deferred commits may compute the same wv; bumping past the
// pre-release version keeps each variable's version strictly
// increasing, which waiter revalidation (notify.go changed()) and
// validation ABA-freedom rely on. In shared mode wv is globally unique,
// so the raise can never trigger and the branch costs nothing.
func (s *STM) releaseWord(wv uint64, vb *varBase) uint64 {
	if s.clockMode == ClockDeferred {
		if pv := version(vb.meta.Load()) + 1; pv > wv {
			return pv << 1
		}
	}
	return wv << 1
}

// clockTouch returns a fresh version for STM.Touch: strictly above both
// the clock and the touched variable's current word m, with the clock
// advanced to cover it so concurrent snapshots observe the touch as a
// conflict (the point of touching) and later snapshots accept it.
func (s *STM) clockTouch(m uint64) uint64 {
	nv := s.clock.Add(1)
	if s.clockMode == ClockDeferred {
		if pv := version(m) + 1; pv > nv {
			s.clockObserve(pv)
			nv = pv
		}
	}
	return nv
}
