package stm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitForParks blocks until s has recorded at least n parks, so tests
// only fire their wakeup once the blocking side is really asleep.
func waitForParks(t *testing.T, s *STM, n uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.Snapshot().Waits < n {
		if time.Now().After(deadline) {
			t.Fatalf("waiter never parked: %+v", s.Snapshot())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBlockWakesOnCommit is the basic contract on every engine: a body
// that Blocks on a variable parks (no spinning) and the next commit to
// that variable wakes it promptly.
func TestBlockWakesOnCommit(t *testing.T) {
	for _, e := range engines {
		t.Run(e.String(), func(t *testing.T) {
			s := New(WithEngine(e))
			v := s.NewVar("v", 0)
			got := make(chan int64, 1)
			go func() {
				var x int64
				err := s.Atomically(func(tx *Tx) error {
					x = tx.Read(v)
					if x == 0 {
						tx.Block()
					}
					return nil
				})
				if err != nil {
					t.Error(err)
				}
				got <- x
			}()
			waitForParks(t, s, 1)
			start := time.Now()
			if err := s.Atomically(func(tx *Tx) error { tx.Write(v, 7); return nil }); err != nil {
				t.Fatal(err)
			}
			select {
			case x := <-got:
				if x != 7 {
					t.Fatalf("woke with %d, want 7", x)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("lost wakeup")
			}
			if d := time.Since(start); d > time.Second {
				t.Errorf("wakeup took %v, want prompt", d)
			}
			snap := s.Snapshot()
			if snap.Waits == 0 || snap.Wakeups == 0 {
				t.Errorf("stats did not record the park/wakeup: %+v", snap)
			}
		})
	}
}

// TestBlockedParkCanceledReturnsErrCanceled is the regression test for
// the cancellation contract of parked transactions: a context canceled
// while the attempt is asleep must surface as ErrCanceled (wrapping the
// context's error) — not hang, and not decay into a conflict error.
func TestBlockedParkCanceledReturnsErrCanceled(t *testing.T) {
	for _, e := range engines {
		t.Run(e.String(), func(t *testing.T) {
			s := New(WithEngine(e))
			v := s.NewVar("v", 0)
			ctx, cancel := context.WithCancel(context.Background())
			errc := make(chan error, 1)
			go func() {
				errc <- s.AtomicallyCtx(ctx, func(tx *Tx) error {
					if tx.Read(v) == 0 {
						tx.Block()
					}
					return nil
				})
			}()
			waitForParks(t, s, 1)
			start := time.Now()
			cancel()
			select {
			case err := <-errc:
				if !errors.Is(err, ErrCanceled) {
					t.Fatalf("err = %v, want ErrCanceled", err)
				}
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("err = %v, want wrapped context.Canceled", err)
				}
				if d := time.Since(start); d > 5*time.Second {
					t.Fatalf("cancellation honored after %v, want prompt", d)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("canceled park never returned")
			}
		})
	}
}

// TestBlockReadOnly: Block works from AtomicallyRead bodies too — on the
// tl2 engine the first block re-runs the body with visible reads so the
// park has a real footprint (no blind 4ms polling).
func TestBlockReadOnly(t *testing.T) {
	for _, e := range engines {
		t.Run(e.String(), func(t *testing.T) {
			s := New(WithEngine(e))
			v := s.NewVar("v", 0)
			got := make(chan int64, 1)
			go func() {
				var x int64
				err := s.AtomicallyRead(func(r *ReadTx) error {
					x = r.Read(v)
					if x == 0 {
						r.Block()
					}
					return nil
				})
				if err != nil {
					t.Error(err)
				}
				got <- x
			}()
			waitForParks(t, s, 1)
			if err := s.Atomically(func(tx *Tx) error { tx.Write(v, 9); return nil }); err != nil {
				t.Fatal(err)
			}
			select {
			case x := <-got:
				if x != 9 {
					t.Fatalf("woke with %d", x)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("lost wakeup")
			}
		})
	}
}

// TestBlockMulti: a multi-instance body that blocks parks on the union
// of all instances' footprints and wakes when either side changes.
func TestBlockMulti(t *testing.T) {
	s1 := New(WithEngine(Lazy))
	s2 := New(WithEngine(TL2))
	a := s1.NewVar("a", 0)
	b := s2.NewVar("b", 0)
	for round, poke := range []func() error{
		func() error { return s1.Atomically(func(tx *Tx) error { tx.Write(a, 1); return nil }) },
		func() error { return s2.Atomically(func(tx *Tx) error { tx.Write(b, 1); return nil }) },
	} {
		a.Store(0)
		b.Store(0)
		base := s1.Snapshot().Waits
		done := make(chan error, 1)
		go func() {
			done <- AtomicallyMulti([]*STM{s1, s2}, func(txs []*Tx) error {
				if txs[0].Read(a) == 0 && txs[1].Read(b) == 0 {
					txs[0].Block()
				}
				return nil
			})
		}()
		waitForParks(t, s1, base+1) // multi parks account to stms[0]
		if err := poke(); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: lost wakeup", round)
		}
	}
}

// TestNoLostWakeupStress is the litmus-style producer/consumer stress of
// the no-lost-wakeup protocol, run on every engine (and under -race in
// CI): consumers park on an almost-always-empty queue, producers commit
// items one at a time, and every item must be consumed with no deadline
// overrun. A lost wakeup deadlocks a consumer and trips the watchdog.
func TestNoLostWakeupStress(t *testing.T) {
	const (
		producers = 2
		consumers = 4
		perProd   = 500
	)
	for _, e := range engines {
		t.Run(e.String(), func(t *testing.T) {
			s := New(WithEngine(e))
			q := NewQueue[int](s, "q", 2) // tiny: producers block on full, consumers on empty
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()

			var sum, count atomic.Int64
			var wg sync.WaitGroup
			for c := 0; c < consumers; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						v, err := q.PopWait(ctx)
						if err != nil {
							t.Errorf("consumer: %v (watchdog hit = lost wakeup?)", err)
							return
						}
						if v < 0 {
							return // poison pill
						}
						sum.Add(int64(v))
						count.Add(1)
					}
				}()
			}
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 1; i <= perProd; i++ {
						if err := q.PushWait(ctx, i); err != nil {
							t.Errorf("producer %d: %v", p, err)
							return
						}
					}
				}(p)
			}
			// Wait for all items to drain, then poison the consumers.
			for count.Load() < producers*perProd {
				if ctx.Err() != nil {
					t.Fatalf("watchdog: consumed %d of %d", count.Load(), producers*perProd)
				}
				time.Sleep(time.Millisecond)
			}
			for c := 0; c < consumers; c++ {
				if err := q.PushWait(ctx, -1); err != nil {
					t.Fatal(err)
				}
			}
			wg.Wait()
			want := int64(producers) * perProd * (perProd + 1) / 2
			if got := sum.Load(); got != want {
				t.Fatalf("sum = %d, want %d", got, want)
			}
		})
	}
}

// TestTouchWakesWaiters: Touch stamps a fresh version (observable by a
// revalidating waiter) and wakes parks without changing the value — the
// hook kv uses for non-transactional key-table changes.
func TestTouchWakesWaiters(t *testing.T) {
	s := New()
	v := s.NewVar("v", 41)
	woken := make(chan error, 1)
	go func() {
		rounds := 0
		woken <- s.Atomically(func(tx *Tx) error {
			_ = tx.Read(v)
			if rounds++; rounds == 1 {
				tx.Block() // park once, then let the touched re-run commit
			}
			return nil
		})
	}()
	waitForParks(t, s, 1)
	s.Touch(v)
	select {
	case err := <-woken:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Touch did not wake the waiter")
	}
	if got := v.Load(); got != 41 {
		t.Fatalf("Touch changed the value: %d", got)
	}
	// The wake must have been the Touch's notification, not the parked
	// attempt's safety-net timer going off.
	if snap := s.Snapshot(); snap.Wakeups == 0 {
		t.Errorf("waiter woke without a notification: %+v", snap)
	}
}

// TestQuiesceBroadcastUnstrandsWaiters: the privatization fence wakes
// every parked transaction, so a waiter blocked on a variable that is
// about to go private re-evaluates instead of sleeping forever.
func TestQuiesceBroadcastUnstrandsWaiters(t *testing.T) {
	s := New()
	v := s.NewVar("v", 0)
	released := make(chan error, 1)
	go func() {
		saw := false
		released <- s.Atomically(func(tx *Tx) error {
			if tx.Read(v) == 0 && !saw {
				saw = true // wake (any wake) releases us on the re-run
				tx.Block()
			}
			return nil
		})
	}()
	waitForParks(t, s, 1)
	s.Quiesce(v) // fence before privatizing v: broadcasts to all waiters
	select {
	case err := <-released:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("quiescence broadcast did not reach the waiter")
	}
}

// TestConflictParkFallback: a transaction that conflicts against a
// lock-holder that *aborts* receives no commit notification — the
// bounded fallback timer must still get it through. This pins the
// "backoff survives as a fallback" contract.
func TestConflictParkFallback(t *testing.T) {
	s := New(WithEngine(Eager))
	v := s.NewVar("v", 0)

	// Hold v's encounter-time lock in a transaction that aborts slowly.
	hold := make(chan struct{})
	holding := make(chan struct{})
	go func() {
		_ = s.Atomically(func(tx *Tx) error {
			tx.Write(v, 1)
			close(holding)
			<-hold
			return ErrAborted // abort: lock released with no notification
		})
	}()
	<-holding
	done := make(chan error, 1)
	go func() {
		done <- s.Atomically(func(tx *Tx) error {
			_ = tx.Read(v) // conflicts while the lock is held
			return nil
		})
	}()
	time.Sleep(20 * time.Millisecond) // let the reader spin into a park
	close(hold)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("conflict park outlived the aborted lock-holder (fallback missing)")
	}
}

// TestWakePrecision: commits to unrelated variables do not wake a
// parked waiter — notification is per-variable (hashed buckets with id
// matching), not broadcast.
func TestWakePrecision(t *testing.T) {
	s := New()
	target := s.NewVar("target", 0)
	others := make([]*Var, 256) // cover every bucket, including target's
	for i := range others {
		others[i] = s.NewVar(fmt.Sprintf("other%d", i), 0)
	}
	done := make(chan error, 1)
	go func() {
		done <- s.Atomically(func(tx *Tx) error {
			if tx.Read(target) == 0 {
				tx.Block()
			}
			return nil
		})
	}()
	waitForParks(t, s, 1)
	for _, o := range others {
		if err := s.Atomically(func(tx *Tx) error { tx.Write(o, 1); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	if w := s.Snapshot().Wakeups; w != 0 {
		t.Errorf("unrelated commits caused %d wakeups, want 0", w)
	}
	if err := s.Atomically(func(tx *Tx) error { tx.Write(target, 1); return nil }); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("lost wakeup on the target variable")
	}
}
