package stm

import (
	"sync"
	"testing"
)

// TestSpinBudgetDefaultAndPin pins the controller wiring: the budget
// starts at the historical constant, WithSpinAttempts pins it and
// disables retuning, and n <= 0 keeps the adaptive default.
func TestSpinBudgetDefaultAndPin(t *testing.T) {
	if got := New().SpinBudget(); got != spinDefault {
		t.Fatalf("default spin budget = %d, want %d", got, spinDefault)
	}
	s := New(WithSpinAttempts(3))
	if got := s.SpinBudget(); got != 3 {
		t.Fatalf("pinned spin budget = %d, want 3", got)
	}
	if !s.spinPinned {
		t.Fatal("WithSpinAttempts did not disable the controller")
	}
	// A pinned instance's controller must be inert even when forced.
	for i := 0; i < 4*adaptEvery; i++ {
		s.maybeAdapt()
	}
	if got := s.SpinBudget(); got != 3 {
		t.Fatalf("pinned budget drifted to %d", got)
	}
	if got := New(WithSpinAttempts(0)).spinPinned; got {
		t.Fatal("WithSpinAttempts(0) pinned the budget")
	}
	if got := New(WithSpinAttempts(-1)).SpinBudget(); got != spinDefault {
		t.Fatalf("WithSpinAttempts(-1) budget = %d, want default", got)
	}
}

// TestRetunePolicy drives the hysteresis controller with synthetic
// windows (retune is split from maybeAdapt exactly for this) and pins
// the policy: contended windows halve the budget down to spinMin, calm
// windows with parks double it up to spinMax, the dead band changes
// nothing, and hotspot skew counts as contention regardless of rate.
func TestRetunePolicy(t *testing.T) {
	s := New()
	if got := s.SpinBudget(); got != spinDefault {
		t.Fatalf("start budget = %d", got)
	}
	s.retune(0.9, false, 0) // contended: halve
	if got := s.SpinBudget(); got != spinDefault/2 {
		t.Fatalf("after contended window budget = %d, want %d", got, spinDefault/2)
	}
	for i := 0; i < 10; i++ {
		s.retune(0.9, false, 0)
	}
	if got := s.SpinBudget(); got != spinMin {
		t.Fatalf("contended windows floored at %d, want %d", got, spinMin)
	}
	s.retune(0.3, false, 7) // dead band: nothing
	if got := s.SpinBudget(); got != spinMin {
		t.Fatalf("dead-band window moved the budget to %d", got)
	}
	s.retune(0.05, false, 0) // calm but nothing parked: nothing to regrow
	if got := s.SpinBudget(); got != spinMin {
		t.Fatalf("calm window with no parks moved the budget to %d", got)
	}
	for i := 0; i < 10; i++ {
		s.retune(0.05, false, 5) // calm with parks: double
	}
	if got := s.SpinBudget(); got != spinMax {
		t.Fatalf("calm windows capped at %d, want %d", got, spinMax)
	}
	s.retune(0.2, true, 0) // low rate but hotspot-skewed: still contended
	if got := s.SpinBudget(); got != spinMax/2 {
		t.Fatalf("skewed window budget = %d, want %d", got, spinMax/2)
	}
}

// TestAdaptiveStrategyFlip pins the Adaptive engine's strategy
// hysteresis: contended windows flip new attempts to eager, calm
// windows flip back to tl2, and fixed engines never report a strategy
// other than themselves.
func TestAdaptiveStrategyFlip(t *testing.T) {
	s := New(WithEngine(Adaptive))
	if got := s.Strategy(); got != TL2 {
		t.Fatalf("initial strategy = %v, want TL2", got)
	}
	s.retune(0.9, false, 0)
	if got := s.Strategy(); got != Eager {
		t.Fatalf("contended strategy = %v, want Eager", got)
	}
	s.retune(0.3, false, 0) // dead band holds the current strategy
	if got := s.Strategy(); got != Eager {
		t.Fatalf("dead-band strategy = %v, want Eager", got)
	}
	s.retune(0.05, false, 0)
	if got := s.Strategy(); got != TL2 {
		t.Fatalf("calm strategy = %v, want TL2", got)
	}

	fixed := New(WithEngine(TL2))
	fixed.retune(0.9, false, 0) // must only touch the spin budget
	if got := fixed.Strategy(); got != TL2 {
		t.Fatalf("fixed engine reports strategy %v", got)
	}
	if got := New(WithEngine(Lazy)).Strategy(); got != Lazy {
		t.Fatalf("lazy instance reports strategy %v", got)
	}
}

// TestAdaptiveEngineMidFlipCorrectness runs a contended counter on the
// Adaptive engine while the test flips the strategy underneath the
// workload, so tl2-protocol and eager-protocol attempts demonstrably
// interleave on the same variables and the count still balances — the
// protocol-compatibility claim of engine_adaptive.go.
func TestAdaptiveEngineMidFlipCorrectness(t *testing.T) {
	const goroutines = 6
	const perG = 300
	s := New(WithEngine(Adaptive), WithSpinAttempts(4)) // pin: the test drives the flips
	c := s.NewVar("c", 0)
	var wg sync.WaitGroup
	done := make(chan struct{})
	go func() { // strategy flipper
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if i%2 == 0 {
				s.strategy.Store(strategyEager)
			} else {
				s.strategy.Store(strategyTL2)
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := s.Atomically(func(tx *Tx) error {
					tx.Write(c, tx.Read(c)+1)
					return nil
				}); err != nil {
					t.Errorf("increment: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	if got := c.Load(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

// TestMaybeAdaptRunsOnRealConflicts is the integration check of the
// controller's only call sites: a contended workload must eventually
// close at least one window (the budget leaves its default or the
// baselines move), and the budget must stay within [spinMin, spinMax].
func TestMaybeAdaptRunsOnRealConflicts(t *testing.T) {
	s := New(WithEngine(TL2))
	v := s.NewVar("v", 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_ = s.Atomically(func(tx *Tx) error {
					tx.Write(v, tx.Read(v)+1)
					return nil
				})
			}
		}()
	}
	wg.Wait()
	if got := s.SpinBudget(); got < spinMin || got > spinMax {
		t.Fatalf("spin budget %d escaped [%d, %d]", got, spinMin, spinMax)
	}
	if s.Snapshot().Conflicts > 4*adaptEvery && s.adapt.lastCommits == 0 && s.adapt.lastConflicts == 0 {
		t.Error("controller never ran despite ample conflicts")
	}
}
