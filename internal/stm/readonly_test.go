package stm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestAtomicallyReadBasic(t *testing.T) {
	forEachEngine(t, func(t *testing.T, s *STM) {
		x := s.NewVar("x", 41)
		v := NewTVar(s, "v", "hello")
		var gx int64
		var gv string
		if err := s.AtomicallyRead(func(r *ReadTx) error {
			gx = r.Read(x)
			gv = ReadTVar(r, v)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if gx != 41 || gv != "hello" {
			t.Fatalf("read %d/%q, want 41/hello", gx, gv)
		}
		snap := s.Snapshot()
		if snap.Commits != 1 || snap.ReadOnlyCommits != 1 {
			t.Errorf("stats: commits=%d ro=%d, want 1/1", snap.Commits, snap.ReadOnlyCommits)
		}
	})
}

func TestAtomicallyReadErrorPassthrough(t *testing.T) {
	sentinel := errors.New("boom")
	forEachEngine(t, func(t *testing.T, s *STM) {
		x := s.NewVar("x", 0)
		err := s.AtomicallyRead(func(r *ReadTx) error {
			_ = r.Read(x)
			return sentinel
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("err = %v, want sentinel", err)
		}
		if s.Snapshot().UserAborts != 1 {
			t.Error("user abort not counted")
		}
	})
}

func TestAtomicallyReadCtxPreCanceled(t *testing.T) {
	s := New(WithEngine(TL2))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := s.AtomicallyReadCtx(ctx, func(r *ReadTx) error {
		ran = true
		return nil
	})
	if !errors.Is(err, ErrCanceled) || ran {
		t.Fatalf("err=%v ran=%v, want ErrCanceled and no body run", err, ran)
	}
	var txe *TxError
	if !errors.As(err, &txe) || txe.Op != "atomically-read" {
		t.Fatalf("diagnostics missing or wrong op: %+v", txe)
	}
}

// TestAtomicallyReadConsistentSnapshot races read-only transactions
// against writers that keep x == y; a torn read-only snapshot would
// observe them unequal.
func TestAtomicallyReadConsistentSnapshot(t *testing.T) {
	forEachEngine(t, func(t *testing.T, s *STM) {
		x := s.NewVar("x", 0)
		y := s.NewVar("y", 0)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := int64(1); i <= 300; i++ {
				_ = s.Atomically(func(tx *Tx) error {
					tx.Write(x, i)
					tx.Write(y, i)
					return nil
				})
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				var xv, yv int64
				if err := s.AtomicallyRead(func(r *ReadTx) error {
					xv = r.Read(x)
					yv = r.Read(y)
					return nil
				}); err != nil {
					t.Errorf("read-only snapshot failed: %v", err)
					return
				}
				if xv != yv {
					t.Errorf("torn read-only snapshot: x=%d y=%d", xv, yv)
					return
				}
			}
		}()
		wg.Wait()
	})
}

// TestTL2InvisibleReadOnly pins the snapshot engine's headline behavior:
// read-only bodies keep no read set (invisible reads), while the same
// body under the default engines records every read.
func TestTL2InvisibleReadOnly(t *testing.T) {
	probe := func(e Engine) (nreads, recorded int) {
		s := New(WithEngine(e))
		x := s.NewVar("x", 1)
		y := s.NewVar("y", 2)
		if err := s.AtomicallyRead(func(r *ReadTx) error {
			_ = r.Read(x)
			_ = r.Read(y)
			nreads = r.tx.nreads
			recorded = len(r.tx.reads)
			return nil
		}); err != nil {
			panic(err)
		}
		return
	}
	if n, rec := probe(TL2); n != 2 || rec != 0 {
		t.Errorf("tl2 read-only: nreads=%d recorded=%d, want 2 invisible reads", n, rec)
	}
	if n, rec := probe(Lazy); n != 2 || rec != 2 {
		t.Errorf("lazy read-only: nreads=%d recorded=%d, want 2 recorded reads", n, rec)
	}
}

// TestAtomicallyReadMultiConsistency is the read-only twin of
// TestMultiNoTornCommit: transfers circulate value between two instances
// while a lock-free read-only observer checks the conserved sum.
func TestAtomicallyReadMultiConsistency(t *testing.T) {
	for _, e := range engines {
		t.Run(e.String(), func(t *testing.T) {
			s1 := New(WithEngine(e))
			s2 := New(WithEngine(e))
			a := s1.NewVar("a", 500)
			b := s2.NewVar("b", 500)
			stms := []*STM{s1, s2}

			var wg sync.WaitGroup
			stop := make(chan struct{})
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					amt := seed%7 + 1
					for i := 0; i < 300; i++ {
						err := AtomicallyMulti(stms, func(txs []*Tx) error {
							txs[0].Write(a, txs[0].Read(a)-amt)
							txs[1].Write(b, txs[1].Read(b)+amt)
							return nil
						})
						if err != nil {
							t.Errorf("transfer: %v", err)
							return
						}
					}
				}(int64(w))
			}
			obsErr := make(chan error, 1)
			var obsWg sync.WaitGroup
			obsWg.Add(1)
			go func() {
				defer obsWg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					var sum int64
					err := AtomicallyReadMulti(stms, func(rtxs []*ReadTx) error {
						sum = rtxs[0].Read(a) + rtxs[1].Read(b)
						return nil
					})
					if err != nil {
						obsErr <- err
						return
					}
					if sum != 1000 {
						obsErr <- fmt.Errorf("torn read-only cross-instance snapshot: sum=%d", sum)
						return
					}
				}
			}()
			wg.Wait()
			close(stop)
			obsWg.Wait()
			select {
			case err := <-obsErr:
				t.Fatal(err)
			default:
			}
			// A quiescent final snapshot is guaranteed to commit.
			var sum int64
			if err := AtomicallyReadMulti(stms, func(rtxs []*ReadTx) error {
				sum = rtxs[0].Read(a) + rtxs[1].Read(b)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if sum != 1000 {
				t.Fatalf("final read-only sum=%d, want 1000", sum)
			}
			if s1.Snapshot().ReadOnlyCommits == 0 {
				t.Error("read-only multi commits not counted")
			}
		})
	}
}

func TestAtomicallyReadMultiDegenerate(t *testing.T) {
	s := New(WithEngine(TL2))
	x := s.NewVar("x", 3)
	var got int64
	if err := AtomicallyReadMulti([]*STM{s}, func(rtxs []*ReadTx) error {
		got = rtxs[0].Read(x)
		return nil
	}); err != nil || got != 3 {
		t.Fatalf("single-instance read multi: %v, got %d", err, got)
	}
	ran := false
	if err := AtomicallyReadMulti(nil, func(rtxs []*ReadTx) error {
		ran = len(rtxs) == 0
		return nil
	}); err != nil || !ran {
		t.Fatalf("empty read multi: err=%v ran=%v", err, ran)
	}
	if err := AtomicallyReadMulti([]*STM{s, s}, func([]*ReadTx) error { return nil }); err != ErrDuplicateInstance {
		t.Fatalf("duplicate instances: err=%v, want ErrDuplicateInstance", err)
	}
}
