package stm

import (
	"strings"
	"testing"
)

// TestEngineRegistry pins the registry contents: the enum values, their
// canonical names, and the parse round trip.
func TestEngineRegistry(t *testing.T) {
	want := []Engine{Lazy, Eager, GlobalLock, TL2, Adaptive}
	got := Engines()
	if len(got) != len(want) {
		t.Fatalf("Engines() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Engines()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	names := EngineNames()
	for i, e := range got {
		if e.String() != names[i] {
			t.Errorf("String/EngineNames disagree for %v: %q vs %q", e, e.String(), names[i])
		}
		parsed, err := ParseEngine(e.String())
		if err != nil || parsed != e {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v", e.String(), parsed, err, e)
		}
		if EngineDoc(e) == "" {
			t.Errorf("engine %v has no doc line", e)
		}
	}
}

func TestParseEngineAliasesAndCase(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Engine
	}{
		{"lazy", Lazy},
		{"EAGER", Eager},
		{"global-lock", GlobalLock},
		{"global", GlobalLock},
		{"tl2", TL2},
		{"snapshot", TL2},
		{" TL2 ", TL2},
		{"adaptive", Adaptive},
		{"Adaptive", Adaptive},
	} {
		got, err := ParseEngine(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseEngine("nope"); err == nil {
		t.Fatal("ParseEngine accepted an unknown name")
	} else if !strings.Contains(err.Error(), "lazy") || !strings.Contains(err.Error(), "tl2") {
		t.Errorf("parse error does not enumerate valid names: %v", err)
	}
}

func TestUnknownEngineString(t *testing.T) {
	if got := Engine(99).String(); got != "engine(99)" {
		t.Errorf("Engine(99).String() = %q", got)
	}
	if EngineDoc(Engine(99)) != "" {
		t.Error("EngineDoc of an unregistered engine is non-empty")
	}
}

func TestNewPanicsOnUnregisteredEngine(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted an unregistered engine")
		}
	}()
	_ = New(WithEngine(Engine(99)))
}

// TestTL2TimestampExtension pins the snapshot engine's signature move: a
// read that lands after an unrelated commit extends the snapshot instead
// of aborting the attempt, while the lazy engine must retry.
func TestTL2TimestampExtension(t *testing.T) {
	for _, tc := range []struct {
		e             Engine
		wantConflicts bool
	}{
		{Lazy, true},
		{TL2, false},
	} {
		t.Run(tc.e.String(), func(t *testing.T) {
			s := New(WithEngine(tc.e))
			x := s.NewVar("x", 1)
			y := s.NewVar("y", 0)
			first := true
			var got int64
			err := s.Atomically(func(tx *Tx) error {
				_ = tx.Read(x)
				if first {
					// Commit an unrelated write after our snapshot, from
					// inside the body (the inner transaction is independent;
					// neither engine holds instance-level locks here).
					first = false
					if err := s.Atomically(func(in *Tx) error {
						in.Write(y, 7)
						return nil
					}); err != nil {
						t.Fatal(err)
					}
				}
				got = tx.Read(y)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if got != 7 {
				t.Fatalf("read y = %d, want 7", got)
			}
			conflicts := s.Snapshot().Conflicts
			if tc.wantConflicts && conflicts == 0 {
				t.Error("lazy engine committed without retrying past a newer write")
			}
			if !tc.wantConflicts && conflicts != 0 {
				t.Errorf("tl2 recorded %d conflicts; timestamp extension should absorb the newer write", conflicts)
			}
		})
	}
}

// TestTL2ExtensionRefusedWhenReadInvalidated: if the already-read
// location itself was overwritten, extension must fail and the attempt
// must retry (a silent extension would yield a torn snapshot).
func TestTL2ExtensionRefusedWhenReadInvalidated(t *testing.T) {
	s := New(WithEngine(TL2))
	x := s.NewVar("x", 1)
	y := s.NewVar("y", 0)
	first := true
	var rx, ry int64
	err := s.Atomically(func(tx *Tx) error {
		rx = tx.Read(x)
		if first {
			first = false
			// Overwrite both after the snapshot: the y read below cannot
			// extend (x is stale) and the attempt must restart.
			if err := s.Atomically(func(in *Tx) error {
				in.Write(x, 2)
				in.Write(y, 2)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		ry = tx.Read(y)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rx != 2 || ry != 2 {
		t.Fatalf("torn snapshot: x=%d y=%d, want 2 2", rx, ry)
	}
	if s.Snapshot().Conflicts == 0 {
		t.Error("expected a conflict-retry when extension is impossible")
	}
}

func TestTxRetry(t *testing.T) {
	forEachEngine(t, func(t *testing.T, s *STM) {
		x := s.NewVar("x", 0)
		tries := 0
		if err := s.Atomically(func(tx *Tx) error {
			tries++
			if tries == 1 {
				tx.Retry()
			}
			tx.Write(x, int64(tries))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if tries != 2 || x.Load() != 2 {
			t.Fatalf("tries=%d x=%d, want 2 2", tries, x.Load())
		}
		if s.Snapshot().Conflicts == 0 {
			t.Error("Retry not counted as a conflict")
		}
	})
}
