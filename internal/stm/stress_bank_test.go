package stm

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// TestBankStress is the GOMAXPROCS-parameterized invariant stress for
// the race job: run it with -cpu 1,4,16 and the same code path is
// exercised single-threaded, moderately parallel and oversubscribed.
// Random transfers between accounts preserve the total balance; a
// reader thread asserts the invariant transactionally throughout. The
// full engine × clock matrix runs, so the adaptive engine's strategy
// flips and the deferred clock's shared write versions both face the
// race detector under every parallelism level.
func TestBankStress(t *testing.T) {
	const accounts = 16
	const initial = 1000
	transfers := 400
	if testing.Short() {
		transfers = 100
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	forEachEngineClock(t, func(t *testing.T, s *STM) {
		acct := make([]*Var, accounts)
		for i := range acct {
			acct[i] = s.NewVar("acct", initial)
		}
		total := int64(accounts * initial)
		var transferWG, readerWG sync.WaitGroup
		stop := make(chan struct{})
		readerWG.Add(1)
		go func() { // invariant reader
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var sum int64
				if err := s.AtomicallyRead(func(rtx *ReadTx) error {
					sum = 0
					for _, a := range acct {
						sum += rtx.Read(a)
					}
					return nil
				}); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				if sum != total {
					t.Errorf("invariant broken mid-run: total = %d, want %d", sum, total)
					return
				}
			}
		}()
		for w := 0; w < workers; w++ {
			transferWG.Add(1)
			go func(seed int64) {
				defer transferWG.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < transfers; i++ {
					from, to := rng.Intn(accounts), rng.Intn(accounts)
					if from == to {
						to = (to + 1) % accounts
					}
					amt := int64(rng.Intn(50) + 1)
					if err := s.Atomically(func(tx *Tx) error {
						tx.Write(acct[from], tx.Read(acct[from])-amt)
						tx.Write(acct[to], tx.Read(acct[to])+amt)
						return nil
					}); err != nil {
						t.Errorf("transfer: %v", err)
						return
					}
				}
			}(int64(w + 1))
		}
		transferWG.Wait()
		close(stop)
		readerWG.Wait()
		var sum int64
		if err := s.AtomicallyRead(func(rtx *ReadTx) error {
			sum = 0
			for _, a := range acct {
				sum += rtx.Read(a)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if sum != total {
			t.Fatalf("final total = %d, want %d", sum, total)
		}
	})
}
