package stm

// tl2Engine is the snapshot engine: the lazy commit protocol (buffered
// writes, commit-time locks, global version clock) refined with the two
// signature TL2 moves.
//
//   - Timestamp extension: a read that finds a variable newer than the
//     begin-time snapshot revalidates the read set against the current
//     clock and moves rv forward instead of aborting the attempt, so
//     long transactions survive unrelated commits.
//   - Invisible read-only transactions: AtomicallyRead bodies keep no
//     read set at all. Each read validates against rv as it happens,
//     making the whole transaction consistent as of rv; commit is O(1)
//     with no locks and no validation. (Multi-instance read-only
//     transactions still record reads: their serialization point is the
//     cross-instance validation, not any single rv.)
//
// Writes are buffered exactly as in the lazy engine, so tl2 inherits the
// §3.5 delayed-writeback privatization anomaly — new engines are new
// scenarios, not new guarantees; use Quiesce for privatization. It also
// inherits the lazy engine's commit path wholesale, including wakeSet:
// commit notification announces the buffered write set after writeback.
//
// Invisible reads interact with blocking: a read-only tl2 attempt keeps
// no read set, so when its body calls Block the runtime re-runs it once
// with the read set forced on (see atomicallyRead) — visible reads for
// that call only — and parks precisely from then on.
type tl2Engine struct{ lazyEngine }

func (tl2Engine) read(tx *Tx, v *Var) int64 {
	if val, ok := tx.lookupWrite(v); ok {
		return val
	}
	return sampleVar(tx, v, !tx.noReadSet, true)
}

func (tl2Engine) readBoxed(tx *Tx, b boxed) any {
	if box, ok := tx.lookupPWrite(b); ok {
		return box
	}
	return sampleBox(tx, b, !tx.noReadSet, true)
}

func (tl2Engine) invisibleReadOnly(tx *Tx) bool { return true }
