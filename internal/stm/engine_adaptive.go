package stm

// adaptiveEngine is the contention-adaptive strategy: it owns no
// protocol of its own, but delegates every attempt to one of two
// registered protocols chosen per instance by the contention controller
// (see adapt.go) — tl2 while the instance is calm, eager encounter
// locking while it is contended. Each attempt pins its delegate at
// begin (tx.del), so a mid-attempt flip never mixes protocols within
// one attempt.
//
// Soundness of mixing attempts across a flip: tl2 (write-buffering with
// commit-time locks) and eager (encounter locking with undo) speak the
// same versioned-lock wire protocol over the same varBase words — the
// lock bit excludes concurrent owners, a version above the snapshot
// aborts the reader, and commits release with a fresh version while
// holding the lock. Each protocol is correct against any peer honoring
// those invariants, not just against itself, so an in-flight tl2
// attempt racing a post-flip eager attempt composes exactly like two
// attempts of either fixed engine. (The global-lock engine is excluded
// from the rotation precisely because it does not speak this protocol:
// its reads take no locks and tolerate no concurrent committers.)
//
// The anomaly surface is the union of the delegates': write-buffering
// attempts exhibit the §3.5 delayed-writeback window, eager attempts
// the §3.4 speculative windows. Fences are required for privatization
// exactly as on the fixed engines.
type adaptiveEngine struct{}

// strategy values stored in STM.strategy; indexes adaptiveStrategies.
const (
	strategyTL2 int32 = iota
	strategyEager
)

// adaptiveStrategies are the delegate protocols, by strategy value.
var adaptiveStrategies = [...]engine{strategyTL2: tl2Engine{}, strategyEager: eagerEngine{}}

func (adaptiveEngine) begin(tx *Tx) {
	tx.del = adaptiveStrategies[tx.s.strategy.Load()]
	tx.del.begin(tx)
}

func (adaptiveEngine) finish(tx *Tx) { tx.del.finish(tx) }

func (adaptiveEngine) read(tx *Tx, v *Var) int64         { return tx.del.read(tx, v) }
func (adaptiveEngine) write(tx *Tx, v *Var, x int64)     { tx.del.write(tx, v, x) }
func (adaptiveEngine) readBoxed(tx *Tx, b boxed) any     { return tx.del.readBoxed(tx, b) }
func (adaptiveEngine) writeBoxed(tx *Tx, b boxed, x any) { tx.del.writeBoxed(tx, b, x) }

func (adaptiveEngine) prepare(tx *Tx) bool       { return tx.del.prepare(tx) }
func (adaptiveEngine) lockWrites(tx *Tx) bool    { return tx.del.lockWrites(tx) }
func (adaptiveEngine) validateReads(tx *Tx) bool { return tx.del.validateReads(tx) }
func (adaptiveEngine) commit(tx *Tx)             { tx.del.commit(tx) }
func (adaptiveEngine) rollback(tx *Tx)           { tx.del.rollback(tx) }

func (adaptiveEngine) wakeSet(tx *Tx, f func(*varBase)) { tx.del.wakeSet(tx, f) }

func (adaptiveEngine) invisibleReadOnly(tx *Tx) bool { return tx.del.invisibleReadOnly(tx) }
