package ltrf

import (
	"modtx/internal/core"
	"modtx/internal/event"
	"modtx/internal/rel"
)

// Suborders carries the §5 decomposition of program order and the derived
// external relations used by Lemmas C.1 and C.2.
//
// Following the paper, the po-suborders quantify over non-boundary actions
// (Act \ TAct, i.e. reads/writes/fences) and never relate actions of the
// same transaction:
//
//	a po-T→ b  iff a po→ b, a ≁tx b, b transactional in a writing transaction
//	a poT-→ b  iff a po→ b, a ≁tx b, a transactional
//	a poTT→ b  iff a poT-→ b and a po-T→ b
//	a poRW→ b  iff a po→ b, a a read, b a write
//	a poCon→ b iff a po→ b and a conflicts with b
//
// swe is the external transactional communication (cwr ∪ cww) \ po, and
// hbe the external component of happens-before.
//
// Note on hbe: the paper writes hbe = po-T;(swe;poTT)?;swe;poT-. Because
// our lifted relations are transaction-granular, two swe steps may meet at
// the same middle transaction (enter at its read, leave from its write)
// with no poTT step in between; we therefore compute
//
//	hbe = opt(po-T) ; (swe ∪ poTT)⁺ ; opt(poT-)
//
// which absorbs such chains (pure-poTT chains are contained in po and are
// harmless in the unions of C.1/C.2). The C.1 test validates the
// decomposition against the fixpoint hb on the whole catalog.
type Suborders struct {
	PoT   *rel.Rel // po-T
	PoTm  *rel.Rel // poT-
	PoTT  *rel.Rel
	PoRW  *rel.Rel
	PoCon *rel.Rel
	SWE   *rel.Rel
	HBE   *rel.Rel
	WRE   *rel.Rel // lwr \ po
	XRWE  *rel.Rel // xrw \ po
}

// DeriveSuborders computes the §5 suborders of the execution.
func DeriveSuborders(x *event.Execution, r *core.Rels) *Suborders {
	n := x.N()
	s := &Suborders{
		PoT:   rel.New(n),
		PoTm:  rel.New(n),
		PoTT:  rel.New(n),
		PoRW:  rel.New(n),
		PoCon: rel.New(n),
	}
	isBoundary := func(id int) bool {
		switch x.Ev(id).Kind {
		case event.KBegin, event.KCommit, event.KAbort:
			return true
		}
		return false
	}
	writingTx := make([]bool, x.NTx())
	for _, e := range x.Events {
		if e.Tx != event.NoTx && e.Kind == event.KWrite {
			writingTx[e.Tx] = true
		}
	}
	r.PO.Each(func(a, b int) {
		if isBoundary(a) || isBoundary(b) {
			return
		}
		ea, eb := x.Ev(a), x.Ev(b)
		if !x.SameTx(a, b) {
			if eb.Tx != event.NoTx && writingTx[eb.Tx] {
				s.PoT.Add(a, b)
			}
			if ea.Tx != event.NoTx {
				s.PoTm.Add(a, b)
			}
		}
		if ea.Kind == event.KRead && eb.Kind == event.KWrite {
			s.PoRW.Add(a, b)
		}
		conflict := ea.Loc == eb.Loc && ea.Loc != event.NoLoc &&
			(ea.Kind == event.KWrite || eb.Kind == event.KWrite)
		if conflict {
			s.PoCon.Add(a, b)
		}
	})
	s.PoTT = s.PoT.Clone().Intersect(s.PoTm)

	s.SWE = rel.UnionOf(r.CWR, r.CWW).Minus(r.PO)
	s.WRE = r.LWR.Clone().Minus(r.PO)
	s.XRWE = r.XRW.Clone().Minus(r.PO)

	// hbe = opt(po-T) ; (swe ∪ poTT)⁺ ; opt(poT-)
	mid := rel.UnionOf(s.SWE, s.PoTT).TransitiveClosure()
	hbe := mid.Clone()
	hbe.Union(rel.Compose(s.PoT, mid))
	hbe.Union(rel.Compose(mid, s.PoTm))
	hbe.Union(rel.Compose(rel.Compose(s.PoT, mid), s.PoTm))
	s.HBE = hbe
	return s
}

// CheckLemmaC1 verifies hb = init ∪ hbe ∪ po for the implementation model.
// It returns the two difference sets (pairs missing from the decomposition
// and pairs the decomposition adds); both empty means the lemma holds on
// this execution.
func CheckLemmaC1(x *event.Execution) (missing, extra [][2]int) {
	r := core.Derive(x)
	hb := core.HB(r, core.Implementation)
	s := DeriveSuborders(x, r)
	decomp := rel.UnionOf(r.Init, s.HBE, r.PO)
	hb.Each(func(a, b int) {
		if !decomp.Has(a, b) {
			missing = append(missing, [2]int{a, b})
		}
	})
	decomp.Each(func(a, b int) {
		if !hb.Has(a, b) {
			extra = append(extra, [2]int{a, b})
		}
	})
	return missing, extra
}

// ConsistentBySuborders evaluates the Lemma C.2 characterization of
// implementation-model consistency:
//
//	(hbe ∪ poT- ∪ po-T ∪ poRW ∪ wre ∪ xrwe) is acyclic
//	((init ∪ hbe ∪ poCon) ; lww) is irreflexive
//	((init ∪ hbe ∪ poCon) ; lrw) is irreflexive
func ConsistentBySuborders(x *event.Execution) bool {
	r := core.Derive(x)
	s := DeriveSuborders(x, r)
	if !rel.UnionOf(s.HBE, s.PoTm, s.PoT, s.PoRW, s.WRE, s.XRWE).Acyclic() {
		return false
	}
	base := rel.UnionOf(r.Init, s.HBE, s.PoCon)
	if !rel.Compose(base, r.LWW).Irreflexive() {
		return false
	}
	if !rel.Compose(base, r.LRW).Irreflexive() {
		return false
	}
	return true
}

// DropFences removes native quiescence-fence events (Lemma 5.1: "the
// induced execution in the programmer model obtained by dropping all the
// quiescence fences"). Fences encoded as sentinel-writing transactions are
// removed as well.
func DropFences(x *event.Execution) *event.Execution {
	sentinelTx := make(map[int]bool)
	for _, e := range x.Events {
		if e.Kind == event.KWrite && e.Val == event.SentinelVal && e.Tx != event.NoTx {
			sentinelTx[e.Tx] = true
		}
	}
	return x.Subsequence(func(id int) bool {
		e := x.Ev(id)
		if e.Kind == event.KFence {
			return false
		}
		return e.Tx == event.NoTx || !sentinelTx[e.Tx]
	})
}

// CheckLemma51 verifies Lemma 5.1 on one execution: if x is consistent in
// the implementation model and has no mixed races, then dropping fences
// yields an execution consistent in the programmer model. Returns
// (applicable, holds): applicable is false when the hypotheses fail.
func CheckLemma51(x *event.Execution) (applicable, holds bool) {
	if !core.Consistent(x, core.Implementation) {
		return false, true
	}
	if !core.MixedRaceFree(x, core.Implementation) {
		return false, true
	}
	y := DropFences(x)
	return true, core.Consistent(y, core.Programmer)
}
