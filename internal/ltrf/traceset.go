package ltrf

import (
	"fmt"
	"strings"

	"modtx/internal/core"
	"modtx/internal/event"
	"modtx/internal/exec"
	"modtx/internal/prog"
	"modtx/internal/rel"
)

// TraceSet is a finite, explicitly enumerated program semantics Σ: the set
// of well-formed consistent traces of a program, closed under prefixes
// (which subsumes the operational notion of partial execution). Traces are
// deduplicated by signature.
type TraceSet struct {
	Config  core.Config
	Traces  []*event.Execution
	sigs    map[string]int
	tokens  [][]string // token sequence per trace (aligned with Traces)
	InitLen int        // events of the initializing transaction

	hbCache     []*rel.Rel      // memoized happens-before per trace
	stableCache map[string]bool // memoized TransactionallyLStable by σ signature
}

// hbOf returns the memoized happens-before order of trace i.
func (ts *TraceSet) hbOf(i int) *rel.Rel {
	if ts.hbCache == nil {
		ts.hbCache = make([]*rel.Rel, len(ts.Traces))
	}
	if ts.hbCache[i] == nil {
		ts.hbCache[i] = core.HB(core.Derive(ts.Traces[i]), ts.Config)
	}
	return ts.hbCache[i]
}

// Signature renders a trace as prefix-stable tokens: one token per event.
// Writes encode their relative coherence insertion point (the number of
// previously placed same-location writes that are timestamp-later); reads
// encode the fingerprint of their fulfilling write. The token sequence
// uniquely determines the trace up to event renaming.
func Signature(x *event.Execution) []string {
	toks := make([]string, 0, x.N())
	ww := x.WWRel()
	for id := 0; id < x.N(); id++ {
		e := x.Ev(id)
		switch e.Kind {
		case event.KWrite:
			later := 0
			for j := 0; j < id; j++ {
				ej := x.Ev(j)
				if ej.Kind == event.KWrite && ej.Loc == e.Loc && ww.Has(id, j) {
					later++
				}
			}
			toks = append(toks, fmt.Sprintf("t%d:W%d=%d^%d", e.Thread, e.Loc, e.Val, later))
		case event.KRead:
			w, ok := x.WR[id]
			src := "?"
			if ok {
				f := FingerprintOf(x, w)
				src = fmt.Sprintf("%d.%d", f.Thread, f.Pos)
			}
			toks = append(toks, fmt.Sprintf("t%d:R%d=%d<-%s", e.Thread, e.Loc, e.Val, src))
		case event.KFence:
			toks = append(toks, fmt.Sprintf("t%d:Q%d", e.Thread, e.Loc))
		default:
			toks = append(toks, fmt.Sprintf("t%d:%s", e.Thread, e.Kind))
		}
	}
	return toks
}

// GenerateTraces enumerates Σ for the program: every well-formed
// linearization of every consistent execution, closed under prefixes.
// maxTraces caps the result as a safety valve (0 = 100000).
func GenerateTraces(p *prog.Program, cfg core.Config, maxTraces int) (*TraceSet, error) {
	if maxTraces == 0 {
		maxTraces = 100000
	}
	ts := &TraceSet{
		Config:  cfg,
		sigs:    make(map[string]int),
		InitLen: len(p.Locs) + 2,
	}
	var overflow bool
	_, err := exec.Enumerate(p, exec.Options{
		Config: cfg,
		Visit: func(x *event.Execution, _ *exec.Outcome) bool {
			g := x.Clone()
			linearizations(g, func(tr *event.Execution) bool {
				for k := ts.InitLen; k <= tr.N(); k++ {
					if len(ts.Traces) >= maxTraces {
						overflow = true
						return false
					}
					ts.add(tr.Prefix(k))
				}
				return true
			})
			return !overflow
		},
	})
	if err != nil {
		return nil, err
	}
	if overflow {
		return nil, fmt.Errorf("ltrf: trace set exceeds %d traces", maxTraces)
	}
	return ts, nil
}

func (ts *TraceSet) add(x *event.Execution) {
	sig := Signature(x)
	key := strings.Join(sig, " ")
	if _, dup := ts.sigs[key]; dup {
		return
	}
	ts.sigs[key] = len(ts.Traces)
	ts.Traces = append(ts.Traces, x)
	ts.tokens = append(ts.tokens, sig)
}

// Contains reports whether the trace is in Σ.
func (ts *TraceSet) Contains(x *event.Execution) bool {
	_, ok := ts.sigs[strings.Join(Signature(x), " ")]
	return ok
}

// ExtensionsOf returns the indices of all traces having the given token
// sequence as a proper or improper prefix.
func (ts *TraceSet) ExtensionsOf(prefix []string) []int {
	var out []int
	for i, toks := range ts.tokens {
		if len(toks) < len(prefix) {
			continue
		}
		match := true
		for j := range prefix {
			if toks[j] != prefix[j] {
				match = false
				break
			}
		}
		if match {
			out = append(out, i)
		}
	}
	return out
}

// Tokens returns the token sequence of trace i.
func (ts *TraceSet) Tokens(i int) []string { return ts.tokens[i] }

// ExistsWellFormedTrace reports whether the execution graph has at least
// one well-formed linearization (WF1–WF12). This realizes the paper's
// observation that the trace conditions WF8–WF11 are "redundant with
// respect to consistency" — consistent graphs can be laid out as traces —
// and is used by internal/conform to reject runtime behaviours that no
// trace of the model explains (e.g. dirty reads of aborted writes, WF7).
func ExistsWellFormedTrace(x *event.Execution) bool {
	found := false
	linearizations(x, func(*event.Execution) bool {
		found = true
		return false
	})
	return found
}

// linearizations enumerates every well-formed trace ordering of the
// execution graph: interleavings that respect program order and place
// every write before its readers (WF8), filtered by full well-formedness.
// yield returning false stops the enumeration.
func linearizations(x *event.Execution, yield func(*event.Execution) bool) bool {
	byThread := make([][]int, x.NThreads)
	for id := 0; id < x.N(); id++ {
		th := x.Ev(id).Thread
		byThread[th] = append(byThread[th], id)
	}
	next := make([]int, x.NThreads)
	placed := make([]bool, x.N())
	order := make([]int, 0, x.N())

	// WF1 pins the initializing transaction to the front.
	for _, id := range byThread[event.InitThread] {
		placed[id] = true
		order = append(order, id)
	}
	next[event.InitThread] = len(byThread[event.InitThread])

	var rec func() bool
	rec = func() bool {
		if len(order) == x.N() {
			tr := x.Reorder(order)
			if event.IsWellFormed(tr) {
				return yield(tr)
			}
			return true
		}
		for th := 1; th < x.NThreads; th++ {
			if next[th] >= len(byThread[th]) {
				continue
			}
			id := byThread[th][next[th]]
			if w, ok := x.WR[id]; ok && !placed[w] && w != id {
				continue // reads must follow their fulfilling write
			}
			next[th]++
			placed[id] = true
			order = append(order, id)
			if !rec() {
				return false
			}
			order = order[:len(order)-1]
			placed[id] = false
			next[th]--
		}
		return true
	}
	return rec()
}
