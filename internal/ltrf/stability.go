package ltrf

import (
	"fmt"
	"sort"

	"modtx/internal/core"
	"modtx/internal/event"
)

// LStable implements §4: a trace σ (given as trace index into Σ, or as a
// prefix of other traces by token matching) is L-stable for Σ if for every
// L-sequential δ such that σδ ∈ Σ, there is no a ∈ σ, b ∈ δ such that
// (a, b) is an L-race.
//
// sigma must itself be a member of Σ (its tokens are matched literally).
func (ts *TraceSet) LStable(sigma *event.Execution, L map[int]bool) bool {
	prefix := Signature(sigma)
	n := sigma.N()
	for _, i := range ts.ExtensionsOf(prefix) {
		tau := ts.Traces[i]
		if tau.N() == n {
			continue
		}
		// δ = tau[n:]; require every δ action L-sequential in tau.
		seq := true
		for id := n; id < tau.N(); id++ {
			if !LSequential(tau, L, id) {
				seq = false
				break
			}
		}
		if !seq {
			continue
		}
		// No L-race between a ∈ σ and b ∈ δ.
		hb := ts.hbOf(i)
		for a := 0; a < n; a++ {
			for b := n; b < tau.N(); b++ {
				if core.LConflict(tau, L, a, b) && !hb.Has(a, b) {
					return false
				}
			}
		}
	}
	return true
}

// TransactionallyLStable implements §4: σ is transactionally L-stable for
// Σ if it is L-stable, every transaction of σ is contiguous and resolved,
// and no extension σδ ∈ Σ contains an action β touching L with β xrw→ α
// for some α ∈ σ (new conflicting transactions must serialize afterwards;
// see Example A.1).
func (ts *TraceSet) TransactionallyLStable(sigma *event.Execution, L map[int]bool) bool {
	key := sigKey(sigma, L)
	if ts.stableCache == nil {
		ts.stableCache = make(map[string]bool)
	}
	if v, ok := ts.stableCache[key]; ok {
		return v
	}
	v := ts.transactionallyLStable(sigma, L)
	ts.stableCache[key] = v
	return v
}

func sigKey(x *event.Execution, L map[int]bool) string {
	locs := make([]int, 0, len(L))
	for loc := range L {
		locs = append(locs, loc)
	}
	sort.Ints(locs)
	key := fmt.Sprintf("%v|", locs)
	for _, t := range Signature(x) {
		key += t + " "
	}
	return key
}

func (ts *TraceSet) transactionallyLStable(sigma *event.Execution, L map[int]bool) bool {
	if !ts.LStable(sigma, L) {
		return false
	}
	if !event.AllContiguous(sigma) {
		return false
	}
	// Every transaction of σ must be resolved. Status entries for
	// transactions without events here (cut away by Prefix) are ignored.
	present := make([]bool, sigma.NTx())
	for _, e := range sigma.Events {
		if e.Tx != event.NoTx {
			present[e.Tx] = true
		}
	}
	for tx, st := range sigma.TxStatus {
		if present[tx] && st == event.Live {
			return false
		}
	}
	prefix := Signature(sigma)
	n := sigma.N()
	for _, i := range ts.ExtensionsOf(prefix) {
		tau := ts.Traces[i]
		if tau.N() == n {
			continue
		}
		xrw := core.Derive(tau).XRW
		for b := n; b < tau.N(); b++ {
			if !touchesL(tau, L, b) {
				continue
			}
			for a := 0; a < n; a++ {
				if xrw.Has(b, a) {
					return false
				}
			}
		}
	}
	return true
}
