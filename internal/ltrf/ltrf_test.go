package ltrf

import (
	"testing"

	"modtx/internal/core"
	"modtx/internal/event"
	"modtx/internal/exec"
	"modtx/internal/litmus"
	"modtx/internal/prog"
)

// --- small programs used for Σ generation ---

func miniMixed() *prog.Program {
	// x:=1 || atomic{r:=x} — one mixed race.
	return &prog.Program{
		Name: "mini-mixed",
		Locs: []string{"x"},
		Threads: []prog.Thread{
			{Name: "t1", Body: []prog.Stmt{prog.Write{Loc: prog.At("x"), Val: prog.Const(1)}}},
			{Name: "t2", Body: []prog.Stmt{
				prog.Atomic{Name: "a", Body: []prog.Stmt{prog.Read{RegName: "r", Loc: prog.At("x")}}},
			}},
		},
	}
}

func miniPrivatization() *prog.Program {
	return litmus.PrivatizationProgram(false)
}

func miniPublication() *prog.Program {
	// x:=1; atomic{y:=1} || atomic{r:=y}; q:=x
	return &prog.Program{
		Name: "mini-publication",
		Locs: []string{"x", "y"},
		Threads: []prog.Thread{
			{Name: "t1", Body: []prog.Stmt{
				prog.Write{Loc: prog.At("x"), Val: prog.Const(1)},
				prog.Atomic{Name: "a", Body: []prog.Stmt{prog.Write{Loc: prog.At("y"), Val: prog.Const(1)}}},
			}},
			{Name: "t2", Body: []prog.Stmt{
				prog.Atomic{Name: "b", Body: []prog.Stmt{prog.Read{RegName: "r", Loc: prog.At("y")}}},
				prog.Read{RegName: "q", Loc: prog.At("x")},
			}},
		},
	}
}

func storeBuffering() *prog.Program {
	return &prog.Program{
		Name: "sb",
		Locs: []string{"x", "y"},
		Threads: []prog.Thread{
			{Name: "t1", Body: []prog.Stmt{
				prog.Write{Loc: prog.At("x"), Val: prog.Const(1)},
				prog.Read{RegName: "r", Loc: prog.At("y")},
			}},
			{Name: "t2", Body: []prog.Stmt{
				prog.Write{Loc: prog.At("y"), Val: prog.Const(1)},
				prog.Read{RegName: "q", Loc: prog.At("x")},
			}},
		},
	}
}

func genTraces(t *testing.T, p *prog.Program) *TraceSet {
	t.Helper()
	ts, err := GenerateTraces(p, core.Programmer, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Traces) == 0 {
		t.Fatal("empty trace set")
	}
	return ts
}

func TestLSequentialBasics(t *testing.T) {
	// A read of the latest write is sequential; a stale read is weak.
	b := event.NewBuilder("x")
	t1 := b.Thread()
	w1 := t1.W("x", 1)
	w2 := t1.W("x", 2)
	t2 := b.Thread()
	rStale := t2.R("x", 1)
	rFresh := t2.R("x", 2)
	b.WWOrder("x", w1, w2)
	b.RF(w1, rStale)
	b.RF(w2, rFresh)
	x := b.MustBuild()
	if LSequential(x, nil, rStale) {
		t.Error("stale read must be L-weak")
	}
	if !LSequential(x, nil, rFresh) {
		t.Error("fresh read must be L-sequential")
	}
	// Writes: w1 precedes w2 in trace and timestamp: both sequential.
	if !LSequential(x, nil, w1) || !LSequential(x, nil, w2) {
		t.Error("in-order writes must be L-sequential")
	}
	// An out-of-timestamp-order write is weak.
	b2 := event.NewBuilder("x")
	u1 := b2.Thread()
	v2 := u1.W("x", 2)
	u2 := b2.Thread()
	v1 := u2.W("x", 1)
	b2.WWOrder("x", v1, v2)
	y := b2.MustBuild()
	if LSequential(y, nil, v1) {
		t.Error("write with timestamp below an earlier write must be L-weak")
	}
	_ = v2
	// Restricting L to another location makes everything sequential.
	if !AllLSequential(x, map[int]bool{99: true}) {
		t.Error("actions not touching L are L-sequential")
	}
}

func TestLWeakImpliesRace(t *testing.T) {
	// Lemma A.4: an L-weak action at the end of a consistent trace
	// participates in an L-race. Checked over Σ of the mixed program.
	ts := genTraces(t, miniMixed())
	for i, tau := range ts.Traces {
		last := tau.N() - 1
		if !LWeak(tau, nil, last) {
			continue
		}
		races := LRaces(tau, ts.Config, nil)
		found := false
		for _, r := range races {
			if r.B == last {
				found = true
			}
		}
		if !found {
			t.Errorf("trace %d: L-weak final action without an L-race\n%s", i, event.Pretty(tau))
		}
	}
}

func TestCausalClosure(t *testing.T) {
	x := func() *event.Execution {
		b := event.NewBuilder("x", "y")
		t1 := b.Thread()
		t1.Begin("a")
		t1.W("x", 1)
		t1.Commit()
		t2 := b.Thread()
		t2.Begin("b")
		t2.R("x", 1)
		t2.W("y", 1)
		t2.Commit()
		return b.MustBuild()
	}()
	// Closing under the transactional write removes the reading transaction.
	var wx int
	for _, e := range x.Events {
		if e.Kind == event.KWrite && e.Val == 1 && x.Locs[e.Loc] == "x" && !x.IsInit(e.ID) {
			wx = e.ID
		}
	}
	y := CausalClosure(x, core.Programmer, wx)
	for _, e := range y.Events {
		if e.Kind == event.KRead && y.Locs[e.Loc] == "x" {
			t.Error("causal successor (reading transaction) survived closure")
		}
	}
	// The pivot itself survives.
	found := false
	for _, e := range y.Events {
		if e.Kind == event.KWrite && y.Locs[e.Loc] == "x" && e.Val == 1 && !y.IsInit(e.ID) {
			found = true
		}
	}
	if !found {
		t.Error("pivot removed by its own closure")
	}
	if err := y.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateTracesShape(t *testing.T) {
	ts := genTraces(t, miniMixed())
	for i, tau := range ts.Traces {
		if !event.IsWellFormed(tau) {
			t.Fatalf("trace %d not well-formed", i)
		}
		if !core.Consistent(tau, ts.Config) {
			t.Fatalf("trace %d not consistent", i)
		}
	}
	// Prefix closure: every proper prefix of every trace is in Σ.
	for _, tau := range ts.Traces {
		for k := ts.InitLen; k < tau.N(); k++ {
			if !ts.Contains(tau.Prefix(k)) {
				t.Fatalf("prefix of length %d missing from Σ", k)
			}
		}
	}
}

func TestTheorem41(t *testing.T) {
	cases := []struct {
		name string
		prog *prog.Program
		locs []string // L; nil = all
	}{
		{"mini-mixed/all", miniMixed(), nil},
		{"mini-publication/all", miniPublication(), nil},
		{"mini-publication/x", miniPublication(), []string{"x"}},
		{"store-buffering/all", storeBuffering(), nil},
		{"privatization/all", miniPrivatization(), nil},
		{"privatization/x", miniPrivatization(), []string{"x"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			ts := genTraces(t, c.prog)
			var L map[int]bool
			if c.locs != nil {
				L = core.LocSet(ts.Traces[0], c.locs...)
			}
			checked, cexs := ts.CheckTheorem41(L)
			if len(cexs) > 0 {
				t.Fatalf("SC-LTRF counterexample (checked %d):\n%s", checked, cexs[0])
			}
			if checked == 0 {
				t.Logf("note: no decomposition satisfied the hypotheses (|Σ|=%d)", len(ts.Traces))
			} else {
				t.Logf("theorem verified on %d decompositions (|Σ|=%d)", checked, len(ts.Traces))
			}
		})
	}
}

func TestTheorem42OverTraceSets(t *testing.T) {
	for _, p := range []*prog.Program{miniMixed(), miniPublication(), storeBuffering()} {
		ts := genTraces(t, p)
		checked, failures := ts.CheckTheorem42()
		if len(failures) > 0 {
			t.Errorf("%s: aborted-removal broke consistency on %d/%d traces", p.Name, len(failures), checked)
		}
	}
}

func TestLemmaC1OnCatalog(t *testing.T) {
	for _, f := range litmus.Figures() {
		x := f.Build()
		hasFence := false
		for _, e := range x.Events {
			if e.Kind == event.KFence {
				hasFence = true
			}
		}
		if hasFence {
			continue // HBCQ/HBQB edges are outside the decomposition
		}
		missing, extra := CheckLemmaC1(x)
		if len(missing) > 0 || len(extra) > 0 {
			t.Errorf("%s: hb ≠ init ∪ hbe ∪ po (missing %v, extra %v)", f.ID, missing, extra)
		}
	}
}

func TestLemmaC1OnEnumerated(t *testing.T) {
	for _, p := range []*prog.Program{miniPublication(), miniPrivatization(), storeBuffering()} {
		n := 0
		_, err := exec.Enumerate(p, exec.Options{
			Config: core.Implementation,
			Visit: func(x *event.Execution, _ *exec.Outcome) bool {
				missing, extra := CheckLemmaC1(x)
				if len(missing) > 0 || len(extra) > 0 {
					t.Errorf("%s: decomposition mismatch (missing %v, extra %v)\n%s",
						p.Name, missing, extra, event.Pretty(x))
					return false
				}
				n++
				return true
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Errorf("%s: no executions checked", p.Name)
		}
	}
}

func TestLemmaC2Equivalence(t *testing.T) {
	// The suborder characterization must agree with the axiom-based
	// implementation-model consistency on every catalog figure (consistent
	// and inconsistent alike) and on coherence-perturbed variants.
	for _, f := range litmus.Figures() {
		x := f.Build()
		hasFence := false
		for _, e := range x.Events {
			if e.Kind == event.KFence {
				hasFence = true
			}
		}
		if hasFence {
			continue
		}
		want := core.Consistent(x, core.Implementation)
		got := ConsistentBySuborders(x)
		if got != want {
			t.Errorf("%s: suborder consistency %v, axiom consistency %v", f.ID, got, want)
		}
	}
}

func TestLemma51(t *testing.T) {
	// Over all implementation-consistent executions of the catalog's core
	// programs: mixed-race-freedom transfers consistency to the programmer
	// model.
	progs := []*prog.Program{
		miniPublication(),
		miniPrivatization(),
		litmus.PrivatizationProgram(true), // fenced variant
		storeBuffering(),
	}
	applicable := 0
	for _, p := range progs {
		_, err := exec.Enumerate(p, exec.Options{
			Config: core.Implementation,
			Visit: func(x *event.Execution, _ *exec.Outcome) bool {
				app, holds := CheckLemma51(x)
				if app {
					applicable++
					if !holds {
						t.Errorf("%s: Lemma 5.1 violated\n%s", p.Name, event.Pretty(x))
						return false
					}
				}
				return true
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if applicable == 0 {
		t.Error("Lemma 5.1 hypotheses never held; test is vacuous")
	} else {
		t.Logf("Lemma 5.1 verified on %d executions", applicable)
	}
}

func TestFingerprints(t *testing.T) {
	x := privExec()
	y := privExec()
	for id := 0; id < x.N(); id++ {
		if !ActSim(x, id, y, id) {
			t.Errorf("event %d not act-similar to itself across identical traces", id)
		}
		f := FingerprintOf(x, id)
		if got := FindByFingerprint(y, f); got != id {
			t.Errorf("fingerprint roundtrip: %d → %d", id, got)
		}
	}
}

func privExec() *event.Execution {
	b := event.NewBuilder("x", "y")
	t1 := b.Thread()
	t1.Begin("a")
	t1.R("y", 0)
	wx1 := t1.W("x", 1)
	t1.Commit()
	t2 := b.Thread()
	t2.Begin("b")
	t2.W("y", 1)
	t2.Commit()
	wx2 := t2.W("x", 2)
	b.WWOrder("x", wx1, wx2)
	return b.MustBuild()
}
