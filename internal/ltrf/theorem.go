package ltrf

import (
	"fmt"

	"modtx/internal/core"
	"modtx/internal/event"
)

// Counterexample reports a decomposition σδγ satisfying Theorem 4.1's
// hypotheses for which no witness race was found.
type Counterexample struct {
	TraceIndex int
	Split      int
	Gamma      int
	Detail     string
}

func (c Counterexample) String() string {
	return fmt.Sprintf("trace %d split %d gamma %d: %s", c.TraceIndex, c.Split, c.Gamma, c.Detail)
}

// CheckTheorem41 exhaustively checks the SC-LTRF theorem over Σ:
//
//	For every σδγ ∈ Σ with σ transactionally L-stable, δ transactionally
//	L-sequential in σδ, δ free of L-races in σδ, and γ L-weak in σδγ,
//	there exist b ∈ δ, γ′ act∼ γ and σδ′γ′ ∈ Σ such that δ′γ′ is
//	transactionally L-sequential in σδ′γ′ and (b, γ′) is an L-race
//	in σδ′γ′.
//
// Returns all hypothesis-satisfying decompositions that lack a witness
// (the theorem predicts none). checked counts the decompositions whose
// hypotheses held.
func (ts *TraceSet) CheckTheorem41(L map[int]bool) (checked int, cexs []Counterexample) {
	for ti, tau := range ts.Traces {
		n := tau.N()
		if n <= ts.InitLen {
			continue
		}
		gamma := n - 1
		if !LWeak(tau, L, gamma) {
			continue
		}
		sigmaDelta := tau.Prefix(n - 1)
		for split := ts.InitLen; split < n; split++ {
			if !ts.deltaTransactionallyLSequential(sigmaDelta, split) {
				continue
			}
			if ts.deltaHasLRace(sigmaDelta, split, L) {
				continue
			}
			sigma := tau.Prefix(split)
			if !ts.TransactionallyLStable(sigma, L) {
				continue
			}
			checked++
			if !ts.witnessExists(tau, split, gamma, L) {
				cexs = append(cexs, Counterexample{
					TraceIndex: ti,
					Split:      split,
					Gamma:      gamma,
					Detail:     "no sequential extension exhibits the race\n" + event.Pretty(tau),
				})
			}
		}
	}
	return checked, cexs
}

// deltaTransactionallyLSequential checks that every action of δ (positions
// ≥ split) is Loc-sequential in σδ and every transaction owning a δ action
// is contiguous. Following the theorem's use of act∼ over all locations,
// sequentiality here is judged over all locations (Loc), matching the
// sequentially-closed condition.
func (ts *TraceSet) deltaTransactionallyLSequential(sigmaDelta *event.Execution, split int) bool {
	for id := split; id < sigmaDelta.N(); id++ {
		if !LSequential(sigmaDelta, nil, id) {
			return false
		}
		if tx := sigmaDelta.Ev(id).Tx; tx != event.NoTx && !event.ContiguousTx(sigmaDelta, tx) {
			return false
		}
	}
	return true
}

// deltaHasLRace reports whether σδ contains an L-race whose later action
// lies in δ.
func (ts *TraceSet) deltaHasLRace(sigmaDelta *event.Execution, split int, L map[int]bool) bool {
	hb := core.HB(core.Derive(sigmaDelta), ts.Config)
	for b := 0; b < sigmaDelta.N(); b++ {
		for c := max(b+1, split); c < sigmaDelta.N(); c++ {
			if core.LConflict(sigmaDelta, L, b, c) && !hb.Has(b, c) {
				return true
			}
		}
	}
	return false
}

// witnessExists searches Σ for σδ′γ′ with γ′ act∼ γ, δ′γ′ transactionally
// L-sequential, and an L-race (b, γ′) for some b occurring in δ (matched
// across traces by fingerprint).
func (ts *TraceSet) witnessExists(tau *event.Execution, split, gamma int, L map[int]bool) bool {
	gammaFP := FingerprintOf(tau, gamma)
	gammaEv := tau.Ev(gamma)
	// Fingerprints of candidate b's in δ.
	var deltaFPs []Fingerprint
	for id := split; id < gamma; id++ {
		deltaFPs = append(deltaFPs, FingerprintOf(tau, id))
	}
	prefix := Signature(tau.Prefix(split))
	for _, i := range ts.ExtensionsOf(prefix) {
		cand := ts.Traces[i]
		if cand.N() <= split {
			continue
		}
		last := cand.N() - 1
		le := cand.Ev(last)
		if le.Kind != gammaEv.Kind || le.Loc != gammaEv.Loc || FingerprintOf(cand, last) != gammaFP {
			continue
		}
		// δ′γ′ transactionally L-sequential in σδ′γ′.
		ok := true
		for id := split; id <= last; id++ {
			if !LSequential(cand, nil, id) {
				ok = false
				break
			}
			if tx := cand.Ev(id).Tx; tx != event.NoTx && !event.ContiguousTx(cand, tx) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// (b, γ′) is an L-race for some b from δ present in δ′.
		hb := ts.hbOf(i)
		for b := split; b < last; b++ {
			fp := FingerprintOf(cand, b)
			inDelta := false
			for _, f := range deltaFPs {
				if f == fp {
					inDelta = true
					break
				}
			}
			if !inDelta {
				continue
			}
			if core.LConflict(cand, L, b, last) && !hb.Has(b, last) {
				return true
			}
		}
	}
	return false
}

// CheckTheorem42 verifies that removing aborted transactions preserves
// consistency for every trace of Σ (Theorem 4.2).
func (ts *TraceSet) CheckTheorem42() (checked int, failures []int) {
	for i, tau := range ts.Traces {
		if !core.Consistent(tau, ts.Config) {
			continue // Σ only holds consistent traces; defensive
		}
		checked++
		if !core.Consistent(tau.RemoveAborted(), ts.Config) {
			failures = append(failures, i)
		}
	}
	return checked, failures
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
