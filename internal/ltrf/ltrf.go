// Package ltrf implements the machinery of §4 of the paper — L-sequential
// actions, L-stable prefixes, their transactional variants, causal closure
// — and bounded checkers for the paper's metatheory: the SC-LTRF theorem
// (Theorem 4.1), removal of aborted transactions (Theorem 4.2), the
// suborder decomposition of happens-before (Lemma C.1) and the suborder
// characterization of consistency (Lemma C.2).
//
// All definitions are evaluated on the trace view of an execution: the
// event ID order is the paper's index order.
package ltrf

import (
	"modtx/internal/core"
	"modtx/internal/event"
	"modtx/internal/rel"
)

// touchesL reports whether the event accesses a location in L
// (nil L means all locations).
func touchesL(x *event.Execution, L map[int]bool, id int) bool {
	e := x.Ev(id)
	if e.Kind != event.KRead && e.Kind != event.KWrite {
		return false
	}
	return L == nil || L[e.Loc]
}

// LSequential implements §4: action c is L-sequential if it does not touch
// L, or is a begin/commit/abort action, or
//
//  1. there is no b index→ c such that c ww→ b (writes: the chosen
//     timestamp exceeds all preceding timestamps), and
//  2. if a wr→ c then there is no b index→ c such that a ww→ b (reads:
//     c reads the preceding write with the largest timestamp).
func LSequential(x *event.Execution, L map[int]bool, c int) bool {
	e := x.Ev(c)
	if !touchesL(x, L, c) {
		return true
	}
	ww := x.WWRel()
	switch e.Kind {
	case event.KWrite:
		for b := 0; b < c; b++ {
			if ww.Has(c, b) {
				return false
			}
		}
	case event.KRead:
		a, ok := x.WR[c]
		if !ok {
			return false // unfulfilled reads are not sequential
		}
		for b := 0; b < c; b++ {
			if ww.Has(a, b) {
				return false
			}
		}
	}
	return true
}

// LWeak is the negation of LSequential for actions that touch L.
func LWeak(x *event.Execution, L map[int]bool, c int) bool {
	return !LSequential(x, L, c)
}

// AllLSequential reports whether every action of the trace is L-sequential.
func AllLSequential(x *event.Execution, L map[int]bool) bool {
	for id := 0; id < x.N(); id++ {
		if !LSequential(x, L, id) {
			return false
		}
	}
	return true
}

// TransactionallyLSequential reports whether the trace is transactionally
// L-sequential (§4): every action is L-sequential and every transaction is
// contiguous.
func TransactionallyLSequential(x *event.Execution, L map[int]bool) bool {
	return AllLSequential(x, L) && event.AllContiguous(x)
}

// LRaceBetween reports whether (b, c) is an L-race in the trace (§4):
// b and c are in L-conflict, b index→ c, and not b hb→ c.
func LRaceBetween(x *event.Execution, cfg core.Config, L map[int]bool, b, c int) bool {
	if b >= c || !core.LConflict(x, L, b, c) {
		return false
	}
	hb := core.HB(core.Derive(x), cfg)
	return !hb.Has(b, c)
}

// LRaces returns all L-races of the trace.
func LRaces(x *event.Execution, cfg core.Config, L map[int]bool) []core.Race {
	return core.TraceRaces(x, cfg, L)
}

// CausalClosure computes σ ↓ a (supplementary material §A): the
// subsequence of x obtained by removing every event that causally follows
// a, i.e. b is removed iff a (hb ∪ lwr ∪ xrw)⁺ b. Note a itself survives.
func CausalClosure(x *event.Execution, cfg core.Config, a int) *event.Execution {
	r := core.Derive(x)
	hb := core.HB(r, cfg)
	causal := rel.UnionOf(hb, r.LWR, r.XRW).TransitiveClosure()
	return x.Subsequence(func(id int) bool { return !causal.Has(a, id) })
}

// CausalClosureSet removes the causal upclosure of every event in as.
func CausalClosureSet(x *event.Execution, cfg core.Config, as []int) *event.Execution {
	r := core.Derive(x)
	hb := core.HB(r, cfg)
	causal := rel.UnionOf(hb, r.LWR, r.XRW).TransitiveClosure()
	return x.Subsequence(func(id int) bool {
		for _, a := range as {
			if causal.Has(a, id) {
				return false
			}
		}
		return true
	})
}

// Fingerprint identifies an action across traces of the same program:
// thread id plus position within the thread. The paper's act∼ relation
// additionally fixes kind and location while allowing the value and
// timestamp to differ.
type Fingerprint struct {
	Thread int
	Pos    int
}

// FingerprintOf computes the fingerprint of an event.
func FingerprintOf(x *event.Execution, id int) Fingerprint {
	th := x.Ev(id).Thread
	pos := 0
	for i := 0; i < id; i++ {
		if x.Ev(i).Thread == th {
			pos++
		}
	}
	return Fingerprint{Thread: th, Pos: pos}
}

// ActSim implements act∼ across two traces: same thread, same per-thread
// position, same kind and same location (value and timestamp free).
func ActSim(x1 *event.Execution, id1 int, x2 *event.Execution, id2 int) bool {
	e1, e2 := x1.Ev(id1), x2.Ev(id2)
	if e1.Kind != e2.Kind || e1.Loc != e2.Loc {
		return false
	}
	return FingerprintOf(x1, id1) == FingerprintOf(x2, id2)
}

// FindByFingerprint returns the event of x with the given fingerprint, or -1.
func FindByFingerprint(x *event.Execution, f Fingerprint) int {
	pos := 0
	for id := 0; id < x.N(); id++ {
		if x.Ev(id).Thread != f.Thread {
			continue
		}
		if pos == f.Pos {
			return id
		}
		pos++
	}
	return -1
}
