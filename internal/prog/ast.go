// Package prog defines a small concurrent-program AST for litmus tests:
// threads of plain/transactional reads and writes over integer locations,
// with conditionals, bounded loops, explicit aborts and quiescence fences.
// It is the input language of the exhaustive enumerator in internal/exec
// and of the paper-program catalog in internal/litmus.
package prog

import (
	"fmt"
	"sort"
	"strings"
)

// Env is a thread-local register file.
type Env map[string]int

// Expr is an integer expression over registers. Boolean results use 0/1.
type Expr interface {
	Eval(env Env) int
	String() string
	regs(set map[string]bool)
}

// Const is an integer literal.
type Const int

// Eval implements Expr.
func (c Const) Eval(Env) int             { return int(c) }
func (c Const) String() string           { return fmt.Sprintf("%d", int(c)) }
func (c Const) regs(set map[string]bool) {}

// Reg reads a register (unset registers read as 0).
type Reg string

// Eval implements Expr.
func (r Reg) Eval(env Env) int         { return env[string(r)] }
func (r Reg) String() string           { return string(r) }
func (r Reg) regs(set map[string]bool) { set[string(r)] = true }

// BinOp is a binary operator.
type BinOp string

// Supported operators.
const (
	OpAdd BinOp = "+"
	OpSub BinOp = "-"
	OpMul BinOp = "*"
	OpEq  BinOp = "=="
	OpNe  BinOp = "!="
	OpLt  BinOp = "<"
	OpAnd BinOp = "&&"
	OpOr  BinOp = "||"
)

// Bin applies a binary operator to two subexpressions.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// Eval implements Expr.
func (b Bin) Eval(env Env) int {
	l, r := b.L.Eval(env), b.R.Eval(env)
	switch b.Op {
	case OpAdd:
		return l + r
	case OpSub:
		return l - r
	case OpMul:
		return l * r
	case OpEq:
		return b2i(l == r)
	case OpNe:
		return b2i(l != r)
	case OpLt:
		return b2i(l < r)
	case OpAnd:
		return b2i(l != 0 && r != 0)
	case OpOr:
		return b2i(l != 0 || r != 0)
	}
	panic("prog: unknown operator " + string(b.Op))
}

func (b Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}
func (b Bin) regs(set map[string]bool) { b.L.regs(set); b.R.regs(set) }

// Not negates a boolean expression.
type Not struct{ E Expr }

// Eval implements Expr.
func (n Not) Eval(env Env) int         { return b2i(n.E.Eval(env) == 0) }
func (n Not) String() string           { return "!" + n.E.String() }
func (n Not) regs(set map[string]bool) { n.E.regs(set) }

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// LocExpr designates a location: a scalar name, or an array cell whose
// index is evaluated at runtime (cell names are "base[i]").
type LocExpr struct {
	Base  string
	Index Expr // nil for scalars
}

// Name returns the flattened location name under env.
func (l LocExpr) Name(env Env) string {
	if l.Index == nil {
		return l.Base
	}
	return fmt.Sprintf("%s[%d]", l.Base, l.Index.Eval(env))
}

func (l LocExpr) String() string {
	if l.Index == nil {
		return l.Base
	}
	return fmt.Sprintf("%s[%s]", l.Base, l.Index)
}

// At builds a scalar location expression.
func At(name string) LocExpr { return LocExpr{Base: name} }

// AtIdx builds an array-cell location expression.
func AtIdx(base string, idx Expr) LocExpr { return LocExpr{Base: base, Index: idx} }

// Cell returns the flattened name of a concrete array cell.
func Cell(base string, i int) string { return fmt.Sprintf("%s[%d]", base, i) }

// Stmt is a program statement.
type Stmt interface {
	stmt()
	String() string
}

// Read loads a location into a register: reg := loc.
type Read struct {
	RegName string
	Loc     LocExpr
}

// Write stores an expression to a location: loc := val.
type Write struct {
	Loc LocExpr
	Val Expr
}

// Atomic runs Body as a transaction named Name.
type Atomic struct {
	Name string
	Body []Stmt
}

// AbortStmt aborts the enclosing transaction immediately.
type AbortStmt struct{}

// If branches on Cond (non-zero = true).
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// While loops on Cond for at most Bound iterations; exhausting the bound
// marks the thread's path incomplete (used for potentially-divergent
// programs such as the doomed-transaction example of §4).
type While struct {
	Cond  Expr
	Body  []Stmt
	Bound int
}

// Fence is a quiescence fence on a location (§5).
type Fence struct{ Loc LocExpr }

// Let assigns an expression to a register without touching memory
// (no event is emitted).
type Let struct {
	RegName string
	Val     Expr
}

func (Read) stmt()      {}
func (Write) stmt()     {}
func (Atomic) stmt()    {}
func (AbortStmt) stmt() {}
func (If) stmt()        {}
func (While) stmt()     {}
func (Fence) stmt()     {}
func (Let) stmt()       {}

func (s Read) String() string  { return fmt.Sprintf("%s := %s", s.RegName, s.Loc) }
func (s Write) String() string { return fmt.Sprintf("%s := %s", s.Loc, s.Val) }
func (s Atomic) String() string {
	return fmt.Sprintf("atomic %s { %s }", s.Name, stmtList(s.Body))
}
func (AbortStmt) String() string { return "abort" }
func (s If) String() string {
	out := fmt.Sprintf("if %s { %s }", s.Cond, stmtList(s.Then))
	if len(s.Else) > 0 {
		out += fmt.Sprintf(" else { %s }", stmtList(s.Else))
	}
	return out
}
func (s While) String() string {
	return fmt.Sprintf("while %s { %s }", s.Cond, stmtList(s.Body))
}
func (s Fence) String() string { return fmt.Sprintf("fence(%s)", s.Loc) }
func (s Let) String() string   { return fmt.Sprintf("let %s := %s", s.RegName, s.Val) }

func stmtList(ss []Stmt) string {
	parts := make([]string, len(ss))
	for i, s := range ss {
		parts[i] = s.String()
	}
	return strings.Join(parts, "; ")
}

// Thread is one sequential component of a program.
type Thread struct {
	Name string
	Body []Stmt
}

// Program is a parallel composition of threads over declared locations.
type Program struct {
	Name    string
	Locs    []string // all locations, including array cells
	Threads []Thread
	// ExtraValues extends the read-value universe beyond the fixpoint of
	// constants and computed writes (rarely needed).
	ExtraValues []int
	// Universe, when non-nil, overrides the computed read-value universe
	// entirely (0 is always included). Useful to bound enumeration for
	// programs whose write-value fixpoint grows without converging, such
	// as counters; unmatched read values are discarded by the enumerator,
	// so a too-large universe costs only time, while a too-small one
	// hides executions (the caller asserts it covers all producible
	// values).
	Universe []int
}

// Validate checks static sanity: declared locations, no abort outside a
// transaction, no nested transactions, no fence inside a transaction,
// positive loop bounds.
func (p *Program) Validate() error {
	locs := make(map[string]bool, len(p.Locs))
	for _, l := range p.Locs {
		if locs[l] {
			return fmt.Errorf("prog %s: duplicate location %q", p.Name, l)
		}
		locs[l] = true
	}
	for _, th := range p.Threads {
		if err := validateStmts(p, th.Body, false, locs); err != nil {
			return fmt.Errorf("prog %s, thread %s: %w", p.Name, th.Name, err)
		}
	}
	return nil
}

func validateStmts(p *Program, ss []Stmt, inTx bool, locs map[string]bool) error {
	checkLoc := func(l LocExpr) error {
		if l.Index != nil {
			// Array cells are validated dynamically against declared names.
			return nil
		}
		if !locs[l.Base] {
			return fmt.Errorf("undeclared location %q", l.Base)
		}
		return nil
	}
	for _, s := range ss {
		switch s := s.(type) {
		case Read:
			if err := checkLoc(s.Loc); err != nil {
				return err
			}
		case Write:
			if err := checkLoc(s.Loc); err != nil {
				return err
			}
		case Atomic:
			if inTx {
				return fmt.Errorf("nested transaction %q", s.Name)
			}
			if err := validateStmts(p, s.Body, true, locs); err != nil {
				return err
			}
		case AbortStmt:
			if !inTx {
				return fmt.Errorf("abort outside transaction")
			}
		case If:
			if err := validateStmts(p, s.Then, inTx, locs); err != nil {
				return err
			}
			if err := validateStmts(p, s.Else, inTx, locs); err != nil {
				return err
			}
		case While:
			if s.Bound <= 0 {
				return fmt.Errorf("while loop needs a positive bound")
			}
			if err := validateStmts(p, s.Body, inTx, locs); err != nil {
				return err
			}
		case Fence:
			if inTx {
				return fmt.Errorf("fence inside transaction")
			}
			if err := checkLoc(s.Loc); err != nil {
				return err
			}
		case Let:
			// Pure register assignment; nothing to check.
		default:
			return fmt.Errorf("unknown statement %T", s)
		}
	}
	return nil
}

// Constants returns all integer literals appearing in the program.
func (p *Program) Constants() []int {
	set := map[int]bool{0: true}
	var walkExpr func(Expr)
	walkExpr = func(e Expr) {
		switch e := e.(type) {
		case Const:
			set[int(e)] = true
		case Bin:
			walkExpr(e.L)
			walkExpr(e.R)
		case Not:
			walkExpr(e.E)
		}
	}
	var walk func([]Stmt)
	walk = func(ss []Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case Write:
				walkExpr(s.Val)
				if s.Loc.Index != nil {
					walkExpr(s.Loc.Index)
				}
			case Let:
				walkExpr(s.Val)
			case Read:
				if s.Loc.Index != nil {
					walkExpr(s.Loc.Index)
				}
			case Atomic:
				walk(s.Body)
			case If:
				walkExpr(s.Cond)
				walk(s.Then)
				walk(s.Else)
			case While:
				walkExpr(s.Cond)
				walk(s.Body)
			}
		}
	}
	for _, th := range p.Threads {
		walk(th.Body)
	}
	for _, v := range p.ExtraValues {
		set[v] = true
	}
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// String renders the program in litmus-file syntax (parseable by Parse).
func (p *Program) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "name: %s\nlocs: %s\n", p.Name, strings.Join(p.Locs, " "))
	for _, th := range p.Threads {
		fmt.Fprintf(&sb, "thread %s:\n", th.Name)
		writeStmts(&sb, th.Body, "  ")
	}
	return sb.String()
}

func writeStmts(sb *strings.Builder, ss []Stmt, indent string) {
	for _, s := range ss {
		switch s := s.(type) {
		case Atomic:
			fmt.Fprintf(sb, "%satomic %s {\n", indent, s.Name)
			writeStmts(sb, s.Body, indent+"  ")
			fmt.Fprintf(sb, "%s}\n", indent)
		case If:
			fmt.Fprintf(sb, "%sif %s {\n", indent, s.Cond)
			writeStmts(sb, s.Then, indent+"  ")
			if len(s.Else) > 0 {
				fmt.Fprintf(sb, "%s} else {\n", indent)
				writeStmts(sb, s.Else, indent+"  ")
			}
			fmt.Fprintf(sb, "%s}\n", indent)
		case While:
			fmt.Fprintf(sb, "%swhile %s bound %d {\n", indent, s.Cond, s.Bound)
			writeStmts(sb, s.Body, indent+"  ")
			fmt.Fprintf(sb, "%s}\n", indent)
		default:
			fmt.Fprintf(sb, "%s%s\n", indent, s)
		}
	}
}
