package prog

import (
	"fmt"
	"sort"

	"modtx/internal/event"
)

// PathEvent is one action emitted by a thread along a control-flow path.
// Loc is the flattened location name; Tx names the transaction for KBegin.
type PathEvent struct {
	Kind event.Kind
	Loc  string
	Val  int
	Tx   string
}

// Path is one resolved control-flow path of a thread: every read has been
// assigned an oracle value from the universe, so branches are decided.
// Complete is false when a loop bound was exhausted (the thread "diverges"
// and any open transaction stays live).
type Path struct {
	Events   []PathEvent
	Complete bool
	Regs     Env
}

type stopMode uint8

const (
	stopNone stopMode = iota
	stopAbort
	stopDiverge
)

type pathState struct {
	env    Env
	events []PathEvent
	stop   stopMode
	nfence int
}

func (st *pathState) clone() *pathState {
	env := make(Env, len(st.env))
	for k, v := range st.env {
		env[k] = v
	}
	return &pathState{
		env:    env,
		events: append([]PathEvent(nil), st.events...),
		stop:   st.stop,
		nfence: st.nfence,
	}
}

func (st *pathState) emit(k event.Kind, loc string, val int, tx string) {
	st.events = append(st.events, PathEvent{Kind: k, Loc: loc, Val: val, Tx: tx})
}

// ThreadPaths enumerates every control-flow path of the thread, forking at
// each read over the value universe. Quiescence fences are emitted as
// committed singleton transactions writing event.SentinelVal, following the
// paper's §5 encoding (the enumerator explores their coherence position).
func ThreadPaths(th Thread, universe []int) []Path {
	init := &pathState{env: make(Env)}
	finals := execStmts(th.Body, []*pathState{init}, universe, th.Name)
	out := make([]Path, 0, len(finals))
	for _, st := range finals {
		out = append(out, Path{
			Events:   st.events,
			Complete: st.stop != stopDiverge,
			Regs:     st.env,
		})
	}
	return out
}

func execStmts(ss []Stmt, states []*pathState, universe []int, thName string) []*pathState {
	for _, s := range ss {
		var next []*pathState
		for _, st := range states {
			if st.stop != stopNone {
				next = append(next, st)
				continue
			}
			next = append(next, execStmt(s, st, universe, thName)...)
		}
		states = next
	}
	return states
}

func execStmt(s Stmt, st *pathState, universe []int, thName string) []*pathState {
	switch s := s.(type) {
	case Read:
		loc := s.Loc.Name(st.env)
		out := make([]*pathState, 0, len(universe))
		for _, v := range universe {
			ns := st.clone()
			ns.emit(event.KRead, loc, v, "")
			ns.env[s.RegName] = v
			out = append(out, ns)
		}
		return out

	case Write:
		st.emit(event.KWrite, s.Loc.Name(st.env), s.Val.Eval(st.env), "")
		return []*pathState{st}

	case Atomic:
		st.emit(event.KBegin, "", 0, s.Name)
		results := execStmts(s.Body, []*pathState{st}, universe, thName)
		var out []*pathState
		for _, res := range results {
			switch res.stop {
			case stopAbort:
				res.emit(event.KAbort, "", 0, s.Name)
				res.stop = stopNone
			case stopDiverge:
				// Transaction stays live; thread ends.
			default:
				res.emit(event.KCommit, "", 0, s.Name)
			}
			out = append(out, res)
		}
		return out

	case AbortStmt:
		st.stop = stopAbort
		return []*pathState{st}

	case If:
		if s.Cond.Eval(st.env) != 0 {
			return execStmts(s.Then, []*pathState{st}, universe, thName)
		}
		return execStmts(s.Else, []*pathState{st}, universe, thName)

	case While:
		states := []*pathState{st}
		for i := 0; i < s.Bound; i++ {
			var iterate, done []*pathState
			for _, cur := range states {
				if cur.stop != stopNone {
					done = append(done, cur)
				} else if cur.Cond(s.Cond) {
					iterate = append(iterate, cur)
				} else {
					done = append(done, cur)
				}
			}
			if len(iterate) == 0 {
				states = done
				break
			}
			states = append(done, execStmts(s.Body, iterate, universe, thName)...)
		}
		// Any state whose condition still holds after the bound diverges.
		for _, cur := range states {
			if cur.stop == stopNone && cur.Cond(s.Cond) {
				cur.stop = stopDiverge
			}
		}
		return states

	case Let:
		st.env[s.RegName] = s.Val.Eval(st.env)
		return []*pathState{st}

	case Fence:
		// §5 encoding: a fence behaves like a committed transaction
		// writing the location.
		st.nfence++
		tx := fmt.Sprintf("%s.q%d", thName, st.nfence)
		st.emit(event.KBegin, "", 0, tx)
		st.emit(event.KWrite, s.Loc.Name(st.env), event.SentinelVal, "")
		st.emit(event.KCommit, "", 0, tx)
		return []*pathState{st}
	}
	panic(fmt.Sprintf("prog: unknown statement %T", s))
}

// Cond evaluates an expression as a boolean in the state's register file.
func (st *pathState) Cond(e Expr) bool { return e.Eval(st.env) != 0 }

// ValueUniverse computes the read-value universe of the program: the least
// set containing 0, every constant, every ExtraValue, and every value any
// path can write when reads range over the universe. The fixpoint is capped
// at eight rounds (sufficient for all catalog programs; capped growth is
// sound for forbidden-outcome checks because unmatched read values are
// discarded by the enumerator).
func ValueUniverse(p *Program) []int {
	if p.Universe != nil {
		set := map[int]bool{0: true}
		for _, v := range p.Universe {
			set[v] = true
		}
		u := make([]int, 0, len(set))
		for v := range set {
			u = append(u, v)
		}
		sort.Ints(u)
		return u
	}
	u := p.Constants()
	for iter := 0; iter < 8; iter++ {
		set := make(map[int]bool, len(u))
		for _, v := range u {
			set[v] = true
		}
		before := len(set)
		for _, th := range p.Threads {
			for _, path := range ThreadPaths(th, u) {
				for _, ev := range path.Events {
					if ev.Kind == event.KWrite && ev.Val != event.SentinelVal {
						set[ev.Val] = true
					}
				}
			}
		}
		if len(set) == before {
			return u
		}
		u = u[:0]
		for v := range set {
			u = append(u, v)
		}
		sort.Ints(u)
	}
	return u
}
