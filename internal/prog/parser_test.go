package prog

import (
	"testing"

	"modtx/internal/event"
)

const privatizationSrc = `
# The privatization idiom of §1.
name: privatization
locs: x y
thread t1:
  atomic a {
    r := y
    if !r { x := 1 }
  }
thread t2:
  atomic b { y := 1 }
  fence(x)
  x := 2
`

func TestParsePrivatization(t *testing.T) {
	p, err := Parse(privatizationSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "privatization" || len(p.Locs) != 2 || len(p.Threads) != 2 {
		t.Fatalf("parsed shape wrong: %+v", p)
	}
	a, ok := p.Threads[0].Body[0].(Atomic)
	if !ok || a.Name != "a" || len(a.Body) != 2 {
		t.Fatalf("thread 1 body wrong: %v", p.Threads[0].Body)
	}
	if _, ok := a.Body[0].(Read); !ok {
		t.Errorf("first statement should be a read: %v", a.Body[0])
	}
	iff, ok := a.Body[1].(If)
	if !ok {
		t.Fatalf("second statement should be if: %v", a.Body[1])
	}
	if _, ok := iff.Then[0].(Write); !ok {
		t.Errorf("branch should write: %v", iff.Then[0])
	}
	if _, ok := p.Threads[1].Body[1].(Fence); !ok {
		t.Errorf("expected fence: %v", p.Threads[1].Body[1])
	}
}

func TestParseRoundTrip(t *testing.T) {
	p, err := Parse(privatizationSrc)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse(p.String())
	if err != nil {
		t.Fatalf("re-parse of String() failed: %v\n%s", err, p.String())
	}
	if q.String() != p.String() {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", p.String(), q.String())
	}
}

func TestParseWhileAndArrays(t *testing.T) {
	src := `
name: arrays
locs: x z[0] z[1]
universe: 0 1
thread t1:
  q := x
  while q bound 3 { q := x }
  z[q] := q + 1
  let m := q * 2
  atomic a { abort }
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	body := p.Threads[0].Body
	if _, ok := body[1].(While); !ok {
		t.Errorf("expected while: %v", body[1])
	}
	w, ok := body[2].(Write)
	if !ok || w.Loc.Index == nil {
		t.Errorf("expected indexed write: %v", body[2])
	}
	if _, ok := body[3].(Let); !ok {
		t.Errorf("expected let: %v", body[3])
	}
	if len(p.Universe) != 2 {
		t.Errorf("universe = %v", p.Universe)
	}
	// The loop exits only with q=0, so completed paths write z[0]=1;
	// always-1 paths exhaust the bound and diverge.
	paths := ThreadPaths(p.Threads[0], []int{0, 1})
	var wroteZ0, diverged bool
	for _, pt := range paths {
		if !pt.Complete {
			diverged = true
		}
		for _, e := range pt.Events {
			if e.Kind == event.KWrite && e.Loc == "z[0]" && e.Val == 1 {
				wroteZ0 = true
			}
		}
	}
	if !wroteZ0 || !diverged {
		t.Errorf("wroteZ0=%v diverged=%v, want both", wroteZ0, diverged)
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	src := `
name: expr
locs: x
thread t:
  let a := 1 + 2 * 3
  let b := (1 + 2) * 3
  let c := a == 7 && b == 9
  let d := !(a < b) || a != b
  x := c + d
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	env := Env{}
	for _, s := range p.Threads[0].Body {
		if l, ok := s.(Let); ok {
			env[l.RegName] = l.Val.Eval(env)
		}
	}
	if env["a"] != 7 || env["b"] != 9 || env["c"] != 1 || env["d"] != 1 {
		t.Errorf("env = %v", env)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"name:",                                 // missing name
		"locs: x\nthread t:\n  y[0] := 1",       // indexed write to undeclared base
		"locs: x\nthread t:\n  atomic a { x :=", // truncated
		"locs: x\nthread t:\n  x := $",          // bad character
		"locs: x\nthread t:\n  abort",           // abort outside tx
		"bogus: 1",                              // unknown section
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected parse/validate error for %q", src)
		}
	}
	// Assignment to an undeclared name is a register let, not an error.
	if _, err := Parse("locs: x\nthread t:\n  y := 1"); err != nil {
		t.Errorf("register let misparsed: %v", err)
	}
}

func TestParsedProgramString(t *testing.T) {
	// Every catalog-like construct survives String() → Parse().
	src := `
name: everything
locs: x y z[0]
universe: 0 1 2
thread t1:
  let r := 0
  atomic a {
    q := x
    if q == 0 { x := 1 } else { abort }
  }
  while r < 1 bound 2 { r := y }
  fence(x)
  z[0] := r + q
thread t2:
  y := 2
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse(p.String())
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, p.String())
	}
	if len(q.Threads) != 2 {
		t.Errorf("threads = %d", len(q.Threads))
	}
}
