package prog

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads a litmus program in the textual format emitted by
// Program.String:
//
//	name: privatization
//	locs: x y z[0]
//	universe: 0 1 2          # optional explicit value universe
//	thread t1:
//	  atomic a {
//	    r := y
//	    if !r { x := 1 }
//	  }
//	thread t2:
//	  atomic b { y := 1 }
//	  fence(x)
//	  x := 2
//
// Statements: reads/writes `lhs := expr` (lhs is a write target when its
// base name is a declared location, otherwise a register read when the rhs
// is a bare location, otherwise `let`), `atomic name { ... }`, `abort`,
// `if e { ... } else { ... }`, `while e bound n { ... }`, `fence(loc)`,
// `let r := e`. Comments run from '#' to end of line.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

type token struct {
	kind string // "ident", "num", or the symbol itself
	text string
	line int
}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	symbols := []string{":=", "==", "!=", "&&", "||", "{", "}", "(", ")", "[", "]", ":", "!", "<", "+", "-", "*"}
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case unicode.IsDigit(rune(c)):
			j := i
			for j < len(src) && unicode.IsDigit(rune(src[j])) {
				j++
			}
			toks = append(toks, token{kind: "num", text: src[i:j], line: line})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_' || src[j] == '\'' || src[j] == '.') {
				j++
			}
			toks = append(toks, token{kind: "ident", text: src[i:j], line: line})
			i = j
		default:
			matched := false
			for _, s := range symbols {
				if strings.HasPrefix(src[i:], s) {
					toks = append(toks, token{kind: s, text: s, line: line})
					i += len(s)
					matched = true
					break
				}
			}
			if !matched {
				return nil, fmt.Errorf("line %d: unexpected character %q", line, c)
			}
		}
	}
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
	locs map[string]bool // declared base names and cells
}

func (p *parser) peek() token {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return token{kind: "eof"}
}

func (p *parser) next() token {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expect(kind string) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, fmt.Errorf("line %d: expected %q, got %q", t.line, kind, t.text)
	}
	return t, nil
}

func (p *parser) accept(kind, text string) bool {
	t := p.peek()
	if t.kind == kind && (text == "" || t.text == text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) program() (*Program, error) {
	prog := &Program{}
	p.locs = make(map[string]bool)
	for {
		t := p.peek()
		if t.kind == "eof" {
			break
		}
		if t.kind != "ident" {
			return nil, fmt.Errorf("line %d: expected section keyword, got %q", t.line, t.text)
		}
		switch t.text {
		case "name":
			p.next()
			if _, err := p.expect(":"); err != nil {
				return nil, err
			}
			id, err := p.expect("ident")
			if err != nil {
				return nil, err
			}
			prog.Name = id.text
		case "locs":
			p.next()
			if _, err := p.expect(":"); err != nil {
				return nil, err
			}
			for p.peek().kind == "ident" && !isSection(p.peek().text) {
				name := p.next().text
				if p.accept("[", "") {
					idx, err := p.expect("num")
					if err != nil {
						return nil, err
					}
					if _, err := p.expect("]"); err != nil {
						return nil, err
					}
					name = fmt.Sprintf("%s[%s]", name, idx.text)
				}
				prog.Locs = append(prog.Locs, name)
				p.locs[name] = true
				p.locs[baseOf(name)] = true
			}
		case "universe":
			p.next()
			if _, err := p.expect(":"); err != nil {
				return nil, err
			}
			for p.peek().kind == "num" {
				v, _ := strconv.Atoi(p.next().text)
				prog.Universe = append(prog.Universe, v)
			}
		case "thread":
			p.next()
			id, err := p.expect("ident")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(":"); err != nil {
				return nil, err
			}
			body, err := p.stmts(func() bool {
				nx := p.peek()
				return nx.kind == "eof" || (nx.kind == "ident" && (nx.text == "thread"))
			})
			if err != nil {
				return nil, err
			}
			prog.Threads = append(prog.Threads, Thread{Name: id.text, Body: body})
		default:
			return nil, fmt.Errorf("line %d: unknown section %q", t.line, t.text)
		}
	}
	return prog, nil
}

func isSection(s string) bool {
	switch s {
	case "name", "locs", "universe", "thread":
		return true
	}
	return false
}

func baseOf(name string) string {
	if i := strings.IndexByte(name, '['); i >= 0 {
		return name[:i]
	}
	return name
}

// stmts parses statements until stop() or a closing brace.
func (p *parser) stmts(stop func() bool) ([]Stmt, error) {
	var out []Stmt
	for {
		if stop != nil && stop() {
			return out, nil
		}
		t := p.peek()
		if t.kind == "}" || t.kind == "eof" {
			return out, nil
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

func (p *parser) block() ([]Stmt, error) {
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	body, err := p.stmts(nil)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("}"); err != nil {
		return nil, err
	}
	return body, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.peek()
	switch {
	case t.kind == "ident" && t.text == "atomic":
		p.next()
		name := "tx"
		if p.peek().kind == "ident" {
			name = p.next().text
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return Atomic{Name: name, Body: body}, nil

	case t.kind == "ident" && t.text == "abort":
		p.next()
		return AbortStmt{}, nil

	case t.kind == "ident" && t.text == "if":
		p.next()
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.peek().kind == "ident" && p.peek().text == "else" {
			p.next()
			els, err = p.block()
			if err != nil {
				return nil, err
			}
		}
		return If{Cond: cond, Then: then, Else: els}, nil

	case t.kind == "ident" && t.text == "while":
		p.next()
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		bound := 2
		if p.peek().kind == "ident" && p.peek().text == "bound" {
			p.next()
			n, err := p.expect("num")
			if err != nil {
				return nil, err
			}
			bound, _ = strconv.Atoi(n.text)
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return While{Cond: cond, Body: body, Bound: bound}, nil

	case t.kind == "ident" && t.text == "fence":
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		loc, err := p.locExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return Fence{Loc: loc}, nil

	case t.kind == "ident" && t.text == "let":
		p.next()
		reg, err := p.expect("ident")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(":="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return Let{RegName: reg.text, Val: e}, nil

	case t.kind == "ident":
		// Assignment: write if the base name is a declared location.
		name := p.next().text
		var idx Expr
		if p.accept("[", "") {
			var err error
			idx, err = p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(":="); err != nil {
			return nil, err
		}
		if p.locs[name] {
			val, err := p.expr()
			if err != nil {
				return nil, err
			}
			return Write{Loc: LocExpr{Base: name, Index: idx}, Val: val}, nil
		}
		if idx != nil {
			return nil, fmt.Errorf("line %d: indexed write to undeclared location %q", t.line, name)
		}
		// Register target: a read when the rhs is a bare location,
		// otherwise a let.
		save := p.pos
		if rhs := p.peek(); rhs.kind == "ident" && p.locs[rhs.text] {
			base := p.next().text
			var ridx Expr
			if p.accept("[", "") {
				var err error
				ridx, err = p.expr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect("]"); err != nil {
					return nil, err
				}
			}
			// A bare location (not part of a larger expression).
			if nx := p.peek().kind; nx != "+" && nx != "-" && nx != "*" && nx != "==" && nx != "!=" && nx != "<" && nx != "&&" && nx != "||" {
				return Read{RegName: name, Loc: LocExpr{Base: base, Index: ridx}}, nil
			}
			p.pos = save
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return Let{RegName: name, Val: e}, nil
	}
	return nil, fmt.Errorf("line %d: unexpected token %q", t.line, t.text)
}

func (p *parser) locExpr() (LocExpr, error) {
	id, err := p.expect("ident")
	if err != nil {
		return LocExpr{}, err
	}
	l := LocExpr{Base: id.text}
	if p.accept("[", "") {
		idx, err := p.expr()
		if err != nil {
			return LocExpr{}, err
		}
		if _, err := p.expect("]"); err != nil {
			return LocExpr{}, err
		}
		l.Index = idx
	}
	return l, nil
}

// Expression grammar, lowest to highest precedence:
// or → and → cmp → add → mul → unary → atom.
func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == "||" {
		p.next()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = Bin{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == "&&" {
		p.next()
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = Bin{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch p.peek().kind {
		case "==":
			op = OpEq
		case "!=":
			op = OpNe
		case "<":
			op = OpLt
		default:
			return l, nil
		}
		p.next()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		l = Bin{Op: op, L: l, R: r}
	}
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch p.peek().kind {
		case "+":
			op = OpAdd
		case "-":
			op = OpSub
		default:
			return l, nil
		}
		p.next()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = Bin{Op: op, L: l, R: r}
	}
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == "*" {
		p.next()
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = Bin{Op: OpMul, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unary() (Expr, error) {
	if p.peek().kind == "!" {
		p.next()
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Not{E: e}, nil
	}
	return p.atom()
}

func (p *parser) atom() (Expr, error) {
	t := p.next()
	switch t.kind {
	case "num":
		v, _ := strconv.Atoi(t.text)
		return Const(v), nil
	case "ident":
		return Reg(t.text), nil
	case "(":
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, fmt.Errorf("line %d: unexpected token %q in expression", t.line, t.text)
}
