package prog

import (
	"strings"
	"testing"

	"modtx/internal/event"
)

func TestExprEval(t *testing.T) {
	env := Env{"r": 3, "q": 0}
	cases := []struct {
		e    Expr
		want int
	}{
		{Const(7), 7},
		{Reg("r"), 3},
		{Reg("unset"), 0},
		{Bin{OpAdd, Reg("r"), Const(2)}, 5},
		{Bin{OpSub, Reg("r"), Const(1)}, 2},
		{Bin{OpMul, Reg("r"), Const(2)}, 6},
		{Bin{OpEq, Reg("r"), Const(3)}, 1},
		{Bin{OpNe, Reg("r"), Const(3)}, 0},
		{Bin{OpLt, Reg("q"), Reg("r")}, 1},
		{Bin{OpAnd, Reg("r"), Reg("q")}, 0},
		{Bin{OpOr, Reg("r"), Reg("q")}, 1},
		{Not{Reg("q")}, 1},
		{Not{Reg("r")}, 0},
	}
	for _, c := range cases {
		if got := c.e.Eval(env); got != c.want {
			t.Errorf("%s = %d, want %d", c.e, got, c.want)
		}
	}
}

func TestLocExpr(t *testing.T) {
	env := Env{"i": 2}
	if got := At("x").Name(env); got != "x" {
		t.Errorf("scalar name = %q", got)
	}
	if got := AtIdx("z", Reg("i")).Name(env); got != "z[2]" {
		t.Errorf("cell name = %q", got)
	}
	if Cell("z", 0) != "z[0]" {
		t.Error("Cell naming broken")
	}
}

func TestValidate(t *testing.T) {
	ok := &Program{
		Name: "ok",
		Locs: []string{"x"},
		Threads: []Thread{{Name: "t1", Body: []Stmt{
			Atomic{Name: "a", Body: []Stmt{Write{At("x"), Const(1)}, AbortStmt{}}},
		}}},
	}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Program{
		{Name: "dup", Locs: []string{"x", "x"}},
		{Name: "undeclared", Locs: []string{"x"}, Threads: []Thread{
			{Name: "t", Body: []Stmt{Write{At("y"), Const(1)}}}}},
		{Name: "abort-outside", Locs: []string{"x"}, Threads: []Thread{
			{Name: "t", Body: []Stmt{AbortStmt{}}}}},
		{Name: "nested", Locs: []string{"x"}, Threads: []Thread{
			{Name: "t", Body: []Stmt{Atomic{Name: "a", Body: []Stmt{Atomic{Name: "b"}}}}}}},
		{Name: "fence-in-tx", Locs: []string{"x"}, Threads: []Thread{
			{Name: "t", Body: []Stmt{Atomic{Name: "a", Body: []Stmt{Fence{At("x")}}}}}}},
		{Name: "bad-bound", Locs: []string{"x"}, Threads: []Thread{
			{Name: "t", Body: []Stmt{While{Cond: Const(1), Bound: 0}}}}},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("program %s validated but should not", p.Name)
		}
	}
}

func TestThreadPathsStraightLine(t *testing.T) {
	th := Thread{Name: "t", Body: []Stmt{
		Write{At("x"), Const(1)},
		Read{"r", At("x")},
	}}
	paths := ThreadPaths(th, []int{0, 1})
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2 (read forks over universe)", len(paths))
	}
	for _, p := range paths {
		if !p.Complete {
			t.Error("straight-line path marked incomplete")
		}
		if len(p.Events) != 2 {
			t.Errorf("path has %d events, want 2", len(p.Events))
		}
		if p.Events[0].Kind != event.KWrite || p.Events[0].Val != 1 {
			t.Errorf("first event wrong: %+v", p.Events[0])
		}
	}
}

func TestThreadPathsBranch(t *testing.T) {
	th := Thread{Name: "t", Body: []Stmt{
		Read{"r", At("y")},
		If{Cond: Not{Reg("r")}, Then: []Stmt{Write{At("x"), Const(1)}}},
	}}
	paths := ThreadPaths(th, []int{0, 1})
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
	wrote := map[int]bool{}
	for _, p := range paths {
		hasWrite := false
		for _, e := range p.Events {
			if e.Kind == event.KWrite {
				hasWrite = true
			}
		}
		wrote[p.Regs["r"]] = hasWrite
	}
	if !wrote[0] || wrote[1] {
		t.Errorf("branch paths wrong: %v", wrote)
	}
}

func TestThreadPathsAbort(t *testing.T) {
	th := Thread{Name: "t", Body: []Stmt{
		Atomic{Name: "a", Body: []Stmt{
			Read{"r", At("y")},
			If{Cond: Not{Reg("r")}, Then: []Stmt{Write{At("x"), Const(1)}, AbortStmt{}}},
		}},
		Write{At("z"), Const(5)},
	}}
	paths := ThreadPaths(th, []int{0, 1})
	for _, p := range paths {
		kinds := make([]event.Kind, len(p.Events))
		for i, e := range p.Events {
			kinds[i] = e.Kind
		}
		if p.Regs["r"] == 0 {
			// Begin, Read, Write, Abort, Write z
			want := []event.Kind{event.KBegin, event.KRead, event.KWrite, event.KAbort, event.KWrite}
			if len(kinds) != len(want) {
				t.Fatalf("abort path kinds = %v", kinds)
			}
			for i := range want {
				if kinds[i] != want[i] {
					t.Fatalf("abort path kinds = %v", kinds)
				}
			}
		} else {
			// Begin, Read, Commit, Write z
			if kinds[len(kinds)-2] != event.KCommit {
				t.Fatalf("commit path kinds = %v", kinds)
			}
		}
		if !p.Complete {
			t.Error("aborting path should still complete the thread")
		}
	}
}

func TestThreadPathsWhileDiverges(t *testing.T) {
	// r := x; while r { r := x }  with universe {0,1}: the path that always
	// reads 1 exhausts the bound and diverges.
	th := Thread{Name: "t", Body: []Stmt{
		Read{"r", At("x")},
		While{Cond: Reg("r"), Body: []Stmt{Read{"r", At("x")}}, Bound: 2},
		Write{At("y"), Const(1)},
	}}
	paths := ThreadPaths(th, []int{0, 1})
	var complete, diverged int
	for _, p := range paths {
		if p.Complete {
			complete++
			if p.Events[len(p.Events)-1].Kind != event.KWrite {
				t.Error("complete path missing trailing write")
			}
		} else {
			diverged++
			for _, e := range p.Events {
				if e.Kind == event.KWrite && e.Loc == "y" {
					t.Error("diverged path executed code after the loop")
				}
			}
		}
	}
	if complete == 0 || diverged == 0 {
		t.Fatalf("complete=%d diverged=%d, want both nonzero", complete, diverged)
	}
}

func TestThreadPathsLiveTxOnDivergence(t *testing.T) {
	// Divergence inside a transaction leaves it unresolved (live).
	th := Thread{Name: "t", Body: []Stmt{
		Atomic{Name: "a", Body: []Stmt{
			Read{"r", At("x")},
			While{Cond: Reg("r"), Body: []Stmt{Read{"r", At("x")}}, Bound: 1},
		}},
	}}
	for _, p := range ThreadPaths(th, []int{0, 1}) {
		if p.Complete {
			continue
		}
		for _, e := range p.Events {
			if e.Kind == event.KCommit || e.Kind == event.KAbort {
				t.Error("diverged transaction must stay unresolved")
			}
		}
	}
}

func TestFenceEncoding(t *testing.T) {
	th := Thread{Name: "t", Body: []Stmt{Fence{At("x")}}}
	paths := ThreadPaths(th, []int{0})
	if len(paths) != 1 {
		t.Fatalf("got %d paths", len(paths))
	}
	ev := paths[0].Events
	if len(ev) != 3 || ev[0].Kind != event.KBegin || ev[1].Kind != event.KWrite || ev[2].Kind != event.KCommit {
		t.Fatalf("fence encoding wrong: %+v", ev)
	}
	if ev[1].Val != event.SentinelVal || ev[1].Loc != "x" {
		t.Errorf("fence write wrong: %+v", ev[1])
	}
}

func TestArrayCells(t *testing.T) {
	th := Thread{Name: "t", Body: []Stmt{
		Read{"q", At("x")},
		Write{AtIdx("z", Reg("q")), Bin{OpAdd, Reg("q"), Const(1)}},
	}}
	paths := ThreadPaths(th, []int{0, 1})
	locs := map[string]bool{}
	for _, p := range paths {
		for _, e := range p.Events {
			if e.Kind == event.KWrite {
				locs[e.Loc] = true
			}
		}
	}
	if !locs["z[0]"] || !locs["z[1]"] {
		t.Errorf("array writes = %v", locs)
	}
}

func TestValueUniverseFixpoint(t *testing.T) {
	// F++ twice: universe must grow to include 1 and 2.
	inc := []Stmt{
		Atomic{Name: "a", Body: []Stmt{
			Read{"r", At("F")},
			Write{At("F"), Bin{OpAdd, Reg("r"), Const(1)}},
		}},
	}
	p := &Program{
		Name: "incr",
		Locs: []string{"F"},
		Threads: []Thread{
			{Name: "t1", Body: inc},
			{Name: "t2", Body: inc},
		},
	}
	u := ValueUniverse(p)
	has := func(v int) bool {
		for _, x := range u {
			if x == v {
				return true
			}
		}
		return false
	}
	if !has(0) || !has(1) || !has(2) {
		t.Errorf("universe = %v, want ⊇ {0,1,2}", u)
	}
}

func TestConstantsAndString(t *testing.T) {
	p := &Program{
		Name: "demo",
		Locs: []string{"x", "y"},
		Threads: []Thread{{Name: "t1", Body: []Stmt{
			Atomic{Name: "a", Body: []Stmt{
				Read{"r", At("y")},
				If{Cond: Not{Reg("r")}, Then: []Stmt{Write{At("x"), Const(42)}}},
			}},
			While{Cond: Reg("r"), Body: []Stmt{Read{"r", At("x")}}, Bound: 1},
			Fence{At("x")},
		}}},
	}
	cs := p.Constants()
	found := false
	for _, c := range cs {
		if c == 42 {
			found = true
		}
	}
	if !found {
		t.Errorf("Constants() = %v, missing 42", cs)
	}
	s := p.String()
	for _, want := range []string{"name: demo", "locs: x y", "atomic a {", "x := 42", "while", "fence(x)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}
