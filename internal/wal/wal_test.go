package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func testOps(i int) []Op {
	return []Op{
		{Kind: KindSet, Key: fmt.Sprintf("k%d", i), Val: []byte(fmt.Sprintf("v%d", i))},
		{Kind: KindCounterSet, Key: "ctr", N: int64(i)},
	}
}

// replayAll recovers dir and returns the applied records in order.
func replayAll(t *testing.T, dir string, shard uint32) ([]Record, RecoverResult) {
	t.Helper()
	var recs []Record
	res, err := Recover(dir, shard, func(r Record) error {
		recs = append(recs, r)
		return nil
	}, nil)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return recs, res
}

func TestRecordRoundTrip(t *testing.T) {
	ops := []Op{
		{Kind: KindSet, Key: "alpha", Val: []byte("value-1")},
		{Kind: KindSet, Key: "empty", Val: nil},
		{Kind: KindCounterAdd, Key: "hits", N: -17},
		{Kind: KindCounterSet, Key: "hits", N: 1 << 60},
		{Kind: KindDelete, Key: "gone"},
	}
	buf, err := AppendRecord(nil, 3, 42, ops)
	if err != nil {
		t.Fatal(err)
	}
	rec, n, err := DecodeRecord(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if rec.Shard != 3 || rec.Seq != 42 {
		t.Fatalf("stamp = (%d,%d), want (3,42)", rec.Shard, rec.Seq)
	}
	want := append([]Op(nil), ops...)
	want[1].Val = []byte{} // nil and empty are the same wire value
	if len(rec.Ops) != len(want) {
		t.Fatalf("got %d ops, want %d", len(rec.Ops), len(want))
	}
	for i := range want {
		got := rec.Ops[i]
		if got.Kind != want[i].Kind || got.Key != want[i].Key || got.N != want[i].N || !bytes.Equal(got.Val, want[i].Val) {
			t.Fatalf("op %d = %+v, want %+v", i, got, want[i])
		}
	}

	// Empty records (checkpoint markers) round-trip too.
	buf2, err := AppendRecord(nil, 0, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec2, _, err := DecodeRecord(buf2)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Seq != 7 || len(rec2.Ops) != 0 {
		t.Fatalf("marker decoded to %+v", rec2)
	}
}

func TestRecordCorruptionDetected(t *testing.T) {
	buf, err := AppendRecord(nil, 1, 9, testOps(9))
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation point is a short record, never a panic.
	for n := 0; n < len(buf); n++ {
		if _, _, err := DecodeRecord(buf[:n]); !errors.Is(err, ErrShortRecord) {
			t.Fatalf("truncated at %d: err = %v, want ErrShortRecord", n, err)
		}
	}
	// Every single-bit flip past the length prefix is corruption (a
	// flip inside the length prefix may also report short).
	for i := 0; i < len(buf); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), buf...)
			mut[i] ^= 1 << bit
			_, _, err := DecodeRecord(mut)
			if err == nil {
				t.Fatalf("flip byte %d bit %d went undetected", i, bit)
			}
		}
	}
}

func TestLogAppendRecover(t *testing.T) {
	for _, level := range []Level{None, Batch, Fsync} {
		t.Run(level.String(), func(t *testing.T) {
			dir := t.TempDir()
			res0, err := Recover(dir, 0, func(Record) error { return nil }, nil)
			if err != nil {
				t.Fatal(err)
			}
			l, err := OpenLog(dir, 0, res0, Options{Level: level})
			if err != nil {
				t.Fatal(err)
			}
			const n = 50
			for i := 1; i <= n; i++ {
				if err := l.Append(uint64(i), testOps(i)); err != nil {
					t.Fatal(err)
				}
			}
			if level == Fsync {
				if err := l.WaitDurable(n); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			recs, res := replayAll(t, dir, 0)
			if res.LastSeq != n || len(recs) != n {
				t.Fatalf("recovered %d records to seq %d, want %d", len(recs), res.LastSeq, n)
			}
			for i, rec := range recs {
				if rec.Seq != uint64(i+1) {
					t.Fatalf("record %d has seq %d", i, rec.Seq)
				}
			}
			if res.Truncated {
				t.Fatal("clean log reported a truncation")
			}
		})
	}
}

// TestChainWithNoRecordsFallsBackToSnapshot: damage that wipes every
// record of the surviving chain (here: the segment's first record is
// corrupt) must not strand recovery — the snapshot stands alone, and
// the empty segments are dropped so appending restarts consistently.
func TestChainWithNoRecordsFallsBackToSnapshot(t *testing.T) {
	dir := t.TempDir()
	res0, err := Recover(dir, 0, func(Record) error { return nil }, nil)
	if err != nil {
		t.Fatal(err)
	}
	l, err := OpenLog(dir, 0, res0, Options{Level: Fsync})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := l.Append(uint64(i), testOps(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var snapOps []Op
	for i := 1; i <= 10; i++ {
		snapOps = append(snapOps, testOps(i)...)
	}
	if err := WriteSnapshot(dir, 0, 10, snapOps); err != nil {
		t.Fatal(err)
	}
	// Corrupt the first record: the whole chain survives zero records.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v, %v", segs, err)
	}
	f, err := os.OpenFile(segs[0], os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff, 0xff, 0xff, 0xff}, fileHeaderLen); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, res := replayAll(t, dir, 0)
	if res.LastSeq != 10 || res.SnapshotSeq != 10 {
		t.Fatalf("recovered to seq %d (snapshot %d), want 10", res.LastSeq, res.SnapshotSeq)
	}
	if len(recs) == 0 {
		t.Fatal("snapshot not applied")
	}
	if left, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal")); len(left) != 0 {
		t.Fatalf("empty chain segments not dropped: %v", left)
	}
	// The log must extend cleanly from the snapshot.
	l2, err := OpenLog(dir, 0, res, Options{Level: Fsync})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append(11, testOps(11)); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, res = replayAll(t, dir, 0)
	if res.LastSeq != 11 {
		t.Fatalf("after re-append, recovered to %d, want 11", res.LastSeq)
	}
	_ = recs
}

func TestLogGroupCommit(t *testing.T) {
	dir := t.TempDir()
	var m Metrics
	res0, err := Recover(dir, 0, func(Record) error { return nil }, &m)
	if err != nil {
		t.Fatal(err)
	}
	l, err := OpenLog(dir, 0, res0, Options{Level: Fsync, Metrics: &m})
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent committers with externally sequenced appends: the
	// batcher must coalesce them into far fewer fsyncs than records.
	const n = 400
	var (
		mu   sync.Mutex
		seq  uint64
		wg   sync.WaitGroup
		fail error
	)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n/8; i++ {
				mu.Lock()
				seq++
				s := seq
				err := l.Append(s, testOps(int(s)))
				mu.Unlock()
				if err == nil {
					err = l.WaitDurable(s)
				}
				if err != nil {
					mu.Lock()
					fail = err
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if fail != nil {
		t.Fatal(fail)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if snap.Appends != n {
		t.Fatalf("Appends = %d, want %d", snap.Appends, n)
	}
	if snap.Fsyncs == 0 || snap.Fsyncs >= n {
		t.Fatalf("Fsyncs = %d: group commit should need more than zero and fewer than %d", snap.Fsyncs, n)
	}
	if snap.Batches == 0 || snap.Bytes == 0 || snap.AppendNs.Count == 0 || snap.FsyncNs.Count == 0 {
		t.Fatalf("write-side metrics not recorded: %+v", snap)
	}
	recs, _ := replayAll(t, dir, 0)
	if len(recs) != n {
		t.Fatalf("recovered %d records, want %d", len(recs), n)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	res0, _ := Recover(dir, 0, func(Record) error { return nil }, nil)
	l, err := OpenLog(dir, 0, res0, Options{Level: Fsync})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		if err := l.Append(uint64(i), testOps(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segmentName(1))
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Tear mid-record: drop the last 7 bytes.
	if err := os.Truncate(seg, info.Size()-7); err != nil {
		t.Fatal(err)
	}

	var m Metrics
	var recs []Record
	res, err := Recover(dir, 0, func(r Record) error { recs = append(recs, r); return nil }, &m)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || res.TruncatedBytes == 0 {
		t.Fatalf("truncation not reported: %+v", res)
	}
	if res.LastSeq != 19 || len(recs) != 19 {
		t.Fatalf("recovered to seq %d with %d records, want 19", res.LastSeq, len(recs))
	}
	if m.Truncations.Load() != 1 {
		t.Fatalf("Truncations = %d, want 1", m.Truncations.Load())
	}

	// The repaired log accepts appends at the truncated position.
	l2, err := OpenLog(dir, 0, res, Options{Level: Fsync})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append(20, testOps(20)); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	recs2, res2 := replayAll(t, dir, 0)
	if res2.LastSeq != 20 || len(recs2) != 20 || res2.Truncated {
		t.Fatalf("after repair+append: %d records to seq %d (truncated=%v)", len(recs2), res2.LastSeq, res2.Truncated)
	}
}

func TestRotationAndSnapshot(t *testing.T) {
	dir := t.TempDir()
	res0, _ := Recover(dir, 0, func(Record) error { return nil }, nil)
	var m Metrics
	rotated := make(chan uint64, 64)
	l, err := OpenLog(dir, 0, res0, Options{
		Level:        Fsync,
		SegmentBytes: 256, // rotate constantly
		Metrics:      &m,
		OnRotate:     func(last uint64) { rotated <- last },
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 60
	for i := 1; i <= n; i++ {
		if err := l.Append(uint64(i), testOps(i)); err != nil {
			t.Fatal(err)
		}
		if err := l.WaitDurable(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if m.Rotations.Load() == 0 {
		t.Fatal("no rotations at a 256-byte segment size")
	}
	select {
	case <-rotated:
	default:
		t.Fatal("OnRotate never fired")
	}

	// Snapshot at seq 30, then compact: recovery must splice snapshot
	// + tail and the early segments must be gone.
	state := []Op{{Kind: KindSet, Key: "k30", Val: []byte("v30")}, {Kind: KindCounterSet, Key: "ctr", N: 30}}
	if err := WriteSnapshot(dir, 0, 30, state); err != nil {
		t.Fatal(err)
	}
	if err := Compact(dir, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	recs, res := replayAll(t, dir, 0)
	if res.SnapshotSeq != 30 {
		t.Fatalf("SnapshotSeq = %d, want 30", res.SnapshotSeq)
	}
	if res.LastSeq != n {
		t.Fatalf("LastSeq = %d, want %d", res.LastSeq, n)
	}
	// Applied stream: snapshot chunks (seq 30) then records 31..n.
	if recs[0].Seq != 30 {
		t.Fatalf("first applied record has seq %d, want snapshot seq 30", recs[0].Seq)
	}
	wantSeq := uint64(31)
	for _, rec := range recs[res.SnapshotRecords:] {
		if rec.Seq != wantSeq {
			t.Fatalf("replayed seq %d, want %d", rec.Seq, wantSeq)
		}
		wantSeq++
	}
	snaps, segs, err := listDir(OSFS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Fatalf("%d snapshots after compact, want 1", len(snaps))
	}
	for _, sg := range segs {
		if sg.seq > 1 && sg.seq <= 30 {
			// Segments fully covered by the snapshot (next segment
			// starts <= 31) must have been pruned.
			if next := segAfter(segs, sg.seq); next != 0 && next <= 31 {
				t.Fatalf("segment %d not pruned by Compact", sg.seq)
			}
		}
	}
}

// segAfter returns the firstSeq of the segment following the one at
// firstSeq, or 0 if it is the last.
func segAfter(segs []fileInfo, firstSeq uint64) uint64 {
	for i, sg := range segs {
		if sg.seq == firstSeq && i+1 < len(segs) {
			return segs[i+1].seq
		}
	}
	return 0
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	res0, _ := Recover(dir, 0, func(Record) error { return nil }, nil)
	l, err := OpenLog(dir, 0, res0, Options{Level: Fsync})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := l.Append(uint64(i), testOps(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(dir, 0, 5, []Op{{Kind: KindSet, Key: "snap", Val: []byte("state")}}); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the snapshot body.
	path := filepath.Join(dir, snapshotName(5))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-3] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, res := replayAll(t, dir, 0)
	if res.SnapshotSeq != 0 {
		t.Fatalf("used corrupt snapshot (seq %d)", res.SnapshotSeq)
	}
	if res.LastSeq != 10 || len(recs) != 10 {
		t.Fatalf("full-log fallback recovered %d records to seq %d", len(recs), res.LastSeq)
	}
}

func TestLevelParse(t *testing.T) {
	for _, l := range []Level{None, Batch, Fsync} {
		got, err := ParseLevel(l.String())
		if err != nil || got != l {
			t.Fatalf("ParseLevel(%q) = %v, %v", l.String(), got, err)
		}
	}
	if _, err := ParseLevel("always"); err == nil {
		t.Fatal("ParseLevel accepted garbage")
	}
}
