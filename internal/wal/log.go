package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Segment files: seg-<firstSeq>.wal, a 20-byte header then records.
// The name and the header agree on the first sequence number the
// segment may hold; records inside are dense (seq strictly +1).
const (
	segMagic      = "MTXWAL1\n"
	snapMagic     = "MTXSNP1\n"
	fileHeaderLen = 20 // magic(8) + shard(4) + firstSeq/replayFrom(8)

	defaultSegmentBytes  = 64 << 20
	defaultFlushInterval = 20 * time.Millisecond
)

// ErrClosed is returned by operations on a closed Log.
var ErrClosed = errors.New("wal: log closed")

// Options configures a Log.
type Options struct {
	// Level is the durability level (default None — callers that want
	// durability say so explicitly).
	Level Level
	// SegmentBytes is the rotation threshold (default 64 MiB).
	SegmentBytes int64
	// FlushInterval is the Batch level's fsync cadence (default 20ms).
	FlushInterval time.Duration
	// Metrics receives write-side observations when non-nil; several
	// Logs may share one.
	Metrics *Metrics
	// OnRotate, when non-nil, is called on its own goroutine after a
	// rotation with the last sequence number of the finished segment —
	// the checkpoint hook.
	OnRotate func(lastSeq uint64)
	// OnFail, when non-nil, is called exactly once with the Log's first
	// sticky I/O error, from whichever goroutine hit it (often the
	// batcher). It must not block or call back into the Log; the kv
	// layer uses it to flip the store into its degraded mode the moment
	// the WAL fails rather than on the next append.
	OnFail func(err error)
	// FS is the filesystem seam (default OSFS). Fault-injection tests
	// swap in an implementation that fails writes, syncs or opens on a
	// seeded schedule.
	FS FS
}

// Log is one shard's append-only write-ahead log with group commit.
//
// Appends are sequenced by the caller (the kv layer calls Append under
// its per-shard feed lock, in commit order) and only buffer the encoded
// record; a single batcher goroutine drains the buffer, so any number
// of commits that arrive while a write or fsync is in flight are
// flushed by the next pass as one write and one fsync. Fsync-level
// callers then block in WaitDurable until the batch covering their
// sequence number has been synced — the group-commit rendezvous.
//
// I/O errors are sticky: the first one fails the Log, every waiter is
// released with it, and subsequent appends are dropped with the same
// error. A WAL that cannot write must fail loudly, not silently
// acknowledge.
type Log struct {
	dir        string
	shard      uint32
	level      Level
	segBytes   int64
	flushEvery time.Duration
	m          *Metrics
	onRotate   func(uint64)
	onFail     func(error)
	fs         FS

	// mu guards the append side: the pending buffer and the queue
	// cursor. Held only for an in-memory encode — never across I/O.
	mu         sync.Mutex
	pending    []byte
	npending   int
	lastQueued uint64 // seq of the newest queued (or written) record
	syncReq    bool   // an explicit Sync wants an fsync regardless of level
	closed     bool

	kick chan struct{} // wakes the batcher; capacity 1
	done chan struct{} // closed when the batcher exits

	// Batcher-owned file state (no lock: single goroutine).
	f     File
	fsize int64

	// durMu guards the durability watermarks and the sticky error;
	// durCond wakes WaitDurable/Sync waiters after each fsync.
	durMu   sync.Mutex
	durCond *sync.Cond
	written uint64 // last seq handed to write(2)
	synced  uint64 // last seq covered by an fsync
	err     error  // sticky I/O failure

	// followers receive a copy of every appended record's encoded
	// bytes — the replication live tail. Guarded by mu; empty on
	// every store that isn't replicating, so Append pays one nil
	// check.
	followers []*Follower
}

// OpenLog opens shard's log in dir for appending, continuing from the
// state recovery established: the repaired tail segment if one exists,
// a fresh segment at res.LastSeq+1 otherwise. Run Recover first — it
// owns truncation and directory repair; OpenLog assumes a clean tail.
func OpenLog(dir string, shard uint32, res RecoverResult, o Options) (*Log, error) {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = defaultSegmentBytes
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = defaultFlushInterval
	}
	l := &Log{
		dir:        dir,
		shard:      shard,
		level:      o.Level,
		segBytes:   o.SegmentBytes,
		flushEvery: o.FlushInterval,
		m:          o.Metrics,
		onRotate:   o.OnRotate,
		onFail:     o.OnFail,
		fs:         fsOrOS(o.FS),
		kick:       make(chan struct{}, 1),
		done:       make(chan struct{}),
		lastQueued: res.LastSeq,
		written:    res.LastSeq,
		synced:     res.LastSeq,
	}
	l.durCond = sync.NewCond(&l.durMu)
	if res.tailPath != "" {
		f, err := l.fs.OpenFile(res.tailPath, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: reopen tail: %w", err)
		}
		l.f, l.fsize = f, res.tailSize
	} else {
		f, err := createSegment(l.fs, dir, shard, res.LastSeq+1)
		if err != nil {
			return nil, err
		}
		l.f, l.fsize = f, fileHeaderLen
	}
	go l.run()
	return l, nil
}

// segmentName returns the file name of the segment starting at firstSeq.
func segmentName(firstSeq uint64) string {
	return fmt.Sprintf("seg-%020d.wal", firstSeq)
}

// createSegment creates (exclusively) a new segment file, writes its
// header, fsyncs it and the directory, and returns it open for append.
func createSegment(fsys FS, dir string, shard uint32, firstSeq uint64) (File, error) {
	path := filepath.Join(dir, segmentName(firstSeq))
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create segment: %w", err)
	}
	var hdr [fileHeaderLen]byte
	copy(hdr[:8], segMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], shard)
	binary.LittleEndian.PutUint64(hdr[12:20], firstSeq)
	if _, err := f.Write(hdr[:]); err == nil {
		err = f.Sync()
	} else {
		f.Close()
		return nil, fmt.Errorf("wal: write segment header: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// Append encodes ops as record seq (zero flags) and queues it for the
// batcher. See AppendFlags.
func (l *Log) Append(seq uint64, ops []Op) error { return l.AppendFlags(seq, 0, 0, ops) }

// AppendFlags encodes ops as record seq with the given v2 flags byte
// (and, for FlagCross, the cross-shard transaction id) and queues it
// for the batcher. Calls must arrive in commit order
// with dense sequence numbers (the caller holds its own sequencing
// lock around Append); the record is on its way to disk when Append
// returns, durable once WaitDurable(seq) returns at the Fsync level.
// Append itself never does I/O.
func (l *Log) AppendFlags(seq uint64, flags uint8, txn uint64, ops []Op) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.durMu.Lock()
	sticky := l.err
	l.durMu.Unlock()
	if sticky != nil {
		// The chain is broken: buffering more records could only tear a
		// hole in the log if the disk came back. Refuse, with the original
		// failure (this is what the doc's "subsequent appends are dropped
		// with the same error" means — and what the kv layer's
		// shed-durability accounting counts).
		l.mu.Unlock()
		return sticky
	}
	if seq != l.lastQueued+1 {
		l.mu.Unlock()
		// Sticky: a skipped sequence can never be repaired, and the
		// caller's tap may not check the return — surface it on every
		// later WaitDurable/Sync instead of dropping records silently.
		err := fmt.Errorf("wal: append seq %d, want %d (out-of-order commit tap?)", seq, l.lastQueued+1)
		l.fail(err)
		return err
	}
	start := len(l.pending)
	var err error
	l.pending, err = AppendRecordFlags(l.pending, l.shard, seq, flags, txn, ops)
	if err != nil {
		l.mu.Unlock()
		l.fail(err) // same reasoning: a missing record is a broken chain
		return err
	}
	l.lastQueued = seq
	l.npending++
	if len(l.followers) > 0 {
		l.pushFollowersLocked(seq, l.pending[start:])
	}
	l.mu.Unlock()
	l.kickBatcher()
	return nil
}

func (l *Log) kickBatcher() {
	select {
	case l.kick <- struct{}{}:
	default:
	}
}

// WaitDurable blocks until every record up to and including seq is
// fsynced, returning the Log's sticky error if it failed instead. At
// levels below Fsync it still waits for the next periodic or explicit
// fsync to cover seq — which is why fsync-level acknowledgment simply
// is a WaitDurable call.
func (l *Log) WaitDurable(seq uint64) error {
	l.durMu.Lock()
	for l.synced < seq && l.err == nil {
		l.durCond.Wait()
	}
	err := l.err
	l.durMu.Unlock()
	return err
}

// Sync flushes everything queued so far and fsyncs it, at every level
// (including None — Sync is the explicit durability barrier snapshots
// use before installing a watermark).
func (l *Log) Sync() error {
	l.mu.Lock()
	if l.closed {
		target := l.lastQueued
		l.mu.Unlock()
		// The batcher has drained; settle for the watermark check.
		l.durMu.Lock()
		err := l.err
		synced := l.synced
		l.durMu.Unlock()
		if err == nil && synced < target {
			err = ErrClosed
		}
		return err
	}
	target := l.lastQueued
	l.syncReq = true
	l.mu.Unlock()
	l.kickBatcher()
	return l.WaitDurable(target)
}

// Err returns the sticky I/O error, if any.
func (l *Log) Err() error {
	l.durMu.Lock()
	defer l.durMu.Unlock()
	return l.err
}

// LastQueued returns the newest sequence number handed to Append.
func (l *Log) LastQueued() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastQueued
}

// Close drains the batcher, fsyncs at levels above None, and closes
// the segment. Appends after Close fail with ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.done
		return l.Err()
	}
	l.closed = true
	if l.level != None {
		l.syncReq = true
	}
	l.mu.Unlock()
	l.dropFollowers()
	l.kickBatcher()
	<-l.done
	if err := l.f.Close(); err != nil {
		l.fail(err)
	}
	// Release anyone parked in WaitDurable past what was ever queued.
	l.durCond.Broadcast()
	return l.Err()
}

// run is the batcher: the only goroutine that touches the segment
// file. Each pass swaps out everything queued since the last one and
// issues one write — group commit is this drain being a batch, not a
// record. Fsync policy per pass: always at Fsync level, on the flush
// interval at Batch level, on explicit request (Sync) at any level.
func (l *Log) run() {
	defer close(l.done)
	var (
		buf      []byte
		lastSync = time.Now()
	)
	for {
		l.mu.Lock()
		buf, l.pending = l.pending, buf[:0]
		n := l.npending
		l.npending = 0
		end := l.lastQueued
		syncReq := l.syncReq
		l.syncReq = false
		closed := l.closed
		l.mu.Unlock()

		if len(buf) > 0 {
			l.writeBatch(buf, n, end)
		}
		unsynced := l.unsyncedLocked(end)
		switch {
		case syncReq && unsynced,
			l.level == Fsync && unsynced,
			l.level == Batch && unsynced && time.Since(lastSync) >= l.flushEvery:
			l.syncFile(end)
			lastSync = time.Now()
		}
		if closed {
			return
		}
		if l.fsize >= l.segBytes {
			l.rotate(end)
		}

		// Sleep until kicked; at Batch level with an unsynced tail,
		// also wake at the flush deadline so idle stores still sync.
		var timerC <-chan time.Time
		var timer *time.Timer
		if l.level == Batch && l.unsyncedLocked(end) {
			d := l.flushEvery - time.Since(lastSync)
			if d < time.Millisecond {
				d = time.Millisecond
			}
			timer = time.NewTimer(d)
			timerC = timer.C
		}
		select {
		case <-l.kick:
		case <-timerC:
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

// unsyncedLocked reports whether records up to end are written but not
// yet covered by an fsync. The batcher writes everything it captures
// before calling this, so written >= end holds whenever it matters.
func (l *Log) unsyncedLocked(end uint64) bool {
	l.durMu.Lock()
	defer l.durMu.Unlock()
	return l.err == nil && l.synced < end && l.written >= end
}

// writeBatch writes one coalesced batch and advances the written
// watermark.
func (l *Log) writeBatch(buf []byte, n int, end uint64) {
	t0 := time.Now()
	_, err := l.f.Write(buf)
	if l.m != nil {
		l.m.AppendNs.Observe(time.Since(t0).Nanoseconds())
		l.m.Appends.Add(uint64(n))
		l.m.Batches.Add(1)
		l.m.Bytes.Add(uint64(len(buf)))
	}
	if err != nil {
		l.fail(fmt.Errorf("wal: write: %w", err))
		return
	}
	l.fsize += int64(len(buf))
	l.durMu.Lock()
	if end > l.written {
		l.written = end
	}
	l.durMu.Unlock()
}

// syncFile fsyncs the segment and releases every waiter at or below end.
func (l *Log) syncFile(end uint64) {
	if l.Err() != nil {
		return
	}
	t0 := time.Now()
	err := l.f.Sync()
	if l.m != nil {
		l.m.FsyncNs.Observe(time.Since(t0).Nanoseconds())
		l.m.Fsyncs.Add(1)
	}
	if err != nil {
		l.fail(fmt.Errorf("wal: fsync: %w", err))
		return
	}
	l.durMu.Lock()
	if end > l.synced {
		l.synced = end
	}
	l.durMu.Unlock()
	l.durCond.Broadcast()
}

// rotate finishes the current segment (fsyncing it so the prefix the
// next segment builds on is durable) and opens the next one at end+1.
func (l *Log) rotate(end uint64) {
	if l.Err() != nil {
		return
	}
	l.syncFile(end)
	if err := l.f.Close(); err != nil {
		l.fail(fmt.Errorf("wal: close rotated segment: %w", err))
		return
	}
	f, err := createSegment(l.fs, l.dir, l.shard, end+1)
	if err != nil {
		l.fail(err)
		return
	}
	l.f, l.fsize = f, fileHeaderLen
	if l.m != nil {
		l.m.Rotations.Add(1)
	}
	if l.onRotate != nil {
		go l.onRotate(end)
	}
}

// fail records the first I/O error and releases every waiter with it.
// Followers are killed too: a broken chain must not keep shipping.
// Only the first failure counts in Metrics and fires OnFail; repeats
// of a sticky error are not new faults.
func (l *Log) fail(err error) {
	l.durMu.Lock()
	first := l.err == nil
	if first {
		l.err = err
	}
	l.durMu.Unlock()
	l.durCond.Broadcast()
	l.dropFollowers()
	if first {
		if l.m != nil {
			l.m.Failures.Add(1)
		}
		if l.onFail != nil {
			l.onFail(err)
		}
	}
}
