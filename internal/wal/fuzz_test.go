package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzWALRecord drives the decoder with arbitrary bytes — it must
// never panic, never over-consume, and on success the record must
// survive a re-encode/decode round trip. For canonical (current-
// version) inputs the re-encode is byte-identical; a version-1 input
// re-encodes as version 2 with the same meaning.
func FuzzWALRecord(f *testing.F) {
	// A valid record, for the round-trip arm of the property.
	valid, err := AppendRecord(nil, 2, 77, []Op{
		{Kind: KindSet, Key: "key", Val: []byte("value")},
		{Kind: KindCounterAdd, Key: "ctr", N: -5},
		{Kind: KindCounterSet, Key: "ctr", N: 9},
		{Kind: KindDelete, Key: "old"},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	// Seeds the issue calls for: truncated, bit-flipped, zero-length.
	f.Add(valid[:len(valid)-3])
	flipped := append([]byte(nil), valid...)
	flipped[9] ^= 0x10
	f.Add(flipped)
	f.Add([]byte{})
	// Zero-length *record* (a checkpoint marker: zero ops).
	marker, err := AppendRecord(nil, 0, 1, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(marker)
	// A cross-shard participant and a commit marker (v2 features).
	cross, err := AppendRecordFlags(nil, 3, 9, FlagCross, 0xDEADBEEFCAFE,
		[]Op{{Kind: KindCounterSet, Key: "acct", N: 7}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(cross)
	txm, err := AppendRecordFlags(nil, TxnShard, 4, FlagCross, 0xDEADBEEFCAFE, []Op{{
		Kind: KindTxnMarker,
		Val:  AppendTxnParts(nil, []TxnPart{{Shard: 0, Seq: 12}, {Shard: 3, Seq: 9}}),
	}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(txm)
	// The same record downgraded to version 1 (the PR 7 format: same
	// layout, reserved-zero flags byte), re-checksummed.
	v1 := append([]byte(nil), valid...)
	v1[recordHeaderSize] = 1
	binary.LittleEndian.PutUint32(v1[4:8], crc32.Checksum(v1[recordHeaderSize:], crcTable))
	f.Add(v1)
	// A hostile length prefix.
	huge := make([]byte, 12)
	binary.LittleEndian.PutUint32(huge, 1<<30)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		var flags uint8
		if rec.Cross {
			flags = FlagCross
		}
		re, rerr := AppendRecordFlags(nil, rec.Shard, rec.Seq, flags, rec.Txn, rec.Ops)
		if rerr != nil {
			t.Fatalf("re-encode of a decoded record failed: %v", rerr)
		}
		if data[recordHeaderSize] == recordVersion {
			// Canonical inputs have one form: decode∘encode is identity.
			if !bytes.Equal(re, data[:n]) {
				t.Fatalf("decode∘encode not identity:\n in  %x\n out %x", data[:n], re)
			}
			return
		}
		// A v1 input upgrades on re-encode; meaning must be preserved.
		rec2, n2, err2 := DecodeRecord(re)
		if err2 != nil || n2 != len(re) {
			t.Fatalf("re-decode failed: %v (consumed %d of %d)", err2, n2, len(re))
		}
		if rec2.Shard != rec.Shard || rec2.Seq != rec.Seq || rec2.Cross != rec.Cross ||
			rec2.Txn != rec.Txn || len(rec2.Ops) != len(rec.Ops) {
			t.Fatalf("v1 upgrade changed the record: %+v vs %+v", rec, rec2)
		}
	})
}
