package wal

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzWALRecord drives the decoder with arbitrary bytes — it must
// never panic, never over-consume, and on success re-encode to the
// exact input (the codec has one canonical form, so decode∘encode is
// the identity on valid records).
func FuzzWALRecord(f *testing.F) {
	// A valid record, for the round-trip arm of the property.
	valid, err := AppendRecord(nil, 2, 77, []Op{
		{Kind: KindSet, Key: "key", Val: []byte("value")},
		{Kind: KindCounterAdd, Key: "ctr", N: -5},
		{Kind: KindCounterSet, Key: "ctr", N: 9},
		{Kind: KindDelete, Key: "old"},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	// Seeds the issue calls for: truncated, bit-flipped, zero-length.
	f.Add(valid[:len(valid)-3])
	flipped := append([]byte(nil), valid...)
	flipped[9] ^= 0x10
	f.Add(flipped)
	f.Add([]byte{})
	// Zero-length *record* (a checkpoint marker: zero ops).
	marker, err := AppendRecord(nil, 0, 1, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(marker)
	// A hostile length prefix.
	huge := make([]byte, 12)
	binary.LittleEndian.PutUint32(huge, 1<<30)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re, rerr := AppendRecord(nil, rec.Shard, rec.Seq, rec.Ops)
		if rerr != nil {
			t.Fatalf("re-encode of a decoded record failed: %v", rerr)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("decode∘encode not identity:\n in  %x\n out %x", data[:n], re)
		}
	})
}
