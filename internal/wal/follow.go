package wal

import "sync"

// The live tail: a Follower registered on a Log receives a copy of
// every record's encoded bytes as it is appended — before it is
// written, in append (= commit) order. This is the replication
// stream's hot path: the primary's streamer attaches a Follower per
// shard, catches up from segments below the follower's low-water
// mark, then switches to the follower buffer.
//
// Delivery never blocks an append: bytes pile up in the follower's
// buffer, and a reader that falls further behind than the buffer
// limit kills the follower (ok=false from Take). The reader then
// re-catches-up from segments and attaches a fresh Follower — the
// same repair path as a reconnect, so slowness and disconnection are
// one case, and a slow replica can never stall a commit.

// Follower is one registered live-tail consumer of a Log.
type Follower struct {
	l     *Log
	limit int

	mu    sync.Mutex
	buf   []byte // encoded records, dense from first
	first uint64 // seq of the first record in buf
	next  uint64 // seq after the last record in buf
	dead  bool   // overflowed, closed, or the log failed/closed

	ready chan struct{} // capacity 1: signals buffered data or death
}

// Follow attaches a live-tail follower. The returned low-water mark
// is the first sequence the follower will deliver: everything below
// it must be read from segments (and is on disk, or on its way there,
// at return). limitBytes bounds the follower's buffer; at or beyond
// it the follower is killed rather than blocking appends (min 64 KiB).
//
// The not-yet-written queue is seeded into the follower at attach
// time, so the (segments, follower) pair covers every sequence with
// no gap: segments eventually hold everything below the low-water
// mark, the follower holds everything at and above it.
func (l *Log) Follow(limitBytes int) (*Follower, uint64) {
	if limitBytes < 64<<10 {
		limitBytes = 64 << 10
	}
	f := &Follower{l: l, limit: limitBytes, ready: make(chan struct{}, 1)}
	l.mu.Lock()
	low := l.lastQueued + 1 - uint64(l.npending)
	f.first, f.next = low, l.lastQueued+1
	f.buf = append(f.buf, l.pending...)
	if l.closed {
		f.dead = true
	} else {
		l.followers = append(l.followers, f)
	}
	l.mu.Unlock()
	if f.dead || len(f.buf) > 0 {
		f.signal()
	}
	return f, low
}

// pushFollowersLocked hands one appended record's bytes to every live
// follower and prunes dead ones. Caller holds l.mu.
func (l *Log) pushFollowersLocked(seq uint64, rec []byte) {
	live := l.followers[:0]
	for _, f := range l.followers {
		if f.push(seq, rec) {
			live = append(live, f)
		}
	}
	for i := len(live); i < len(l.followers); i++ {
		l.followers[i] = nil
	}
	l.followers = live
}

// dropFollowers kills every follower: the log is closing or failed.
func (l *Log) dropFollowers() {
	l.mu.Lock()
	fs := l.followers
	l.followers = nil
	l.mu.Unlock()
	for _, f := range fs {
		f.kill()
	}
}

// push buffers one record, killing the follower on overflow. Reports
// whether the follower is still live. Never blocks.
func (f *Follower) push(seq uint64, rec []byte) bool {
	f.mu.Lock()
	if f.dead {
		f.mu.Unlock()
		return false
	}
	if len(f.buf)+len(rec) > f.limit {
		f.dead = true
		f.mu.Unlock()
		f.signal()
		return false
	}
	if seq != f.next {
		// Cannot happen while attached (appends are dense), but a gap
		// must never ship silently.
		f.dead = true
		f.mu.Unlock()
		f.signal()
		return false
	}
	f.buf = append(f.buf, rec...)
	f.next = seq + 1
	f.mu.Unlock()
	f.signal()
	return true
}

func (f *Follower) signal() {
	select {
	case f.ready <- struct{}{}:
	default:
	}
}

func (f *Follower) kill() {
	f.mu.Lock()
	f.dead = true
	f.mu.Unlock()
	f.signal()
}

// Take blocks until the follower has buffered records, then returns
// them: buf is a dense run of encoded records starting at seq first.
// reuse, when non-nil, donates its capacity for the next buffer (pass
// the previous Take's buf back once consumed). ok=false means the
// follower is dead — it overflowed, the log closed, or Close was
// called — and the reader must re-catch-up from segments; a dead
// follower never returns buffered data, so nothing it held can be
// mistaken for a complete stream.
func (f *Follower) Take(reuse []byte) (buf []byte, first uint64, ok bool) {
	for {
		f.mu.Lock()
		if f.dead {
			f.mu.Unlock()
			return nil, 0, false
		}
		if len(f.buf) > 0 {
			buf, f.buf = f.buf, reuse[:0]
			first = f.first
			f.first = f.next
			f.mu.Unlock()
			return buf, first, true
		}
		f.mu.Unlock()
		<-f.ready
	}
}

// Close detaches the follower. Safe to call concurrently with Take
// (which returns ok=false) and more than once.
func (f *Follower) Close() {
	f.kill()
	l := f.l
	l.mu.Lock()
	for i, o := range l.followers {
		if o == f {
			l.followers = append(l.followers[:i], l.followers[i+1:]...)
			break
		}
	}
	l.mu.Unlock()
}
