package wal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
)

// Snapshot files: snap-<seq>.snap — the shard's full state as of
// commit sequence seq, so recovery is "load snapshot, replay records
// seq+1 onward". The layout is the segment layout with a different
// magic: a 20-byte header (magic, shard, seq) followed by ordinary
// records, each stamped with seq and carrying a chunk of absolute ops
// (KindSet / KindCounterSet). A snapshot is only ever installed by
// rename, and only after the log is fsynced through seq — so on any
// crash the records a surviving snapshot makes redundant are already
// durable, and a snapshot "from the future" of the log can only mean
// byte corruption, which recovery detects and falls back from.
const snapChunkOps = 1024

// snapshotName returns the file name of the snapshot at seq.
func snapshotName(seq uint64) string {
	return fmt.Sprintf("snap-%020d.snap", seq)
}

// WriteSnapshot atomically writes shard's snapshot at seq: temp file,
// fsync, rename, directory fsync. ops must be the shard's full state
// at exactly commit sequence seq, in absolute form.
func WriteSnapshot(dir string, shard uint32, seq uint64, ops []Op) error {
	return WriteSnapshotFS(nil, dir, shard, seq, ops)
}

// WriteSnapshotFS is WriteSnapshot through an explicit filesystem seam
// (nil = the real one).
func WriteSnapshotFS(fsys FS, dir string, shard uint32, seq uint64, ops []Op) error {
	fsys = fsOrOS(fsys)
	buf := make([]byte, fileHeaderLen, fileHeaderLen+64*len(ops))
	copy(buf[:8], snapMagic)
	binary.LittleEndian.PutUint32(buf[8:12], shard)
	binary.LittleEndian.PutUint64(buf[12:20], seq)
	for len(ops) > 0 {
		chunk := ops
		if len(chunk) > snapChunkOps {
			chunk = chunk[:snapChunkOps]
		}
		var err error
		if buf, err = AppendRecord(buf, shard, seq, chunk); err != nil {
			return err
		}
		ops = ops[len(chunk):]
	}

	path := filepath.Join(dir, snapshotName(seq))
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create snapshot: %w", err)
	}
	if _, err = f.Write(buf); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = fsys.Rename(tmp, path)
	}
	if err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("wal: write snapshot: %w", err)
	}
	return fsys.SyncDir(dir)
}

// loadSnapshot parses a snapshot file completely before returning, so
// a caller never applies half of a corrupt snapshot. Any defect —
// short file, wrong magic or shard, bad record — is an error; the
// caller falls back to an older snapshot.
func loadSnapshot(fsys FS, path string, shard uint32) (seq uint64, recs []Record, err error) {
	b, err := fsys.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	if len(b) < fileHeaderLen || string(b[:8]) != snapMagic {
		return 0, nil, fmt.Errorf("%w: snapshot header", ErrCorrupt)
	}
	if got := binary.LittleEndian.Uint32(b[8:12]); got != shard {
		return 0, nil, fmt.Errorf("%w: snapshot for shard %d, want %d", ErrCorrupt, got, shard)
	}
	seq = binary.LittleEndian.Uint64(b[12:20])
	for off := fileHeaderLen; off < len(b); {
		rec, n, derr := DecodeRecord(b[off:])
		if derr != nil {
			return 0, nil, derr
		}
		if rec.Shard != shard || rec.Seq != seq {
			return 0, nil, fmt.Errorf("%w: snapshot record stamp", ErrCorrupt)
		}
		recs = append(recs, rec)
		off += n
	}
	return seq, recs, nil
}

// Compact prunes the durability directory: it keeps the newest
// keepSnaps snapshots (older ones are deleted) and deletes every
// closed segment whose records are all covered by the oldest retained
// snapshot. The active (newest) segment is never touched, so Compact
// is safe to run while a Log is appending.
func Compact(dir string, keepSnaps int) error {
	return CompactFS(nil, dir, keepSnaps)
}

// CompactFS is Compact through an explicit filesystem seam (nil = the
// real one).
func CompactFS(fsys FS, dir string, keepSnaps int) error {
	fsys = fsOrOS(fsys)
	if keepSnaps < 1 {
		keepSnaps = 1
	}
	snaps, segs, err := listDir(fsys, dir)
	if err != nil {
		return err
	}
	for len(snaps) > keepSnaps {
		if err := fsys.Remove(snaps[0].path); err != nil {
			return err
		}
		snaps = snaps[1:]
	}
	if len(snaps) == 0 {
		return nil
	}
	floor := snaps[0].seq
	for i := 0; i+1 < len(segs); i++ {
		// Everything in segment i precedes segs[i+1].firstSeq.
		if segs[i+1].seq > floor+1 {
			break
		}
		if err := fsys.Remove(segs[i].path); err != nil {
			return err
		}
	}
	return nil
}
