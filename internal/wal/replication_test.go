package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
)

// Tests for the replication-facing WAL surface: sequence-limited
// recovery (cross-shard rollback), snapshot-supersedes-chain recovery,
// segment-cursor catch-up reads, and the live-tail follower.

// writeSegFile writes one complete segment file holding records
// first..last, bypassing the Log so the segment boundary is exact.
func writeSegFile(t *testing.T, dir string, shard uint32, first, last uint64) {
	t.Helper()
	buf := make([]byte, 0, 4096)
	var hdr [fileHeaderLen]byte
	copy(hdr[:8], segMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], shard)
	binary.LittleEndian.PutUint64(hdr[12:20], first)
	buf = append(buf, hdr[:]...)
	for seq := first; seq <= last; seq++ {
		var err error
		buf, err = AppendRecord(buf, shard, seq, testOps(int(seq)))
		if err != nil {
			t.Fatal(err)
		}
	}
	name := filepath.Join(dir, fmt.Sprintf("seg-%020d.wal", first))
	if err := os.WriteFile(name, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// writeChain appends records 1..n at Fsync and closes the log.
func writeChain(t *testing.T, dir string, n int) {
	t.Helper()
	res, err := Recover(dir, 0, func(Record) error { return nil }, nil)
	if err != nil {
		t.Fatal(err)
	}
	l, err := OpenLog(dir, 0, res, Options{Level: Fsync})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if err := l.Append(uint64(i), testOps(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverLimitedTruncates(t *testing.T) {
	dir := t.TempDir()
	writeChain(t, dir, 20)
	var recs []Record
	res, err := RecoverLimited(dir, 0, 12, func(r Record) error {
		recs = append(recs, r)
		return nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.LastSeq != 12 || len(recs) != 12 {
		t.Fatalf("recovered %d records to %d, want 12", len(recs), res.LastSeq)
	}
	if !res.Truncated || res.TruncatedBytes == 0 {
		t.Fatalf("limit cut not reported as truncation: %+v", res)
	}
	// The cut is physical: a fresh unlimited recovery sees 12 records.
	recs2, res2 := replayAll(t, dir, 0)
	if res2.LastSeq != 12 || len(recs2) != 12 || res2.Truncated {
		t.Fatalf("re-recovery after cut: %d records to %d (truncated %v)",
			len(recs2), res2.LastSeq, res2.Truncated)
	}
}

// TestSnapshotSupersedesDamagedChain pins the last-resort recovery
// rule the crash-recovery torture exposed: when compaction has pruned
// the chain's early segments (so it no longer reaches seq 1) and
// mid-log damage then truncates it below the oldest retained
// snapshot, the newest snapshot is still a valid commit prefix and
// must stand alone instead of recovery failing. It also pins the
// preference order: when the chain survives far enough for a snapshot
// to anchor it, the chain is kept (it remains unwindable) rather than
// superseded.
func TestSnapshotSupersedesDamagedChain(t *testing.T) {
	dir := t.TempDir()
	// Build the chain segment by segment (rotation is batch-granular,
	// so driving the Log cannot pin segment boundaries): three segments
	// holding 1..10, 11..20, 21..30, then a snapshot at 30.
	writeSegFile(t, dir, 0, 1, 10)
	writeSegFile(t, dir, 0, 11, 20)
	writeSegFile(t, dir, 0, 21, 30)
	var ops []Op
	for i := 1; i <= 30; i++ {
		ops = append(ops, testOps(i)...)
	}
	if err := WriteSnapshot(dir, 0, 30, ops); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil || len(segs) != 3 {
		t.Fatalf("want 3 segments for the middle-segment cut, have %v (%v)", segs, err)
	}
	sort.Strings(segs)

	// Preference check first: with the chain intact, the snapshot
	// anchors it — recovery keeps the segments.
	_, r := replayAll(t, dir, 0)
	if r.SnapshotSeq != 30 || r.LastSeq != 30 {
		t.Fatalf("intact recovery: snapshot %d to %d, want 30/30", r.SnapshotSeq, r.LastSeq)
	}
	if left, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal")); len(left) == 0 {
		t.Fatal("anchored chain was dropped")
	}

	// Now leave only a middle segment: early ones compacted away, the
	// tail destroyed. The surviving chain starts above seq 1 and ends
	// below 30 — only the superseding snapshot can recover this.
	for i, sg := range segs {
		if i == len(segs)-2 {
			continue
		}
		if err := os.Remove(sg); err != nil {
			t.Fatal(err)
		}
	}
	recs, res2 := replayAll(t, dir, 0)
	if res2.SnapshotSeq != 30 || res2.LastSeq != 30 {
		t.Fatalf("recovered to %d via snapshot %d, want 30/30", res2.LastSeq, res2.SnapshotSeq)
	}
	if len(recs) == 0 {
		t.Fatal("snapshot not applied")
	}
	if left, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal")); len(left) != 0 {
		t.Fatalf("superseded chain not dropped: %v", left)
	}
	// And the log extends cleanly from the snapshot.
	l, err := OpenLog(dir, 0, res2, Options{Level: Fsync})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(31, testOps(31)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, res2 = replayAll(t, dir, 0)
	if res2.LastSeq != 31 {
		t.Fatalf("after extend, recovered to %d, want 31", res2.LastSeq)
	}
}

func TestScanSegments(t *testing.T) {
	dir := t.TempDir()
	writeChain(t, dir, 25)

	var seen []uint64
	next, err := ScanSegments(dir, 0, 10, func(rec Record, raw []byte) error {
		seen = append(seen, rec.Seq)
		if len(raw) == 0 {
			t.Fatal("empty raw bytes")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != 26 || len(seen) != 16 || seen[0] != 10 || seen[15] != 25 {
		t.Fatalf("scan from 10: next %d, seen %v", next, seen)
	}
	// From beyond the end: nothing, cleanly.
	next, err = ScanSegments(dir, 0, 26, func(Record, []byte) error {
		t.Fatal("unexpected record")
		return nil
	})
	if err != nil || next != 26 {
		t.Fatalf("scan from 26: next %d, %v", next, err)
	}
	// Empty dir: nothing, cleanly.
	next, err = ScanSegments(t.TempDir(), 0, 1, func(Record, []byte) error { return nil })
	if err != nil || next != 1 {
		t.Fatalf("scan of empty dir: next %d, %v", next, err)
	}
}

func TestScanSegmentsCompacted(t *testing.T) {
	dir := t.TempDir()
	writeChain(t, dir, 10)
	var ops []Op
	for i := 1; i <= 10; i++ {
		ops = append(ops, testOps(i)...)
	}
	if err := WriteSnapshot(dir, 0, 10, ops); err != nil {
		t.Fatal(err)
	}
	// Remove the segments as compaction would.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	for _, sg := range segs {
		if err := os.Remove(sg); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ScanSegments(dir, 0, 1, func(Record, []byte) error { return nil }); !errors.Is(err, ErrCompacted) {
		t.Fatalf("scan of compacted range: %v, want ErrCompacted", err)
	}
	seq, recs, err := LatestSnapshot(dir, 0)
	if err != nil || seq != 10 || len(recs) == 0 {
		t.Fatalf("LatestSnapshot: seq %d, %d recs, %v", seq, len(recs), err)
	}
}

func TestFollowerLiveTail(t *testing.T) {
	dir := t.TempDir()
	res, err := Recover(dir, 0, func(Record) error { return nil }, nil)
	if err != nil {
		t.Fatal(err)
	}
	l, err := OpenLog(dir, 0, res, Options{Level: None})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	f, low := l.Follow(1 << 20)
	defer f.Close()
	if low != 1 {
		t.Fatalf("low water %d on an empty log, want 1", low)
	}
	const n = 40
	var wg sync.WaitGroup
	wg.Add(1)
	var got []uint64
	go func() {
		defer wg.Done()
		var buf []byte
		for len(got) < n {
			b, first, ok := f.Take(buf)
			if !ok {
				return
			}
			seq := first
			for off := 0; off < len(b); {
				rec, sz, derr := DecodeRecord(b[off:])
				if derr != nil || rec.Seq != seq {
					t.Errorf("batch decode: %v (seq %d vs %d)", derr, rec.Seq, seq)
					return
				}
				got = append(got, rec.Seq)
				seq++
				off += sz
			}
			buf = b
		}
	}()
	for i := 1; i <= n; i++ {
		if err := l.Append(uint64(i), testOps(i)); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if len(got) != n {
		t.Fatalf("follower saw %d records, want %d", len(got), n)
	}
	for i, seq := range got {
		if seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, seq)
		}
	}
}

func TestFollowerOverflowDies(t *testing.T) {
	dir := t.TempDir()
	res, err := Recover(dir, 0, func(Record) error { return nil }, nil)
	if err != nil {
		t.Fatal(err)
	}
	l, err := OpenLog(dir, 0, res, Options{Level: None})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	f, _ := l.Follow(1) // floor-clamped, but tiny intent: overflow fast
	defer f.Close()
	big := make([]byte, 96<<10)
	for i := 1; i <= 1024; i++ {
		if err := l.Append(uint64(i), []Op{{Kind: KindSet, Key: "k", Val: big}}); err != nil {
			t.Fatal(err)
		}
	}
	// The follower was never drained: it must be dead, not unbounded.
	if _, _, ok := f.Take(nil); ok {
		t.Fatal("overflowed follower returned data")
	}
}

func TestFollowerClosesWithLog(t *testing.T) {
	dir := t.TempDir()
	res, err := Recover(dir, 0, func(Record) error { return nil }, nil)
	if err != nil {
		t.Fatal(err)
	}
	l, err := OpenLog(dir, 0, res, Options{Level: None})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := l.Follow(1 << 20)
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.Take(nil) // blocks until the log dies
	}()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
}

func TestTxnPartsRoundTrip(t *testing.T) {
	parts := []TxnPart{{Shard: 0, Seq: 7}, {Shard: 3, Seq: 12}, {Shard: TxnShard - 1, Seq: 1 << 40}}
	enc := AppendTxnParts(nil, parts)
	got, err := DecodeTxnParts(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(parts) {
		t.Fatalf("%d parts, want %d", len(got), len(parts))
	}
	for i := range parts {
		if got[i] != parts[i] {
			t.Fatalf("part %d: %+v vs %+v", i, got[i], parts[i])
		}
	}
	if _, err := DecodeTxnParts(enc[:len(enc)-1]); err == nil {
		t.Fatal("ragged parts vector accepted")
	}
	var empty []TxnPart
	if got, err := DecodeTxnParts(nil); err != nil || len(got) != len(empty) {
		t.Fatalf("empty vector: %v, %v", got, err)
	}
}

func TestCrossFlagRoundTrip(t *testing.T) {
	enc, err := AppendRecordFlags(nil, 2, 9, FlagCross, 0xAB54A98CEB1F0AD2, testOps(9))
	if err != nil {
		t.Fatal(err)
	}
	rec, n, err := DecodeRecord(enc)
	if err != nil || n != len(enc) {
		t.Fatalf("decode: %v (%d of %d)", err, n, len(enc))
	}
	if !rec.Cross || rec.Txn != 0xAB54A98CEB1F0AD2 {
		t.Fatalf("cross header lost: cross %v, txn %#x", rec.Cross, rec.Txn)
	}
	if _, err := AppendRecordFlags(nil, 2, 9, 0x80, 0, testOps(9)); err == nil {
		t.Fatal("unassigned flag accepted")
	}
	// A v1-style record decodes with Cross unset (see fuzz test for the
	// flags-must-be-zero arm).
	plain, err := AppendRecord(nil, 2, 9, testOps(9))
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err = DecodeRecord(plain)
	if err != nil || rec.Cross || rec.Txn != 0 {
		t.Fatalf("plain record: %v, cross %v, txn %d", err, rec.Cross, rec.Txn)
	}
}
