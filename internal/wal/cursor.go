package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
)

// Segment-cursor reads: the replication catch-up path. A streamer
// serving a follower from sequence N reads records N.. straight from
// the segment files — read-only, concurrent with the live appender —
// and stops cleanly at the first defect, which on a healthy log is
// simply the not-yet-written tail (the live boundary where the
// Follower takes over). Unlike Recover, a scan never repairs: the
// appender owns the files.

// ErrCompacted reports that the requested sequence predates the
// oldest on-disk record: compaction pruned it. The caller must fall
// back to a snapshot (LatestSnapshot) and resume from its sequence.
var ErrCompacted = errors.New("wal: requested records compacted away")

// ScanSegments streams every decodable record with seq >= fromSeq
// from shard's segment files in dir, in sequence order, stopping at
// the first defect (torn tail, gap, or checksum failure — on a live
// log, the write frontier). fn receives the decoded record and its
// raw encoded bytes (valid only during the call). It returns next,
// the first sequence NOT streamed: fn was called for exactly
// [fromSeq, next). next == fromSeq means nothing was available yet.
//
// Scanning is read-only and safe concurrently with the appender; a
// partially visible in-flight write decodes as a short record and
// ends the scan at that boundary.
func ScanSegments(dir string, shard uint32, fromSeq uint64, fn func(rec Record, raw []byte) error) (next uint64, err error) {
	if fromSeq == 0 {
		fromSeq = 1
	}
	next = fromSeq
	snaps, segs, err := listDir(OSFS, dir)
	if err != nil {
		if os.IsNotExist(err) {
			return next, nil // nothing logged yet
		}
		return next, err
	}
	if len(segs) == 0 {
		for _, sn := range snaps {
			if sn.seq >= fromSeq {
				return next, ErrCompacted
			}
		}
		return next, nil
	}
	// Start at the newest segment whose first sequence is <= fromSeq.
	start := 0
	for i, sg := range segs {
		if sg.seq <= fromSeq {
			start = i
		}
	}
	if segs[start].seq > fromSeq {
		return next, ErrCompacted
	}
	expected := segs[start].seq
	for i := start; i < len(segs); i++ {
		sg := segs[i]
		b, rerr := os.ReadFile(sg.path)
		if rerr != nil {
			return next, rerr
		}
		headerOK := len(b) >= fileHeaderLen &&
			string(b[:8]) == segMagic &&
			binary.LittleEndian.Uint32(b[8:12]) == shard &&
			binary.LittleEndian.Uint64(b[12:20]) == sg.seq
		if !headerOK || sg.seq != expected {
			return next, nil // defect boundary: stop cleanly
		}
		off := fileHeaderLen
		for off < len(b) {
			rec, n, derr := DecodeRecord(b[off:])
			if derr != nil || rec.Shard != shard || rec.Seq != expected {
				return next, nil
			}
			if rec.Seq >= fromSeq {
				if err := fn(rec, b[off:off+n]); err != nil {
					return next, err
				}
				next = rec.Seq + 1
			}
			expected++
			off += n
		}
	}
	return next, nil
}

// LatestSnapshot loads the newest loadable snapshot of shard in dir,
// returning its sequence and records. seq == 0 means no snapshot
// exists (an empty store prefix — not an error).
func LatestSnapshot(dir string, shard uint32) (seq uint64, recs []Record, err error) {
	snaps, _, err := listDir(OSFS, dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil, nil
		}
		return 0, nil, err
	}
	for i := len(snaps) - 1; i >= 0; i-- {
		s, r, lerr := loadSnapshot(OSFS, snaps[i].path, shard)
		if lerr != nil {
			continue
		}
		return s, r, nil
	}
	if len(snaps) > 0 {
		return 0, nil, fmt.Errorf("wal: shard %d: no snapshot is loadable", shard)
	}
	return 0, nil, nil
}
