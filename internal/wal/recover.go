package wal

import (
	"encoding/binary"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
)

// Recovery: establish the longest usable commit-order prefix of what
// was logged, repair the directory down to exactly that prefix, and
// replay it. Two passes over the segments:
//
//  1. Scan: walk the segments in order, decoding records and checking
//     the dense-sequence chain (each record's seq is its predecessor's
//     +1, each segment starts where the previous ended). The first
//     defect — short record, bad checksum, wrong stamp, inter-segment
//     gap — marks the truncation point; everything at and beyond it is
//     discarded (the file truncated, later files deleted). A torn tail
//     is therefore repaired, never fatal.
//  2. Replay: pick the newest loadable snapshot that the surviving
//     chain can extend (its seq within the chain), apply it, then
//     apply the chain's records past it.
//
// The result is always a commit-order prefix: a snapshot is the exact
// state at its seq (the kv layer snapshots through a sequenced marker
// transaction), and replaying dense records over it reproduces the
// exact state at the truncation point.

// RecoverResult summarizes a recovery.
type RecoverResult struct {
	// LastSeq is the commit sequence the recovered state corresponds
	// to; appending resumes at LastSeq+1.
	LastSeq uint64
	// SnapshotSeq is the sequence of the snapshot used (0 = none).
	SnapshotSeq uint64
	// SnapshotRecords and Records count what was applied: snapshot
	// chunks and replayed log records.
	SnapshotRecords int
	Records         int
	// Truncated reports whether a torn or corrupt tail was repaired,
	// dropping TruncatedBytes bytes.
	Truncated      bool
	TruncatedBytes int64

	// Tail of the repaired log, consumed by OpenLog: the segment to
	// continue appending to, if any survived.
	tailPath string
	tailSize int64
}

// fileInfo is one parsed directory entry (snapshot or segment).
type fileInfo struct {
	seq  uint64 // segment firstSeq / snapshot seq
	path string
	size int64
}

// listDir parses the durability directory into snapshots and segments,
// each sorted by sequence. Unrecognized names are ignored, except that
// leftover temp files from an interrupted snapshot write are removed.
func listDir(fsys FS, dir string) (snaps, segs []fileInfo, err error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, ent := range ents {
		name := ent.Name()
		if strings.HasSuffix(name, ".tmp") {
			fsys.Remove(filepath.Join(dir, name))
			continue
		}
		var seq uint64
		var list *[]fileInfo
		switch {
		case len(name) == len("snap-.snap")+20 && strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			if _, err := fmt.Sscanf(name, "snap-%020d.snap", &seq); err != nil {
				continue
			}
			list = &snaps
		case len(name) == len("seg-.wal")+20 && strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".wal"):
			if _, err := fmt.Sscanf(name, "seg-%020d.wal", &seq); err != nil {
				continue
			}
			list = &segs
		default:
			continue
		}
		info, err := ent.Info()
		if err != nil {
			return nil, nil, err
		}
		*list = append(*list, fileInfo{seq: seq, path: filepath.Join(dir, name), size: info.Size()})
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].seq < snaps[j].seq })
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return snaps, segs, nil
}

// Recover repairs shard's durability directory and replays its state
// into apply, in commit order: first the chosen snapshot's records,
// then the log records past it. It creates dir if missing. m, when
// non-nil, receives truncation metrics.
//
// Recovery fails only on I/O errors, an apply error, or an
// unrecoverable gap (every snapshot lost or corrupt after segments
// were compacted away — state that no longer exists on disk). Torn and
// corrupt tails are repaired, not errors.
func Recover(dir string, shard uint32, apply func(Record) error, m *Metrics) (RecoverResult, error) {
	return RecoverLimitedFS(nil, dir, shard, ^uint64(0), apply, m)
}

// RecoverFS is Recover through an explicit filesystem seam (nil = the
// real one).
func RecoverFS(fsys FS, dir string, shard uint32, apply func(Record) error, m *Metrics) (RecoverResult, error) {
	return RecoverLimitedFS(fsys, dir, shard, ^uint64(0), apply, m)
}

// RecoverLimited is Recover with a sequence ceiling: any record with
// seq > limit is treated exactly like a torn tail — the chain is
// physically truncated there and everything beyond dropped. The store
// uses this to roll back cross-shard transactions whose commit marker
// or sibling records did not survive; the caller must pick a limit no
// lower than the newest usable snapshot's seq, since state baked into
// a snapshot cannot be unwound.
func RecoverLimited(dir string, shard uint32, limit uint64, apply func(Record) error, m *Metrics) (RecoverResult, error) {
	return RecoverLimitedFS(nil, dir, shard, limit, apply, m)
}

// RecoverLimitedFS is RecoverLimited through an explicit filesystem
// seam (nil = the real one).
func RecoverLimitedFS(fsys FS, dir string, shard uint32, limit uint64, apply func(Record) error, m *Metrics) (RecoverResult, error) {
	fsys = fsOrOS(fsys)
	var res RecoverResult
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return res, fmt.Errorf("wal: create dir: %w", err)
	}
	snaps, segs, err := listDir(fsys, dir)
	if err != nil {
		return res, err
	}

	// Pass 1 — scan the chain and repair. bodies[i] holds segment i's
	// surviving record bytes for the replay pass.
	bodies := make([][]byte, 0, len(segs))
	var (
		chainStart uint64 // first seq of the surviving chain (0 = empty)
		lastValid  uint64 // last seq of the surviving chain
		truncAt    = -1   // first segment index to repair (-1 = none)
		truncOff   int64  // keep bytes [0, truncOff) of that segment
	)
scan:
	for i, sg := range segs {
		b, err := fsys.ReadFile(sg.path)
		if err != nil {
			return res, err
		}
		headerOK := len(b) >= fileHeaderLen &&
			string(b[:8]) == segMagic &&
			binary.LittleEndian.Uint32(b[8:12]) == shard &&
			binary.LittleEndian.Uint64(b[12:20]) == sg.seq
		expected := lastValid + 1
		if !headerOK || (chainStart != 0 && sg.seq != expected) {
			// Unreadable header or inter-segment gap: drop this file
			// and everything after it.
			truncAt, truncOff = i, 0
			break
		}
		if chainStart == 0 {
			chainStart = sg.seq
			expected = sg.seq
		}
		off := int64(fileHeaderLen)
		for int(off) < len(b) {
			rec, n, derr := DecodeRecord(b[off:])
			if derr != nil || rec.Shard != shard || rec.Seq != expected || rec.Seq > limit {
				truncAt, truncOff = i, off
				bodies = append(bodies, b[fileHeaderLen:off])
				break scan
			}
			lastValid = expected
			expected++
			off += int64(n)
		}
		bodies = append(bodies, b[fileHeaderLen:off])
	}
	if truncAt >= 0 {
		for i := truncAt; i < len(segs); i++ {
			keep := int64(0)
			if i == truncAt {
				keep = truncOff
			}
			res.TruncatedBytes += segs[i].size - keep
			if keep > 0 {
				if err := fsys.Truncate(segs[i].path, keep); err != nil {
					return res, fmt.Errorf("wal: truncate torn tail: %w", err)
				}
				segs[i].size = keep
			} else if err := fsys.Remove(segs[i].path); err != nil {
				return res, fmt.Errorf("wal: drop torn segment: %w", err)
			}
		}
		res.Truncated = true
		if m != nil {
			m.Truncations.Add(1)
			m.TruncatedBytes.Add(uint64(res.TruncatedBytes))
		}
		if truncOff > 0 {
			segs = segs[:truncAt+1]
		} else {
			segs = segs[:truncAt]
		}
		if err := fsys.SyncDir(dir); err != nil {
			return res, err
		}
	}
	if len(bodies) > len(segs) {
		bodies = bodies[:len(segs)]
	}
	// A chain that survived zero records is no chain at all: its
	// segments are headers with nothing in them, stamped with first
	// sequences a standalone snapshot cannot line up with. Drop them so
	// the snapshot stands alone and appending restarts on a fresh
	// segment at the snapshot's sequence.
	if chainStart != 0 && lastValid == 0 {
		for _, sg := range segs {
			if err := fsys.Remove(sg.path); err != nil {
				return res, fmt.Errorf("wal: drop empty chain: %w", err)
			}
		}
		segs, bodies, chainStart = nil, nil, 0
		if err := fsys.SyncDir(dir); err != nil {
			return res, err
		}
	}

	// Pass 2 — choose a snapshot the chain can extend: newest loadable
	// one with chainStart-1 <= seq <= lastValid (with no chain at all,
	// any loadable snapshot stands alone). A chain-anchoring snapshot is
	// preferred over a newer standalone one even though the newer one
	// holds more committed state: records kept in the chain remain
	// unwindable (RecoverLimited — the cross-shard all-or-nothing cut
	// depends on that), while state baked into a snapshot is not.
	var snapRecs []Record
	for i := len(snaps) - 1; i >= 0; i-- {
		seq, recs, lerr := loadSnapshot(fsys, snaps[i].path, shard)
		if lerr != nil {
			continue // corrupt or unreadable: fall back to an older one
		}
		if seq > limit {
			continue // beyond the ceiling: cannot be unwound, so skip it
		}
		if chainStart != 0 && (seq > lastValid || seq+1 < chainStart) {
			continue // outside the chain's window
		}
		res.SnapshotSeq = seq
		snapRecs = recs
		break
	}
	if snapRecs == nil && chainStart > 1 {
		// Last resort before declaring the state unrecoverable: a
		// loadable snapshot NEWER than the entire surviving chain is
		// itself a complete commit prefix (every surviving record is
		// already baked into it), so it supersedes the chain. Mid-log
		// damage plus compaction produces this — the chain truncates
		// below the oldest retained snapshot — and insisting on a
		// chain-anchoring snapshot would turn recoverable state into an
		// error.
		for i := len(snaps) - 1; i >= 0; i-- {
			seq, recs, lerr := loadSnapshot(fsys, snaps[i].path, shard)
			if lerr != nil || seq > limit || seq <= lastValid {
				continue
			}
			for _, sg := range segs {
				if err := fsys.Remove(sg.path); err != nil {
					return res, fmt.Errorf("wal: drop superseded chain: %w", err)
				}
			}
			segs, bodies = nil, nil
			chainStart, lastValid = 0, 0
			if err := fsys.SyncDir(dir); err != nil {
				return res, err
			}
			res.SnapshotSeq = seq
			snapRecs = recs
			break
		}
	}
	if snapRecs == nil && chainStart > 1 {
		return res, fmt.Errorf("wal: shard %d: no usable snapshot and the log starts at seq %d — records 1..%d were compacted away", shard, chainStart, chainStart-1)
	}
	if snapRecs == nil && chainStart == 0 && len(snaps) > 0 {
		return res, fmt.Errorf("wal: shard %d: every snapshot is corrupt and no log segments remain", shard)
	}
	for _, rec := range snapRecs {
		if err := apply(rec); err != nil {
			return res, err
		}
		res.SnapshotRecords++
	}
	res.LastSeq = res.SnapshotSeq
	for _, body := range bodies {
		for off := 0; off < len(body); {
			rec, n, derr := DecodeRecord(body[off:])
			if derr != nil { // cannot happen: pass 1 validated these bytes
				return res, derr
			}
			off += n
			if rec.Seq <= res.SnapshotSeq {
				continue
			}
			if err := apply(rec); err != nil {
				return res, err
			}
			res.Records++
			res.LastSeq = rec.Seq
		}
	}
	if lastValid > res.LastSeq {
		// Chain records at or below the snapshot seq need no replay
		// but still position the appender.
		res.LastSeq = lastValid
	}

	if len(segs) > 0 {
		tail := segs[len(segs)-1]
		res.tailPath, res.tailSize = tail.path, tail.size
	}
	return res, nil
}
