package wal

import (
	"fmt"
	"io/fs"
	"os"
)

// FS is the seam between the WAL and the filesystem: every file
// operation the package performs — segment and snapshot creation,
// appends, fsyncs, directory scans, recovery repair — goes through one
// of these methods, so a test can interpose fault injection
// (internal/fault) at exactly the syscall boundary without touching
// real disks or monkey-patching. OSFS is the real implementation and
// the default everywhere an FS is optional.
//
// The method set is intentionally the WAL's actual footprint, not a
// general VFS: if the package grows a new kind of file operation, it
// must grow here too, which is the point — the fault matrix stays
// enumerable.
type FS interface {
	// OpenFile opens name like os.OpenFile. The returned File is used
	// for appends (segments) and whole-file writes (snapshot temps).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadFile reads name completely, like os.ReadFile.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists dir, like os.ReadDir.
	ReadDir(name string) ([]fs.DirEntry, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// Truncate cuts name to size bytes (torn-tail repair).
	Truncate(name string, size int64) error
	// MkdirAll creates dir and parents, like os.MkdirAll.
	MkdirAll(name string, perm os.FileMode) error
	// SyncDir fsyncs a directory so renames and creations in it are
	// durable.
	SyncDir(name string) error
}

// File is the open-file surface the WAL uses: append writes, fsync,
// close. Implemented by *os.File.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// OSFS is the real filesystem.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }
func (osFS) MkdirAll(name string, perm os.FileMode) error { return os.MkdirAll(name, perm) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir for sync: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

// fsOrOS returns fsys, or the real filesystem when fsys is nil — the
// nil-tolerant default every entry point funnels through.
func fsOrOS(fsys FS) FS {
	if fsys == nil {
		return OSFS
	}
	return fsys
}
