package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"slices"
)

// The record codec: fixed layout, explicit offsets, little-endian, no
// reflection. One record is one committed transaction's operations on
// one shard. On disk:
//
//	offset  size  field
//	0       4     payload length (bytes after the checksum)
//	4       4     CRC32C of the payload
//	8       ...   payload:
//	  +0    1     format version (recordVersion)
//	  +1    1     reserved (zero)
//	  +2    2     op count
//	  +4    4     shard
//	  +8    8     commit sequence
//	  +16   ...   ops, each:
//	    +0  1     kind (KindSet, KindCounterAdd, KindCounterSet, KindDelete)
//	    +1  1     reserved (zero)
//	    +2  2     key length
//	    +4  4     value length (SET: len(Val); counters: 8; DELETE: 0)
//	    +8  ...   key bytes, then value bytes (counters: int64, LE)
//
// The checksum covers the payload only; the length prefix is validated
// structurally (bounds, exact op consumption). A record that fails any
// check decodes to ErrCorrupt; a record that runs past the end of the
// input decodes to ErrShortRecord — the torn-tail signal recovery
// truncates at.

const (
	recordVersion = 1

	recordHeaderSize  = 8  // payload length + CRC32C
	payloadHeaderSize = 16 // version, reserved, nops, shard, seq
	opHeaderSize      = 8  // kind, reserved, key length, value length

	// MaxRecordSize bounds one record's payload (and therefore one
	// transaction's encoded write set): a defense against hostile
	// length prefixes, far above anything the store emits.
	MaxRecordSize = 1 << 28

	// MaxKeyLen is the largest encodable key (the wire field is 16 bits).
	MaxKeyLen = 1<<16 - 1

	// maxOps is the largest encodable op count per record.
	maxOps = 1<<16 - 1
)

// Codec errors. Recovery distinguishes them: a short record is the
// expected shape of a torn tail (the crash interrupted a write), while
// a corrupt record means the bytes are there but wrong — both truncate,
// but they are counted and reported separately where it matters.
var (
	ErrShortRecord = errors.New("wal: short record")
	ErrCorrupt     = errors.New("wal: corrupt record")
)

// crcTable is the Castagnoli table (CRC32C) — hardware-accelerated on
// the platforms this runs on.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Kind identifies one operation within a record.
type Kind uint8

// Operation kinds. KindCounterSet is what the store emits for counter
// writes (the absolute post-transaction value, so replay is
// idempotent); KindCounterAdd is the relative form, part of the wire
// format for producers that cannot supply absolute values — appliers
// must not replay it over state that may already include it.
const (
	KindSet        Kind = 1 // bytes lane: set Key to Val
	KindCounterAdd Kind = 2 // counter lane: add N to Key
	KindCounterSet Kind = 3 // counter lane: set Key to N
	KindDelete     Kind = 4 // remove Key from the table
)

var kindNames = [...]string{KindSet: "set", KindCounterAdd: "cadd", KindCounterSet: "cset", KindDelete: "del"}

// String returns the kind's wire name (stable: EVENT lines emit it).
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// valid reports whether k is an encodable kind.
func (k Kind) valid() bool { return k >= KindSet && k <= KindDelete }

// Op is one operation: a key and, depending on Kind, a byte-slice
// value (KindSet) or an int64 (counters). Delete carries the key only.
type Op struct {
	Kind Kind
	Key  string
	Val  []byte // KindSet payload; nil otherwise
	N    int64  // KindCounterAdd delta / KindCounterSet absolute value
}

// Record is one decoded log record: the operations of one committed
// transaction on one shard, at one commit sequence number.
type Record struct {
	Shard uint32
	Seq   uint64
	Ops   []Op
}

// opWireSize returns the encoded size of op, or an error if it exceeds
// a wire limit.
func opWireSize(op *Op) (int, error) {
	if !op.Kind.valid() {
		return 0, fmt.Errorf("%w: op kind %d", ErrCorrupt, op.Kind)
	}
	if len(op.Key) > MaxKeyLen {
		return 0, fmt.Errorf("wal: key of %d bytes exceeds the %d-byte wire limit", len(op.Key), MaxKeyLen)
	}
	n := opHeaderSize + len(op.Key)
	switch op.Kind {
	case KindSet:
		n += len(op.Val)
	case KindCounterAdd, KindCounterSet:
		n += 8
	}
	return n, nil
}

// AppendRecord encodes one record and appends it to dst, returning the
// extended slice. It is the only encoder: the Log's group-commit
// buffer, the snapshot writer and the tests all append through it.
func AppendRecord(dst []byte, shard uint32, seq uint64, ops []Op) ([]byte, error) {
	if len(ops) > maxOps {
		return dst, fmt.Errorf("wal: %d ops exceed the %d-op record limit", len(ops), maxOps)
	}
	payload := payloadHeaderSize
	for i := range ops {
		n, err := opWireSize(&ops[i])
		if err != nil {
			return dst, err
		}
		payload += n
	}
	if payload > MaxRecordSize {
		return dst, fmt.Errorf("wal: %d-byte payload exceeds MaxRecordSize", payload)
	}

	start := len(dst)
	dst = slices.Grow(dst, recordHeaderSize+payload)[:start+recordHeaderSize+payload]
	b := dst[start:]
	binary.LittleEndian.PutUint32(b[0:4], uint32(payload))
	p := b[recordHeaderSize:]
	p[0] = recordVersion
	p[1] = 0
	binary.LittleEndian.PutUint16(p[2:4], uint16(len(ops)))
	binary.LittleEndian.PutUint32(p[4:8], shard)
	binary.LittleEndian.PutUint64(p[8:16], seq)
	off := payloadHeaderSize
	for i := range ops {
		op := &ops[i]
		var vlen int
		switch op.Kind {
		case KindSet:
			vlen = len(op.Val)
		case KindCounterAdd, KindCounterSet:
			vlen = 8
		}
		p[off] = byte(op.Kind)
		p[off+1] = 0
		binary.LittleEndian.PutUint16(p[off+2:off+4], uint16(len(op.Key)))
		binary.LittleEndian.PutUint32(p[off+4:off+8], uint32(vlen))
		off += opHeaderSize
		copy(p[off:], op.Key)
		off += len(op.Key)
		switch op.Kind {
		case KindSet:
			copy(p[off:], op.Val)
		case KindCounterAdd, KindCounterSet:
			binary.LittleEndian.PutUint64(p[off:], uint64(op.N))
		}
		off += vlen
	}
	binary.LittleEndian.PutUint32(b[4:8], crc32.Checksum(p, crcTable))
	return dst, nil
}

// DecodeRecord decodes the record at the front of b, returning it and
// the number of bytes consumed. The returned record does not alias b.
// It returns ErrShortRecord when b ends inside the record (a torn
// tail) and ErrCorrupt when the bytes are structurally or
// checksum-invalid; it never panics, whatever the input.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < recordHeaderSize {
		return Record{}, 0, ErrShortRecord
	}
	plen := int(binary.LittleEndian.Uint32(b[0:4]))
	if plen < payloadHeaderSize || plen > MaxRecordSize {
		return Record{}, 0, fmt.Errorf("%w: payload length %d", ErrCorrupt, plen)
	}
	if len(b) < recordHeaderSize+plen {
		return Record{}, 0, ErrShortRecord
	}
	p := b[recordHeaderSize : recordHeaderSize+plen]
	if got, want := crc32.Checksum(p, crcTable), binary.LittleEndian.Uint32(b[4:8]); got != want {
		return Record{}, 0, fmt.Errorf("%w: checksum %08x, want %08x", ErrCorrupt, got, want)
	}
	// The checksum passed, so from here every failure is structural
	// corruption written by a buggy or foreign encoder, not bit rot.
	if p[0] != recordVersion {
		return Record{}, 0, fmt.Errorf("%w: record version %d", ErrCorrupt, p[0])
	}
	if p[1] != 0 {
		return Record{}, 0, fmt.Errorf("%w: reserved byte %d", ErrCorrupt, p[1])
	}
	nops := int(binary.LittleEndian.Uint16(p[2:4]))
	rec := Record{
		Shard: binary.LittleEndian.Uint32(p[4:8]),
		Seq:   binary.LittleEndian.Uint64(p[8:16]),
		// Cap the pre-allocation by what the payload could possibly
		// hold, so a hostile op count cannot force a large allocation.
		Ops: make([]Op, 0, min(nops, (plen-payloadHeaderSize)/opHeaderSize)),
	}
	off := payloadHeaderSize
	for i := 0; i < nops; i++ {
		if off+opHeaderSize > plen {
			return Record{}, 0, fmt.Errorf("%w: op %d header past payload end", ErrCorrupt, i)
		}
		kind := Kind(p[off])
		klen := int(binary.LittleEndian.Uint16(p[off+2 : off+4]))
		vlen := int(binary.LittleEndian.Uint32(p[off+4 : off+8]))
		if !kind.valid() || p[off+1] != 0 {
			return Record{}, 0, fmt.Errorf("%w: op %d header", ErrCorrupt, i)
		}
		off += opHeaderSize
		if off+klen+vlen > plen || klen+vlen < 0 {
			return Record{}, 0, fmt.Errorf("%w: op %d body past payload end", ErrCorrupt, i)
		}
		op := Op{Kind: kind, Key: string(p[off : off+klen])}
		off += klen
		switch kind {
		case KindSet:
			op.Val = append([]byte(nil), p[off:off+vlen]...)
		case KindCounterAdd, KindCounterSet:
			if vlen != 8 {
				return Record{}, 0, fmt.Errorf("%w: op %d counter value length %d", ErrCorrupt, i, vlen)
			}
			op.N = int64(binary.LittleEndian.Uint64(p[off : off+8]))
		case KindDelete:
			if vlen != 0 {
				return Record{}, 0, fmt.Errorf("%w: op %d delete value length %d", ErrCorrupt, i, vlen)
			}
		}
		off += vlen
		rec.Ops = append(rec.Ops, op)
	}
	if off != plen {
		return Record{}, 0, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, plen-off)
	}
	return rec, recordHeaderSize + plen, nil
}
