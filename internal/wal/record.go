package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"slices"
)

// The record codec: fixed layout, explicit offsets, little-endian, no
// reflection. One record is one committed transaction's operations on
// one shard. On disk:
//
//	offset  size  field
//	0       4     payload length (bytes after the checksum)
//	4       4     CRC32C of the payload
//	8       ...   payload:
//	  +0    1     format version (recordVersion)
//	  +1    1     flags (v1: reserved, must be zero)
//	  +2    2     op count
//	  +4    4     shard
//	  +8    8     commit sequence
//	  +16   8     transaction id (FlagCross records only)
//	  then  ...   ops, each:
//	    +0  1     kind (KindSet, KindCounterAdd, KindCounterSet, KindDelete, KindTxnMarker)
//	    +1  1     reserved (zero)
//	    +2  2     key length
//	    +4  4     value length (SET: len(Val); counters: 8; DELETE: 0)
//	    +8  ...   key bytes, then value bytes (counters: int64, LE)
//
// The checksum covers the payload only; the length prefix is validated
// structurally (bounds, exact op consumption). A record that fails any
// check decodes to ErrCorrupt; a record that runs past the end of the
// input decodes to ErrShortRecord — the torn-tail signal recovery
// truncates at.
//
// Format v2 assigns the payload byte at +1 (reserved and zero in v1)
// as a flags byte; FlagCross marks a record that is one participant of
// a cross-shard transaction, durable only together with its commit
// marker (see TxnShard). A cross record's payload header carries eight
// extra bytes: the transaction id that binds the participants and
// their marker together. The id — not the (shard, seq) pair — is the
// transaction's identity: recovery rollbacks truncate shard logs and
// later commits reuse the freed sequence numbers, while the marker log
// is never rewritten, so a marker that merely named (shard, seq) pairs
// could be satisfied by records of a different, later transaction.
// v1 records decode unchanged with zero flags.

const (
	recordVersion = 2

	recordHeaderSize  = 8  // payload length + CRC32C
	payloadHeaderSize = 16 // version, flags, nops, shard, seq
	crossHeaderExtra  = 8  // transaction id, present when FlagCross is set
	opHeaderSize      = 8  // kind, reserved, key length, value length

	// MaxRecordSize bounds one record's payload (and therefore one
	// transaction's encoded write set): a defense against hostile
	// length prefixes, far above anything the store emits.
	MaxRecordSize = 1 << 28

	// MaxKeyLen is the largest encodable key (the wire field is 16 bits).
	MaxKeyLen = 1<<16 - 1

	// maxOps is the largest encodable op count per record.
	maxOps = 1<<16 - 1
)

// Record flags (payload byte +1, format v2).
const (
	// FlagCross marks one participant record of a cross-shard
	// transaction: it must not be replayed unless the transaction's
	// commit marker and every sibling participant record also survived.
	FlagCross uint8 = 1 << 0

	// knownFlags is the set of assigned flag bits; anything else is
	// corruption from a future or foreign encoder.
	knownFlags = FlagCross
)

// TxnShard is the sentinel shard number of the cross-shard transaction
// marker log: a wal.Log like any shard's, but whose records each carry
// a single KindTxnMarker op naming the participant (shard, seq) vector
// of one committed cross-shard transaction. Real shard numbers are
// small indices; the sentinel cannot collide.
const TxnShard uint32 = 0xFFFFFFFF

// Codec errors. Recovery distinguishes them: a short record is the
// expected shape of a torn tail (the crash interrupted a write), while
// a corrupt record means the bytes are there but wrong — both truncate,
// but they are counted and reported separately where it matters.
var (
	ErrShortRecord = errors.New("wal: short record")
	ErrCorrupt     = errors.New("wal: corrupt record")
)

// crcTable is the Castagnoli table (CRC32C) — hardware-accelerated on
// the platforms this runs on.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Kind identifies one operation within a record.
type Kind uint8

// Operation kinds. KindCounterSet is what the store emits for counter
// writes (the absolute post-transaction value, so replay is
// idempotent); KindCounterAdd is the relative form, part of the wire
// format for producers that cannot supply absolute values — appliers
// must not replay it over state that may already include it.
const (
	KindSet        Kind = 1 // bytes lane: set Key to Val
	KindCounterAdd Kind = 2 // counter lane: add N to Key
	KindCounterSet Kind = 3 // counter lane: set Key to N
	KindDelete     Kind = 4 // remove Key from the table
	KindTxnMarker  Kind = 5 // cross-shard commit marker: Val = participant vector
)

var kindNames = [...]string{KindSet: "set", KindCounterAdd: "cadd", KindCounterSet: "cset", KindDelete: "del", KindTxnMarker: "txm"}

// String returns the kind's wire name (stable: EVENT lines emit it).
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// valid reports whether k is an encodable kind.
func (k Kind) valid() bool { return k >= KindSet && k <= KindTxnMarker }

// Op is one operation: a key and, depending on Kind, a byte-slice
// value (KindSet, KindTxnMarker) or an int64 (counters). Delete
// carries the key only.
type Op struct {
	Kind Kind
	Key  string
	Val  []byte // KindSet / KindTxnMarker payload; nil otherwise
	N    int64  // KindCounterAdd delta / KindCounterSet absolute value
}

// Record is one decoded log record: the operations of one committed
// transaction on one shard, at one commit sequence number. Cross
// reports the FlagCross bit: the record is one participant of a
// cross-shard transaction and replays only with its marker; Txn is
// then the transaction id shared by every participant and the marker
// (zero on plain records).
type Record struct {
	Shard uint32
	Seq   uint64
	Cross bool
	Txn   uint64
	Ops   []Op
}

// TxnPart names one participant of a cross-shard transaction: the
// record at Seq on Shard. The commit marker's op value is the encoded
// vector of all participants.
type TxnPart struct {
	Shard uint32
	Seq   uint64
}

// txnPartWire is the encoded size of one TxnPart (u32 shard + u64 seq).
const txnPartWire = 12

// AppendTxnParts encodes a participant vector (the marker op's Val).
func AppendTxnParts(dst []byte, parts []TxnPart) []byte {
	dst = slices.Grow(dst, len(parts)*txnPartWire)
	for _, p := range parts {
		dst = binary.LittleEndian.AppendUint32(dst, p.Shard)
		dst = binary.LittleEndian.AppendUint64(dst, p.Seq)
	}
	return dst
}

// DecodeTxnParts decodes a marker op's participant vector. A length
// that is not a whole number of parts is ErrCorrupt.
func DecodeTxnParts(val []byte) ([]TxnPart, error) {
	if len(val)%txnPartWire != 0 {
		return nil, fmt.Errorf("%w: txn marker value of %d bytes", ErrCorrupt, len(val))
	}
	parts := make([]TxnPart, 0, len(val)/txnPartWire)
	for off := 0; off < len(val); off += txnPartWire {
		parts = append(parts, TxnPart{
			Shard: binary.LittleEndian.Uint32(val[off : off+4]),
			Seq:   binary.LittleEndian.Uint64(val[off+4 : off+12]),
		})
	}
	return parts, nil
}

// opWireSize returns the encoded size of op, or an error if it exceeds
// a wire limit.
func opWireSize(op *Op) (int, error) {
	if !op.Kind.valid() {
		return 0, fmt.Errorf("%w: op kind %d", ErrCorrupt, op.Kind)
	}
	if len(op.Key) > MaxKeyLen {
		return 0, fmt.Errorf("wal: key of %d bytes exceeds the %d-byte wire limit", len(op.Key), MaxKeyLen)
	}
	n := opHeaderSize + len(op.Key)
	switch op.Kind {
	case KindSet, KindTxnMarker:
		n += len(op.Val)
	case KindCounterAdd, KindCounterSet:
		n += 8
	}
	return n, nil
}

// AppendRecord encodes one record with zero flags and appends it to
// dst, returning the extended slice. See AppendRecordFlags.
func AppendRecord(dst []byte, shard uint32, seq uint64, ops []Op) ([]byte, error) {
	return AppendRecordFlags(dst, shard, seq, 0, 0, ops)
}

// AppendRecordFlags encodes one record and appends it to dst,
// returning the extended slice. It is the only encoder: the Log's
// group-commit buffer, the snapshot writer and the tests all append
// through it. flags is the v2 flags byte (FlagCross or zero); txn is
// the cross-shard transaction id, encoded only when FlagCross is set.
func AppendRecordFlags(dst []byte, shard uint32, seq uint64, flags uint8, txn uint64, ops []Op) ([]byte, error) {
	if flags&^knownFlags != 0 {
		return dst, fmt.Errorf("wal: unassigned record flags %#02x", flags)
	}
	if len(ops) > maxOps {
		return dst, fmt.Errorf("wal: %d ops exceed the %d-op record limit", len(ops), maxOps)
	}
	payload := payloadHeaderSize
	if flags&FlagCross != 0 {
		payload += crossHeaderExtra
	}
	for i := range ops {
		n, err := opWireSize(&ops[i])
		if err != nil {
			return dst, err
		}
		payload += n
	}
	if payload > MaxRecordSize {
		return dst, fmt.Errorf("wal: %d-byte payload exceeds MaxRecordSize", payload)
	}

	start := len(dst)
	dst = slices.Grow(dst, recordHeaderSize+payload)[:start+recordHeaderSize+payload]
	b := dst[start:]
	binary.LittleEndian.PutUint32(b[0:4], uint32(payload))
	p := b[recordHeaderSize:]
	p[0] = recordVersion
	p[1] = flags
	binary.LittleEndian.PutUint16(p[2:4], uint16(len(ops)))
	binary.LittleEndian.PutUint32(p[4:8], shard)
	binary.LittleEndian.PutUint64(p[8:16], seq)
	off := payloadHeaderSize
	if flags&FlagCross != 0 {
		binary.LittleEndian.PutUint64(p[off:off+8], txn)
		off += crossHeaderExtra
	}
	for i := range ops {
		op := &ops[i]
		var vlen int
		switch op.Kind {
		case KindSet, KindTxnMarker:
			vlen = len(op.Val)
		case KindCounterAdd, KindCounterSet:
			vlen = 8
		}
		p[off] = byte(op.Kind)
		p[off+1] = 0
		binary.LittleEndian.PutUint16(p[off+2:off+4], uint16(len(op.Key)))
		binary.LittleEndian.PutUint32(p[off+4:off+8], uint32(vlen))
		off += opHeaderSize
		copy(p[off:], op.Key)
		off += len(op.Key)
		switch op.Kind {
		case KindSet, KindTxnMarker:
			copy(p[off:], op.Val)
		case KindCounterAdd, KindCounterSet:
			binary.LittleEndian.PutUint64(p[off:], uint64(op.N))
		}
		off += vlen
	}
	binary.LittleEndian.PutUint32(b[4:8], crc32.Checksum(p, crcTable))
	return dst, nil
}

// DecodeRecord decodes the record at the front of b, returning it and
// the number of bytes consumed. The returned record does not alias b.
// It returns ErrShortRecord when b ends inside the record (a torn
// tail) and ErrCorrupt when the bytes are structurally or
// checksum-invalid; it never panics, whatever the input.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < recordHeaderSize {
		return Record{}, 0, ErrShortRecord
	}
	plen := int(binary.LittleEndian.Uint32(b[0:4]))
	if plen < payloadHeaderSize || plen > MaxRecordSize {
		return Record{}, 0, fmt.Errorf("%w: payload length %d", ErrCorrupt, plen)
	}
	if len(b) < recordHeaderSize+plen {
		return Record{}, 0, ErrShortRecord
	}
	p := b[recordHeaderSize : recordHeaderSize+plen]
	if got, want := crc32.Checksum(p, crcTable), binary.LittleEndian.Uint32(b[4:8]); got != want {
		return Record{}, 0, fmt.Errorf("%w: checksum %08x, want %08x", ErrCorrupt, got, want)
	}
	// The checksum passed, so from here every failure is structural
	// corruption written by a buggy or foreign encoder, not bit rot.
	// Version 1 is the PR 7 format: same layout, byte +1 reserved-zero.
	if p[0] != 1 && p[0] != recordVersion {
		return Record{}, 0, fmt.Errorf("%w: record version %d", ErrCorrupt, p[0])
	}
	flags := p[1]
	if flags&^knownFlags != 0 || (p[0] == 1 && flags != 0) {
		return Record{}, 0, fmt.Errorf("%w: record flags %#02x (version %d)", ErrCorrupt, flags, p[0])
	}
	nops := int(binary.LittleEndian.Uint16(p[2:4]))
	rec := Record{
		Shard: binary.LittleEndian.Uint32(p[4:8]),
		Seq:   binary.LittleEndian.Uint64(p[8:16]),
		Cross: flags&FlagCross != 0,
		// Cap the pre-allocation by what the payload could possibly
		// hold, so a hostile op count cannot force a large allocation.
		Ops: make([]Op, 0, min(nops, (plen-payloadHeaderSize)/opHeaderSize)),
	}
	off := payloadHeaderSize
	if rec.Cross {
		if plen < payloadHeaderSize+crossHeaderExtra {
			return Record{}, 0, fmt.Errorf("%w: cross record too short for its transaction id", ErrCorrupt)
		}
		rec.Txn = binary.LittleEndian.Uint64(p[off : off+8])
		off += crossHeaderExtra
	}
	for i := 0; i < nops; i++ {
		if off+opHeaderSize > plen {
			return Record{}, 0, fmt.Errorf("%w: op %d header past payload end", ErrCorrupt, i)
		}
		kind := Kind(p[off])
		klen := int(binary.LittleEndian.Uint16(p[off+2 : off+4]))
		vlen := int(binary.LittleEndian.Uint32(p[off+4 : off+8]))
		if !kind.valid() || p[off+1] != 0 {
			return Record{}, 0, fmt.Errorf("%w: op %d header", ErrCorrupt, i)
		}
		off += opHeaderSize
		if off+klen+vlen > plen || klen+vlen < 0 {
			return Record{}, 0, fmt.Errorf("%w: op %d body past payload end", ErrCorrupt, i)
		}
		op := Op{Kind: kind, Key: string(p[off : off+klen])}
		off += klen
		switch kind {
		case KindSet, KindTxnMarker:
			op.Val = append([]byte(nil), p[off:off+vlen]...)
		case KindCounterAdd, KindCounterSet:
			if vlen != 8 {
				return Record{}, 0, fmt.Errorf("%w: op %d counter value length %d", ErrCorrupt, i, vlen)
			}
			op.N = int64(binary.LittleEndian.Uint64(p[off : off+8]))
		case KindDelete:
			if vlen != 0 {
				return Record{}, 0, fmt.Errorf("%w: op %d delete value length %d", ErrCorrupt, i, vlen)
			}
		}
		off += vlen
		rec.Ops = append(rec.Ops, op)
	}
	if off != plen {
		return Record{}, 0, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, plen-off)
	}
	return rec, recordHeaderSize + plen, nil
}
