// Sticky-failure latching, pinned through the fault-injection seam:
// every append/sync error path fails the Log exactly once, the failure
// is reported (Err, WaitDurable, Sync, Metrics.Failures), further
// appends are refused with the original error, and recovery over the
// healed directory comes back clean. External test package: fault
// imports wal, so these tests cannot live in package wal.
package wal_test

import (
	"errors"
	"syscall"
	"testing"
	"time"

	"modtx/internal/fault"
	"modtx/internal/wal"
)

// openFaultLog recovers dir and opens shard 0's log over fsys at the
// Fsync level with metrics attached.
func openFaultLog(t *testing.T, fsys wal.FS, dir string, m *wal.Metrics) *wal.Log {
	t.Helper()
	res, err := wal.RecoverFS(fsys, dir, 0, func(wal.Record) error { return nil }, m)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	l, err := wal.OpenLog(dir, 0, res, wal.Options{Level: wal.Fsync, Metrics: m, FS: fsys})
	if err != nil {
		t.Fatalf("open log: %v", err)
	}
	return l
}

func appendN(t *testing.T, l *wal.Log, from, to uint64) {
	t.Helper()
	for seq := from; seq <= to; seq++ {
		if err := l.Append(seq, []wal.Op{{Kind: wal.KindSet, Key: "k", Val: []byte("v")}}); err != nil {
			t.Fatalf("append %d: %v", seq, err)
		}
	}
}

// TestLatchWriteError: a failed write(2) latches and every surface
// reports it.
func TestLatchWriteError(t *testing.T) {
	dir := t.TempDir()
	dfs := fault.NewDiskFS(nil, fault.DiskPlan{})
	var m wal.Metrics
	l := openFaultLog(t, dfs, dir, &m)

	appendN(t, l, 1, 3)
	if err := l.Sync(); err != nil {
		t.Fatalf("healthy sync: %v", err)
	}

	dfs.FailNextWrite(fault.ErrIO)
	appendN(t, l, 4, 4) // queues fine; the batcher hits the fault
	if err := l.WaitDurable(4); !errors.Is(err, syscall.EIO) {
		t.Fatalf("WaitDurable after write fault: %v", err)
	}
	if err := l.Err(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Err: %v", err)
	}
	// Latched: appends are refused with the original error, and the
	// failure counted once.
	if err := l.Append(5, nil); !errors.Is(err, syscall.EIO) {
		t.Fatalf("append after latch: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync after latch: %v", err)
	}
	if got := m.Failures.Load(); got != 1 {
		t.Fatalf("Failures = %d, want 1", got)
	}
	l.Close()

	// Reopen over the healed disk: the durable prefix (1..3) survives.
	dfs.Heal()
	var recs []wal.Record
	res, err := wal.RecoverFS(dfs, dir, 0, func(r wal.Record) error { recs = append(recs, r); return nil }, &m)
	if err != nil {
		t.Fatalf("recover after heal: %v", err)
	}
	if res.LastSeq != 3 || len(recs) != 3 {
		t.Fatalf("recovered LastSeq=%d records=%d, want 3/3", res.LastSeq, len(recs))
	}
	l2, err := wal.OpenLog(dir, 0, res, wal.Options{Level: wal.Fsync, Metrics: &m, FS: dfs})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	appendN(t, l2, 4, 4)
	if err := l2.Sync(); err != nil {
		t.Fatalf("sync after reopen: %v", err)
	}
}

// TestLatchSyncError: a failed fsync latches the same way.
func TestLatchSyncError(t *testing.T) {
	dir := t.TempDir()
	dfs := fault.NewDiskFS(nil, fault.DiskPlan{})
	var m wal.Metrics
	l := openFaultLog(t, dfs, dir, &m)
	defer l.Close()

	appendN(t, l, 1, 2)
	if err := l.Sync(); err != nil {
		t.Fatalf("healthy sync: %v", err)
	}
	dfs.FailNextSync(fault.ErrIO)
	appendN(t, l, 3, 3)
	if err := l.WaitDurable(3); !errors.Is(err, syscall.EIO) {
		t.Fatalf("WaitDurable after sync fault: %v", err)
	}
	if err := l.Append(4, nil); !errors.Is(err, syscall.EIO) {
		t.Fatalf("append after latch: %v", err)
	}
	if got := m.Failures.Load(); got != 1 {
		t.Fatalf("Failures = %d, want 1", got)
	}
}

// TestLatchTornWrite: a torn write latches, and recovery repairs the
// tail down to the durable prefix.
func TestLatchTornWrite(t *testing.T) {
	dir := t.TempDir()
	dfs := fault.NewDiskFS(nil, fault.DiskPlan{})
	var m wal.Metrics
	l := openFaultLog(t, dfs, dir, &m)

	appendN(t, l, 1, 5)
	if err := l.Sync(); err != nil {
		t.Fatalf("healthy sync: %v", err)
	}
	dfs.TearNextWrite()
	appendN(t, l, 6, 6)
	if err := l.WaitDurable(6); !errors.Is(err, syscall.EIO) {
		t.Fatalf("WaitDurable after torn write: %v", err)
	}
	l.Close()

	dfs.Heal()
	var recs []wal.Record
	res, err := wal.RecoverFS(dfs, dir, 0, func(r wal.Record) error { recs = append(recs, r); return nil }, &m)
	if err != nil {
		t.Fatalf("recover after torn write: %v", err)
	}
	if res.LastSeq != 5 || len(recs) != 5 {
		t.Fatalf("recovered LastSeq=%d records=%d, want 5/5", res.LastSeq, len(recs))
	}
	if !res.Truncated {
		t.Fatal("torn tail was not truncated")
	}
}

// TestLatchENOSPC: a full disk (write budget) latches with ENOSPC and
// the OnFail hook fires exactly once, promptly.
func TestLatchENOSPC(t *testing.T) {
	dir := t.TempDir()
	dfs := fault.NewDiskFS(nil, fault.DiskPlan{WriteBudget: 256})
	var m wal.Metrics

	res, err := wal.RecoverFS(dfs, dir, 0, func(wal.Record) error { return nil }, &m)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	failed := make(chan error, 1)
	l, err := wal.OpenLog(dir, 0, res, wal.Options{
		Level: wal.Fsync, Metrics: &m, FS: dfs,
		OnFail: func(e error) { failed <- e },
	})
	if err != nil {
		t.Fatalf("open log: %v", err)
	}
	defer l.Close()

	big := make([]byte, 512)
	for seq := uint64(1); seq <= 4; seq++ {
		if err := l.Append(seq, []wal.Op{{Kind: wal.KindSet, Key: "k", Val: big}}); err != nil {
			break // latched mid-loop: exactly what we want
		}
		if l.WaitDurable(seq) != nil {
			break
		}
	}
	select {
	case err := <-failed:
		if !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("OnFail error: %v, want ENOSPC", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnFail never fired")
	}
	if err := l.Err(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Err: %v, want ENOSPC", err)
	}
}

// TestLatchOutOfOrderAppend: the caller-side error path (a skipped
// sequence) latches too — a broken chain is a broken chain.
func TestLatchOutOfOrderAppend(t *testing.T) {
	dir := t.TempDir()
	var m wal.Metrics
	l := openFaultLog(t, wal.OSFS, dir, &m)
	defer l.Close()

	appendN(t, l, 1, 1)
	if err := l.Append(3, nil); err == nil {
		t.Fatal("out-of-order append accepted")
	}
	// Even the valid next sequence is refused now.
	if err := l.Append(2, nil); err == nil {
		t.Fatal("append after out-of-order latch accepted")
	}
	if got := m.Failures.Load(); got != 1 {
		t.Fatalf("Failures = %d, want 1", got)
	}
}
