// Package wal is the durability subsystem of the store: a per-shard
// append-only write-ahead log with group commit, snapshots, and
// torn-tail-tolerant recovery. It is dependency-free (stdlib plus
// internal/obs for metrics) and knows nothing about the STM or the kv
// layer above it — callers feed it already-sequenced operation lists
// and it feeds them back at recovery.
//
// The moving parts:
//
//   - Records (record.go): fixed-layout binary encoding of one
//     committed transaction's operations — length-prefixed,
//     CRC32C-checksummed, explicit offsets, no reflection. A record
//     carries {shard, commitSeq, ops[]} where ops cover bytes-lane
//     SET, counter ADD/SET and DELETE.
//   - Log (log.go): one append-only log per shard. Appends are
//     buffered under the caller's sequencing lock; a batcher goroutine
//     coalesces everything buffered since its last pass into one
//     write(2) and — depending on the durability level — one fsync, so
//     concurrent committers share both syscalls (group commit).
//     Segments rotate at a size threshold.
//   - Snapshots (snapshot.go): a full-state checkpoint with a replay
//     watermark, written atomically (temp file + rename), so recovery
//     replays only the log tail.
//   - Recovery (recover.go): newest loadable snapshot + tail replay
//     with strict sequence continuity; a torn or corrupt tail is
//     truncated at the last valid record, never fatal. Recovered state
//     is always a commit-order prefix of what was logged.
//
// The log's ordering contract is inherited from the caller: Append
// must be invoked in commit order (internal/kv drives it from the
// STM's commit tap, which fires at each transaction's serialization
// point), and sequence numbers must be dense — recovery enforces
// seq continuity and treats any gap as a torn tail.
package wal

import (
	"fmt"
	"sync/atomic"

	"modtx/internal/obs"
)

// Level is a durability level: what an acknowledged write survives.
type Level int

const (
	// None appends to the OS page cache and never fsyncs. Survives a
	// process crash (SIGKILL), not a machine crash.
	None Level = iota
	// Batch appends immediately and fsyncs on a short interval; an
	// acknowledged write may lose up to the flush interval on machine
	// crash. Survives a process crash completely.
	Batch
	// Fsync acknowledges a write only after a group-commit fsync
	// covering it. Survives machine crash up to the last fsync, which
	// every acknowledged write is within.
	Fsync
)

var levelNames = [...]string{"none", "batch", "fsync"}

// String returns the level's wire name ("none", "batch", "fsync").
func (l Level) String() string {
	if l >= 0 && int(l) < len(levelNames) {
		return levelNames[l]
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// ParseLevel parses a wire name back into a Level.
func ParseLevel(s string) (Level, error) {
	for i, n := range levelNames {
		if s == n {
			return Level(i), nil
		}
	}
	return 0, fmt.Errorf("wal: unknown durability level %q (want none, batch or fsync)", s)
}

// Metrics is the write-side observability surface of one or more Logs
// (the kv store shares one across its shards). All fields are
// allocation-free on the write side; the zero value is ready for use.
type Metrics struct {
	AppendNs obs.Histogram // latency of one batched write(2)
	FsyncNs  obs.Histogram // latency of one fsync

	Appends        atomic.Uint64 // records appended to the log
	Batches        atomic.Uint64 // physical writes (group-commit batches)
	Fsyncs         atomic.Uint64 // fsyncs issued
	Bytes          atomic.Uint64 // bytes written
	Rotations      atomic.Uint64 // segment rotations
	Truncations    atomic.Uint64 // torn tails truncated during recovery
	TruncatedBytes atomic.Uint64 // bytes dropped by those truncations
	Failures       atomic.Uint64 // Logs failed by a sticky I/O error
}

// MetricsSnapshot is a point-in-time copy of Metrics. The JSON names
// are a stable wire format (STATS WAL and /debug/vars render it).
type MetricsSnapshot struct {
	Appends        uint64       `json:"appends"`
	Batches        uint64       `json:"batches"`
	Fsyncs         uint64       `json:"fsyncs"`
	Bytes          uint64       `json:"bytes"`
	Rotations      uint64       `json:"rotations"`
	Truncations    uint64       `json:"truncations"`
	TruncatedBytes uint64       `json:"truncated_bytes"`
	Failures       uint64       `json:"failures"`
	AppendNs       obs.Snapshot `json:"append_ns"`
	FsyncNs        obs.Snapshot `json:"fsync_ns"`
}

// Snapshot copies the metrics.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Appends:        m.Appends.Load(),
		Batches:        m.Batches.Load(),
		Fsyncs:         m.Fsyncs.Load(),
		Bytes:          m.Bytes.Load(),
		Rotations:      m.Rotations.Load(),
		Truncations:    m.Truncations.Load(),
		TruncatedBytes: m.TruncatedBytes.Load(),
		Failures:       m.Failures.Load(),
		AppendNs:       m.AppendNs.Snapshot(),
		FsyncNs:        m.FsyncNs.Snapshot(),
	}
}
