package event

import (
	"strings"
	"testing"
)

// privatizationExec builds the Example 2.1 execution:
//
//	atomic_a { if !y then x:=1 } || atomic_b { y:=1 }; x:=2
//
// with a reading y=0 (from init), a writing x=1, b writing y=1, and the
// plain write x=2 last in x's coherence order.
func privatizationExec(t testing.TB) *Execution {
	b := NewBuilder("x", "y")
	t1 := b.Thread()
	t1.Begin("a")
	t1.R("y", 0)
	wx1 := t1.W("x", 1)
	t1.Commit()
	t2 := b.Thread()
	t2.Begin("b")
	t2.W("y", 1)
	t2.Commit()
	wx2 := t2.W("x", 2)
	b.WWOrder("x", wx1, wx2)
	x, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestBuilderBasics(t *testing.T) {
	x := privatizationExec(t)
	if x.N() != 4+3+3+1 { // init(B,Wx,Wy,C) + a(B,R,W,C is 4)... recount below
		// init: B Wx0 Wy0 C = 4; t1: B Ry W x1 C = 4; t2: B Wy1 C Wx2 = 4
		if x.N() != 12 {
			t.Fatalf("unexpected event count %d", x.N())
		}
	}
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
	if vs := WellFormed(x); len(vs) != 0 {
		t.Fatalf("execution not well-formed: %v", vs)
	}
	// The read of y must be fulfilled by the init write.
	for rd, w := range x.WR {
		if x.Events[rd].Loc == x.LocID("y") && x.Events[rd].Val == 0 {
			if !x.IsInit(w) {
				t.Errorf("read of y=0 fulfilled by %v, want init write", x.Events[w])
			}
		}
	}
	if v, ok := x.FinalValue(x.LocID("x")); !ok || v != 2 {
		t.Errorf("final x = %d (ok=%v), want 2", v, ok)
	}
	if v, ok := x.FinalValue(x.LocID("y")); !ok || v != 1 {
		t.Errorf("final y = %d, want 1", v)
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("unknown location", func(t *testing.T) {
		b := NewBuilder("x")
		b.Thread().W("zz", 1)
		if _, err := b.Build(); err == nil {
			t.Fatal("expected error for unknown location")
		}
	})
	t.Run("ambiguous read", func(t *testing.T) {
		b := NewBuilder("x")
		t1 := b.Thread()
		t1.W("x", 1)
		t1.W("x", 1)
		t1.R("x", 1)
		if _, err := b.Build(); err == nil {
			t.Fatal("expected ambiguity error")
		}
	})
	t.Run("unmatched read", func(t *testing.T) {
		b := NewBuilder("x")
		b.Thread().R("x", 7)
		if _, err := b.Build(); err == nil {
			t.Fatal("expected no-matching-write error")
		}
	})
	t.Run("nested begin", func(t *testing.T) {
		b := NewBuilder("x")
		t1 := b.Thread()
		t1.Begin("a")
		t1.Begin("b")
		if _, err := b.Build(); err == nil {
			t.Fatal("expected nesting error")
		}
	})
	t.Run("resolve without begin", func(t *testing.T) {
		b := NewBuilder("x")
		b.Thread().Commit()
		if _, err := b.Build(); err == nil {
			t.Fatal("expected resolution error")
		}
	})
	t.Run("fence inside transaction", func(t *testing.T) {
		b := NewBuilder("x")
		t1 := b.Thread()
		t1.Begin("a")
		t1.Q("x")
		if _, err := b.Build(); err == nil {
			t.Fatal("expected fence-in-tx error")
		}
	})
	t.Run("bad explicit RF", func(t *testing.T) {
		b := NewBuilder("x", "y")
		t1 := b.Thread()
		w := t1.W("x", 1)
		r := t1.R("y", 0)
		b.RF(w, r)
		if _, err := b.Build(); err == nil {
			t.Fatal("expected RF mismatch error")
		}
	})
}

func TestLiveTransaction(t *testing.T) {
	b := NewBuilder("x")
	t1 := b.Thread()
	t1.Begin("a")
	t1.R("x", 0)
	x := b.MustBuild()
	if x.TxStatus[1] != Live {
		t.Fatalf("unresolved tx has status %v, want live", x.TxStatus[1])
	}
	if vs := WellFormed(x); len(vs) != 0 {
		t.Fatalf("live-tx trace should be well-formed: %v", vs)
	}
}

func TestWF7AbortedVisibility(t *testing.T) {
	// A plain read seeing an aborted transactional write violates WF7
	// (Example D.1: "wr cannot originate from an aborted transaction").
	b := NewBuilder("x")
	t1 := b.Thread()
	t1.Begin("a")
	t1.W("x", 1)
	t1.Abort()
	t2 := b.Thread()
	t2.R("x", 1)
	x := b.MustBuild()
	found := false
	for _, v := range WellFormed(x) {
		if v.Rule == "WF7" {
			found = true
		}
	}
	if !found {
		t.Fatal("expected WF7 violation for read of aborted write")
	}
}

func TestWF8ReadFromFuture(t *testing.T) {
	b := NewBuilder("x")
	t1 := b.Thread()
	r := t1.R("x", 1)
	t2 := b.Thread()
	w := t2.W("x", 1)
	b.RF(w, r)
	x := b.MustBuild()
	found := false
	for _, v := range WellFormed(x) {
		if v.Rule == "WF8" {
			found = true
		}
	}
	if !found {
		t.Fatal("expected WF8 violation for read-from-future")
	}
}

func TestWF9TransactionalWriteOrder(t *testing.T) {
	// ⟨c:Wx2⟩⟨b:Wx1⟩ both transactional committed: forbidden by WF9.
	b := NewBuilder("x")
	t1 := b.Thread()
	t1.Begin("c")
	w2 := t1.W("x", 2)
	t1.Commit()
	t2 := b.Thread()
	t2.Begin("b")
	w1 := t2.W("x", 1)
	t2.Commit()
	b.WWOrder("x", w1, w2) // b's write has the smaller timestamp
	x := b.MustBuild()
	found := false
	for _, v := range WellFormed(x) {
		if v.Rule == "WF9" {
			found = true
		}
	}
	if !found {
		t.Fatal("expected WF9 violation")
	}

	// The same shape with plain writes is allowed ("We allow the trace
	// ⟨Wx2 2⟩⟨Wx1 1⟩").
	b2 := NewBuilder("x")
	u1 := b2.Thread()
	p2 := u1.W("x", 2)
	u2 := b2.Thread()
	p1 := u2.W("x", 1)
	b2.WWOrder("x", p1, p2)
	x2 := b2.MustBuild()
	if vs := WellFormed(x2); len(vs) != 0 {
		t.Fatalf("plain out-of-order writes should be well-formed: %v", vs)
	}
}

func TestWF10ObscuredTransactionalRead(t *testing.T) {
	// ⟨aWx1⟩⟨cWx2⟩⟨bRx1⟩ all transactional: forbidden by WF10.
	b := NewBuilder("x")
	t1 := b.Thread()
	t1.Begin("a")
	w1 := t1.W("x", 1)
	t1.Commit()
	t2 := b.Thread()
	t2.Begin("c")
	w2 := t2.W("x", 2)
	t2.Commit()
	t3 := b.Thread()
	t3.Begin("b")
	r := t3.R("x", 1)
	t3.Commit()
	b.WWOrder("x", w1, w2)
	b.RF(w1, r)
	x := b.MustBuild()
	found := false
	for _, v := range WellFormed(x) {
		if v.Rule == "WF10" {
			found = true
		}
	}
	if !found {
		t.Fatal("expected WF10 violation")
	}
}

func TestWF11SameTxObscuredRead(t *testing.T) {
	// ⟨aWx1⟩⟨cWx2⟩⟨bRx1⟩ where c and b are in the same transaction.
	b := NewBuilder("x")
	t1 := b.Thread()
	w1 := t1.W("x", 1) // plain so WF10 does not also fire
	t2 := b.Thread()
	t2.Begin("b")
	w2 := t2.W("x", 2)
	r := t2.R("x", 1)
	t2.Commit()
	b.WWOrder("x", w1, w2)
	b.RF(w1, r)
	x := b.MustBuild()
	found := false
	for _, v := range WellFormed(x) {
		if v.Rule == "WF11" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected WF11 violation, got %v", WellFormed(x))
	}
}

func TestWF12FenceInterleaving(t *testing.T) {
	// A fence on x between a transaction's begin and resolution, where the
	// transaction touches x, violates WF12.
	b := NewBuilder("x")
	t1 := b.Thread()
	t1.Begin("a")
	t1.W("x", 1)
	t2 := b.Thread()
	t2.Q("x")
	x := b.MustBuild()
	// t1's transaction is live and touches x; the fence follows its begin.
	found := false
	for _, v := range WellFormed(x) {
		if v.Rule == "WF12" {
			found = true
		}
	}
	if !found {
		t.Fatal("expected WF12 violation")
	}

	// Fence on a different location is fine.
	b2 := NewBuilder("x", "y")
	u1 := b2.Thread()
	u1.Begin("a")
	u1.W("x", 1)
	u2 := b2.Thread()
	u2.Q("y")
	x2 := b2.MustBuild()
	for _, v := range WellFormed(x2) {
		if v.Rule == "WF12" {
			t.Fatalf("unexpected WF12 violation: %v", v)
		}
	}
}

func TestPOAndRelations(t *testing.T) {
	x := privatizationExec(t)
	po := x.PO()
	// Within thread 1: begin → read → write → commit.
	var t1events []int
	for _, e := range x.Events {
		if e.Thread == 1 {
			t1events = append(t1events, e.ID)
		}
	}
	for i := 0; i < len(t1events); i++ {
		for j := i + 1; j < len(t1events); j++ {
			if !po.Has(t1events[i], t1events[j]) {
				t.Errorf("po missing %d→%d", t1events[i], t1events[j])
			}
		}
	}
	// Cross-thread pairs are not in po.
	if po.Has(t1events[0], x.N()-1) && x.Events[x.N()-1].Thread != 1 {
		t.Error("po relates events of different threads")
	}
	// init→ relates init events to all others.
	ir := x.InitRel()
	if !ir.Has(1, t1events[0]) {
		t.Error("init order missing")
	}
	// ww on x: wx1 → wx2.
	ww := x.WWRel()
	xs := x.WriteIDs(x.LocID("x"))
	if len(xs) != 3 { // init, wx1, wx2
		t.Fatalf("x has %d writes, want 3", len(xs))
	}
	if !ww.Has(xs[1], xs[2]) || ww.Has(xs[2], xs[1]) {
		t.Error("ww order wrong on x")
	}
	// rw: read of y=0 (from init) anti-depends on Wy1 (committed).
	rw := x.RWRel()
	var ry, wy int
	for _, e := range x.Events {
		if e.Kind == KRead && e.Loc == x.LocID("y") {
			ry = e.ID
		}
		if e.Kind == KWrite && e.Loc == x.LocID("y") && e.Val == 1 {
			wy = e.ID
		}
	}
	if !rw.Has(ry, wy) {
		t.Error("rw missing read-of-init → Wy1")
	}
}

func TestRWExcludesAborted(t *testing.T) {
	// §2: if the obscuring write c is in an aborted transaction, there is
	// no antidependency.
	b := NewBuilder("x")
	t1 := b.Thread()
	w1 := t1.W("x", 1)
	r := t1.R("x", 1)
	t2 := b.Thread()
	t2.Begin("c")
	w2 := t2.W("x", 2)
	t2.Abort()
	b.WWOrder("x", w1, w2)
	b.RF(w1, r)
	x := b.MustBuild()
	if x.RWRel().Has(r, w2) {
		t.Error("rw must not target aborted writes")
	}
}

func TestPrefix(t *testing.T) {
	x := privatizationExec(t)
	// Cut inside thread 2's transaction: it becomes live.
	// Find position right after b's begin.
	var cut int
	for _, e := range x.Events {
		if e.Kind == KBegin && e.Thread == 2 {
			cut = e.ID + 1
		}
	}
	p := x.Prefix(cut)
	if p.N() != cut {
		t.Fatalf("prefix has %d events, want %d", p.N(), cut)
	}
	if p.TxStatus[2] != Live {
		t.Errorf("cut transaction has status %v, want live", p.TxStatus[2])
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if vs := WellFormed(p); len(vs) != 0 {
		t.Fatalf("prefix not well-formed: %v", vs)
	}
}

func TestRemoveAborted(t *testing.T) {
	b := NewBuilder("x")
	t1 := b.Thread()
	t1.Begin("a")
	t1.W("x", 1)
	t1.Abort()
	t2 := b.Thread()
	t2.W("x", 2)
	x := b.MustBuild()
	y := x.RemoveAborted()
	for _, e := range y.Events {
		if e.Tx != NoTx && y.TxStatus[e.Tx] == Aborted {
			t.Fatalf("aborted event survived: %v", e)
		}
	}
	if err := y.Validate(); err != nil {
		t.Fatal(err)
	}
	if v, _ := y.FinalValue(0); v != 2 {
		t.Errorf("final x = %d, want 2", v)
	}
}

func TestReorder(t *testing.T) {
	x := privatizationExec(t)
	// Identity permutation preserves everything.
	order := make([]int, x.N())
	for i := range order {
		order[i] = i
	}
	y := x.Reorder(order)
	if err := y.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(WellFormed(y)) != 0 {
		t.Fatal("identity reorder broke well-formedness")
	}
	// Swap the two independent committed transactions (t1's block after
	// t2's block): still well-formed since po within threads is preserved.
	var t1ids, t2ids, initIDs, plainIDs []int
	for _, e := range x.Events {
		switch e.Thread {
		case 0:
			initIDs = append(initIDs, e.ID)
		case 1:
			t1ids = append(t1ids, e.ID)
		default:
			if e.Kind == KWrite && e.Tx == NoTx {
				plainIDs = append(plainIDs, e.ID)
			} else {
				t2ids = append(t2ids, e.ID)
			}
		}
	}
	perm := append(append(append(append([]int{}, initIDs...), t2ids...), t1ids...), plainIDs...)
	z := x.Reorder(perm)
	if err := z.Validate(); err != nil {
		t.Fatal(err)
	}
	// wr is preserved under renumbering: read of y=1? (none) — check read
	// of y=0 still reads from an init write.
	for rd, w := range z.WR {
		if z.Events[rd].Val == 0 && !z.IsInit(w) {
			t.Error("reorder broke reads-from")
		}
	}
}

func TestContiguity(t *testing.T) {
	x := privatizationExec(t)
	if !AllContiguous(x) {
		t.Error("builder trace with sequential blocks should be contiguous")
	}
	// Interleave: t2's write between t1's begin and commit.
	b := NewBuilder("x")
	t1 := b.Thread()
	t2 := b.Thread()
	t1.Begin("a")
	t1.R("x", 0)
	t2.W("x", 5) // foreign action while a is open
	t1.W("x", 1)
	t1.Commit()
	y := b.MustBuild()
	if ContiguousTx(y, 1) {
		t.Error("interleaved transaction reported contiguous")
	}
}

func TestEncodeFences(t *testing.T) {
	b := NewBuilder("x")
	t1 := b.Thread()
	t1.Q("x")
	t1.W("x", 2)
	x := b.MustBuild()
	y := x.EncodeFences()
	// The fence becomes B, W(sentinel), C in a fresh committed tx.
	var fenceWrites int
	for _, e := range y.Events {
		if e.Kind == KFence {
			t.Fatal("fence survived encoding")
		}
		if e.Kind == KWrite && e.Val == SentinelVal {
			fenceWrites++
			if e.Tx == NoTx || y.TxStatus[e.Tx] != Committed {
				t.Error("fence write not in a committed transaction")
			}
		}
	}
	if fenceWrites != 1 {
		t.Fatalf("fence writes = %d, want 1", fenceWrites)
	}
	if err := y.Validate(); err != nil {
		t.Fatal(err)
	}
	// Final value skips the sentinel.
	if v, ok := y.FinalValue(0); !ok || v != 2 {
		t.Errorf("final x = %d (ok=%v), want 2", v, ok)
	}
}

func TestPretty(t *testing.T) {
	x := privatizationExec(t)
	s := Pretty(x)
	for _, want := range []string{"init:", "t1:", "t2:", "Wx=2", "Ry=0", "wr:"} {
		if !strings.Contains(s, want) {
			t.Errorf("Pretty output missing %q:\n%s", want, s)
		}
	}
}

func TestSubsequenceKeepsStructure(t *testing.T) {
	x := privatizationExec(t)
	// Keep only thread 2's events plus init.
	y := x.Subsequence(func(id int) bool {
		th := x.Events[id].Thread
		return th == 0 || th == 2
	})
	if err := y.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, e := range y.Events {
		if e.Thread == 1 {
			t.Fatal("dropped thread survived")
		}
	}
}
