package event

import (
	"fmt"
	"strings"
)

// Pretty renders the execution in a compact human-readable form: one line
// per thread with transactions in brackets, followed by the reads-from and
// coherence components. Used by the cmd tools and test failure output.
func Pretty(x *Execution) string {
	var sb strings.Builder
	for t := 0; t < x.NThreads; t++ {
		var parts []string
		for _, e := range x.Events {
			if e.Thread != t {
				continue
			}
			switch e.Kind {
			case KBegin:
				status := x.TxStatus[e.Tx]
				name := x.TxName[e.Tx]
				if name == "" {
					name = fmt.Sprintf("tx%d", e.Tx)
				}
				parts = append(parts, fmt.Sprintf("%s%s[", name, statusMark(status)))
			case KCommit, KAbort:
				parts = append(parts, "]")
			case KRead:
				parts = append(parts, fmt.Sprintf("R%s=%d#%d", x.Locs[e.Loc], e.Val, e.ID))
			case KWrite:
				parts = append(parts, fmt.Sprintf("W%s=%d#%d", x.Locs[e.Loc], e.Val, e.ID))
			case KFence:
				parts = append(parts, fmt.Sprintf("Q%s#%d", x.Locs[e.Loc], e.ID))
			}
		}
		label := fmt.Sprintf("t%d", t)
		if t == InitThread {
			label = "init"
		}
		fmt.Fprintf(&sb, "%-5s %s\n", label+":", strings.Join(parts, " "))
	}
	var rf []string
	for rd, w := range x.WR {
		rf = append(rf, fmt.Sprintf("%d→%d", w, rd))
	}
	fmt.Fprintf(&sb, "wr: {%s}\n", strings.Join(sortStrings(rf), ", "))
	for loc, order := range x.WW {
		if len(order) > 1 {
			fmt.Fprintf(&sb, "ww(%s): %v\n", x.Locs[loc], order)
		}
	}
	return sb.String()
}

func statusMark(s Status) string {
	switch s {
	case Aborted:
		return "✗"
	case Live:
		return "…"
	}
	return ""
}

func sortStrings(ss []string) []string {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
	return ss
}
